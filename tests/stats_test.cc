#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace demon {
namespace {

TEST(LogGammaTest, KnownValues) {
  // Gamma(1) = 1, Gamma(2) = 1, Gamma(5) = 24, Gamma(0.5) = sqrt(pi).
  EXPECT_NEAR(LogGamma(1.0), 0.0, 1e-10);
  EXPECT_NEAR(LogGamma(2.0), 0.0, 1e-10);
  EXPECT_NEAR(LogGamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(LogGamma(0.5), 0.5 * std::log(M_PI), 1e-10);
}

TEST(LogGammaTest, RecurrenceHolds) {
  // log Gamma(x+1) = log Gamma(x) + log x.
  for (double x : {0.3, 1.7, 4.2, 10.0, 55.5}) {
    EXPECT_NEAR(LogGamma(x + 1.0), LogGamma(x) + std::log(x), 1e-9) << x;
  }
}

TEST(RegularizedGammaTest, Boundaries) {
  EXPECT_DOUBLE_EQ(RegularizedGammaP(2.0, 0.0), 0.0);
  EXPECT_NEAR(RegularizedGammaP(1.0, 50.0), 1.0, 1e-12);
}

TEST(RegularizedGammaTest, ExponentialSpecialCase) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(RegularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-12) << x;
  }
}

TEST(ChiSquareCdfTest, KnownQuantiles) {
  // Classic table values: chi2(df=1) upper 5% point is 3.841,
  // chi2(df=10) upper 5% point is 18.307.
  EXPECT_NEAR(ChiSquareCdf(3.841, 1.0), 0.95, 1e-3);
  EXPECT_NEAR(ChiSquareCdf(18.307, 10.0), 0.95, 1e-3);
  EXPECT_NEAR(ChiSquareCdf(0.0, 3.0), 0.0, 1e-12);
}

TEST(ChiSquareCdfTest, MedianApproximation) {
  // For large df, the median is about df * (1 - 2/(9 df))^3.
  const double df = 100.0;
  const double median = df * std::pow(1.0 - 2.0 / (9.0 * df), 3.0);
  EXPECT_NEAR(ChiSquareCdf(median, df), 0.5, 5e-3);
}

TEST(ChiSquarePValueTest, ComplementsCdf) {
  for (double x : {0.5, 2.0, 7.7}) {
    EXPECT_NEAR(ChiSquarePValue(x, 4.0) + ChiSquareCdf(x, 4.0), 1.0, 1e-12);
  }
}

TEST(ChiSquareHomogeneityTest, IdenticalSamplesGiveZero) {
  const std::vector<double> counts = {50, 30, 20};
  const auto r = ChiSquareHomogeneity(counts, 100, counts, 100);
  EXPECT_NEAR(r.statistic, 0.0, 1e-12);
  EXPECT_NEAR(r.p_value, 1.0, 1e-9);
}

TEST(ChiSquareHomogeneityTest, VeryDifferentSamplesRejected) {
  const std::vector<double> a = {90, 5, 5};
  const std::vector<double> b = {5, 5, 90};
  const auto r = ChiSquareHomogeneity(a, 100, b, 100);
  EXPECT_GT(r.statistic, 50.0);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(ChiSquareHomogeneityTest, ProportionalSamplesAccepted) {
  const std::vector<double> a = {50, 30, 20};
  const std::vector<double> b = {100, 60, 40};
  const auto r = ChiSquareHomogeneity(a, 100, b, 200);
  EXPECT_NEAR(r.statistic, 0.0, 1e-9);
}

TEST(ChiSquareHomogeneityTest, SkipsEmptyRegions) {
  const std::vector<double> a = {50, 0, 50};
  const std::vector<double> b = {50, 0, 50};
  const auto r = ChiSquareHomogeneity(a, 100, b, 100);
  EXPECT_EQ(r.degrees_of_freedom, 1.0);  // 2 used regions - 1.
}

TEST(ChiSquareHomogeneityTest, EmptySamplesReturnNeutral) {
  const auto r = ChiSquareHomogeneity({}, 0, {}, 0);
  EXPECT_EQ(r.p_value, 1.0);
}

TEST(MomentsTest, MeanAndVariance) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0}), 3.0);
  EXPECT_DOUBLE_EQ(Variance({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({2.0, 4.0}), 1.0);
}

}  // namespace
}  // namespace demon
