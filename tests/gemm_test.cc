#include "core/gemm.h"

#include <gtest/gtest.h>

#include "clustering/birch.h"
#include "core/aum.h"
#include "core/maintainers.h"
#include "datagen/cluster_generator.h"
#include "datagen/quest_generator.h"
#include "itemsets/apriori.h"

namespace demon {
namespace {

using TxBlockPtr = std::shared_ptr<const TransactionBlock>;
using PtBlockPtr = std::shared_ptr<const PointBlock>;

std::vector<TxBlockPtr> MakeBlocks(size_t num_blocks, size_t block_size,
                                   size_t num_items, uint64_t seed) {
  QuestParams params;
  params.num_transactions = num_blocks * block_size;
  params.num_items = num_items;
  params.num_patterns = 30;
  params.avg_transaction_len = 6;
  params.avg_pattern_len = 3;
  params.seed = seed;
  QuestGenerator gen(params);
  std::vector<TxBlockPtr> blocks;
  Tid tid = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    auto block =
        std::make_shared<TransactionBlock>(gen.NextBlock(block_size, tid));
    tid += block->size();
    block->mutable_info()->id = static_cast<BlockId>(b + 1);
    blocks.push_back(std::move(block));
  }
  return blocks;
}

// Ground truth for routing tests: blocks the current model must cover
// after block t arrived, window size w.
std::vector<BlockId> ExpectedSelection(const BlockSelectionSequence& bss,
                                       size_t t, size_t w) {
  const size_t start = t >= w ? t - w + 1 : 1;
  std::vector<BlockId> out;
  for (size_t id = start; id <= t; ++id) {
    bool selected = false;
    if (bss.is_window_relative()) {
      selected = bss.window_bits()[id - start];
    } else {
      selected = bss.SelectsBlock(static_cast<BlockId>(id));
    }
    if (selected) out.push_back(static_cast<BlockId>(id));
  }
  return out;
}

TEST(GemmTest, MaintainsAtMostWModels) {
  const auto blocks = MakeBlocks(8, 10, 20, 40);
  Gemm<CountingMaintainer, TxBlockPtr> gemm(
      BlockSelectionSequence::AllBlocks(), 3,
      [] { return CountingMaintainer(); });
  for (size_t i = 0; i < blocks.size(); ++i) {
    gemm.AddBlock(blocks[i]);
    EXPECT_LE(gemm.NumModels(), 3u);
    if (i >= 2) {
      EXPECT_EQ(gemm.NumModels(), 3u);
    }
  }
  // Model starts are consecutive: t-w+1 .. t.
  EXPECT_EQ(gemm.ModelStarts(), (std::vector<BlockId>{6, 7, 8}));
}

TEST(GemmTest, AllOnesBssCurrentModelCoversWholeWindow) {
  const auto blocks = MakeBlocks(7, 10, 20, 41);
  const size_t w = 4;
  Gemm<CountingMaintainer, TxBlockPtr> gemm(
      BlockSelectionSequence::AllBlocks(), w,
      [] { return CountingMaintainer(); });
  for (size_t t = 1; t <= blocks.size(); ++t) {
    gemm.AddBlock(blocks[t - 1]);
    const size_t start = t >= w ? t - w + 1 : 1;
    std::vector<BlockId> expected;
    for (size_t id = start; id <= t; ++id) {
      expected.push_back(static_cast<BlockId>(id));
    }
    EXPECT_EQ(gemm.current().block_ids(), expected) << "t=" << t;
  }
}

TEST(GemmTest, WindowIndependentBssRoutesCorrectly) {
  // Paper §3.2.1 example: b = <10110...>, w = 3.
  const auto bss = BlockSelectionSequence::WindowIndependent(
      {true, false, true, true, false}, false);
  const auto blocks = MakeBlocks(5, 10, 20, 42);
  Gemm<CountingMaintainer, TxBlockPtr> gemm(bss, 3,
                                            [] { return CountingMaintainer(); });
  for (size_t t = 1; t <= blocks.size(); ++t) {
    gemm.AddBlock(blocks[t - 1]);
    EXPECT_EQ(gemm.current().block_ids(), ExpectedSelection(bss, t, 3))
        << "t=" << t;
  }
  // Concretely: after D4 the current model must be built from D3, D4
  // (the paper's worked update of m(D[2,4], <011>)).
}

TEST(GemmTest, WindowRelativeBssSlidesWithWindow) {
  // Paper §3.2.2 example: window-relative <101>, w = 3. After D4 arrives
  // the model covers D2 and D4.
  const auto bss =
      BlockSelectionSequence::WindowRelative({true, false, true});
  const auto blocks = MakeBlocks(6, 10, 20, 43);
  Gemm<CountingMaintainer, TxBlockPtr> gemm(bss, 3,
                                            [] { return CountingMaintainer(); });
  gemm.AddBlock(blocks[0]);
  gemm.AddBlock(blocks[1]);
  gemm.AddBlock(blocks[2]);
  EXPECT_EQ(gemm.current().block_ids(), (std::vector<BlockId>{1, 3}));
  gemm.AddBlock(blocks[3]);
  EXPECT_EQ(gemm.current().block_ids(), (std::vector<BlockId>{2, 4}));
  gemm.AddBlock(blocks[4]);
  EXPECT_EQ(gemm.current().block_ids(), (std::vector<BlockId>{3, 5}));
}

TEST(GemmTest, WindowRelativeAlternatingDisjointSets) {
  // The §3.2.4 degenerate case for AuM: <1010101010> flips the whole
  // selected set every slide. GEMM handles it with one A_M call.
  std::vector<bool> bits(10);
  for (size_t i = 0; i < 10; ++i) bits[i] = (i % 2 == 0);
  const auto bss = BlockSelectionSequence::WindowRelative(bits);
  const auto blocks = MakeBlocks(12, 5, 20, 44);
  Gemm<CountingMaintainer, TxBlockPtr> gemm(bss, 10,
                                            [] { return CountingMaintainer(); });
  for (size_t t = 1; t <= blocks.size(); ++t) {
    gemm.AddBlock(blocks[t - 1]);
    EXPECT_EQ(gemm.current().block_ids(), ExpectedSelection(bss, t, 10));
  }
  // After t=11 the set is {2,4,...}; after t=12 it is {3,5,...}: disjoint.
}

TEST(GemmTest, WindowSizeOne) {
  const auto blocks = MakeBlocks(4, 10, 20, 45);
  Gemm<CountingMaintainer, TxBlockPtr> gemm(
      BlockSelectionSequence::AllBlocks(), 1,
      [] { return CountingMaintainer(); });
  for (size_t t = 1; t <= blocks.size(); ++t) {
    gemm.AddBlock(blocks[t - 1]);
    EXPECT_EQ(gemm.NumModels(), 1u);
    EXPECT_EQ(gemm.current().block_ids(),
              std::vector<BlockId>{static_cast<BlockId>(t)});
  }
}

class GemmItemsetBssTest
    : public ::testing::TestWithParam<BlockSelectionSequence> {};

TEST_P(GemmItemsetBssTest, CurrentItemsetModelEqualsFromScratch) {
  // End-to-end invariant (§3.2): GEMM instantiated with the BORDERS
  // maintainer yields, after every block, exactly the model mined from
  // scratch over the blocks the BSS selects from the current window.
  const auto bss = GetParam();
  const size_t w = 4;
  const auto blocks = MakeBlocks(9, 150, 40, 46);

  BordersOptions options;
  options.minsup = 0.05;
  options.num_items = 40;
  options.strategy = CountingStrategy::kEcut;
  Gemm<BordersMaintainer, TxBlockPtr> gemm(
      bss, w, [&options] { return BordersMaintainer(options); });

  for (size_t t = 1; t <= blocks.size(); ++t) {
    gemm.AddBlock(blocks[t - 1]);
    std::vector<TxBlockPtr> selected;
    for (BlockId id : ExpectedSelection(bss, t, w)) {
      selected.push_back(blocks[id - 1]);
    }
    const ItemsetModel& actual = gemm.current().model();
    if (selected.empty()) {
      EXPECT_EQ(actual.num_transactions(), 0u) << "t=" << t;
      continue;
    }
    const ItemsetModel expected =
        Apriori(selected, options.minsup, options.num_items);
    ASSERT_EQ(actual.entries().size(), expected.entries().size())
        << "t=" << t;
    for (const auto& [itemset, entry] : expected.entries()) {
      const auto it = actual.entries().find(itemset);
      ASSERT_NE(it, actual.entries().end()) << ToString(itemset);
      EXPECT_EQ(it->second.count, entry.count) << ToString(itemset);
      EXPECT_EQ(it->second.frequent, entry.frequent) << ToString(itemset);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    BssVariants, GemmItemsetBssTest,
    ::testing::Values(
        BlockSelectionSequence::AllBlocks(),
        BlockSelectionSequence::Periodic(2, 0),
        BlockSelectionSequence::WindowIndependent(
            {true, false, true, true, false, true, false, false, true}),
        BlockSelectionSequence::WindowRelative({true, false, true, true}),
        BlockSelectionSequence::WindowRelative({false, true, false, true})),
    [](const auto& info) {
      switch (info.index) {
        case 0:
          return "AllBlocks";
        case 1:
          return "PeriodicEven";
        case 2:
          return "IndependentMixed";
        case 3:
          return "Relative1011";
        default:
          return "Relative0101";
      }
    });

TEST(GemmTest, ClusterModelMatchesFromScratchBirch) {
  // GEMM over BIRCH+ gives most-recent-window clustering, which BIRCH
  // alone cannot (no deletions, §3.2.4). Check against from-scratch BIRCH
  // on the window's selected blocks.
  ClusterGenParams params;
  params.num_points = 4000;
  params.num_clusters = 6;
  params.dim = 3;
  params.seed = 47;
  ClusterGenerator gen(params);
  std::vector<PtBlockPtr> blocks;
  for (int b = 0; b < 5; ++b) {
    auto block = std::make_shared<PointBlock>(gen.NextBlock(800));
    block->mutable_info()->id = static_cast<BlockId>(b + 1);
    blocks.push_back(std::move(block));
  }

  BirchOptions birch_options;
  birch_options.num_clusters = 6;
  birch_options.phase2 = Phase2Algorithm::kAgglomerative;
  birch_options.tree.max_leaf_entries = 256;
  const size_t w = 3;
  const auto bss = BlockSelectionSequence::AllBlocks();
  Gemm<ClusterMaintainer, PtBlockPtr> gemm(bss, w, [&] {
    return ClusterMaintainer(params.dim, birch_options);
  });

  for (size_t t = 1; t <= blocks.size(); ++t) {
    gemm.AddBlock(blocks[t - 1]);
    const size_t start = t >= w ? t - w + 1 : 1;
    std::vector<PtBlockPtr> window(blocks.begin() + (start - 1),
                                   blocks.begin() + t);
    const ClusterModel expected = RunBirch(window, params.dim, birch_options);
    const ClusterModel& actual = gemm.current().model();
    ASSERT_EQ(actual.NumClusters(), expected.NumClusters()) << "t=" << t;
    for (size_t c = 0; c < expected.NumClusters(); ++c) {
      EXPECT_EQ(actual.clusters()[c], expected.clusters()[c]);
    }
  }
}

TEST(GemmTest, TelemetrySpansCoverResponseAndOffline) {
  const auto blocks = MakeBlocks(5, 100, 30, 48);
  BordersOptions options;
  options.minsup = 0.05;
  options.num_items = 30;
  telemetry::TelemetryRegistry registry;
  Gemm<BordersMaintainer, TxBlockPtr> gemm(
      BlockSelectionSequence::AllBlocks(), 3,
      [&options] { return BordersMaintainer(options); });
  gemm.set_telemetry(&registry);
  for (const auto& block : blocks) gemm.AddBlock(block);
  const std::vector<telemetry::SpanRecord> spans = registry.CollectSpans();
  if constexpr (telemetry::kEnabled) {
    // Every AddBlock emits one response-path window span; the eager
    // DrainOffline inside AddBlock emits a gemm-offline span per block.
    size_t response_spans = 0;
    size_t offline_spans = 0;
    for (const auto& span : spans) {
      EXPECT_EQ(span.category, "gemm");
      EXPECT_GE(span.end_ns, span.start_ns);
      if (span.name == "gemm-offline") {
        ++offline_spans;
      } else if (span.name.rfind("window@", 0) == 0) {
        ++response_spans;
      }
    }
    EXPECT_GE(response_spans, blocks.size());
    EXPECT_EQ(offline_spans, blocks.size());
  } else {
    EXPECT_TRUE(spans.empty());
  }
}

TEST(AuMTest, AllOnesBssMatchesGemmModel) {
  const auto blocks = MakeBlocks(7, 150, 40, 49);
  BordersOptions options;
  options.minsup = 0.05;
  options.num_items = 40;
  const size_t w = 3;

  AuMItemsetMaintainer aum(options, BlockSelectionSequence::AllBlocks(), w);
  for (size_t t = 1; t <= blocks.size(); ++t) {
    aum.AddBlock(blocks[t - 1]);
    const size_t start = t >= w ? t - w + 1 : 1;
    const std::vector<TxBlockPtr> window(blocks.begin() + (start - 1),
                                         blocks.begin() + t);
    const ItemsetModel expected =
        Apriori(window, options.minsup, options.num_items);
    ASSERT_EQ(aum.model().entries().size(), expected.entries().size());
    for (const auto& [itemset, entry] : expected.entries()) {
      EXPECT_EQ(aum.model().CountOf(itemset), entry.count);
    }
    if (t > w) {
      // Steady state: exactly one addition and one deletion per slide.
      EXPECT_EQ(aum.last_stats().blocks_added, 1u);
      EXPECT_EQ(aum.last_stats().blocks_removed, 1u);
    }
  }
}

TEST(AuMTest, AlternatingBssDegeneratesToFullReplacement) {
  // §3.2.4: with window-relative <1010> the selected sets of consecutive
  // windows are disjoint, so AuM replaces every block.
  const auto blocks = MakeBlocks(8, 80, 30, 50);
  BordersOptions options;
  options.minsup = 0.06;
  options.num_items = 30;
  const auto bss =
      BlockSelectionSequence::WindowRelative({true, false, true, false});
  AuMItemsetMaintainer aum(options, bss, 4);
  for (size_t t = 1; t <= blocks.size(); ++t) aum.AddBlock(blocks[t - 1]);
  // Window [5..8]: selected {5, 7}; previous window [4..7] selected {4, 6}.
  EXPECT_EQ(aum.last_stats().blocks_added, 2u);
  EXPECT_EQ(aum.last_stats().blocks_removed, 2u);
  const ItemsetModel expected =
      Apriori({blocks[4], blocks[6]}, options.minsup, options.num_items);
  ASSERT_EQ(aum.model().entries().size(), expected.entries().size());
  for (const auto& [itemset, entry] : expected.entries()) {
    EXPECT_EQ(aum.model().CountOf(itemset), entry.count);
    EXPECT_EQ(aum.model().IsFrequent(itemset), entry.frequent);
  }
}

}  // namespace
}  // namespace demon
