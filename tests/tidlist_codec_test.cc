#include "tidlist/tidlist_codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <set>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace demon {
namespace {

// ---------------------------------------------------------------------------
// Helpers.

TidList RandomSortedList(Rng* rng, uint32_t universe, size_t max_size) {
  std::set<uint32_t> values;
  const size_t n = rng->NextUint64(max_size + 1);
  for (size_t i = 0; i < n; ++i) {
    values.insert(static_cast<uint32_t>(rng->NextUint64(universe)));
  }
  return TidList(values.begin(), values.end());
}

TidList Validated(const EncodedTidList& encoded, uint32_t universe) {
  TidList out;
  const Status status = DecodeTidList(encoded.View(universe), &out);
  EXPECT_TRUE(status.ok()) << status;
  return out;
}

// ---------------------------------------------------------------------------
// Round trips.

TEST(TidListCodecTest, EdgeListsRoundTripUnderEveryEncoding) {
  const uint32_t universe = 200;
  const std::vector<TidList> cases = {
      TidList{},                           // empty
      TidList{0},                          // singleton at the low edge
      TidList{universe - 1},               // singleton at the high edge
      TidList{0, universe - 1},            // extreme gap
      TidList{5, 6, 7, 8, 9},              // consecutive run
      [] {                                 // fully dense
        TidList all;
        for (uint32_t i = 0; i < 200; ++i) all.push_back(i);
        return all;
      }(),
  };
  for (const TidList& list : cases) {
    for (const TidEncoding encoding :
         {TidEncoding::kRaw, TidEncoding::kDelta, TidEncoding::kBitmap}) {
      const EncodedTidList encoded = EncodeTidListAs(encoding, list, universe);
      EXPECT_EQ(encoded.bytes.size(),
                EncodedTidListBytes(encoding, list, universe));
      // Trusting decode and validating decode agree with the input.
      TidList materialized;
      MaterializeInto(encoded.View(universe), &materialized);
      EXPECT_EQ(materialized, list) << TidEncodingName(encoding);
      EXPECT_EQ(Validated(encoded, universe), list) << TidEncodingName(encoding);
    }
  }
}

TEST(TidListCodecTest, RandomizedRoundTripsAreBitIdentical) {
  Rng rng(4242);
  for (int round = 0; round < 200; ++round) {
    const uint32_t universe = 1 + static_cast<uint32_t>(rng.NextUint64(5000));
    const TidList list = RandomSortedList(&rng, universe, 400);
    for (const TidEncoding encoding :
         {TidEncoding::kRaw, TidEncoding::kDelta, TidEncoding::kBitmap}) {
      const EncodedTidList encoded = EncodeTidListAs(encoding, list, universe);
      EXPECT_EQ(Validated(encoded, universe), list);
      // Re-encoding the decoded list reproduces the bytes exactly — the
      // property the spill files and checkpoint determinism rest on.
      const EncodedTidList again =
          EncodeTidListAs(encoding, Validated(encoded, universe), universe);
      EXPECT_EQ(again.bytes, encoded.bytes);
    }
    // The auto-selected encoding is the smallest of the three.
    const EncodedTidList best = EncodeTidList(list, universe);
    for (const TidEncoding encoding :
         {TidEncoding::kRaw, TidEncoding::kDelta, TidEncoding::kBitmap}) {
      EXPECT_LE(best.bytes.size(),
                EncodedTidListBytes(encoding, list, universe));
    }
  }
}

TEST(TidListCodecTest, AdversarialGapsNearUint32MaxRoundTrip) {
  // Varint gaps of up to 32 bits and offsets at the top of the u32 range.
  // Bitmap is excluded: a 4-billion universe would allocate a 512MB bitset
  // (and the density heuristic would never choose it for 7 tids).
  const uint32_t universe = UINT32_MAX;
  const TidList list = {0,          1,          127,        128,
                        0x0FFFFFFF, 0xFFFFFFF0, 0xFFFFFFFE};
  for (const TidEncoding encoding : {TidEncoding::kRaw, TidEncoding::kDelta}) {
    const EncodedTidList encoded = EncodeTidListAs(encoding, list, universe);
    EXPECT_EQ(Validated(encoded, universe), list) << TidEncodingName(encoding);
  }
  const EncodedTidList best = EncodeTidList(list, universe);
  EXPECT_NE(best.encoding, TidEncoding::kBitmap);
  EXPECT_EQ(Validated(best, universe), list);
}

TEST(TidListCodecTest, DensityHeuristicPicksExpectedEncodings) {
  const uint32_t universe = 64000;
  // 3 tids over 64000: delta (few bytes) beats raw (12) and bitmap (8000).
  EXPECT_EQ(EncodeTidList({10, 20, 30}, universe).encoding,
            TidEncoding::kDelta);
  // Every other transaction: 32000 tids. Raw = 128000B, bitmap = 8000B.
  TidList dense;
  for (uint32_t i = 0; i < universe; i += 2) dense.push_back(i);
  EXPECT_EQ(EncodeTidList(dense, universe).encoding, TidEncoding::kBitmap);
  // Consecutive small offsets: delta gaps of 1 are 1 byte each.
  TidList run;
  for (uint32_t i = 0; i < 100; ++i) run.push_back(i);
  EXPECT_EQ(EncodeTidList(run, universe).encoding, TidEncoding::kDelta);
}

// ---------------------------------------------------------------------------
// Corruption: every malformed extent yields DataLoss, never UB or garbage.

TEST(TidListCodecTest, TruncatedExtentsAreDataLoss) {
  Rng rng(99);
  const uint32_t universe = 3000;
  for (const TidEncoding encoding :
       {TidEncoding::kRaw, TidEncoding::kDelta, TidEncoding::kBitmap}) {
    const TidList list = RandomSortedList(&rng, universe, 300);
    if (list.empty()) continue;
    EncodedTidList encoded = EncodeTidListAs(encoding, list, universe);
    ASSERT_FALSE(encoded.bytes.empty());
    encoded.bytes.pop_back();
    TidList out;
    EXPECT_EQ(DecodeTidList(encoded.View(universe), &out).code(),
              StatusCode::kDataLoss)
        << TidEncodingName(encoding);
  }
}

TEST(TidListCodecTest, CardinalityMismatchesAreDataLoss) {
  const uint32_t universe = 500;
  const TidList list = {3, 9, 77, 401};
  for (const TidEncoding encoding :
       {TidEncoding::kRaw, TidEncoding::kDelta, TidEncoding::kBitmap}) {
    EncodedTidList encoded = EncodeTidListAs(encoding, list, universe);
    encoded.num_tids += 1;
    TidList out;
    EXPECT_EQ(DecodeTidList(encoded.View(universe), &out).code(),
              StatusCode::kDataLoss)
        << TidEncodingName(encoding);
  }
  // A cardinality larger than the universe is structurally impossible.
  EncodedTidList encoded = EncodeTidListAs(TidEncoding::kRaw, list, universe);
  encoded.num_tids = universe + 1;
  TidList out;
  EXPECT_EQ(DecodeTidList(encoded.View(universe), &out).code(),
            StatusCode::kDataLoss);
}

TEST(TidListCodecTest, OutOfOrderAndOutOfRangeBytesAreDataLoss) {
  const uint32_t universe = 100;
  TidList out;
  {
    // Raw with a duplicate (not strictly increasing).
    const TidList bad = {5, 5, 9};
    EncodedTidList encoded;
    encoded.encoding = TidEncoding::kRaw;
    encoded.num_tids = 3;
    encoded.bytes.resize(bad.size() * sizeof(uint32_t));
    std::memcpy(encoded.bytes.data(), bad.data(), encoded.bytes.size());
    EXPECT_EQ(DecodeTidList(encoded.View(universe), &out).code(),
              StatusCode::kDataLoss);
  }
  {
    // Raw with an offset beyond the universe.
    const TidList bad = {5, 200};
    EncodedTidList encoded;
    encoded.encoding = TidEncoding::kRaw;
    encoded.num_tids = 2;
    encoded.bytes.resize(bad.size() * sizeof(uint32_t));
    std::memcpy(encoded.bytes.data(), bad.data(), encoded.bytes.size());
    EXPECT_EQ(DecodeTidList(encoded.View(universe), &out).code(),
              StatusCode::kDataLoss);
  }
  {
    // Delta whose gaps overrun the universe.
    EncodedTidList encoded = EncodeTidListAs(TidEncoding::kDelta, {90}, 100);
    encoded.bytes.push_back(90);  // second value = 180 > universe
    encoded.num_tids = 2;
    EXPECT_EQ(DecodeTidList(encoded.View(universe), &out).code(),
              StatusCode::kDataLoss);
  }
  {
    // Delta with a zero gap (duplicate value).
    EncodedTidList encoded = EncodeTidListAs(TidEncoding::kDelta, {7}, 100);
    encoded.bytes.push_back(0);
    encoded.num_tids = 2;
    EXPECT_EQ(DecodeTidList(encoded.View(universe), &out).code(),
              StatusCode::kDataLoss);
  }
  {
    // Delta with trailing garbage after the announced cardinality.
    EncodedTidList encoded = EncodeTidListAs(TidEncoding::kDelta, {7, 9}, 100);
    encoded.bytes.push_back(3);
    EXPECT_EQ(DecodeTidList(encoded.View(universe), &out).code(),
              StatusCode::kDataLoss);
  }
  {
    // Bitmap with a bit set outside the universe (rounding slack bits).
    TidList all;
    for (uint32_t i = 0; i < 70; ++i) all.push_back(i);
    EncodedTidList encoded = EncodeTidListAs(TidEncoding::kBitmap, all, 100);
    encoded.bytes[15] |= 0x80;  // bit 127 >= universe 100
    encoded.num_tids += 1;      // keep the popcount consistent
    EXPECT_EQ(DecodeTidList(encoded.View(100), &out).code(),
              StatusCode::kDataLoss);
  }
}

// ---------------------------------------------------------------------------
// Cross-encoding kernel agreement: all 9 pairs match std::set_intersection.

TEST(TidListCodecTest, AllKernelPairsMatchSetIntersection) {
  Rng rng(777);
  const TidEncoding encodings[] = {TidEncoding::kRaw, TidEncoding::kDelta,
                                   TidEncoding::kBitmap};
  for (int round = 0; round < 60; ++round) {
    const uint32_t universe = 1 + static_cast<uint32_t>(rng.NextUint64(2000));
    const TidList a = RandomSortedList(&rng, universe, 250);
    const TidList b = RandomSortedList(&rng, universe, 250);
    TidList expected;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expected));
    for (const TidEncoding ea : encodings) {
      const EncodedTidList enc_a = EncodeTidListAs(ea, a, universe);
      for (const TidEncoding eb : encodings) {
        const EncodedTidList enc_b = EncodeTidListAs(eb, b, universe);
        TidList out;
        IntersectInto(enc_a.View(universe), enc_b.View(universe), &out);
        EXPECT_EQ(out, expected)
            << TidEncodingName(ea) << " x " << TidEncodingName(eb);
        // The raw-left fold overload agrees as well.
        IntersectInto(a, enc_b.View(universe), &out);
        EXPECT_EQ(out, expected);
      }
    }
  }
}

TEST(TidListCodecTest, ViewLevelIntersectionSizeMatchesRawLevel) {
  Rng rng(31337);
  for (int round = 0; round < 40; ++round) {
    const uint32_t universe = 1 + static_cast<uint32_t>(rng.NextUint64(1500));
    const size_t k = 2 + rng.NextUint64(4);
    std::vector<TidList> lists;
    std::vector<EncodedTidList> encoded;
    for (size_t i = 0; i < k; ++i) {
      lists.push_back(RandomSortedList(&rng, universe, 300));
      // Cycle deliberately through all encodings regardless of density.
      encoded.push_back(EncodeTidListAs(
          static_cast<TidEncoding>(i % kNumTidEncodings), lists.back(),
          universe));
    }
    std::vector<const TidList*> raw_ptrs;
    std::vector<TidListView> views;
    for (size_t i = 0; i < k; ++i) {
      raw_ptrs.push_back(&lists[i]);
      views.push_back(encoded[i].View(universe));
    }
    IntersectionScratch scratch;
    const uint64_t expected = IntersectionSize(raw_ptrs);
    EXPECT_EQ(IntersectionSize(views, &scratch), expected);
  }
}

}  // namespace
}  // namespace demon
