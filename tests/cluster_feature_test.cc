#include "clustering/cluster_feature.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace demon {
namespace {

TEST(ClusterFeatureTest, SinglePoint) {
  const double p[2] = {3.0, 4.0};
  const ClusterFeature cf = ClusterFeature::FromPoint(p, 2);
  EXPECT_DOUBLE_EQ(cf.n(), 1.0);
  EXPECT_EQ(cf.Centroid(), (Point{3.0, 4.0}));
  EXPECT_DOUBLE_EQ(cf.ss(), 25.0);
  EXPECT_DOUBLE_EQ(cf.Radius(), 0.0);
}

TEST(ClusterFeatureTest, AddAccumulates) {
  ClusterFeature cf(1);
  const double a = 0.0;
  const double b = 2.0;
  cf.Add(&a, 1);
  cf.Add(&b, 1);
  EXPECT_DOUBLE_EQ(cf.n(), 2.0);
  EXPECT_EQ(cf.Centroid(), Point{1.0});
  // Radius of {0, 2} around centroid 1 is 1.
  EXPECT_DOUBLE_EQ(cf.Radius(), 1.0);
}

TEST(ClusterFeatureTest, MergeEqualsBulkAdd) {
  Rng rng(5);
  ClusterFeature merged(3);
  ClusterFeature a(3);
  ClusterFeature b(3);
  ClusterFeature bulk(3);
  for (int i = 0; i < 100; ++i) {
    double p[3] = {rng.NextGaussian(), rng.NextGaussian(),
                   rng.NextGaussian()};
    ((i % 2 == 0) ? a : b).Add(p, 3);
    bulk.Add(p, 3);
  }
  merged.Merge(a);
  merged.Merge(b);
  EXPECT_DOUBLE_EQ(merged.n(), bulk.n());
  for (size_t d = 0; d < 3; ++d) {
    EXPECT_NEAR(merged.ls()[d], bulk.ls()[d], 1e-9);
  }
  EXPECT_NEAR(merged.ss(), bulk.ss(), 1e-9);
}

TEST(ClusterFeatureTest, CentroidDistance) {
  ClusterFeature a(2);
  ClusterFeature b(2);
  const double pa[2] = {0.0, 0.0};
  const double pb[2] = {3.0, 4.0};
  a.Add(pa, 2);
  b.Add(pb, 2);
  EXPECT_DOUBLE_EQ(a.SquaredCentroidDistance(b), 25.0);
  EXPECT_DOUBLE_EQ(a.SquaredDistanceToPoint(pb, 2), 25.0);
}

TEST(ClusterFeatureTest, MergedSquaredRadiusMatchesActualMerge) {
  Rng rng(6);
  ClusterFeature a(2);
  ClusterFeature b(2);
  for (int i = 0; i < 20; ++i) {
    double pa[2] = {rng.NextGaussian(), rng.NextGaussian()};
    double pb[2] = {5.0 + rng.NextGaussian(), rng.NextGaussian()};
    a.Add(pa, 2);
    b.Add(pb, 2);
  }
  const double predicted = a.MergedSquaredRadius(b);
  ClusterFeature merged = a;
  merged.Merge(b);
  EXPECT_NEAR(predicted, merged.SquaredRadius(), 1e-9);
}

TEST(ClusterFeatureTest, RadiusMatchesDefinition) {
  // Radius^2 = average squared distance to the centroid.
  Rng rng(7);
  std::vector<Point> points;
  ClusterFeature cf(2);
  for (int i = 0; i < 50; ++i) {
    Point p = {rng.NextGaussian(2.0, 3.0), rng.NextGaussian(-1.0, 0.5)};
    cf.Add(p.data(), 2);
    points.push_back(std::move(p));
  }
  const Point centroid = cf.Centroid();
  double sum = 0.0;
  for (const Point& p : points) sum += SquaredDistance(p, centroid);
  EXPECT_NEAR(cf.SquaredRadius(), sum / 50.0, 1e-9);
}

TEST(ClusterFeatureTest, NumericClampToZeroRadius) {
  ClusterFeature cf(1);
  const double p = 1e8;
  cf.Add(&p, 1);
  cf.Add(&p, 1);
  EXPECT_GE(cf.SquaredRadius(), 0.0);
}

}  // namespace
}  // namespace demon
