#include "clustering/dbscan.h"

#include <gtest/gtest.h>

#include <queue>

#include "common/random.h"
#include "data/point.h"
#include "datagen/cluster_generator.h"

namespace demon {
namespace {

// Independent reference implementation: textbook DBScan with O(n^2)
// neighborhoods and BFS expansion, using the same canonical border rule
// (lowest-indexed neighboring core) as the library.
DbscanResult ReferenceDbscan(const std::vector<double>& coords, size_t dim,
                             const DbscanParams& params) {
  const size_t n = coords.size() / dim;
  const double eps2 = params.eps * params.eps;
  std::vector<std::vector<size_t>> neighbors(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j && SquaredDistance(coords.data() + i * dim,
                                    coords.data() + j * dim, dim) <= eps2) {
        neighbors[i].push_back(j);
      }
    }
  }
  std::vector<bool> core(n);
  for (size_t i = 0; i < n; ++i) {
    core[i] = neighbors[i].size() + 1 >= params.min_pts;
  }

  DbscanResult result;
  result.labels.assign(n, -1);
  int next_cluster = 0;
  for (size_t seed = 0; seed < n; ++seed) {
    if (!core[seed] || result.labels[seed] >= 0) continue;
    const int cluster = next_cluster++;
    std::queue<size_t> frontier;
    frontier.push(seed);
    result.labels[seed] = cluster;
    while (!frontier.empty()) {
      const size_t u = frontier.front();
      frontier.pop();
      for (size_t v : neighbors[u]) {
        if (!core[v] || result.labels[v] >= 0) continue;
        result.labels[v] = cluster;
        frontier.push(v);
      }
    }
  }
  result.num_clusters = static_cast<size_t>(next_cluster);
  for (size_t i = 0; i < n; ++i) {
    if (core[i]) continue;
    size_t best = SIZE_MAX;
    for (size_t v : neighbors[i]) {
      if (core[v] && v < best) best = v;
    }
    result.labels[i] = best == SIZE_MAX ? -1 : result.labels[best];
  }
  return result;
}

// Cluster ids may be numbered differently; compare as partitions plus the
// noise set.
void ExpectSameClustering(const DbscanResult& a, const DbscanResult& b) {
  ASSERT_EQ(a.labels.size(), b.labels.size());
  ASSERT_EQ(a.num_clusters, b.num_clusters);
  std::map<int, int> a_to_b;
  for (size_t i = 0; i < a.labels.size(); ++i) {
    if ((a.labels[i] < 0) != (b.labels[i] < 0)) {
      FAIL() << "noise mismatch at point " << i;
    }
    if (a.labels[i] < 0) continue;
    const auto [it, inserted] = a_to_b.emplace(a.labels[i], b.labels[i]);
    EXPECT_EQ(it->second, b.labels[i]) << "partition mismatch at " << i;
  }
}

TEST(DbscanTest, TwoObviousClustersAndNoise) {
  std::vector<double> coords;
  Rng rng(1);
  for (int i = 0; i < 40; ++i) {
    coords.push_back(rng.NextGaussian(0.0, 0.3));
    coords.push_back(rng.NextGaussian(0.0, 0.3));
  }
  for (int i = 0; i < 40; ++i) {
    coords.push_back(rng.NextGaussian(10.0, 0.3));
    coords.push_back(rng.NextGaussian(10.0, 0.3));
  }
  coords.push_back(100.0);  // an isolated noise point
  coords.push_back(100.0);

  DbscanParams params;
  params.eps = 1.0;
  params.min_pts = 4;
  const DbscanResult result = Dbscan(coords, 2, params);
  EXPECT_EQ(result.num_clusters, 2u);
  EXPECT_EQ(result.labels.back(), -1);
  EXPECT_EQ(result.labels[0], result.labels[10]);
  EXPECT_NE(result.labels[0], result.labels[50]);
}

class DbscanRandomizedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DbscanRandomizedTest, MatchesReferenceImplementation) {
  Rng rng(GetParam());
  const size_t dim = 1 + rng.NextUint64(3);
  const size_t n = 100 + rng.NextUint64(200);
  std::vector<double> coords;
  for (size_t i = 0; i < n * dim; ++i) {
    coords.push_back(rng.NextDouble() * 20.0);
  }
  DbscanParams params;
  params.eps = 0.8 + rng.NextDouble() * 2.0;
  params.min_pts = 2 + rng.NextUint64(5);

  const DbscanResult fast = Dbscan(coords, dim, params);
  const DbscanResult reference = ReferenceDbscan(coords, dim, params);
  ExpectSameClustering(fast, reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbscanRandomizedTest,
                         ::testing::Range<uint64_t>(1, 11));

TEST(IncrementalDbscanTest, InsertionOrderDoesNotMatter) {
  Rng rng(20);
  std::vector<double> coords;
  for (int i = 0; i < 300; ++i) coords.push_back(rng.NextDouble() * 15.0);
  DbscanParams params;
  params.eps = 1.2;
  params.min_pts = 3;

  IncrementalDbscan forward(2, params);
  IncrementalDbscan interleaved(2, params);
  for (size_t i = 0; i < 150; ++i) forward.Insert(coords.data() + 2 * i);
  // Insert the same points in a different order; the partition (by
  // coordinates) must match.
  std::vector<size_t> order;
  for (size_t i = 0; i < 150; ++i) order.push_back(i);
  rng.Shuffle(&order);
  std::vector<size_t> position(150);
  for (size_t rank = 0; rank < order.size(); ++rank) {
    interleaved.Insert(coords.data() + 2 * order[rank]);
    position[order[rank]] = rank;
  }
  const DbscanResult a = forward.Label();
  const DbscanResult b = interleaved.Label();
  EXPECT_EQ(a.num_clusters, b.num_clusters);
  // Same-cluster relations agree for core points.
  for (size_t i = 0; i < 150; ++i) {
    for (size_t j = i + 1; j < 150; ++j) {
      if (!forward.IsCore(i) || !forward.IsCore(j)) continue;
      EXPECT_EQ(a.labels[i] == a.labels[j],
                b.labels[position[i]] == b.labels[position[j]])
          << i << "," << j;
    }
  }
}

TEST(IncrementalDbscanTest, BlockwiseEqualsBatch) {
  // The §3.2.4 usage: blocks arrive one at a time; after each block the
  // incremental clustering equals batch DBScan over everything so far.
  ClusterGenParams gen_params;
  gen_params.num_points = 900;
  gen_params.num_clusters = 5;
  gen_params.dim = 2;
  gen_params.max_sigma = 0.8;
  gen_params.noise_fraction = 0.05;
  gen_params.seed = 21;
  ClusterGenerator gen(gen_params);

  DbscanParams params;
  params.eps = 1.5;
  params.min_pts = 5;
  IncrementalDbscan incremental(2, params);
  std::vector<double> all_coords;
  for (int b = 0; b < 3; ++b) {
    const PointBlock block = gen.NextBlock(300);
    incremental.AddBlock(block);
    all_coords.insert(all_coords.end(), block.coords().begin(),
                      block.coords().end());
    const DbscanResult inc = incremental.Label();
    const DbscanResult batch = Dbscan(all_coords, 2, params);
    ASSERT_EQ(inc.labels, batch.labels) << "after block " << b;
    ASSERT_EQ(inc.num_clusters, batch.num_clusters);
  }
}

TEST(IncrementalDbscanTest, InsertionsMergeClusters) {
  // Two dense groups bridged by a later insertion: the union-find merge
  // path (a new core connecting two components) must fire.
  DbscanParams params;
  params.eps = 1.1;
  params.min_pts = 3;
  IncrementalDbscan dbscan(1, params);
  for (double x : {0.0, 0.5, 1.0}) dbscan.Insert(&x);
  for (double x : {4.0, 4.5, 5.0}) dbscan.Insert(&x);
  EXPECT_EQ(dbscan.Label().num_clusters, 2u);
  // The bridge: 2.0 and 3.0 connect the groups into one component.
  for (double x : {2.0, 3.0}) dbscan.Insert(&x);
  const DbscanResult result = dbscan.Label();
  EXPECT_EQ(result.num_clusters, 1u);
  for (int label : result.labels) EXPECT_EQ(label, 0);
}

TEST(IncrementalDbscanTest, EmptyAndSinglePoint) {
  DbscanParams params;
  params.eps = 1.0;
  params.min_pts = 2;
  IncrementalDbscan dbscan(2, params);
  EXPECT_EQ(dbscan.Label().num_clusters, 0u);
  const double p[2] = {0.0, 0.0};
  dbscan.Insert(p);
  const DbscanResult result = dbscan.Label();
  EXPECT_EQ(result.num_clusters, 0u);
  EXPECT_EQ(result.labels[0], -1);
}

}  // namespace
}  // namespace demon
