#include "itemsets/apriori.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "itemsets/candidate_generation.h"

namespace demon {
namespace {

std::shared_ptr<const TransactionBlock> MakeBlock(
    std::vector<Transaction> transactions, Tid first_tid = 0) {
  return std::make_shared<TransactionBlock>(std::move(transactions),
                                            first_tid);
}

// Brute-force ground truth: counts every subset of the item universe (the
// universe must be tiny), then derives L and NB- from first principles.
struct GroundTruth {
  std::map<Itemset, uint64_t> frequent;
  std::map<Itemset, uint64_t> border;
};

GroundTruth BruteForce(
    const std::vector<std::shared_ptr<const TransactionBlock>>& blocks,
    double minsup, size_t num_items) {
  uint64_t n = 0;
  for (const auto& b : blocks) n += b->size();
  const double exact = minsup * static_cast<double>(n);
  uint64_t min_count = static_cast<uint64_t>(exact);
  if (static_cast<double>(min_count) < exact) ++min_count;
  if (min_count == 0) min_count = 1;

  std::map<Itemset, uint64_t> counts;
  const size_t limit = size_t{1} << num_items;
  for (size_t mask = 1; mask < limit; ++mask) {
    Itemset itemset;
    for (size_t i = 0; i < num_items; ++i) {
      if (mask & (size_t{1} << i)) itemset.push_back(static_cast<Item>(i));
    }
    uint64_t count = 0;
    for (const auto& b : blocks) {
      for (const Transaction& t : b->transactions()) {
        count += t.ContainsAll(itemset.begin(), itemset.end()) ? 1 : 0;
      }
    }
    counts[itemset] = count;
  }

  GroundTruth truth;
  for (const auto& [itemset, count] : counts) {
    if (count >= min_count) {
      truth.frequent[itemset] = count;
      continue;
    }
    bool all_subsets_frequent = true;
    for (size_t drop = 0; drop < itemset.size() && all_subsets_frequent;
         ++drop) {
      const Itemset subset = WithoutIndex(itemset, drop);
      if (subset.empty()) continue;
      all_subsets_frequent = counts[subset] >= min_count;
    }
    if (all_subsets_frequent) truth.border[itemset] = count;
  }
  return truth;
}

void ExpectModelMatchesTruth(const ItemsetModel& model,
                             const GroundTruth& truth) {
  ASSERT_EQ(model.NumFrequent(), truth.frequent.size());
  ASSERT_EQ(model.NumBorder(), truth.border.size());
  for (const auto& [itemset, count] : truth.frequent) {
    ASSERT_TRUE(model.IsFrequent(itemset)) << ToString(itemset);
    EXPECT_EQ(model.CountOf(itemset), count) << ToString(itemset);
  }
  for (const auto& [itemset, count] : truth.border) {
    ASSERT_TRUE(model.Contains(itemset)) << ToString(itemset);
    ASSERT_FALSE(model.IsFrequent(itemset)) << ToString(itemset);
    EXPECT_EQ(model.CountOf(itemset), count) << ToString(itemset);
  }
}

TEST(AprioriTest, HandWorkedExample) {
  // 4 transactions over items {0,1,2}; minsup 0.5 -> min count 2.
  auto block = MakeBlock({Transaction({0, 1}), Transaction({0, 1, 2}),
                          Transaction({0, 2}), Transaction({1})});
  const ItemsetModel model = Apriori({block}, 0.5, 3);
  EXPECT_EQ(model.num_transactions(), 4u);
  EXPECT_EQ(model.MinCount(), 2u);
  // Counts: {0}=3 {1}=3 {2}=2 {0,1}=2 {0,2}=2 {1,2}=1 {0,1,2}=1.
  EXPECT_TRUE(model.IsFrequent({0}));
  EXPECT_TRUE(model.IsFrequent({1}));
  EXPECT_TRUE(model.IsFrequent({2}));
  EXPECT_TRUE(model.IsFrequent({0, 1}));
  EXPECT_TRUE(model.IsFrequent({0, 2}));
  EXPECT_FALSE(model.IsFrequent({1, 2}));
  // {1,2} is a border member (both subsets frequent); {0,1,2} is not (its
  // subset {1,2} is infrequent).
  EXPECT_TRUE(model.Contains({1, 2}));
  EXPECT_FALSE(model.Contains({0, 1, 2}));
  EXPECT_EQ(model.CountOf({0, 1}), 2u);
  EXPECT_EQ(model.CountOf({1, 2}), 1u);
}

TEST(AprioriTest, InfrequentSingleItemsAreBorderMembers) {
  auto block = MakeBlock({Transaction({0}), Transaction({0}),
                          Transaction({1})});
  const ItemsetModel model = Apriori({block}, 0.6, 3);
  EXPECT_TRUE(model.IsFrequent({0}));
  EXPECT_TRUE(model.Contains({1}));
  EXPECT_FALSE(model.IsFrequent({1}));
  // Item 2 never occurs: count 0 but still in the border.
  EXPECT_TRUE(model.Contains({2}));
  EXPECT_EQ(model.CountOf({2}), 0u);
}

TEST(AprioriTest, MultiBlockCountsAreSummed) {
  auto b1 = MakeBlock({Transaction({0, 1}), Transaction({0})});
  auto b2 = MakeBlock({Transaction({0, 1}), Transaction({1})}, 2);
  const ItemsetModel model = Apriori({b1, b2}, 0.5, 2);
  EXPECT_EQ(model.num_transactions(), 4u);
  EXPECT_EQ(model.CountOf({0}), 3u);
  EXPECT_EQ(model.CountOf({1}), 3u);
  EXPECT_EQ(model.CountOf({0, 1}), 2u);
  EXPECT_TRUE(model.IsFrequent({0, 1}));
}

struct RandomCaseParam {
  uint64_t seed;
  double minsup;
  size_t num_items;
  size_t num_transactions;
};

class AprioriRandomizedTest
    : public ::testing::TestWithParam<RandomCaseParam> {};

TEST_P(AprioriRandomizedTest, MatchesBruteForceEnumeration) {
  const RandomCaseParam param = GetParam();
  Rng rng(param.seed);
  std::vector<Transaction> transactions;
  for (size_t i = 0; i < param.num_transactions; ++i) {
    std::vector<Item> items;
    for (Item item = 0; item < param.num_items; ++item) {
      if (rng.NextBernoulli(0.35)) items.push_back(item);
    }
    if (items.empty()) items.push_back(0);
    transactions.push_back(Transaction(std::move(items)));
  }
  auto block = MakeBlock(std::move(transactions));
  const GroundTruth truth =
      BruteForce({block}, param.minsup, param.num_items);
  const ItemsetModel model = Apriori({block}, param.minsup, param.num_items);
  ExpectModelMatchesTruth(model, truth);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AprioriRandomizedTest,
    ::testing::Values(RandomCaseParam{1, 0.30, 6, 50},
                      RandomCaseParam{2, 0.20, 7, 80},
                      RandomCaseParam{3, 0.40, 8, 60},
                      RandomCaseParam{4, 0.10, 6, 200},
                      RandomCaseParam{5, 0.50, 9, 40},
                      RandomCaseParam{6, 0.05, 5, 500},
                      RandomCaseParam{7, 0.25, 10, 100}));

TEST(CandidateGenerationTest, JoinAndPrune) {
  // Frequent 2-itemsets {0,1},{0,2},{1,2},{1,3}: join gives {0,1,2} (kept:
  // all subsets frequent) and {1,2,3} (pruned: {2,3} infrequent).
  std::vector<Itemset> frequent = {{0, 1}, {0, 2}, {1, 2}, {1, 3}};
  ItemsetSet lookup(frequent.begin(), frequent.end());
  auto candidates = GenerateCandidates(
      frequent, [&lookup](const Itemset& s) { return lookup.count(s) > 0; });
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0], (Itemset{0, 1, 2}));
}

TEST(CandidateGenerationTest, PairCandidatesFromItems) {
  auto candidates = GeneratePairCandidates({3, 1, 2});
  ASSERT_EQ(candidates.size(), 3u);
  EXPECT_EQ(candidates[0], (Itemset{1, 2}));
  EXPECT_EQ(candidates[1], (Itemset{1, 3}));
  EXPECT_EQ(candidates[2], (Itemset{2, 3}));
}

}  // namespace
}  // namespace demon
