// Model-evolution metrics end to end: every maintainer's
// DescribeEvolution, the engine's per-block timeline records, the
// evolution gauges, CPU-time split, and the churn alert pipeline.
//
// The anchor is the golden recount: the per-block adds/removes/churn the
// engine reports for an itemset monitor must equal a post-hoc diff of the
// model's FrequentItemsets() snapshots taken between blocks.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/telemetry_timeline.h"
#include "core/demon_monitor.h"
#include "datagen/cluster_generator.h"
#include "datagen/labeled_generator.h"
#include "datagen/quest_generator.h"

namespace demon {
namespace {

std::vector<TransactionBlock> MakeBlocks(size_t num_blocks, size_t block_size,
                                         size_t num_items, uint64_t seed,
                                         size_t num_patterns = 30,
                                         size_t avg_len = 6) {
  QuestParams params;
  params.num_transactions = num_blocks * block_size;
  params.num_items = num_items;
  params.num_patterns = num_patterns;
  params.avg_transaction_len = avg_len;
  params.seed = seed;
  QuestGenerator gen(params);
  std::vector<TransactionBlock> blocks;
  Tid tid = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    blocks.push_back(gen.NextBlock(block_size, tid));
    tid += block_size;
  }
  return blocks;
}

/// The recount half of the golden test: the same diff the
/// SetEvolutionTracker computes, re-derived from model snapshots.
struct Recount {
  uint64_t added = 0;
  uint64_t removed = 0;
  double churn = 0.0;
};

Recount DiffItemsets(std::vector<Itemset> before, std::vector<Itemset> after) {
  std::sort(before.begin(), before.end());
  std::sort(after.begin(), after.end());
  std::vector<Itemset> gained, lost;
  std::set_difference(after.begin(), after.end(), before.begin(),
                      before.end(), std::back_inserter(gained));
  std::set_difference(before.begin(), before.end(), after.begin(),
                      after.end(), std::back_inserter(lost));
  Recount recount;
  recount.added = gained.size();
  recount.removed = lost.size();
  const uint64_t denom =
      std::max<uint64_t>(std::max(before.size(), after.size()), 1);
  recount.churn = static_cast<double>(recount.added + recount.removed) /
                  static_cast<double>(denom);
  return recount;
}

TEST(EvolutionTest, ItemsetChurnMatchesPostHocRecount) {
  const size_t num_items = 30;
  EngineOptions engine;
  DemonMonitor demon(num_items, engine);
  const auto id = demon
                      .AddMonitor({.kind = MonitorKind::kUnrestrictedItemsets,
                                   .name = "uw",
                                   .minsup = 0.05})
                      .value();

  // Three stationary blocks, then a distribution shift (different pattern
  // pool and longer transactions).
  auto blocks = MakeBlocks(3, 200, num_items, 71);
  for (auto& block : MakeBlocks(3, 200, num_items, 99, 8, 9)) {
    blocks.push_back(std::move(block));
  }

  std::vector<Itemset> prev;  // empty before the first block
  std::vector<Recount> recounts;
  for (auto& block : blocks) {
    demon.AddBlock(std::move(block));
    std::vector<Itemset> current =
        demon.ItemsetModelOf(id).value()->FrequentItemsets();
    recounts.push_back(DiffItemsets(prev, current));
    prev = std::move(current);
  }

  const auto records = demon.TimelineRecords();
  ASSERT_EQ(records.size(), blocks.size());
  for (size_t b = 0; b < records.size(); ++b) {
    ASSERT_EQ(records[b].monitors.size(), 1u);
    const auto& row = records[b].monitors[0];
    EXPECT_EQ(row.name, "uw");
    const EvolutionStats& evo = row.evolution;
    EXPECT_EQ(evo.blocks, b + 1) << "block " << b;
    EXPECT_EQ(evo.added, recounts[b].added) << "block " << b;
    EXPECT_EQ(evo.removed, recounts[b].removed) << "block " << b;
    EXPECT_DOUBLE_EQ(evo.churn, recounts[b].churn) << "block " << b;
    ASSERT_NE(evo.aux_name, nullptr);
    EXPECT_STREQ(evo.aux_name, "negative_border");
  }
  // The last record's element count is the final model size.
  EXPECT_EQ(records.back().monitors[0].evolution.elements, prev.size());
  // The shift block actually churned — the recount is not vacuous.
  EXPECT_GT(recounts[3].churn, 0.0);

  // The gauges publish the last block's evolution.
  telemetry::TelemetryRegistry* registry = demon.telemetry();
  EXPECT_DOUBLE_EQ(registry->gauge("evolution/uw/churn")->value(),
                   recounts.back().churn);
  EXPECT_DOUBLE_EQ(registry->gauge("evolution/uw/added")->value(),
                   static_cast<double>(recounts.back().added));
  EXPECT_DOUBLE_EQ(registry->gauge("evolution/uw/removed")->value(),
                   static_cast<double>(recounts.back().removed));
  EXPECT_DOUBLE_EQ(registry->gauge("evolution/uw/elements")->value(),
                   static_cast<double>(prev.size()));

  // StatsOf folds the same struct in.
  const MonitorStats stats = demon.StatsOf(id).value();
  EXPECT_EQ(stats.evolution.added, recounts.back().added);
  EXPECT_DOUBLE_EQ(stats.evolution.churn, recounts.back().churn);
}

TEST(EvolutionTest, ChurnAlertFiresOnShiftAndStaysSilentWhenStationary) {
  const size_t num_items = 30;
  const auto run = [&](bool shift) {
    DemonMonitor demon(num_items);
    (void)demon
        .AddMonitor({.kind = MonitorKind::kUnrestrictedItemsets,
                     .name = "uw",
                     .minsup = 0.05})
        .value();
    telemetry::TelemetryScraper scraper({.registry = demon.telemetry()});
    telemetry::AlertPolicy policy;
    EXPECT_TRUE(telemetry::ParseAlertPolicy("evolution/uw/churn>0.2", &policy,
                                            nullptr));
    scraper.AddPolicy(policy);

    // Warm-up blocks establish the model, then either a continuation of
    // the very same stream (stationary) or a shifted distribution.
    auto blocks = MakeBlocks(6, 200, num_items, 71);
    if (shift) {
      blocks.resize(3);
      for (auto& block : MakeBlocks(3, 200, num_items, 99, 8, 9)) {
        blocks.push_back(std::move(block));
      }
    }
    size_t fed = 0;
    for (auto& block : blocks) {
      demon.AddBlock(std::move(block));
      // The model needs a settled baseline before churn means "shift":
      // start evaluating after the warm-up.
      if (++fed > 3) scraper.ScrapeNow();
    }
    return scraper.Alerts().size();
  };
  EXPECT_GT(run(/*shift=*/true), 0u);
  EXPECT_EQ(run(/*shift=*/false), 0u);
}

TEST(EvolutionTest, WindowedItemsetEvolutionSurvivesWindowSlides) {
  const size_t num_items = 30;
  DemonMonitor demon(num_items);
  const auto id = demon
                      .AddMonitor({.kind = MonitorKind::kWindowedItemsets,
                                   .name = "mrw",
                                   .window = 2,
                                   .minsup = 0.05})
                      .value();
  for (auto& block : MakeBlocks(5, 200, num_items, 73)) {
    demon.AddBlock(std::move(block));
  }
  demon.Quiesce();
  const EvolutionStats evo = demon.StatsOf(id).value().evolution;
  EXPECT_EQ(evo.blocks, 5u);
  EXPECT_EQ(evo.elements,
            demon.ItemsetModelOf(id).value()->FrequentItemsets().size());
  EXPECT_GE(evo.churn, 0.0);
  EXPECT_LE(evo.churn, 2.0);
}

TEST(EvolutionTest, ClusterEvolutionReportsRadiusDriftAndRebuilds) {
  ClusterGenParams params;
  params.num_points = 1200;
  params.num_clusters = 3;
  params.dim = 2;
  params.seed = 74;
  ClusterGenerator gen(params);

  BirchOptions birch;
  birch.num_clusters = 3;
  birch.tree.max_leaf_entries = 64;

  DemonMonitor demon(0);
  const auto uw = demon
                      .AddMonitor({.kind = MonitorKind::kUnrestrictedClusters,
                                   .name = "uw-clusters",
                                   .dim = params.dim,
                                   .birch = birch})
                      .value();
  const auto mrw = demon
                       .AddMonitor({.kind = MonitorKind::kWindowedClusters,
                                    .name = "mrw-clusters",
                                    .window = 2,
                                    .dim = params.dim,
                                    .birch = birch})
                       .value();
  for (int b = 0; b < 4; ++b) demon.AddPointBlock(gen.NextBlock(300));
  demon.Quiesce();

  for (const auto id : {uw, mrw}) {
    const EvolutionStats evo = demon.StatsOf(id).value().evolution;
    EXPECT_EQ(evo.blocks, 4u);
    EXPECT_GT(evo.elements, 0u);
    ASSERT_NE(evo.aux_name, nullptr);
    EXPECT_STREQ(evo.aux_name, "radius_drift");
    EXPECT_GE(evo.aux, 0.0);
    ASSERT_NE(evo.aux2_name, nullptr);
    EXPECT_STREQ(evo.aux2_name, "rebuilds");
  }
}

TEST(EvolutionTest, ClassifierEvolutionTracksSplitChurn) {
  LabeledGenerator::Params params;
  params.schema.attribute_cardinalities.assign(5, 2);
  params.schema.num_classes = 2;
  params.seed = 75;
  LabeledGenerator gen(params);

  DemonMonitor demon(0);
  const auto id = demon
                      .AddMonitor({.kind = MonitorKind::kClassifier,
                                   .name = "tree",
                                   .schema = params.schema,
                                   .dtree = DTreeOptions{}})
                      .value();
  for (int b = 0; b < 3; ++b) demon.AddLabeledBlock(gen.NextBlock(800));
  demon.Quiesce();

  const EvolutionStats evo = demon.StatsOf(id).value().evolution;
  EXPECT_EQ(evo.blocks, 3u);
  ASSERT_NE(evo.aux_name, nullptr);
  EXPECT_STREQ(evo.aux_name, "leaves");
  EXPECT_DOUBLE_EQ(
      evo.aux,
      static_cast<double>(demon.ClassifierOf(id).value()->NumLeaves()));
}

TEST(EvolutionTest, PatternEvolutionTracksSequenceChurn) {
  const size_t num_items = 25;
  DemonMonitor demon(num_items);
  const auto id = demon
                      .AddMonitor({.kind = MonitorKind::kPatterns,
                                   .name = "patterns",
                                   .minsup = 0.05,
                                   .alpha = 0.95})
                      .value();
  for (auto& block : MakeBlocks(4, 150, num_items, 76)) {
    demon.AddBlock(std::move(block));
  }
  const EvolutionStats evo = demon.StatsOf(id).value().evolution;
  EXPECT_EQ(evo.blocks, 4u);
  EXPECT_EQ(evo.elements, demon.PatternsOf(id).value()->sequences().size());
}

TEST(EvolutionTest, CpuTimeIsMeasuredNextToWallTime) {
  const size_t num_items = 30;
  DemonMonitor demon(num_items);
  const auto id = demon
                      .AddMonitor({.kind = MonitorKind::kWindowedItemsets,
                                   .name = "mrw",
                                   .window = 2,
                                   .minsup = 0.05})
                      .value();
  for (auto& block : MakeBlocks(3, 300, num_items, 77)) {
    demon.AddBlock(std::move(block));
  }
  demon.Quiesce();
  const MonitorStats stats = demon.StatsOf(id).value();
  EXPECT_GT(stats.response_cpu_seconds, 0.0);
  EXPECT_GT(stats.response_seconds, 0.0);
  // Thread CPU time can never exceed wall time on the same thread by more
  // than clock granularity.
  EXPECT_LE(stats.response_cpu_seconds, stats.response_seconds * 1.5 + 0.05);
  EXPECT_LE(stats.last_response_cpu_seconds, stats.response_cpu_seconds);
}

TEST(EvolutionTest, TimelineRingIsBoundedAndKeepsNewestBlocks) {
  const size_t num_items = 20;
  EngineOptions engine;
  engine.block_timeline_capacity = 2;
  DemonMonitor demon(num_items, engine);
  (void)demon
      .AddMonitor({.kind = MonitorKind::kUnrestrictedItemsets,
                   .name = "uw",
                   .minsup = 0.1})
      .value();
  for (auto& block : MakeBlocks(5, 100, num_items, 78)) {
    demon.AddBlock(std::move(block));
  }
  const auto records = demon.TimelineRecords();
  ASSERT_EQ(records.size(), 2u);
  // Block ids are 1-based; the ring keeps the two newest of the five.
  EXPECT_EQ(records[0].block_id + 1, records[1].block_id);
  EXPECT_EQ(records[1].block_id, 5u);
}

TEST(EvolutionTest, TimelineDisabledWithZeroCapacity) {
  EngineOptions engine;
  engine.block_timeline_capacity = 0;
  DemonMonitor demon(20, engine);
  (void)demon
      .AddMonitor({.kind = MonitorKind::kUnrestrictedItemsets,
                   .name = "uw",
                   .minsup = 0.1})
      .value();
  for (auto& block : MakeBlocks(3, 100, 20, 79)) {
    demon.AddBlock(std::move(block));
  }
  EXPECT_TRUE(demon.TimelineRecords().empty());
}

TEST(BlockTimelineJsonlTest, RendersOneObjectPerBlock) {
  BlockTimelineRecord record;
  record.block_id = 3;
  record.t_ns = 1000;
  record.records = 250;
  record.tidlist_resident_bytes = 4096.0;
  record.tokens_in_flight = 2.0;
  BlockTimelineRecord::MonitorRow row;
  row.name = "uw";
  row.response_seconds = 0.5;
  row.response_cpu_seconds = 0.25;
  row.evolution.blocks = 3;
  row.evolution.elements = 10;
  row.evolution.added = 4;
  row.evolution.removed = 2;
  row.evolution.churn = 0.6;
  row.evolution.aux = 7.0;
  row.evolution.aux_name = "negative_border";
  record.monitors.push_back(row);

  const std::string jsonl = BlockTimelineJsonl({record});
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 1);
  EXPECT_NE(jsonl.find("\"type\":\"block\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"block\":3"), std::string::npos);
  EXPECT_NE(jsonl.find("\"records\":250"), std::string::npos);
  EXPECT_NE(jsonl.find("\"tidlist_resident_bytes\":4096"), std::string::npos);
  EXPECT_NE(jsonl.find("\"tokens_in_flight\":2"), std::string::npos);
  EXPECT_NE(jsonl.find("\"uw\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"added\":4"), std::string::npos);
  EXPECT_NE(jsonl.find("\"removed\":2"), std::string::npos);
  EXPECT_NE(jsonl.find("\"churn\":0.6"), std::string::npos);
  EXPECT_NE(jsonl.find("\"negative_border\":7"), std::string::npos);
}

TEST(EvolutionTest, ParallelEngineMatchesSequentialEvolution) {
  // Evolution capture happens at the quiesced response barrier, so a
  // 4-thread engine must report block-identical evolution to a
  // sequential one.
  const size_t num_items = 30;
  const auto run = [&](size_t threads) {
    EngineOptions engine;
    engine.num_threads = threads;
    engine.defer_offline = threads > 0;
    DemonMonitor demon(num_items, engine);
    (void)demon
        .AddMonitor({.kind = MonitorKind::kUnrestrictedItemsets,
                     .name = "uw",
                     .minsup = 0.05})
        .value();
    (void)demon
        .AddMonitor({.kind = MonitorKind::kWindowedItemsets,
                     .name = "mrw",
                     .window = 2,
                     .minsup = 0.05})
        .value();
    for (auto& block : MakeBlocks(4, 200, num_items, 80)) {
      demon.AddBlock(std::move(block));
    }
    return demon.TimelineRecords();
  };
  const auto sequential = run(0);
  const auto parallel = run(4);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (size_t b = 0; b < sequential.size(); ++b) {
    ASSERT_EQ(sequential[b].monitors.size(), parallel[b].monitors.size());
    for (size_t m = 0; m < sequential[b].monitors.size(); ++m) {
      const EvolutionStats& s = sequential[b].monitors[m].evolution;
      const EvolutionStats& p = parallel[b].monitors[m].evolution;
      EXPECT_EQ(s.blocks, p.blocks);
      EXPECT_EQ(s.elements, p.elements);
      EXPECT_EQ(s.added, p.added);
      EXPECT_EQ(s.removed, p.removed);
      EXPECT_DOUBLE_EQ(s.churn, p.churn);
    }
  }
}

}  // namespace
}  // namespace demon
