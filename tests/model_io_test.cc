#include "itemsets/model_io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "datagen/quest_generator.h"
#include "itemsets/apriori.h"

namespace demon {
namespace {

ItemsetModel MineModel(uint64_t seed) {
  QuestParams params;
  params.num_transactions = 1200;
  params.num_items = 60;
  params.num_patterns = 40;
  params.avg_transaction_len = 8;
  params.seed = seed;
  QuestGenerator gen(params);
  auto block = std::make_shared<TransactionBlock>(gen.GenerateAll());
  return Apriori({block}, 0.04, params.num_items);
}

TEST(ModelIoTest, RoundTripIsExact) {
  const ItemsetModel model = MineModel(41);
  const std::string path = ::testing::TempDir() + "/model.bin";
  ASSERT_TRUE(WriteItemsetModel(model, path).ok());

  auto reread = ReadItemsetModel(path);
  ASSERT_TRUE(reread.ok()) << reread.status();
  const ItemsetModel& loaded = reread.value();
  EXPECT_DOUBLE_EQ(loaded.minsup(), model.minsup());
  EXPECT_EQ(loaded.num_items(), model.num_items());
  EXPECT_EQ(loaded.num_transactions(), model.num_transactions());
  ASSERT_EQ(loaded.entries().size(), model.entries().size());
  for (const auto& [itemset, entry] : model.entries()) {
    const auto it = loaded.entries().find(itemset);
    ASSERT_NE(it, loaded.entries().end()) << ToString(itemset);
    EXPECT_EQ(it->second.count, entry.count);
    EXPECT_EQ(it->second.frequent, entry.frequent);
  }
  std::remove(path.c_str());
}

TEST(ModelIoTest, SerializedBytesMatchesFileSize) {
  const ItemsetModel model = MineModel(42);
  const std::string path = ::testing::TempDir() + "/model_size.bin";
  ASSERT_TRUE(WriteItemsetModel(model, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long file_size = std::ftell(f);
  std::fclose(f);
  EXPECT_EQ(static_cast<uint64_t>(file_size), SerializedModelBytes(model));
  std::remove(path.c_str());
}

TEST(ModelIoTest, ModelIsTinyComparedToData) {
  // §3.2.3: "the space occupied by a model is insignificant when compared
  // to that occupied by the data in each block".
  QuestParams params;
  params.num_transactions = 30000;
  params.num_items = 100;
  params.num_patterns = 50;
  params.avg_transaction_len = 10;
  params.seed = 43;
  QuestGenerator gen(params);
  auto block = std::make_shared<TransactionBlock>(gen.GenerateAll());
  const ItemsetModel model = Apriori({block}, 0.10, params.num_items);
  const uint64_t data_bytes = block->TotalItemOccurrences() * sizeof(Item);
  EXPECT_LT(SerializedModelBytes(model), data_bytes);
}

TEST(ModelIoTest, MissingFileFails) {
  auto result = ReadItemsetModel("/nonexistent/model.bin");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(ModelIoTest, TruncatedValidModelFails) {
  // A real serialized model chopped mid-stream must be rejected, not read
  // back as a smaller model.
  const ItemsetModel model = MineModel(44);
  const std::string path = ::testing::TempDir() + "/truncated_model.bin";
  ASSERT_TRUE(WriteItemsetModel(model, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long full_size = std::ftell(f);
  std::fclose(f);
  ASSERT_GT(full_size, 16);
  ASSERT_EQ(truncate(path.c_str(), full_size - full_size / 3), 0);

  auto result = ReadItemsetModel(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST(ModelIoTest, CorruptFileFails) {
  const std::string path = ::testing::TempDir() + "/corrupt_model.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[16] = "not a model";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_FALSE(ReadItemsetModel(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace demon
