#include "itemsets/model_io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>

#include "datagen/quest_generator.h"
#include "itemsets/apriori.h"

namespace demon {
namespace {

ItemsetModel MineModel(uint64_t seed) {
  QuestParams params;
  params.num_transactions = 1200;
  params.num_items = 60;
  params.num_patterns = 40;
  params.avg_transaction_len = 8;
  params.seed = seed;
  QuestGenerator gen(params);
  auto block = std::make_shared<TransactionBlock>(gen.GenerateAll());
  return Apriori({block}, 0.04, params.num_items);
}

TEST(ModelIoTest, RoundTripIsExact) {
  const ItemsetModel model = MineModel(41);
  const std::string path = ::testing::TempDir() + "/model.bin";
  ASSERT_TRUE(WriteItemsetModel(model, path).ok());

  auto reread = ReadItemsetModel(path);
  ASSERT_TRUE(reread.ok()) << reread.status();
  const ItemsetModel& loaded = reread.value();
  EXPECT_DOUBLE_EQ(loaded.minsup(), model.minsup());
  EXPECT_EQ(loaded.num_items(), model.num_items());
  EXPECT_EQ(loaded.num_transactions(), model.num_transactions());
  ASSERT_EQ(loaded.entries().size(), model.entries().size());
  for (const auto& [itemset, entry] : model.entries()) {
    const auto it = loaded.entries().find(itemset);
    ASSERT_NE(it, loaded.entries().end()) << ToString(itemset);
    EXPECT_EQ(it->second.count, entry.count);
    EXPECT_EQ(it->second.frequent, entry.frequent);
  }
  std::remove(path.c_str());
}

long WrittenFileSize(const ItemsetModel& model, const char* name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  EXPECT_TRUE(WriteItemsetModel(model, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long file_size = std::ftell(f);
  std::fclose(f);
  std::remove(path.c_str());
  return file_size;
}

// SerializedModelBytes is an independent prediction of the writer's output
// size; the writer and the predictor must never drift apart. Cover the
// degenerate, minimal, and realistic shapes.
TEST(ModelIoTest, SerializedBytesMatchesFileSizeEmptyModel) {
  const ItemsetModel model(0.05, 10);
  EXPECT_EQ(static_cast<uint64_t>(WrittenFileSize(model, "model_empty.bin")),
            SerializedModelBytes(model));
}

TEST(ModelIoTest, SerializedBytesMatchesFileSizeSingleItemset) {
  ItemsetModel model(0.05, 10);
  model.set_num_transactions(100);
  model.mutable_entries()->emplace(Itemset{3, 7, 9},
                                   ItemsetModel::Entry{42, true});
  EXPECT_EQ(static_cast<uint64_t>(WrittenFileSize(model, "model_one.bin")),
            SerializedModelBytes(model));
}

TEST(ModelIoTest, SerializedBytesMatchesFileSizeLargeModel) {
  const ItemsetModel model = MineModel(42);
  ASSERT_GT(model.entries().size(), 100u);
  EXPECT_EQ(static_cast<uint64_t>(WrittenFileSize(model, "model_large.bin")),
            SerializedModelBytes(model));
}

TEST(ModelIoTest, SerializationIsDeterministic) {
  // Entries live in an unordered map, but the writer emits them in
  // canonical order: equal models must produce byte-identical payloads
  // (checkpoint equivalence tests compare serialized state directly).
  const ItemsetModel model = MineModel(45);
  persistence::Writer a;
  persistence::Writer b;
  SerializeItemsetModel(a, model);
  SerializeItemsetModel(b, model);
  EXPECT_EQ(a.buffer(), b.buffer());

  persistence::Reader r(a.buffer());
  ItemsetModel reloaded;
  DeserializeItemsetModel(r, &reloaded);
  ASSERT_TRUE(r.status().ok()) << r.status();
  persistence::Writer c;
  SerializeItemsetModel(c, reloaded);
  EXPECT_EQ(a.buffer(), c.buffer());
}

TEST(ModelIoTest, ModelIsTinyComparedToData) {
  // §3.2.3: "the space occupied by a model is insignificant when compared
  // to that occupied by the data in each block".
  QuestParams params;
  params.num_transactions = 30000;
  params.num_items = 100;
  params.num_patterns = 50;
  params.avg_transaction_len = 10;
  params.seed = 43;
  QuestGenerator gen(params);
  auto block = std::make_shared<TransactionBlock>(gen.GenerateAll());
  const ItemsetModel model = Apriori({block}, 0.10, params.num_items);
  const uint64_t data_bytes = block->TotalItemOccurrences() * sizeof(Item);
  EXPECT_LT(SerializedModelBytes(model), data_bytes);
}

TEST(ModelIoTest, MissingFileFails) {
  auto result = ReadItemsetModel("/nonexistent/model.bin");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(ModelIoTest, TruncatedValidModelFails) {
  // A real serialized model chopped mid-stream must be rejected, not read
  // back as a smaller model.
  const ItemsetModel model = MineModel(44);
  const std::string path = ::testing::TempDir() + "/truncated_model.bin";
  ASSERT_TRUE(WriteItemsetModel(model, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long full_size = std::ftell(f);
  std::fclose(f);
  ASSERT_GT(full_size, 16);
  ASSERT_EQ(truncate(path.c_str(), full_size - full_size / 3), 0);

  auto result = ReadItemsetModel(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(ModelIoTest, CorruptFileFails) {
  const std::string path = ::testing::TempDir() + "/corrupt_model.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[32] = "not a model";
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  auto result = ReadItemsetModel(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace demon
