#include "itemsets/disk_counting.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/random.h"
#include "datagen/quest_generator.h"
#include "itemsets/apriori.h"

namespace demon {
namespace {

struct DiskFixture {
  std::shared_ptr<const TransactionBlock> block;
  std::string tx_path;
  std::string tl_path;
  size_t num_items;

  ~DiskFixture() {
    std::remove(tx_path.c_str());
    std::remove(tl_path.c_str());
  }
};

DiskFixture MakeFixture(uint64_t seed, bool with_pairs) {
  QuestParams params;
  params.num_transactions = 1500;
  params.num_items = 80;
  params.num_patterns = 40;
  params.avg_transaction_len = 8;
  params.seed = seed;
  QuestGenerator gen(params);

  DiskFixture fixture;
  fixture.num_items = params.num_items;
  fixture.block = std::make_shared<TransactionBlock>(gen.GenerateAll());
  fixture.tx_path = ::testing::TempDir() + "/txns_" +
                    std::to_string(seed) + ".bin";
  fixture.tl_path = ::testing::TempDir() + "/lists_" +
                    std::to_string(seed) + ".bin";

  EXPECT_TRUE(TransactionFile::Write(*fixture.block, fixture.tx_path).ok());

  PairMaterializationSpec spec;
  if (with_pairs) {
    const ItemsetModel model =
        Apriori({fixture.block}, 0.03, params.num_items);
    spec.pairs = model.Frequent2ItemsetsBySupport();
  }
  auto lists = BlockTidLists::Build(*fixture.block, params.num_items,
                                    with_pairs ? &spec : nullptr);
  EXPECT_TRUE(TidListFile::Write(*lists, fixture.tl_path).ok());
  return fixture;
}

std::vector<Itemset> SampleItemsets(size_t count, size_t num_items,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<Itemset> itemsets;
  while (itemsets.size() < count) {
    Itemset itemset;
    const size_t size = 1 + rng.NextUint64(4);
    while (itemset.size() < size) {
      const Item item = static_cast<Item>(rng.NextUint64(num_items));
      if (!std::binary_search(itemset.begin(), itemset.end(), item)) {
        itemset.insert(std::lower_bound(itemset.begin(), itemset.end(), item),
                       item);
      }
    }
    itemsets.push_back(std::move(itemset));
  }
  return itemsets;
}

TEST(TransactionFileTest, RoundTrip) {
  const DiskFixture fixture = MakeFixture(71, false);
  auto reread = TransactionFile::Read(fixture.tx_path);
  ASSERT_TRUE(reread.ok()) << reread.status();
  const TransactionBlock& loaded = reread.value();
  ASSERT_EQ(loaded.size(), fixture.block->size());
  for (size_t i = 0; i < loaded.size(); ++i) {
    EXPECT_EQ(loaded.transactions()[i], fixture.block->transactions()[i]);
  }
}

TEST(TransactionFileTest, ScannerVisitsAllAndTracksBytes) {
  const DiskFixture fixture = MakeFixture(72, false);
  auto scanner_result = TransactionFileScanner::Open(fixture.tx_path);
  ASSERT_TRUE(scanner_result.ok());
  auto& scanner = *scanner_result.value();
  size_t visits = 0;
  ASSERT_TRUE(scanner.Scan([&visits](const Transaction&) { ++visits; }).ok());
  EXPECT_EQ(visits, fixture.block->size());
  EXPECT_GT(scanner.bytes_read(), 0u);
  // Scanning twice rewinds correctly.
  visits = 0;
  ASSERT_TRUE(scanner.Scan([&visits](const Transaction&) { ++visits; }).ok());
  EXPECT_EQ(visits, fixture.block->size());
}

TEST(TidListFileTest, IndexedReadsMatchInMemoryLists) {
  const DiskFixture fixture = MakeFixture(73, true);
  auto lists = BlockTidLists::Build(*fixture.block, fixture.num_items);
  auto reader_result = TidListFileReader::Open(fixture.tl_path);
  ASSERT_TRUE(reader_result.ok()) << reader_result.status();
  auto& reader = *reader_result.value();
  EXPECT_EQ(reader.num_transactions(), fixture.block->size());
  TidList list;
  for (Item item = 0; item < fixture.num_items; ++item) {
    ASSERT_TRUE(reader.ReadItemList(item, &list).ok());
    EXPECT_EQ(list, lists->MaterializeItemList(item)) << "item " << item;
    EXPECT_EQ(reader.ItemListLength(item), lists->ItemListSize(item));
  }
}

TEST(TidListFileTest, PairListsRoundTrip) {
  const DiskFixture fixture = MakeFixture(74, true);
  PairMaterializationSpec spec;
  const ItemsetModel model = Apriori({fixture.block}, 0.03, fixture.num_items);
  spec.pairs = model.Frequent2ItemsetsBySupport();
  auto lists =
      BlockTidLists::Build(*fixture.block, fixture.num_items, &spec);
  auto reader_result = TidListFileReader::Open(fixture.tl_path);
  ASSERT_TRUE(reader_result.ok());
  auto& reader = *reader_result.value();
  for (const auto& [a, b] : lists->MaterializedPairs()) {
    ASSERT_TRUE(reader.HasPairList(a, b));
    TidList list;
    ASSERT_TRUE(reader.ReadPairList(a, b, &list).ok());
    EXPECT_EQ(list, lists->MaterializePairList(a, b));
  }
  TidList dummy;
  EXPECT_EQ(reader.ReadPairList(78, 79, &dummy).code(),
            StatusCode::kNotFound);
}

TEST(DiskCountingTest, MatchesInMemoryCounting) {
  const DiskFixture fixture = MakeFixture(75, true);
  const auto itemsets = SampleItemsets(120, fixture.num_items, 76);

  const auto memory = PtScanCount(itemsets, {fixture.block});

  auto scanner = TransactionFileScanner::Open(fixture.tx_path);
  ASSERT_TRUE(scanner.ok());
  auto disk_pt = PtScanCountDisk(itemsets, {scanner.value().get()});
  ASSERT_TRUE(disk_pt.ok());
  EXPECT_EQ(disk_pt.value(), memory);

  auto reader = TidListFileReader::Open(fixture.tl_path);
  ASSERT_TRUE(reader.ok());
  auto disk_ecut =
      EcutCountDisk(itemsets, {reader.value().get()}, /*use_pair_lists=*/false);
  ASSERT_TRUE(disk_ecut.ok());
  EXPECT_EQ(disk_ecut.value(), memory);

  auto disk_ecut_plus =
      EcutCountDisk(itemsets, {reader.value().get()}, /*use_pair_lists=*/true);
  ASSERT_TRUE(disk_ecut_plus.ok());
  EXPECT_EQ(disk_ecut_plus.value(), memory);
}

TEST(DiskCountingTest, EcutReadsFarFewerBytesForFewItemsets) {
  const DiskFixture fixture = MakeFixture(77, true);
  const auto itemsets = SampleItemsets(5, fixture.num_items, 78);

  auto scanner = TransactionFileScanner::Open(fixture.tx_path);
  auto reader = TidListFileReader::Open(fixture.tl_path);
  ASSERT_TRUE(scanner.ok() && reader.ok());

  CountingStats pt_stats;
  CountingStats ecut_stats;
  ASSERT_TRUE(
      PtScanCountDisk(itemsets, {scanner.value().get()}, &pt_stats).ok());
  ASSERT_TRUE(EcutCountDisk(itemsets, {reader.value().get()}, false,
                            &ecut_stats)
                  .ok());
  EXPECT_LT(ecut_stats.slots_fetched, pt_stats.slots_fetched / 2);
}

TEST(DiskCountingTest, MultiBlockAdditivity) {
  // Two disk blocks; counts must equal the sum of per-block counts and
  // the in-memory count over both blocks.
  const DiskFixture f1 = MakeFixture(79, false);
  const DiskFixture f2 = MakeFixture(80, false);
  const auto itemsets = SampleItemsets(30, f1.num_items, 81);

  auto r1 = TidListFileReader::Open(f1.tl_path);
  auto r2 = TidListFileReader::Open(f2.tl_path);
  ASSERT_TRUE(r1.ok() && r2.ok());
  auto both = EcutCountDisk(itemsets, {r1.value().get(), r2.value().get()},
                            false);
  ASSERT_TRUE(both.ok());
  const auto memory = PtScanCount(itemsets, {f1.block, f2.block});
  EXPECT_EQ(both.value(), memory);
}

}  // namespace
}  // namespace demon
