#include "itemsets/hash_tree.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/quest_generator.h"
#include "itemsets/prefix_tree.h"

namespace demon {
namespace {

TEST(HashTreeTest, BasicCounting) {
  HashTree tree;
  const size_t id13 = tree.Insert({1, 3});
  const size_t id2 = tree.Insert({2});
  tree.CountTransaction(Transaction({1, 2, 3}));
  tree.CountTransaction(Transaction({1, 3}));
  tree.CountTransaction(Transaction({2, 4}));
  EXPECT_EQ(tree.CountOf(id13), 2u);
  EXPECT_EQ(tree.CountOf(id2), 2u);
}

TEST(HashTreeTest, ReinsertReturnsSameId) {
  HashTree tree;
  EXPECT_EQ(tree.Insert({7, 9}), tree.Insert({7, 9}));
  EXPECT_EQ(tree.NumItemsets(), 1u);
}

TEST(HashTreeTest, NoDoubleCountingAcrossHashPaths) {
  // Small fanout forces hash collisions; a transaction with many items
  // reaches the same leaf repeatedly.
  HashTree tree(/*fanout=*/2, /*leaf_capacity=*/1);
  const size_t id = tree.Insert({2, 4});
  tree.Insert({1, 3});
  tree.Insert({5, 6});
  tree.Insert({2, 6});
  tree.CountTransaction(Transaction({1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_EQ(tree.CountOf(id), 1u);
}

TEST(HashTreeTest, SplitsUnderLoadAndStaysCorrect) {
  HashTree tree(/*fanout=*/4, /*leaf_capacity=*/2);
  std::vector<size_t> ids;
  for (Item a = 0; a < 12; ++a) {
    for (Item b = a + 1; b < 12; ++b) ids.push_back(tree.Insert({a, b}));
  }
  tree.CountTransaction(Transaction({0, 1, 2, 3}));
  size_t index = 0;
  for (Item a = 0; a < 12; ++a) {
    for (Item b = a + 1; b < 12; ++b) {
      const uint64_t expected = (a < 4 && b < 4) ? 1 : 0;
      EXPECT_EQ(tree.CountOf(ids[index]), expected)
          << "{" << a << "," << b << "}";
      ++index;
    }
  }
}

TEST(HashTreeTest, MixedSizesIncludingResidents) {
  // Itemsets shorter than the tree depth they reach become residents of
  // interior nodes; counting must still be exact.
  HashTree tree(/*fanout=*/2, /*leaf_capacity=*/1);
  const size_t id1 = tree.Insert({4});
  const size_t id2 = tree.Insert({4, 6});
  const size_t id3 = tree.Insert({4, 6, 8});
  const size_t id4 = tree.Insert({4, 8});
  tree.CountTransaction(Transaction({4, 6}));
  EXPECT_EQ(tree.CountOf(id1), 1u);
  EXPECT_EQ(tree.CountOf(id2), 1u);
  EXPECT_EQ(tree.CountOf(id3), 0u);
  EXPECT_EQ(tree.CountOf(id4), 0u);
}

TEST(HashTreeTest, ResetCounts) {
  HashTree tree;
  const size_t id = tree.Insert({1});
  tree.CountTransaction(Transaction({1}));
  tree.ResetCounts();
  EXPECT_EQ(tree.CountOf(id), 0u);
  tree.CountTransaction(Transaction({1}));
  EXPECT_EQ(tree.CountOf(id), 1u);
}

struct HashTreeParam {
  size_t fanout;
  size_t leaf_capacity;
};

class HashTreeVsPrefixTreeTest
    : public ::testing::TestWithParam<HashTreeParam> {};

TEST_P(HashTreeVsPrefixTreeTest, AgreesWithPrefixTreeOnQuestData) {
  QuestParams params;
  params.num_transactions = 1500;
  params.num_items = 100;
  params.num_patterns = 50;
  params.avg_transaction_len = 8;
  params.seed = 61;
  QuestGenerator gen(params);
  const TransactionBlock block = gen.GenerateAll();

  Rng rng(62);
  PrefixTree prefix_tree;
  HashTree hash_tree(GetParam().fanout, GetParam().leaf_capacity);
  std::vector<std::pair<size_t, size_t>> ids;
  for (int s = 0; s < 300; ++s) {
    Itemset itemset;
    const size_t size = 1 + rng.NextUint64(4);
    while (itemset.size() < size) {
      const Item item = static_cast<Item>(rng.NextUint64(100));
      if (!std::binary_search(itemset.begin(), itemset.end(), item)) {
        itemset.insert(std::lower_bound(itemset.begin(), itemset.end(), item),
                       item);
      }
    }
    ids.push_back({prefix_tree.Insert(itemset), hash_tree.Insert(itemset)});
  }
  for (const Transaction& t : block.transactions()) {
    prefix_tree.CountTransaction(t);
    hash_tree.CountTransaction(t);
  }
  for (const auto& [pid, hid] : ids) {
    ASSERT_EQ(hash_tree.CountOf(hid), prefix_tree.CountOf(pid));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, HashTreeVsPrefixTreeTest,
                         ::testing::Values(HashTreeParam{2, 1},
                                           HashTreeParam{4, 4},
                                           HashTreeParam{8, 16},
                                           HashTreeParam{16, 64}),
                         [](const auto& info) {
                           std::string name = "F";
                           name += std::to_string(info.param.fanout);
                           name += "L";
                           name += std::to_string(info.param.leaf_capacity);
                           return name;
                         });

}  // namespace
}  // namespace demon
