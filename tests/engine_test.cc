#include "core/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/demon_monitor.h"
#include "datagen/cluster_generator.h"
#include "datagen/labeled_generator.h"
#include "datagen/quest_generator.h"
#include "itemsets/apriori.h"

namespace demon {
namespace {

using TxBlockPtr = std::shared_ptr<const TransactionBlock>;

// ---------------------------------------------------------------------------
// Workload helpers.

std::vector<TransactionBlock> MakeTxBlocks(size_t num_blocks,
                                           size_t block_size,
                                           size_t num_items, uint64_t seed) {
  QuestParams params;
  params.num_transactions = num_blocks * block_size;
  params.num_items = num_items;
  params.num_patterns = 30;
  params.avg_transaction_len = 6;
  params.seed = seed;
  QuestGenerator gen(params);
  std::vector<TransactionBlock> blocks;
  Tid tid = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    blocks.push_back(gen.NextBlock(block_size, tid));
    tid += block_size;
  }
  return blocks;
}

std::vector<PointBlock> MakePointBlocks(size_t num_blocks, size_t block_size,
                                        size_t dim, uint64_t seed) {
  ClusterGenParams params;
  params.num_points = num_blocks * block_size;
  params.num_clusters = 5;
  params.dim = dim;
  params.seed = seed;
  ClusterGenerator gen(params);
  std::vector<PointBlock> blocks;
  for (size_t b = 0; b < num_blocks; ++b) {
    blocks.push_back(gen.NextBlock(block_size));
  }
  return blocks;
}

LabeledSchema TestSchema() {
  LabeledSchema schema;
  schema.attribute_cardinalities = {3, 2, 4, 2};
  schema.num_classes = 2;
  return schema;
}

std::vector<LabeledBlock> MakeLabeledBlocks(size_t num_blocks,
                                            size_t block_size,
                                            uint64_t seed) {
  LabeledGenerator::Params params;
  params.schema = TestSchema();
  params.concept_depth = 3;
  params.seed = seed;
  LabeledGenerator gen(params);
  std::vector<LabeledBlock> blocks;
  for (size_t b = 0; b < num_blocks; ++b) {
    blocks.push_back(gen.NextBlock(block_size));
  }
  return blocks;
}

void ExpectItemsetModelsEqual(const ItemsetModel& a, const ItemsetModel& b) {
  EXPECT_EQ(a.num_transactions(), b.num_transactions());
  ASSERT_EQ(a.entries().size(), b.entries().size());
  for (const auto& [itemset, entry] : b.entries()) {
    const auto it = a.entries().find(itemset);
    ASSERT_NE(it, a.entries().end()) << ToString(itemset);
    EXPECT_EQ(it->second.count, entry.count) << ToString(itemset);
    EXPECT_EQ(it->second.frequent, entry.frequent) << ToString(itemset);
  }
}

void ExpectClusterModelsEqual(const ClusterModel& a, const ClusterModel& b) {
  ASSERT_EQ(a.NumClusters(), b.NumClusters());
  for (size_t c = 0; c < a.NumClusters(); ++c) {
    EXPECT_EQ(a.clusters()[c], b.clusters()[c]);
  }
}

/// The heterogeneous Figure 11 configuration the acceptance criteria name:
/// unrestricted itemsets, windowed itemsets, unrestricted clusters,
/// windowed clusters, a classifier, and a pattern detector, all in one
/// monitor.
struct Fig11Ids {
  DemonMonitor::MonitorId uw_itemsets;
  DemonMonitor::MonitorId mrw_itemsets;
  DemonMonitor::MonitorId uw_clusters;
  DemonMonitor::MonitorId mrw_clusters;
  DemonMonitor::MonitorId classifier;
  DemonMonitor::MonitorId patterns;
};

Fig11Ids RegisterFig11Monitors(DemonMonitor& demon, size_t dim) {
  BirchOptions birch;
  birch.num_clusters = 5;
  birch.phase2 = Phase2Algorithm::kAgglomerative;
  birch.tree.max_leaf_entries = 128;
  DTreeOptions dtree;
  dtree.min_split_weight = 50.0;

  Fig11Ids ids;
  ids.uw_itemsets =
      demon
          .AddMonitor({.kind = MonitorKind::kUnrestrictedItemsets,
                       .name = "uw-itemsets",
                       .bss = BlockSelectionSequence::Periodic(2, 0),
                       .minsup = 0.05})
          .value();
  ids.mrw_itemsets =
      demon
          .AddMonitor({.kind = MonitorKind::kWindowedItemsets,
                       .name = "mrw-itemsets",
                       .bss = BlockSelectionSequence::WindowRelative(
                           {true, false, true}),
                       .window = 3,
                       .minsup = 0.05})
          .value();
  ids.uw_clusters = demon
                        .AddMonitor({.kind = MonitorKind::kUnrestrictedClusters,
                                     .name = "uw-clusters",
                                     .dim = dim,
                                     .birch = birch})
                        .value();
  ids.mrw_clusters = demon
                         .AddMonitor({.kind = MonitorKind::kWindowedClusters,
                                      .name = "mrw-clusters",
                                      .window = 2,
                                      .dim = dim,
                                      .birch = birch})
                         .value();
  ids.classifier = demon
                       .AddMonitor({.kind = MonitorKind::kClassifier,
                                    .name = "classifier",
                                    .schema = TestSchema(),
                                    .dtree = dtree})
                       .value();
  ids.patterns = demon
                     .AddMonitor({.kind = MonitorKind::kPatterns,
                                  .name = "patterns",
                                  .minsup = 0.05,
                                  .alpha = 0.95})
                     .value();
  return ids;
}

/// Everything the engine maintains, captured for cross-run comparison.
struct RunResult {
  ItemsetModel uw_itemsets;
  ItemsetModel mrw_itemsets;
  ClusterModel uw_clusters;
  ClusterModel mrw_clusters;
  std::string classifier_dump;
  std::vector<std::vector<size_t>> pattern_sequences;
  std::vector<MonitorStats> stats;
};

RunResult RunFig11(const EngineOptions& options, bool quiesce_each_block) {
  const size_t num_items = 30;
  const size_t dim = 3;
  DemonMonitor demon(num_items, options);
  const Fig11Ids ids = RegisterFig11Monitors(demon, dim);

  // Interleave the three payloads, as one evolving database would.
  const auto tx = MakeTxBlocks(6, 150, num_items, 91);
  const auto points = MakePointBlocks(4, 300, dim, 92);
  const auto labeled = MakeLabeledBlocks(4, 200, 93);
  for (size_t i = 0; i < tx.size(); ++i) {
    demon.AddBlock(tx[i]);
    if (i < points.size()) demon.AddPointBlock(points[i]);
    if (i < labeled.size()) demon.AddLabeledBlock(labeled[i]);
    if (quiesce_each_block) demon.Quiesce();
  }
  demon.Quiesce();

  RunResult result;
  result.uw_itemsets = *demon.ItemsetModelOf(ids.uw_itemsets).value();
  result.mrw_itemsets = *demon.ItemsetModelOf(ids.mrw_itemsets).value();
  result.uw_clusters = *demon.ClusterModelOf(ids.uw_clusters).value();
  result.mrw_clusters = *demon.ClusterModelOf(ids.mrw_clusters).value();
  result.classifier_dump = demon.ClassifierOf(ids.classifier).value()->ToString();
  result.pattern_sequences = demon.PatternsOf(ids.patterns).value()->sequences();
  for (size_t id = 0; id < demon.NumMonitors(); ++id) {
    result.stats.push_back(demon.StatsOf(id).value());
  }
  return result;
}

void ExpectRunsEqual(const RunResult& a, const RunResult& b) {
  ExpectItemsetModelsEqual(a.uw_itemsets, b.uw_itemsets);
  ExpectItemsetModelsEqual(a.mrw_itemsets, b.mrw_itemsets);
  ExpectClusterModelsEqual(a.uw_clusters, b.uw_clusters);
  ExpectClusterModelsEqual(a.mrw_clusters, b.mrw_clusters);
  EXPECT_EQ(a.classifier_dump, b.classifier_dump);
  EXPECT_EQ(a.pattern_sequences, b.pattern_sequences);
  // Routing decisions must also be identical (times of course differ).
  ASSERT_EQ(a.stats.size(), b.stats.size());
  for (size_t i = 0; i < a.stats.size(); ++i) {
    EXPECT_EQ(a.stats[i].blocks_routed, b.stats[i].blocks_routed) << i;
    EXPECT_EQ(a.stats[i].blocks_skipped, b.stats[i].blocks_skipped) << i;
  }
}

// ---------------------------------------------------------------------------
// Determinism: the acceptance criterion. Parallel maintenance (with and
// without offline deferral, with and without mid-run quiescing) must be
// bit-identical to sequential maintenance across all monitor kinds.

TEST(EngineDeterminismTest, ParallelEqualsSequentialAllMonitorKinds) {
  EngineOptions sequential;  // num_threads = 0
  const RunResult reference = RunFig11(sequential, false);

  EngineOptions parallel;
  parallel.num_threads = 4;
  ExpectRunsEqual(RunFig11(parallel, false), reference);

  EngineOptions deferred = parallel;
  deferred.defer_offline = true;
  ExpectRunsEqual(RunFig11(deferred, false), reference);
  ExpectRunsEqual(RunFig11(deferred, true), reference);

  EngineOptions single;
  single.num_threads = 1;
  single.defer_offline = true;
  ExpectRunsEqual(RunFig11(single, false), reference);
}

// ---------------------------------------------------------------------------
// Engine-level behavior with a purpose-built recording maintainer.

class RecordingMaintainer : public ModelMaintainer {
 public:
  std::string_view type_name() const override { return "recording"; }
  AnyBlock::Payload payload() const override {
    return AnyBlock::Payload::kTransactions;
  }
  void AddResponse(const AnyBlock& block) override {
    response_ids_.push_back(block.id());
    pending_ = true;
  }
  void RunOffline() override {
    if (!pending_) return;
    offline_after_.push_back(response_ids_.size());
    pending_ = false;
  }
  bool has_offline_work() const override { return pending_; }

  const std::vector<BlockId>& response_ids() const { return response_ids_; }
  const std::vector<size_t>& offline_after() const { return offline_after_; }

 private:
  std::vector<BlockId> response_ids_;
  std::vector<size_t> offline_after_;
  bool pending_ = false;
};

AnyBlock MakeTinyBlock(BlockId id) {
  auto block = std::make_shared<TransactionBlock>(
      std::vector<Transaction>{Transaction({1, 2})}, /*first_tid=*/id * 10);
  block->mutable_info()->id = id;
  return AnyBlock(TxBlockPtr(block));
}

TEST(MaintenanceEngineTest, MonitorsSeeBlocksInArrivalOrder) {
  for (const size_t threads : {size_t{0}, size_t{1}, size_t{4}}) {
    for (const bool defer : {false, true}) {
      EngineOptions options;
      options.num_threads = threads;
      options.defer_offline = defer;
      MaintenanceEngine engine(options);
      std::vector<const RecordingMaintainer*> recorders;
      for (int m = 0; m < 5; ++m) {
        auto recorder = std::make_unique<RecordingMaintainer>();
        recorders.push_back(recorder.get());
        std::string name = "m";
        name += std::to_string(m);
        engine.Register(std::move(name), std::move(recorder));
      }
      for (BlockId id = 1; id <= 12; ++id) {
        engine.Dispatch(MakeTinyBlock(id));
      }
      engine.Quiesce();
      for (const RecordingMaintainer* recorder : recorders) {
        ASSERT_EQ(recorder->response_ids().size(), 12u);
        for (BlockId id = 1; id <= 12; ++id) {
          EXPECT_EQ(recorder->response_ids()[id - 1], id)
              << "threads=" << threads << " defer=" << defer;
        }
        // Every offline drain happened after its own response and before
        // the next block's response reached this maintainer.
        ASSERT_EQ(recorder->offline_after().size(), 12u);
        for (size_t i = 0; i < 12; ++i) {
          EXPECT_EQ(recorder->offline_after()[i], i + 1);
        }
      }
    }
  }
}

TEST(MaintenanceEngineTest, GateSkipsUnselectedBlocksAndCountsThem) {
  MaintenanceEngine engine;
  const auto gated = engine.Register(
      "gated", std::make_unique<RecordingMaintainer>(),
      BlockSelectionSequence::Periodic(2, 0));
  const auto open = engine.Register("open",
                                    std::make_unique<RecordingMaintainer>());
  for (BlockId id = 1; id <= 6; ++id) engine.Dispatch(MakeTinyBlock(id));

  const MonitorStats gated_stats = engine.StatsOf(gated).value();
  EXPECT_EQ(gated_stats.blocks_routed, 3u);   // blocks 1, 3, 5
  EXPECT_EQ(gated_stats.blocks_skipped, 3u);  // blocks 2, 4, 6
  const MonitorStats open_stats = engine.StatsOf(open).value();
  EXPECT_EQ(open_stats.blocks_routed, 6u);
  EXPECT_EQ(open_stats.blocks_skipped, 0u);

  const auto* maintainer = static_cast<const RecordingMaintainer*>(
      engine.MaintainerOf(gated).value());
  EXPECT_EQ(maintainer->response_ids(),
            (std::vector<BlockId>{1, 3, 5}));
}

TEST(MaintenanceEngineTest, MismatchedPayloadIsNeitherRoutedNorSkipped) {
  MaintenanceEngine engine;
  const auto id = engine.Register("tx-only",
                                  std::make_unique<RecordingMaintainer>());
  auto points = std::make_shared<PointBlock>(
      std::vector<double>{0.0, 1.0, 2.0, 3.0}, /*dim=*/2);
  points->mutable_info()->id = 1;
  engine.Dispatch(AnyBlock(AnyBlock::PointPtr(points)));
  const MonitorStats stats = engine.StatsOf(id).value();
  EXPECT_EQ(stats.blocks_routed, 0u);
  EXPECT_EQ(stats.blocks_skipped, 0u);
}

TEST(MaintenanceEngineTest, UnknownIdsAreNotFound) {
  MaintenanceEngine engine;
  EXPECT_EQ(engine.StatsOf(0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.NameOf(3).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.MaintainerOf(7).status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Deferred offline updates (§3.2.3): response reflects only the
// time-critical path; Quiesce (or the next block) lands the rest.

TEST(EngineDeferTest, QuiesceDrainsDeferredGemmUpdates) {
  const size_t num_items = 30;
  const auto blocks = MakeTxBlocks(5, 150, num_items, 94);

  EngineOptions options;
  options.num_threads = 2;
  options.defer_offline = true;
  DemonMonitor demon(num_items, options);
  const auto mrw = demon
                       .AddMonitor({.kind = MonitorKind::kWindowedItemsets,
                                    .name = "mrw",
                                    .window = 3,
                                    .minsup = 0.05})
                       .value();

  std::vector<TxBlockPtr> shared;
  for (size_t t = 0; t < blocks.size(); ++t) {
    demon.AddBlock(blocks[t]);
    shared.push_back(std::make_shared<TransactionBlock>(blocks[t]));
    demon.Quiesce();
    // After quiescing, the current window model equals Apriori from
    // scratch on the window — i.e. the deferred updates have landed.
    const size_t start = t + 1 >= 3 ? t + 1 - 3 : 0;
    const std::vector<TxBlockPtr> window(shared.begin() + start,
                                         shared.end());
    const ItemsetModel expected = Apriori(window, 0.05, num_items);
    const ItemsetModel& actual = *demon.ItemsetModelOf(mrw).value();
    ExpectItemsetModelsEqual(actual, expected);
  }
  const MonitorStats stats = demon.StatsOf(mrw).value();
  EXPECT_EQ(stats.blocks_routed, 5u);
  EXPECT_GE(stats.response_seconds, 0.0);
  EXPECT_GE(stats.offline_seconds, 0.0);
}

TEST(GemmDeferTest, BeginBlockUpdatesOnlyTheCurrentModel) {
  // Unit-level check of the split AddBlock: BeginBlock touches the
  // current window's model only; DrainOffline completes the rest.
  const auto blocks = MakeTxBlocks(4, 50, 20, 95);
  Gemm<CountingMaintainer, TxBlockPtr> gemm(
      BlockSelectionSequence::AllBlocks(), 3,
      [] { return CountingMaintainer(); });
  std::vector<TxBlockPtr> shared;
  for (const auto& block : blocks) {
    shared.push_back(std::make_shared<TransactionBlock>(block));
  }

  gemm.AddBlock(shared[0]);
  gemm.AddBlock(shared[1]);
  EXPECT_FALSE(gemm.has_offline_work());

  gemm.BeginBlock(shared[2]);
  EXPECT_TRUE(gemm.has_offline_work());
  // Current model covers blocks 1..3 immediately (response path done).
  EXPECT_EQ(gemm.current().records(), 150u);
  gemm.DrainOffline();
  EXPECT_FALSE(gemm.has_offline_work());

  // BeginBlock with pending work drains inline first — the future-window
  // models cannot miss a block.
  gemm.BeginBlock(shared[3]);
  EXPECT_TRUE(gemm.has_offline_work());
  gemm.DrainOffline();
  const auto ids = gemm.current().block_ids();
  EXPECT_EQ(ids.size(), 3u);  // window of 3: blocks 2, 3, 4
}

// ---------------------------------------------------------------------------
// DemonMonitor error paths.

TEST(DemonMonitorErrorTest, WindowedAccessorBeforeFirstBlock) {
  DemonMonitor demon(20);
  const auto mrw = demon
                       .AddMonitor({.kind = MonitorKind::kWindowedItemsets,
                                    .name = "mrw",
                                    .window = 3,
                                    .minsup = 0.1})
                       .value();
  BirchOptions birch;
  const auto mrw_clusters =
      demon
          .AddMonitor({.kind = MonitorKind::kWindowedClusters,
                       .name = "mrw-clusters",
                       .window = 2,
                       .dim = 3,
                       .birch = birch})
          .value();
  // Before any block, a windowed monitor has no current model; the
  // accessor must fail cleanly instead of aborting (Gemm::current()'s
  // DEMON_CHECK would crash the process).
  EXPECT_EQ(demon.ItemsetModelOf(mrw).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(demon.ClusterModelOf(mrw_clusters).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DemonMonitorErrorTest, WrongKindAccessorsAreInvalidArgument) {
  DemonMonitor demon(20);
  const auto uw = demon
                      .AddMonitor({.kind = MonitorKind::kUnrestrictedItemsets,
                                   .name = "uw",
                                   .minsup = 0.1})
                      .value();
  BirchOptions birch;
  const auto clusters = demon
                            .AddMonitor({.kind = MonitorKind::kUnrestrictedClusters,
                                         .name = "clusters",
                                         .dim = 3,
                                         .birch = birch})
                            .value();
  const auto patterns = demon
                            .AddMonitor({.kind = MonitorKind::kPatterns,
                                         .name = "p",
                                         .minsup = 0.1,
                                         .alpha = 0.9})
                            .value();

  EXPECT_EQ(demon.ClusterModelOf(uw).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(demon.ClassifierOf(uw).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(demon.PatternsOf(uw).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(demon.ItemsetModelOf(clusters).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(demon.ItemsetModelOf(patterns).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DemonMonitorErrorTest, BadIdsAreNotFoundOnEveryAccessor) {
  DemonMonitor demon(20);
  EXPECT_EQ(demon.ItemsetModelOf(0).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(demon.ClusterModelOf(1).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(demon.ClassifierOf(2).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(demon.PatternsOf(3).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(demon.StatsOf(4).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(demon.NameOf(5).status().code(), StatusCode::kNotFound);
}

TEST(DemonMonitorErrorTest, RegistrationAfterAnyPayloadRejected) {
  BirchOptions birch;
  DTreeOptions dtree;
  {
    DemonMonitor demon(20);
    demon.AddPointBlock(MakePointBlocks(1, 20, 3, 96)[0]);
    EXPECT_EQ(demon
                  .AddMonitor({.kind = MonitorKind::kUnrestrictedItemsets,
                               .name = "late",
                               .minsup = 0.1})
                  .status()
                  .code(),
              StatusCode::kFailedPrecondition);
  }
  {
    DemonMonitor demon(20);
    demon.AddLabeledBlock(MakeLabeledBlocks(1, 20, 97)[0]);
    EXPECT_EQ(demon
                  .AddMonitor({.kind = MonitorKind::kUnrestrictedClusters,
                               .name = "late",
                               .dim = 3,
                               .birch = birch})
                  .status()
                  .code(),
              StatusCode::kFailedPrecondition);
    EXPECT_EQ(demon
                  .AddMonitor({.kind = MonitorKind::kClassifier,
                               .name = "late",
                               .schema = TestSchema(),
                               .dtree = dtree})
                  .status()
                  .code(),
              StatusCode::kFailedPrecondition);
  }
}

TEST(DemonMonitorErrorTest, ClusterAndClassifierRegistrationValidation) {
  DemonMonitor demon(20);
  BirchOptions birch;
  DTreeOptions dtree;
  EXPECT_EQ(demon
                .AddMonitor({.kind = MonitorKind::kUnrestrictedClusters,
                             .name = "bad",
                             .dim = 0,
                             .birch = birch})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(demon
                .AddMonitor({.kind = MonitorKind::kUnrestrictedClusters,
                             .name = "bad",
                             .bss = BlockSelectionSequence::WindowRelative(
                                 {true}),
                             .dim = 3,
                             .birch = birch})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(demon
                .AddMonitor({.kind = MonitorKind::kWindowedClusters,
                             .name = "bad",
                             .window = 0,
                             .dim = 3,
                             .birch = birch})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(demon
                .AddMonitor({.kind = MonitorKind::kWindowedClusters,
                             .name = "bad",
                             .bss = BlockSelectionSequence::WindowRelative(
                                 {true, false}),
                             .window = 3,
                             .dim = 3,
                             .birch = birch})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  LabeledSchema empty_schema;
  EXPECT_EQ(demon
                .AddMonitor({.kind = MonitorKind::kClassifier,
                             .name = "bad",
                             .schema = empty_schema,
                             .dtree = dtree})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(demon.NumMonitors(), 0u);
}

}  // namespace
}  // namespace demon
