#include "itemsets/association_rules.h"

#include <gtest/gtest.h>

#include "datagen/quest_generator.h"
#include "itemsets/apriori.h"

namespace demon {
namespace {

std::shared_ptr<const TransactionBlock> MakeBlock(
    std::vector<Transaction> transactions) {
  return std::make_shared<TransactionBlock>(std::move(transactions), 0);
}

TEST(AssociationRulesTest, HandWorkedExample) {
  // 8 transactions: {0,1} x6, {0} x1, {1} x1. sup({0,1}) = 0.75,
  // sup({0}) = sup({1}) = 0.875.
  std::vector<Transaction> transactions;
  for (int i = 0; i < 6; ++i) transactions.push_back(Transaction({0, 1}));
  transactions.push_back(Transaction({0}));
  transactions.push_back(Transaction({1}));
  const ItemsetModel model = Apriori({MakeBlock(std::move(transactions))},
                                     0.5, 2);

  const auto rules = DeriveRules(model, 0.5);
  ASSERT_EQ(rules.size(), 2u);
  // Both directions: conf = 0.75 / 0.875 = 6/7.
  for (const auto& rule : rules) {
    EXPECT_DOUBLE_EQ(rule.support, 0.75);
    EXPECT_NEAR(rule.confidence, 6.0 / 7.0, 1e-12);
    EXPECT_NEAR(rule.lift, (6.0 / 7.0) / 0.875, 1e-12);
  }
}

TEST(AssociationRulesTest, MinConfidenceFilters) {
  std::vector<Transaction> transactions;
  for (int i = 0; i < 6; ++i) transactions.push_back(Transaction({0, 1}));
  for (int i = 0; i < 6; ++i) transactions.push_back(Transaction({0}));
  const ItemsetModel model = Apriori({MakeBlock(std::move(transactions))},
                                     0.4, 2);
  // {0}=>{1} has conf 0.5; {1}=>{0} has conf 1.0.
  EXPECT_EQ(DeriveRules(model, 0.9).size(), 1u);
  EXPECT_EQ(DeriveRules(model, 0.5).size(), 2u);
  const auto strict = DeriveRules(model, 0.9);
  EXPECT_EQ(strict[0].antecedent, (Itemset{1}));
  EXPECT_EQ(strict[0].consequent, (Itemset{0}));
}

TEST(AssociationRulesTest, MultiItemConsequents) {
  // {0,1,2} frequent in every transaction: all 6 rules hold at conf 1.
  std::vector<Transaction> transactions;
  for (int i = 0; i < 4; ++i) transactions.push_back(Transaction({0, 1, 2}));
  const ItemsetModel model = Apriori({MakeBlock(std::move(transactions))},
                                     0.5, 3);
  const auto rules = DeriveRulesFrom(model, {0, 1, 2}, 1.0);
  // Antecedent/consequent splits of a 3-set: 2^3 - 2 = 6.
  EXPECT_EQ(rules.size(), 6u);
  for (const auto& rule : rules) {
    EXPECT_DOUBLE_EQ(rule.confidence, 1.0);
    EXPECT_EQ(Union(rule.antecedent, rule.consequent), (Itemset{0, 1, 2}));
  }
}

TEST(AssociationRulesTest, ConsequentPruningIsLossless) {
  // Brute-force check on random-ish data: rules from the pruned generator
  // match exhaustive enumeration over all antecedent/consequent splits.
  QuestParams params;
  params.num_transactions = 800;
  params.num_items = 12;
  params.num_patterns = 8;
  params.avg_transaction_len = 5;
  params.avg_pattern_len = 3;
  params.seed = 5;
  QuestGenerator gen(params);
  auto block = std::make_shared<TransactionBlock>(gen.GenerateAll());
  const ItemsetModel model = Apriori({block}, 0.05, params.num_items);
  const double min_confidence = 0.4;

  const auto fast = DeriveRules(model, min_confidence);

  std::vector<AssociationRule> brute;
  for (const auto& [itemset, entry] : model.entries()) {
    if (!entry.frequent || itemset.size() < 2) continue;
    const size_t n = itemset.size();
    for (size_t mask = 1; mask + 1 < (size_t{1} << n); ++mask) {
      Itemset antecedent;
      Itemset consequent;
      for (size_t i = 0; i < n; ++i) {
        ((mask >> i) & 1 ? antecedent : consequent).push_back(itemset[i]);
      }
      const double confidence =
          model.SupportOf(itemset) / model.SupportOf(antecedent);
      if (confidence >= min_confidence) {
        AssociationRule rule;
        rule.antecedent = antecedent;
        rule.consequent = consequent;
        brute.push_back(rule);
      }
    }
  }
  ASSERT_EQ(fast.size(), brute.size());
  ItemsetSet fast_keys;
  for (const auto& rule : fast) {
    Itemset key = rule.antecedent;
    key.push_back(1000);  // separator outside the item universe
    key.insert(key.end(), rule.consequent.begin(), rule.consequent.end());
    fast_keys.insert(key);
  }
  for (const auto& rule : brute) {
    Itemset key = rule.antecedent;
    key.push_back(1000);
    key.insert(key.end(), rule.consequent.begin(), rule.consequent.end());
    EXPECT_TRUE(fast_keys.count(key) > 0)
        << ToString(rule.antecedent) << " => " << ToString(rule.consequent);
  }
}

TEST(AssociationRulesTest, SortedByConfidenceThenSupport) {
  std::vector<Transaction> transactions;
  for (int i = 0; i < 8; ++i) transactions.push_back(Transaction({0, 1}));
  for (int i = 0; i < 2; ++i) transactions.push_back(Transaction({0}));
  for (int i = 0; i < 5; ++i) transactions.push_back(Transaction({2, 3}));
  for (int i = 0; i < 5; ++i) transactions.push_back(Transaction({2}));
  const ItemsetModel model = Apriori({MakeBlock(std::move(transactions))},
                                     0.2, 4);
  const auto rules = DeriveRules(model, 0.3);
  for (size_t i = 1; i < rules.size(); ++i) {
    EXPECT_GE(rules[i - 1].confidence, rules[i].confidence);
  }
}

TEST(AssociationRulesTest, NoRulesFromSingletonsOrInfrequent) {
  std::vector<Transaction> transactions;
  for (int i = 0; i < 4; ++i) transactions.push_back(Transaction({0}));
  transactions.push_back(Transaction({1, 2}));
  const ItemsetModel model = Apriori({MakeBlock(std::move(transactions))},
                                     0.5, 3);
  EXPECT_TRUE(DeriveRules(model, 0.1).empty());
  EXPECT_TRUE(DeriveRulesFrom(model, {1, 2}, 0.1).empty());  // infrequent
}

TEST(AssociationRulesTest, ToStringFormat) {
  AssociationRule rule;
  rule.antecedent = {1};
  rule.consequent = {2};
  rule.support = 0.5;
  rule.confidence = 0.75;
  rule.lift = 1.5;
  EXPECT_EQ(rule.ToString(), "{1} => {2} (sup 0.500, conf 0.750, lift 1.50)");
}

}  // namespace
}  // namespace demon
