// Tests for the pattern-detection extensions: most-recent-window compact
// sequences (paper footnote 9), cyclic post-processing (§4), and the
// automatic granularity selection of the §7 future work.

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/trace_generator.h"
#include "patterns/compact_sequences.h"
#include "patterns/cyclic.h"
#include "patterns/granularity.h"

namespace demon {
namespace {

using BlockPtr = std::shared_ptr<const TransactionBlock>;

BlockPtr RegimeBlock(int regime, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Transaction> transactions;
  for (size_t i = 0; i < n; ++i) {
    const Item base = static_cast<Item>(regime * 4);
    transactions.push_back(Transaction(
        {static_cast<Item>(base + (rng.NextBernoulli(0.8) ? 0 : 2)),
         static_cast<Item>(base + (rng.NextBernoulli(0.8) ? 1 : 3))}));
  }
  return std::make_shared<TransactionBlock>(std::move(transactions), 0);
}

CompactSequenceMiner::Options MinerOptions(size_t window = 0) {
  CompactSequenceMiner::Options options;
  options.focus.minsup = 0.05;
  options.focus.num_items = 16;
  options.alpha = 0.95;
  options.window_size = window;
  return options;
}

TEST(MrwCompactSequencesTest, EvictsOldBlocksFromSequences) {
  CompactSequenceMiner miner(MinerOptions(/*window=*/3));
  for (int b = 0; b < 6; ++b) miner.AddBlock(RegimeBlock(0, 400, 100 + b));
  EXPECT_EQ(miner.window_start(), 3u);
  // The only sequences left cover blocks 3, 4, 5.
  for (const auto& sequence : miner.sequences()) {
    for (size_t index : sequence) EXPECT_GE(index, 3u);
  }
  // Same-regime blocks inside the window still chain fully.
  bool found_full_window = false;
  for (const auto& sequence : miner.sequences()) {
    if (sequence == std::vector<size_t>{3, 4, 5}) found_full_window = true;
  }
  EXPECT_TRUE(found_full_window);
}

TEST(MrwCompactSequencesTest, MatchesUnrestrictedOverSameSuffixRegimes) {
  // With all blocks from one regime, the windowed miner's sequences equal
  // the unrestricted miner's sequences intersected with the window.
  CompactSequenceMiner windowed(MinerOptions(4));
  CompactSequenceMiner unrestricted(MinerOptions(0));
  for (int b = 0; b < 7; ++b) {
    auto block = RegimeBlock(b % 2, 400, 200 + b);
    windowed.AddBlock(block);
    unrestricted.AddBlock(block);
  }
  // Window covers blocks 3..6; regime parity: 3,5 odd / 4,6 even.
  bool found_odd = false;
  bool found_even = false;
  for (const auto& sequence : windowed.sequences()) {
    if (sequence == std::vector<size_t>{3, 5}) found_odd = true;
    if (sequence == std::vector<size_t>{4, 6}) found_even = true;
  }
  EXPECT_TRUE(found_odd);
  EXPECT_TRUE(found_even);
}

TEST(MrwCompactSequencesTest, WindowedSequencesAreCompact) {
  CompactSequenceMiner miner(MinerOptions(5));
  const int regimes[] = {0, 1, 0, 2, 1, 0, 0, 2, 1, 0, 1, 1};
  for (int b = 0; b < 12; ++b) {
    miner.AddBlock(RegimeBlock(regimes[b], 300, 300 + b));
  }
  for (const auto& sequence : miner.sequences()) {
    EXPECT_TRUE(miner.IsCompact(sequence));
  }
}

TEST(CyclicTest, PaperExample) {
  // §4: from compact <D1, D3, D4, D5, D7> derive the cycle <D1,D3,D5,D7>.
  const auto cycles = ExtractCyclicSequences({1, 3, 4, 5, 7}, 3);
  ASSERT_FALSE(cycles.empty());
  EXPECT_EQ(cycles[0].blocks, (std::vector<size_t>{1, 3, 5, 7}));
  EXPECT_EQ(cycles[0].period, 2u);
}

TEST(CyclicTest, ConsecutiveRunIsPeriodOne) {
  const auto cycles = ExtractCyclicSequences({4, 5, 6, 7}, 3);
  ASSERT_FALSE(cycles.empty());
  EXPECT_EQ(cycles[0].blocks, (std::vector<size_t>{4, 5, 6, 7}));
  EXPECT_EQ(cycles[0].period, 1u);
}

TEST(CyclicTest, MultiplePeriodsCoexist) {
  // {0, 2, 4, 6} has period 2; {0, 3, 6} has period 3. Input {0,2,3,4,6}.
  const auto cycles = ExtractCyclicSequences({0, 2, 3, 4, 6}, 3);
  bool period2 = false;
  bool period3 = false;
  for (const auto& c : cycles) {
    if (c.blocks == std::vector<size_t>{0, 2, 4, 6}) period2 = true;
    if (c.blocks == std::vector<size_t>{0, 3, 6}) period3 = true;
  }
  EXPECT_TRUE(period2);
  EXPECT_TRUE(period3);
}

TEST(CyclicTest, RespectsMinLengthAndSmallInputs) {
  EXPECT_TRUE(ExtractCyclicSequences({1, 2}, 3).empty());
  EXPECT_TRUE(ExtractCyclicSequences({5}, 2).empty());
  EXPECT_TRUE(ExtractCyclicSequences({}, 2).empty());
  const auto pairs = ExtractCyclicSequences({1, 4}, 2);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].period, 3u);
}

TEST(CyclicTest, SubProgressionsOfReportedCyclesAreNotRepeated) {
  const auto cycles = ExtractCyclicSequences({0, 2, 4, 6, 8}, 3);
  // Only the maximal period-2 progression (plus period-4 {0,4,8}).
  size_t period2_count = 0;
  for (const auto& c : cycles) period2_count += (c.period == 2) ? 1 : 0;
  EXPECT_EQ(period2_count, 1u);
}

TEST(GranularityTest, ChainingScoreBounds) {
  // One homogeneous regime: everything chains, score ~1.
  CompactSequenceMiner all_same(MinerOptions());
  for (int b = 0; b < 5; ++b) all_same.AddBlock(RegimeBlock(0, 400, 400 + b));
  EXPECT_GT(ChainingScore(all_same), 0.9);

  // All distinct regimes: nothing chains, score 0.
  CompactSequenceMiner all_different(MinerOptions());
  for (int b = 0; b < 4; ++b) {
    all_different.AddBlock(RegimeBlock(b, 400, 500 + b));
  }
  EXPECT_DOUBLE_EQ(ChainingScore(all_different), 0.0);
}

TEST(GranularityTest, SelectsStructuredGranularityOnTrace) {
  TraceGenerator::Params params;
  params.rate_scale = 0.02;
  params.seed = 17;
  TraceGenerator gen(params);
  const auto trace = gen.Generate();

  const std::vector<int> hours = {24, 12, 6};
  std::vector<std::vector<TransactionBlock>> blocks;
  for (int h : hours) blocks.push_back(SegmentTrace(trace, h, 24));

  CompactSequenceMiner::Options options;
  options.focus.minsup = 0.01;
  options.focus.num_items =
      TraceGenerator::kNumObjectTypes + TraceGenerator::kNumSizeBuckets;
  options.alpha = 0.99;

  size_t best = 999;
  const auto reports = EvaluateGranularities(blocks, hours, options, &best);
  ASSERT_EQ(reports.size(), 3u);
  ASSERT_LT(best, 3u);
  for (size_t g = 0; g < reports.size(); ++g) {
    EXPECT_EQ(reports[g].num_blocks, blocks[g].size());
    EXPECT_GE(reports[g].chaining_score, 0.0);
    EXPECT_LE(reports[g].chaining_score, 1.0);
    EXPECT_LE(reports[g].objective, 1.0);
  }
  // The winner must actually expose interior structure.
  EXPECT_GT(reports[best].objective, 0.0);
  EXPECT_GT(reports[best].num_maximal_sequences, 0u);
}

}  // namespace
}  // namespace demon
