#include "clustering/birch.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "clustering/agglomerative.h"
#include "clustering/kmeans.h"
#include "datagen/cluster_generator.h"

namespace demon {
namespace {

// Fraction of generated points whose model assignment agrees with the true
// generating cluster (after best-effort matching by the true center).
double ClusterRecovery(const ClusterModel& model, const PointBlock& block,
                       const std::vector<int>& true_labels,
                       const std::vector<Point>& true_centers) {
  // Map each true center to the closest model cluster.
  std::vector<int> center_to_cluster(true_centers.size());
  for (size_t k = 0; k < true_centers.size(); ++k) {
    center_to_cluster[k] =
        model.Assign(true_centers[k].data(), true_centers[k].size());
  }
  size_t correct = 0;
  size_t total = 0;
  for (size_t i = 0; i < block.size(); ++i) {
    if (true_labels[i] < 0) continue;  // skip noise
    ++total;
    const int assigned = model.Assign(block.PointAt(i), block.dim());
    if (assigned == center_to_cluster[true_labels[i]]) ++correct;
  }
  return total == 0 ? 0.0 : static_cast<double>(correct) /
                                static_cast<double>(total);
}

BirchOptions TestOptions(size_t k, Phase2Algorithm phase2) {
  BirchOptions options;
  options.num_clusters = k;
  options.phase2 = phase2;
  options.tree.max_leaf_entries = 512;
  options.tree.leaf_capacity = 16;
  options.tree.branching = 8;
  return options;
}

class BirchPhase2Test : public ::testing::TestWithParam<Phase2Algorithm> {};

TEST_P(BirchPhase2Test, RecoversWellSeparatedClusters) {
  ClusterGenParams params;
  params.num_points = 8000;
  params.num_clusters = 10;
  params.dim = 4;
  params.max_sigma = 1.0;
  params.domain_size = 200.0;  // well separated
  params.seed = 31;
  ClusterGenerator gen(params);
  auto block = std::make_shared<PointBlock>(gen.GenerateAll());

  BirchStats stats;
  const ClusterModel model =
      RunBirch({block}, params.dim, TestOptions(10, GetParam()), &stats);
  EXPECT_EQ(model.NumClusters(), 10u);
  EXPECT_GT(stats.num_subclusters, 10u);
  EXPECT_EQ(stats.points_scanned, 8000u);
  EXPECT_DOUBLE_EQ(model.TotalWeight(), 8000.0);

  const double recovery =
      ClusterRecovery(model, *block, gen.true_labels(), gen.centers());
  EXPECT_GT(recovery, 0.95) << "phase2 variant failed to recover clusters";
}

INSTANTIATE_TEST_SUITE_P(Phase2, BirchPhase2Test,
                         ::testing::Values(Phase2Algorithm::kAgglomerative,
                                           Phase2Algorithm::kWeightedKMeans),
                         [](const auto& info) {
                           return info.param ==
                                          Phase2Algorithm::kAgglomerative
                                      ? "Agglomerative"
                                      : "KMeans";
                         });

TEST(BirchPlusTest, MatchesNonIncrementalBirchExactly) {
  // The §3.1.2 claim: at any time t the BIRCH+ model equals running BIRCH
  // from scratch on D[1, t]. With the deterministic agglomerative phase 2
  // the models are bitwise identical.
  ClusterGenParams params;
  params.num_points = 6000;
  params.num_clusters = 12;
  params.dim = 3;
  params.noise_fraction = 0.02;
  params.seed = 32;
  ClusterGenerator gen(params);

  const BirchOptions options = TestOptions(12, Phase2Algorithm::kAgglomerative);
  BirchPlus incremental(params.dim, options);
  std::vector<std::shared_ptr<const PointBlock>> so_far;
  for (int b = 0; b < 4; ++b) {
    auto block = std::make_shared<PointBlock>(gen.NextBlock(1500));
    so_far.push_back(block);
    incremental.AddBlock(*block);

    const ClusterModel scratch = RunBirch(so_far, params.dim, options);
    ASSERT_EQ(incremental.model().NumClusters(), scratch.NumClusters());
    for (size_t c = 0; c < scratch.NumClusters(); ++c) {
      EXPECT_EQ(incremental.model().clusters()[c], scratch.clusters()[c])
          << "cluster " << c << " after block " << b;
    }
  }
}

TEST(BirchPlusTest, OnlyScansTheNewBlock) {
  ClusterGenParams params;
  params.num_points = 4000;
  params.num_clusters = 6;
  params.dim = 3;
  params.seed = 33;
  ClusterGenerator gen(params);
  BirchPlus birch_plus(params.dim,
                       TestOptions(6, Phase2Algorithm::kAgglomerative));
  birch_plus.AddBlock(gen.NextBlock(3000));
  EXPECT_EQ(birch_plus.last_stats().points_scanned, 3000u);
  birch_plus.AddBlock(gen.NextBlock(1000));
  EXPECT_EQ(birch_plus.last_stats().points_scanned, 1000u);
  EXPECT_DOUBLE_EQ(birch_plus.tree().total_weight(), 4000.0);
}

TEST(BirchPlusTest, LabelingScanPartitionsAllPoints) {
  ClusterGenParams params;
  params.num_points = 2000;
  params.num_clusters = 5;
  params.dim = 2;
  params.seed = 34;
  ClusterGenerator gen(params);
  const PointBlock block = gen.GenerateAll();
  BirchPlus birch_plus(params.dim,
                       TestOptions(5, Phase2Algorithm::kAgglomerative));
  birch_plus.AddBlock(block);
  const std::vector<int> labels = LabelBlock(block, birch_plus.model());
  ASSERT_EQ(labels.size(), block.size());
  for (int label : labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, static_cast<int>(birch_plus.model().NumClusters()));
  }
}

TEST(KMeansTest, RecoversSeparatedCentroids) {
  std::vector<Point> points;
  Rng rng(35);
  for (int i = 0; i < 300; ++i) {
    const double cx = (i % 3) * 50.0;
    points.push_back({cx + rng.NextGaussian(0, 0.5),
                      rng.NextGaussian(0, 0.5)});
  }
  const KMeansResult result = WeightedKMeans(points, {}, 3, 1);
  ASSERT_EQ(result.centroids.size(), 3u);
  std::vector<double> xs;
  for (const Point& c : result.centroids) xs.push_back(c[0]);
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[0], 0.0, 1.0);
  EXPECT_NEAR(xs[1], 50.0, 1.0);
  EXPECT_NEAR(xs[2], 100.0, 1.0);
  EXPECT_LT(result.cost / 300.0, 1.0);
}

TEST(KMeansTest, WeightsPullCentroids) {
  // Two points, one with overwhelming weight: k=1 centroid sits near it.
  const std::vector<Point> points = {{0.0}, {10.0}};
  const std::vector<double> weights = {99.0, 1.0};
  const KMeansResult result = WeightedKMeans(points, weights, 1, 2);
  ASSERT_EQ(result.centroids.size(), 1u);
  EXPECT_NEAR(result.centroids[0][0], 0.1, 1e-9);
}

TEST(KMeansTest, MoreCentersThanPointsIsSafe) {
  const std::vector<Point> points = {{0.0}, {1.0}};
  const KMeansResult result = WeightedKMeans(points, {}, 5, 3);
  EXPECT_EQ(result.centroids.size(), 5u);
  EXPECT_EQ(result.assignments.size(), 2u);
}

TEST(AgglomerativeTest, MergesDownToK) {
  std::vector<ClusterFeature> entries;
  Rng rng(36);
  for (int i = 0; i < 60; ++i) {
    const double cx = (i % 3) * 100.0;
    double p[2] = {cx + rng.NextGaussian(0, 1.0), rng.NextGaussian(0, 1.0)};
    entries.push_back(ClusterFeature::FromPoint(p, 2));
  }
  std::vector<ClusterFeature> clusters;
  const std::vector<int> assignments =
      AgglomerativeMerge(entries, 3, &clusters);
  ASSERT_EQ(clusters.size(), 3u);
  ASSERT_EQ(assignments.size(), entries.size());
  // Each output cluster must be the exact CF sum of its assigned entries.
  std::vector<ClusterFeature> rebuilt(3, ClusterFeature(2));
  for (size_t i = 0; i < entries.size(); ++i) {
    ASSERT_GE(assignments[i], 0);
    ASSERT_LT(assignments[i], 3);
    rebuilt[assignments[i]].Merge(entries[i]);
  }
  for (size_t c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(rebuilt[c].n(), clusters[c].n());
    EXPECT_NEAR(rebuilt[c].ss(), clusters[c].ss(), 1e-9);
  }
  // The three groups must not be mixed (they are 100 apart, sigma 1).
  for (size_t c = 0; c < 3; ++c) EXPECT_LT(clusters[c].Radius(), 10.0);
}

TEST(AgglomerativeTest, KEqualsInputSizeIsIdentity) {
  std::vector<ClusterFeature> entries;
  for (int i = 0; i < 5; ++i) {
    double p[1] = {static_cast<double>(i * 10)};
    entries.push_back(ClusterFeature::FromPoint(p, 1));
  }
  std::vector<ClusterFeature> clusters;
  const auto assignments = AgglomerativeMerge(entries, 5, &clusters);
  EXPECT_EQ(clusters.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(assignments[i], static_cast<int>(i));
}

TEST(AgglomerativeTest, KOneMergesEverything) {
  std::vector<ClusterFeature> entries;
  for (int i = 0; i < 7; ++i) {
    double p[1] = {static_cast<double>(i)};
    entries.push_back(ClusterFeature::FromPoint(p, 1));
  }
  std::vector<ClusterFeature> clusters;
  AgglomerativeMerge(entries, 1, &clusters);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_DOUBLE_EQ(clusters[0].n(), 7.0);
}

}  // namespace
}  // namespace demon
