#include "core/bss.h"

#include <gtest/gtest.h>

namespace demon {
namespace {

TEST(BssTest, WindowIndependentPrefixAndTail) {
  const auto bss =
      BlockSelectionSequence::WindowIndependent({true, false, true}, false);
  EXPECT_TRUE(bss.SelectsBlock(1));
  EXPECT_FALSE(bss.SelectsBlock(2));
  EXPECT_TRUE(bss.SelectsBlock(3));
  EXPECT_FALSE(bss.SelectsBlock(4));
  EXPECT_FALSE(bss.SelectsBlock(1000));
  EXPECT_FALSE(bss.is_window_relative());
}

TEST(BssTest, AllBlocks) {
  const auto bss = BlockSelectionSequence::AllBlocks();
  for (BlockId id = 1; id < 100; ++id) EXPECT_TRUE(bss.SelectsBlock(id));
}

TEST(BssTest, PeriodicSelectsEveryKth) {
  // "Every Monday" with daily blocks starting on a Monday: period 7,
  // phase 0.
  const auto mondays = BlockSelectionSequence::Periodic(7, 0);
  EXPECT_TRUE(mondays.SelectsBlock(1));
  EXPECT_FALSE(mondays.SelectsBlock(2));
  EXPECT_TRUE(mondays.SelectsBlock(8));
  EXPECT_TRUE(mondays.SelectsBlock(15));
  const auto alternate = BlockSelectionSequence::Periodic(2, 1);
  EXPECT_FALSE(alternate.SelectsBlock(1));
  EXPECT_TRUE(alternate.SelectsBlock(2));
  EXPECT_TRUE(alternate.SelectsBlock(4));
}

TEST(BssTest, ProjectionMatchesPaperExample) {
  // Paper §3.2.1: b = <10110...>, w = 3, window D[1,3].
  const auto bss = BlockSelectionSequence::WindowIndependent(
      {true, false, true, true, false});
  // k = 0: the current window's own bits <101>.
  EXPECT_EQ(bss.Project(3, 3, 0), (std::vector<bool>{true, false, true}));
  // k = 1: project b2 b3, pad one zero -> <001>.
  EXPECT_EQ(bss.Project(3, 3, 1), (std::vector<bool>{false, false, true}));
  // k = 2: project b3, pad two zeros -> <001>.
  EXPECT_EQ(bss.Project(3, 3, 2), (std::vector<bool>{false, false, true}));
}

TEST(BssTest, ProjectionOnLaterWindow) {
  const auto bss = BlockSelectionSequence::WindowIndependent(
      {true, false, true, true, false});
  // Window D[2,4] (t=4, w=3): bits b2 b3 b4 = 0 1 1.
  EXPECT_EQ(bss.Project(4, 3, 0), (std::vector<bool>{false, true, true}));
}

TEST(BssTest, RightShiftMatchesPaperExample) {
  // Paper §3.2.2: right-shifting <101> once gives <010>.
  EXPECT_EQ(BlockSelectionSequence::RightShift({true, false, true}, 1),
            (std::vector<bool>{false, true, false}));
  // Shifting by 0 is the identity.
  EXPECT_EQ(BlockSelectionSequence::RightShift({true, false, true}, 0),
            (std::vector<bool>{true, false, true}));
  // Shifting by w zeroes everything.
  EXPECT_EQ(BlockSelectionSequence::RightShift({true, true, true}, 3),
            (std::vector<bool>{false, false, false}));
}

TEST(BssTest, WindowRelativeBits) {
  const auto bss =
      BlockSelectionSequence::WindowRelative({true, false, true});
  EXPECT_TRUE(bss.is_window_relative());
  EXPECT_EQ(bss.window_bits().size(), 3u);
  EXPECT_TRUE(bss.window_bits()[0]);
  EXPECT_FALSE(bss.window_bits()[1]);
}

TEST(BssTest, ToStringForms) {
  EXPECT_EQ(BlockSelectionSequence::WindowRelative({true, false}).ToString(),
            "<10>");
  EXPECT_EQ(BlockSelectionSequence::AllBlocks().ToString(), "<1...>");
  EXPECT_EQ(BlockSelectionSequence::Periodic(7, 2).ToString(),
            "<periodic:7/2>");
}

}  // namespace
}  // namespace demon
