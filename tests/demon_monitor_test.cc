#include "core/demon_monitor.h"

#include <gtest/gtest.h>

#include "core/block_ops.h"
#include "datagen/cluster_generator.h"
#include "datagen/quest_generator.h"
#include "itemsets/apriori.h"

namespace demon {
namespace {

std::vector<TransactionBlock> MakeBlocks(size_t num_blocks, size_t block_size,
                                         size_t num_items, uint64_t seed) {
  QuestParams params;
  params.num_transactions = num_blocks * block_size;
  params.num_items = num_items;
  params.num_patterns = 30;
  params.avg_transaction_len = 6;
  params.seed = seed;
  QuestGenerator gen(params);
  std::vector<TransactionBlock> blocks;
  Tid tid = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    blocks.push_back(gen.NextBlock(block_size, tid));
    tid += block_size;
  }
  return blocks;
}

TEST(BssFromStringTest, ParsesAllForms) {
  auto all = BlockSelectionSequence::FromString("all");
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(all.value().SelectsBlock(17));

  auto prefix = BlockSelectionSequence::FromString("10110");
  ASSERT_TRUE(prefix.ok());
  EXPECT_TRUE(prefix.value().SelectsBlock(1));
  EXPECT_FALSE(prefix.value().SelectsBlock(2));
  EXPECT_FALSE(prefix.value().SelectsBlock(6));  // tail 0

  auto tailed = BlockSelectionSequence::FromString("101...");
  ASSERT_TRUE(tailed.ok());
  EXPECT_TRUE(tailed.value().SelectsBlock(9));  // tail = last bit = 1

  auto periodic = BlockSelectionSequence::FromString("periodic:7/0");
  ASSERT_TRUE(periodic.ok());
  EXPECT_TRUE(periodic.value().SelectsBlock(8));
  EXPECT_FALSE(periodic.value().SelectsBlock(9));

  auto relative = BlockSelectionSequence::FromString("relative:101");
  ASSERT_TRUE(relative.ok());
  EXPECT_TRUE(relative.value().is_window_relative());
  EXPECT_EQ(relative.value().window_bits().size(), 3u);
}

TEST(BssFromStringTest, RejectsMalformedInput) {
  EXPECT_FALSE(BlockSelectionSequence::FromString("").ok());
  EXPECT_FALSE(BlockSelectionSequence::FromString("10a1").ok());
  EXPECT_FALSE(BlockSelectionSequence::FromString("periodic:7").ok());
  EXPECT_FALSE(BlockSelectionSequence::FromString("periodic:0/0").ok());
  EXPECT_FALSE(BlockSelectionSequence::FromString("periodic:7/9").ok());
  EXPECT_FALSE(BlockSelectionSequence::FromString("relative:").ok());
}

TEST(BlockOpsTest, MergePreservesTransactionsAndTimes) {
  auto blocks = MakeBlocks(3, 50, 20, 51);
  blocks[0].mutable_info()->start_time = 100;
  blocks[0].mutable_info()->end_time = 200;
  blocks[2].mutable_info()->start_time = 300;
  blocks[2].mutable_info()->end_time = 400;
  const TransactionBlock merged =
      MergeBlocks({&blocks[0], &blocks[1], &blocks[2]});
  EXPECT_EQ(merged.size(), 150u);
  EXPECT_EQ(merged.info().start_time, 0);  // block 1 has default times
  EXPECT_EQ(merged.info().end_time, 400);
  EXPECT_EQ(merged.transactions()[0], blocks[0].transactions()[0]);
  EXPECT_EQ(merged.transactions()[149], blocks[2].transactions()[49]);
}

TEST(BlockOpsTest, CoarsenGroupsAndRemainder) {
  const auto blocks = MakeBlocks(7, 10, 20, 52);
  const auto coarse = CoarsenBlocks(blocks, 3);
  ASSERT_EQ(coarse.size(), 3u);
  EXPECT_EQ(coarse[0].size(), 30u);
  EXPECT_EQ(coarse[1].size(), 30u);
  EXPECT_EQ(coarse[2].size(), 10u);  // remainder group
  // Coarsening by 1 is the identity on contents.
  const auto same = CoarsenBlocks(blocks, 1);
  ASSERT_EQ(same.size(), blocks.size());
  for (size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(same[i].size(), blocks[i].size());
  }
}

TEST(BlockOpsTest, ModelOnMergedEqualsModelOnParts) {
  // §2.1's hierarchy claim, verified: mining the merged block equals
  // mining the parts together.
  const auto blocks = MakeBlocks(3, 200, 30, 53);
  const TransactionBlock merged =
      MergeBlocks({&blocks[0], &blocks[1], &blocks[2]});
  const ItemsetModel from_merged = AprioriOnBlock(merged, 0.05, 30);

  std::vector<std::shared_ptr<const TransactionBlock>> parts;
  for (const auto& block : blocks) {
    parts.push_back(std::make_shared<TransactionBlock>(block));
  }
  const ItemsetModel from_parts = Apriori(parts, 0.05, 30);
  ASSERT_EQ(from_merged.entries().size(), from_parts.entries().size());
  for (const auto& [itemset, entry] : from_parts.entries()) {
    EXPECT_EQ(from_merged.CountOf(itemset), entry.count);
  }
}

TEST(DemonMonitorTest, RegistrationValidation) {
  DemonMonitor demon(30);
  EXPECT_FALSE(demon
                   .AddMonitor({.kind = MonitorKind::kUnrestrictedItemsets,
                                .name = "bad",
                                .minsup = 1.5})
                   .ok());
  EXPECT_FALSE(
      demon
          .AddMonitor({.kind = MonitorKind::kUnrestrictedItemsets,
                       .name = "bad",
                       .bss = BlockSelectionSequence::WindowRelative({true}),
                       .minsup = 0.1})
          .ok());
  EXPECT_FALSE(demon
                   .AddMonitor({.kind = MonitorKind::kWindowedItemsets,
                                .name = "bad",
                                .bss = BlockSelectionSequence::WindowRelative(
                                    {true, false}),
                                .window = 3,
                                .minsup = 0.1})
                   .ok());
  EXPECT_FALSE(demon
                   .AddMonitor({.kind = MonitorKind::kPatterns,
                                .name = "bad",
                                .minsup = 0.1,
                                .alpha = 1.5})
                   .ok());
  EXPECT_EQ(demon.NumMonitors(), 0u);
}

TEST(DemonMonitorTest, RoutesBlocksToAllMonitorKinds) {
  const size_t num_items = 30;
  DemonMonitor demon(num_items);
  auto uw = demon.AddMonitor({.kind = MonitorKind::kUnrestrictedItemsets,
                              .name = "every other block",
                              .bss = BlockSelectionSequence::Periodic(2, 0),
                              .minsup = 0.05});
  auto mrw = demon.AddMonitor({.kind = MonitorKind::kWindowedItemsets,
                               .name = "last 3 blocks",
                               .window = 3,
                               .minsup = 0.05});
  auto patterns = demon.AddMonitor({.kind = MonitorKind::kPatterns,
                                    .name = "patterns",
                                    .minsup = 0.05,
                                    .alpha = 0.95});
  ASSERT_TRUE(uw.ok() && mrw.ok() && patterns.ok());

  const auto blocks = MakeBlocks(6, 150, num_items, 54);
  for (const auto& block : blocks) demon.AddBlock(block);
  EXPECT_EQ(demon.snapshot().NumBlocks(), 6u);

  // UW monitor saw blocks 1, 3, 5 (periodic BSS).
  std::vector<std::shared_ptr<const TransactionBlock>> selected;
  for (size_t i = 0; i < 6; i += 2) {
    selected.push_back(std::make_shared<TransactionBlock>(blocks[i]));
  }
  auto uw_model = demon.ItemsetModelOf(uw.value());
  ASSERT_TRUE(uw_model.ok());
  const ItemsetModel truth_uw = Apriori(selected, 0.05, num_items);
  EXPECT_EQ((*uw_model.value()).entries().size(), truth_uw.entries().size());
  EXPECT_EQ((*uw_model.value()).num_transactions(),
            truth_uw.num_transactions());

  // MRW monitor covers blocks 4, 5, 6.
  std::vector<std::shared_ptr<const TransactionBlock>> window;
  for (size_t i = 3; i < 6; ++i) {
    window.push_back(std::make_shared<TransactionBlock>(blocks[i]));
  }
  auto mrw_model = demon.ItemsetModelOf(mrw.value());
  ASSERT_TRUE(mrw_model.ok());
  const ItemsetModel truth_mrw = Apriori(window, 0.05, num_items);
  EXPECT_EQ((*mrw_model.value()).num_transactions(),
            truth_mrw.num_transactions());
  EXPECT_EQ((*mrw_model.value()).NumFrequent(), truth_mrw.NumFrequent());

  // Pattern detector tracked all 6 blocks.
  auto miner = demon.PatternsOf(patterns.value());
  ASSERT_TRUE(miner.ok());
  EXPECT_EQ(miner.value()->NumBlocks(), 6u);

  // Wrong-kind and unknown-id queries fail cleanly.
  EXPECT_FALSE(demon.ItemsetModelOf(patterns.value()).ok());
  EXPECT_FALSE(demon.PatternsOf(uw.value()).ok());
  EXPECT_FALSE(demon.NameOf(99).ok());
  EXPECT_EQ(demon.NameOf(uw.value()).value(), "every other block");
}

TEST(DemonMonitorTest, RegistrationAfterFirstBlockRejected) {
  DemonMonitor demon(20);
  demon.AddBlock(MakeBlocks(1, 10, 20, 55)[0]);
  EXPECT_EQ(demon
                .AddMonitor({.kind = MonitorKind::kUnrestrictedItemsets,
                             .name = "late",
                             .minsup = 0.1})
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(DemonMonitorTest, PointBlocksFlowThroughClusterMonitors) {
  // The Figure 11 loop for the clustering model class: point blocks route
  // to BIRCH+ (unrestricted) and GEMM-over-BIRCH+ (most recent window).
  ClusterGenParams params;
  params.num_points = 1500;
  params.num_clusters = 4;
  params.dim = 3;
  params.seed = 56;
  ClusterGenerator gen(params);
  std::vector<PointBlock> blocks;
  for (int b = 0; b < 5; ++b) blocks.push_back(gen.NextBlock(300));

  BirchOptions birch;
  birch.num_clusters = 4;
  birch.phase2 = Phase2Algorithm::kAgglomerative;
  birch.tree.max_leaf_entries = 128;

  DemonMonitor demon(0);
  const auto uw = demon
                      .AddMonitor({.kind = MonitorKind::kUnrestrictedClusters,
                                   .name = "uw-clusters",
                                   .dim = params.dim,
                                   .birch = birch})
                      .value();
  const auto mrw = demon
                       .AddMonitor({.kind = MonitorKind::kWindowedClusters,
                                    .name = "mrw-clusters",
                                    .window = 2,
                                    .dim = params.dim,
                                    .birch = birch})
                       .value();
  std::vector<std::shared_ptr<const PointBlock>> shared;
  for (const auto& block : blocks) {
    demon.AddPointBlock(block);
    shared.push_back(std::make_shared<PointBlock>(block));
  }
  EXPECT_EQ(demon.point_snapshot().NumBlocks(), 5u);

  // Unrestricted monitor equals from-scratch BIRCH on all blocks.
  const ClusterModel expected_uw = RunBirch(shared, params.dim, birch);
  const ClusterModel& actual_uw = *demon.ClusterModelOf(uw).value();
  ASSERT_EQ(actual_uw.NumClusters(), expected_uw.NumClusters());
  for (size_t c = 0; c < expected_uw.NumClusters(); ++c) {
    EXPECT_EQ(actual_uw.clusters()[c], expected_uw.clusters()[c]);
  }

  // Windowed monitor equals from-scratch BIRCH on the last two blocks.
  const ClusterModel expected_mrw = RunBirch(
      {shared.end() - 2, shared.end()}, params.dim, birch);
  const ClusterModel& actual_mrw = *demon.ClusterModelOf(mrw).value();
  ASSERT_EQ(actual_mrw.NumClusters(), expected_mrw.NumClusters());
  for (size_t c = 0; c < expected_mrw.NumClusters(); ++c) {
    EXPECT_EQ(actual_mrw.clusters()[c], expected_mrw.clusters()[c]);
  }
}

TEST(DemonMonitorTest, StatsExposeRoutingAndTimeSplit) {
  const size_t num_items = 25;
  DemonMonitor demon(num_items);
  const auto uw =
      demon
          .AddMonitor({.kind = MonitorKind::kUnrestrictedItemsets,
                       .name = "every other",
                       .bss = BlockSelectionSequence::Periodic(2, 0),
                       .minsup = 0.05})
          .value();
  const auto mrw = demon
                       .AddMonitor({.kind = MonitorKind::kWindowedItemsets,
                                    .name = "window",
                                    .window = 2,
                                    .minsup = 0.05})
                       .value();
  for (const auto& block : MakeBlocks(4, 100, num_items, 57)) {
    demon.AddBlock(block);
  }
  const MonitorStats uw_stats = demon.StatsOf(uw).value();
  EXPECT_EQ(uw_stats.blocks_routed, 2u);
  EXPECT_EQ(uw_stats.blocks_skipped, 2u);
  EXPECT_GT(uw_stats.response_seconds, 0.0);
  EXPECT_EQ(uw_stats.offline_seconds, 0.0);  // no GEMM, no offline half

  const MonitorStats mrw_stats = demon.StatsOf(mrw).value();
  EXPECT_EQ(mrw_stats.blocks_routed, 4u);
  EXPECT_EQ(mrw_stats.blocks_skipped, 0u);
  EXPECT_GT(mrw_stats.response_seconds, 0.0);
  EXPECT_GT(mrw_stats.total_seconds(), mrw_stats.response_seconds);
}

}  // namespace
}  // namespace demon
