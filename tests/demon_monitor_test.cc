#include "core/demon_monitor.h"

#include <gtest/gtest.h>

#include "core/block_ops.h"
#include "datagen/quest_generator.h"
#include "itemsets/apriori.h"

namespace demon {
namespace {

std::vector<TransactionBlock> MakeBlocks(size_t num_blocks, size_t block_size,
                                         size_t num_items, uint64_t seed) {
  QuestParams params;
  params.num_transactions = num_blocks * block_size;
  params.num_items = num_items;
  params.num_patterns = 30;
  params.avg_transaction_len = 6;
  params.seed = seed;
  QuestGenerator gen(params);
  std::vector<TransactionBlock> blocks;
  Tid tid = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    blocks.push_back(gen.NextBlock(block_size, tid));
    tid += block_size;
  }
  return blocks;
}

TEST(BssFromStringTest, ParsesAllForms) {
  auto all = BlockSelectionSequence::FromString("all");
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(all.value().SelectsBlock(17));

  auto prefix = BlockSelectionSequence::FromString("10110");
  ASSERT_TRUE(prefix.ok());
  EXPECT_TRUE(prefix.value().SelectsBlock(1));
  EXPECT_FALSE(prefix.value().SelectsBlock(2));
  EXPECT_FALSE(prefix.value().SelectsBlock(6));  // tail 0

  auto tailed = BlockSelectionSequence::FromString("101...");
  ASSERT_TRUE(tailed.ok());
  EXPECT_TRUE(tailed.value().SelectsBlock(9));  // tail = last bit = 1

  auto periodic = BlockSelectionSequence::FromString("periodic:7/0");
  ASSERT_TRUE(periodic.ok());
  EXPECT_TRUE(periodic.value().SelectsBlock(8));
  EXPECT_FALSE(periodic.value().SelectsBlock(9));

  auto relative = BlockSelectionSequence::FromString("relative:101");
  ASSERT_TRUE(relative.ok());
  EXPECT_TRUE(relative.value().is_window_relative());
  EXPECT_EQ(relative.value().window_bits().size(), 3u);
}

TEST(BssFromStringTest, RejectsMalformedInput) {
  EXPECT_FALSE(BlockSelectionSequence::FromString("").ok());
  EXPECT_FALSE(BlockSelectionSequence::FromString("10a1").ok());
  EXPECT_FALSE(BlockSelectionSequence::FromString("periodic:7").ok());
  EXPECT_FALSE(BlockSelectionSequence::FromString("periodic:0/0").ok());
  EXPECT_FALSE(BlockSelectionSequence::FromString("periodic:7/9").ok());
  EXPECT_FALSE(BlockSelectionSequence::FromString("relative:").ok());
}

TEST(BlockOpsTest, MergePreservesTransactionsAndTimes) {
  auto blocks = MakeBlocks(3, 50, 20, 51);
  blocks[0].mutable_info()->start_time = 100;
  blocks[0].mutable_info()->end_time = 200;
  blocks[2].mutable_info()->start_time = 300;
  blocks[2].mutable_info()->end_time = 400;
  const TransactionBlock merged =
      MergeBlocks({&blocks[0], &blocks[1], &blocks[2]});
  EXPECT_EQ(merged.size(), 150u);
  EXPECT_EQ(merged.info().start_time, 0);  // block 1 has default times
  EXPECT_EQ(merged.info().end_time, 400);
  EXPECT_EQ(merged.transactions()[0], blocks[0].transactions()[0]);
  EXPECT_EQ(merged.transactions()[149], blocks[2].transactions()[49]);
}

TEST(BlockOpsTest, CoarsenGroupsAndRemainder) {
  const auto blocks = MakeBlocks(7, 10, 20, 52);
  const auto coarse = CoarsenBlocks(blocks, 3);
  ASSERT_EQ(coarse.size(), 3u);
  EXPECT_EQ(coarse[0].size(), 30u);
  EXPECT_EQ(coarse[1].size(), 30u);
  EXPECT_EQ(coarse[2].size(), 10u);  // remainder group
  // Coarsening by 1 is the identity on contents.
  const auto same = CoarsenBlocks(blocks, 1);
  ASSERT_EQ(same.size(), blocks.size());
  for (size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(same[i].size(), blocks[i].size());
  }
}

TEST(BlockOpsTest, ModelOnMergedEqualsModelOnParts) {
  // §2.1's hierarchy claim, verified: mining the merged block equals
  // mining the parts together.
  const auto blocks = MakeBlocks(3, 200, 30, 53);
  const TransactionBlock merged =
      MergeBlocks({&blocks[0], &blocks[1], &blocks[2]});
  const ItemsetModel from_merged = AprioriOnBlock(merged, 0.05, 30);

  std::vector<std::shared_ptr<const TransactionBlock>> parts;
  for (const auto& block : blocks) {
    parts.push_back(std::make_shared<TransactionBlock>(block));
  }
  const ItemsetModel from_parts = Apriori(parts, 0.05, 30);
  ASSERT_EQ(from_merged.entries().size(), from_parts.entries().size());
  for (const auto& [itemset, entry] : from_parts.entries()) {
    EXPECT_EQ(from_merged.CountOf(itemset), entry.count);
  }
}

TEST(DemonMonitorTest, RegistrationValidation) {
  DemonMonitor demon(30);
  EXPECT_FALSE(demon
                   .AddUnrestrictedItemsetMonitor(
                       "bad", 1.5, BlockSelectionSequence::AllBlocks())
                   .ok());
  EXPECT_FALSE(demon
                   .AddUnrestrictedItemsetMonitor(
                       "bad", 0.1,
                       BlockSelectionSequence::WindowRelative({true}))
                   .ok());
  EXPECT_FALSE(demon
                   .AddWindowedItemsetMonitor(
                       "bad", 0.1, 3,
                       BlockSelectionSequence::WindowRelative({true, false}))
                   .ok());
  EXPECT_FALSE(demon.AddPatternDetector("bad", 0.1, 1.5).ok());
  EXPECT_EQ(demon.NumMonitors(), 0u);
}

TEST(DemonMonitorTest, RoutesBlocksToAllMonitorKinds) {
  const size_t num_items = 30;
  DemonMonitor demon(num_items);
  auto uw = demon.AddUnrestrictedItemsetMonitor(
      "every other block", 0.05, BlockSelectionSequence::Periodic(2, 0));
  auto mrw = demon.AddWindowedItemsetMonitor(
      "last 3 blocks", 0.05, 3, BlockSelectionSequence::AllBlocks());
  auto patterns = demon.AddPatternDetector("patterns", 0.05, 0.95);
  ASSERT_TRUE(uw.ok() && mrw.ok() && patterns.ok());

  const auto blocks = MakeBlocks(6, 150, num_items, 54);
  for (const auto& block : blocks) demon.AddBlock(block);
  EXPECT_EQ(demon.snapshot().NumBlocks(), 6u);

  // UW monitor saw blocks 1, 3, 5 (periodic BSS).
  std::vector<std::shared_ptr<const TransactionBlock>> selected;
  for (size_t i = 0; i < 6; i += 2) {
    selected.push_back(std::make_shared<TransactionBlock>(blocks[i]));
  }
  auto uw_model = demon.ItemsetModelOf(uw.value());
  ASSERT_TRUE(uw_model.ok());
  const ItemsetModel truth_uw = Apriori(selected, 0.05, num_items);
  EXPECT_EQ((*uw_model.value()).entries().size(), truth_uw.entries().size());
  EXPECT_EQ((*uw_model.value()).num_transactions(),
            truth_uw.num_transactions());

  // MRW monitor covers blocks 4, 5, 6.
  std::vector<std::shared_ptr<const TransactionBlock>> window;
  for (size_t i = 3; i < 6; ++i) {
    window.push_back(std::make_shared<TransactionBlock>(blocks[i]));
  }
  auto mrw_model = demon.ItemsetModelOf(mrw.value());
  ASSERT_TRUE(mrw_model.ok());
  const ItemsetModel truth_mrw = Apriori(window, 0.05, num_items);
  EXPECT_EQ((*mrw_model.value()).num_transactions(),
            truth_mrw.num_transactions());
  EXPECT_EQ((*mrw_model.value()).NumFrequent(), truth_mrw.NumFrequent());

  // Pattern detector tracked all 6 blocks.
  auto miner = demon.PatternsOf(patterns.value());
  ASSERT_TRUE(miner.ok());
  EXPECT_EQ(miner.value()->NumBlocks(), 6u);

  // Wrong-kind and unknown-id queries fail cleanly.
  EXPECT_FALSE(demon.ItemsetModelOf(patterns.value()).ok());
  EXPECT_FALSE(demon.PatternsOf(uw.value()).ok());
  EXPECT_FALSE(demon.NameOf(99).ok());
  EXPECT_EQ(demon.NameOf(uw.value()).value(), "every other block");
}

TEST(DemonMonitorTest, RegistrationAfterFirstBlockRejected) {
  DemonMonitor demon(20);
  demon.AddBlock(MakeBlocks(1, 10, 20, 55)[0]);
  EXPECT_EQ(demon
                .AddUnrestrictedItemsetMonitor(
                    "late", 0.1, BlockSelectionSequence::AllBlocks())
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace demon
