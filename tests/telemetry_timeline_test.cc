// Tests for the time-series telemetry layer: the MetricsTimeline ring,
// the alert-policy grammar and hysteresis, the TelemetryScraper's delta
// arithmetic and concurrency guarantees, and the JSONL / Chrome-trace
// exporters.

#include "common/telemetry_timeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/telemetry.h"

namespace demon::telemetry {
namespace {

TEST(MetricsTimelineTest, EvictsOldestWhenFull) {
  MetricsTimeline timeline(3);
  for (uint64_t seq = 0; seq < 5; ++seq) {
    TimelineSample sample;
    sample.seq = seq;
    timeline.Append(std::move(sample));
  }
  EXPECT_EQ(timeline.size(), 3u);
  EXPECT_EQ(timeline.capacity(), 3u);
  EXPECT_EQ(timeline.dropped(), 2u);
  const auto samples = timeline.Samples();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].seq, 2u);
  EXPECT_EQ(samples[1].seq, 3u);
  EXPECT_EQ(samples[2].seq, 4u);
}

TEST(MetricsTimelineTest, ZeroCapacityClampsToOne) {
  MetricsTimeline timeline(0);
  EXPECT_EQ(timeline.capacity(), 1u);
  TimelineSample sample;
  sample.seq = 7;
  timeline.Append(std::move(sample));
  ASSERT_EQ(timeline.Samples().size(), 1u);
  EXPECT_EQ(timeline.Samples()[0].seq, 7u);
}

TEST(ParseAlertPolicyTest, ParsesEveryForm) {
  AlertPolicy policy;
  std::string error;

  ASSERT_TRUE(ParseAlertPolicy("evolution/uw/churn>0.3", &policy, &error));
  EXPECT_EQ(policy.metric, "evolution/uw/churn");
  EXPECT_EQ(policy.source, AlertPolicy::Source::kGauge);
  EXPECT_EQ(policy.op, AlertPolicy::Op::kGreaterThan);
  EXPECT_DOUBLE_EQ(policy.threshold, 0.3);
  EXPECT_EQ(policy.for_n_scrapes, 1);
  EXPECT_EQ(policy.name, "evolution/uw/churn>0.3");

  ASSERT_TRUE(ParseAlertPolicy("counter:tidlist/page_ins>1000:3", &policy,
                               &error));
  EXPECT_EQ(policy.metric, "tidlist/page_ins");
  EXPECT_EQ(policy.source, AlertPolicy::Source::kCounter);
  EXPECT_EQ(policy.for_n_scrapes, 3);

  ASSERT_TRUE(ParseAlertPolicy("delta:counting/slots_fetched>5e3", &policy,
                               &error));
  EXPECT_EQ(policy.source, AlertPolicy::Source::kCounterDelta);
  EXPECT_DOUBLE_EQ(policy.threshold, 5000.0);

  ASSERT_TRUE(ParseAlertPolicy("histcount:borders/update_seconds<2", &policy,
                               &error));
  EXPECT_EQ(policy.source, AlertPolicy::Source::kHistogramCount);
  EXPECT_EQ(policy.op, AlertPolicy::Op::kLessThan);
}

TEST(ParseAlertPolicyTest, RejectsMalformedSpecs) {
  AlertPolicy policy;
  std::string error;
  EXPECT_FALSE(ParseAlertPolicy("", &policy, &error));
  EXPECT_FALSE(ParseAlertPolicy("metriconly", &policy, &error));
  EXPECT_FALSE(ParseAlertPolicy(">1", &policy, &error));     // empty metric
  EXPECT_FALSE(ParseAlertPolicy("m>", &policy, &error));     // no threshold
  EXPECT_FALSE(ParseAlertPolicy("m>abc", &policy, &error));
  EXPECT_FALSE(ParseAlertPolicy("m>1:0", &policy, &error));  // n < 1
  EXPECT_FALSE(ParseAlertPolicy("m>1:x", &policy, &error));
  EXPECT_FALSE(error.empty());
}

TEST(TelemetryScraperTest, DeltasTrackPerPeriodActivity) {
  TelemetryRegistry registry;
  Counter* counter = registry.counter("test/ops");
  Histogram* histogram = registry.histogram("test/seconds");
  TelemetryScraper scraper({.registry = &registry});

  counter->Add(5);
  histogram->Record(1.0);
  const TimelineSample first = scraper.ScrapeNow();
  ASSERT_EQ(first.cumulative.counters.size(), 2u);  // alerts/fired, test/ops
  ASSERT_EQ(first.counter_deltas.size(), 2u);
  // First scrape deltas from zero.
  EXPECT_EQ(first.cumulative.counters[1].first, "test/ops");
  EXPECT_EQ(first.cumulative.counters[1].second, 5u);
  EXPECT_EQ(first.counter_deltas[1], 5u);
  ASSERT_EQ(first.histogram_deltas.size(), 1u);
  EXPECT_EQ(first.histogram_deltas[0].count, 1u);
  EXPECT_DOUBLE_EQ(first.histogram_deltas[0].sum, 1.0);

  counter->Add(3);
  histogram->Record(0.25);
  histogram->Record(0.25);
  const TimelineSample second = scraper.ScrapeNow();
  EXPECT_EQ(second.seq, 1u);
  EXPECT_EQ(second.cumulative.counters[1].second, 8u);
  EXPECT_EQ(second.counter_deltas[1], 3u);
  EXPECT_EQ(second.histogram_deltas[0].count, 2u);
  EXPECT_DOUBLE_EQ(second.histogram_deltas[0].sum, 0.5);

  // An idle period deltas to zero.
  const TimelineSample third = scraper.ScrapeNow();
  EXPECT_EQ(third.counter_deltas[1], 0u);
  EXPECT_EQ(third.histogram_deltas[0].count, 0u);
}

TEST(TelemetryScraperTest, MetricRegisteredBetweenScrapesDeltasFromFull) {
  TelemetryRegistry registry;
  TelemetryScraper scraper({.registry = &registry});
  scraper.ScrapeNow();
  registry.counter("late/arrivals")->Add(42);
  const TimelineSample sample = scraper.ScrapeNow();
  bool found = false;
  for (size_t i = 0; i < sample.cumulative.counters.size(); ++i) {
    if (sample.cumulative.counters[i].first == "late/arrivals") {
      found = true;
      EXPECT_EQ(sample.counter_deltas[i], 42u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(TelemetryScraperTest, AlertFiresAfterStreakAndLatches) {
  TelemetryRegistry registry;
  Gauge* gauge = registry.gauge("evolution/m/churn");
  TelemetryScraper scraper({.registry = &registry});
  AlertPolicy policy;
  std::string error;
  ASSERT_TRUE(ParseAlertPolicy("evolution/m/churn>0.5:2", &policy, &error));
  std::atomic<int> callbacks{0};
  scraper.AddPolicy(policy, [&](const AlertEvent&) { ++callbacks; });

  gauge->Set(0.1);
  scraper.ScrapeNow();  // healthy
  gauge->Set(0.9);
  scraper.ScrapeNow();  // violating, streak 1 of 2 — no alert yet
  EXPECT_EQ(callbacks.load(), 0);
  scraper.ScrapeNow();  // violating, streak 2 — fires
  EXPECT_EQ(callbacks.load(), 1);
  scraper.ScrapeNow();  // still violating — latched, no refire
  scraper.ScrapeNow();
  EXPECT_EQ(callbacks.load(), 1);

  gauge->Set(0.2);
  scraper.ScrapeNow();  // healthy scrape re-arms
  gauge->Set(0.9);
  scraper.ScrapeNow();
  scraper.ScrapeNow();  // second sustained breach fires again
  EXPECT_EQ(callbacks.load(), 2);

  EXPECT_EQ(registry.counter("alerts/fired")->value(), 2u);
  // Per-policy counters embed the verbatim spec string, which is allowed to
  // contain comparison/threshold characters.
  EXPECT_EQ(
      registry.counter("alerts/evolution/m/churn>0.5:2/fired")->value(),  // lint:allow(metric-name)
      2u);
  const auto alerts = scraper.Alerts();
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].metric, "evolution/m/churn");
  EXPECT_DOUBLE_EQ(alerts[0].value, 0.9);
  EXPECT_DOUBLE_EQ(alerts[0].threshold, 0.5);
  EXPECT_EQ(alerts[0].seq, 2u);
}

TEST(TelemetryScraperTest, AlertSilentOnStationaryMetric) {
  TelemetryRegistry registry;
  Gauge* gauge = registry.gauge("evolution/m/churn");
  TelemetryScraper scraper({.registry = &registry});
  AlertPolicy policy;
  ASSERT_TRUE(ParseAlertPolicy("evolution/m/churn>0.5", &policy, nullptr));
  scraper.AddPolicy(policy);
  for (int i = 0; i < 20; ++i) {
    gauge->Set(0.3);  // stationary, below threshold
    scraper.ScrapeNow();
  }
  EXPECT_TRUE(scraper.Alerts().empty());
  EXPECT_EQ(registry.counter("alerts/fired")->value(), 0u);
}

TEST(TelemetryScraperTest, MissingMetricNeverViolates) {
  TelemetryRegistry registry;
  TelemetryScraper scraper({.registry = &registry});
  AlertPolicy policy;
  ASSERT_TRUE(ParseAlertPolicy("no/such/metric>0", &policy, nullptr));
  scraper.AddPolicy(policy);
  scraper.ScrapeNow();
  scraper.ScrapeNow();
  EXPECT_TRUE(scraper.Alerts().empty());
}

TEST(TelemetryScraperTest, CounterDeltaSourceSeesPerPeriodRate) {
  TelemetryRegistry registry;
  Counter* counter = registry.counter("test/ops");
  TelemetryScraper scraper({.registry = &registry});
  AlertPolicy policy;
  ASSERT_TRUE(ParseAlertPolicy("delta:test/ops>10", &policy, nullptr));
  scraper.AddPolicy(policy);

  counter->Add(8);
  scraper.ScrapeNow();  // delta 8 — healthy
  counter->Add(9);
  scraper.ScrapeNow();  // delta 9 — healthy (cumulative 17 would violate)
  EXPECT_TRUE(scraper.Alerts().empty());
  counter->Add(11);
  scraper.ScrapeNow();  // delta 11 — fires
  ASSERT_EQ(scraper.Alerts().size(), 1u);
  EXPECT_DOUBLE_EQ(scraper.Alerts()[0].value, 11.0);
}

// The scraper concurrency contract: a background scraper hammered by
// writer threads yields per-metric monotone samples, and a final
// post-quiesce scrape equals the exact totals the writers produced.
TEST(TelemetryScraperTest, ConcurrentScrapesAreMonotoneAndConverge) {
  TelemetryRegistry registry;
  Counter* counter = registry.counter("test/ops");
  Histogram* histogram = registry.histogram("test/seconds");
  TelemetryScraper scraper(
      {.registry = &registry, .period_seconds = 1e-4});
  scraper.Start();

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 20000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        counter->Increment();
        histogram->Record(0.001);
      }
    });
  }
  for (auto& writer : writers) writer.join();
  scraper.Stop();
  const TimelineSample final_sample = scraper.ScrapeNow();
  EXPECT_GT(scraper.num_scrapes(), 1u);

  // Monotone per metric across the retained window, never torn past the
  // true total.
  constexpr uint64_t kTotal = uint64_t{kThreads} * kOpsPerThread;
  uint64_t prev_ops = 0;
  uint64_t prev_hist = 0;
  for (const TimelineSample& sample : scraper.Samples()) {
    for (size_t i = 0; i < sample.cumulative.counters.size(); ++i) {
      if (sample.cumulative.counters[i].first != "test/ops") continue;
      const uint64_t ops = sample.cumulative.counters[i].second;
      EXPECT_GE(ops, prev_ops);
      EXPECT_LE(ops, kTotal);
      prev_ops = ops;
    }
    for (const auto& row : sample.cumulative.histograms) {
      EXPECT_GE(row.count, prev_hist);
      EXPECT_LE(row.count, kTotal);
      // Bounded tear: count (derived from the buckets) and sum are read
      // as separate atomics, so a mid-hammer mean may skew by the few
      // records in flight between the two reads — but never further.
      if (row.count > 0) {
        EXPECT_NEAR(row.sum / static_cast<double>(row.count), 0.001, 1e-5);
      }
      prev_hist = row.count;
    }
  }

  // Final scrape == quiesced totals, exactly.
  ASSERT_EQ(final_sample.cumulative.counters.size(), 2u);
  EXPECT_EQ(final_sample.cumulative.counters[1].first, "test/ops");
  EXPECT_EQ(final_sample.cumulative.counters[1].second, kTotal);
  ASSERT_EQ(final_sample.cumulative.histograms.size(), 1u);
  EXPECT_EQ(final_sample.cumulative.histograms[0].count, kTotal);
}

TEST(TelemetryScraperTest, StartAndStopAreIdempotent) {
  TelemetryRegistry registry;
  TelemetryScraper scraper({.registry = &registry, .period_seconds = 1e-3});
  scraper.Stop();  // never started — no-op
  scraper.Start();
  scraper.Start();  // already running — no-op
  scraper.Stop();
  scraper.Stop();
  // Restart works after a stop.
  scraper.Start();
  scraper.Stop();
}

TEST(TimelineJsonlTest, RendersOneObjectPerScrape) {
  TelemetryRegistry registry;
  registry.counter("test/ops")->Add(4);
  registry.gauge("test/depth")->Set(2.5);
  registry.histogram("test/seconds")->Record(0.5);
  TelemetryScraper scraper({.registry = &registry});
  scraper.ScrapeNow();
  registry.counter("test/ops")->Add(2);
  scraper.ScrapeNow();

  const std::string jsonl = TimelineJsonl(scraper.Samples());
  // Two lines, each a self-contained JSON object.
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 2);
  EXPECT_NE(jsonl.find("{\"type\":\"scrape\",\"seq\":0,"), std::string::npos);
  EXPECT_NE(jsonl.find("{\"type\":\"scrape\",\"seq\":1,"), std::string::npos);
  // Counters render as [cumulative, delta].
  EXPECT_NE(jsonl.find("\"test/ops\":[4,4]"), std::string::npos);
  EXPECT_NE(jsonl.find("\"test/ops\":[6,2]"), std::string::npos);
  EXPECT_NE(jsonl.find("\"test/depth\":2.5"), std::string::npos);
  EXPECT_NE(jsonl.find("\"dcount\":1"), std::string::npos);
  EXPECT_NE(jsonl.find("\"dcount\":0"), std::string::npos);
}

TEST(MergedChromeTraceTest, EmitsCounterTracksNextToSpans) {
  TelemetryRegistry registry;
  registry.counter("test/ops")->Add(3);
  registry.gauge("test/depth")->Set(1.5);
  TelemetryScraper scraper({.registry = &registry});
  scraper.ScrapeNow();
  registry.counter("test/ops")->Add(2);
  scraper.ScrapeNow();

  const std::string trace =
      ChromeTraceJson(registry.CollectSpans(), scraper.Samples());
  EXPECT_EQ(trace.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  EXPECT_EQ(trace.substr(trace.size() - 4), "\n]}\n");
  // One counter event per (counter or gauge) per sample: 2 samples x
  // (alerts/fired + test/ops + test/depth).
  size_t counter_events = 0;
  for (size_t pos = trace.find("\"ph\":\"C\""); pos != std::string::npos;
       pos = trace.find("\"ph\":\"C\"", pos + 1)) {
    ++counter_events;
  }
  EXPECT_EQ(counter_events, 6u);
  // Counters chart the per-period delta: the second test/ops sample
  // charts 2, not the cumulative 5.
  EXPECT_NE(trace.find("\"name\":\"test/ops\""), std::string::npos);
  EXPECT_NE(trace.find("\"args\":{\"value\":2}"), std::string::npos);
  EXPECT_EQ(trace.find("\"args\":{\"value\":5}"), std::string::npos);
  // Gauges chart their value.
  EXPECT_NE(trace.find("\"args\":{\"value\":1.5}"), std::string::npos);
}

}  // namespace
}  // namespace demon::telemetry
