#include "tidlist/tidlist.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>

#include "common/random.h"
#include "datagen/quest_generator.h"
#include "tidlist/tidlist_store.h"

namespace demon {
namespace {

TEST(TidListTest, IntersectBasics) {
  EXPECT_EQ(Intersect({1, 3, 5}, {2, 3, 5, 7}), (TidList{3, 5}));
  EXPECT_EQ(Intersect({}, {1, 2}), TidList{});
  EXPECT_EQ(Intersect({1, 2}, {}), TidList{});
  EXPECT_EQ(Intersect({1, 2, 3}, {1, 2, 3}), (TidList{1, 2, 3}));
  EXPECT_EQ(Intersect({1, 2}, {3, 4}), TidList{});
}

TEST(TidListTest, GallopingPathMatchesMerge) {
  // One long list against a short one exercises the galloping branch.
  TidList large;
  for (uint32_t i = 0; i < 10000; i += 3) large.push_back(i);
  TidList small = {0, 3, 4, 2997, 9999, 9996};
  std::sort(small.begin(), small.end());
  const TidList result = Intersect(small, large);
  EXPECT_EQ(result, (TidList{0, 3, 2997, 9996, 9999}));
  // Symmetric argument order agrees.
  EXPECT_EQ(Intersect(large, small), result);
}

TEST(TidListTest, RandomizedAgainstSetIntersection) {
  Rng rng(123);
  for (int round = 0; round < 50; ++round) {
    std::set<uint32_t> sa;
    std::set<uint32_t> sb;
    const size_t na = 1 + rng.NextUint64(300);
    const size_t nb = 1 + rng.NextUint64(300);
    for (size_t i = 0; i < na; ++i) {
      sa.insert(static_cast<uint32_t>(rng.NextUint64(500)));
    }
    for (size_t i = 0; i < nb; ++i) {
      sb.insert(static_cast<uint32_t>(rng.NextUint64(500)));
    }
    TidList a(sa.begin(), sa.end());
    TidList b(sb.begin(), sb.end());
    TidList expected;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(expected));
    EXPECT_EQ(Intersect(a, b), expected);
  }
}

TEST(TidListTest, IntersectIntoEdgeCases) {
  TidList out;
  const TidList empty;
  const TidList one_two_three = {1, 2, 3};
  // Both empty.
  IntersectInto(empty, empty, &out);
  EXPECT_TRUE(out.empty());
  // One empty.
  IntersectInto(one_two_three, empty, &out);
  EXPECT_TRUE(out.empty());
  IntersectInto(empty, one_two_three, &out);
  EXPECT_TRUE(out.empty());
  // Single elements: hit and miss.
  IntersectInto({5}, {5}, &out);
  EXPECT_EQ(out, (TidList{5}));
  IntersectInto({5}, {6}, &out);
  EXPECT_TRUE(out.empty());
  IntersectInto({5}, {1, 2, 5, 9}, &out);
  EXPECT_EQ(out, (TidList{5}));
  // Output buffer shrinks and regrows across calls without stale tids.
  IntersectInto({1, 2, 3, 4}, {1, 2, 3, 4}, &out);
  EXPECT_EQ(out, (TidList{1, 2, 3, 4}));
  IntersectInto({1}, {2}, &out);
  EXPECT_TRUE(out.empty());
}

TEST(TidListTest, GallopingThresholdBoundary) {
  // Size ratio exactly kGallopRatio must behave identically to both the
  // merge path (just below) and the gallop path (just above).
  for (size_t small_size : {1u, 3u, 7u}) {
    TidList small;
    for (size_t i = 0; i < small_size; ++i) {
      small.push_back(static_cast<uint32_t>(i * 97));
    }
    for (size_t large_size :
         {small_size * kGallopRatio - 1, small_size * kGallopRatio,
          small_size * kGallopRatio + 1}) {
      TidList large;
      for (size_t i = 0; i < large_size; ++i) {
        large.push_back(static_cast<uint32_t>(i * 3));
      }
      TidList expected;
      std::set_intersection(small.begin(), small.end(), large.begin(),
                            large.end(), std::back_inserter(expected));
      EXPECT_EQ(Intersect(small, large), expected)
          << small_size << "x" << large_size;
      EXPECT_EQ(Intersect(large, small), expected)
          << large_size << "x" << small_size;
    }
  }
}

TEST(TidListTest, GallopingMatchesMergeOnRandomInputs) {
  Rng rng(321);
  for (int round = 0; round < 40; ++round) {
    // Extreme size skew forces the galloping path; values near the end
    // of the large list exercise the step clamp at the boundary.
    std::set<uint32_t> ssmall;
    std::set<uint32_t> slarge;
    const size_t ns = 1 + rng.NextUint64(10);
    const size_t nl = 200 + rng.NextUint64(800);
    for (size_t i = 0; i < ns; ++i) {
      ssmall.insert(static_cast<uint32_t>(rng.NextUint64(5000)));
    }
    // Guarantee hits at the extreme tail and head.
    ssmall.insert(4999);
    ssmall.insert(0);
    for (size_t i = 0; i < nl; ++i) {
      slarge.insert(static_cast<uint32_t>(rng.NextUint64(5000)));
    }
    slarge.insert(4999);
    slarge.insert(0);
    TidList small(ssmall.begin(), ssmall.end());
    TidList large(slarge.begin(), slarge.end());
    TidList expected;
    std::set_intersection(small.begin(), small.end(), large.begin(),
                          large.end(), std::back_inserter(expected));
    EXPECT_EQ(Intersect(small, large), expected);
    EXPECT_EQ(Intersect(large, small), expected);
  }
}

TEST(TidListTest, IntersectionSizeWithScratchReuse) {
  const TidList a = {1, 2, 3, 4, 5, 8};
  const TidList b = {2, 3, 4, 8, 9};
  const TidList c = {0, 3, 4, 8};
  IntersectionScratch scratch;
  const std::vector<const TidList*> abc = {&a, &b, &c};
  const std::vector<const TidList*> ab = {&a, &b};
  EXPECT_EQ(IntersectionSize(abc, &scratch), 3u);
  // Reuse with different lists; stale scratch contents must not leak.
  EXPECT_EQ(IntersectionSize(ab, &scratch), 4u);
  const TidList empty;
  const std::vector<const TidList*> ea = {&empty, &a};
  EXPECT_EQ(IntersectionSize(ea, &scratch), 0u);
  EXPECT_EQ(IntersectionSize(abc, &scratch), 3u);
}

TEST(TidListTest, IntersectionSizeMultiWay) {
  const TidList a = {1, 2, 3, 4, 5};
  const TidList b = {2, 3, 4, 9};
  const TidList c = {0, 3, 4};
  EXPECT_EQ(IntersectionSize({&a}), 5u);
  EXPECT_EQ(IntersectionSize({&a, &b}), 3u);
  EXPECT_EQ(IntersectionSize({&a, &b, &c}), 2u);
  const TidList empty;
  EXPECT_EQ(IntersectionSize({&a, &empty, &b}), 0u);
}

TEST(BlockTidListsTest, ListsMatchBlockContents) {
  TransactionBlock block(
      {Transaction({0, 2}), Transaction({1, 2}), Transaction({0, 1, 2})}, 0);
  auto lists = BlockTidLists::Build(block, 3);
  EXPECT_EQ(lists->num_transactions(), 3u);
  EXPECT_EQ(lists->MaterializeItemList(0), (TidList{0, 2}));
  EXPECT_EQ(lists->MaterializeItemList(1), (TidList{1, 2}));
  EXPECT_EQ(lists->MaterializeItemList(2), (TidList{0, 1, 2}));
  // The always-resident directory answers sizes without payload access.
  EXPECT_EQ(lists->ItemListSize(0), 2u);
  EXPECT_EQ(lists->ItemListSize(2), 3u);
  // Item-list slots equal the transactional representation's size (§3.1.1).
  EXPECT_EQ(lists->item_list_slots(), block.TotalItemOccurrences());
  EXPECT_EQ(lists->num_pair_lists(), 0u);
}

TEST(BlockTidListsTest, PairMaterialization) {
  TransactionBlock block(
      {Transaction({0, 1}), Transaction({0, 1, 2}), Transaction({1, 2})}, 0);
  PairMaterializationSpec spec;
  spec.pairs = {{0, 1}, {1, 2}};
  auto lists = BlockTidLists::Build(block, 3, &spec);
  ASSERT_TRUE(lists->HasPairList(0, 1));
  EXPECT_EQ(lists->MaterializePairList(0, 1), (TidList{0, 1}));
  ASSERT_TRUE(lists->HasPairList(1, 2));
  EXPECT_EQ(lists->MaterializePairList(1, 2), (TidList{1, 2}));
  EXPECT_FALSE(lists->HasPairList(0, 2));
  // Argument order does not matter.
  EXPECT_TRUE(lists->HasPairList(1, 0));
  EXPECT_EQ(lists->MaterializePairList(1, 0), lists->MaterializePairList(0, 1));
  EXPECT_EQ(lists->PairListSize(1, 0), 2u);
  EXPECT_EQ(lists->pair_list_slots(), 4u);
}

TEST(BlockTidListsTest, PairBudgetTakesPriorityOrder) {
  TransactionBlock block(
      {Transaction({0, 1, 2}), Transaction({0, 1, 2}), Transaction({0, 1})},
      0);
  PairMaterializationSpec spec;
  spec.pairs = {{0, 1}, {0, 2}, {1, 2}};  // priority order
  spec.budget_slots = 4;
  auto lists = BlockTidLists::Build(block, 3, &spec);
  // {0,1} has 3 tids (fits), {0,2} has 2 (3+2 > 4, skipped), {1,2} has 2
  // (skipped as well: budget is 4 and 3 are used).
  EXPECT_TRUE(lists->HasPairList(0, 1));
  EXPECT_FALSE(lists->HasPairList(0, 2));
  EXPECT_FALSE(lists->HasPairList(1, 2));
  EXPECT_LE(lists->pair_list_slots(), 4u);
}

TEST(BlockTidListsTest, FilePersistenceRoundTrip) {
  QuestParams params;
  params.num_transactions = 500;
  params.num_items = 60;
  params.num_patterns = 30;
  QuestGenerator gen(params);
  const TransactionBlock block = gen.GenerateAll();
  PairMaterializationSpec spec;
  spec.pairs = {{1, 2}, {3, 4}};
  auto lists = BlockTidLists::Build(block, params.num_items, &spec);

  const std::string path = ::testing::TempDir() + "/tidlists.bin";
  ASSERT_TRUE(lists->WriteToFile(path).ok());
  auto reread = BlockTidLists::ReadFromFile(path);
  ASSERT_TRUE(reread.ok()) << reread.status();
  const auto& loaded = *reread.value();
  EXPECT_EQ(loaded.num_transactions(), lists->num_transactions());
  EXPECT_EQ(loaded.item_list_slots(), lists->item_list_slots());
  EXPECT_EQ(loaded.pair_list_slots(), lists->pair_list_slots());
  for (Item item = 0; item < params.num_items; ++item) {
    EXPECT_EQ(loaded.ItemListEncoding(item), lists->ItemListEncoding(item));
    EXPECT_EQ(loaded.MaterializeItemList(item), lists->MaterializeItemList(item));
  }
  ASSERT_TRUE(loaded.HasPairList(1, 2));
  EXPECT_EQ(loaded.MaterializePairList(1, 2), lists->MaterializePairList(1, 2));
  std::remove(path.c_str());
}

TEST(BlockTidListsTest, ReadMissingFileFails) {
  auto result = BlockTidLists::ReadFromFile("/nonexistent/file.bin");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(TidListStoreTest, AppendAndDrop) {
  TransactionBlock b1({Transaction({0, 1})}, 0);
  TransactionBlock b2({Transaction({1}), Transaction({0})}, 1);
  TidListStore store;
  store.Append(BlockTidLists::Build(b1, 2));
  store.Append(BlockTidLists::Build(b2, 2));
  EXPECT_EQ(store.NumBlocks(), 2u);
  EXPECT_EQ(store.TotalTransactions(), 3u);
  EXPECT_EQ(store.TotalItemSlots(), 4u);
  store.DropOldest(1);
  EXPECT_EQ(store.NumBlocks(), 1u);
  EXPECT_EQ(store.TotalTransactions(), 2u);
}

}  // namespace
}  // namespace demon
