// Failure-injection and degenerate-input tests across the stack: empty
// blocks, single-transaction blocks, extreme thresholds, all-identical
// data — the inputs a production system meets before the benchmarks do.

#include <gtest/gtest.h>

#include "clustering/birch.h"
#include "core/gemm.h"
#include "core/maintainers.h"
#include "deviation/focus.h"
#include "itemsets/apriori.h"
#include "itemsets/borders.h"
#include "patterns/compact_sequences.h"

namespace demon {
namespace {

using BlockPtr = std::shared_ptr<const TransactionBlock>;

BlockPtr EmptyBlock() {
  return std::make_shared<TransactionBlock>(std::vector<Transaction>{}, 0);
}

BlockPtr TinyBlock(std::vector<Transaction> transactions, Tid first = 0) {
  return std::make_shared<TransactionBlock>(std::move(transactions), first);
}

TEST(EdgeCaseTest, AprioriOnEmptyData) {
  const ItemsetModel model = Apriori({EmptyBlock()}, 0.5, 4);
  EXPECT_EQ(model.num_transactions(), 0u);
  EXPECT_EQ(model.NumFrequent(), 0u);
  // All single items sit in the border with count 0.
  EXPECT_EQ(model.NumBorder(), 4u);
}

TEST(EdgeCaseTest, BordersMaintainerFirstBlockEmpty) {
  BordersOptions options;
  options.minsup = 0.5;
  options.num_items = 4;
  BordersMaintainer maintainer(options);
  maintainer.AddBlock(EmptyBlock());
  EXPECT_EQ(maintainer.model().NumFrequent(), 0u);
  // A real block afterwards brings the model up.
  maintainer.AddBlock(TinyBlock({Transaction({0, 1}), Transaction({0, 1})}));
  EXPECT_TRUE(maintainer.model().IsFrequent({0, 1}));
}

TEST(EdgeCaseTest, BordersMaintainerMidStreamEmptyBlock) {
  BordersOptions options;
  options.minsup = 0.5;
  options.num_items = 4;
  BordersMaintainer maintainer(options);
  maintainer.AddBlock(TinyBlock({Transaction({0}), Transaction({0, 1})}));
  const size_t frequent_before = maintainer.model().NumFrequent();
  maintainer.AddBlock(EmptyBlock());
  EXPECT_EQ(maintainer.model().NumFrequent(), frequent_before);
  EXPECT_EQ(maintainer.model().num_transactions(), 2u);
}

TEST(EdgeCaseTest, BordersRemoveDownToEmpty) {
  BordersOptions options;
  options.minsup = 0.5;
  options.num_items = 3;
  BordersMaintainer maintainer(options);
  maintainer.AddBlock(TinyBlock({Transaction({0, 1})}));
  maintainer.AddBlock(TinyBlock({Transaction({1, 2})}, 1));
  maintainer.RemoveOldestBlock();
  maintainer.RemoveOldestBlock();
  EXPECT_EQ(maintainer.model().num_transactions(), 0u);
  EXPECT_EQ(maintainer.model().NumFrequent(), 0u);
  // And it can be refilled afterwards.
  maintainer.AddBlock(TinyBlock({Transaction({2}), Transaction({2})}, 2));
  EXPECT_TRUE(maintainer.model().IsFrequent({2}));
}

TEST(EdgeCaseTest, SingleTransactionUniverse) {
  // One transaction containing every item: everything is frequent; the
  // border is empty (no infrequent candidate exists).
  BordersOptions options;
  options.minsup = 0.9;
  options.num_items = 3;
  BordersMaintainer maintainer(options);
  maintainer.AddBlock(TinyBlock({Transaction({0, 1, 2})}));
  EXPECT_EQ(maintainer.model().NumFrequent(), 7u);  // 2^3 - 1 subsets
  EXPECT_EQ(maintainer.model().NumBorder(), 0u);
}

TEST(EdgeCaseTest, VeryHighMinSupport) {
  BordersOptions options;
  options.minsup = 0.999;
  options.num_items = 5;
  BordersMaintainer maintainer(options);
  maintainer.AddBlock(TinyBlock({Transaction({0}), Transaction({1}),
                                 Transaction({2})}));
  EXPECT_EQ(maintainer.model().NumFrequent(), 0u);
  EXPECT_EQ(maintainer.model().NumBorder(), 5u);
}

TEST(EdgeCaseTest, DuplicateItemsInInputTransaction) {
  // Transaction normalization dedupes; supports must not double-count.
  const ItemsetModel model = Apriori(
      {TinyBlock({Transaction({1, 1, 1}), Transaction({1})})}, 0.5, 2);
  EXPECT_EQ(model.CountOf({1}), 2u);
}

TEST(EdgeCaseTest, GemmWithAllZeroBss) {
  // A BSS selecting nothing: the current model stays empty forever.
  BordersOptions options;
  options.minsup = 0.5;
  options.num_items = 4;
  Gemm<BordersMaintainer, BlockPtr> gemm(
      BlockSelectionSequence::WindowIndependent({}, false), 3,
      [&options] { return BordersMaintainer(options); });
  for (int t = 0; t < 5; ++t) {
    gemm.AddBlock(TinyBlock({Transaction({0})}, t));
    EXPECT_EQ(gemm.current().model().num_transactions(), 0u);
  }
}

TEST(EdgeCaseTest, GemmWindowLargerThanStream) {
  BordersOptions options;
  options.minsup = 0.5;
  options.num_items = 4;
  Gemm<BordersMaintainer, BlockPtr> gemm(
      BlockSelectionSequence::AllBlocks(), 100,
      [&options] { return BordersMaintainer(options); });
  gemm.AddBlock(TinyBlock({Transaction({0}), Transaction({0, 1})}));
  gemm.AddBlock(TinyBlock({Transaction({0})}, 2));
  EXPECT_EQ(gemm.NumModels(), 2u);
  EXPECT_EQ(gemm.current().model().num_transactions(), 3u);
}

TEST(EdgeCaseTest, BirchPlusEmptyBlockIsNoOp) {
  BirchOptions options;
  options.num_clusters = 2;
  BirchPlus birch(2, options);
  birch.AddBlock(PointBlock({1.0, 1.0, 5.0, 5.0}, 2));
  const double weight = birch.tree().total_weight();
  birch.AddBlock(PointBlock({}, 2));
  EXPECT_DOUBLE_EQ(birch.tree().total_weight(), weight);
  EXPECT_EQ(birch.model().NumClusters(), 2u);
}

TEST(EdgeCaseTest, BirchMoreClustersThanPoints) {
  BirchOptions options;
  options.num_clusters = 10;
  auto block = std::make_shared<const PointBlock>(
      PointBlock({0.0, 0.0, 9.0, 9.0}, 2));
  const ClusterModel model = RunBirch({block}, 2, options);
  EXPECT_LE(model.NumClusters(), 2u);
  EXPECT_DOUBLE_EQ(model.TotalWeight(), 2.0);
}

TEST(EdgeCaseTest, FocusOnEmptyBlocks) {
  FocusItemsets::Options options;
  options.minsup = 0.5;
  options.num_items = 4;
  FocusItemsets focus(options);
  const auto empty = EmptyBlock();
  const DeviationResult result = focus.Compare(*empty, *empty);
  EXPECT_DOUBLE_EQ(result.deviation, 0.0);
  EXPECT_EQ(result.num_regions, 0u);
}

TEST(EdgeCaseTest, CompactSequencesWithEmptyBlocks) {
  CompactSequenceMiner::Options options;
  options.focus.minsup = 0.5;
  options.focus.num_items = 4;
  CompactSequenceMiner miner(options);
  miner.AddBlock(EmptyBlock());
  miner.AddBlock(TinyBlock({Transaction({0}), Transaction({0})}, 0));
  miner.AddBlock(EmptyBlock());
  EXPECT_EQ(miner.NumBlocks(), 3u);
  for (const auto& sequence : miner.sequences()) {
    EXPECT_TRUE(miner.IsCompact(sequence));
  }
}

TEST(EdgeCaseTest, ChangeMinSupportToSameValueIsStable) {
  BordersOptions options;
  options.minsup = 0.4;
  options.num_items = 4;
  BordersMaintainer maintainer(options);
  maintainer.AddBlock(TinyBlock({Transaction({0, 1}), Transaction({0}),
                                 Transaction({1})}));
  const size_t frequent = maintainer.model().NumFrequent();
  const size_t border = maintainer.model().NumBorder();
  maintainer.ChangeMinSupport(0.4);
  EXPECT_EQ(maintainer.model().NumFrequent(), frequent);
  EXPECT_EQ(maintainer.model().NumBorder(), border);
}

}  // namespace
}  // namespace demon
