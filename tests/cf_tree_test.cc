#include "clustering/cf_tree.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/cluster_generator.h"

namespace demon {
namespace {

CFTreeOptions SmallTree() {
  CFTreeOptions options;
  options.branching = 4;
  options.leaf_capacity = 4;
  options.max_leaf_entries = 64;
  return options;
}

ClusterFeature SumEntries(const std::vector<ClusterFeature>& entries,
                          size_t dim) {
  ClusterFeature total(dim);
  for (const auto& cf : entries) total.Merge(cf);
  return total;
}

TEST(CFTreeTest, PreservesTotalsExactly) {
  Rng rng(1);
  CFTree tree(3, SmallTree());
  ClusterFeature expected(3);
  for (int i = 0; i < 2000; ++i) {
    double p[3] = {rng.NextGaussian(0, 10), rng.NextGaussian(0, 10),
                   rng.NextGaussian(0, 10)};
    tree.Insert(p);
    expected.Add(p, 3);
  }
  EXPECT_DOUBLE_EQ(tree.total_weight(), 2000.0);
  const ClusterFeature total = SumEntries(tree.LeafEntries(), 3);
  EXPECT_DOUBLE_EQ(total.n(), expected.n());
  for (size_t d = 0; d < 3; ++d) {
    EXPECT_NEAR(total.ls()[d], expected.ls()[d], 1e-6);
  }
  EXPECT_NEAR(total.ss(), expected.ss(), expected.ss() * 1e-12 + 1e-6);
}

TEST(CFTreeTest, RespectsLeafEntryLimit) {
  Rng rng(2);
  CFTreeOptions options = SmallTree();
  options.max_leaf_entries = 32;
  CFTree tree(2, options);
  for (int i = 0; i < 5000; ++i) {
    double p[2] = {rng.NextDouble() * 100, rng.NextDouble() * 100};
    tree.Insert(p);
  }
  EXPECT_LE(tree.num_leaf_entries(), 32u);
  EXPECT_GT(tree.num_rebuilds(), 0u);
  EXPECT_GT(tree.threshold(), 0.0);
  EXPECT_EQ(tree.LeafEntries().size(), tree.num_leaf_entries());
}

TEST(CFTreeTest, IdenticalPointsAbsorbIntoOneEntry) {
  CFTree tree(2, SmallTree());
  for (int i = 0; i < 100; ++i) {
    double p[2] = {1.0, 2.0};
    tree.Insert(p);
  }
  EXPECT_EQ(tree.num_leaf_entries(), 1u);
  const auto entries = tree.LeafEntries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_DOUBLE_EQ(entries[0].n(), 100.0);
}

TEST(CFTreeTest, HighThresholdAbsorbsAggressively) {
  Rng rng(3);
  CFTreeOptions options = SmallTree();
  options.initial_threshold = 1000.0;  // everything within one entry
  CFTree tree(2, options);
  for (int i = 0; i < 500; ++i) {
    double p[2] = {rng.NextDouble() * 10, rng.NextDouble() * 10};
    tree.Insert(p);
  }
  EXPECT_EQ(tree.num_leaf_entries(), 1u);
}

TEST(CFTreeTest, WellSeparatedClustersGetSeparateEntries) {
  // Two tight far-apart groups must never share a sub-cluster when the
  // threshold starts small.
  Rng rng(4);
  CFTreeOptions options = SmallTree();
  options.max_leaf_entries = 128;
  CFTree tree(2, options);
  for (int i = 0; i < 400; ++i) {
    const double cx = (i % 2 == 0) ? 0.0 : 1000.0;
    double p[2] = {cx + rng.NextGaussian(0, 0.5),
                   rng.NextGaussian(0, 0.5)};
    tree.Insert(p);
  }
  size_t low = 0;
  size_t high = 0;
  for (const auto& cf : tree.LeafEntries()) {
    const Point c = cf.Centroid();
    if (c[0] < 500.0) {
      low += static_cast<size_t>(cf.n());
    } else {
      high += static_cast<size_t>(cf.n());
    }
    // A sub-cluster spanning both groups would have a huge radius.
    EXPECT_LT(cf.Radius(), 100.0);
  }
  EXPECT_EQ(low, 200u);
  EXPECT_EQ(high, 200u);
}

TEST(CFTreeTest, InsertBlockMatchesPointwiseInsert) {
  ClusterGenParams params;
  params.num_points = 1000;
  params.num_clusters = 5;
  params.dim = 4;
  ClusterGenerator gen(params);
  const PointBlock block = gen.GenerateAll();

  CFTree a(4, SmallTree());
  CFTree b(4, SmallTree());
  a.InsertBlock(block);
  for (size_t i = 0; i < block.size(); ++i) b.Insert(block.PointAt(i));
  const auto ea = a.LeafEntries();
  const auto eb = b.LeafEntries();
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) EXPECT_EQ(ea[i], eb[i]);
}

TEST(CFTreeTest, ResumedInsertionEqualsOneShot) {
  // The BIRCH+ property at the tree level: suspending phase 1 between
  // blocks changes nothing (paper §3.1.2).
  ClusterGenParams params;
  params.num_points = 3000;
  params.num_clusters = 8;
  params.dim = 3;
  params.seed = 9;
  ClusterGenerator gen(params);
  const PointBlock all = gen.GenerateAll();

  CFTree one_shot(3, SmallTree());
  one_shot.InsertBlock(all);

  CFTree resumed(3, SmallTree());
  // Split the same data into 3 "blocks" and insert with pauses.
  const size_t third = all.size() / 3;
  for (size_t part = 0; part < 3; ++part) {
    const size_t begin = part * third;
    const size_t end = (part == 2) ? all.size() : (part + 1) * third;
    for (size_t i = begin; i < end; ++i) resumed.Insert(all.PointAt(i));
  }
  EXPECT_DOUBLE_EQ(one_shot.total_weight(), resumed.total_weight());
  EXPECT_EQ(one_shot.threshold(), resumed.threshold());
  const auto ea = one_shot.LeafEntries();
  const auto eb = resumed.LeafEntries();
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) EXPECT_EQ(ea[i], eb[i]);
}

}  // namespace
}  // namespace demon
