// Tests for the demon_serve wire protocol and the multi-tenant server:
// frame codec round-trips, the truncation/corruption error taxonomy
// (DataLoss vs InvalidArgument, never UB), socket framing over a
// socketpair, and end-to-end serving — including the tentpole invariant
// that concurrent tenants driven through sockets checkpoint byte-identical
// to a serial in-process replay of the same record streams.

#include <arpa/inet.h>
#include <fcntl.h>
#include <ftw.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/demon_monitor.h"
#include "gtest/gtest.h"
#include "server/server.h"
#include "server/tenant.h"
#include "server/wire.h"

namespace demon::server {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

int RemoveEntry(const char* path, const struct stat*, int,
                struct FTW*) {
  return ::remove(path);
}

/// `rm -rf`: TempDir() persists across test-binary runs, so every server
/// test must start from a data dir it knows is empty.
void RemoveTree(const std::string& path) {
  ::nftw(path.c_str(), RemoveEntry, 16, FTW_DEPTH | FTW_PHYS);
}

std::string ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return {};
  std::string bytes;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    bytes.append(buffer, n);
  }
  std::fclose(f);
  return bytes;
}

/// The payload of an encoded frame (strips the u32 length prefix).
std::string PayloadOf(const std::string& frame) {
  EXPECT_GE(frame.size(), 4u);
  return frame.substr(4);
}

MonitorSpec ItemsetSpec(double minsup) {
  MonitorSpec spec;
  spec.kind = MonitorKind::kUnrestrictedItemsets;
  spec.name = "itemsets";
  spec.minsup = minsup;
  return spec;
}

/// Record `index` of tenant `tenant_index`: the same pure function of
/// (seed, tenant, index) demon_load uses, so tests can replay any suffix.
Transaction MakeRecord(uint64_t seed, uint64_t tenant_index, uint64_t index) {
  Rng rng(seed ^ (tenant_index + 1) * 0x9E3779B97F4A7C15ULL ^
          (index + 1) * 0xBF58476D1CE4E5B9ULL);
  const size_t size = 2 + static_cast<size_t>(rng.NextUint64(6));
  std::vector<Item> items;
  items.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    items.push_back(static_cast<Item>(rng.NextUint64(32)));
  }
  return Transaction(std::move(items));
}

Request MakeAppend(const std::string& tenant, uint64_t first,
                   uint64_t count) {
  Request request;
  request.type = MsgType::kAppendBatch;
  request.tenant = tenant;
  request.first_record_index = first;
  for (uint64_t i = 0; i < count; ++i) {
    request.transactions.push_back(MakeRecord(7, 0, first + i));
  }
  return request;
}

// --------------------------------------------------------------------------
// Frame codec.

TEST(WireCodec, RequestRoundTripsEveryType) {
  Request create;
  create.type = MsgType::kCreateTenant;
  create.tenant = "acme";
  create.num_items = 128;
  create.specs.push_back(ItemsetSpec(0.25));

  Request append = MakeAppend("acme", 40, 3);

  Request flush;
  flush.type = MsgType::kFlushTenant;
  flush.tenant = "acme";

  Request stats;
  stats.type = MsgType::kStats;
  stats.tenant = "";

  for (const Request& request :
       {Request{}, create, append, flush, Request{MsgType::kFlushAll},
        stats, Request{MsgType::kShutdown}}) {
    auto decoded =
        DecodeRequestPayload(PayloadOf(EncodeRequestFrame(request)));
    ASSERT_TRUE(decoded.ok())
        << MsgTypeToString(request.type) << ": "
        << decoded.status().ToString();
    const Request& got = decoded.value();
    EXPECT_EQ(got.type, request.type);
    EXPECT_EQ(got.tenant, request.tenant);
    EXPECT_EQ(got.num_items, request.num_items);
    EXPECT_EQ(got.first_record_index, request.first_record_index);
    ASSERT_EQ(got.specs.size(), request.specs.size());
    for (size_t i = 0; i < got.specs.size(); ++i) {
      EXPECT_EQ(got.specs[i].kind, request.specs[i].kind);
      EXPECT_EQ(got.specs[i].name, request.specs[i].name);
      EXPECT_DOUBLE_EQ(got.specs[i].minsup, request.specs[i].minsup);
    }
    ASSERT_EQ(got.transactions.size(), request.transactions.size());
    for (size_t i = 0; i < got.transactions.size(); ++i) {
      EXPECT_EQ(got.transactions[i].items(),
                request.transactions[i].items());
    }
  }
}

TEST(WireCodec, ResponseRoundTrips) {
  Response response;
  response.code = StatusCode::kDataLoss;
  response.message = "wal torn";
  response.records_admitted = 11;
  response.records_durable = 10;
  response.blocks = 2;
  response.num_tenants = 3;
  auto decoded =
      DecodeResponsePayload(PayloadOf(EncodeResponseFrame(response)));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().code, StatusCode::kDataLoss);
  EXPECT_EQ(decoded.value().message, "wal torn");
  EXPECT_EQ(decoded.value().records_admitted, 11u);
  EXPECT_EQ(decoded.value().records_durable, 10u);
  EXPECT_EQ(decoded.value().blocks, 2u);
  EXPECT_EQ(decoded.value().num_tenants, 3u);
  EXPECT_FALSE(decoded.value().ok());
  EXPECT_EQ(decoded.value().ToStatus().code(), StatusCode::kDataLoss);
}

TEST(WireCodec, TruncationAtEveryPrefixIsCleanlyRejected) {
  const std::string payload =
      PayloadOf(EncodeRequestFrame(MakeAppend("acme", 0, 5)));
  for (size_t len = 0; len < payload.size(); ++len) {
    auto decoded = DecodeRequestPayload(payload.substr(0, len));
    ASSERT_FALSE(decoded.ok()) << "prefix of " << len << " bytes decoded";
    const StatusCode code = decoded.status().code();
    EXPECT_TRUE(code == StatusCode::kDataLoss ||
                code == StatusCode::kInvalidArgument)
        << "prefix " << len << ": " << decoded.status().ToString();
  }
}

TEST(WireCodec, TrailingGarbageIsDataLoss) {
  std::string payload = PayloadOf(EncodeRequestFrame(Request{}));
  payload += '\x00';
  auto decoded = DecodeRequestPayload(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

TEST(WireCodec, HeaderSkewIsInvalidArgument) {
  const std::string good = PayloadOf(EncodeRequestFrame(Request{}));

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  auto decoded = DecodeRequestPayload(bad_magic);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);

  // A response payload where a request is expected: wrong format id.
  const std::string response_payload =
      PayloadOf(EncodeResponseFrame(Response{}));
  decoded = DecodeRequestPayload(response_payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);

  // Version newer than this build speaks (u32 LE at header offset 12).
  std::string future = good;
  const uint32_t version = kWireVersion + 1;
  std::memcpy(&future[12], &version, sizeof(version));
  decoded = DecodeRequestPayload(future);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireCodec, UnknownMessageTypeIsInvalidArgument) {
  std::string payload = PayloadOf(EncodeRequestFrame(Request{}));
  payload[persistence::FileHeader::kBytes] = '\xc8';  // type 200
  auto decoded = DecodeRequestPayload(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireCodec, OversizedRecordCountIsDataLossNotAllocation) {
  // An intact frame whose body claims 2^32-ish records but carries none:
  // the decoder must bound-check the count against the remaining bytes
  // instead of trusting it.
  std::string payload =
      PayloadOf(EncodeRequestFrame(MakeAppend("acme", 0, 1)));
  // The record count is a varint-free u64 right after tenant and cursor;
  // simplest robust corruption: truncate the last transaction's bytes.
  payload.resize(payload.size() - 3);
  auto decoded = DecodeRequestPayload(payload);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
}

// --------------------------------------------------------------------------
// Socket framing.

TEST(SocketFraming, FrameRoundTripsOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const Request request = MakeAppend("acme", 3, 2);
  ASSERT_TRUE(SendFrame(fds[0], EncodeRequestFrame(request)).ok());
  auto payload = ReceiveFramePayload(fds[1]);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  auto decoded = DecodeRequestPayload(payload.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().first_record_index, 3u);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(SocketFraming, CleanCloseAtBoundaryIsNotFound) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[0]);
  auto payload = ReceiveFramePayload(fds[1]);
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.status().code(), StatusCode::kNotFound);
  ::close(fds[1]);
}

TEST(SocketFraming, MidFrameCloseIsDataLoss) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string frame = EncodeRequestFrame(Request{});
  // Half the frame, then close: the receiver is mid-payload.
  ASSERT_EQ(::send(fds[0], frame.data(), frame.size() / 2, 0),
            static_cast<ssize_t>(frame.size() / 2));
  ::close(fds[0]);
  auto payload = ReceiveFramePayload(fds[1]);
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.status().code(), StatusCode::kDataLoss);
  ::close(fds[1]);
}

TEST(SocketFraming, OversizedLengthPrefixIsDataLoss) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const uint32_t huge = kMaxFramePayloadBytes + 1;
  ASSERT_EQ(::send(fds[0], &huge, sizeof(huge), 0),
            static_cast<ssize_t>(sizeof(huge)));
  auto payload = ReceiveFramePayload(fds[1]);
  ASSERT_FALSE(payload.ok());
  EXPECT_EQ(payload.status().code(), StatusCode::kDataLoss);
  ::close(fds[0]);
  ::close(fds[1]);
}

// --------------------------------------------------------------------------
// End-to-end server.

class ServerTest : public testing::Test {
 protected:
  /// Starts a server on an ephemeral port over a fresh data dir.
  void StartServer(const std::string& dir_name, uint64_t flush_records = 8,
                   uint64_t checkpoint_blocks = 2) {
    options_.data_dir = TempPath(dir_name);
    RemoveTree(options_.data_dir);
    options_.port = 0;
    options_.num_threads = 4;
    options_.policy.flush_records = flush_records;
    options_.policy.checkpoint_blocks = checkpoint_blocks;
    server_ = std::make_unique<DemonServer>(options_);
    ASSERT_TRUE(server_->Start().ok());
  }

  Response MustCall(ClientConnection& connection, const Request& request) {
    auto response = connection.Call(request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? response.value() : Response{};
  }

  Response CreateTenant(ClientConnection& connection,
                        const std::string& name, double minsup = 0.3) {
    Request create;
    create.type = MsgType::kCreateTenant;
    create.tenant = name;
    create.num_items = 32;
    create.specs.push_back(ItemsetSpec(minsup));
    return MustCall(connection, create);
  }

  ServerOptions options_;
  std::unique_ptr<DemonServer> server_;
};

TEST_F(ServerTest, PingCreateAppendStats) {
  StartServer("server_basic");
  ClientConnection connection;
  ASSERT_TRUE(connection.Connect("127.0.0.1", server_->port()).ok());

  EXPECT_TRUE(MustCall(connection, Request{MsgType::kPing}).ok());
  EXPECT_TRUE(CreateTenant(connection, "acme").ok());

  Request append = MakeAppend("acme", 0, 20);
  Response appended = MustCall(connection, append);
  EXPECT_TRUE(appended.ok()) << appended.message;
  EXPECT_EQ(appended.records_admitted, 20u);

  Request flush;
  flush.type = MsgType::kFlushTenant;
  flush.tenant = "acme";
  Response flushed = MustCall(connection, flush);
  EXPECT_TRUE(flushed.ok()) << flushed.message;
  EXPECT_EQ(flushed.records_durable, 20u);
  EXPECT_EQ(flushed.blocks, 3u);  // 8 + 8 + 4 at flush_records=8

  Request stats;
  stats.type = MsgType::kStats;
  Response host_stats = MustCall(connection, stats);
  EXPECT_EQ(host_stats.num_tenants, 1u);
  ASSERT_TRUE(server_->Stop().ok());
}

TEST_F(ServerTest, BadTenantNamesAndGapsAreRejected) {
  StartServer("server_reject");
  ClientConnection connection;
  ASSERT_TRUE(connection.Connect("127.0.0.1", server_->port()).ok());

  EXPECT_EQ(CreateTenant(connection, "../escape").code,
            StatusCode::kInvalidArgument);
  EXPECT_EQ(CreateTenant(connection, "").code,
            StatusCode::kInvalidArgument);

  ASSERT_TRUE(CreateTenant(connection, "acme").ok());
  // A batch starting beyond the cursor is a gap: rejecting it is what
  // keeps at-least-once delivery from silently losing records.
  Response gap = MustCall(connection, MakeAppend("acme", 10, 2));
  EXPECT_EQ(gap.code, StatusCode::kInvalidArgument);
  // Appending to a tenant that does not exist.
  Response missing = MustCall(connection, MakeAppend("ghost", 0, 1));
  EXPECT_EQ(missing.code, StatusCode::kNotFound);
  ASSERT_TRUE(server_->Stop().ok());
}

TEST_F(ServerTest, CorruptFrameEarnsReplyAndConnectionSurvives) {
  StartServer("server_corrupt");
  ClientConnection connection;
  ASSERT_TRUE(connection.Connect("127.0.0.1", server_->port()).ok());
  // Reach under the client abstraction: send an intact frame whose
  // payload is garbage, by hijacking a raw socketpair-style send on the
  // client's behalf through a second raw connection.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)), 0);

  // Intact frame, garbage payload: server must reply InvalidArgument.
  const std::string garbage = "not a demon frame at all";
  const uint32_t len = static_cast<uint32_t>(garbage.size());
  std::string frame(reinterpret_cast<const char*>(&len), sizeof(len));
  frame += garbage;
  ASSERT_TRUE(SendFrame(fd, frame).ok());
  auto reply = ReceiveFramePayload(fd);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  auto decoded = DecodeResponsePayload(reply.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().code, StatusCode::kInvalidArgument);

  // Same connection still serves valid requests.
  ASSERT_TRUE(SendFrame(fd, EncodeRequestFrame(Request{})).ok());
  reply = ReceiveFramePayload(fd);
  ASSERT_TRUE(reply.ok());
  decoded = DecodeResponsePayload(reply.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().ok());

  // A version-skewed but otherwise valid request: clean rejection too.
  std::string skewed_frame = EncodeRequestFrame(Request{});
  const uint32_t future_version = kWireVersion + 1;
  std::memcpy(&skewed_frame[4 + 12], &future_version,
              sizeof(future_version));
  ASSERT_TRUE(SendFrame(fd, skewed_frame).ok());
  reply = ReceiveFramePayload(fd);
  ASSERT_TRUE(reply.ok());
  decoded = DecodeResponsePayload(reply.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().code, StatusCode::kInvalidArgument);

  ::close(fd);
  ASSERT_TRUE(server_->Stop().ok());
  EXPECT_EQ(server_->telemetry()->counter("server/requests_rejected")
                ->value(), 2u);
}

TEST_F(ServerTest, ConcurrentTenantsMatchSerialReplayByteForByte) {
  constexpr uint64_t kTenants = 6;
  constexpr uint64_t kRecords = 45;  // 5 full blocks of 8 + partial of 5
  constexpr uint64_t kSeed = 99;
  StartServer("server_identity");

  // Drive every tenant concurrently, two tenants per connection, batches
  // of 7 so block cuts never align with request boundaries.
  std::vector<std::thread> workers;
  for (uint64_t w = 0; w < 3; ++w) {
    workers.emplace_back([this, w] {
      ClientConnection connection;
      ASSERT_TRUE(connection.Connect("127.0.0.1", server_->port()).ok());
      for (uint64_t t = w; t < kTenants; t += 3) {
        const std::string name = "tenant" + std::to_string(t);
        ASSERT_TRUE(CreateTenant(connection, name).ok());
        uint64_t cursor = 0;
        while (cursor < kRecords) {
          const uint64_t n = std::min<uint64_t>(7, kRecords - cursor);
          Request append;
          append.type = MsgType::kAppendBatch;
          append.tenant = name;
          append.first_record_index = cursor;
          for (uint64_t i = 0; i < n; ++i) {
            append.transactions.push_back(MakeRecord(kSeed, t, cursor + i));
          }
          Response response = MustCall(connection, append);
          ASSERT_TRUE(response.ok()) << response.message;
          cursor = response.records_admitted;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  ClientConnection connection;
  ASSERT_TRUE(connection.Connect("127.0.0.1", server_->port()).ok());
  Response flushed = MustCall(connection, Request{MsgType::kFlushAll});
  ASSERT_TRUE(flushed.ok()) << flushed.message;
  EXPECT_EQ(flushed.records_durable, kTenants * kRecords);
  ASSERT_TRUE(server_->Stop().ok());

  // Serial replay: one local monitor per tenant, blocks cut exactly as
  // the tenant policy dictates, one final checkpoint. The server-side
  // checkpoint — written under concurrent socket traffic and background
  // flushes — must match byte for byte.
  for (uint64_t t = 0; t < kTenants; ++t) {
    DemonMonitor local(32);
    ASSERT_TRUE(local.AddMonitor(ItemsetSpec(0.3)).ok());
    uint64_t durable = 0;
    while (durable < kRecords) {
      const uint64_t n =
          std::min<uint64_t>(options_.policy.flush_records,
                             kRecords - durable);
      std::vector<Transaction> records;
      for (uint64_t i = 0; i < n; ++i) {
        records.push_back(MakeRecord(kSeed, t, durable + i));
      }
      local.AddBlock(TransactionBlock(std::move(records), durable));
      durable += n;
    }
    const std::string reference =
        TempPath("server_identity_ref" + std::to_string(t));
    ASSERT_TRUE(local.Checkpoint(reference).ok());

    const std::string name = "tenant" + std::to_string(t);
    const std::string served = options_.data_dir + "/tenants/" + name +
                               "/checkpoint.demon";
    const std::string served_bytes = ReadFileBytes(served);
    ASSERT_FALSE(served_bytes.empty());
    EXPECT_EQ(served_bytes, ReadFileBytes(reference))
        << name << " checkpoint diverged from serial replay";
  }
}

TEST_F(ServerTest, RestartRecoversCursorAndDedupsResentBatches) {
  StartServer("server_restart");
  {
    ClientConnection connection;
    ASSERT_TRUE(connection.Connect("127.0.0.1", server_->port()).ok());
    ASSERT_TRUE(CreateTenant(connection, "acme").ok());
    Response appended = MustCall(connection, MakeAppend("acme", 0, 20));
    ASSERT_TRUE(appended.ok());
    Request flush;
    flush.type = MsgType::kFlushTenant;
    flush.tenant = "acme";
    ASSERT_TRUE(MustCall(connection, flush).ok());
  }
  ASSERT_TRUE(server_->Stop().ok());

  // Same data_dir: the new incarnation recovers the tenant and its
  // cursor.
  DemonServer restarted(options_);
  ASSERT_TRUE(restarted.Start().ok());
  EXPECT_EQ(restarted.host()->NumTenants(), 1u);
  ClientConnection connection;
  ASSERT_TRUE(connection.Connect("127.0.0.1", restarted.port()).ok());

  // CreateTenant is idempotent on an existing tenant and reports the
  // resume cursor.
  Response created = CreateTenant(connection, "acme");
  ASSERT_TRUE(created.ok()) << created.message;
  EXPECT_EQ(created.records_admitted, 20u);

  // A full resend overlaps the cursor entirely: deduplicated, cursor
  // unmoved.
  Response resent = MustCall(connection, MakeAppend("acme", 0, 20));
  ASSERT_TRUE(resent.ok());
  EXPECT_EQ(resent.records_admitted, 20u);

  // A straddling batch: records 15..25 admits exactly the 5 new ones.
  Response straddle = MustCall(connection, MakeAppend("acme", 15, 10));
  ASSERT_TRUE(straddle.ok());
  EXPECT_EQ(straddle.records_admitted, 25u);
  ASSERT_TRUE(restarted.Stop().ok());
}

TEST_F(ServerTest, ShutdownRequestStopsTheServerDurably) {
  StartServer("server_shutdown");
  ClientConnection connection;
  ASSERT_TRUE(connection.Connect("127.0.0.1", server_->port()).ok());
  ASSERT_TRUE(CreateTenant(connection, "acme").ok());
  ASSERT_TRUE(MustCall(connection, MakeAppend("acme", 0, 5)).ok());
  Response stopped = MustCall(connection, Request{MsgType::kShutdown});
  EXPECT_TRUE(stopped.ok()) << stopped.message;
  server_->WaitForShutdown();  // resolves because kShutdown was served
  ASSERT_TRUE(server_->Stop().ok());
  // The staged (never explicitly flushed) records became durable.
  DemonServer restarted(options_);
  ASSERT_TRUE(restarted.Start().ok());
  auto stats = restarted.host()->TenantStatsOf("acme");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().records_durable, 5u);
  ASSERT_TRUE(restarted.Stop().ok());
}

}  // namespace
}  // namespace demon::server
