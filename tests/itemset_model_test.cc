#include "itemsets/itemset_model.h"

#include <gtest/gtest.h>

#include "itemsets/itemset.h"

namespace demon {
namespace {

TEST(ItemsetTest, SubsetAndUnionHelpers) {
  EXPECT_TRUE(IsSubset({1, 3}, {1, 2, 3}));
  EXPECT_FALSE(IsSubset({1, 4}, {1, 2, 3}));
  EXPECT_TRUE(IsSubset({}, {1}));
  EXPECT_EQ(Union({1, 3}, {2, 3}), (Itemset{1, 2, 3}));
  EXPECT_EQ(WithoutIndex({5, 7, 9}, 1), (Itemset{5, 9}));
  EXPECT_EQ(ToString({1, 5}), "{1, 5}");
  EXPECT_EQ(ToString({}), "{}");
}

TEST(ItemsetTest, HashTreatsEqualSetsEqually) {
  ItemsetHash hash;
  EXPECT_EQ(hash({1, 2, 3}), hash({1, 2, 3}));
  EXPECT_NE(hash({1, 2, 3}), hash({1, 2, 4}));
  EXPECT_NE(hash({1, 2}), hash({2, 1}));  // unsorted input is a bug upstream
}

TEST(ItemsetModelTest, MinCountCeiling) {
  ItemsetModel model(0.1, 10);
  model.set_num_transactions(0);
  EXPECT_EQ(model.MinCount(), 1u);  // empty data: nothing can be frequent
  model.set_num_transactions(10);
  EXPECT_EQ(model.MinCount(), 1u);  // 0.1 * 10 = 1 exactly
  model.set_num_transactions(11);
  EXPECT_EQ(model.MinCount(), 2u);  // ceil(1.1)
  model.set_num_transactions(19);
  EXPECT_EQ(model.MinCount(), 2u);
  model.set_num_transactions(20);
  EXPECT_EQ(model.MinCount(), 2u);
  model.set_num_transactions(21);
  EXPECT_EQ(model.MinCount(), 3u);
}

TEST(ItemsetModelTest, QueriesOnTrackedAndUntracked) {
  ItemsetModel model(0.5, 4);
  model.set_num_transactions(10);
  model.mutable_entries()->emplace(Itemset{0},
                                   ItemsetModel::Entry{8, true});
  model.mutable_entries()->emplace(Itemset{1},
                                   ItemsetModel::Entry{2, false});
  EXPECT_TRUE(model.IsFrequent({0}));
  EXPECT_FALSE(model.IsFrequent({1}));
  EXPECT_FALSE(model.IsFrequent({2}));
  EXPECT_TRUE(model.Contains({1}));
  EXPECT_FALSE(model.Contains({2}));
  EXPECT_EQ(model.CountOf({0}), 8u);
  EXPECT_EQ(model.CountOf({2}), 0u);
  EXPECT_DOUBLE_EQ(model.SupportOf({0}), 0.8);
  EXPECT_EQ(model.NumFrequent(), 1u);
  EXPECT_EQ(model.NumBorder(), 1u);
  EXPECT_EQ(model.FrequentItemsets().size(), 1u);
  EXPECT_EQ(model.NegativeBorder().size(), 1u);
}

TEST(ItemsetModelTest, Frequent2ItemsetsOrderedBySupport) {
  ItemsetModel model(0.1, 6);
  model.set_num_transactions(100);
  auto& entries = *model.mutable_entries();
  entries.emplace(Itemset{0, 1}, ItemsetModel::Entry{30, true});
  entries.emplace(Itemset{2, 3}, ItemsetModel::Entry{90, true});
  entries.emplace(Itemset{1, 4}, ItemsetModel::Entry{60, true});
  entries.emplace(Itemset{0, 5}, ItemsetModel::Entry{5, false});  // border
  entries.emplace(Itemset{0}, ItemsetModel::Entry{95, true});     // size 1
  const auto pairs = model.Frequent2ItemsetsBySupport();
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0], (std::pair<Item, Item>{2, 3}));
  EXPECT_EQ(pairs[1], (std::pair<Item, Item>{1, 4}));
  EXPECT_EQ(pairs[2], (std::pair<Item, Item>{0, 1}));
}

TEST(ItemsetModelTest, TieBreakIsDeterministic) {
  ItemsetModel model(0.1, 6);
  model.set_num_transactions(100);
  auto& entries = *model.mutable_entries();
  entries.emplace(Itemset{4, 5}, ItemsetModel::Entry{50, true});
  entries.emplace(Itemset{0, 1}, ItemsetModel::Entry{50, true});
  const auto pairs = model.Frequent2ItemsetsBySupport();
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (std::pair<Item, Item>{0, 1}));  // lexicographic tie
}

TEST(ItemsetModelTest, SupportOfOnEmptyModel) {
  ItemsetModel model(0.3, 4);
  EXPECT_DOUBLE_EQ(model.SupportOf({0}), 0.0);
}

}  // namespace
}  // namespace demon
