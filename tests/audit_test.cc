#include "common/audit.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "clustering/cf_tree.h"
#include "core/engine.h"
#include "core/maintainers.h"
#include "datagen/cluster_generator.h"
#include "datagen/quest_generator.h"
#include "itemsets/apriori.h"
#include "itemsets/borders.h"
#include "tidlist/tidlist_store.h"

namespace demon {
namespace {

using BlockPtr = std::shared_ptr<const TransactionBlock>;

// ---------------------------------------------------------------------------
// Workload helpers.

std::vector<BlockPtr> MakeQuestBlocks(size_t num_blocks, size_t block_size,
                                      size_t num_items, uint64_t seed) {
  QuestParams params;
  params.num_transactions = num_blocks * block_size;
  params.num_items = num_items;
  params.num_patterns = 30;
  params.avg_transaction_len = 6;
  params.seed = seed;
  QuestGenerator gen(params);
  std::vector<BlockPtr> blocks;
  Tid tid = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    auto block =
        std::make_shared<TransactionBlock>(gen.NextBlock(block_size, tid));
    tid += block->size();
    blocks.push_back(std::move(block));
  }
  return blocks;
}

// Installs a violation-capturing failure handler for the lifetime of one
// test, so CheckOrDie reports instead of aborting the process.
class ScopedFailureCapture {
 public:
  ScopedFailureCapture() {
    previous_ = audit::SetFailureHandlerForTest(
        [this](const std::vector<audit::Violation>& violations) {
          for (const auto& v : violations) captured_.push_back(v);
          ++invocations_;
        });
  }
  ~ScopedFailureCapture() {
    audit::SetFailureHandlerForTest(std::move(previous_));
  }

  const std::vector<audit::Violation>& captured() const { return captured_; }
  int invocations() const { return invocations_; }

 private:
  audit::FailureHandler previous_;
  std::vector<audit::Violation> captured_;
  int invocations_ = 0;
};

// ---------------------------------------------------------------------------
// Core AuditResult / macro behavior.

TEST(AuditResultTest, StartsOkAndAccumulatesViolations) {
  audit::AuditResult audit;
  EXPECT_TRUE(audit.ok());
  EXPECT_EQ(audit.ToString(), "");

  audit.Fail("tidlist", "tidlist/sorted-unique", "out of order", "[3, 1]");
  EXPECT_FALSE(audit.ok());
  ASSERT_EQ(audit.violations().size(), 1u);
  EXPECT_TRUE(audit.Has("tidlist/sorted-unique"));
  EXPECT_FALSE(audit.Has("tidlist/offset-range"));

  const std::string report = audit.ToString();
  EXPECT_NE(report.find("tidlist/sorted-unique"), std::string::npos);
  EXPECT_NE(report.find("out of order"), std::string::npos);
  EXPECT_NE(report.find("[3, 1]"), std::string::npos);
}

TEST(AuditResultTest, AuditCheckRecordsOnlyOnFailure) {
  audit::AuditResult audit;
  AUDIT_CHECK(&audit, "demo", "demo/pass", 1 + 1 == 2, "never recorded", "");
  EXPECT_TRUE(audit.ok());

  AUDIT_CHECK(&audit, "demo", "demo/fail", 1 + 1 == 3,
              audit::Msg() << "arith broke at " << 42, "state dump");
  ASSERT_FALSE(audit.ok());
  EXPECT_TRUE(audit.Has("demo/fail"));
  // The stringified condition is embedded in the message.
  EXPECT_NE(audit.violations()[0].message.find("1 + 1 == 3"),
            std::string::npos);
  EXPECT_NE(audit.violations()[0].message.find("arith broke at 42"),
            std::string::npos);
}

TEST(AuditResultTest, CheckOrDieInvokesInstalledHandler) {
  ScopedFailureCapture capture;
  audit::AuditResult ok_audit;
  ok_audit.CheckOrDie();
  EXPECT_EQ(capture.invocations(), 0);

  audit::AuditResult bad_audit;
  bad_audit.Fail("m", "m/inv", "msg");
  bad_audit.CheckOrDie();
  EXPECT_EQ(capture.invocations(), 1);
  ASSERT_EQ(capture.captured().size(), 1u);
  EXPECT_EQ(capture.captured()[0].invariant, "m/inv");
}

// ---------------------------------------------------------------------------
// TID-list corruption injection.

TEST(TidListAuditTest, CleanBlockPasses) {
  const auto blocks = MakeQuestBlocks(1, 300, 40, 7);
  PairMaterializationSpec spec;
  spec.pairs = {{0, 1}, {2, 5}};
  const auto lists = BlockTidLists::Build(*blocks[0], 40, &spec);
  audit::AuditResult audit;
  lists->AuditInto(&audit);
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

TEST(TidListAuditTest, UnsortedListIsReported) {
  const auto blocks = MakeQuestBlocks(1, 300, 40, 8);
  auto lists = std::const_pointer_cast<BlockTidLists>(
      BlockTidLists::Build(*blocks[0], 40));
  // Find a list with at least two TIDs and swap them out of order.
  for (Item item = 0; item < 40; ++item) {
    if (lists->ItemListSize(item) >= 2) {
      TidList list = lists->MaterializeItemList(item);
      std::swap(list[0], list[1]);
      lists->SetItemListForTest(item, list);
      break;
    }
  }
  audit::AuditResult audit;
  lists->AuditInto(&audit);
  EXPECT_TRUE(audit.Has("tidlist/sorted-unique")) << audit.ToString();
}

TEST(TidListAuditTest, OutOfRangeOffsetIsReported) {
  const auto blocks = MakeQuestBlocks(1, 200, 40, 9);
  auto lists = std::const_pointer_cast<BlockTidLists>(
      BlockTidLists::Build(*blocks[0], 40));
  for (Item item = 0; item < 40; ++item) {
    if (lists->ItemListSize(item) > 0) {
      TidList list = lists->MaterializeItemList(item);
      list.back() = static_cast<uint32_t>(lists->num_transactions() + 5);
      lists->SetItemListForTest(item, list);
      break;
    }
  }
  audit::AuditResult audit;
  lists->AuditInto(&audit);
  EXPECT_TRUE(audit.Has("tidlist/offset-range")) << audit.ToString();
}

TEST(TidListAuditTest, StalePairListIsReported) {
  const auto blocks = MakeQuestBlocks(1, 300, 40, 10);
  PairMaterializationSpec spec;
  spec.pairs = {{0, 1}, {1, 2}, {3, 4}};
  auto lists = std::const_pointer_cast<BlockTidLists>(
      BlockTidLists::Build(*blocks[0], 40, &spec));
  // Mutating an item list desynchronizes every materialized pair list that
  // covers the item: the pair list no longer equals the intersection.
  lists->SetItemListForTest(1, TidList{});
  audit::AuditResult audit;
  lists->AuditInto(&audit);
  EXPECT_FALSE(audit.ok());
  EXPECT_TRUE(audit.Has("tidlist/pair-is-intersection") ||
              audit.Has("tidlist/item-slots"))
      << audit.ToString();
}

// ---------------------------------------------------------------------------
// Itemset-model corruption injection.

ItemsetModel MineSmallModel(uint64_t seed) {
  const auto blocks = MakeQuestBlocks(2, 300, 40, seed);
  return Apriori({blocks.begin(), blocks.end()}, 0.05, 40);
}

TEST(ItemsetModelAuditTest, FreshlyMinedModelPasses) {
  const ItemsetModel model = MineSmallModel(11);
  ASSERT_FALSE(model.entries().empty());
  audit::AuditResult audit;
  model.AuditInto(&audit);
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

TEST(ItemsetModelAuditTest, OverflowedCountIsReported) {
  ItemsetModel model = MineSmallModel(12);
  auto& entries = *model.mutable_entries();
  ASSERT_FALSE(entries.empty());
  entries.begin()->second.count = model.num_transactions() + 100;
  audit::AuditResult audit;
  model.AuditInto(&audit);
  EXPECT_TRUE(audit.Has("borders/count-bounded")) << audit.ToString();
}

TEST(ItemsetModelAuditTest, WrongFrequentFlagIsReported) {
  ItemsetModel model = MineSmallModel(13);
  auto& entries = *model.mutable_entries();
  for (auto& [itemset, entry] : entries) {
    if (entry.frequent) {
      entry.frequent = false;  // count still >= MinCount(): inconsistent.
      break;
    }
  }
  audit::AuditResult audit;
  model.AuditInto(&audit);
  EXPECT_TRUE(audit.Has("borders/frequent-flag")) << audit.ToString();
}

TEST(ItemsetModelAuditTest, MissingSubsetBreaksClosure) {
  ItemsetModel model = MineSmallModel(14);
  auto& entries = *model.mutable_entries();
  // Remove a frequent 1-itemset that supports some tracked 2-itemset.
  Itemset victim;
  for (const auto& [itemset, entry] : entries) {
    if (itemset.size() == 2) {
      victim = {itemset[0]};
      break;
    }
  }
  ASSERT_FALSE(victim.empty()) << "workload mined no 2-itemsets";
  entries.erase(victim);
  audit::AuditResult audit;
  model.AuditInto(&audit);
  EXPECT_FALSE(audit.ok());
  EXPECT_TRUE(audit.Has("borders/closure") ||
              audit.Has("borders/negative-border") ||
              audit.Has("borders/one-layer-complete"))
      << audit.ToString();
}

// ---------------------------------------------------------------------------
// BORDERS maintainer: structural audit plus re-mine equivalence.

TEST(BordersAuditTest, MaintainerPassesStructuralAndRescratchAudit) {
  BordersOptions options;
  options.minsup = 0.05;
  options.num_items = 40;
  options.strategy = CountingStrategy::kEcutPlus;
  BordersMaintainer maintainer(options);
  for (const auto& block : MakeQuestBlocks(3, 250, 40, 15)) {
    maintainer.AddBlock(block);
  }
  audit::AuditResult audit;
  maintainer.AuditInto(&audit);
  maintainer.AuditRescratchInto(&audit);
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

// ---------------------------------------------------------------------------
// CF-tree corruption injection.

CFTreeOptions SmallTree() {
  CFTreeOptions options;
  options.branching = 4;
  options.leaf_capacity = 4;
  options.max_leaf_entries = 256;
  return options;
}

CFTree BuildTree(size_t num_points, uint64_t seed) {
  ClusterGenParams params;
  params.num_points = num_points;
  params.num_clusters = 4;
  params.dim = 2;
  params.seed = seed;
  ClusterGenerator gen(params);
  CFTree tree(2, SmallTree());
  tree.InsertBlock(gen.NextBlock(num_points));
  return tree;
}

TEST(CfTreeAuditTest, HealthyTreePasses) {
  const CFTree tree = BuildTree(500, 21);
  audit::AuditResult audit;
  tree.AuditInto(&audit);
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

TEST(CfTreeAuditTest, EmptiedLeafEntryIsReported) {
  CFTree tree = BuildTree(500, 22);
  tree.MutateLeafEntryForTest(0, [](ClusterFeature* cf) {
    *cf = ClusterFeature(2);  // N = 0 violates the non-empty-entry invariant.
  });
  audit::AuditResult audit;
  tree.AuditInto(&audit);
  EXPECT_TRUE(audit.Has("cf-tree/entry-weight")) << audit.ToString();
}

TEST(CfTreeAuditTest, StrayPointBreaksAdditivity) {
  CFTree tree = BuildTree(500, 23);
  tree.MutateLeafEntryForTest(0, [](ClusterFeature* cf) {
    const double stray[2] = {1e4, -1e4};
    cf->Add(stray, 2);  // Leaf changes but no ancestor CF was updated.
  });
  audit::AuditResult audit;
  tree.AuditInto(&audit);
  EXPECT_FALSE(audit.ok());
  // Either an internal entry no longer equals the sum of its children, or
  // (for a root-leaf tree) the cached root CF disagrees with the leaves.
  EXPECT_TRUE(audit.Has("cf-tree/child-sum") || audit.Has("cf-tree/root-cf"))
      << audit.ToString();
}

// ---------------------------------------------------------------------------
// Engine-level escalation.

TEST(EngineAuditTest, HealthyMonitorsPassBoundaryAudit) {
  ScopedFailureCapture capture;
  MaintenanceEngine engine;
  BordersOptions options;
  options.minsup = 0.05;
  options.num_items = 40;
  engine.Register("unrestricted",
                  std::make_unique<BordersAdapter>(options));
  engine.Register(
      "windowed",
      std::make_unique<GemmItemsetAdapter>(
          BlockSelectionSequence::WindowRelative({true, true, true}), 3,
          options));
  for (const auto& block : MakeQuestBlocks(4, 250, 40, 31)) {
    engine.Dispatch(AnyBlock(block));
  }
  engine.Quiesce();
  engine.AuditMonitors();
  EXPECT_EQ(capture.invocations(), 0)
      << audit::FormatViolation(capture.captured()[0]);
}

// A maintainer whose audit always fails, to exercise the escalation path.
class PoisonedMaintainer : public ModelMaintainer {
 public:
  std::string_view type_name() const override { return "poisoned"; }
  AnyBlock::Payload payload() const override {
    return AnyBlock::Payload::kTransactions;
  }
  void AddResponse(const AnyBlock& /*block*/) override {}
  void AuditInvariants(audit::AuditResult* audit) const override {
    AUDIT_FAIL(audit, "poison", "poison/always", "planted violation", "");
  }
};

TEST(EngineAuditTest, ViolationIsEscalatedWithMonitorContext) {
  ScopedFailureCapture capture;
  MaintenanceEngine engine;
  engine.Register("bad-monitor", std::make_unique<PoisonedMaintainer>());
  engine.AuditMonitors();
  ASSERT_EQ(capture.invocations(), 1);
  ASSERT_EQ(capture.captured().size(), 1u);
  const audit::Violation& v = capture.captured()[0];
  EXPECT_EQ(v.invariant, "poison/always");
  // The engine prefixes the monitor name so a multi-monitor report is
  // attributable.
  EXPECT_NE(v.module.find("bad-monitor"), std::string::npos);
}

}  // namespace
}  // namespace demon
