#include "common/timer.h"

#include <gtest/gtest.h>

#include "itemsets/support_counting.h"

namespace demon {
namespace {

// Sink that the optimizer cannot remove (avoids deprecated volatile ops).
double benchmark_guard_ = 0.0;

TEST(WallTimerTest, MeasuresElapsedTime) {
  WallTimer timer;  // lint:allow(wall-timer): exercises the timer itself
  // Burn a little CPU deterministically.
  double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink += i * 0.5;
  benchmark_guard_ = sink;
  const double elapsed = timer.ElapsedSeconds();
  EXPECT_GT(elapsed, 0.0);
  EXPECT_LT(elapsed, 10.0);
  EXPECT_NEAR(timer.ElapsedMillis(), timer.ElapsedSeconds() * 1e3,
              timer.ElapsedSeconds() * 1e3 * 0.5 + 1.0);
}

TEST(WallTimerTest, ResetRestartsTheClock) {
  WallTimer timer;  // lint:allow(wall-timer): exercises the timer itself
  double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink += i * 0.5;
  benchmark_guard_ = sink;
  const double before = timer.ElapsedSeconds();
  timer.Reset();
  EXPECT_LT(timer.ElapsedSeconds(), before + 1e-3);
}

TEST(AccumulatingTimerTest, SumsIntervals) {
  AccumulatingTimer timer;  // lint:allow(wall-timer): exercises the timer itself
  EXPECT_DOUBLE_EQ(timer.total_seconds(), 0.0);
  for (int round = 0; round < 3; ++round) {
    timer.Start();
    double sink = 0.0;
    for (int i = 0; i < 500000; ++i) sink += i;
    benchmark_guard_ = sink;
    timer.Stop();
  }
  EXPECT_GT(timer.total_seconds(), 0.0);
  const double total = timer.total_seconds();
  timer.Clear();
  EXPECT_DOUBLE_EQ(timer.total_seconds(), 0.0);
  EXPECT_GT(total, 0.0);
}

TEST(CountingStrategyTest, Names) {
  EXPECT_STREQ(CountingStrategyName(CountingStrategy::kPtScan), "PT-Scan");
  EXPECT_STREQ(CountingStrategyName(CountingStrategy::kEcut), "ECUT");
  EXPECT_STREQ(CountingStrategyName(CountingStrategy::kEcutPlus), "ECUT+");
}

}  // namespace
}  // namespace demon
