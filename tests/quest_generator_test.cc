#include "datagen/quest_generator.h"

#include <gtest/gtest.h>

#include "datagen/cluster_generator.h"
#include "datagen/trace_generator.h"

namespace demon {
namespace {

TEST(QuestParamsTest, PaperStyleName) {
  QuestParams params;
  params.num_transactions = 2000000;
  params.avg_transaction_len = 20;
  params.num_items = 1000;
  params.num_patterns = 4000;
  params.avg_pattern_len = 4;
  EXPECT_EQ(params.ToString(), "2M.20L.1I.4pats.4plen");
  params.num_transactions = 400000;
  EXPECT_EQ(params.ToString(), "400K.20L.1I.4pats.4plen");
}

TEST(QuestGeneratorTest, Deterministic) {
  QuestParams params;
  params.num_transactions = 100;
  params.seed = 99;
  QuestGenerator a(params);
  QuestGenerator b(params);
  const TransactionBlock block_a = a.GenerateAll();
  const TransactionBlock block_b = b.GenerateAll();
  ASSERT_EQ(block_a.size(), block_b.size());
  for (size_t i = 0; i < block_a.size(); ++i) {
    EXPECT_EQ(block_a.transactions()[i], block_b.transactions()[i]);
  }
}

TEST(QuestGeneratorTest, RespectsItemUniverse) {
  QuestParams params;
  params.num_transactions = 2000;
  params.num_items = 50;
  params.num_patterns = 20;
  QuestGenerator gen(params);
  const TransactionBlock block = gen.GenerateAll();
  for (const Transaction& t : block.transactions()) {
    EXPECT_FALSE(t.empty());
    for (Item item : t.items()) EXPECT_LT(item, params.num_items);
  }
}

TEST(QuestGeneratorTest, AverageTransactionLengthNearTarget) {
  QuestParams params;
  params.num_transactions = 20000;
  params.avg_transaction_len = 10.0;
  params.num_items = 500;
  params.num_patterns = 100;
  params.avg_pattern_len = 4.0;
  QuestGenerator gen(params);
  const TransactionBlock block = gen.GenerateAll();
  const double avg = static_cast<double>(block.TotalItemOccurrences()) /
                     static_cast<double>(block.size());
  // Dedup within transactions and carry-over allow some slack.
  EXPECT_GT(avg, 6.0);
  EXPECT_LT(avg, 13.0);
}

TEST(QuestGeneratorTest, PatternsHaveRequestedShape) {
  QuestParams params;
  params.num_patterns = 1000;
  params.avg_pattern_len = 4.0;
  params.num_items = 1000;
  QuestGenerator gen(params);
  ASSERT_EQ(gen.patterns().size(), 1000u);
  double total_len = 0;
  for (const auto& pattern : gen.patterns()) {
    ASSERT_FALSE(pattern.empty());
    for (size_t i = 1; i < pattern.size(); ++i) {
      EXPECT_LT(pattern[i - 1], pattern[i]) << "patterns must be sorted";
    }
    total_len += static_cast<double>(pattern.size());
  }
  EXPECT_NEAR(total_len / 1000.0, 4.0, 0.5);
}

TEST(QuestGeneratorTest, BlocksAreContiguousInTids) {
  QuestParams params;
  params.num_transactions = 100;
  QuestGenerator gen(params);
  const TransactionBlock b1 = gen.NextBlock(40, 0);
  const TransactionBlock b2 = gen.NextBlock(60, b1.size());
  EXPECT_EQ(b1.size(), 40u);
  EXPECT_EQ(b2.first_tid(), 40u);
}

TEST(QuestGeneratorTest, SkewedItemFrequencies) {
  // Pattern-based generation should make some items far more frequent
  // than uniform sampling would.
  QuestParams params;
  params.num_transactions = 10000;
  params.num_items = 1000;
  params.num_patterns = 50;
  QuestGenerator gen(params);
  const TransactionBlock block = gen.GenerateAll();
  std::vector<size_t> counts(params.num_items, 0);
  for (const Transaction& t : block.transactions()) {
    for (Item item : t.items()) ++counts[item];
  }
  std::sort(counts.rbegin(), counts.rend());
  // Top item should be several times the median item.
  EXPECT_GT(counts[0], 4 * std::max<size_t>(counts[counts.size() / 2], 1));
}

TEST(ClusterGenParamsTest, PaperStyleName) {
  ClusterGenParams params;
  params.num_points = 1000000;
  params.num_clusters = 50;
  params.dim = 5;
  EXPECT_EQ(params.ToString(), "1M.50c.5d");
}

TEST(ClusterGeneratorTest, PointsNearTheirCenters) {
  ClusterGenParams params;
  params.num_points = 5000;
  params.num_clusters = 4;
  params.dim = 3;
  params.max_sigma = 1.0;
  params.noise_fraction = 0.0;
  ClusterGenerator gen(params);
  const PointBlock block = gen.GenerateAll();
  ASSERT_EQ(block.size(), 5000u);
  const auto& labels = gen.true_labels();
  ASSERT_EQ(labels.size(), 5000u);
  for (size_t i = 0; i < block.size(); ++i) {
    ASSERT_GE(labels[i], 0);
    const Point& center = gen.centers()[labels[i]];
    const double d2 =
        SquaredDistance(block.PointAt(i), center.data(), params.dim);
    // Within 6 sigma in 3-d is essentially certain.
    EXPECT_LT(d2, 36.0 * 3.0);
  }
}

TEST(ClusterGeneratorTest, NoiseFractionRoughlyHonored) {
  ClusterGenParams params;
  params.num_points = 20000;
  params.num_clusters = 3;
  params.noise_fraction = 0.1;
  ClusterGenerator gen(params);
  gen.GenerateAll();
  size_t noise = 0;
  for (int label : gen.true_labels()) noise += (label < 0) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(noise) / 20000.0, 0.1, 0.02);
}

TEST(TraceGeneratorTest, RegimeSchedule) {
  using R = TraceGenerator::Regime;
  // Labor day Monday 9-2 is weekend-like.
  EXPECT_EQ(TraceGenerator::RegimeAt(10), R::kWeekend);
  // Tue 9-3 10AM is working-day.
  EXPECT_EQ(TraceGenerator::RegimeAt(24 + 10), R::kWorkdayDay);
  // Tue 9-3 1PM is the noon mix.
  EXPECT_EQ(TraceGenerator::RegimeAt(24 + 13), R::kWorkdayNoon);
  // Tue 9-3 5PM is the Tue/Thu evening mix.
  EXPECT_EQ(TraceGenerator::RegimeAt(24 + 17), R::kEveningTueThu);
  // Wed 9-4 5PM is the other-evening mix.
  EXPECT_EQ(TraceGenerator::RegimeAt(2 * 24 + 17), R::kEveningOther);
  // Wed 9-4 3AM is night.
  EXPECT_EQ(TraceGenerator::RegimeAt(2 * 24 + 3), R::kNight);
  // Sat 9-7 noon is weekend.
  EXPECT_EQ(TraceGenerator::RegimeAt(5 * 24 + 12), R::kWeekend);
  // Mon 9-9 is the anomaly, all day.
  EXPECT_EQ(TraceGenerator::RegimeAt(7 * 24 + 12), R::kAnomaly);
  EXPECT_EQ(TraceGenerator::RegimeAt(7 * 24 + 2), R::kAnomaly);
}

TEST(TraceGeneratorTest, GeneratesSortedTimestampsInRange) {
  TraceGenerator::Params params;
  params.rate_scale = 0.02;
  TraceGenerator gen(params);
  const auto trace = gen.Generate();
  ASSERT_FALSE(trace.empty());
  int64_t prev = 0;
  for (const TraceRequest& r : trace) {
    EXPECT_GE(r.timestamp, prev);
    prev = r.timestamp;
    EXPECT_GE(r.timestamp, TraceGenerator::kTraceStartHour * 3600);
    EXPECT_LT(r.timestamp, TraceGenerator::kTraceEndHour * 3600);
    EXPECT_LT(r.object_type, TraceGenerator::kNumObjectTypes);
    EXPECT_LT(r.size_bucket, TraceGenerator::kNumSizeBuckets);
  }
}

TEST(TraceGeneratorTest, SegmentationProducesEightyTwoSixHourBlocks) {
  TraceGenerator::Params params;
  params.rate_scale = 0.02;
  TraceGenerator gen(params);
  const auto trace = gen.Generate();
  const auto blocks = SegmentTrace(trace, 6, 12);
  // Noon 9-2 to midnight 9-22: 82 six-hour periods (paper Fig 10).
  EXPECT_EQ(blocks.size(), 82u);
  size_t total = 0;
  for (const auto& block : blocks) total += block.size();
  size_t in_range = 0;
  for (const auto& r : trace) in_range += (r.timestamp >= 12 * 3600) ? 1 : 0;
  EXPECT_EQ(total, in_range);
  // Labels look like "Mon 09-02 12:00-18:00".
  EXPECT_EQ(blocks[0].info().label, "Mon 09-02 12:00-18:00");
}

TEST(TraceGeneratorTest, TransactionsEncodeTypeAndBucket) {
  TraceGenerator::Params params;
  params.rate_scale = 0.01;
  TraceGenerator gen(params);
  const auto trace = gen.Generate();
  const auto blocks = SegmentTrace(trace, 24, 12);
  for (const auto& block : blocks) {
    for (const Transaction& t : block.transactions()) {
      ASSERT_EQ(t.size(), 2u);
      EXPECT_LT(t.items()[0], TraceGenerator::kNumObjectTypes);
      EXPECT_GE(t.items()[1], TraceGenerator::kNumObjectTypes);
    }
  }
}

}  // namespace
}  // namespace demon
