#include "itemsets/prefix_tree.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/quest_generator.h"

namespace demon {
namespace {

TEST(PrefixTreeTest, SingleItemsetCounting) {
  PrefixTree tree;
  const size_t id = tree.Insert({1, 3});
  tree.CountTransaction(Transaction({1, 2, 3}));
  tree.CountTransaction(Transaction({1, 2}));
  tree.CountTransaction(Transaction({3}));
  tree.CountTransaction(Transaction({1, 3}));
  EXPECT_EQ(tree.CountOf(id), 2u);
}

TEST(PrefixTreeTest, ReinsertReturnsSameId) {
  PrefixTree tree;
  const size_t a = tree.Insert({5, 9});
  const size_t b = tree.Insert({5, 9});
  EXPECT_EQ(a, b);
  EXPECT_EQ(tree.NumItemsets(), 1u);
}

TEST(PrefixTreeTest, MixedSizesAndSharedPrefixes) {
  PrefixTree tree;
  const size_t id1 = tree.Insert({1});
  const size_t id12 = tree.Insert({1, 2});
  const size_t id123 = tree.Insert({1, 2, 3});
  const size_t id13 = tree.Insert({1, 3});
  tree.CountTransaction(Transaction({1, 2, 3}));
  EXPECT_EQ(tree.CountOf(id1), 1u);
  EXPECT_EQ(tree.CountOf(id12), 1u);
  EXPECT_EQ(tree.CountOf(id123), 1u);
  EXPECT_EQ(tree.CountOf(id13), 1u);
  tree.CountTransaction(Transaction({1, 3, 7}));
  EXPECT_EQ(tree.CountOf(id1), 2u);
  EXPECT_EQ(tree.CountOf(id12), 1u);
  EXPECT_EQ(tree.CountOf(id13), 2u);
}

TEST(PrefixTreeTest, WeightedCounting) {
  PrefixTree tree;
  const size_t id = tree.Insert({2});
  tree.CountTransaction(Transaction({2, 4}), 5);
  EXPECT_EQ(tree.CountOf(id), 5u);
}

TEST(PrefixTreeTest, ResetCounts) {
  PrefixTree tree;
  const size_t id = tree.Insert({1, 2});
  tree.CountTransaction(Transaction({1, 2}));
  EXPECT_EQ(tree.CountOf(id), 1u);
  tree.ResetCounts();
  EXPECT_EQ(tree.CountOf(id), 0u);
}

TEST(PrefixTreeTest, EmptyTransactionCountsNothing) {
  PrefixTree tree;
  const size_t id = tree.Insert({1});
  tree.CountTransaction(Transaction({}));
  EXPECT_EQ(tree.CountOf(id), 0u);
}

// Property check: counts from the tree match brute-force subset tests on
// random itemsets over realistic Quest data.
TEST(PrefixTreeTest, RandomizedAgainstBruteForce) {
  QuestParams params;
  params.num_transactions = 2000;
  params.num_items = 80;
  params.num_patterns = 40;
  params.avg_transaction_len = 8;
  QuestGenerator gen(params);
  const TransactionBlock block = gen.GenerateAll();

  Rng rng(7);
  std::vector<Itemset> itemsets;
  for (int i = 0; i < 200; ++i) {
    Itemset itemset;
    const size_t size = 1 + rng.NextUint64(4);
    while (itemset.size() < size) {
      const Item item = static_cast<Item>(rng.NextUint64(params.num_items));
      if (!std::binary_search(itemset.begin(), itemset.end(), item)) {
        itemset.insert(
            std::lower_bound(itemset.begin(), itemset.end(), item), item);
      }
    }
    itemsets.push_back(std::move(itemset));
  }

  PrefixTree tree;
  std::vector<size_t> ids;
  for (const Itemset& itemset : itemsets) ids.push_back(tree.Insert(itemset));
  for (const Transaction& t : block.transactions()) tree.CountTransaction(t);

  for (size_t s = 0; s < itemsets.size(); ++s) {
    uint64_t expected = 0;
    for (const Transaction& t : block.transactions()) {
      expected += t.ContainsAll(itemsets[s].begin(), itemsets[s].end()) ? 1 : 0;
    }
    ASSERT_EQ(tree.CountOf(ids[s]), expected) << ToString(itemsets[s]);
  }
}

}  // namespace
}  // namespace demon
