#include "itemsets/prefix_tree.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/quest_generator.h"

namespace demon {
namespace {

TEST(PrefixTreeTest, SingleItemsetCounting) {
  PrefixTree tree;
  const size_t id = tree.Insert({1, 3});
  tree.CountTransaction(Transaction({1, 2, 3}));
  tree.CountTransaction(Transaction({1, 2}));
  tree.CountTransaction(Transaction({3}));
  tree.CountTransaction(Transaction({1, 3}));
  EXPECT_EQ(tree.CountOf(id), 2u);
}

TEST(PrefixTreeTest, ReinsertReturnsSameId) {
  PrefixTree tree;
  const size_t a = tree.Insert({5, 9});
  const size_t b = tree.Insert({5, 9});
  EXPECT_EQ(a, b);
  EXPECT_EQ(tree.NumItemsets(), 1u);
}

TEST(PrefixTreeTest, MixedSizesAndSharedPrefixes) {
  PrefixTree tree;
  const size_t id1 = tree.Insert({1});
  const size_t id12 = tree.Insert({1, 2});
  const size_t id123 = tree.Insert({1, 2, 3});
  const size_t id13 = tree.Insert({1, 3});
  tree.CountTransaction(Transaction({1, 2, 3}));
  EXPECT_EQ(tree.CountOf(id1), 1u);
  EXPECT_EQ(tree.CountOf(id12), 1u);
  EXPECT_EQ(tree.CountOf(id123), 1u);
  EXPECT_EQ(tree.CountOf(id13), 1u);
  tree.CountTransaction(Transaction({1, 3, 7}));
  EXPECT_EQ(tree.CountOf(id1), 2u);
  EXPECT_EQ(tree.CountOf(id12), 1u);
  EXPECT_EQ(tree.CountOf(id13), 2u);
}

TEST(PrefixTreeTest, WeightedCounting) {
  PrefixTree tree;
  const size_t id = tree.Insert({2});
  tree.CountTransaction(Transaction({2, 4}), 5);
  EXPECT_EQ(tree.CountOf(id), 5u);
}

TEST(PrefixTreeTest, ResetCounts) {
  PrefixTree tree;
  const size_t id = tree.Insert({1, 2});
  tree.CountTransaction(Transaction({1, 2}));
  EXPECT_EQ(tree.CountOf(id), 1u);
  tree.ResetCounts();
  EXPECT_EQ(tree.CountOf(id), 0u);
}

TEST(PrefixTreeTest, EmptyTransactionCountsNothing) {
  PrefixTree tree;
  const size_t id = tree.Insert({1});
  tree.CountTransaction(Transaction({}));
  EXPECT_EQ(tree.CountOf(id), 0u);
}

// Property check: counts from the tree match brute-force subset tests on
// random itemsets over realistic Quest data.
TEST(PrefixTreeTest, RandomizedAgainstBruteForce) {
  QuestParams params;
  params.num_transactions = 2000;
  params.num_items = 80;
  params.num_patterns = 40;
  params.avg_transaction_len = 8;
  QuestGenerator gen(params);
  const TransactionBlock block = gen.GenerateAll();

  Rng rng(7);
  std::vector<Itemset> itemsets;
  for (int i = 0; i < 200; ++i) {
    Itemset itemset;
    const size_t size = 1 + rng.NextUint64(4);
    while (itemset.size() < size) {
      const Item item = static_cast<Item>(rng.NextUint64(params.num_items));
      if (!std::binary_search(itemset.begin(), itemset.end(), item)) {
        itemset.insert(
            std::lower_bound(itemset.begin(), itemset.end(), item), item);
      }
    }
    itemsets.push_back(std::move(itemset));
  }

  PrefixTree tree;
  std::vector<size_t> ids;
  for (const Itemset& itemset : itemsets) ids.push_back(tree.Insert(itemset));
  for (const Transaction& t : block.transactions()) tree.CountTransaction(t);

  for (size_t s = 0; s < itemsets.size(); ++s) {
    uint64_t expected = 0;
    for (const Transaction& t : block.transactions()) {
      expected += t.ContainsAll(itemsets[s].begin(), itemsets[s].end()) ? 1 : 0;
    }
    ASSERT_EQ(tree.CountOf(ids[s]), expected) << ToString(itemsets[s]);
  }
}

TEST(FlatPrefixTreeTest, EmptyTreeCountsNothing) {
  PrefixTree tree;
  FlatPrefixTree flat;
  flat.BuildFrom(tree);
  EXPECT_EQ(flat.NumItemsets(), 0u);
  flat.CountTransaction(Transaction({1, 2, 3}));
}

TEST(FlatPrefixTreeTest, MatchesPointerTreeCounts) {
  PrefixTree tree;
  const size_t a = tree.Insert({1, 3});
  const size_t b = tree.Insert({1});
  const size_t c = tree.Insert({2, 3, 5});
  const size_t d = tree.Insert({5});
  FlatPrefixTree flat;
  flat.BuildFrom(tree);
  ASSERT_EQ(flat.NumItemsets(), tree.NumItemsets());

  const std::vector<Transaction> transactions = {
      Transaction({1, 2, 3}), Transaction({1, 2}),   Transaction({3}),
      Transaction({1, 3}),    Transaction({2, 3, 5}), Transaction({}),
      Transaction({5}),       Transaction({1, 2, 3, 4, 5})};
  for (const Transaction& t : transactions) {
    tree.CountTransaction(t);
    flat.CountTransaction(t);
  }
  for (const size_t id : {a, b, c, d}) {
    EXPECT_EQ(flat.CountOf(id), tree.CountOf(id)) << "id " << id;
  }
}

TEST(FlatPrefixTreeTest, WeightsAndResetMatchPointerTree) {
  PrefixTree tree;
  const size_t id = tree.Insert({2, 4});
  FlatPrefixTree flat;
  flat.BuildFrom(tree);
  tree.CountTransaction(Transaction({2, 3, 4}), 5);
  flat.CountTransaction(Transaction({2, 3, 4}), 5);
  EXPECT_EQ(flat.CountOf(id), tree.CountOf(id));
  EXPECT_EQ(flat.CountOf(id), 5u);
  flat.ResetCounts();
  EXPECT_EQ(flat.CountOf(id), 0u);
}

// Build-from is repeatable on a reused FlatPrefixTree and always starts
// from zeroed counts — the per-shard reuse pattern of CountingContext.
TEST(FlatPrefixTreeTest, RebuildResetsStateAndTracksNewTree) {
  PrefixTree first;
  const size_t fa = first.Insert({1, 2});
  FlatPrefixTree flat;
  flat.BuildFrom(first);
  flat.CountTransaction(Transaction({1, 2}));
  EXPECT_EQ(flat.CountOf(fa), 1u);

  PrefixTree second;
  const size_t sa = second.Insert({7});
  const size_t sb = second.Insert({7, 9});
  flat.BuildFrom(second);
  ASSERT_EQ(flat.NumItemsets(), 2u);
  EXPECT_EQ(flat.CountOf(sa), 0u);
  flat.CountTransaction(Transaction({7, 8, 9}));
  EXPECT_EQ(flat.CountOf(sa), 1u);
  EXPECT_EQ(flat.CountOf(sb), 1u);
}

// Differential fuzz: the flat walk must agree with the pointer walk on
// every itemset for a generated workload (bit-identical counts are the
// PT-Scan correctness invariant).
TEST(FlatPrefixTreeTest, RandomizedMatchesPointerTree) {
  QuestParams params;
  params.num_transactions = 1500;
  params.num_items = 60;
  params.num_patterns = 30;
  params.avg_transaction_len = 10;
  QuestGenerator gen(params);
  const TransactionBlock block = gen.GenerateAll();

  Rng rng(13);
  PrefixTree tree;
  std::vector<size_t> ids;
  for (int i = 0; i < 300; ++i) {
    Itemset itemset;
    const size_t size = 1 + rng.NextUint64(5);
    while (itemset.size() < size) {
      const Item item = static_cast<Item>(rng.NextUint64(params.num_items));
      if (!std::binary_search(itemset.begin(), itemset.end(), item)) {
        itemset.insert(
            std::lower_bound(itemset.begin(), itemset.end(), item), item);
      }
    }
    ids.push_back(tree.Insert(itemset));
  }
  FlatPrefixTree flat;
  flat.BuildFrom(tree);
  for (const Transaction& t : block.transactions()) {
    tree.CountTransaction(t);
    flat.CountTransaction(t);
  }
  for (const size_t id : ids) {
    ASSERT_EQ(flat.CountOf(id), tree.CountOf(id)) << "id " << id;
  }
}

}  // namespace
}  // namespace demon
