#include "data/transaction_file.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "persistence/file_header.h"

namespace demon {
namespace {

TransactionBlock SampleBlock() {
  std::vector<Transaction> transactions;
  transactions.emplace_back(std::vector<Item>{1, 5, 9});
  transactions.emplace_back(std::vector<Item>{});
  transactions.emplace_back(std::vector<Item>{2});
  transactions.emplace_back(std::vector<Item>{0, 3, 4, 7});
  return TransactionBlock(std::move(transactions), /*first_tid=*/100);
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

long FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size;
}

TEST(TransactionFileTest, RoundTripPreservesTransactions) {
  const TransactionBlock block = SampleBlock();
  const std::string path = TempPath("tx_roundtrip.bin");
  ASSERT_TRUE(TransactionFile::Write(block, path).ok());

  auto reread = TransactionFile::Read(path, /*first_tid=*/100);
  ASSERT_TRUE(reread.ok()) << reread.status();
  const TransactionBlock& loaded = reread.value();
  ASSERT_EQ(loaded.size(), block.size());
  for (size_t i = 0; i < block.size(); ++i) {
    EXPECT_EQ(loaded.transactions()[i].items(),
              block.transactions()[i].items());
  }
  std::remove(path.c_str());
}

TEST(TransactionFileTest, MissingFileIsIoError) {
  auto result = TransactionFile::Read("/nonexistent/dir/tx.bin");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(TransactionFileTest, BadMagicIsRejected) {
  const std::string path = TempPath("tx_bad_magic.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[32] = "definitely not a block";
  ASSERT_EQ(std::fwrite(junk, 1, sizeof(junk), f), sizeof(junk));
  std::fclose(f);

  auto result = TransactionFile::Read(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(TransactionFileTest, TruncatedHeaderIsRejected) {
  const std::string path = TempPath("tx_short_header.bin");
  const TransactionBlock block = SampleBlock();
  ASSERT_TRUE(TransactionFile::Write(block, path).ok());
  // Keep only the magic: the rest of the file header is gone.
  ASSERT_EQ(truncate(path.c_str(), sizeof(uint64_t)), 0);

  auto result = TransactionFile::Read(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(TransactionFileTest, WrongFormatIdIsRejected) {
  // A valid DEMON file of a different format must be refused up front, not
  // misparsed: a serialized itemset-model header is not a transaction file.
  const std::string path = TempPath("tx_wrong_format.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  persistence::FileHeader header;
  header.format_id =
      static_cast<uint32_t>(persistence::FormatId::kItemsetModel);
  header.version = 1;
  ASSERT_TRUE(header.WriteTo(f).ok());
  std::fclose(f);

  auto result = TransactionFile::Read(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(TransactionFileTest, FutureVersionIsRejected) {
  const std::string path = TempPath("tx_future_version.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  persistence::FileHeader header;
  header.format_id =
      static_cast<uint32_t>(persistence::FormatId::kTransactionFile);
  header.version = 999;
  ASSERT_TRUE(header.WriteTo(f).ok());
  std::fclose(f);

  auto result = TransactionFile::Read(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(TransactionFileTest, TruncatedPayloadIsDataLoss) {
  const std::string path = TempPath("tx_truncated.bin");
  const TransactionBlock block = SampleBlock();
  ASSERT_TRUE(TransactionFile::Write(block, path).ok());
  const long full = FileSize(path);
  // Chop the tail off the last transaction: the declared count still says
  // four transactions, so the scan must fail with a short read.
  ASSERT_EQ(truncate(path.c_str(), full - static_cast<long>(sizeof(Item))),
            0);

  auto result = TransactionFile::Read(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(TransactionFileTest, ScannerReportsCountAndBytes) {
  const TransactionBlock block = SampleBlock();
  const std::string path = TempPath("tx_scan.bin");
  ASSERT_TRUE(TransactionFile::Write(block, path).ok());

  auto scanner = TransactionFileScanner::Open(path);
  ASSERT_TRUE(scanner.ok()) << scanner.status();
  size_t visited = 0;
  ASSERT_TRUE(
      scanner.value()->Scan([&visited](const Transaction&) { ++visited; })
          .ok());
  EXPECT_EQ(visited, block.size());
  EXPECT_EQ(scanner.value()->num_transactions(), block.size());
  EXPECT_GT(scanner.value()->bytes_read(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace demon
