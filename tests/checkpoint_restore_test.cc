// Restore-equivalence tests — the durability acceptance criterion: for
// every monitor kind, checkpoint at block k, restore into a fresh process
// image, feed blocks k+1..n into both the original and the restored
// monitor, and the maintained models must match entry-for-entry. A WAL
// variant crashes "for real" (the post-checkpoint arrivals exist only in
// the log) and must converge bit-identically after replay.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/demon_monitor.h"
#include "datagen/cluster_generator.h"
#include "datagen/labeled_generator.h"
#include "datagen/quest_generator.h"
#include "persistence/file_header.h"

namespace demon {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// Workload helpers (same generators and parameters as engine_test.cc).

std::vector<TransactionBlock> MakeTxBlocks(size_t num_blocks,
                                           size_t block_size,
                                           size_t num_items, uint64_t seed) {
  QuestParams params;
  params.num_transactions = num_blocks * block_size;
  params.num_items = num_items;
  params.num_patterns = 30;
  params.avg_transaction_len = 6;
  params.seed = seed;
  QuestGenerator gen(params);
  std::vector<TransactionBlock> blocks;
  Tid tid = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    blocks.push_back(gen.NextBlock(block_size, tid));
    tid += block_size;
  }
  return blocks;
}

std::vector<PointBlock> MakePointBlocks(size_t num_blocks, size_t block_size,
                                        size_t dim, uint64_t seed) {
  ClusterGenParams params;
  params.num_points = num_blocks * block_size;
  params.num_clusters = 5;
  params.dim = dim;
  params.seed = seed;
  ClusterGenerator gen(params);
  std::vector<PointBlock> blocks;
  for (size_t b = 0; b < num_blocks; ++b) {
    blocks.push_back(gen.NextBlock(block_size));
  }
  return blocks;
}

LabeledSchema TestSchema() {
  LabeledSchema schema;
  schema.attribute_cardinalities = {3, 2, 4, 2};
  schema.num_classes = 2;
  return schema;
}

std::vector<LabeledBlock> MakeLabeledBlocks(size_t num_blocks,
                                            size_t block_size,
                                            uint64_t seed) {
  LabeledGenerator::Params params;
  params.schema = TestSchema();
  params.concept_depth = 3;
  params.seed = seed;
  LabeledGenerator gen(params);
  std::vector<LabeledBlock> blocks;
  for (size_t b = 0; b < num_blocks; ++b) {
    blocks.push_back(gen.NextBlock(block_size));
  }
  return blocks;
}

void ExpectItemsetModelsEqual(const ItemsetModel& a, const ItemsetModel& b) {
  EXPECT_EQ(a.num_transactions(), b.num_transactions());
  ASSERT_EQ(a.entries().size(), b.entries().size());
  for (const auto& [itemset, entry] : b.entries()) {
    const auto it = a.entries().find(itemset);
    ASSERT_NE(it, a.entries().end()) << ToString(itemset);
    EXPECT_EQ(it->second.count, entry.count) << ToString(itemset);
    EXPECT_EQ(it->second.frequent, entry.frequent) << ToString(itemset);
  }
}

void ExpectClusterModelsEqual(const ClusterModel& a, const ClusterModel& b) {
  ASSERT_EQ(a.NumClusters(), b.NumClusters());
  for (size_t c = 0; c < a.NumClusters(); ++c) {
    EXPECT_EQ(a.clusters()[c], b.clusters()[c]);
  }
}

/// Asserts every monitor of `a` and `b` holds an identical model, by kind.
void ExpectMonitorsEqual(const DemonMonitor& a, const DemonMonitor& b) {
  ASSERT_EQ(a.NumMonitors(), b.NumMonitors());
  for (size_t id = 0; id < a.NumMonitors(); ++id) {
    const MonitorSpec& spec = *a.SpecOf(id).value();
    SCOPED_TRACE(spec.name);
    switch (spec.kind) {
      case MonitorKind::kUnrestrictedItemsets:
      case MonitorKind::kWindowedItemsets:
        ExpectItemsetModelsEqual(*a.ItemsetModelOf(id).value(),
                                 *b.ItemsetModelOf(id).value());
        break;
      case MonitorKind::kUnrestrictedClusters:
      case MonitorKind::kWindowedClusters:
        ExpectClusterModelsEqual(*a.ClusterModelOf(id).value(),
                                 *b.ClusterModelOf(id).value());
        break;
      case MonitorKind::kClassifier:
        EXPECT_EQ(a.ClassifierOf(id).value()->ToString(),
                  b.ClassifierOf(id).value()->ToString());
        break;
      case MonitorKind::kPatterns:
        EXPECT_EQ(a.PatternsOf(id).value()->sequences(),
                  b.PatternsOf(id).value()->sequences());
        break;
    }
  }
}

/// The full Figure 11 fleet: every monitor kind, every counting strategy,
/// and both BSS families.
void RegisterFleet(DemonMonitor& demon, size_t dim) {
  BirchOptions birch;
  birch.num_clusters = 5;
  birch.phase2 = Phase2Algorithm::kAgglomerative;
  birch.tree.max_leaf_entries = 128;
  DTreeOptions dtree;
  dtree.min_split_weight = 50.0;

  ASSERT_TRUE(demon
                  .AddMonitor({.kind = MonitorKind::kUnrestrictedItemsets,
                               .name = "uw-ecut",
                               .bss = BlockSelectionSequence::Periodic(2, 0),
                               .minsup = 0.05})
                  .ok());
  ASSERT_TRUE(demon
                  .AddMonitor({.kind = MonitorKind::kUnrestrictedItemsets,
                               .name = "uw-ecut-plus",
                               .minsup = 0.05,
                               .strategy = CountingStrategy::kEcutPlus})
                  .ok());
  ASSERT_TRUE(demon
                  .AddMonitor({.kind = MonitorKind::kUnrestrictedItemsets,
                               .name = "uw-ptscan",
                               .minsup = 0.05,
                               .strategy = CountingStrategy::kPtScan})
                  .ok());
  ASSERT_TRUE(demon
                  .AddMonitor({.kind = MonitorKind::kWindowedItemsets,
                               .name = "mrw-itemsets",
                               .bss = BlockSelectionSequence::WindowRelative(
                                   {true, false, true}),
                               .window = 3,
                               .minsup = 0.05})
                  .ok());
  ASSERT_TRUE(demon
                  .AddMonitor({.kind = MonitorKind::kWindowedItemsets,
                               .name = "mrw-all",
                               .window = 2,
                               .minsup = 0.05,
                               .strategy = CountingStrategy::kPtScan})
                  .ok());
  ASSERT_TRUE(demon
                  .AddMonitor({.kind = MonitorKind::kUnrestrictedClusters,
                               .name = "uw-clusters",
                               .dim = dim,
                               .birch = birch})
                  .ok());
  ASSERT_TRUE(demon
                  .AddMonitor({.kind = MonitorKind::kWindowedClusters,
                               .name = "mrw-clusters",
                               .window = 2,
                               .dim = dim,
                               .birch = birch})
                  .ok());
  ASSERT_TRUE(demon
                  .AddMonitor({.kind = MonitorKind::kClassifier,
                               .name = "classifier",
                               .schema = TestSchema(),
                               .dtree = dtree})
                  .ok());
  ASSERT_TRUE(demon
                  .AddMonitor({.kind = MonitorKind::kPatterns,
                               .name = "patterns",
                               .minsup = 0.05,
                               .alpha = 0.95})
                  .ok());
}

struct Workload {
  std::vector<TransactionBlock> tx;
  std::vector<PointBlock> points;
  std::vector<LabeledBlock> labeled;
  size_t num_items = 30;
  size_t dim = 3;
};

Workload MakeWorkload() {
  Workload w;
  w.tx = MakeTxBlocks(6, 150, w.num_items, 91);
  w.points = MakePointBlocks(6, 200, w.dim, 92);
  w.labeled = MakeLabeledBlocks(6, 150, 93);
  return w;
}

/// Feeds rounds [from, to) of the interleaved workload.
void Feed(DemonMonitor& demon, const Workload& w, size_t from, size_t to) {
  for (size_t i = from; i < to; ++i) {
    demon.AddBlock(w.tx[i]);
    demon.AddPointBlock(w.points[i]);
    demon.AddLabeledBlock(w.labeled[i]);
  }
}

// ---------------------------------------------------------------------------
// The core criterion, exercised over all monitor kinds at once and under
// several engine configurations: sequential, parallel, and parallel with
// GEMM's offline updates deferred (so the checkpoint's Quiesce has real
// pending work to drain).

void RunRestoreEquivalence(const EngineOptions& options) {
  const Workload w = MakeWorkload();
  const size_t k = 3;
  const std::string ckpt = TempPath("restore_equiv.ckpt");

  DemonMonitor original(w.num_items, options);
  RegisterFleet(original, w.dim);
  Feed(original, w, 0, k);
  ASSERT_TRUE(original.Checkpoint(ckpt).ok());

  auto restored = DemonMonitor::Restore(ckpt, options);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value()->num_items(), w.num_items);
  EXPECT_EQ(restored.value()->snapshot().latest_id(), k);
  EXPECT_EQ(restored.value()->point_snapshot().latest_id(), k);
  EXPECT_EQ(restored.value()->labeled_snapshot().latest_id(), k);

  // Models must already agree at the checkpoint...
  original.Quiesce();
  ExpectMonitorsEqual(original, *restored.value());

  // ...and keep agreeing as the stream continues past it.
  Feed(original, w, k, w.tx.size());
  Feed(*restored.value(), w, k, w.tx.size());
  original.Quiesce();
  restored.value()->Quiesce();
  ExpectMonitorsEqual(original, *restored.value());

  // The restored structures pass the same deep invariant audits the
  // engine runs at block boundaries in DEMON_AUDIT builds.
  restored.value()->engine().AuditMonitors();
}

TEST(CheckpointRestoreTest, SequentialEngineAllMonitorKinds) {
  RunRestoreEquivalence(EngineOptions{});
}

TEST(CheckpointRestoreTest, ParallelEngine) {
  EngineOptions options;
  options.num_threads = 4;
  RunRestoreEquivalence(options);
}

TEST(CheckpointRestoreTest, ParallelEngineWithDeferredOffline) {
  EngineOptions options;
  options.num_threads = 2;
  options.defer_offline = true;
  RunRestoreEquivalence(options);
}

// Checkpointing mid-stream with offline GEMM work still queued: Checkpoint
// quiesces first, so the deferred future-window updates land before the
// state is saved and the restored monitor continues identically.
TEST(CheckpointRestoreTest, CheckpointWhileGemmOfflineWorkPending) {
  EngineOptions options;
  options.num_threads = 2;
  options.defer_offline = true;

  const Workload w = MakeWorkload();
  const std::string ckpt = TempPath("gemm_pending.ckpt");

  DemonMonitor original(w.num_items, options);
  RegisterFleet(original, w.dim);
  // No Quiesce between the feed and the checkpoint: the engine still owes
  // the GEMM maintainers their offline updates for the last block.
  Feed(original, w, 0, 3);
  ASSERT_TRUE(original.Checkpoint(ckpt).ok());

  auto restored = DemonMonitor::Restore(ckpt, options);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  Feed(original, w, 3, w.tx.size());
  Feed(*restored.value(), w, 3, w.tx.size());
  original.Quiesce();
  restored.value()->Quiesce();
  ExpectMonitorsEqual(original, *restored.value());
}

// Restore must work at every cut point of the stream, including before the
// first block (an "empty" checkpoint) and after the last.
TEST(CheckpointRestoreTest, EveryCutPointRoundTrips) {
  const Workload w = MakeWorkload();
  for (size_t k = 0; k <= w.tx.size(); k += 2) {
    const std::string ckpt =
        TempPath("cut_" + std::to_string(k) + ".ckpt");
    DemonMonitor original(w.num_items);
    RegisterFleet(original, w.dim);
    Feed(original, w, 0, k);
    ASSERT_TRUE(original.Checkpoint(ckpt).ok());

    auto restored = DemonMonitor::Restore(ckpt);
    ASSERT_TRUE(restored.ok()) << "cut " << k;
    Feed(original, w, k, w.tx.size());
    Feed(*restored.value(), w, k, w.tx.size());
    original.Quiesce();
    restored.value()->Quiesce();
    ExpectMonitorsEqual(original, *restored.value());
  }
}

// Checkpoint bytes are deterministic: the same monitored state written
// twice (original and its own restore) produces identical files. The
// crash-injection harness diffs final checkpoints on exactly this
// guarantee.
TEST(CheckpointRestoreTest, CheckpointBytesAreDeterministic) {
  const Workload w = MakeWorkload();
  const std::string first = TempPath("determinism_a.ckpt");
  const std::string second = TempPath("determinism_b.ckpt");

  DemonMonitor original(w.num_items);
  RegisterFleet(original, w.dim);
  Feed(original, w, 0, 4);
  ASSERT_TRUE(original.Checkpoint(first).ok());

  auto restored = DemonMonitor::Restore(first);
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE(restored.value()->Checkpoint(second).ok());

  auto a = persistence::ReadPayloadFile(first,
                                        persistence::FormatId::kCheckpoint, 2);
  auto b = persistence::ReadPayloadFile(second,
                                        persistence::FormatId::kCheckpoint, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

// Specs survive the round trip, so a deployment can rediscover its
// monitors by kind/name after a restore.
TEST(CheckpointRestoreTest, SpecsSurviveRestore) {
  const Workload w = MakeWorkload();
  const std::string ckpt = TempPath("specs.ckpt");
  DemonMonitor original(w.num_items);
  RegisterFleet(original, w.dim);
  Feed(original, w, 0, 2);
  ASSERT_TRUE(original.Checkpoint(ckpt).ok());

  auto restored = DemonMonitor::Restore(ckpt);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored.value()->NumMonitors(), original.NumMonitors());
  for (size_t id = 0; id < original.NumMonitors(); ++id) {
    const MonitorSpec& before = *original.SpecOf(id).value();
    const MonitorSpec& after = *restored.value()->SpecOf(id).value();
    EXPECT_EQ(after.kind, before.kind);
    EXPECT_EQ(after.name, before.name);
    EXPECT_EQ(after.bss.ToString(), before.bss.ToString());
    EXPECT_EQ(after.window, before.window);
    EXPECT_EQ(after.minsup, before.minsup);
    EXPECT_EQ(after.strategy, before.strategy);
    EXPECT_EQ(restored.value()->NameOf(id).value(), original.NameOf(id).value());
  }
}

// ---------------------------------------------------------------------------
// Crash recovery through the WAL: the post-checkpoint arrivals exist only
// in the log, and replay must converge to the uninterrupted run.

TEST(CheckpointRestoreTest, WalReplayConvergesAfterCrash) {
  const Workload w = MakeWorkload();
  const size_t k = 2;
  const std::string ckpt = TempPath("wal_crash.ckpt");
  const std::string wal = TempPath("wal_crash.log");
  std::remove(wal.c_str());

  // Reference: the uninterrupted run.
  DemonMonitor reference(w.num_items);
  RegisterFleet(reference, w.dim);
  Feed(reference, w, 0, w.tx.size());
  reference.Quiesce();

  // Crashing run: checkpoint at k, then keep going with only the WAL
  // persisting the arrivals — and "crash" by dropping the object.
  {
    DemonMonitor crashing(w.num_items);
    RegisterFleet(crashing, w.dim);
    ASSERT_TRUE(crashing.AttachWal(wal).ok());
    Feed(crashing, w, 0, k);
    ASSERT_TRUE(crashing.Checkpoint(ckpt).ok());
    // Deliberately no ResetWal: replay must cope with records the
    // checkpoint already covers.
    Feed(crashing, w, k, w.tx.size());
    ASSERT_TRUE(crashing.wal_status().ok());
  }

  auto restored = DemonMonitor::Restore(ckpt);
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE(restored.value()->ReplayWal(wal).ok());
  restored.value()->Quiesce();
  ExpectMonitorsEqual(reference, *restored.value());
  EXPECT_EQ(restored.value()->snapshot().latest_id(), w.tx.size());

  // Replay is idempotent: everything in the log is now covered.
  ASSERT_TRUE(restored.value()->ReplayWal(wal).ok());
  EXPECT_EQ(restored.value()->snapshot().latest_id(), w.tx.size());
}

TEST(CheckpointRestoreTest, ResetWalRotatesTheLogAfterCheckpoint) {
  const Workload w = MakeWorkload();
  const std::string ckpt = TempPath("wal_rotate.ckpt");
  const std::string wal = TempPath("wal_rotate.log");
  std::remove(wal.c_str());

  DemonMonitor original(w.num_items);
  RegisterFleet(original, w.dim);
  ASSERT_TRUE(original.AttachWal(wal).ok());
  Feed(original, w, 0, 3);
  ASSERT_TRUE(original.Checkpoint(ckpt).ok());
  ASSERT_TRUE(original.ResetWal().ok());
  Feed(original, w, 3, w.tx.size());
  original.Quiesce();

  auto restored = DemonMonitor::Restore(ckpt);
  ASSERT_TRUE(restored.ok());
  ASSERT_TRUE(restored.value()->ReplayWal(wal).ok());
  restored.value()->Quiesce();
  ExpectMonitorsEqual(original, *restored.value());
}

TEST(CheckpointRestoreTest, WalGapAfterCheckpointIsDataLoss) {
  const Workload w = MakeWorkload();
  const std::string ckpt = TempPath("wal_gap.ckpt");
  const std::string wal = TempPath("wal_gap.log");
  std::remove(wal.c_str());

  // Checkpoint covers blocks 1..2; the log holds only block 4's arrival
  // (block 3 was lost — e.g. a rotated-away log segment).
  DemonMonitor original(w.num_items);
  RegisterFleet(original, w.dim);
  Feed(original, w, 0, 2);
  ASSERT_TRUE(original.Checkpoint(ckpt).ok());
  {
    auto log = persistence::WriteAheadLog::Open(wal);
    ASSERT_TRUE(log.ok());
    TransactionBlock skipped = w.tx[3];
    skipped.mutable_info()->id = 4;
    ASSERT_TRUE(log.value()->Append(skipped).ok());
  }

  auto restored = DemonMonitor::Restore(ckpt);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value()->ReplayWal(wal).code(), StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// Failure modes: a checkpoint that cannot be trusted is rejected with a
// structured Status — never a crash, never a half-restored monitor.

TEST(CheckpointRestoreTest, MissingWrongFormatAndTruncatedFilesAreRejected) {
  EXPECT_EQ(DemonMonitor::Restore(TempPath("no_such.ckpt")).status().code(),
            StatusCode::kIoError);

  // A WAL is not a checkpoint.
  const std::string wal = TempPath("not_a_ckpt.log");
  std::remove(wal.c_str());
  { ASSERT_TRUE(persistence::WriteAheadLog::Open(wal).ok()); }
  EXPECT_EQ(DemonMonitor::Restore(wal).status().code(),
            StatusCode::kInvalidArgument);

  // Write a real checkpoint, then truncate it at several depths.
  const Workload w = MakeWorkload();
  const std::string ckpt = TempPath("truncated.ckpt");
  DemonMonitor original(w.num_items);
  RegisterFleet(original, w.dim);
  Feed(original, w, 0, 2);
  ASSERT_TRUE(original.Checkpoint(ckpt).ok());

  std::FILE* f = std::fopen(ckpt.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string bytes;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);

  for (const size_t keep :
       {size_t{10}, size_t{30}, bytes.size() / 2, bytes.size() - 5}) {
    const std::string path =
        TempPath("truncated_" + std::to_string(keep) + ".ckpt");
    std::FILE* out = std::fopen(path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    std::fwrite(bytes.data(), 1, keep, out);
    std::fclose(out);
    const Status status = DemonMonitor::Restore(path).status();
    EXPECT_FALSE(status.ok()) << "keep=" << keep;
    EXPECT_EQ(status.code(), StatusCode::kDataLoss) << "keep=" << keep;
  }

  // Trailing garbage after a complete payload is corruption too.
  const std::string padded = TempPath("padded.ckpt");
  std::FILE* out = std::fopen(padded.c_str(), "wb");
  ASSERT_NE(out, nullptr);
  std::fwrite(bytes.data(), 1, bytes.size(), out);
  const char junk[3] = {1, 2, 3};
  std::fwrite(junk, 1, sizeof(junk), out);
  std::fclose(out);
  EXPECT_EQ(DemonMonitor::Restore(padded).status().code(),
            StatusCode::kDataLoss);
}

}  // namespace
}  // namespace demon
