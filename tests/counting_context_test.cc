#include "itemsets/counting_context.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "common/random.h"
#include "datagen/quest_generator.h"
#include "itemsets/apriori.h"
#include "itemsets/borders.h"

namespace demon {
namespace {

struct Fixture {
  std::vector<std::shared_ptr<const TransactionBlock>> blocks;
  TidListStore plain_store;
  TidListStore pair_store;
  size_t num_items;
};

Fixture MakeFixture(size_t num_blocks, size_t block_size, size_t num_items,
                    uint64_t seed) {
  QuestParams params;
  params.num_transactions = num_blocks * block_size;
  params.num_items = num_items;
  params.num_patterns = 50;
  params.avg_transaction_len = 8;
  params.avg_pattern_len = 3;
  params.seed = seed;
  QuestGenerator gen(params);

  Fixture fixture;
  fixture.num_items = num_items;
  Tid tid = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    auto block = std::make_shared<TransactionBlock>(
        gen.NextBlock(block_size, tid));
    tid += block->size();
    fixture.blocks.push_back(block);
    fixture.plain_store.Append(BlockTidLists::Build(*block, num_items));
    PairMaterializationSpec spec;
    for (Item a = 0; a < 12; ++a) {
      for (Item b2 = a + 1; b2 < 12; ++b2) spec.pairs.push_back({a, b2});
    }
    fixture.pair_store.Append(
        BlockTidLists::Build(*block, num_items, &spec));
  }
  return fixture;
}

std::vector<Itemset> RandomItemsets(size_t count, size_t max_size,
                                    size_t num_items, uint64_t seed) {
  Rng rng(seed);
  std::vector<Itemset> itemsets;
  while (itemsets.size() < count) {
    Itemset itemset;
    const size_t size = 1 + rng.NextUint64(max_size);
    while (itemset.size() < size) {
      const Item item = static_cast<Item>(
          rng.NextBernoulli(0.5) ? rng.NextUint64(12)
                                 : rng.NextUint64(num_items));
      if (!std::binary_search(itemset.begin(), itemset.end(), item)) {
        itemset.insert(
            std::lower_bound(itemset.begin(), itemset.end(), item), item);
      }
    }
    itemsets.push_back(std::move(itemset));
  }
  return itemsets;
}

void ExpectStatsEq(const CountingStats& a, const CountingStats& b,
                   const char* what) {
  EXPECT_EQ(a.slots_fetched, b.slots_fetched) << what;
  EXPECT_EQ(a.lists_opened, b.lists_opened) << what;
}

// The tentpole invariant: for every strategy and thread count, parallel
// counting is bit-identical to sequential — counts and stats alike.
TEST(CountingContextTest, ParallelMatchesSequentialAllStrategies) {
  const Fixture fixture = MakeFixture(4, 700, 120, 21);
  const auto itemsets = RandomItemsets(160, 4, fixture.num_items, 22);

  for (CountingStrategy strategy :
       {CountingStrategy::kPtScan, CountingStrategy::kEcut,
        CountingStrategy::kEcutPlus}) {
    const TidListStore& store = strategy == CountingStrategy::kEcutPlus
                                    ? fixture.pair_store
                                    : fixture.plain_store;
    CountingContext sequential;
    CountingStats seq_stats;
    const auto expected = sequential.Count(strategy, itemsets, fixture.blocks,
                                           store, &seq_stats);

    for (size_t threads : {1u, 2u, 4u, 8u}) {
      ThreadPool pool(threads);
      CountingContext context(&pool);
      CountingStats stats;
      const auto counts =
          context.Count(strategy, itemsets, fixture.blocks, store, &stats);
      EXPECT_EQ(counts, expected)
          << CountingStrategyName(strategy) << " threads=" << threads;
      ExpectStatsEq(stats, seq_stats, CountingStrategyName(strategy));
    }
  }
}

TEST(CountingContextTest, CountItemsMatchesBruteForce) {
  const Fixture fixture = MakeFixture(3, 400, 80, 23);
  std::vector<uint64_t> expected(fixture.num_items, 0);
  for (const auto& block : fixture.blocks) {
    for (const Transaction& t : block->transactions()) {
      for (Item item : t.items()) ++expected[item];
    }
  }
  CountingContext sequential;
  EXPECT_EQ(sequential.CountItems(fixture.blocks, fixture.num_items),
            expected);
  ThreadPool pool(4);
  CountingContext parallel(&pool);
  EXPECT_EQ(parallel.CountItems(fixture.blocks, fixture.num_items), expected);
}

TEST(CountingContextTest, AprioriWithPoolMatchesSequential) {
  const Fixture fixture = MakeFixture(3, 400, 60, 24);
  const ItemsetModel expected = Apriori(fixture.blocks, 0.02,
                                        fixture.num_items);
  ThreadPool pool(4);
  CountingContext context(&pool);
  const ItemsetModel parallel =
      Apriori(fixture.blocks, 0.02, fixture.num_items, &context);
  ASSERT_EQ(parallel.entries().size(), expected.entries().size());
  EXPECT_EQ(parallel.num_transactions(), expected.num_transactions());
  for (const auto& [itemset, entry] : expected.entries()) {
    const auto it = parallel.entries().find(itemset);
    ASSERT_NE(it, parallel.entries().end()) << ToString(itemset);
    EXPECT_EQ(it->second.count, entry.count) << ToString(itemset);
    EXPECT_EQ(it->second.frequent, entry.frequent) << ToString(itemset);
  }
}

// Scratch buffers persist across calls; reuse must not leak state between
// calls with different itemset sets or strategies.
TEST(CountingContextTest, ReuseAcrossCallsMatchesFreshContext) {
  const Fixture fixture = MakeFixture(2, 300, 60, 25);
  ThreadPool pool(3);
  CountingContext reused(&pool);
  for (uint64_t round = 0; round < 4; ++round) {
    const auto itemsets =
        RandomItemsets(30 + 20 * round, 4, fixture.num_items, 100 + round);
    for (CountingStrategy strategy :
         {CountingStrategy::kPtScan, CountingStrategy::kEcut,
          CountingStrategy::kEcutPlus}) {
      CountingContext fresh;
      EXPECT_EQ(reused.Count(strategy, itemsets, fixture.blocks,
                             fixture.pair_store),
                fresh.Count(strategy, itemsets, fixture.blocks,
                            fixture.pair_store))
          << CountingStrategyName(strategy) << " round " << round;
    }
  }
}

// Counting from inside a task running on the same pool must not deadlock:
// this is exactly what happens when the MaintenanceEngine shares its pool
// with a maintainer's counting kernel.
TEST(CountingContextTest, NestedCallInsidePoolTaskDoesNotDeadlock) {
  const Fixture fixture = MakeFixture(2, 300, 60, 26);
  const auto itemsets = RandomItemsets(50, 3, fixture.num_items, 27);
  CountingContext sequential;
  const auto expected =
      sequential.PtScan(itemsets, fixture.blocks);

  ThreadPool pool(2);
  std::vector<CountingContext> contexts(3, CountingContext(&pool));
  std::vector<std::vector<uint64_t>> results(contexts.size());
  std::atomic<size_t> next{0};
  for (size_t i = 0; i < contexts.size(); ++i) {
    pool.Submit([&, i] {
      results[i] = contexts[i].PtScan(itemsets, fixture.blocks);
      next.fetch_add(1);
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(next.load(), contexts.size());
  for (const auto& counts : results) EXPECT_EQ(counts, expected);
}

// Regression for the nested-oversubscription guard: when counting runs
// inside a pool task that holds a parallelism token (the engine's
// monitor-level fan-out), nested ShardCountFor must size itself to the
// remaining token budget, and the counts must stay bit-identical to the
// sequential path. Before the token scheme, each of N busy workers fanned
// out N more shards that queued behind the other busy workers — 4-thread
// counting slower than 1-thread.
TEST(CountingContextTest, NestedEcutCapsFanOutAndMatchesSequential) {
  const Fixture fixture = MakeFixture(3, 400, 60, 41);
  const auto itemsets = RandomItemsets(120, 3, fixture.num_items, 42);
  CountingContext sequential;
  const auto expected = sequential.Ecut(itemsets, fixture.plain_store, false);

  ThreadPool pool(4);
  EXPECT_FALSE(pool.InWorker());
  EXPECT_EQ(pool.ApproxAvailableTokens(), 4u);

  // Saturate the pool: every worker runs a counting call holding one
  // token (as the engine does), so the four leases drain the budget and
  // each nested fan-out must run its shards inline.
  std::vector<CountingContext> contexts(4, CountingContext(&pool));
  std::vector<std::vector<uint64_t>> results(contexts.size());
  std::vector<unsigned char> in_worker(contexts.size(), 0);
  for (size_t i = 0; i < contexts.size(); ++i) {
    pool.Submit([&, i] {
      ThreadPool::TokenLease lease(&pool, 1);
      in_worker[i] = pool.InWorker() ? 1 : 0;
      results[i] = contexts[i].Ecut(itemsets, fixture.plain_store, false);
    });
  }
  pool.WaitIdle();
  for (size_t i = 0; i < contexts.size(); ++i) {
    EXPECT_EQ(in_worker[i], 1) << "task " << i << " not on a pool worker";
    EXPECT_EQ(results[i], expected) << "task " << i;
  }
  // Every lease returned its token, and top-level calls on the now-idle
  // pool still parallelize and agree.
  EXPECT_EQ(pool.ApproxAvailableTokens(), 4u);
  CountingContext top(&pool);
  EXPECT_EQ(top.Ecut(itemsets, fixture.plain_store, false), expected);
  pool.WaitIdle();
  EXPECT_EQ(pool.ApproxAvailableTokens(), 4u);
}

TEST(CountingContextTest, BordersMaintainerWithPoolMatchesWithout) {
  const Fixture fixture = MakeFixture(4, 400, 60, 28);
  for (CountingStrategy strategy :
       {CountingStrategy::kPtScan, CountingStrategy::kEcut,
        CountingStrategy::kEcutPlus}) {
    BordersOptions options;
    options.minsup = 0.02;
    options.num_items = fixture.num_items;
    options.strategy = strategy;

    BordersMaintainer sequential(options);
    ThreadPool pool(4);
    BordersMaintainer parallel(options);
    parallel.set_counting_pool(&pool);
    for (const auto& block : fixture.blocks) {
      sequential.AddBlock(block);
      parallel.AddBlock(block);
    }
    const auto& expected = sequential.model();
    const auto& got = parallel.model();
    ASSERT_EQ(got.entries().size(), expected.entries().size())
        << CountingStrategyName(strategy);
    for (const auto& [itemset, entry] : expected.entries()) {
      const auto it = got.entries().find(itemset);
      ASSERT_NE(it, got.entries().end()) << ToString(itemset);
      EXPECT_EQ(it->second.count, entry.count) << ToString(itemset);
      EXPECT_EQ(it->second.frequent, entry.frequent) << ToString(itemset);
    }
  }
}

TEST(CountingContextTest, EmptyInputsAndPoolRebinding) {
  const Fixture fixture = MakeFixture(1, 50, 20, 29);
  ThreadPool pool(2);
  CountingContext context(&pool);
  EXPECT_TRUE(context.PtScan({}, fixture.blocks).empty());
  EXPECT_TRUE(context.Ecut({}, fixture.plain_store, false).empty());
  // Rebinding to null returns the context to sequential operation.
  context.set_pool(nullptr);
  EXPECT_EQ(context.pool(), nullptr);
  const auto itemsets = RandomItemsets(10, 3, fixture.num_items, 30);
  CountingContext fresh;
  EXPECT_EQ(context.PtScan(itemsets, fixture.blocks),
            fresh.PtScan(itemsets, fixture.blocks));
}

// Copies share the pool binding but rebuild scratch lazily — the cheap
// clone GEMM relies on when it spawns window models.
TEST(CountingContextTest, CopyCarriesPoolBindingOnly) {
  const Fixture fixture = MakeFixture(2, 200, 40, 31);
  const auto itemsets = RandomItemsets(20, 3, fixture.num_items, 32);
  ThreadPool pool(2);
  CountingContext original(&pool);
  const auto expected = original.PtScan(itemsets, fixture.blocks);
  CountingContext copy(original);
  EXPECT_EQ(copy.pool(), &pool);
  EXPECT_EQ(copy.PtScan(itemsets, fixture.blocks), expected);
  CountingContext assigned;
  assigned = original;
  EXPECT_EQ(assigned.pool(), &pool);
  EXPECT_EQ(assigned.PtScan(itemsets, fixture.blocks), expected);
}

}  // namespace
}  // namespace demon
