// Cross-module integration tests: the full DEMON pipeline — synthetic
// evolving data, incremental model maintenance under data-span and BSS
// restrictions, and pattern detection — exercised together the way the
// paper's Figure 11 lays out the problem space.

#include <gtest/gtest.h>

#include "clustering/birch.h"
#include "core/aum.h"
#include "core/gemm.h"
#include "core/maintainers.h"
#include "datagen/quest_generator.h"
#include "datagen/trace_generator.h"
#include "itemsets/apriori.h"
#include "patterns/compact_sequences.h"

namespace demon {
namespace {

using BlockPtr = std::shared_ptr<const TransactionBlock>;

TEST(IntegrationTest, UnrestrictedWindowMaintenanceOverTraceBlocks) {
  // Feed real-ish trace blocks (not Quest data) through the itemset
  // maintainer and check against from-scratch mining at the end.
  TraceGenerator::Params params;
  params.rate_scale = 0.01;
  params.seed = 5;
  TraceGenerator gen(params);
  const auto blocks = SegmentTrace(gen.Generate(), 24, 24);

  BordersOptions options;
  options.minsup = 0.02;
  options.num_items =
      TraceGenerator::kNumObjectTypes + TraceGenerator::kNumSizeBuckets;
  options.strategy = CountingStrategy::kEcutPlus;
  BordersMaintainer maintainer(options);

  std::vector<BlockPtr> so_far;
  for (size_t b = 0; b < 6; ++b) {
    auto block = std::make_shared<TransactionBlock>(blocks[b]);
    maintainer.AddBlock(block);
    so_far.push_back(block);
  }
  const ItemsetModel scratch =
      Apriori(so_far, options.minsup, options.num_items);
  ASSERT_EQ(maintainer.model().entries().size(), scratch.entries().size());
  for (const auto& [itemset, entry] : scratch.entries()) {
    EXPECT_EQ(maintainer.model().CountOf(itemset), entry.count);
  }
}

TEST(IntegrationTest, GemmAndAuMAgreeUnderWindowRelativeBss) {
  // Two independent most-recent-window implementations (GEMM's
  // collection-of-models vs AuM's add+delete) must produce identical
  // models for every window — a strong cross-check of both.
  QuestParams params;
  params.num_transactions = 8 * 200;
  params.num_items = 30;
  params.num_patterns = 20;
  params.avg_transaction_len = 6;
  params.seed = 91;
  QuestGenerator gen(params);

  BordersOptions options;
  options.minsup = 0.05;
  options.num_items = 30;
  const auto bss =
      BlockSelectionSequence::WindowRelative({true, true, false, true});
  const size_t w = 4;

  Gemm<BordersMaintainer, BlockPtr> gemm(
      bss, w, [&options] { return BordersMaintainer(options); });
  AuMItemsetMaintainer aum(options, bss, w);

  Tid tid = 0;
  for (int t = 0; t < 8; ++t) {
    auto block = std::make_shared<TransactionBlock>(gen.NextBlock(200, tid));
    tid += block->size();
    block->mutable_info()->id = static_cast<BlockId>(t + 1);
    gemm.AddBlock(block);
    aum.AddBlock(block);

    const ItemsetModel& a = gemm.current().model();
    const ItemsetModel& b = aum.model();
    ASSERT_EQ(a.num_transactions(), b.num_transactions()) << "t=" << t;
    ASSERT_EQ(a.entries().size(), b.entries().size()) << "t=" << t;
    for (const auto& [itemset, entry] : a.entries()) {
      EXPECT_EQ(b.CountOf(itemset), entry.count) << ToString(itemset);
      EXPECT_EQ(b.IsFrequent(itemset), entry.frequent) << ToString(itemset);
    }
  }
}

TEST(IntegrationTest, PatternDetectionThenTargetedMonitoring) {
  // The paper's intended workflow: discover an interesting BSS with the
  // pattern detector, then monitor exactly those blocks with GEMM.
  TraceGenerator::Params params;
  params.rate_scale = 0.02;
  params.seed = 6;
  TraceGenerator gen(params);
  const auto blocks = SegmentTrace(gen.Generate(), 24, 24);

  // Step 1: detect compact sequences over the first two weeks.
  CompactSequenceMiner::Options miner_options;
  miner_options.focus.minsup = 0.01;
  miner_options.focus.num_items =
      TraceGenerator::kNumObjectTypes + TraceGenerator::kNumSizeBuckets;
  miner_options.alpha = 0.99;
  CompactSequenceMiner miner(miner_options);
  const size_t history = 14;
  for (size_t b = 0; b < history && b < blocks.size(); ++b) {
    miner.AddBlock(std::make_shared<TransactionBlock>(blocks[b]));
  }
  const auto sequences = miner.MaximalSequences(3);
  ASSERT_FALSE(sequences.empty());

  // Step 2: turn the longest sequence into a window-independent BSS and
  // maintain a model over exactly those blocks.
  const auto* longest = &sequences[0];
  for (const auto& s : sequences) {
    if (s.size() > longest->size()) longest = &s;
  }
  std::vector<bool> bits(history, false);
  for (size_t index : *longest) bits[index] = true;
  const auto bss = BlockSelectionSequence::WindowIndependent(bits, false);

  BordersOptions options;
  options.minsup = 0.01;
  options.num_items = miner_options.focus.num_items;
  BordersMaintainer maintainer(options);
  std::vector<BlockPtr> selected;
  for (size_t b = 0; b < history; ++b) {
    if (!bss.SelectsBlock(static_cast<BlockId>(b + 1))) continue;
    auto block = std::make_shared<TransactionBlock>(blocks[b]);
    maintainer.AddBlock(block);
    selected.push_back(block);
  }
  ASSERT_EQ(selected.size(), longest->size());
  const ItemsetModel scratch =
      Apriori(selected, options.minsup, options.num_items);
  EXPECT_EQ(maintainer.model().entries().size(), scratch.entries().size());
  EXPECT_EQ(maintainer.model().NumFrequent(), scratch.NumFrequent());
}

TEST(IntegrationTest, ClusterMonitoringUnderMostRecentWindow) {
  // GEMM + BIRCH+ with a periodic BSS over point blocks; verify the
  // sub-cluster totals match exactly the selected blocks' point counts.
  Rng rng(8);
  BirchOptions birch_options;
  birch_options.num_clusters = 3;
  const size_t w = 4;
  const auto bss = BlockSelectionSequence::Periodic(2, 0);  // odd ids
  Gemm<ClusterMaintainer, std::shared_ptr<const PointBlock>> gemm(
      bss, w, [&] { return ClusterMaintainer(2, birch_options); });

  std::vector<size_t> sizes;
  for (int t = 1; t <= 7; ++t) {
    const size_t n = 50 + rng.NextUint64(100);
    sizes.push_back(n);
    std::vector<double> coords;
    for (size_t i = 0; i < 2 * n; ++i) {
      coords.push_back(rng.NextDouble() * 10);
    }
    auto block = std::make_shared<PointBlock>(std::move(coords), 2);
    block->mutable_info()->id = static_cast<BlockId>(t);
    gemm.AddBlock(std::move(block));

    double expected = 0;
    const size_t start = t >= static_cast<int>(w) ? t - w + 1 : 1;
    for (size_t id = start; id <= static_cast<size_t>(t); ++id) {
      if ((id - 1) % 2 == 0) expected += static_cast<double>(sizes[id - 1]);
    }
    EXPECT_DOUBLE_EQ(gemm.current().birch().tree().total_weight(), expected)
        << "t=" << t;
  }
}

}  // namespace
}  // namespace demon
