// Compile-and-run proof that DEMON_TELEMETRY=OFF turns the
// instrumentation macros into zero-overhead no-ops. This TU forces the
// OFF expansion regardless of the build-wide gate (telemetry.h must be
// the first include, before anything can pull it in transitively), so
// the no-op path is exercised even in the default ON build. The classes
// themselves stay fully functional either way — the gate only governs
// the macros — which is also asserted here.

#undef DEMON_TELEMETRY_ENABLED
#define DEMON_TELEMETRY_ENABLED 0
#include "common/telemetry.h"

#include <vector>

#include "common/telemetry_timeline.h"
#include "gtest/gtest.h"

namespace demon::telemetry {
namespace {

static_assert(!kEnabled, "this TU must see the OFF expansion");

int g_argument_evaluations = 0;

// [[maybe_unused]] because that is the proof: the OFF macros never
// evaluate their arguments, so these are never called (or referenced).
[[maybe_unused]] Counter* CounterArgWithSideEffect() {
  ++g_argument_evaluations;
  return nullptr;
}

[[maybe_unused]] Histogram* HistogramArgWithSideEffect() {
  ++g_argument_evaluations;
  return nullptr;
}

[[maybe_unused]] uint64_t ValueArgWithSideEffect() {
  ++g_argument_evaluations;
  return 1;
}

TEST(TelemetryGateOff, MacrosDoNotEvaluateTheirArguments) {
  g_argument_evaluations = 0;
  DEMON_COUNTER_ADD(CounterArgWithSideEffect(), ValueArgWithSideEffect());
  DEMON_HISTOGRAM_RECORD(HistogramArgWithSideEffect(), 0.5);
  EXPECT_EQ(g_argument_evaluations, 0);
}

TEST(TelemetryGateOff, SpanMacrosAreInertAndRecordNothing) {
  TelemetryRegistry registry;
  {
    DEMON_TRACE_SPAN(outer, &registry, "outer", "test");
    EXPECT_EQ(DEMON_SPAN_ID(outer), 0u);
    DEMON_TRACE_SPAN_UNDER(child, &registry, "child", "test",
                           DEMON_SPAN_ID(outer));
    EXPECT_EQ(DEMON_SPAN_ID(child), 0u);
  }
  EXPECT_TRUE(registry.CollectSpans().empty());
  EXPECT_EQ(registry.dropped_spans(), 0u);
}

TEST(TelemetryGateOff, RegistryAndClassesStayFunctional) {
  // MonitorStats quantiles and the engine's per-monitor histograms rely
  // on the classes working in OFF builds; only the macros are gated.
  TelemetryRegistry registry;
  registry.counter("off/counter")->Add(2);
  Histogram* histogram = registry.histogram("off/seconds");
  {
    ScopedTimer timer(histogram);  // always-on, gate-independent
    (void)timer;
  }
  EXPECT_EQ(registry.counter("off/counter")->value(), 2u);
  EXPECT_EQ(histogram->count(), 1u);

  {
    TraceSpan direct(&registry, "direct", "test");
    EXPECT_NE(direct.id(), 0u);
  }
  const std::vector<SpanRecord> spans = registry.CollectSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "direct");
}

TEST(TelemetryGateOff, ScraperRunsAgainstAGateOffRegistry) {
  // The scraper is part of the stats contract in every build: with the
  // gate OFF the macro-fed metrics stay flat, but direct class writes
  // still scrape, delta and alert exactly as in ON builds.
  TelemetryRegistry registry;
  TelemetryScraper scraper({.registry = &registry, .period_seconds = 1e-3});
  AlertPolicy policy;
  ASSERT_TRUE(ParseAlertPolicy("off/depth>1", &policy, nullptr));
  scraper.AddPolicy(policy);
  scraper.Start();

  // Macro writes are no-ops under the gate...
  [[maybe_unused]] Counter* macro_counter = registry.counter("off/macro");
  DEMON_COUNTER_ADD(macro_counter, 5);
  // ...while direct writes (what ScopedTimer and the engine stats use)
  // are not.
  registry.gauge("off/depth")->Set(2.0);
  const TimelineSample sample = scraper.ScrapeNow();
  scraper.Stop();

  bool found = false;
  for (const auto& [name, value] : sample.cumulative.counters) {
    if (name != "off/macro") continue;
    found = true;
    EXPECT_EQ(value, 0u);
  }
  EXPECT_TRUE(found);
  ASSERT_EQ(scraper.Alerts().size(), 1u);
  EXPECT_EQ(scraper.Alerts()[0].metric, "off/depth");
  EXPECT_FALSE(TimelineJsonl(scraper.Samples()).empty());
}

}  // namespace
}  // namespace demon::telemetry
