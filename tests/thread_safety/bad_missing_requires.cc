// Seeded violation for scripts/check_thread_safety.sh: a REQUIRES-annotated
// private method called without holding the capability. clang must reject
// this under -Wthread-safety -Werror.

#include "common/sync.h"

namespace {

class Queue {
 public:
  void Push(int v) {
    PushLocked(v);  // VIOLATION: mutex_ not held
  }

 private:
  void PushLocked(int v) DEMON_REQUIRES(mutex_) { last_ = v; }

  demon::Mutex mutex_;
  int last_ DEMON_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Queue queue;
  queue.Push(1);
  return 0;
}
