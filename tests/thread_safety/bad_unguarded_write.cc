// Seeded violation for scripts/check_thread_safety.sh: a GUARDED_BY field
// written without its mutex. clang must reject this under -Wthread-safety
// -Werror; if it compiles, the annotation layer has stopped working.

#include "common/sync.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    balance_ += amount;  // VIOLATION: mutex_ not held
  }

 private:
  demon::Mutex mutex_;
  int balance_ DEMON_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return 0;
}
