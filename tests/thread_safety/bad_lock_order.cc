// Seeded violation for scripts/check_thread_safety.sh: two mutexes with a
// declared ACQUIRED_BEFORE edge taken in the opposite order — the deadlock
// shape the pager/telemetry annotation guards against. The edge checks live
// behind -Wthread-safety-beta, so this snippet also proves the beta flag is
// actually on in CI.

#include "common/sync.h"

namespace {

class Pipeline {
 public:
  void Broken() {
    demon::MutexLock inner(second_);
    demon::MutexLock outer(first_);  // VIOLATION: first_ ordered before second_
  }

 private:
  demon::Mutex first_ DEMON_ACQUIRED_BEFORE(second_);
  demon::Mutex second_;
};

}  // namespace

int main() {
  Pipeline pipeline;
  pipeline.Broken();
  return 0;
}
