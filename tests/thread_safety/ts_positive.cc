// Positive control for scripts/check_thread_safety.sh: pulls in every
// annotated header in the repo plus a small correct capability user, and
// must compile cleanly under -Wthread-safety -Wthread-safety-beta -Werror.
// If an annotation in a header is malformed (a typo'd member name, a
// capability expression that no longer parses), it surfaces here even
// though the library itself is built by GCC elsewhere.

#include "common/sync.h"
#include "common/telemetry.h"
#include "common/telemetry_timeline.h"
#include "common/thread_pool.h"
#include "tidlist/extent_pager.h"
#include "tidlist/tidlist_store.h"

namespace {

class Guarded {
 public:
  void Set(int v) {
    demon::MutexLock lock(mutex_);
    value_ = v;
  }
  int Get() {
    demon::MutexLock lock(mutex_);
    return value_;
  }
  void WaitNonZero() {
    demon::MutexLock lock(mutex_);
    while (value_ == 0) changed_.Wait(mutex_);
  }
  void SetFromOutside(int v) {
    mutex_.Lock();
    value_ = v;
    mutex_.Unlock();
    changed_.NotifyAll();
  }

 private:
  demon::Mutex mutex_;
  demon::CondVar changed_;
  int value_ DEMON_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Set(1);
  g.SetFromOutside(2);
  g.WaitNonZero();
  return g.Get() == 2 ? 0 : 1;
}
