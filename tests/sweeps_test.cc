// Parameterized property sweeps across the stack: each suite re-checks a
// core invariant over a grid of configurations (thresholds, shapes,
// window sizes, seeds) rather than a single hand-picked case.

#include <gtest/gtest.h>

#include "clustering/birch.h"
#include "common/stats.h"
#include "core/aum.h"
#include "core/gemm.h"
#include "core/maintainers.h"
#include "datagen/cluster_generator.h"
#include "datagen/quest_generator.h"
#include "itemsets/apriori.h"
#include "itemsets/borders.h"

namespace demon {
namespace {

using BlockPtr = std::shared_ptr<const TransactionBlock>;

std::vector<BlockPtr> QuestBlocks(size_t num_blocks, size_t block_size,
                                  size_t num_items, uint64_t seed) {
  QuestParams params;
  params.num_transactions = num_blocks * block_size;
  params.num_items = num_items;
  params.num_patterns = 30;
  params.avg_transaction_len = 7;
  params.avg_pattern_len = 3;
  params.seed = seed;
  QuestGenerator gen(params);
  std::vector<BlockPtr> blocks;
  Tid tid = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    auto block =
        std::make_shared<TransactionBlock>(gen.NextBlock(block_size, tid));
    tid += block->size();
    block->mutable_info()->id = static_cast<BlockId>(b + 1);
    blocks.push_back(std::move(block));
  }
  return blocks;
}

void ExpectModelsEqual(const ItemsetModel& actual,
                       const ItemsetModel& expected) {
  ASSERT_EQ(actual.num_transactions(), expected.num_transactions());
  ASSERT_EQ(actual.entries().size(), expected.entries().size());
  for (const auto& [itemset, entry] : expected.entries()) {
    const auto it = actual.entries().find(itemset);
    ASSERT_NE(it, actual.entries().end()) << ToString(itemset);
    ASSERT_EQ(it->second.count, entry.count) << ToString(itemset);
    ASSERT_EQ(it->second.frequent, entry.frequent) << ToString(itemset);
  }
}

// ---------------------------------------------------------------------------
// BORDERS == Apriori over a (minsup, seed) grid.

struct BordersSweepParam {
  double minsup;
  uint64_t seed;
};

class BordersSweep : public ::testing::TestWithParam<BordersSweepParam> {};

TEST_P(BordersSweep, MaintainedModelEqualsFromScratch) {
  const auto [minsup, seed] = GetParam();
  const auto blocks = QuestBlocks(4, 300, 50, seed);
  BordersOptions options;
  options.minsup = minsup;
  options.num_items = 50;
  options.strategy = CountingStrategy::kEcut;
  BordersMaintainer maintainer(options);
  for (const auto& block : blocks) maintainer.AddBlock(block);
  ExpectModelsEqual(maintainer.model(), Apriori(blocks, minsup, 50));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BordersSweep,
    ::testing::Values(BordersSweepParam{0.02, 1}, BordersSweepParam{0.02, 2},
                      BordersSweepParam{0.05, 3}, BordersSweepParam{0.05, 4},
                      BordersSweepParam{0.10, 5}, BordersSweepParam{0.10, 6},
                      BordersSweepParam{0.20, 7}, BordersSweepParam{0.03, 8}),
    [](const auto& info) {
      return "minsup" +
             std::to_string(static_cast<int>(info.param.minsup * 100)) +
             "seed" + std::to_string(info.param.seed);
    });

// ---------------------------------------------------------------------------
// BIRCH+ == BIRCH over shapes (dim, clusters, block count).

struct BirchSweepParam {
  size_t dim;
  size_t clusters;
  size_t blocks;
};

class BirchSweep : public ::testing::TestWithParam<BirchSweepParam> {};

TEST_P(BirchSweep, IncrementalEqualsOneShot) {
  const auto [dim, clusters, num_blocks] = GetParam();
  ClusterGenParams params;
  params.num_points = num_blocks * 800;
  params.num_clusters = clusters;
  params.dim = dim;
  params.seed = 100 + dim * 10 + clusters;
  ClusterGenerator gen(params);

  BirchOptions options;
  options.num_clusters = clusters;
  options.phase2 = Phase2Algorithm::kAgglomerative;
  options.tree.max_leaf_entries = 256;
  BirchPlus incremental(dim, options);
  std::vector<std::shared_ptr<const PointBlock>> all;
  for (size_t b = 0; b < num_blocks; ++b) {
    auto block = std::make_shared<PointBlock>(gen.NextBlock(800));
    all.push_back(block);
    incremental.AddBlock(*block);
  }
  const ClusterModel scratch = RunBirch(all, dim, options);
  ASSERT_EQ(incremental.model().NumClusters(), scratch.NumClusters());
  for (size_t c = 0; c < scratch.NumClusters(); ++c) {
    EXPECT_EQ(incremental.model().clusters()[c], scratch.clusters()[c]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BirchSweep,
    ::testing::Values(BirchSweepParam{2, 3, 2}, BirchSweepParam{2, 8, 4},
                      BirchSweepParam{5, 5, 3}, BirchSweepParam{8, 4, 2},
                      BirchSweepParam{3, 10, 5}),
    [](const auto& info) {
      std::string name = "d";
      name += std::to_string(info.param.dim);
      name += "k";
      name += std::to_string(info.param.clusters);
      name += "b";
      name += std::to_string(info.param.blocks);
      return name;
    });

// ---------------------------------------------------------------------------
// Quest generator delivers the requested mean transaction length across
// the parameter range.

class QuestLengthSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuestLengthSweep, MeanLengthTracksParameter) {
  const double target = GetParam();
  QuestParams params;
  params.num_transactions = 15000;
  params.avg_transaction_len = target;
  params.num_items = 800;
  params.num_patterns = 200;
  params.avg_pattern_len = 3;
  params.seed = static_cast<uint64_t>(target * 7);
  QuestGenerator gen(params);
  const TransactionBlock block = gen.GenerateAll();
  const double mean = static_cast<double>(block.TotalItemOccurrences()) /
                      static_cast<double>(block.size());
  // Deduplication inside transactions biases the mean down a little.
  EXPECT_GT(mean, target * 0.55) << "target " << target;
  EXPECT_LT(mean, target * 1.25) << "target " << target;
}

INSTANTIATE_TEST_SUITE_P(Lengths, QuestLengthSweep,
                         ::testing::Values(4.0, 8.0, 12.0, 20.0, 30.0));

// ---------------------------------------------------------------------------
// Chi-square CDF against classic table quantiles.

struct ChiSquareQuantile {
  double df;
  double upper_tail;  // alpha
  double critical;    // table value
};

class ChiSquareTableSweep
    : public ::testing::TestWithParam<ChiSquareQuantile> {};

TEST_P(ChiSquareTableSweep, MatchesTextbookTable) {
  const auto [df, alpha, critical] = GetParam();
  EXPECT_NEAR(ChiSquarePValue(critical, df), alpha, 2e-4)
      << "df=" << df << " critical=" << critical;
}

INSTANTIATE_TEST_SUITE_P(
    Table, ChiSquareTableSweep,
    ::testing::Values(ChiSquareQuantile{1, 0.05, 3.8415},
                      ChiSquareQuantile{2, 0.05, 5.9915},
                      ChiSquareQuantile{5, 0.05, 11.0705},
                      ChiSquareQuantile{10, 0.01, 23.2093},
                      ChiSquareQuantile{20, 0.05, 31.4104},
                      ChiSquareQuantile{30, 0.01, 50.8922},
                      ChiSquareQuantile{1, 0.01, 6.6349},
                      ChiSquareQuantile{50, 0.05, 67.5048}));

// ---------------------------------------------------------------------------
// GEMM's model count and routing across window sizes.

class GemmWindowSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(GemmWindowSweep, CurrentModelCoversExactlyTheWindow) {
  const size_t w = GetParam();
  const auto blocks = QuestBlocks(w + 5, 20, 20, 50 + w);
  Gemm<CountingMaintainer, BlockPtr> gemm(
      BlockSelectionSequence::AllBlocks(), w,
      [] { return CountingMaintainer(); });
  for (size_t t = 1; t <= blocks.size(); ++t) {
    gemm.AddBlock(blocks[t - 1]);
    EXPECT_LE(gemm.NumModels(), w);
    const size_t start = t >= w ? t - w + 1 : 1;
    std::vector<BlockId> expected;
    for (size_t id = start; id <= t; ++id) {
      expected.push_back(static_cast<BlockId>(id));
    }
    ASSERT_EQ(gemm.current().block_ids(), expected) << "w=" << w << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Windows, GemmWindowSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// ---------------------------------------------------------------------------
// GEMM and AuM agree for random window-relative BSS bit patterns.

class GemmAumRandomBssSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GemmAumRandomBssSweep, TwoImplementationsAgree) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const size_t w = 3 + rng.NextUint64(3);
  std::vector<bool> bits(w);
  bool any = false;
  for (size_t i = 0; i < w; ++i) {
    bits[i] = rng.NextBernoulli(0.5);
    any |= bits[i];
  }
  if (!any) bits[rng.NextUint64(w)] = true;
  const auto bss = BlockSelectionSequence::WindowRelative(bits);

  BordersOptions options;
  options.minsup = 0.05;
  options.num_items = 30;
  const auto blocks = QuestBlocks(w + 4, 150, 30, seed * 3 + 1);
  Gemm<BordersMaintainer, BlockPtr> gemm(
      bss, w, [&options] { return BordersMaintainer(options); });
  AuMItemsetMaintainer aum(options, bss, w);
  for (const auto& block : blocks) {
    gemm.AddBlock(block);
    aum.AddBlock(block);
    ExpectModelsEqual(gemm.current().model(), aum.model());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GemmAumRandomBssSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace demon
