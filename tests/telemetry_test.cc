// Tests for the telemetry subsystem: metric concurrency, span nesting
// and cross-thread parentage, exporter golden output, and the behavior
// of the instrumentation macros under the DEMON_TELEMETRY gate. The
// whole file is gate-agnostic — the classes are always live, only the
// macros change — so the same binary passes in ON and OFF builds (the
// few gate-dependent assertions branch on telemetry::kEnabled).

#include "common/telemetry.h"

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "gtest/gtest.h"

namespace demon::telemetry {
namespace {

// ---------------------------------------------------------------------
// Metric concurrency
// ---------------------------------------------------------------------

TEST(CounterTest, ConcurrentAddsMatchSerialTotal) {
  TelemetryRegistry registry;
  Counter* counter = registry.counter("test/hammered");
  constexpr size_t kTasks = 64;
  constexpr uint64_t kAddsPerTask = 1000;

  ThreadPool pool(8);
  ParallelFor(&pool, kTasks, [&](size_t) {
    for (uint64_t i = 0; i < kAddsPerTask; ++i) counter->Increment();
  });
  EXPECT_EQ(counter->value(), kTasks * kAddsPerTask);

  // Lookup by the same name returns the same (stable) pointer.
  EXPECT_EQ(registry.counter("test/hammered"), counter);
  EXPECT_EQ(registry.counter("test/hammered")->value(), kTasks * kAddsPerTask);
}

TEST(HistogramTest, ConcurrentRecordsMatchSerialTotals) {
  TelemetryRegistry registry;
  Histogram* histogram = registry.histogram("test/latency");
  constexpr size_t kTasks = 64;
  constexpr size_t kRecordsPerTask = 100;
  constexpr double kValue = 0.001;  // 1 ms

  ThreadPool pool(8);
  ParallelFor(&pool, kTasks, [&](size_t) {
    for (size_t i = 0; i < kRecordsPerTask; ++i) histogram->Record(kValue);
  });

  const double expected_sum =
      kValue * static_cast<double>(kTasks * kRecordsPerTask);
  EXPECT_EQ(histogram->count(), kTasks * kRecordsPerTask);
  EXPECT_NEAR(histogram->sum(), expected_sum, 1e-6);
  EXPECT_DOUBLE_EQ(histogram->max(), kValue);
}

TEST(HistogramTest, QuantilesOfUniformValueClampToObservedMax) {
  Histogram histogram;
  for (int i = 0; i < 100; ++i) histogram.Record(0.001);
  // All samples share one bucket, so interpolation would overshoot the
  // true value; the clamp to max() brings both quantiles back exactly.
  EXPECT_DOUBLE_EQ(histogram.ApproxQuantile(0.5), 0.001);
  EXPECT_DOUBLE_EQ(histogram.ApproxQuantile(0.95), 0.001);
}

TEST(HistogramTest, QuantilesSeparateBimodalDistribution) {
  Histogram histogram;
  for (int i = 0; i < 90; ++i) histogram.Record(0.0001);  // fast path
  for (int i = 0; i < 10; ++i) histogram.Record(0.01);    // slow tail
  const double p50 = histogram.ApproxQuantile(0.5);
  EXPECT_GE(p50, 0.0001);
  EXPECT_LT(p50, 0.0002);  // inside the 100 µs bucket
  EXPECT_DOUBLE_EQ(histogram.ApproxQuantile(0.95), 0.01);
  EXPECT_DOUBLE_EQ(histogram.max(), 0.01);
}

TEST(HistogramTest, EmptyAndUnderflowBehavior) {
  Histogram histogram;
  EXPECT_EQ(histogram.ApproxQuantile(0.5), 0.0);
  histogram.Record(0.0);    // underflow bucket
  histogram.Record(-1.0);   // negative: also underflow, never UB
  EXPECT_EQ(histogram.count(), 2u);
  EXPECT_EQ(histogram.bucket_count(0), 2u);
}

TEST(GaugeTest, LastWriteWins) {
  TelemetryRegistry registry;
  Gauge* gauge = registry.gauge("test/depth");
  gauge->Set(4.0);
  gauge->Set(2.5);
  EXPECT_DOUBLE_EQ(gauge->value(), 2.5);
}

// ---------------------------------------------------------------------
// Span nesting and parentage
// ---------------------------------------------------------------------

TEST(TraceSpanTest, SameThreadSpansNestThroughTheStack) {
  TelemetryRegistry registry;
  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  uint64_t sibling_id = 0;
  {
    TraceSpan outer(&registry, "outer", "test");
    outer_id = outer.id();
    {
      TraceSpan inner(&registry, "inner", "test");
      inner_id = inner.id();
    }
    TraceSpan sibling(&registry, "sibling", "test");
    sibling_id = sibling.id();
  }
  ASSERT_NE(outer_id, 0u);

  const std::vector<SpanRecord> spans = registry.CollectSpans();
  ASSERT_EQ(spans.size(), 3u);
  for (const SpanRecord& span : spans) {
    EXPECT_GE(span.end_ns, span.start_ns);
    if (span.id == outer_id) {
      EXPECT_EQ(span.parent, 0u);  // root
    } else {
      // Both inner and the post-inner sibling hang off the live outer.
      EXPECT_TRUE(span.id == inner_id || span.id == sibling_id);
      EXPECT_EQ(span.parent, outer_id);
    }
  }
}

TEST(TraceSpanTest, StacksOfDistinctRegistriesDoNotMix) {
  TelemetryRegistry a;
  TelemetryRegistry b;
  TraceSpan span_a(&a, "a-root", "test");
  // b has no live span of its own, and a's span must not adopt it.
  TraceSpan span_b(&b, "b-root", "test");
  EXPECT_NE(span_b.id(), 0u);

  TelemetryRegistry* b_ptr = &b;
  {
    TraceSpan nested_b(b_ptr, "b-child", "test");
    (void)nested_b;
  }
  const std::vector<SpanRecord> spans_b = b.CollectSpans();
  ASSERT_EQ(spans_b.size(), 1u);
  EXPECT_EQ(spans_b[0].name, "b-child");
  EXPECT_EQ(spans_b[0].parent, span_b.id());  // not span_a's id
}

TEST(TraceSpanTest, NullRegistrySpanIsInert) {
  TraceSpan inert;
  EXPECT_EQ(inert.id(), 0u);
  TraceSpan null_registry(nullptr, "ignored", "test");
  EXPECT_EQ(null_registry.id(), 0u);
}

TEST(TraceSpanTest, ExplicitParentCarriesAcrossParallelForWorkers) {
  TelemetryRegistry registry;
  ThreadPool pool(4);
  constexpr size_t kShards = 16;

  uint64_t engine_id = 0;
  {
    TraceSpan engine_span(&registry, "engine", "engine");
    engine_id = engine_span.id();
    // Pool workers have empty span stacks, so the parent must ride in
    // explicitly — exactly what the counting kernel does per shard.
    ParallelFor(&pool, kShards, [&](size_t shard) {
      TraceSpan shard_span(&registry, "shard " + std::to_string(shard),
                           "counting", engine_id);
      (void)shard_span;
    });
  }

  const std::vector<SpanRecord> spans = registry.CollectSpans();
  ASSERT_EQ(spans.size(), kShards + 1);

  const SpanRecord* engine = nullptr;
  size_t shard_count = 0;
  std::set<uint64_t> ids;
  for (const SpanRecord& span : spans) {
    EXPECT_TRUE(ids.insert(span.id).second) << "duplicate span id";
    if (span.id == engine_id) {
      engine = &span;
      continue;
    }
    ++shard_count;
    EXPECT_EQ(span.parent, engine_id);
    EXPECT_EQ(span.category, "counting");
  }
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(shard_count, kShards);
  // ParallelFor returns only once every shard has finished, and the
  // engine span closes after that, so it encloses every shard span.
  for (const SpanRecord& span : spans) {
    EXPECT_GE(span.start_ns, engine->start_ns);
    EXPECT_LE(span.end_ns, engine->end_ns);
  }
}

TEST(TraceSpanTest, RingOverflowDropsOldestAndCounts) {
  TelemetryRegistry registry;
  uint64_t recorded = 0;
  constexpr uint64_t kLimit = 1 << 20;  // safety bound, far above the ring
  while (registry.dropped_spans() < 10 && recorded < kLimit) {
    SpanRecord record;
    record.id = recorded + 1;
    record.name = "s";
    record.category = "test";
    record.start_ns = recorded;
    record.end_ns = recorded + 1;
    registry.RecordSpan(std::move(record));
    ++recorded;
  }
  const uint64_t dropped = registry.dropped_spans();
  ASSERT_GE(dropped, 10u) << "ring never overflowed within " << kLimit;

  const std::vector<SpanRecord> spans = registry.CollectSpans();
  ASSERT_EQ(spans.size(), recorded - dropped);
  // Overwrite evicts the oldest records first, so the survivor with the
  // earliest start is the one right after the dropped prefix.
  EXPECT_EQ(spans.front().id, dropped + 1);
  EXPECT_EQ(spans.back().id, recorded);
}

TEST(TraceSpanTest, ClearSpansEmptiesTheStore) {
  TelemetryRegistry registry;
  { TraceSpan span(&registry, "once", "test"); }
  ASSERT_EQ(registry.CollectSpans().size(), 1u);
  // Repeat collection keeps history...
  ASSERT_EQ(registry.CollectSpans().size(), 1u);
  registry.ClearSpans();
  EXPECT_TRUE(registry.CollectSpans().empty());
}

// ---------------------------------------------------------------------
// Exporter goldens
// ---------------------------------------------------------------------

TEST(ExporterTest, ChromeTraceJsonGolden) {
  std::vector<SpanRecord> spans;
  SpanRecord engine;
  engine.id = 1;
  engine.parent = 0;
  engine.name = "engine";
  engine.category = "engine";
  engine.thread = 0;
  engine.start_ns = 1000;
  engine.end_ns = 5000;
  spans.push_back(engine);
  SpanRecord shard;
  shard.id = 2;
  shard.parent = 1;
  shard.name = "shard \"a\"\n";  // exercises the JSON escaper
  shard.category = "counting";
  shard.thread = 1;
  shard.start_ns = 2000;
  shard.end_ns = 3000;
  spans.push_back(shard);

  const std::string expected =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"name\":\"engine\",\"cat\":\"engine\",\"ph\":\"X\","
      "\"ts\":0.000,\"dur\":4.000,\"pid\":1,\"tid\":0,"
      "\"args\":{\"span\":1,\"parent\":0}},\n"
      "{\"name\":\"shard \\\"a\\\"\\n\",\"cat\":\"counting\",\"ph\":\"X\","
      "\"ts\":1.000,\"dur\":1.000,\"pid\":1,\"tid\":1,"
      "\"args\":{\"span\":2,\"parent\":1}}\n"
      "]}\n";
  EXPECT_EQ(ChromeTraceJson(spans), expected);
}

TEST(ExporterTest, ChromeTraceJsonOfNoSpansIsValidAndEmpty) {
  EXPECT_EQ(ChromeTraceJson({}),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n");
}

TEST(ExporterTest, PrometheusTextGoldenForCountersAndGauges) {
  TelemetryRegistry registry;
  registry.counter("blocks/processed")->Add(7);
  registry.gauge("engine/queue_depth")->Set(2.5);

  const std::string expected =
      "# TYPE demon_blocks_processed_total counter\n"
      "demon_blocks_processed_total 7\n"
      "# TYPE demon_engine_queue_depth gauge\n"
      "demon_engine_queue_depth 2.5\n";
  EXPECT_EQ(registry.PrometheusText(), expected);
  EXPECT_EQ(registry.Export(TelemetryFormat::kPrometheus), expected);
}

TEST(ExporterTest, PrometheusHistogramHasCumulativeBucketsAndTotals) {
  TelemetryRegistry registry;
  Histogram* histogram = registry.histogram("phase/seconds");
  histogram->Record(0.001);
  histogram->Record(0.001);

  const std::string text = registry.PrometheusText();
  EXPECT_NE(text.find("# TYPE demon_phase_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("demon_phase_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("demon_phase_seconds_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("demon_phase_seconds_sum 0.002\n"), std::string::npos);

  // One `_bucket{` line per bucket, cumulative and hence nondecreasing.
  size_t buckets = 0;
  uint64_t previous = 0;
  size_t pos = 0;
  while ((pos = text.find("_bucket{le=\"", pos)) != std::string::npos) {
    ++buckets;
    const size_t value_at = text.find("} ", pos) + 2;
    const uint64_t cumulative = std::stoull(text.substr(value_at));
    EXPECT_GE(cumulative, previous);
    previous = cumulative;
    pos = value_at;
  }
  EXPECT_EQ(buckets, Histogram::kNumBuckets);
}

TEST(ExporterTest, HistogramSummariesAreSortedAndFilled) {
  TelemetryRegistry registry;
  registry.histogram("b/seconds")->Record(0.001);
  registry.histogram("a/seconds")->Record(0.01);

  const std::vector<HistogramSummary> rows = registry.HistogramSummaries();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "a/seconds");
  EXPECT_EQ(rows[1].name, "b/seconds");
  EXPECT_EQ(rows[0].count, 1u);
  EXPECT_DOUBLE_EQ(rows[0].max, 0.01);
  EXPECT_DOUBLE_EQ(rows[0].p50, 0.01);  // clamped to max
}

// ---------------------------------------------------------------------
// ScopedTimer and the gate-dependent macros
// ---------------------------------------------------------------------

TEST(ScopedTimerTest, RecordsOnceAndStopIsIdempotent) {
  Histogram histogram;
  double first = 0.0;
  {
    ScopedTimer timer(&histogram);
    first = timer.Stop();
    EXPECT_GE(first, 0.0);
    EXPECT_DOUBLE_EQ(timer.Stop(), first);  // idempotent, same reading
  }  // destructor must not double-record
  EXPECT_EQ(histogram.count(), 1u);
  EXPECT_DOUBLE_EQ(histogram.sum(), first);

  ScopedTimer unbound;  // nullptr histogram is fine
  EXPECT_GE(unbound.Stop(), 0.0);
}

TEST(TelemetryMacros, SpanMacroFollowsTheGate) {
  TelemetryRegistry registry;
  {
    DEMON_TRACE_SPAN(span, &registry, "macro-span", "test");
    if constexpr (kEnabled) {
      EXPECT_NE(DEMON_SPAN_ID(span), 0u);
    } else {
      EXPECT_EQ(DEMON_SPAN_ID(span), 0u);
    }
  }
  const std::vector<SpanRecord> spans = registry.CollectSpans();
  if constexpr (kEnabled) {
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].name, "macro-span");
    EXPECT_EQ(spans[0].category, "test");
  } else {
    EXPECT_TRUE(spans.empty());
  }
}

TEST(TelemetryMacros, CounterAndHistogramMacrosFollowTheGate) {
  TelemetryRegistry registry;
  Counter* counter = registry.counter("macro/counter");
  Histogram* histogram = registry.histogram("macro/histogram");
  DEMON_COUNTER_ADD(counter, 3);
  DEMON_HISTOGRAM_RECORD(histogram, 0.5);
  // Null targets (a component that never got set_telemetry) must always
  // be safe. Volatile keeps the compiler from folding the null through
  // the macro's guard and warning about a null `this`.
  Counter* volatile null_counter = nullptr;
  Histogram* volatile null_histogram = nullptr;
  DEMON_COUNTER_ADD(null_counter, 1);
  DEMON_HISTOGRAM_RECORD(null_histogram, 1.0);
  (void)null_counter;  // the OFF expansion leaves them unreferenced
  (void)null_histogram;
  if constexpr (kEnabled) {
    EXPECT_EQ(counter->value(), 3u);
    EXPECT_EQ(histogram->count(), 1u);
  } else {
    EXPECT_EQ(counter->value(), 0u);
    EXPECT_EQ(histogram->count(), 0u);
  }
}

}  // namespace
}  // namespace demon::telemetry
