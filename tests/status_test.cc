#include "common/status.h"

#include <gtest/gtest.h>

namespace demon {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad minsup");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad minsup");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad minsup");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, DefaultConstructedIsError) {
  Result<int> r;
  EXPECT_FALSE(r.ok());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Caller(int x) {
  DEMON_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusMacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Caller(1).ok());
  EXPECT_EQ(Caller(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  DEMON_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(StatusMacroTest, AssignOrReturn) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseHalf(7, &out).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace demon
