#include "tidlist/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "common/random.h"
#include "tidlist/tidlist.h"
#include "tidlist/tidlist_codec.h"

// Differential tests pinning every wider kernel tier bit-identical to the
// scalar reference, and the view-level IntersectSize to a std::set_intersection
// oracle, across adversarial shapes: empty and single-element lists, runs of
// consecutive TIDs, huge gaps ending near UINT32_MAX, and lengths straddling
// the 4- and 8-lane vector widths. On hardware without AVX2/SSE4 the tier
// under test equals scalar and the tests degenerate to self-comparison —
// still valid, just not informative; CI runs them on AVX2 machines.

namespace demon {
namespace {

using simd::KernelOps;
using simd::kOutPad;

std::vector<const KernelOps*> AllTiers() {
  std::vector<const KernelOps*> tiers = {&simd::ScalarOps()};
  if (const KernelOps* sse4 = simd::internal::Sse4OpsOrNull()) {
    tiers.push_back(sse4);
  }
  if (const KernelOps* avx2 = simd::internal::Avx2OpsOrNull()) {
    tiers.push_back(avx2);
  }
  return tiers;
}

TidList Reference(const TidList& a, const TidList& b) {
  TidList out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Sorted unique list of `n` values drawn from [0, universe).
TidList RandomList(Rng* rng, size_t n, uint32_t universe) {
  std::set<uint32_t> values;
  while (values.size() < n) {
    values.insert(static_cast<uint32_t>(rng->NextUint64(universe)));
  }
  return TidList(values.begin(), values.end());
}

/// Bitmap bytes over [0, universe) with the bits of `list` set, 8-byte
/// words like the codec produces.
std::vector<uint8_t> AsBitmap(const TidList& list, uint32_t universe) {
  const EncodedTidList encoded =
      EncodeTidListAs(TidEncoding::kBitmap, list, universe);
  return encoded.bytes;
}

void CheckRawRawPair(const TidList& a, const TidList& b) {
  const TidList expected = Reference(a, b);
  for (const KernelOps* ops : AllTiers()) {
    TidList out(std::min(a.size(), b.size()) + kOutPad, 0xdeadbeef);
    const size_t n =
        ops->raw_raw(a.data(), a.size(), b.data(), b.size(), out.data());
    ASSERT_EQ(n, expected.size()) << ops->name;
    out.resize(n);
    EXPECT_EQ(out, expected) << ops->name;
    EXPECT_EQ(ops->raw_raw_size(a.data(), a.size(), b.data(), b.size()),
              expected.size())
        << ops->name;
    // Symmetric: the kernels reorder by size internally.
    EXPECT_EQ(ops->raw_raw_size(b.data(), b.size(), a.data(), a.size()),
              expected.size())
        << ops->name;
  }
}

void CheckRawBitmapPair(const TidList& raw, const TidList& dense,
                        uint32_t universe) {
  const TidList expected = Reference(raw, dense);
  const std::vector<uint8_t> bitmap = AsBitmap(dense, universe);
  for (const KernelOps* ops : AllTiers()) {
    TidList out(raw.size() + kOutPad, 0xdeadbeef);
    const size_t n = ops->raw_bitmap(raw.data(), raw.size(), bitmap.data(),
                                     bitmap.size(), out.data());
    ASSERT_EQ(n, expected.size()) << ops->name;
    out.resize(n);
    EXPECT_EQ(out, expected) << ops->name;
    EXPECT_EQ(ops->raw_bitmap_size(raw.data(), raw.size(), bitmap.data(),
                                   bitmap.size()),
              expected.size())
        << ops->name;
  }
}

void CheckBitmapBitmapPair(const TidList& a, const TidList& b,
                           uint32_t universe_a, uint32_t universe_b) {
  const TidList expected = Reference(a, b);
  const std::vector<uint8_t> bm_a = AsBitmap(a, universe_a);
  const std::vector<uint8_t> bm_b = AsBitmap(b, universe_b);
  const size_t cap = std::min(a.size(), b.size());
  for (const KernelOps* ops : AllTiers()) {
    TidList out(cap + kOutPad, 0xdeadbeef);
    const size_t n = ops->bitmap_bitmap(bm_a.data(), bm_a.size(), bm_b.data(),
                                        bm_b.size(), out.data(), cap);
    ASSERT_EQ(n, expected.size()) << ops->name;
    out.resize(n);
    EXPECT_EQ(out, expected) << ops->name;
    EXPECT_EQ(ops->bitmap_bitmap_popcount(bm_a.data(), bm_a.size(),
                                          bm_b.data(), bm_b.size()),
              expected.size())
        << ops->name;
  }
}

void CheckAllKernels(const TidList& a, const TidList& b, uint32_t universe_a,
                     uint32_t universe_b) {
  CheckRawRawPair(a, b);
  CheckRawBitmapPair(a, b, universe_b);
  CheckRawBitmapPair(b, a, universe_a);
  CheckBitmapBitmapPair(a, b, universe_a, universe_b);
}

TEST(SimdKernelsTest, ReportsAtLeastTheScalarTier) {
  EXPECT_STREQ(simd::ScalarOps().name, "scalar");
  const char* active = simd::ActiveKernelName();
  EXPECT_TRUE(std::string(active) == "scalar" ||
              std::string(active) == "sse4" || std::string(active) == "avx2");
}

TEST(SimdKernelsTest, EmptyAndSingleElementLists) {
  const TidList empty;
  const TidList one = {42};
  const TidList other = {7};
  CheckAllKernels(empty, empty, 64, 64);
  CheckAllKernels(empty, one, 64, 64);
  CheckAllKernels(one, one, 64, 64);
  CheckAllKernels(one, other, 64, 64);
}

TEST(SimdKernelsTest, ConsecutiveRunsFullAndPartialOverlap) {
  TidList a;
  TidList b;
  for (uint32_t v = 0; v < 300; ++v) a.push_back(v);
  for (uint32_t v = 150; v < 450; ++v) b.push_back(v);
  CheckAllKernels(a, a, 512, 512);
  CheckAllKernels(a, b, 512, 512);
}

TEST(SimdKernelsTest, GapsNearUint32Max) {
  // Raw-list kernels must survive values at the top of the 32-bit range
  // (the signed-compare trap); the unsigned-biased SIMD compares and the
  // gallop must agree with scalar. Bitmap kernels are exercised at a
  // smaller universe bound elsewhere — a 2^32-bit bitmap is not a real
  // encoding.
  const TidList a = {0, 1, 5, 0x7fffffffu, 0x80000000u, 0xfffffff0u,
                     0xfffffffeu, 0xffffffffu};
  const TidList b = {1, 2, 0x7fffffffu, 0x80000001u, 0xfffffff0u,
                     0xffffffffu};
  CheckRawRawPair(a, b);
  CheckRawRawPair(a, a);
}

TEST(SimdKernelsTest, LengthsStraddlingVectorWidths) {
  Rng rng(20260808);
  // 4- and 8-lane boundaries and their neighbors, plus the scalar tail of
  // a big block: every remainder path gets hit.
  const size_t lengths[] = {2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 63, 65};
  for (const size_t na : lengths) {
    for (const size_t nb : lengths) {
      const TidList a = RandomList(&rng, na, 256);
      const TidList b = RandomList(&rng, nb, 256);
      CheckAllKernels(a, b, 256, 256);
    }
  }
}

TEST(SimdKernelsTest, GallopSkewTriggersGallopPath) {
  Rng rng(7);
  // small * kGallopRatio << large, so both tiers take their gallop path.
  const TidList small = RandomList(&rng, 12, 1u << 20);
  const TidList large = RandomList(&rng, 4096, 1u << 20);
  CheckRawRawPair(small, large);
  // Make some hits certain.
  TidList with_hits = large;
  for (size_t i = 0; i < small.size(); i += 2) with_hits.push_back(small[i]);
  std::sort(with_hits.begin(), with_hits.end());
  with_hits.erase(std::unique(with_hits.begin(), with_hits.end()),
                  with_hits.end());
  CheckRawRawPair(small, with_hits);
}

TEST(SimdKernelsTest, RawValuesBeyondBitmapExtentTestAbsent) {
  // A raw side can hold values past the bitmap's universe (different
  // blocks); every tier must treat them as absent, identically.
  const TidList raw = {0, 63, 64, 127, 128, 1000, 4096, 100000};
  const TidList dense = {0, 64, 127};
  CheckRawBitmapPair(raw, dense, 128);
}

TEST(SimdKernelsTest, DifferentialFuzzAcrossDensities) {
  Rng rng(991);
  const uint32_t universes[] = {64, 1024, 65536};
  for (const uint32_t universe : universes) {
    for (int round = 0; round < 8; ++round) {
      // Densities from ~0.1% to ~80% of the universe.
      const size_t na = 1 + static_cast<size_t>(rng.NextUint64(
                                universe * 4 / 5));
      const size_t nb = 1 + static_cast<size_t>(rng.NextUint64(
                                universe * 4 / 5));
      const TidList a = RandomList(&rng, na, universe);
      const TidList b = RandomList(&rng, nb, universe);
      CheckAllKernels(a, b, universe, universe);
    }
  }
}

// The view-level pairwise IntersectSize must agree with the oracle for all
// nine encoding pairs — it is the final-fold kernel of every k-way count.
TEST(SimdKernelsTest, ViewIntersectSizeMatchesOracleForAllEncodingPairs) {
  Rng rng(17);
  const uint32_t universe = 4096;
  for (int round = 0; round < 6; ++round) {
    const size_t na = 1 + static_cast<size_t>(rng.NextUint64(universe / 2));
    const size_t nb = 1 + static_cast<size_t>(rng.NextUint64(universe / 2));
    const TidList a = RandomList(&rng, na, universe);
    const TidList b = RandomList(&rng, nb, universe);
    const uint64_t expected = Reference(a, b).size();
    for (const TidEncoding ea :
         {TidEncoding::kRaw, TidEncoding::kDelta, TidEncoding::kBitmap}) {
      for (const TidEncoding eb :
           {TidEncoding::kRaw, TidEncoding::kDelta, TidEncoding::kBitmap}) {
        const EncodedTidList enc_a = EncodeTidListAs(ea, a, universe);
        const EncodedTidList enc_b = EncodeTidListAs(eb, b, universe);
        EXPECT_EQ(IntersectSize(enc_a.View(universe), enc_b.View(universe)),
                  expected)
            << TidEncodingName(ea) << " x " << TidEncodingName(eb);
      }
    }
  }
}

}  // namespace
}  // namespace demon
