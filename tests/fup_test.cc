#include "itemsets/fup.h"

#include <gtest/gtest.h>

#include "datagen/quest_generator.h"
#include "itemsets/apriori.h"
#include "itemsets/borders.h"

namespace demon {
namespace {

using BlockPtr = std::shared_ptr<const TransactionBlock>;

std::vector<BlockPtr> MakeBlocks(size_t num_blocks, size_t block_size,
                                 size_t num_items, uint64_t seed) {
  QuestParams params;
  params.num_transactions = num_blocks * block_size;
  params.num_items = num_items;
  params.num_patterns = 40;
  params.avg_transaction_len = 8;
  params.avg_pattern_len = 3;
  params.seed = seed;
  QuestGenerator gen(params);
  std::vector<BlockPtr> blocks;
  Tid tid = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    auto block =
        std::make_shared<TransactionBlock>(gen.NextBlock(block_size, tid));
    tid += block->size();
    blocks.push_back(std::move(block));
  }
  return blocks;
}

// FUP's frequent itemsets (with counts) must equal Apriori's after every
// block — FUP is exact, it just pays with old-database rescans.
TEST(FupTest, MatchesAprioriAfterEveryBlock) {
  const auto blocks = MakeBlocks(5, 400, 60, 31);
  FupMaintainer fup(0.04, 60);
  std::vector<BlockPtr> so_far;
  for (const auto& block : blocks) {
    fup.AddBlock(block);
    so_far.push_back(block);
    const ItemsetModel truth = Apriori(so_far, 0.04, 60);
    ASSERT_EQ(fup.model().entries().size(), truth.NumFrequent());
    for (const Itemset& itemset : truth.FrequentItemsets()) {
      ASSERT_TRUE(fup.model().IsFrequent(itemset)) << ToString(itemset);
      EXPECT_EQ(fup.model().CountOf(itemset), truth.CountOf(itemset))
          << ToString(itemset);
    }
  }
}

TEST(FupTest, DistributionShiftStillExact) {
  const auto first = MakeBlocks(1, 1200, 50, 32);
  QuestParams second_params;
  second_params.num_transactions = 600;
  second_params.num_items = 50;
  second_params.num_patterns = 90;
  second_params.avg_transaction_len = 10;
  second_params.seed = 999;
  QuestGenerator second_gen(second_params);
  auto second = std::make_shared<TransactionBlock>(
      second_gen.NextBlock(600, first[0]->size()));

  FupMaintainer fup(0.03, 50);
  fup.AddBlock(first[0]);
  fup.AddBlock(second);
  EXPECT_GT(fup.last_stats().old_db_scans, 0u);

  const ItemsetModel truth = Apriori({first[0], second}, 0.03, 50);
  ASSERT_EQ(fup.model().entries().size(), truth.NumFrequent());
  for (const Itemset& itemset : truth.FrequentItemsets()) {
    EXPECT_EQ(fup.model().CountOf(itemset), truth.CountOf(itemset));
  }
}

TEST(FupTest, KeepsNoBorder) {
  const auto blocks = MakeBlocks(2, 300, 40, 33);
  FupMaintainer fup(0.05, 40);
  for (const auto& block : blocks) fup.AddBlock(block);
  EXPECT_EQ(fup.model().NumBorder(), 0u);
}

TEST(FupTest, BordersDoesStrictlyLessOldDataWorkOnQuietBlocks) {
  // When consecutive blocks share a distribution, most of FUP's levels
  // still spawn some new candidates (forcing old-db scans), while
  // BORDERS' border absorbs the noise. Compare the *candidates counted
  // against the old data* metric.
  const auto blocks = MakeBlocks(4, 500, 60, 34);
  FupMaintainer fup(0.04, 60);
  BordersOptions options;
  options.minsup = 0.04;
  options.num_items = 60;
  BordersMaintainer borders(options);

  size_t fup_candidates = 0;
  size_t borders_candidates = 0;
  for (const auto& block : blocks) {
    fup.AddBlock(block);
    borders.AddBlock(block);
    fup_candidates += fup.last_stats().candidates_counted;
    borders_candidates += borders.last_stats().new_candidates;
  }
  // Both count few candidates on stable data; BORDERS never counts more
  // than FUP (it only counts candidates that crossed the border).
  EXPECT_LE(borders_candidates, fup_candidates + 5);
}

TEST(FupTest, SingleBlockEqualsAprioriFrequents) {
  const auto blocks = MakeBlocks(1, 500, 40, 35);
  FupMaintainer fup(0.05, 40);
  fup.AddBlock(blocks[0]);
  const ItemsetModel truth = Apriori(blocks, 0.05, 40);
  EXPECT_EQ(fup.model().entries().size(), truth.NumFrequent());
  EXPECT_EQ(fup.model().num_transactions(), truth.num_transactions());
}

}  // namespace
}  // namespace demon
