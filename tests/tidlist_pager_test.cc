#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/audit.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "data/block.h"
#include "datagen/quest_generator.h"
#include "itemsets/counting_context.h"
#include "persistence/file_header.h"
#include "tidlist/extent_pager.h"
#include "tidlist/tidlist_store.h"

namespace demon {
namespace {

constexpr size_t kNumItems = 60;

std::vector<std::shared_ptr<const TransactionBlock>> MakeBlocks(
    size_t num_blocks, size_t transactions_per_block, uint64_t seed) {
  std::vector<std::shared_ptr<const TransactionBlock>> blocks;
  for (size_t b = 0; b < num_blocks; ++b) {
    QuestParams params;
    params.num_transactions = transactions_per_block;
    params.num_items = kNumItems;
    params.num_patterns = 25;
    params.seed = seed + b;
    QuestGenerator gen(params);
    blocks.push_back(
        std::make_shared<TransactionBlock>(gen.GenerateAll()));
  }
  return blocks;
}

void FillStore(const std::vector<std::shared_ptr<const TransactionBlock>>&
                   blocks,
               TidListStore* store,
               const PairMaterializationSpec* pairs = nullptr) {
  for (const auto& block : blocks) {
    store->Append(BlockTidLists::Build(*block, kNumItems, pairs));
  }
}

std::vector<Itemset> SampleItemsets(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<Itemset> itemsets;
  for (size_t i = 0; i < count; ++i) {
    const size_t k = 2 + rng.NextUint64(3);
    std::set<Item> items;
    while (items.size() < k) {
      items.insert(static_cast<Item>(rng.NextUint64(kNumItems)));
    }
    itemsets.push_back(Itemset(items.begin(), items.end()));
  }
  return itemsets;
}

std::string FileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string bytes;
  char chunk[4096];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    bytes.append(chunk, got);
  }
  std::fclose(f);
  return bytes;
}

// ---------------------------------------------------------------------------
// Budgeted residency.

TEST(ExtentPagerTest, TinyBudgetSpillsAndListsStayExact) {
  const auto blocks = MakeBlocks(8, 400, 21);

  // Explicit zero budget (not the env-reading default constructor), so the
  // reference store stays unmanaged even under the CI soak's
  // DEMON_TIDLIST_BUDGET_BYTES.
  TidListStore unbounded{TidListStoreOptions{}};
  FillStore(blocks, &unbounded);
  ASSERT_EQ(unbounded.pager(), nullptr);

  TidListStoreOptions options;
  options.memory_budget_bytes = 1024;
  TidListStore budgeted(options);
  FillStore(blocks, &budgeted);
  ASSERT_NE(budgeted.pager(), nullptr);
  const ExtentPager& pager = *budgeted.pager();

  // The workload must overflow the budget by a wide margin for the test to
  // mean anything (the acceptance bar is a 4x overcommit).
  EXPECT_GE(budgeted.TotalPayloadBytes(), 4 * options.memory_budget_bytes);
  EXPECT_GT(pager.spills(), 0u);
  EXPECT_GT(pager.evictions(), 0u);

  // Every list decodes to exactly what the unbounded store holds, faulting
  // extents back in as needed.
  for (size_t b = 0; b < blocks.size(); ++b) {
    for (Item item = 0; item < kNumItems; ++item) {
      EXPECT_EQ(budgeted.block(b).MaterializeItemList(item),
                unbounded.block(b).MaterializeItemList(item))
          << "block " << b << " item " << item;
    }
  }
  EXPECT_GT(pager.page_ins(), 0u);
  EXPECT_GE(pager.peak_resident_bytes(), pager.resident_bytes());

  // Unpinned steady state: the budget can only be exceeded by the one
  // block Adopt/fault-in keeps while it is being touched.
  size_t largest_block = 0;
  for (const auto& lists : budgeted.blocks()) {
    largest_block = std::max(largest_block, lists->payload_bytes());
  }
  EXPECT_LE(pager.resident_bytes(),
            options.memory_budget_bytes + largest_block);

  audit::AuditResult audit;
  budgeted.AuditInto(&audit);
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

TEST(ExtentPagerTest, LeaseKeepsViewsValidUnderEvictionPressure) {
  const auto blocks = MakeBlocks(6, 300, 33);
  TidListStoreOptions options;
  options.memory_budget_bytes = 512;
  TidListStore store(options);
  FillStore(blocks, &store);

  const BlockTidLists& first = store.block(0);
  const TidList expected = first.MaterializeItemList(3);
  const TidListLease lease = first.Lease();
  const TidListView view = first.ItemView(3);

  // Hammer every other block to churn the pager; the leased block must
  // stay resident and the view must keep decoding the same bytes.
  for (int round = 0; round < 3; ++round) {
    for (size_t b = 1; b < store.NumBlocks(); ++b) {
      for (Item item = 0; item < kNumItems; item += 7) {
        (void)store.block(b).MaterializeItemList(item);
      }
    }
  }
  EXPECT_TRUE(first.resident());
  TidList decoded;
  MaterializeInto(view, &decoded);
  EXPECT_EQ(decoded, expected);
}

TEST(ExtentPagerTest, StoreCopiesShareThePagerAndItsAccounting) {
  const auto blocks = MakeBlocks(4, 200, 55);
  TidListStoreOptions options;
  options.memory_budget_bytes = 2048;
  TidListStore store(options);
  FillStore(blocks, &store);

  // GEMM-style cheap copy: blocks and the pager are shared, so the copy's
  // accesses account against the same budget.
  const TidListStore copy = store;
  EXPECT_EQ(copy.pager(), store.pager());
  EXPECT_EQ(&copy.block(0), &store.block(0));
  for (size_t b = 0; b < copy.NumBlocks(); ++b) {
    EXPECT_EQ(copy.block(b).MaterializeItemList(5),
              store.block(b).MaterializeItemList(5));
  }

  audit::AuditResult audit;
  copy.AuditInto(&audit);
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

TEST(ExtentPagerTest, ResidencyOrderIsAPermutationWithResidentFirst) {
  const auto blocks = MakeBlocks(6, 250, 77);
  TidListStoreOptions options;
  options.memory_budget_bytes = 1024;
  TidListStore store(options);
  FillStore(blocks, &store);

  std::vector<uint32_t> order;
  store.ResidencyOrder(&order);
  ASSERT_EQ(order.size(), store.NumBlocks());
  std::vector<uint32_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (uint32_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
  // Once a non-resident block appears, no resident block may follow (the
  // order was resident-first at snapshot time and nothing else touches the
  // store here).
  bool seen_evicted = false;
  for (const uint32_t index : order) {
    const bool resident = store.block(index).resident();
    if (!resident) seen_evicted = true;
    if (seen_evicted) {
      EXPECT_FALSE(resident);
    }
  }
}

// ---------------------------------------------------------------------------
// Counting equivalence: budgets shape paging, never counts.

TEST(ExtentPagerTest, CountsAreBitIdenticalAcrossBudgetsAndStrategies) {
  const auto blocks = MakeBlocks(6, 350, 91);
  const auto itemsets = SampleItemsets(80, 17);

  PairMaterializationSpec pairs;
  for (Item a = 0; a < 12; ++a) {
    for (Item b = a + 1; b < 12; ++b) pairs.pairs.push_back({a, b});
  }

  TidListStore unbounded{TidListStoreOptions{}};
  FillStore(blocks, &unbounded, &pairs);
  TidListStoreOptions options;
  options.memory_budget_bytes = 1500;
  TidListStore budgeted(options);
  FillStore(blocks, &budgeted, &pairs);
  ASSERT_GE(budgeted.TotalPayloadBytes(), 4 * options.memory_budget_bytes);

  CountingContext sequential;
  const std::vector<uint64_t> reference =
      sequential.PtScan(itemsets, blocks);
  EXPECT_EQ(sequential.Ecut(itemsets, unbounded, false), reference);
  EXPECT_EQ(sequential.Ecut(itemsets, budgeted, false), reference);
  EXPECT_EQ(sequential.Ecut(itemsets, unbounded, true), reference);
  EXPECT_EQ(sequential.Ecut(itemsets, budgeted, true), reference);

  ThreadPool pool(4);
  CountingContext parallel(&pool);
  EXPECT_EQ(parallel.Ecut(itemsets, budgeted, false), reference);
  EXPECT_EQ(parallel.Ecut(itemsets, budgeted, true), reference);
  EXPECT_GT(budgeted.pager()->page_ins(), 0u);
}

// Two independent stores (think: two monitors in one fleet) configured
// with the SAME explicit spill directory must not collide: spill names
// carry a per-pager id, so one pager's eviction/cleanup can never clobber
// or delete the other's spill files.
TEST(ExtentPagerTest, PagersSharingASpillDirectoryDoNotCollide) {
  const auto blocks = MakeBlocks(5, 300, 77);
  const std::string spill_dir = ::testing::TempDir() + "/demon-shared-spill";

  TidListStore unbounded{TidListStoreOptions{}};
  FillStore(blocks, &unbounded);

  {
    TidListStoreOptions options;
    options.memory_budget_bytes = 512;
    options.spill_dir = spill_dir;
    TidListStore store_a(options);
    TidListStore store_b(options);
    FillStore(blocks, &store_a);
    FillStore(blocks, &store_b);
    ASSERT_NE(store_a.pager(), store_b.pager());
    EXPECT_GT(store_a.pager()->spills(), 0u);
    EXPECT_GT(store_b.pager()->spills(), 0u);

    // Interleave fault-ins across the two stores; every list must still
    // decode to the unbounded truth (a collision would surface as a
    // missing spill file abort or as another block's bytes).
    for (size_t b = 0; b < blocks.size(); ++b) {
      for (Item item = 0; item < kNumItems; item += 7) {
        const TidList expected =
            unbounded.block(b).MaterializeItemList(item);
        EXPECT_EQ(store_a.block(b).MaterializeItemList(item), expected);
        EXPECT_EQ(store_b.block(b).MaterializeItemList(item), expected);
      }
    }

    // Dropping every block of one store (removing its spill files) must
    // not disturb the other's.
    store_a.DropOldest(blocks.size());
    for (size_t b = 0; b < blocks.size(); ++b) {
      EXPECT_EQ(store_b.block(b).MaterializeItemList(3),
                unbounded.block(b).MaterializeItemList(3));
    }
  }
  // Both stores gone: every spill file was cleaned up, so the shared
  // (explicit, hence not auto-removed) directory is empty and removable.
  EXPECT_EQ(::rmdir(spill_dir.c_str()), 0);
}

// ---------------------------------------------------------------------------
// Persistence: the v2 format and the legacy v1 reader.

TEST(TidListBlockFileTest, V2WritesAreByteDeterministicEvenWhenEvicted) {
  const auto blocks = MakeBlocks(3, 300, 13);
  PairMaterializationSpec pairs;
  pairs.pairs = {{0, 1}, {2, 3}};

  TidListStore unbounded{TidListStoreOptions{}};
  FillStore(blocks, &unbounded, &pairs);
  TidListStoreOptions options;
  options.memory_budget_bytes = 256;  // evicts everything not in use
  TidListStore budgeted(options);
  FillStore(blocks, &budgeted, &pairs);

  const std::string path_a = ::testing::TempDir() + "/tidlists_a.bin";
  const std::string path_b = ::testing::TempDir() + "/tidlists_b.bin";
  for (size_t b = 0; b < blocks.size(); ++b) {
    // WriteToFile takes its own lease, so it works on evicted blocks, and
    // the bytes never depend on the budget or residency history.
    ASSERT_TRUE(unbounded.block(b).WriteToFile(path_a).ok());
    ASSERT_TRUE(budgeted.block(b).WriteToFile(path_b).ok());
    EXPECT_EQ(FileBytes(path_a), FileBytes(path_b)) << "block " << b;

    auto reread = BlockTidLists::ReadFromFile(path_b);
    ASSERT_TRUE(reread.ok()) << reread.status();
    const BlockTidLists& loaded = *reread.value();
    EXPECT_EQ(loaded.num_transactions(),
              unbounded.block(b).num_transactions());
    for (Item item = 0; item < kNumItems; ++item) {
      EXPECT_EQ(loaded.MaterializeItemList(item),
                unbounded.block(b).MaterializeItemList(item));
    }
    EXPECT_TRUE(loaded.HasPairList(0, 1));
    EXPECT_EQ(loaded.MaterializePairList(0, 1),
              unbounded.block(b).MaterializePairList(0, 1));
  }
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

namespace v1 {

bool WriteU64(std::FILE* f, uint64_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool WriteList(std::FILE* f, const TidList& list) {
  if (!WriteU64(f, list.size())) return false;
  return list.empty() ||
         std::fwrite(list.data(), sizeof(uint32_t), list.size(), f) ==
             list.size();
}

/// Emits the legacy bulk-dump layout: header v1, then counts, then
/// length-prefixed uint32 lists (items, then key+list pairs).
void WriteFile(const std::string& path, size_t num_transactions,
               const std::vector<TidList>& item_lists,
               const std::vector<std::pair<uint64_t, TidList>>& pair_lists) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  persistence::FileHeader header;
  header.format_id =
      static_cast<uint32_t>(persistence::FormatId::kTidListBlock);
  header.version = 1;
  ASSERT_TRUE(header.WriteTo(f).ok());
  ASSERT_TRUE(WriteU64(f, num_transactions));
  ASSERT_TRUE(WriteU64(f, item_lists.size()));
  ASSERT_TRUE(WriteU64(f, pair_lists.size()));
  for (const TidList& list : item_lists) ASSERT_TRUE(WriteList(f, list));
  for (const auto& [key, list] : pair_lists) {
    ASSERT_TRUE(WriteU64(f, key));
    ASSERT_TRUE(WriteList(f, list));
  }
  std::fclose(f);
}

}  // namespace v1

TEST(TidListBlockFileTest, LegacyV1FilesAreReadAndReencoded) {
  const std::string path = ::testing::TempDir() + "/tidlists_v1.bin";
  const std::vector<TidList> item_lists = {
      {0, 2, 9}, {}, {1, 2, 3, 4, 5, 6, 7, 8, 9}};
  const uint64_t key = (uint64_t{0} << 32) | 2;  // pair {0, 2}
  v1::WriteFile(path, 10, item_lists, {{key, TidList{2, 9}}});

  auto result = BlockTidLists::ReadFromFile(path);
  ASSERT_TRUE(result.ok()) << result.status();
  const BlockTidLists& lists = *result.value();
  EXPECT_EQ(lists.num_transactions(), 10u);
  EXPECT_EQ(lists.num_items(), 3u);
  for (size_t i = 0; i < item_lists.size(); ++i) {
    EXPECT_EQ(lists.MaterializeItemList(static_cast<Item>(i)), item_lists[i]);
  }
  ASSERT_TRUE(lists.HasPairList(0, 2));
  EXPECT_EQ(lists.MaterializePairList(0, 2), (TidList{2, 9}));
  // Writing it back produces the current (v2) format.
  const std::string v2_path = ::testing::TempDir() + "/tidlists_v1_up.bin";
  ASSERT_TRUE(lists.WriteToFile(v2_path).ok());
  auto reread = BlockTidLists::ReadFromFile(v2_path);
  ASSERT_TRUE(reread.ok()) << reread.status();
  EXPECT_EQ(reread.value()->MaterializeItemList(2), item_lists[2]);
  std::remove(path.c_str());
  std::remove(v2_path.c_str());
}

TEST(TidListBlockFileTest, CorruptV1FilesAreDataLossNotAborts) {
  const std::string path = ::testing::TempDir() + "/tidlists_v1_bad.bin";
  // Unsorted item list: must be rejected before re-encoding (a bitmap
  // encode of it would otherwise trip an internal check).
  v1::WriteFile(path, 10, {{5, 3, 1}}, {});
  auto unsorted = BlockTidLists::ReadFromFile(path);
  EXPECT_EQ(unsorted.status().code(), StatusCode::kDataLoss);
  // Offset beyond the transaction count.
  v1::WriteFile(path, 4, {{1, 9}}, {});
  auto out_of_range = BlockTidLists::ReadFromFile(path);
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kDataLoss);
  std::remove(path.c_str());
}

TEST(TidListBlockFileTest, TruncatedV2FilesAreDataLoss) {
  const auto blocks = MakeBlocks(1, 200, 3);
  auto lists = BlockTidLists::Build(*blocks[0], kNumItems);
  const std::string path = ::testing::TempDir() + "/tidlists_trunc.bin";
  ASSERT_TRUE(lists->WriteToFile(path).ok());
  const std::string bytes = FileBytes(path);
  // Chop the file at several depths: inside the payload, inside the
  // directory, and inside the counts. Every cut must read as DataLoss.
  for (const size_t keep :
       {bytes.size() - 3, bytes.size() / 2, persistence::FileHeader::kBytes + 9,
        size_t{11}}) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, keep, f), keep);
    std::fclose(f);
    auto result = BlockTidLists::ReadFromFile(path);
    EXPECT_FALSE(result.ok()) << "kept " << keep << " bytes";
    EXPECT_EQ(result.status().code(), StatusCode::kDataLoss) << keep;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace demon
