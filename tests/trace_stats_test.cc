// Statistical checks on the synthetic proxy-trace generator: the regime
// structure it promises (the substitution's contract, see DESIGN.md) must
// actually be present in the emitted requests, since the Figure 9/10
// reproductions depend on it.

#include <gtest/gtest.h>

#include <array>
#include <map>

#include "common/stats.h"
#include "datagen/trace_generator.h"

namespace demon {
namespace {

using Regime = TraceGenerator::Regime;

std::map<Regime, std::vector<double>> TypeHistogramsByRegime(
    const std::vector<TraceRequest>& trace) {
  std::map<Regime, std::vector<double>> histograms;
  for (const TraceRequest& request : trace) {
    const int hour = static_cast<int>(request.timestamp / 3600);
    auto& histogram = histograms[TraceGenerator::RegimeAt(hour)];
    if (histogram.empty()) {
      histogram.assign(TraceGenerator::kNumObjectTypes, 0.0);
    }
    histogram[request.object_type] += 1.0;
  }
  return histograms;
}

double Sum(const std::vector<double>& v) {
  double total = 0.0;
  for (double x : v) total += x;
  return total;
}

TEST(TraceStatsTest, RegimesHaveDistinctTypeMixes) {
  TraceGenerator::Params params;
  params.rate_scale = 0.05;
  params.seed = 3;
  TraceGenerator gen(params);
  const auto trace = gen.Generate();
  const auto histograms = TypeHistogramsByRegime(trace);

  // Workday vs weekend vs anomaly must each be overwhelmingly rejected as
  // same-source by the chi-square test.
  const auto& workday = histograms.at(Regime::kWorkdayDay);
  const auto& weekend = histograms.at(Regime::kWeekend);
  const auto& anomaly = histograms.at(Regime::kAnomaly);
  const auto wd_we =
      ChiSquareHomogeneity(workday, Sum(workday), weekend, Sum(weekend));
  const auto wd_an =
      ChiSquareHomogeneity(workday, Sum(workday), anomaly, Sum(anomaly));
  const auto we_an =
      ChiSquareHomogeneity(weekend, Sum(weekend), anomaly, Sum(anomaly));
  EXPECT_LT(wd_we.p_value, 1e-6);
  EXPECT_LT(wd_an.p_value, 1e-6);
  EXPECT_LT(we_an.p_value, 1e-6);
}

TEST(TraceStatsTest, NightMatchesWeekendByConstruction) {
  // §5.3's "late night weekday blocks can be similar to weekend blocks"
  // is engineered via identical night/weekend mixes; two large samples
  // from those regimes must NOT be rejected.
  TraceGenerator::Params params;
  params.rate_scale = 0.05;
  params.seed = 4;
  TraceGenerator gen(params);
  const auto trace = gen.Generate();
  const auto histograms = TypeHistogramsByRegime(trace);
  const auto& night = histograms.at(Regime::kNight);
  const auto& weekend = histograms.at(Regime::kWeekend);
  const auto test =
      ChiSquareHomogeneity(night, Sum(night), weekend, Sum(weekend));
  EXPECT_GT(test.p_value, 0.001);
}

TEST(TraceStatsTest, RequestRatesVaryByRegime) {
  TraceGenerator::Params params;
  params.rate_scale = 0.05;
  params.seed = 5;
  TraceGenerator gen(params);
  const auto trace = gen.Generate();

  std::map<Regime, size_t> request_count;
  std::map<Regime, size_t> hour_count;
  for (int hour = TraceGenerator::kTraceStartHour;
       hour < TraceGenerator::kTraceEndHour; ++hour) {
    ++hour_count[TraceGenerator::RegimeAt(hour)];
  }
  for (const TraceRequest& request : trace) {
    ++request_count[TraceGenerator::RegimeAt(
        static_cast<int>(request.timestamp / 3600))];
  }
  const double workday_rate =
      static_cast<double>(request_count[Regime::kWorkdayDay]) /
      static_cast<double>(hour_count[Regime::kWorkdayDay]);
  const double night_rate =
      static_cast<double>(request_count[Regime::kNight]) /
      static_cast<double>(hour_count[Regime::kNight]);
  // Daytime traffic is several times night traffic (rates 3200 vs 500).
  EXPECT_GT(workday_rate, 4.0 * night_rate);
}

TEST(TraceStatsTest, SizeBucketsHeavierOffHours) {
  // Night/weekend regimes use a heavier-tailed size distribution
  // (geometric p=0.06 vs 0.20): the mean bucket must be clearly larger.
  TraceGenerator::Params params;
  params.rate_scale = 0.05;
  params.seed = 6;
  TraceGenerator gen(params);
  const auto trace = gen.Generate();
  double workday_sum = 0.0;
  double workday_n = 0.0;
  double weekend_sum = 0.0;
  double weekend_n = 0.0;
  for (const TraceRequest& request : trace) {
    const Regime regime = TraceGenerator::RegimeAt(
        static_cast<int>(request.timestamp / 3600));
    if (regime == Regime::kWorkdayDay) {
      workday_sum += request.size_bucket;
      workday_n += 1.0;
    } else if (regime == Regime::kWeekend) {
      weekend_sum += request.size_bucket;
      weekend_n += 1.0;
    }
  }
  EXPECT_GT(weekend_sum / weekend_n, 2.0 * (workday_sum / workday_n));
}

TEST(TraceStatsTest, DeterministicForSeed) {
  TraceGenerator::Params params;
  params.rate_scale = 0.01;
  params.seed = 7;
  TraceGenerator a(params);
  TraceGenerator b(params);
  const auto ta = a.Generate();
  const auto tb = b.Generate();
  ASSERT_EQ(ta.size(), tb.size());
  for (size_t i = 0; i < ta.size(); i += 97) {
    EXPECT_EQ(ta[i].timestamp, tb[i].timestamp);
    EXPECT_EQ(ta[i].object_type, tb[i].object_type);
    EXPECT_EQ(ta[i].size_bucket, tb[i].size_bucket);
  }
}

}  // namespace
}  // namespace demon
