#include <gtest/gtest.h>

#include "data/block.h"
#include "data/point.h"
#include "data/snapshot.h"
#include "data/transaction.h"

namespace demon {
namespace {

TEST(TransactionTest, NormalizesSortsAndDedupes) {
  Transaction t({5, 1, 3, 5, 1});
  EXPECT_EQ(t.items(), (std::vector<Item>{1, 3, 5}));
  EXPECT_EQ(t.size(), 3u);
}

TEST(TransactionTest, Contains) {
  Transaction t({2, 4, 8});
  EXPECT_TRUE(t.Contains(4));
  EXPECT_FALSE(t.Contains(5));
}

TEST(TransactionTest, ContainsAll) {
  Transaction t({1, 3, 5, 7, 9});
  const std::vector<Item> sub = {3, 7};
  const std::vector<Item> not_sub = {3, 6};
  EXPECT_TRUE(t.ContainsAll(sub.begin(), sub.end()));
  EXPECT_FALSE(t.ContainsAll(not_sub.begin(), not_sub.end()));
  const std::vector<Item> empty;
  EXPECT_TRUE(t.ContainsAll(empty.begin(), empty.end()));
}

TEST(TransactionBlockTest, TidsAreImplicit) {
  TransactionBlock block({Transaction({1}), Transaction({2})}, 100);
  EXPECT_EQ(block.size(), 2u);
  EXPECT_EQ(block.TidAt(0), 100u);
  EXPECT_EQ(block.TidAt(1), 101u);
}

TEST(TransactionBlockTest, TotalItemOccurrences) {
  TransactionBlock block({Transaction({1, 2}), Transaction({3})}, 0);
  EXPECT_EQ(block.TotalItemOccurrences(), 3u);
}

TEST(PointBlockTest, FlatLayout) {
  PointBlock block({1.0, 2.0, 3.0, 4.0}, 2);
  EXPECT_EQ(block.size(), 2u);
  EXPECT_EQ(block.dim(), 2u);
  EXPECT_DOUBLE_EQ(block.PointAt(1)[0], 3.0);
  EXPECT_DOUBLE_EQ(block.PointAt(1)[1], 4.0);
}

TEST(PointBlockTest, FromPoints) {
  PointBlock block = PointBlock::FromPoints({{1.0, 2.0}, {3.0, 4.0}}, 2);
  EXPECT_EQ(block.size(), 2u);
  EXPECT_DOUBLE_EQ(block.PointAt(0)[1], 2.0);
}

TEST(PointTest, Distances) {
  const Point a = {0.0, 0.0};
  const Point b = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(Distance(a, b), 5.0);
}

TEST(SnapshotTest, AppendAssignsIncreasingIds) {
  TransactionSnapshot snapshot;
  EXPECT_TRUE(snapshot.empty());
  const BlockId id1 = snapshot.Append(TransactionBlock({Transaction({1})}, 0));
  const BlockId id2 = snapshot.Append(TransactionBlock({Transaction({2})}, 1));
  EXPECT_EQ(id1, 1u);
  EXPECT_EQ(id2, 2u);
  EXPECT_EQ(snapshot.latest_id(), 2u);
  EXPECT_EQ(snapshot.oldest_id(), 1u);
  EXPECT_EQ(snapshot.block(1)->info().id, 1u);
}

TEST(SnapshotTest, MostRecentWindow) {
  TransactionSnapshot snapshot;
  for (int i = 0; i < 5; ++i) {
    snapshot.Append(TransactionBlock({Transaction({static_cast<Item>(i)})},
                                     static_cast<Tid>(i)));
  }
  const auto window = snapshot.MostRecentWindow(3);
  ASSERT_EQ(window.size(), 3u);
  EXPECT_EQ(window[0]->info().id, 3u);
  EXPECT_EQ(window[2]->info().id, 5u);
  // Window larger than the snapshot returns everything (t < w case, §2.2).
  EXPECT_EQ(snapshot.MostRecentWindow(10).size(), 5u);
}

TEST(SnapshotTest, DropOldest) {
  TransactionSnapshot snapshot;
  for (int i = 0; i < 4; ++i) {
    snapshot.Append(TransactionBlock({Transaction({static_cast<Item>(i)})},
                                     static_cast<Tid>(i)));
  }
  snapshot.Drop(2);
  EXPECT_EQ(snapshot.NumBlocks(), 2u);
  EXPECT_EQ(snapshot.oldest_id(), 3u);
  EXPECT_EQ(snapshot.latest_id(), 4u);
  EXPECT_EQ(snapshot.block(3)->info().id, 3u);
}

TEST(SnapshotTest, TotalRecords) {
  TransactionSnapshot snapshot;
  snapshot.Append(TransactionBlock({Transaction({1}), Transaction({2})}, 0));
  snapshot.Append(TransactionBlock({Transaction({3})}, 2));
  EXPECT_EQ(snapshot.TotalRecords(), 3u);
}

}  // namespace
}  // namespace demon
