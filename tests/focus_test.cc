#include "deviation/focus.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/cluster_generator.h"
#include "datagen/quest_generator.h"

namespace demon {
namespace {

TransactionBlock QuestBlock(size_t n, uint64_t seed, size_t num_patterns = 40,
                            size_t num_items = 60) {
  QuestParams params;
  params.num_transactions = n;
  params.num_items = num_items;
  params.num_patterns = num_patterns;
  params.avg_transaction_len = 8;
  params.avg_pattern_len = 3;
  params.seed = seed;
  QuestGenerator gen(params);
  return gen.GenerateAll();
}

FocusItemsets::Options ItemsetOptions() {
  FocusItemsets::Options options;
  options.minsup = 0.03;
  options.num_items = 60;
  return options;
}

TEST(FocusItemsetsTest, IdenticalBlocksHaveZeroDeviation) {
  const TransactionBlock block = QuestBlock(1000, 60);
  FocusItemsets focus(ItemsetOptions());
  const DeviationResult result = focus.Compare(block, block);
  EXPECT_DOUBLE_EQ(result.deviation, 0.0);
  EXPECT_NEAR(result.significance, 0.0, 1e-9);
  EXPECT_GT(result.num_regions, 0u);
  EXPECT_FALSE(result.scanned_blocks);
}

TEST(FocusItemsetsTest, SameDistributionLowDeviation) {
  // Two blocks drawn from the same generator (different stretches).
  QuestParams params;
  params.num_transactions = 4000;
  params.num_items = 60;
  params.num_patterns = 40;
  params.avg_transaction_len = 8;
  params.avg_pattern_len = 3;
  params.seed = 61;
  QuestGenerator gen(params);
  const TransactionBlock b1 = gen.NextBlock(2000, 0);
  const TransactionBlock b2 = gen.NextBlock(2000, 2000);
  FocusItemsets focus(ItemsetOptions());
  const DeviationResult result = focus.Compare(b1, b2);
  EXPECT_LT(result.deviation, 0.15);
  EXPECT_LT(result.significance, 0.999);
}

TEST(FocusItemsetsTest, DifferentDistributionsHighDeviation) {
  // Different pattern tables: clearly different generating processes.
  const TransactionBlock b1 = QuestBlock(2000, 62, /*num_patterns=*/40);
  const TransactionBlock b2 = QuestBlock(2000, 63, /*num_patterns=*/40);
  FocusItemsets focus(ItemsetOptions());
  const DeviationResult result = focus.Compare(b1, b2);
  EXPECT_GT(result.deviation, 0.3);
  EXPECT_GT(result.significance, 0.99);
  EXPECT_TRUE(result.scanned_blocks);
}

TEST(FocusItemsetsTest, SymmetricInArguments) {
  const TransactionBlock b1 = QuestBlock(1500, 64);
  const TransactionBlock b2 = QuestBlock(1500, 65);
  FocusItemsets focus(ItemsetOptions());
  const DeviationResult ab = focus.Compare(b1, b2);
  const DeviationResult ba = focus.Compare(b2, b1);
  EXPECT_NEAR(ab.deviation, ba.deviation, 1e-12);
  EXPECT_NEAR(ab.significance, ba.significance, 1e-12);
  EXPECT_EQ(ab.num_regions, ba.num_regions);
}

TEST(FocusItemsetsTest, CachedModelPathMatchesDirectPath) {
  const TransactionBlock b1 = QuestBlock(1000, 66);
  const TransactionBlock b2 = QuestBlock(1000, 67);
  FocusItemsets focus(ItemsetOptions());
  const ItemsetModel m1 = focus.MineModel(b1);
  const ItemsetModel m2 = focus.MineModel(b2);
  const DeviationResult direct = focus.Compare(b1, b2);
  const DeviationResult cached = focus.CompareWithModels(b1, m1, b2, m2);
  EXPECT_DOUBLE_EQ(direct.deviation, cached.deviation);
  EXPECT_DOUBLE_EQ(direct.significance, cached.significance);
}

TEST(FocusItemsetsTest, DeviationBoundedByOne) {
  // Completely disjoint item universes: deviation at the upper bound.
  std::vector<Transaction> t1;
  std::vector<Transaction> t2;
  for (int i = 0; i < 200; ++i) {
    t1.push_back(Transaction({0, 1}));
    t2.push_back(Transaction({10, 11}));
  }
  const TransactionBlock b1(std::move(t1), 0);
  const TransactionBlock b2(std::move(t2), 200);
  FocusItemsets::Options options;
  options.minsup = 0.1;
  options.num_items = 20;
  FocusItemsets focus(options);
  const DeviationResult result = focus.Compare(b1, b2);
  EXPECT_NEAR(result.deviation, 1.0, 1e-9);
  EXPECT_GT(result.significance, 0.999);
}

TEST(FocusClustersTest, SameVsShiftedClusters) {
  ClusterGenParams params;
  params.num_points = 3000;
  params.num_clusters = 4;
  params.dim = 2;
  params.seed = 68;
  ClusterGenerator gen(params);
  const PointBlock b1 = gen.NextBlock(1500);
  const PointBlock b2 = gen.NextBlock(1500);

  // A block from a different layout.
  ClusterGenParams other = params;
  other.seed = 99;
  ClusterGenerator other_gen(other);
  const PointBlock b3 = other_gen.NextBlock(1500);

  FocusClusters::Options options;
  options.dim = 2;
  options.birch.num_clusters = 4;
  options.birch.tree.max_leaf_entries = 128;
  FocusClusters focus(options);

  const DeviationResult same = focus.Compare(b1, b2);
  const DeviationResult different = focus.Compare(b1, b3);
  EXPECT_LT(same.deviation, different.deviation);
  EXPECT_GT(different.significance, 0.99);
}

TEST(FocusClustersTest, IdenticalBlocksAgree) {
  ClusterGenParams params;
  params.num_points = 1000;
  params.num_clusters = 3;
  params.dim = 2;
  params.seed = 70;
  ClusterGenerator gen(params);
  const PointBlock block = gen.GenerateAll();
  FocusClusters::Options options;
  options.dim = 2;
  options.birch.num_clusters = 3;
  FocusClusters focus(options);
  const DeviationResult result = focus.Compare(block, block);
  EXPECT_NEAR(result.deviation, 0.0, 1e-12);
}

}  // namespace
}  // namespace demon
