#include "itemsets/borders.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/quest_generator.h"
#include "itemsets/apriori.h"

namespace demon {
namespace {

using BlockPtr = std::shared_ptr<const TransactionBlock>;

// Asserts that two models are identical: same tracked itemsets, counts and
// frequency flags (the paper's correctness claim for BORDERS maintenance).
void ExpectModelsEqual(const ItemsetModel& actual,
                       const ItemsetModel& expected) {
  EXPECT_EQ(actual.num_transactions(), expected.num_transactions());
  ASSERT_EQ(actual.entries().size(), expected.entries().size());
  for (const auto& [itemset, entry] : expected.entries()) {
    const auto it = actual.entries().find(itemset);
    ASSERT_NE(it, actual.entries().end()) << "missing " << ToString(itemset);
    EXPECT_EQ(it->second.count, entry.count) << ToString(itemset);
    EXPECT_EQ(it->second.frequent, entry.frequent) << ToString(itemset);
  }
}

std::vector<BlockPtr> MakeQuestBlocks(size_t num_blocks, size_t block_size,
                                      size_t num_items, uint64_t seed,
                                      double avg_len = 8.0) {
  QuestParams params;
  params.num_transactions = num_blocks * block_size;
  params.num_items = num_items;
  params.num_patterns = 40;
  params.avg_transaction_len = avg_len;
  params.avg_pattern_len = 3;
  params.seed = seed;
  QuestGenerator gen(params);
  std::vector<BlockPtr> blocks;
  Tid tid = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    auto block =
        std::make_shared<TransactionBlock>(gen.NextBlock(block_size, tid));
    tid += block->size();
    blocks.push_back(std::move(block));
  }
  return blocks;
}

class BordersStrategyTest
    : public ::testing::TestWithParam<CountingStrategy> {};

TEST_P(BordersStrategyTest, IncrementalEqualsFromScratchAfterEveryBlock) {
  const auto blocks = MakeQuestBlocks(5, 400, 60, 21);
  BordersOptions options;
  options.minsup = 0.04;
  options.num_items = 60;
  options.strategy = GetParam();
  BordersMaintainer maintainer(options);

  std::vector<BlockPtr> so_far;
  for (const auto& block : blocks) {
    maintainer.AddBlock(block);
    so_far.push_back(block);
    const ItemsetModel scratch =
        Apriori(so_far, options.minsup, options.num_items);
    ExpectModelsEqual(maintainer.model(), scratch);
  }
}

TEST_P(BordersStrategyTest, DistributionShiftBetweenBlocks) {
  // Second-block distribution differs (the Figs 4-7 setting): more model
  // churn exercises promotion/demotion paths.
  const auto first = MakeQuestBlocks(1, 1500, 60, 22, /*avg_len=*/8.0);
  QuestParams second_params;
  second_params.num_transactions = 500;
  second_params.num_items = 60;
  second_params.num_patterns = 80;  // different pattern table
  second_params.avg_transaction_len = 10.0;
  second_params.avg_pattern_len = 4;
  second_params.seed = 1234;
  QuestGenerator second_gen(second_params);
  auto second = std::make_shared<TransactionBlock>(
      second_gen.NextBlock(500, first[0]->size()));

  BordersOptions options;
  options.minsup = 0.03;
  options.num_items = 60;
  options.strategy = GetParam();
  BordersMaintainer maintainer(options);
  maintainer.AddBlock(first[0]);
  maintainer.AddBlock(second);

  const ItemsetModel scratch =
      Apriori({first[0], second}, options.minsup, options.num_items);
  ExpectModelsEqual(maintainer.model(), scratch);
  EXPECT_GT(maintainer.last_stats().update_iterations +
                maintainer.last_stats().new_candidates,
            0u);
}

TEST_P(BordersStrategyTest, RemoveOldestBlockMatchesFromScratch) {
  const auto blocks = MakeQuestBlocks(4, 300, 50, 23);
  BordersOptions options;
  options.minsup = 0.05;
  options.num_items = 50;
  options.strategy = GetParam();
  BordersMaintainer maintainer(options);
  for (const auto& block : blocks) maintainer.AddBlock(block);

  maintainer.RemoveOldestBlock();
  ExpectModelsEqual(maintainer.model(),
                    Apriori({blocks[1], blocks[2], blocks[3]},
                            options.minsup, options.num_items));
  maintainer.RemoveOldestBlock();
  ExpectModelsEqual(
      maintainer.model(),
      Apriori({blocks[2], blocks[3]}, options.minsup, options.num_items));
}

TEST_P(BordersStrategyTest, SlidingWindowAddAndRemove) {
  // AuM-style usage (§3.2.4): add new block, drop oldest, repeatedly.
  const auto blocks = MakeQuestBlocks(6, 250, 40, 24);
  BordersOptions options;
  options.minsup = 0.05;
  options.num_items = 40;
  options.strategy = GetParam();
  BordersMaintainer maintainer(options);
  maintainer.AddBlock(blocks[0]);
  maintainer.AddBlock(blocks[1]);
  maintainer.AddBlock(blocks[2]);
  for (size_t next = 3; next < blocks.size(); ++next) {
    maintainer.AddBlock(blocks[next]);
    maintainer.RemoveOldestBlock();
    const std::vector<BlockPtr> window(blocks.begin() + (next - 2),
                                       blocks.begin() + next + 1);
    ExpectModelsEqual(maintainer.model(),
                      Apriori(window, options.minsup, options.num_items));
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, BordersStrategyTest,
                         ::testing::Values(CountingStrategy::kPtScan,
                                           CountingStrategy::kEcut,
                                           CountingStrategy::kEcutPlus),
                         [](const auto& info) {
                           switch (info.param) {
                             case CountingStrategy::kPtScan:
                               return "PtScan";
                             case CountingStrategy::kEcut:
                               return "Ecut";
                             case CountingStrategy::kEcutPlus:
                               return "EcutPlus";
                           }
                           return "Unknown";
                         });

TEST(BordersTest, RaisingMinSupportShrinksModelConsistently) {
  const auto blocks = MakeQuestBlocks(3, 400, 50, 25);
  BordersOptions options;
  options.minsup = 0.03;
  options.num_items = 50;
  BordersMaintainer maintainer(options);
  for (const auto& block : blocks) maintainer.AddBlock(block);

  maintainer.ChangeMinSupport(0.08);
  ExpectModelsEqual(maintainer.model(), Apriori(blocks, 0.08, 50));
}

TEST(BordersTest, LoweringMinSupportGrowsModelConsistently) {
  const auto blocks = MakeQuestBlocks(3, 400, 50, 26);
  BordersOptions options;
  options.minsup = 0.08;
  options.num_items = 50;
  options.strategy = CountingStrategy::kEcut;
  BordersMaintainer maintainer(options);
  for (const auto& block : blocks) maintainer.AddBlock(block);

  maintainer.ChangeMinSupport(0.03);
  ExpectModelsEqual(maintainer.model(), Apriori(blocks, 0.03, 50));
}

TEST(BordersTest, UnselectedBlocksAreSimplySkipped) {
  // BSS semantics (§3.1.1): if b_{t+1} = 0 the model carries over; the
  // caller just does not pass the block in. The model must then equal the
  // from-scratch model over the selected blocks only.
  const auto blocks = MakeQuestBlocks(4, 300, 40, 27);
  BordersOptions options;
  options.minsup = 0.05;
  options.num_items = 40;
  BordersMaintainer maintainer(options);
  maintainer.AddBlock(blocks[0]);
  maintainer.AddBlock(blocks[2]);  // skip blocks[1] and blocks[3]
  ExpectModelsEqual(maintainer.model(),
                    Apriori({blocks[0], blocks[2]}, options.minsup, 40));
}

TEST(BordersTest, StatsReportPhases) {
  const auto blocks = MakeQuestBlocks(2, 500, 50, 28);
  BordersOptions options;
  options.minsup = 0.04;
  options.num_items = 50;
  BordersMaintainer maintainer(options);
  maintainer.AddBlock(blocks[0]);
  maintainer.AddBlock(blocks[1]);
  const auto& stats = maintainer.last_stats();
  EXPECT_GE(stats.detection_seconds, 0.0);
  EXPECT_GE(stats.update_seconds, 0.0);
}

TEST(BordersTest, EcutPlusBudgetZeroStillCorrect) {
  // With a zero pair budget ECUT+ degenerates to ECUT but must stay exact.
  const auto blocks = MakeQuestBlocks(3, 300, 40, 29);
  BordersOptions options;
  options.minsup = 0.05;
  options.num_items = 40;
  options.strategy = CountingStrategy::kEcutPlus;
  options.pair_budget_fraction = 0.0;
  BordersMaintainer maintainer(options);
  for (const auto& block : blocks) maintainer.AddBlock(block);
  ExpectModelsEqual(maintainer.model(), Apriori(blocks, options.minsup, 40));
}

TEST(BordersTest, ManySmallBlocksStressPromotionDemotionCycles) {
  // Tiny skewed blocks make itemsets oscillate across the threshold.
  Rng rng(30);
  BordersOptions options;
  options.minsup = 0.3;
  options.num_items = 8;
  BordersMaintainer maintainer(options);
  std::vector<BlockPtr> so_far;
  Tid tid = 0;
  for (int b = 0; b < 20; ++b) {
    std::vector<Transaction> transactions;
    const size_t n = 5 + rng.NextUint64(10);
    for (size_t i = 0; i < n; ++i) {
      std::vector<Item> items;
      for (Item item = 0; item < 8; ++item) {
        if (rng.NextBernoulli(0.4)) items.push_back(item);
      }
      if (items.empty()) items.push_back(static_cast<Item>(b % 8));
      transactions.push_back(Transaction(std::move(items)));
    }
    auto block =
        std::make_shared<TransactionBlock>(std::move(transactions), tid);
    tid += block->size();
    maintainer.AddBlock(block);
    so_far.push_back(block);
    ExpectModelsEqual(maintainer.model(),
                      Apriori(so_far, options.minsup, options.num_items));
  }
}

}  // namespace
}  // namespace demon
