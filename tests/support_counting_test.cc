#include "itemsets/support_counting.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/quest_generator.h"
#include "itemsets/apriori.h"

namespace demon {
namespace {

struct Fixture {
  std::vector<std::shared_ptr<const TransactionBlock>> blocks;
  TidListStore plain_store;
  TidListStore pair_store;
  size_t num_items;
};

Fixture MakeFixture(size_t num_blocks, size_t block_size, size_t num_items,
                    uint64_t seed) {
  QuestParams params;
  params.num_transactions = num_blocks * block_size;
  params.num_items = num_items;
  params.num_patterns = 50;
  params.avg_transaction_len = 8;
  params.avg_pattern_len = 3;
  params.seed = seed;
  QuestGenerator gen(params);

  Fixture fixture;
  fixture.num_items = num_items;
  Tid tid = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    auto block = std::make_shared<TransactionBlock>(
        gen.NextBlock(block_size, tid));
    tid += block->size();
    fixture.blocks.push_back(block);
    fixture.plain_store.Append(BlockTidLists::Build(*block, num_items));
    // Materialize a handful of pairs for the ECUT+ store.
    PairMaterializationSpec spec;
    for (Item a = 0; a < 10; ++a) {
      for (Item b2 = a + 1; b2 < 10; ++b2) spec.pairs.push_back({a, b2});
    }
    fixture.pair_store.Append(
        BlockTidLists::Build(*block, num_items, &spec));
  }
  return fixture;
}

std::vector<Itemset> RandomItemsets(size_t count, size_t max_size,
                                    size_t num_items, uint64_t seed) {
  Rng rng(seed);
  std::vector<Itemset> itemsets;
  while (itemsets.size() < count) {
    Itemset itemset;
    const size_t size = 1 + rng.NextUint64(max_size);
    while (itemset.size() < size) {
      // Bias toward low item ids so pair lists actually get used.
      const Item item = static_cast<Item>(
          rng.NextBernoulli(0.5) ? rng.NextUint64(10)
                                 : rng.NextUint64(num_items));
      if (!std::binary_search(itemset.begin(), itemset.end(), item)) {
        itemset.insert(
            std::lower_bound(itemset.begin(), itemset.end(), item), item);
      }
    }
    itemsets.push_back(std::move(itemset));
  }
  return itemsets;
}

TEST(SupportCountingTest, AllStrategiesAgree) {
  const Fixture fixture = MakeFixture(4, 500, 100, 11);
  const auto itemsets = RandomItemsets(150, 4, fixture.num_items, 12);

  const auto pt = PtScanCount(itemsets, fixture.blocks);
  const auto ecut =
      EcutCount(itemsets, fixture.plain_store, /*use_pair_lists=*/false);
  const auto ecut_plus =
      EcutCount(itemsets, fixture.pair_store, /*use_pair_lists=*/true);
  ASSERT_EQ(pt.size(), itemsets.size());
  for (size_t i = 0; i < itemsets.size(); ++i) {
    EXPECT_EQ(pt[i], ecut[i]) << ToString(itemsets[i]);
    EXPECT_EQ(pt[i], ecut_plus[i]) << ToString(itemsets[i]);
  }
}

TEST(SupportCountingTest, DispatchMatchesDirectCalls) {
  const Fixture fixture = MakeFixture(2, 300, 60, 13);
  const auto itemsets = RandomItemsets(40, 3, fixture.num_items, 14);
  const auto direct = PtScanCount(itemsets, fixture.blocks);
  for (CountingStrategy strategy :
       {CountingStrategy::kPtScan, CountingStrategy::kEcut,
        CountingStrategy::kEcutPlus}) {
    const auto counts = CountSupports(strategy, itemsets, fixture.blocks,
                                      fixture.pair_store);
    EXPECT_EQ(counts, direct) << CountingStrategyName(strategy);
  }
}

TEST(SupportCountingTest, EcutFetchesLessThanPtScanForFewItemsets) {
  const Fixture fixture = MakeFixture(4, 1000, 100, 15);
  const auto itemsets = RandomItemsets(5, 3, fixture.num_items, 16);
  CountingStats pt_stats;
  CountingStats ecut_stats;
  PtScanCount(itemsets, fixture.blocks, &pt_stats);
  EcutCount(itemsets, fixture.plain_store, false, &ecut_stats);
  // ECUT reads only the relevant TID-lists; PT-Scan reads everything.
  EXPECT_LT(ecut_stats.slots_fetched, pt_stats.slots_fetched);
  EXPECT_GT(ecut_stats.lists_opened, 0u);
  EXPECT_EQ(pt_stats.lists_opened, 0u);
}

TEST(SupportCountingTest, PairListsReduceDataFetched) {
  const Fixture fixture = MakeFixture(3, 1000, 80, 17);
  // Itemsets entirely within the materialized pair range.
  std::vector<Itemset> itemsets = {{0, 1}, {2, 3}, {0, 1, 2, 3}, {4, 5, 6}};
  CountingStats plain_stats;
  CountingStats pair_stats;
  const auto a = EcutCount(itemsets, fixture.pair_store, false, &plain_stats);
  const auto b = EcutCount(itemsets, fixture.pair_store, true, &pair_stats);
  EXPECT_EQ(a, b);
  EXPECT_LT(pair_stats.slots_fetched, plain_stats.slots_fetched);
  EXPECT_LE(pair_stats.lists_opened, plain_stats.lists_opened);
}

TEST(SupportCountingTest, CountsMatchAprioriModel) {
  const Fixture fixture = MakeFixture(3, 400, 50, 18);
  const ItemsetModel model = Apriori(fixture.blocks, 0.05, fixture.num_items);
  std::vector<Itemset> tracked;
  std::vector<uint64_t> expected;
  for (const auto& [itemset, entry] : model.entries()) {
    tracked.push_back(itemset);
    expected.push_back(entry.count);
  }
  const auto ecut = EcutCount(tracked, fixture.plain_store, false);
  for (size_t i = 0; i < tracked.size(); ++i) {
    EXPECT_EQ(ecut[i], expected[i]) << ToString(tracked[i]);
  }
}

TEST(SupportCountingTest, EmptyItemsetListYieldsEmptyCounts) {
  const Fixture fixture = MakeFixture(1, 50, 20, 19);
  EXPECT_TRUE(PtScanCount({}, fixture.blocks).empty());
  EXPECT_TRUE(EcutCount({}, fixture.plain_store, false).empty());
}

}  // namespace
}  // namespace demon
