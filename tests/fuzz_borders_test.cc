// Differential fuzzing of the BORDERS maintainer: random interleavings of
// block additions (varying sizes and distributions), deletions at random
// positions, and threshold changes must always leave the model identical
// to Apriori recomputed from scratch on the surviving blocks. This is the
// strongest single invariant in the system — everything DEMON layers on
// top (GEMM, AuM, the monitors) inherits its exactness from it.

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/quest_generator.h"
#include "itemsets/apriori.h"
#include "itemsets/borders.h"

namespace demon {
namespace {

using BlockPtr = std::shared_ptr<const TransactionBlock>;

void ExpectModelsEqual(const ItemsetModel& actual,
                       const ItemsetModel& expected, const char* context) {
  ASSERT_EQ(actual.num_transactions(), expected.num_transactions())
      << context;
  ASSERT_EQ(actual.entries().size(), expected.entries().size()) << context;
  for (const auto& [itemset, entry] : expected.entries()) {
    const auto it = actual.entries().find(itemset);
    ASSERT_NE(it, actual.entries().end())
        << context << " missing " << ToString(itemset);
    ASSERT_EQ(it->second.count, entry.count)
        << context << " " << ToString(itemset);
    ASSERT_EQ(it->second.frequent, entry.frequent)
        << context << " " << ToString(itemset);
  }
}

class FuzzBordersTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzBordersTest, RandomOperationSequencesStayExact) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const size_t num_items = 20 + rng.NextUint64(30);
  double minsup = 0.03 + rng.NextDouble() * 0.15;

  BordersOptions options;
  options.minsup = minsup;
  options.num_items = num_items;
  options.strategy = static_cast<CountingStrategy>(rng.NextUint64(3));
  BordersMaintainer maintainer(options);
  std::vector<BlockPtr> reference;

  // A pool of generators with different pattern tables to mix regimes.
  std::vector<std::unique_ptr<QuestGenerator>> generators;
  for (int g = 0; g < 3; ++g) {
    QuestParams params;
    params.num_transactions = 1;  // streamed
    params.num_items = num_items;
    params.num_patterns = 10 + g * 15;
    params.avg_transaction_len = 4 + g * 2;
    params.avg_pattern_len = 2 + g;
    params.seed = seed * 17 + g;
    generators.push_back(std::make_unique<QuestGenerator>(params));
  }

  Tid tid = 0;
  int checks = 0;
  for (int op = 0; op < 14; ++op) {
    const double dice = rng.NextDouble();
    const char* context = "";
    if (dice < 0.55 || reference.empty()) {
      // Add a block of random size from a random regime.
      const size_t size = 30 + rng.NextUint64(170);
      auto& gen = *generators[rng.NextUint64(generators.size())];
      auto block = std::make_shared<TransactionBlock>(
          gen.NextBlock(size, tid));
      tid += size;
      maintainer.AddBlock(block);
      reference.push_back(std::move(block));
      context = "after add";
    } else if (dice < 0.8) {
      // Remove a random block.
      const size_t index = rng.NextUint64(reference.size());
      maintainer.RemoveBlockAt(index);
      reference.erase(reference.begin() + index);
      context = "after remove";
    } else {
      // Change the threshold up or down.
      minsup = 0.03 + rng.NextDouble() * 0.15;
      maintainer.ChangeMinSupport(minsup);
      context = "after minsup change";
    }
    const ItemsetModel truth = Apriori(reference, minsup, num_items);
    ExpectModelsEqual(maintainer.model(), truth, context);
    ++checks;
  }
  EXPECT_EQ(checks, 14);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzBordersTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace demon
