#include "common/random.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/stats.h"

namespace demon {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(7);
  Rng b(8);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextUint64RespectsBound) {
  Rng rng(2);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextUint64(bound), bound);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(4);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) samples.push_back(rng.NextGaussian());
  EXPECT_NEAR(Mean(samples), 0.0, 0.02);
  EXPECT_NEAR(Variance(samples), 1.0, 0.05);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(5);
  for (double mean : {0.5, 4.0, 20.0, 100.0}) {
    std::vector<double> samples;
    for (int i = 0; i < 20000; ++i) {
      samples.push_back(rng.NextPoisson(mean));
    }
    EXPECT_NEAR(Mean(samples), mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextPoisson(0.0), 0);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) samples.push_back(rng.NextExponential(3.0));
  EXPECT_NEAR(Mean(samples), 3.0, 0.1);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(8);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(AliasSamplerTest, MatchesWeights) {
  Rng rng(9);
  const std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasSampler sampler(weights);
  std::vector<int> counts(4, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.Sample(&rng)];
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = weights[i] / 10.0 * kDraws;
    EXPECT_NEAR(counts[i], expected, expected * 0.08) << "bucket " << i;
  }
}

TEST(AliasSamplerTest, SingleBucket) {
  Rng rng(10);
  AliasSampler sampler({5.0});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(&rng), 0u);
}

TEST(AliasSamplerTest, ZeroWeightNeverSampled) {
  Rng rng(11);
  AliasSampler sampler({0.0, 1.0, 0.0});
  for (int i = 0; i < 10000; ++i) EXPECT_EQ(sampler.Sample(&rng), 1u);
}

}  // namespace
}  // namespace demon
