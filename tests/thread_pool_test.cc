#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace demon {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleIsABarrier) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done.fetch_add(1);
    });
  }
  pool.WaitIdle();
  // All tasks observed complete exactly at the barrier.
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitIdle();
    EXPECT_EQ(counter.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, SingleWorkerPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.WaitIdle();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No WaitIdle: the destructor must finish the queue before joining.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();
  EXPECT_EQ(pool.num_threads(), 2u);
}

TEST(ParallelForTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  ParallelFor(&pool, hits.size(),
              [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, ZeroIterationsIsANoOp) {
  ThreadPool pool(2);
  ParallelFor(&pool, 0, [](size_t) { FAIL() << "body must not run"; });
}

TEST(ParallelForTest, NullPoolRunsInlineInOrder) {
  std::vector<size_t> order;
  ParallelFor(nullptr, 10, [&order](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForTest, MoreIterationsThanThreads) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  ParallelFor(&pool, 100,
              [&sum](size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 4950);
}

// A ParallelFor issued from inside a pool task must complete even when
// every worker is busy: the caller participates in the claim loop, so
// progress never depends on a free worker. This is the invariant that
// makes sharing one pool across nesting levels deadlock-free.
TEST(ParallelForTest, NestedInsidePoolTaskDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  std::atomic<int> outer_done{0};
  for (int t = 0; t < 4; ++t) {
    pool.Submit([&pool, &inner_total, &outer_done] {
      ParallelFor(&pool, 16,
                  [&inner_total](size_t) { inner_total.fetch_add(1); });
      outer_done.fetch_add(1);
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(outer_done.load(), 4);
  EXPECT_EQ(inner_total.load(), 4 * 16);
}

TEST(ParallelForTest, SingleWorkerPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  // No synchronization needed: a 1-worker pool falls back to inline.
  ParallelFor(&pool, 8, [&order](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 8u);
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

// InWorker and ApproxIdleThreads are the inputs of the nested fan-out
// guard: a caller inside a pool task sees itself as a worker of exactly
// that pool, and busy workers are subtracted from the idle estimate.
TEST(ThreadPoolTest, InWorkerIsPerPoolAndIdleCountTracksBusyWorkers) {
  ThreadPool pool(2);
  ThreadPool other(1);
  EXPECT_FALSE(pool.InWorker());
  EXPECT_EQ(pool.ApproxIdleThreads(), 2u);

  std::atomic<int> in_this{0};
  std::atomic<int> in_other{0};
  std::atomic<size_t> observed_idle{99};
  std::atomic<bool> observed{false};
  std::atomic<bool> release{false};
  pool.Submit([&] {
    in_this.fetch_add(pool.InWorker() ? 1 : 0);
    in_other.fetch_add(other.InWorker() ? 1 : 0);
    // Hold the worker busy until the main thread reads the idle count.
    while (!release.load()) std::this_thread::yield();
  });
  while (!observed.load()) {
    const size_t idle = pool.ApproxIdleThreads();
    if (idle <= 1) {
      observed_idle.store(idle);
      observed.store(true);
    }
    std::this_thread::yield();
  }
  release.store(true);
  pool.WaitIdle();
  EXPECT_EQ(in_this.load(), 1);
  EXPECT_EQ(in_other.load(), 0);
  EXPECT_LE(observed_idle.load(), 1u);
  EXPECT_EQ(pool.ApproxIdleThreads(), 2u);
  EXPECT_FALSE(pool.InWorker());
}

}  // namespace
}  // namespace demon
