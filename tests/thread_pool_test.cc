#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace demon {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleIsABarrier) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done.fetch_add(1);
    });
  }
  pool.WaitIdle();
  // All tasks observed complete exactly at the barrier.
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitIdle();
    EXPECT_EQ(counter.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, SingleWorkerPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.WaitIdle();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No WaitIdle: the destructor must finish the queue before joining.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();
  EXPECT_EQ(pool.num_threads(), 2u);
}

}  // namespace
}  // namespace demon
