#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace demon {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleIsABarrier) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      done.fetch_add(1);
    });
  }
  pool.WaitIdle();
  // All tasks observed complete exactly at the barrier.
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitIdle();
    EXPECT_EQ(counter.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, SingleWorkerPreservesSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.WaitIdle();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No WaitIdle: the destructor must finish the queue before joining.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();
  EXPECT_EQ(pool.num_threads(), 2u);
}

TEST(ParallelForTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  ParallelFor(&pool, hits.size(),
              [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, ZeroIterationsIsANoOp) {
  ThreadPool pool(2);
  ParallelFor(&pool, 0, [](size_t) { FAIL() << "body must not run"; });
}

TEST(ParallelForTest, NullPoolRunsInlineInOrder) {
  std::vector<size_t> order;
  ParallelFor(nullptr, 10, [&order](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 10u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForTest, MoreIterationsThanThreads) {
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  ParallelFor(&pool, 100,
              [&sum](size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 4950);
}

// A ParallelFor issued from inside a pool task must complete even when
// every worker is busy: the caller participates in the claim loop, so
// progress never depends on a free worker. This is the invariant that
// makes sharing one pool across nesting levels deadlock-free.
TEST(ParallelForTest, NestedInsidePoolTaskDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  std::atomic<int> outer_done{0};
  for (int t = 0; t < 4; ++t) {
    pool.Submit([&pool, &inner_total, &outer_done] {
      ParallelFor(&pool, 16,
                  [&inner_total](size_t) { inner_total.fetch_add(1); });
      outer_done.fetch_add(1);
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(outer_done.load(), 4);
  EXPECT_EQ(inner_total.load(), 4 * 16);
}

TEST(ParallelForTest, SingleWorkerPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  // No synchronization needed: a 1-worker pool falls back to inline.
  ParallelFor(&pool, 8, [&order](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 8u);
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

// InWorker is per pool: a caller inside a pool task sees itself as a
// worker of exactly that pool.
TEST(ThreadPoolTest, InWorkerIsPerPool) {
  ThreadPool pool(2);
  ThreadPool other(1);
  EXPECT_FALSE(pool.InWorker());

  std::atomic<int> in_this{0};
  std::atomic<int> in_other{0};
  pool.Submit([&] {
    in_this.fetch_add(pool.InWorker() ? 1 : 0);
    in_other.fetch_add(other.InWorker() ? 1 : 0);
  });
  pool.WaitIdle();
  EXPECT_EQ(in_this.load(), 1);
  EXPECT_EQ(in_other.load(), 0);
  EXPECT_FALSE(pool.InWorker());
}

// --- parallelism-token budget -------------------------------------------

TEST(ThreadPoolTest, TokensStartAtPoolSizeAndAcquireIsBounded) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.ApproxAvailableTokens(), 3u);
  EXPECT_EQ(pool.TryAcquireTokens(2), 2u);
  EXPECT_EQ(pool.ApproxAvailableTokens(), 1u);
  // Asking for more than remains grants only the remainder, never blocks.
  EXPECT_EQ(pool.TryAcquireTokens(5), 1u);
  EXPECT_EQ(pool.ApproxAvailableTokens(), 0u);
  EXPECT_EQ(pool.TryAcquireTokens(1), 0u);
  pool.ReleaseTokens(3);
  EXPECT_EQ(pool.ApproxAvailableTokens(), 3u);
}

TEST(ThreadPoolTest, TokenLeaseReleasesOnScopeExit) {
  ThreadPool pool(2);
  {
    ThreadPool::TokenLease lease(&pool, 1);
    EXPECT_EQ(lease.acquired(), 1u);
    EXPECT_EQ(pool.ApproxAvailableTokens(), 1u);
    {
      // The budget is shared: a second lease sees what the first left.
      ThreadPool::TokenLease nested(&pool, 2);
      EXPECT_EQ(nested.acquired(), 1u);
      EXPECT_EQ(pool.ApproxAvailableTokens(), 0u);
    }
    EXPECT_EQ(pool.ApproxAvailableTokens(), 1u);
  }
  EXPECT_EQ(pool.ApproxAvailableTokens(), 2u);
}

TEST(ThreadPoolTest, TokenLeaseOnNullPoolAcquiresNothing) {
  ThreadPool::TokenLease lease(nullptr, 4);
  EXPECT_EQ(lease.acquired(), 0u);
}

// Concurrent acquirers can never over-draw the budget: the sum of all
// grants outstanding at any instant is at most the pool size. Each worker
// repeatedly borrows, records the total it sees outstanding, and returns.
TEST(ThreadPoolTest, ConcurrentAcquireNeverExceedsPoolSize) {
  constexpr size_t kThreads = 4;
  ThreadPool pool(kThreads);
  std::atomic<size_t> outstanding{0};
  std::atomic<size_t> max_outstanding{0};
  std::atomic<int> violations{0};
  for (size_t t = 0; t < kThreads * 2; ++t) {
    pool.Submit([&] {
      for (int i = 0; i < 200; ++i) {
        const size_t got = pool.TryAcquireTokens(2);
        if (got == 0) continue;
        const size_t now = outstanding.fetch_add(got) + got;
        size_t seen = max_outstanding.load();
        while (now > seen &&
               !max_outstanding.compare_exchange_weak(seen, now)) {
        }
        if (now > kThreads) violations.fetch_add(1);
        std::this_thread::yield();
        outstanding.fetch_sub(got);
        pool.ReleaseTokens(got);
      }
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(violations.load(), 0);
  EXPECT_LE(max_outstanding.load(), kThreads);
  EXPECT_EQ(pool.ApproxAvailableTokens(), kThreads);
}

// ParallelFor borrows a token per helper and every helper returns its
// token when its claim loop drains — the budget is whole again after the
// call, across repeated and nested invocations.
TEST(ParallelForTest, ReturnsAllTokensAfterCompletion) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> sum{0};
    ParallelFor(&pool, 64, [&sum](size_t) { sum.fetch_add(1); });
    EXPECT_EQ(sum.load(), 64);
  }
  pool.WaitIdle();
  EXPECT_EQ(pool.ApproxAvailableTokens(), 4u);
}

// With the whole budget borrowed, ParallelFor degrades to inline serial
// execution on the calling thread instead of queueing helpers.
TEST(ParallelForTest, ExhaustedBudgetRunsInline) {
  ThreadPool pool(2);
  const size_t taken = pool.TryAcquireTokens(2);
  ASSERT_EQ(taken, 2u);
  std::vector<size_t> order;
  // No synchronization on `order`: with zero tokens no helper may touch it.
  ParallelFor(&pool, 8, [&order](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 8u);
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
  pool.ReleaseTokens(taken);
  EXPECT_EQ(pool.ApproxAvailableTokens(), 2u);
}

// Nested ParallelFors share one budget and still complete every index —
// the TSan-covered regression for the token scheduler.
TEST(ParallelForTest, NestedParallelForSharesBudgetAndCompletes) {
  ThreadPool pool(3);
  std::atomic<int> inner_total{0};
  ParallelFor(&pool, 6, [&pool, &inner_total](size_t) {
    ParallelFor(&pool, 32,
                [&inner_total](size_t) { inner_total.fetch_add(1); });
  });
  pool.WaitIdle();
  EXPECT_EQ(inner_total.load(), 6 * 32);
  EXPECT_EQ(pool.ApproxAvailableTokens(), 3u);
}

}  // namespace
}  // namespace demon
