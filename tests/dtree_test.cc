#include "dtree/dtree_maintainer.h"

#include <gtest/gtest.h>

#include "core/gemm.h"
#include "datagen/labeled_generator.h"
#include "deviation/focus_dtree.h"

namespace demon {
namespace {

using BlockPtr = std::shared_ptr<const LabeledBlock>;

LabeledSchema BinarySchema(size_t attributes) {
  LabeledSchema schema;
  schema.attribute_cardinalities.assign(attributes, 2);
  schema.num_classes = 2;
  return schema;
}

TEST(EntropyTest, KnownValues) {
  EXPECT_DOUBLE_EQ(Entropy({}), 0.0);
  EXPECT_DOUBLE_EQ(Entropy({10.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(Entropy({5.0, 5.0}), 1.0);
  EXPECT_NEAR(Entropy({1.0, 1.0, 1.0, 1.0}), 2.0, 1e-12);
  EXPECT_GT(Entropy({9.0, 1.0}), 0.0);
  EXPECT_LT(Entropy({9.0, 1.0}), 1.0);
}

TEST(BestSplitTest, PicksTheInformativeAttribute) {
  // Attribute 0 determines the class perfectly; attribute 1 is noise.
  // avc[a][v][c]:
  std::vector<std::vector<std::vector<double>>> avc = {
      {{10.0, 0.0}, {0.0, 10.0}},  // a0: v0 all class0, v1 all class1
      {{5.0, 5.0}, {5.0, 5.0}},    // a1: uninformative
  };
  const SplitChoice choice = BestSplit(avc, {false, false}, 0.01);
  EXPECT_EQ(choice.attribute, 0);
  EXPECT_NEAR(choice.gain, 1.0, 1e-12);
}

TEST(BestSplitTest, RespectsUsedAndMinGain) {
  std::vector<std::vector<std::vector<double>>> avc = {
      {{10.0, 0.0}, {0.0, 10.0}},
      {{5.0, 5.0}, {5.0, 5.0}},
  };
  EXPECT_EQ(BestSplit(avc, {true, false}, 0.01).attribute, -1);
  EXPECT_EQ(BestSplit(avc, {false, false}, 1.5).attribute, -1);
}

TEST(DecisionTreeTest, RouteAndClassify) {
  DecisionTree tree(BinarySchema(2));
  auto* root = tree.mutable_root();
  root->split_attribute = 0;
  root->children.resize(2);
  for (int v = 0; v < 2; ++v) {
    root->children[v] = std::make_unique<DecisionTree::Node>();
    root->children[v]->class_counts = {v == 0 ? 9.0 : 1.0,
                                       v == 0 ? 1.0 : 9.0};
  }
  EXPECT_EQ(tree.AssignLeafIds(), 2u);
  LabeledRecord record;
  record.attributes = {0, 1};
  EXPECT_EQ(tree.Classify(record), 0u);
  record.attributes = {1, 1};
  EXPECT_EQ(tree.Classify(record), 1u);
  EXPECT_EQ(tree.NumLeaves(), 2u);
  EXPECT_EQ(tree.Depth(), 2u);
  EXPECT_DOUBLE_EQ(tree.TotalWeight(), 20.0);
}

TEST(DecisionTreeTest, CloneIsDeepAndExact) {
  LabeledGenerator::Params params;
  params.schema = BinarySchema(5);
  params.seed = 3;
  LabeledGenerator gen(params);
  DTreeMaintainer maintainer(params.schema, DTreeOptions{});
  maintainer.AddBlock(std::make_shared<LabeledBlock>(gen.NextBlock(2000)));

  const DecisionTree clone = maintainer.model().Clone();
  EXPECT_EQ(clone.NumLeaves(), maintainer.model().NumLeaves());
  EXPECT_EQ(clone.Depth(), maintainer.model().Depth());
  EXPECT_EQ(clone.ToString(), maintainer.model().ToString());
}

TEST(DTreeMaintainerTest, LearnsANoiselessConcept) {
  LabeledGenerator::Params params;
  params.schema = BinarySchema(6);
  params.concept_depth = 3;
  params.label_noise = 0.0;
  params.seed = 7;
  LabeledGenerator gen(params);

  DTreeOptions options;
  options.min_split_weight = 100.0;
  DTreeMaintainer maintainer(params.schema, options);
  for (int b = 0; b < 5; ++b) {
    maintainer.AddBlock(std::make_shared<LabeledBlock>(gen.NextBlock(2000)));
  }
  const LabeledBlock test = gen.NextBlock(2000);
  EXPECT_GT(maintainer.Accuracy(test), 0.97);
  EXPECT_DOUBLE_EQ(maintainer.model().TotalWeight(), 10000.0);
}

TEST(DTreeMaintainerTest, NoisyConceptStillLearnable) {
  LabeledGenerator::Params params;
  params.schema = BinarySchema(6);
  params.concept_depth = 3;
  params.label_noise = 0.1;
  params.seed = 8;
  LabeledGenerator gen(params);

  DTreeMaintainer maintainer(params.schema, DTreeOptions{});
  for (int b = 0; b < 5; ++b) {
    maintainer.AddBlock(std::make_shared<LabeledBlock>(gen.NextBlock(2000)));
  }
  // Bayes accuracy is ~1 - noise + noise/2 = 0.95; stay close to it.
  const LabeledBlock test = gen.NextBlock(2000);
  EXPECT_GT(maintainer.Accuracy(test), 0.85);
}

TEST(DTreeMaintainerTest, IncrementalGrowthIsMonotone) {
  LabeledGenerator::Params params;
  params.schema = BinarySchema(8);
  params.concept_depth = 4;
  params.seed = 9;
  LabeledGenerator gen(params);
  DTreeMaintainer maintainer(params.schema, DTreeOptions{});
  size_t previous_leaves = 1;
  for (int b = 0; b < 4; ++b) {
    maintainer.AddBlock(std::make_shared<LabeledBlock>(gen.NextBlock(1500)));
    EXPECT_GE(maintainer.model().NumLeaves(), previous_leaves);
    previous_leaves = maintainer.model().NumLeaves();
  }
  EXPECT_GT(previous_leaves, 1u);
  EXPECT_LE(maintainer.model().Depth(), DTreeOptions{}.max_depth);
}

TEST(DTreeMaintainerTest, DeterministicAcrossRuns) {
  LabeledGenerator::Params params;
  params.schema = BinarySchema(5);
  params.seed = 10;
  DTreeMaintainer a(params.schema, DTreeOptions{});
  DTreeMaintainer b(params.schema, DTreeOptions{});
  LabeledGenerator gen_a(params);
  LabeledGenerator gen_b(params);
  for (int r = 0; r < 3; ++r) {
    a.AddBlock(std::make_shared<LabeledBlock>(gen_a.NextBlock(1000)));
    b.AddBlock(std::make_shared<LabeledBlock>(gen_b.NextBlock(1000)));
  }
  EXPECT_EQ(a.model().ToString(), b.model().ToString());
}

TEST(DTreeMaintainerTest, WorksUnderGemm) {
  // The §3.2 genericity claim with a third model class: decision trees
  // under the most-recent-window option. After drift, the windowed model
  // recovers while an unrestricted-window model stays polluted.
  LabeledGenerator::Params old_params;
  old_params.schema = BinarySchema(6);
  old_params.concept_depth = 3;
  old_params.label_noise = 0.0;
  old_params.seed = 11;
  LabeledGenerator::Params new_params = old_params;
  new_params.seed = 99;  // different concept
  LabeledGenerator old_gen(old_params);
  LabeledGenerator new_gen(new_params);

  DTreeOptions options;
  options.min_split_weight = 100.0;
  const size_t w = 3;
  Gemm<DTreeMaintainer, BlockPtr> windowed(
      BlockSelectionSequence::AllBlocks(), w,
      [&] { return DTreeMaintainer(old_params.schema, options); });
  DTreeMaintainer unrestricted(old_params.schema, options);

  for (int b = 0; b < 4; ++b) {
    auto block = std::make_shared<LabeledBlock>(old_gen.NextBlock(2000));
    windowed.AddBlock(block);
    unrestricted.AddBlock(block);
  }
  for (int b = 0; b < 4; ++b) {  // concept drift
    auto block = std::make_shared<LabeledBlock>(new_gen.NextBlock(2000));
    windowed.AddBlock(block);
    unrestricted.AddBlock(block);
  }
  const LabeledBlock test = new_gen.NextBlock(2000);
  const double windowed_accuracy = windowed.current().Accuracy(test);
  const double unrestricted_accuracy = unrestricted.Accuracy(test);
  EXPECT_GT(windowed_accuracy, 0.9);
  EXPECT_GT(windowed_accuracy, unrestricted_accuracy);
}

TEST(LabeledGeneratorTest, RespectsSchemaAndNoise) {
  LabeledGenerator::Params params;
  params.schema.attribute_cardinalities = {2, 3, 4};
  params.schema.num_classes = 3;
  params.label_noise = 0.0;
  params.seed = 12;
  LabeledGenerator gen(params);
  const LabeledBlock block = gen.NextBlock(3000);
  ASSERT_EQ(block.size(), 3000u);
  for (const LabeledRecord& record : block.records()) {
    ASSERT_EQ(record.attributes.size(), 3u);
    EXPECT_LT(record.attributes[0], 2u);
    EXPECT_LT(record.attributes[1], 3u);
    EXPECT_LT(record.attributes[2], 4u);
    EXPECT_LT(record.label, 3u);
    // Noise-free labels match the hidden concept.
    EXPECT_EQ(record.label, gen.TrueLabel(record.attributes));
  }
}

TEST(FocusDecisionTreesTest, SameConceptLowDifferentConceptHigh) {
  LabeledGenerator::Params params;
  params.schema = BinarySchema(6);
  params.concept_depth = 3;
  params.seed = 13;
  LabeledGenerator gen(params);
  LabeledGenerator::Params other_params = params;
  other_params.seed = 77;
  LabeledGenerator other(other_params);

  const LabeledBlock a1 = gen.NextBlock(2000);
  const LabeledBlock a2 = gen.NextBlock(2000);
  const LabeledBlock b = other.NextBlock(2000);

  FocusDecisionTrees focus(FocusDecisionTrees::Options{});
  const DeviationResult same = focus.Compare(a1, a2);
  const DeviationResult different = focus.Compare(a1, b);
  EXPECT_LT(same.deviation, different.deviation);
  EXPECT_GT(different.significance, 0.99);
  EXPECT_GT(different.num_regions, 0u);
}

TEST(FocusDecisionTreesTest, IdenticalBlocksHaveZeroDeviation) {
  LabeledGenerator::Params params;
  params.schema = BinarySchema(4);
  params.seed = 14;
  LabeledGenerator gen(params);
  const LabeledBlock block = gen.NextBlock(1000);
  FocusDecisionTrees focus(FocusDecisionTrees::Options{});
  const DeviationResult result = focus.Compare(block, block);
  EXPECT_DOUBLE_EQ(result.deviation, 0.0);
  EXPECT_NEAR(result.significance, 0.0, 1e-9);
}

}  // namespace
}  // namespace demon
