// Persistence-layer tests: the serializer primitives, the shared file
// header contract (wrong magic / format / version => InvalidArgument,
// truncation => DataLoss — never a crash), the block codec, the
// write-ahead log's crash semantics, and the BSS / MonitorSpec codecs the
// checkpoint container is built from.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/monitor_spec.h"
#include "persistence/block_codec.h"
#include "persistence/file_header.h"
#include "persistence/serializer.h"
#include "persistence/wal.h"

namespace demon {
namespace {

using persistence::FileHeader;
using persistence::FormatId;
using persistence::Reader;
using persistence::Writer;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::string bytes;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return bytes;
}

Status WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Serializer primitives.

TEST(SerializerTest, AllTypesRoundTrip) {
  Writer w;
  w.WriteU8(7);
  w.WriteU32(0xDEADBEEFu);
  w.WriteU64(1ull << 60);
  w.WriteI64(-42);
  w.WriteBool(true);
  w.WriteDouble(0.1);            // not exactly representable
  w.WriteDouble(-0.0);           // sign bit must survive
  w.WriteString("demon");
  w.WriteU32Vector({1, 2, 3});
  w.WriteDoubleVector({1.5, -2.5});

  Reader r(w.buffer());
  EXPECT_EQ(r.ReadU8(), 7u);
  EXPECT_EQ(r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(r.ReadU64(), 1ull << 60);
  EXPECT_EQ(r.ReadI64(), -42);
  EXPECT_TRUE(r.ReadBool());
  EXPECT_EQ(r.ReadDouble(), 0.1);
  const double neg_zero = r.ReadDouble();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.ReadString(), "demon");
  EXPECT_EQ(r.ReadU32Vector(), (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_EQ(r.ReadDoubleVector(), (std::vector<double>{1.5, -2.5}));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializerTest, TruncationLatchesDataLoss) {
  Writer w;
  w.WriteU64(1);
  Reader r(w.buffer().data(), 4);  // cut mid-integer
  EXPECT_EQ(r.ReadU64(), 0u);
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  // Latched: subsequent reads stay zero and keep the first error.
  EXPECT_EQ(r.ReadU32(), 0u);
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST(SerializerTest, CorruptLengthCannotOverAllocate) {
  Writer w;
  w.WriteU64(~0ull);  // claims ~2^64 elements
  Reader r(w.buffer());
  const auto v = r.ReadU32Vector();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
}

TEST(SerializerTest, SubFramesAndBoundsChecks) {
  Writer inner;
  inner.WriteU32(9);
  Writer w;
  w.WriteString(inner.buffer());
  w.WriteU32(13);

  Reader r(w.buffer());
  const size_t len = r.ReadLength(1);
  Reader sub = r.Sub(len);
  EXPECT_EQ(sub.ReadU32(), 9u);
  EXPECT_TRUE(sub.AtEnd());
  // A framed child cannot read past its frame...
  EXPECT_EQ(sub.ReadU32(), 0u);
  EXPECT_EQ(sub.status().code(), StatusCode::kDataLoss);
  // ...and the parent continues right after the frame, unaffected.
  EXPECT_EQ(r.ReadU32(), 13u);
  EXPECT_TRUE(r.ok());

  Reader r2(w.buffer());
  Reader bogus = r2.Sub(w.buffer().size() + 1);
  EXPECT_EQ(r2.status().code(), StatusCode::kDataLoss);
  (void)bogus;
}

// ---------------------------------------------------------------------------
// File header contract.

TEST(FileHeaderTest, PayloadFileRoundTrip) {
  const std::string path = TempPath("header_roundtrip.bin");
  Writer payload;
  payload.WriteString("payload-bytes");
  ASSERT_TRUE(persistence::WritePayloadFile(path, FormatId::kCheckpoint, 3,
                                            payload)
                  .ok());
  auto read = persistence::ReadPayloadFile(path, FormatId::kCheckpoint, 3);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), payload.buffer());
}

TEST(FileHeaderTest, WrongMagicFormatAndVersionAreInvalidArgument) {
  const std::string path = TempPath("header_bad.bin");
  Writer payload;
  payload.WriteU32(1);
  ASSERT_TRUE(persistence::WritePayloadFile(path, FormatId::kCheckpoint, 2,
                                            payload)
                  .ok());

  // Wrong format id for this file.
  EXPECT_EQ(persistence::ReadPayloadFile(path, FormatId::kWriteAheadLog, 2)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Reader supports only an older version.
  EXPECT_EQ(persistence::ReadPayloadFile(path, FormatId::kCheckpoint, 1)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // Corrupt the magic.
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = bytes.value();
  corrupted[0] ^= 0xFF;
  ASSERT_TRUE(WriteFileBytes(path, corrupted).ok());
  EXPECT_EQ(persistence::ReadPayloadFile(path, FormatId::kCheckpoint, 2)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(FileHeaderTest, TruncatedHeaderIsDataLossAndMissingFileIsIoError) {
  const std::string path = TempPath("header_short.bin");
  ASSERT_TRUE(WriteFileBytes(path, std::string(10, 'x')).ok());
  EXPECT_EQ(persistence::ReadPayloadFile(path, FormatId::kCheckpoint, 1)
                .status()
                .code(),
            StatusCode::kDataLoss);
  EXPECT_EQ(persistence::ReadPayloadFile(TempPath("never_written.bin"),
                                         FormatId::kCheckpoint, 1)
                .status()
                .code(),
            StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// Block codec.

TransactionBlock MakeTxBlock(BlockId id) {
  std::vector<Transaction> txs;
  txs.push_back(Transaction({1, 3, 5}));
  txs.push_back(Transaction({2, 3}));
  TransactionBlock block(std::move(txs), /*first_tid=*/100);
  block.mutable_info()->id = id;
  block.mutable_info()->start_time = 10;
  block.mutable_info()->end_time = 20;
  block.mutable_info()->label = "b" + std::to_string(id);
  return block;
}

PointBlock MakePtBlock(BlockId id) {
  PointBlock block({1.0, 2.0, 3.0, 4.0}, /*dim=*/2);
  block.mutable_info()->id = id;
  return block;
}

LabeledSchema MakeSchema() {
  LabeledSchema schema;
  schema.attribute_cardinalities = {3, 2};
  schema.num_classes = 2;
  return schema;
}

LabeledBlock MakeLbBlock(BlockId id) {
  std::vector<LabeledRecord> records;
  records.push_back({{0, 1}, 0});
  records.push_back({{2, 0}, 1});
  LabeledBlock block(MakeSchema(), std::move(records));
  block.mutable_info()->id = id;
  return block;
}

TEST(BlockCodecTest, AllThreePayloadsRoundTrip) {
  Writer w;
  persistence::WriteBlock(w, MakeTxBlock(1));
  persistence::WriteBlock(w, MakePtBlock(2));
  persistence::WriteBlock(w, MakeLbBlock(3));

  Reader r(w.buffer());
  TransactionBlock tx;
  persistence::ReadBlockInto(r, &tx);
  PointBlock pt;
  persistence::ReadBlockInto(r, &pt);
  LabeledBlock lb;
  persistence::ReadBlockInto(r, &lb);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());

  EXPECT_EQ(tx.info().id, 1u);
  EXPECT_EQ(tx.info().label, "b1");
  EXPECT_EQ(tx.first_tid(), 100u);
  ASSERT_EQ(tx.size(), 2u);
  EXPECT_EQ(tx.transactions()[0], MakeTxBlock(1).transactions()[0]);

  EXPECT_EQ(pt.info().id, 2u);
  EXPECT_EQ(pt.dim(), 2u);
  EXPECT_EQ(pt.coords(), (std::vector<double>{1.0, 2.0, 3.0, 4.0}));

  EXPECT_EQ(lb.info().id, 3u);
  ASSERT_EQ(lb.size(), 2u);
  EXPECT_EQ(lb.records()[1].attributes, (std::vector<uint32_t>{2, 0}));
  EXPECT_EQ(lb.records()[1].label, 1u);
  EXPECT_EQ(lb.schema().num_classes, 2u);
}

TEST(BlockCodecTest, SnapshotRoundTripAndIdValidation) {
  Snapshot<TransactionBlock> snapshot;
  snapshot.Append(MakeTxBlock(kInvalidBlockId));
  snapshot.Append(MakeTxBlock(kInvalidBlockId));
  Writer w;
  persistence::WriteSnapshot(w, snapshot);

  Snapshot<TransactionBlock> restored;
  Reader r(w.buffer());
  persistence::ReadSnapshotInto(r, &restored);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(restored.latest_id(), 2u);
  EXPECT_EQ(restored.NumBlocks(), 2u);
  EXPECT_EQ(restored.block(1)->size(), snapshot.block(1)->size());

  // Claiming more blocks than the latest id is corruption.
  Writer bad;
  bad.WriteU64(1);  // latest
  bad.WriteU64(2);  // count
  Reader rb(bad.buffer());
  Snapshot<TransactionBlock> target;
  persistence::ReadSnapshotInto(rb, &target);
  EXPECT_EQ(rb.status().code(), StatusCode::kDataLoss);
}

TEST(BlockCodecTest, CorruptBlockLatchesInsteadOfCrashing) {
  Writer w;
  persistence::WriteBlock(w, MakeLbBlock(1));
  // Flip a byte in the middle of the payload; the reader must reject the
  // record structurally (label/attribute range checks) rather than abort
  // in the LabeledBlock constructor.
  for (size_t flip = 8; flip + 1 < w.buffer().size(); flip += 7) {
    std::string corrupted = w.buffer();
    corrupted[flip] ^= 0x5A;
    Reader r(corrupted);
    LabeledBlock block;
    persistence::ReadBlockInto(r, &block);
    // Either the flip landed somewhere harmless (decodes fine) or it was
    // caught — never a crash.
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
    }
  }
}

// ---------------------------------------------------------------------------
// Write-ahead log.

TEST(WalTest, AppendReplayRoundTripAcrossPayloads) {
  const std::string path = TempPath("wal_roundtrip.bin");
  std::remove(path.c_str());
  {
    auto wal = persistence::WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append(MakeTxBlock(1)).ok());
    ASSERT_TRUE(wal.value()->Append(MakePtBlock(1)).ok());
    ASSERT_TRUE(wal.value()->Append(MakeLbBlock(1)).ok());
    ASSERT_TRUE(wal.value()->Append(MakeTxBlock(2)).ok());
    EXPECT_EQ(wal.value()->num_records(), 4u);
  }

  std::vector<std::string> order;
  persistence::WriteAheadLog::Replayer replayer;
  replayer.transactions = [&](std::shared_ptr<const TransactionBlock> b) {
    order.push_back("tx" + std::to_string(b->info().id));
    return Status::OK();
  };
  replayer.points = [&](std::shared_ptr<const PointBlock> b) {
    order.push_back("pt" + std::to_string(b->info().id));
    return Status::OK();
  };
  replayer.labeled = [&](std::shared_ptr<const LabeledBlock> b) {
    order.push_back("lb" + std::to_string(b->info().id));
    return Status::OK();
  };
  ASSERT_TRUE(persistence::WriteAheadLog::Replay(path, replayer).ok());
  EXPECT_EQ(order, (std::vector<std::string>{"tx1", "pt1", "lb1", "tx2"}));

  // Re-opening an existing log counts its durable records.
  auto reopened = persistence::WriteAheadLog::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->num_records(), 4u);
}

TEST(WalTest, TornTailIsTruncatedCorruptRecordIsDataLoss) {
  const std::string path = TempPath("wal_torn.bin");
  std::remove(path.c_str());
  {
    auto wal = persistence::WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append(MakeTxBlock(1)).ok());
    ASSERT_TRUE(wal.value()->Append(MakeTxBlock(2)).ok());
  }
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());

  // Crash signature: the last record is incomplete. Open drops it; the
  // first record survives.
  const std::string torn =
      bytes.value().substr(0, bytes.value().size() - 11);
  ASSERT_TRUE(WriteFileBytes(path, torn).ok());
  {
    auto wal = persistence::WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ(wal.value()->num_records(), 1u);
    // The log stays appendable after truncation.
    ASSERT_TRUE(wal.value()->Append(MakeTxBlock(2)).ok());
    EXPECT_EQ(wal.value()->num_records(), 2u);
  }

  // Genuine corruption: a complete record whose checksum no longer
  // matches must not be silently dropped. Flip a byte inside the first
  // record's payload (header is 24 bytes, record framing is 9, so offset
  // 40 is well inside the payload) — the record stays complete but its
  // checksum no longer matches.
  std::string corrupt = bytes.value();
  corrupt[40] ^= 0x1;
  ASSERT_TRUE(WriteFileBytes(path, corrupt).ok());
  EXPECT_EQ(persistence::WriteAheadLog::Open(path).status().code(),
            StatusCode::kDataLoss);
  persistence::WriteAheadLog::Replayer ignore;
  ignore.transactions = [](std::shared_ptr<const TransactionBlock>) {
    return Status::OK();
  };
  EXPECT_EQ(persistence::WriteAheadLog::Replay(path, ignore).code(),
            StatusCode::kDataLoss);
}

TEST(WalTest, WrongFormatFileIsInvalidArgument) {
  const std::string path = TempPath("wal_wrong_format.bin");
  Writer payload;
  payload.WriteU32(1);
  ASSERT_TRUE(persistence::WritePayloadFile(path, FormatId::kCheckpoint, 1,
                                            payload)
                  .ok());
  EXPECT_EQ(persistence::WriteAheadLog::Open(path).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WalTest, ResetEmptiesTheLog) {
  const std::string path = TempPath("wal_reset.bin");
  std::remove(path.c_str());
  auto wal = persistence::WriteAheadLog::Open(path);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->Append(MakeTxBlock(1)).ok());
  ASSERT_TRUE(wal.value()->Reset().ok());
  EXPECT_EQ(wal.value()->num_records(), 0u);
  ASSERT_TRUE(wal.value()->Append(MakeTxBlock(5)).ok());

  size_t replayed = 0;
  persistence::WriteAheadLog::Replayer replayer;
  replayer.transactions = [&](std::shared_ptr<const TransactionBlock> b) {
    EXPECT_EQ(b->info().id, 5u);
    ++replayed;
    return Status::OK();
  };
  ASSERT_TRUE(persistence::WriteAheadLog::Replay(path, replayer).ok());
  EXPECT_EQ(replayed, 1u);
}

// ---------------------------------------------------------------------------
// BSS and MonitorSpec codecs.

TEST(BssCodecTest, AllFormsRoundTrip) {
  const std::vector<BlockSelectionSequence> forms = {
      BlockSelectionSequence::AllBlocks(),
      BlockSelectionSequence::WindowIndependent({true, false, true}, true),
      BlockSelectionSequence::Periodic(7, 2),
      BlockSelectionSequence::WindowRelative({true, false, true}),
  };
  for (const auto& bss : forms) {
    Writer w;
    bss.SaveTo(w);
    Reader r(w.buffer());
    auto restored = BlockSelectionSequence::LoadFrom(r);
    ASSERT_TRUE(restored.ok()) << bss.ToString();
    EXPECT_TRUE(r.AtEnd());
    EXPECT_EQ(restored.value().ToString(), bss.ToString());
    EXPECT_EQ(restored.value().kind(), bss.kind());
  }
}

TEST(BssCodecTest, CorruptKindAndPhaseAreDataLoss) {
  Writer w;
  BlockSelectionSequence::AllBlocks().SaveTo(w);
  std::string corrupted = w.buffer();
  corrupted[0] = 9;  // unknown kind
  Reader r(corrupted);
  EXPECT_EQ(BlockSelectionSequence::LoadFrom(r).status().code(),
            StatusCode::kDataLoss);

  Writer wp;
  BlockSelectionSequence::Periodic(3, 1).SaveTo(wp);
  std::string bad_phase = wp.buffer();
  // phase is the final u64; make it >= period.
  bad_phase[bad_phase.size() - 8] = 7;
  Reader rp(bad_phase);
  EXPECT_EQ(BlockSelectionSequence::LoadFrom(rp).status().code(),
            StatusCode::kDataLoss);
}

TEST(MonitorSpecCodecTest, FullSpecRoundTrips) {
  MonitorSpec spec;
  spec.kind = MonitorKind::kWindowedClusters;
  spec.name = "mrw-clusters";
  spec.bss = BlockSelectionSequence::WindowRelative({true, false, true});
  spec.window = 3;
  spec.minsup = 0.025;
  spec.strategy = CountingStrategy::kEcutPlus;
  spec.dim = 4;
  spec.birch.tree.branching = 8;
  spec.birch.tree.leaf_capacity = 16;
  spec.birch.tree.max_leaf_entries = 256;
  spec.birch.tree.initial_threshold = 0.5;
  spec.birch.num_clusters = 7;
  spec.birch.phase2 = Phase2Algorithm::kWeightedKMeans;
  spec.birch.seed = 99;
  spec.birch.kmeans_max_iterations = 13;
  spec.schema.attribute_cardinalities = {4, 2, 3};
  spec.schema.num_classes = 3;
  spec.dtree.min_split_weight = 120.0;
  spec.dtree.min_gain = 0.02;
  spec.dtree.max_depth = 9;
  spec.alpha = 0.9;
  spec.tidlist_budget_bytes = 1 << 20;
  spec.tidlist_spill_dir = "/tmp/demon-spill";

  Writer w;
  SaveMonitorSpec(w, spec);
  Reader r(w.buffer());
  auto restored = LoadMonitorSpec(r, /*checkpoint_version=*/2);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(r.AtEnd());
  const MonitorSpec& s = restored.value();
  EXPECT_EQ(s.kind, spec.kind);
  EXPECT_EQ(s.name, spec.name);
  EXPECT_EQ(s.bss.ToString(), spec.bss.ToString());
  EXPECT_EQ(s.window, spec.window);
  EXPECT_EQ(s.minsup, spec.minsup);
  EXPECT_EQ(s.strategy, spec.strategy);
  EXPECT_EQ(s.dim, spec.dim);
  EXPECT_EQ(s.birch.tree.branching, spec.birch.tree.branching);
  EXPECT_EQ(s.birch.tree.leaf_capacity, spec.birch.tree.leaf_capacity);
  EXPECT_EQ(s.birch.tree.max_leaf_entries, spec.birch.tree.max_leaf_entries);
  EXPECT_EQ(s.birch.tree.initial_threshold, spec.birch.tree.initial_threshold);
  EXPECT_EQ(s.birch.num_clusters, spec.birch.num_clusters);
  EXPECT_EQ(s.birch.phase2, spec.birch.phase2);
  EXPECT_EQ(s.birch.seed, spec.birch.seed);
  EXPECT_EQ(s.birch.kmeans_max_iterations, spec.birch.kmeans_max_iterations);
  EXPECT_EQ(s.schema.attribute_cardinalities,
            spec.schema.attribute_cardinalities);
  EXPECT_EQ(s.schema.num_classes, spec.schema.num_classes);
  EXPECT_EQ(s.dtree.min_split_weight, spec.dtree.min_split_weight);
  EXPECT_EQ(s.dtree.min_gain, spec.dtree.min_gain);
  EXPECT_EQ(s.dtree.max_depth, spec.dtree.max_depth);
  EXPECT_EQ(s.alpha, spec.alpha);
  EXPECT_EQ(s.tidlist_budget_bytes, spec.tidlist_budget_bytes);
  EXPECT_EQ(s.tidlist_spill_dir, spec.tidlist_spill_dir);
}

TEST(MonitorSpecCodecTest, Version1PayloadKeepsDefaultBudgetFields) {
  // A v1 checkpoint predates the TID-list budget fields: the loader must
  // stop before them and leave the defaults in place. Simulate by saving
  // with the current writer and truncating the trailing budget fields.
  MonitorSpec spec;
  spec.name = "v1";
  Writer w;
  SaveMonitorSpec(w, spec);
  Writer w_v1;
  // Trailing bytes: U64 budget + U64 length prefix of the empty spill dir.
  const size_t v1_size = w.size() - 2 * sizeof(uint64_t);
  w_v1.AppendRaw(w.buffer().data(), v1_size);
  Reader r(w_v1.buffer());
  auto restored = LoadMonitorSpec(r, /*checkpoint_version=*/1);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(r.AtEnd());
  EXPECT_EQ(restored.value().tidlist_budget_bytes, 0u);
  EXPECT_TRUE(restored.value().tidlist_spill_dir.empty());
}

TEST(MonitorSpecCodecTest, UnknownEnumValuesAreDataLoss) {
  MonitorSpec spec;
  spec.name = "x";
  Writer w;
  SaveMonitorSpec(w, spec);
  std::string corrupted = w.buffer();
  corrupted[0] = 99;  // kind is the first byte
  Reader r(corrupted);
  EXPECT_EQ(LoadMonitorSpec(r, /*checkpoint_version=*/2).status().code(),
            StatusCode::kDataLoss);
}

}  // namespace
}  // namespace demon
