#include "patterns/compact_sequences.h"

#include <gtest/gtest.h>

#include "datagen/quest_generator.h"
#include "datagen/trace_generator.h"

namespace demon {
namespace {

using BlockPtr = std::shared_ptr<const TransactionBlock>;

// Builds a block of `n` two-item transactions drawn from one of a few
// fixed "regimes" so similarity between blocks is fully controlled.
BlockPtr RegimeBlock(int regime, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Transaction> transactions;
  transactions.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Item a = 0;
    Item b = 0;
    switch (regime) {
      case 0:  // items 0/1 dominate
        a = rng.NextBernoulli(0.8) ? 0 : 2;
        b = rng.NextBernoulli(0.8) ? 1 : 3;
        break;
      case 1:  // items 4/5 dominate
        a = rng.NextBernoulli(0.8) ? 4 : 6;
        b = rng.NextBernoulli(0.8) ? 5 : 7;
        break;
      default:  // items 8/9 dominate
        a = rng.NextBernoulli(0.8) ? 8 : 2;
        b = rng.NextBernoulli(0.8) ? 9 : 3;
        break;
    }
    transactions.push_back(Transaction({a, b}));
  }
  return std::make_shared<TransactionBlock>(std::move(transactions), 0);
}

CompactSequenceMiner::Options MinerOptions() {
  CompactSequenceMiner::Options options;
  options.focus.minsup = 0.05;
  options.focus.num_items = 16;
  options.alpha = 0.95;
  return options;
}

TEST(CompactSequenceMinerTest, SingleBlockIsItsOwnSequence) {
  CompactSequenceMiner miner(MinerOptions());
  miner.AddBlock(RegimeBlock(0, 500, 1));
  ASSERT_EQ(miner.sequences().size(), 1u);
  EXPECT_EQ(miner.sequences()[0], (std::vector<size_t>{0}));
}

TEST(CompactSequenceMinerTest, SameRegimeBlocksFormOneLongSequence) {
  CompactSequenceMiner miner(MinerOptions());
  for (int b = 0; b < 5; ++b) miner.AddBlock(RegimeBlock(0, 500, 10 + b));
  // The sequence started at block 0 must have absorbed everything.
  EXPECT_EQ(miner.sequences()[0], (std::vector<size_t>{0, 1, 2, 3, 4}));
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = i + 1; j < 5; ++j) {
      EXPECT_TRUE(miner.Similar(i, j)) << i << "," << j;
    }
  }
}

TEST(CompactSequenceMinerTest, AlternatingRegimesFormInterleavedSequences) {
  // Blocks: A B A B A. Sequences {0,2,4} and {1,3} must coexist — the
  // overlap the paper says clustering formulations cannot express.
  CompactSequenceMiner miner(MinerOptions());
  for (int b = 0; b < 5; ++b) {
    miner.AddBlock(RegimeBlock(b % 2, 500, 20 + b));
  }
  EXPECT_EQ(miner.sequences()[0], (std::vector<size_t>{0, 2, 4}));
  EXPECT_EQ(miner.sequences()[1], (std::vector<size_t>{1, 3}));
}

TEST(CompactSequenceMinerTest, AnomalousBlockExcludedFromAllSequences) {
  // A A X A A with X from a different regime: X must stay a singleton.
  CompactSequenceMiner miner(MinerOptions());
  miner.AddBlock(RegimeBlock(0, 500, 31));
  miner.AddBlock(RegimeBlock(0, 500, 32));
  miner.AddBlock(RegimeBlock(2, 500, 33));  // anomaly
  miner.AddBlock(RegimeBlock(0, 500, 34));
  miner.AddBlock(RegimeBlock(0, 500, 35));
  EXPECT_EQ(miner.sequences()[0], (std::vector<size_t>{0, 1, 3, 4}));
  EXPECT_EQ(miner.sequences()[2], (std::vector<size_t>{2}));
}

TEST(CompactSequenceMinerTest, AllMaintainedSequencesAreCompact) {
  // Mixed regimes; every maintained sequence must satisfy Definition 4.1
  // against the miner's own similarity matrix.
  CompactSequenceMiner miner(MinerOptions());
  const int regimes[] = {0, 1, 0, 2, 1, 0, 0, 2, 1, 0};
  for (int b = 0; b < 10; ++b) {
    miner.AddBlock(RegimeBlock(regimes[b], 400, 40 + b));
  }
  for (const auto& sequence : miner.sequences()) {
    EXPECT_TRUE(miner.IsCompact(sequence));
  }
}

TEST(CompactSequenceMinerTest, PaperWorkedExample) {
  // Paper example after Definition 4.1: blocks D1..D4 with similar pairs
  // exactly (1,2), (1,3), (1,4), (2,4). Then {D1,D2,D4} is compact while
  // {D1,D2,D3} (pairwise fails) and {D1,D4} (hole at D2) are not.
  // We validate the IsCompact predicate on a miner whose matrix we build
  // from regime blocks is impractical; instead check the predicate logic
  // via a miner with hand-picked blocks is fragile, so this test uses the
  // algorithmic invariant on the miner's own sequences plus IsCompact on
  // hand-built index lists where the matrix allows it.
  CompactSequenceMiner miner(MinerOptions());
  // Construct A A B A-ish pattern where (0,1),(0,2)? We approximate the
  // paper's matrix with regimes: 0:A 1:A 2:B 3:A.
  miner.AddBlock(RegimeBlock(0, 500, 51));
  miner.AddBlock(RegimeBlock(0, 500, 52));
  miner.AddBlock(RegimeBlock(1, 500, 53));
  miner.AddBlock(RegimeBlock(0, 500, 54));
  // {0,1,3} must be compact; {0,3} alone is not (hole at 1: 1 is similar
  // to 0); {0,2} is not (dissimilar pair).
  EXPECT_TRUE(miner.IsCompact({0, 1, 3}));
  EXPECT_FALSE(miner.IsCompact({0, 3}));
  EXPECT_FALSE(miner.IsCompact({0, 2}));
}

TEST(CompactSequenceMinerTest, MaximalSequencesFilterSubsets) {
  CompactSequenceMiner miner(MinerOptions());
  for (int b = 0; b < 4; ++b) miner.AddBlock(RegimeBlock(0, 500, 60 + b));
  // Sequences are {0,1,2,3}, {1,2,3}, {2,3}, {3}; only the first is
  // maximal.
  const auto maximal = miner.MaximalSequences(2);
  ASSERT_EQ(maximal.size(), 1u);
  EXPECT_EQ(maximal[0], (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(CompactSequenceMinerTest, ScanCountsAndTimingReported) {
  CompactSequenceMiner miner(MinerOptions());
  miner.AddBlock(RegimeBlock(0, 400, 71));
  miner.AddBlock(RegimeBlock(1, 400, 72));  // dissimilar: forces scans
  EXPECT_GE(miner.last_add_seconds(), 0.0);
  EXPECT_GE(miner.last_scan_count(), 1u);
}

TEST(CompactSequenceMinerTest, SyntheticTraceSeparatesWeekdayFromWeekend) {
  // End-to-end smoke of the §5.3 experiment at 24h granularity: weekday
  // day blocks should chain together and exclude weekend + anomalous 9-9.
  TraceGenerator::Params params;
  params.rate_scale = 0.05;
  params.seed = 7;
  TraceGenerator gen(params);
  const auto trace = gen.Generate();
  const auto blocks = SegmentTrace(trace, 24, 24);  // from midnight 9-3

  CompactSequenceMiner::Options options;
  options.focus.minsup = 0.01;
  options.focus.num_items =
      TraceGenerator::kNumObjectTypes + TraceGenerator::kNumSizeBuckets;
  options.alpha = 0.99;
  CompactSequenceMiner miner(options);
  for (const auto& block : blocks) {
    miner.AddBlock(std::make_shared<TransactionBlock>(block));
  }
  // Block indices: 0 = Tue 9-3, ..., day i = Sep (3+i). Weekdays (not the
  // anomaly Mon 9-9 which is index 6) should pairwise chain.
  // Tue 9-3 (0) and Wed 9-4 (1) are both plain working days.
  EXPECT_TRUE(miner.Similar(0, 1));
  // Sat 9-7 (4) differs from Tue 9-3 (0).
  EXPECT_FALSE(miner.Similar(0, 4));
  // The anomalous Monday 9-9 (6) differs from normal weekdays and from
  // weekends.
  EXPECT_FALSE(miner.Similar(1, 6));
  EXPECT_FALSE(miner.Similar(4, 6));
  // Weekend days resemble each other: Sat 9-7 (4) vs Sun 9-8 (5).
  EXPECT_TRUE(miner.Similar(4, 5));
}

}  // namespace
}  // namespace demon
