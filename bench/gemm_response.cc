// Ablation for §3.2.3/§3.2.4: GEMM's response time vs the direct
// add+delete maintainer AuM on the most-recent-window option.
//
// Two regimes, as analyzed in the paper:
//  * BSS = <11...1>: AuM deletes one block and adds one per slide, so it
//    does roughly twice GEMM's time-critical work (GEMM's response is one
//    A_M addition; the other model updates are off-line).
//  * window-relative BSS = <1010...>: consecutive selected sets are
//    disjoint; AuM degenerates to rebuilding from scratch every slide
//    while GEMM's response time is unchanged.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/telemetry.h"
#include "core/aum.h"
#include "core/gemm.h"
#include "datagen/quest_generator.h"

namespace demon {
namespace {

using BlockPtr = std::shared_ptr<const TransactionBlock>;

std::vector<BlockPtr> MakeBlocks(size_t count, size_t block_size) {
  QuestParams params = bench::PaperQuestParams(count * block_size, 7);
  QuestGenerator gen(params);
  std::vector<BlockPtr> blocks;
  Tid tid = 0;
  for (size_t b = 0; b < count; ++b) {
    auto block =
        std::make_shared<TransactionBlock>(gen.NextBlock(block_size, tid));
    tid += block->size();
    block->mutable_info()->id = static_cast<BlockId>(b + 1);
    blocks.push_back(std::move(block));
  }
  return blocks;
}

void RunRegime(const char* name, const BlockSelectionSequence& bss, size_t w,
               const std::vector<BlockPtr>& blocks,
               const BordersOptions& options) {
  Gemm<BordersMaintainer, BlockPtr> gemm(
      bss, w, [&options] { return BordersMaintainer(options); });
  AuMItemsetMaintainer aum(options, bss, w);

  double gemm_response = 0.0;
  double gemm_offline = 0.0;
  double aum_total = 0.0;
  size_t slides = 0;
  size_t aum_blocks_touched = 0;
  for (size_t t = 0; t < blocks.size(); ++t) {
    // Time the two GEMM phases separately (the engine's histograms do
    // this in a deployment; here the bench drives GEMM directly).
    telemetry::ScopedTimer response_timer;
    gemm.BeginBlock(blocks[t]);
    const double response = response_timer.Stop();
    telemetry::ScopedTimer offline_timer;
    gemm.DrainOffline();
    const double offline = offline_timer.Stop();
    aum.AddBlock(blocks[t]);
    if (t + 1 > w) {  // steady state only
      gemm_response += response;
      gemm_offline += offline;
      aum_total += aum.last_stats().seconds;
      aum_blocks_touched +=
          aum.last_stats().blocks_added + aum.last_stats().blocks_removed;
      ++slides;
    }
  }
  std::printf("%-22s %10.3f %10.3f %10.3f %10.1f\n", name,
              gemm_response / slides, gemm_offline / slides,
              aum_total / slides,
              static_cast<double>(aum_blocks_touched) /
                  static_cast<double>(slides));
}

void Run() {
  const size_t block_size = bench::Scaled(100000, 2000);
  const size_t w = 6;
  const auto blocks = MakeBlocks(w + 8, block_size);

  BordersOptions options;
  options.minsup = 0.01;
  options.num_items = 1000;
  options.strategy = CountingStrategy::kEcut;

  bench::PrintHeader("GEMM vs AuM response time (most recent window, w=6)");
  std::printf("per-slide averages over %zu steady-state slides, block size "
              "%zu\n",
              size_t{8}, block_size);
  std::printf("%-22s %10s %10s %10s %10s\n", "BSS", "GEMM:resp",
              "GEMM:off", "AuM(s)", "AuM:blocks");

  RunRegime("<111111> (all ones)", BlockSelectionSequence::AllBlocks(), w,
            blocks, options);
  RunRegime("<101010> (alternate)",
            BlockSelectionSequence::WindowRelative(
                {true, false, true, false, true, false}),
            w, blocks, options);
  std::printf("shape check: AuM ~2x GEMM response for all-ones; AuM "
              "degenerates (touches ~2w/2 blocks) for alternating "
              "(paper §3.2.4)\n");
}

}  // namespace
}  // namespace demon

int main() {
  demon::Run();
  return 0;
}
