#ifndef DEMON_BENCH_MAINTENANCE_COMMON_H_
#define DEMON_BENCH_MAINTENANCE_COMMON_H_

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "itemsets/borders.h"

namespace demon::bench {

/// Shared driver for Figures 4-7 (Experiment 2): total model maintenance
/// time, split into detection and update phases, when a second block of
/// varying size and different distribution is added to a base dataset of
/// 2M.20L.1I.4pats.4plen (scaled), for PT-Scan / ECUT / ECUT+ update
/// counting at a given minimum support.
///
/// `second_num_patterns` / `second_avg_plen` select the second block's
/// distribution: 8pats.4plen for Figs 4-5, 4pats.5plen for Figs 6-7 (the
/// latter causes more change in the set of frequent itemsets).
inline void RunMaintenanceExperiment(const char* figure, double minsup,
                                     size_t second_num_patterns,
                                     double second_avg_plen) {
  const size_t first_n = Scaled(2000000, 20000);
  QuestParams first_params = PaperQuestParams(first_n, /*seed=*/7);

  // Base maintainers, one per strategy, each fed the first block.
  const auto first_block = [&] {
    QuestGenerator gen(first_params);
    return MakeSharedBlock(gen.GenerateAll());
  }();

  constexpr CountingStrategy kStrategies[] = {CountingStrategy::kPtScan,
                                              CountingStrategy::kEcut,
                                              CountingStrategy::kEcutPlus};
  std::vector<BordersMaintainer> bases;
  for (CountingStrategy strategy : kStrategies) {
    BordersOptions options;
    options.minsup = minsup;
    options.num_items = first_params.num_items;
    options.strategy = strategy;
    BordersMaintainer maintainer(options);
    maintainer.AddBlock(first_block);
    bases.push_back(std::move(maintainer));
  }

  std::printf("\n=== %s: first block %s, second block *.20L.1I.%zupats.%.0fplen,"
              " minsup=%.3f ===\n",
              figure, first_params.ToString().c_str(),
              second_num_patterns / 1000, second_avg_plen, minsup);
  std::printf("%-10s %12s %14s %14s %14s %12s\n", "blocksize", "detect(s)",
              "PT-Scan:upd(s)", "ECUT:upd(s)", "ECUT+:upd(s)", "candidates");

  // Paper sweeps 10K..400K (0.5% - 20% of the first block).
  const size_t paper_sizes[] = {10000, 25000,  50000,  75000,
                                100000, 150000, 200000, 400000};
  uint64_t seed = 1000;
  for (size_t paper_size : paper_sizes) {
    const size_t size = Scaled(paper_size, 200);
    QuestParams second_params = PaperQuestParams(size, ++seed);
    second_params.num_patterns = second_num_patterns;
    second_params.avg_pattern_len = second_avg_plen;
    QuestGenerator gen(second_params);
    const auto second_block =
        MakeSharedBlock(gen.NextBlock(size, first_block->size()));

    double detect = 0.0;
    double updates[3] = {0.0, 0.0, 0.0};
    size_t candidates = 0;
    for (size_t s = 0; s < 3; ++s) {
      BordersMaintainer maintainer = bases[s];  // copy, keep base pristine
      // Phase timings come from the maintainer's own instrumentation (a
      // fresh registry per run), not from re-timing around the call.
      telemetry::TelemetryRegistry registry;
      maintainer.set_telemetry(&registry);
      maintainer.AddBlock(second_block);
      if constexpr (telemetry::kEnabled) {
        updates[s] = HistogramSeconds(&registry, "borders/update_seconds");
        // Same work for every strategy, so the last one wins.
        detect = HistogramSeconds(&registry, "borders/detection_seconds");
      } else {
        updates[s] = maintainer.last_stats().update_seconds;
        detect = maintainer.last_stats().detection_seconds;
      }
      candidates = maintainer.last_stats().new_candidates;
    }
    std::printf("%-10zu %12.3f %14.3f %14.3f %14.3f %12zu\n", size, detect,
                updates[0], updates[1], updates[2], candidates);
  }
  std::printf("shape check: update dominates for PT-Scan; with ECUT/ECUT+ "
              "the detection phase dominates (paper §5.1)\n");
}

}  // namespace demon::bench

#endif  // DEMON_BENCH_MAINTENANCE_COMMON_H_
