// Reproduces Figures 6 and 7 of the paper: as Figures 4-5 but the second
// block comes from *.20L.1I.4pats.5plen — longer patterns, which cause
// more change in the set of frequent itemsets and hence a more expensive
// update phase.

#include "bench/maintenance_common.h"

int main() {
  demon::bench::RunMaintenanceExperiment("Figure 6", 0.008, 4000, 5.0);
  demon::bench::RunMaintenanceExperiment("Figure 7", 0.009, 4000, 5.0);
  return 0;
}
