// Incremental DBScan under block insertions (§3.2.4's cited substrate
// [EKS+98]): per-block cost of the incremental maintainer vs re-running
// batch DBScan on all accumulated points. Deletions — the expensive
// direction the paper contrasts with insertions — are exactly what GEMM
// lets a most-recent-window deployment avoid.

#include <cstdio>

#include "bench/bench_util.h"
#include "clustering/dbscan.h"
#include "datagen/cluster_generator.h"

namespace demon {
namespace {

void Run() {
  ClusterGenParams gen_params;
  gen_params.num_clusters = 30;
  gen_params.dim = 2;
  gen_params.max_sigma = 1.0;
  gen_params.noise_fraction = 0.02;
  gen_params.seed = 7;
  gen_params.num_points = 1;  // streamed
  ClusterGenerator gen(gen_params);

  DbscanParams params;
  params.eps = 1.5;
  params.min_pts = 5;
  const size_t block_size = bench::Scaled(100000, 3000);

  bench::PrintHeader("Incremental DBScan vs batch re-clustering (2-d, eps "
                     "1.5, minPts 5)");
  std::printf("%-6s %10s %14s %14s %10s\n", "block", "points", "incr(s)",
              "batch(s)", "clusters");

  IncrementalDbscan incremental(gen_params.dim, params);
  std::vector<double> all_coords;
  for (int b = 1; b <= 6; ++b) {
    const PointBlock block = gen.NextBlock(block_size);
    all_coords.insert(all_coords.end(), block.coords().begin(),
                      block.coords().end());

    telemetry::ScopedTimer incremental_timer;
    incremental.AddBlock(block);
    const double incremental_seconds = incremental_timer.Stop();

    telemetry::ScopedTimer batch_timer;
    const DbscanResult batch =
        Dbscan(all_coords, gen_params.dim, params);
    const double batch_seconds = batch_timer.Stop();

    std::printf("%-6d %10zu %14.3f %14.3f %10zu\n", b,
                all_coords.size() / gen_params.dim, incremental_seconds,
                batch_seconds, batch.num_clusters);
  }
  std::printf("shape check: batch re-clustering grows with the accumulated "
              "data and pulls away from the incremental per-block cost "
              "(which grows only with neighborhood density as the fixed "
              "clusters fill up)\n");
}

}  // namespace
}  // namespace demon

int main() {
  demon::Run();
  return 0;
}
