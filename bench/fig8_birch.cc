// Reproduces Figure 8 of the paper: running time of non-incremental BIRCH
// (re-clusters the whole database) vs BIRCH+ (resumes phase 1 on the new
// block only) as the size of the new block grows from 100K to 800K points
// (scaled), on top of a 1M.50c.5d base block with 2% uniform noise.
// The phase-2 time of BIRCH+ is reported separately, as in the figure.
//
// Expected shape: BIRCH grows with base+new; BIRCH+ grows only with the
// new block and is dominated by phase 1 on that block; phase 2 is a small
// near-constant cost.

#include <cstdio>

#include "bench/bench_util.h"
#include "clustering/birch.h"
#include "datagen/cluster_generator.h"

namespace demon {
namespace {

void Run() {
  const size_t base_n = bench::Scaled(1000000, 20000);

  ClusterGenParams params;
  params.num_points = base_n;
  params.num_clusters = 50;
  params.dim = 5;
  params.noise_fraction = 0.02;
  params.seed = 7;

  BirchOptions options;
  options.num_clusters = 50;
  // Weighted k-means phase 2: like the original BIRCH, its cost on the
  // in-memory sub-clusters is negligible next to scanning the data.
  options.phase2 = Phase2Algorithm::kWeightedKMeans;
  options.tree.max_leaf_entries = 1024;
  options.tree.leaf_capacity = 32;
  options.tree.branching = 16;

  bench::PrintHeader("Figure 8: BIRCH vs BIRCH+ (dataset 1M.50c.5d scaled)");
  std::printf("base block: %zu points, 50 clusters, 5-d, 2%% noise\n",
              base_n);
  std::printf("%-14s %12s %12s %14s\n", "new-block", "BIRCH(s)", "BIRCH+(s)",
              "Phase2(s)");

  const size_t paper_sizes[] = {100000, 200000, 300000, 400000,
                                500000, 600000, 700000, 800000};
  for (size_t paper_size : paper_sizes) {
    const size_t new_n = bench::Scaled(paper_size, 2000);

    // Fresh generator so base+new are drawn identically for both systems.
    ClusterGenerator gen(params);
    const auto base =
        std::make_shared<const PointBlock>(gen.NextBlock(base_n));
    const auto fresh =
        std::make_shared<const PointBlock>(gen.NextBlock(new_n));

    // BIRCH+: pay the base once (that model existed before the block
    // arrived), then time the incremental update.
    BirchPlus birch_plus(params.dim, options);
    birch_plus.AddBlock(*base);
    telemetry::ScopedTimer plus_timer;
    birch_plus.AddBlock(*fresh);
    const double plus_seconds = plus_timer.Stop();
    const double phase2_seconds = birch_plus.last_stats().phase2_seconds;

    // Non-incremental BIRCH re-clusters everything.
    telemetry::ScopedTimer birch_timer;
    BirchStats stats;
    RunBirch({base, fresh}, params.dim, options, &stats);
    const double birch_seconds = birch_timer.Stop();

    std::printf("%-14zu %12.3f %12.3f %14.3f\n", new_n, birch_seconds,
                plus_seconds, phase2_seconds);
  }
  std::printf("shape check: BIRCH+ should significantly outperform BIRCH "
              "at every size (paper §5.2)\n");
}

}  // namespace
}  // namespace demon

int main() {
  demon::Run();
  return 0;
}
