// The paper's §7 future work, implemented: (1) the impact of block
// granularity on the patterns discovered and (2) automatic selection of
// an appropriate granularity. For each candidate granularity the proxy
// trace is segmented, compact sequences are mined, and the structure is
// scored by coverage x separation (see patterns/granularity.h); the
// winner is the granularity that exposes consistent-but-distinct regimes.

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/trace_generator.h"
#include "patterns/cyclic.h"
#include "patterns/granularity.h"

namespace demon {
namespace {

void Run() {
  TraceGenerator::Params trace_params;
  trace_params.rate_scale = 0.05 * (bench::ScaleFactor() / 0.1);
  trace_params.seed = 7;
  TraceGenerator gen(trace_params);
  const auto trace = gen.Generate();

  const std::vector<int> hours = {24, 12, 8, 6, 4};
  std::vector<std::vector<TransactionBlock>> blocks;
  for (int h : hours) blocks.push_back(SegmentTrace(trace, h, 12));

  CompactSequenceMiner::Options options;
  options.focus.minsup = 0.01;
  options.focus.num_items =
      TraceGenerator::kNumObjectTypes + TraceGenerator::kNumSizeBuckets;
  options.alpha = 0.99;

  size_t best = 0;
  const auto reports = EvaluateGranularities(blocks, hours, options, &best);

  bench::PrintHeader("Automatic granularity selection (paper §7 future work)");
  std::printf("%-8s %8s %10s %10s %10s %10s\n", "gran(h)", "blocks",
              "max-seqs", "longest", "chaining", "objective");
  for (const auto& report : reports) {
    std::printf("%-8d %8zu %10zu %10zu %10.3f %10.3f\n",
                report.granularity_hours, report.num_blocks,
                report.num_maximal_sequences, report.longest_sequence,
                report.chaining_score, report.objective);
  }
  std::printf("selected granularity: %d hours\n",
              reports[best].granularity_hours);

  // Cyclic post-processing (§4) at the selected granularity: re-mine and
  // report periodic patterns inside the longest compact sequence.
  CompactSequenceMiner miner(options);
  for (const auto& block : blocks[best]) {
    miner.AddBlock(std::make_shared<TransactionBlock>(block));
  }
  const auto maximal = miner.MaximalSequences(4);
  std::printf("\ncyclic patterns inside the longest compact sequences:\n");
  size_t shown = 0;
  for (const auto& sequence : maximal) {
    for (const auto& cycle : ExtractCyclicSequences(sequence, 4)) {
      std::printf("  period %zu blocks (%zu h): blocks", cycle.period,
                  cycle.period * static_cast<size_t>(
                                     reports[best].granularity_hours));
      for (size_t index : cycle.blocks) std::printf(" %zu", index);
      std::printf("\n");
      if (++shown >= 6) break;
    }
    if (shown >= 6) break;
  }
  if (shown == 0) std::printf("  (none of length >= 4)\n");
  std::printf("shape check: daily/weekly periodicities should appear "
              "(period = 24h/(gran) or 7*24h/(gran) blocks)\n");
}

}  // namespace
}  // namespace demon

int main() {
  demon::Run();
  return 0;
}
