// Reproduces Figure 3 of the paper: the extra disk space needed to
// materialize the TID-lists of all frequent 2-itemsets (the ECUT+
// configuration), as a percentage of the dataset size, for minimum
// supports 0.008, 0.010 and 0.012 on {2M,4M}.20L.1I.4pats.4plen.
//
// The paper reports 25.3% / 11.8% / 5.3%; the shape to reproduce is that
// the percentage shrinks rapidly as the threshold grows and stays well
// under the full dataset size, and that it is (near) identical for the 2M
// and 4M datasets (it is a property of the distribution, not the size).

#include <cstdio>

#include "bench/bench_util.h"
#include "itemsets/apriori.h"
#include "tidlist/tidlist_store.h"

namespace demon {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 3: % extra space for frequent 2-itemset TID-lists");
  std::printf("%-28s %8s %12s %12s %14s\n", "dataset", "minsup",
              "freq-2-sets", "extra slots", "% of dataset");

  for (size_t millions : {2, 4}) {
    const size_t n = bench::Scaled(millions * 1000000, 20000);
    QuestParams params = bench::PaperQuestParams(n, /*seed=*/7);
    QuestGenerator gen(params);
    const auto block = bench::MakeSharedBlock(gen.GenerateAll());
    // Mine once at the lowest threshold; L(κ') ⊆ L(κ) for κ' > κ with the
    // same exact counts, so higher thresholds filter instead of re-mining.
    const ItemsetModel model = Apriori({block}, 0.008, params.num_items);
    for (double minsup : {0.008, 0.010, 0.012}) {
      const uint64_t min_count = static_cast<uint64_t>(
          minsup * static_cast<double>(model.num_transactions()) + 0.999999);
      PairMaterializationSpec spec;
      for (const auto& pair : model.Frequent2ItemsetsBySupport()) {
        if (model.CountOf({pair.first, pair.second}) >= min_count) {
          spec.pairs.push_back(pair);
        }
      }
      const auto lists =
          BlockTidLists::Build(*block, params.num_items, &spec);
      const double percent = 100.0 *
                             static_cast<double>(lists->pair_list_slots()) /
                             static_cast<double>(lists->item_list_slots());
      std::printf("%-28s %8.3f %12zu %12zu %13.1f%%\n",
                  params.ToString().c_str(), minsup, spec.pairs.size(),
                  lists->pair_list_slots(), percent);
    }
  }
  std::printf(
      "\npaper (2M/4M.20L.1I.4pats.4plen): 25.3%% @0.008, 11.8%% @0.010, "
      "5.3%% @0.012\n");
}

}  // namespace
}  // namespace demon

int main() {
  demon::Run();
  return 0;
}
