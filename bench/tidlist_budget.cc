// Budget sweep for the tiered TID-list store (DESIGN.md "Storage tiers"):
// counting time and paging activity as the resident-byte budget shrinks
// from unbounded to an eighth of the encoded footprint. Beyond timing, the
// sweep re-verifies the invariants it depends on: counts stay bit-identical
// across budgets, strategies (PT-Scan / ECUT / ECUT+) and thread counts,
// the quiesced resident set never exceeds the budget, and the peak exceeds
// it by at most the pinned working set (one block payload per concurrent
// counting shard). Writes a BENCH_tidlist.json artifact for
// scripts/bench_snapshot.sh.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/check.h"
#include "common/flags.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "itemsets/apriori.h"
#include "itemsets/counting_context.h"

namespace demon {
namespace {

struct SweepRow {
  std::string name;
  size_t budget_bytes = 0;  // 0 = unbounded
  size_t threads = 1;
  double ecut_ms = 0.0;
  double ecutplus_ms = 0.0;
  size_t peak_resident_bytes = 0;
  size_t final_resident_bytes = 0;
  uint64_t page_ins = 0;
  uint64_t evictions = 0;
  uint64_t spills = 0;
};

TidListStore BuildStore(
    size_t budget,
    const std::vector<std::shared_ptr<const TransactionBlock>>& blocks,
    size_t num_items, const PairMaterializationSpec& spec) {
  TidListStoreOptions options;
  options.memory_budget_bytes = budget;
  TidListStore store(options);
  for (const auto& block : blocks) {
    store.Append(BlockTidLists::Build(*block, num_items, &spec));
  }
  return store;
}

void CheckEqual(const std::vector<uint64_t>& got,
                const std::vector<uint64_t>& want, const char* what) {
  DEMON_CHECK_MSG(got == want,
                  (std::string("counts diverged: ") + what).c_str());
}

/// Times ECUT and ECUT+ on `store`, checking both against `reference`
/// every repetition, and snapshots the pager counters into the row.
SweepRow MeasureStore(const std::string& name, size_t budget,
                      CountingContext* context, size_t threads,
                      const std::vector<Itemset>& sample,
                      const TidListStore& store,
                      const std::vector<uint64_t>& reference) {
  constexpr int kReps = 5;
  SweepRow row;
  row.name = name;
  row.budget_bytes = budget;
  row.threads = threads;
  {
    telemetry::ScopedTimer timer;
    for (int rep = 0; rep < kReps; ++rep) {
      CheckEqual(context->Ecut(sample, store, /*use_pair_lists=*/false),
                 reference, name.c_str());
    }
    row.ecut_ms = timer.Stop() * 1e3 / kReps;
  }
  {
    telemetry::ScopedTimer timer;
    for (int rep = 0; rep < kReps; ++rep) {
      CheckEqual(context->Ecut(sample, store, /*use_pair_lists=*/true),
                 reference, name.c_str());
    }
    row.ecutplus_ms = timer.Stop() * 1e3 / kReps;
  }
  if (store.pager() != nullptr) {
    const ExtentPager& pager = *store.pager();
    row.peak_resident_bytes = pager.peak_resident_bytes();
    row.final_resident_bytes = pager.resident_bytes();
    row.page_ins = pager.page_ins();
    row.evictions = pager.evictions();
    row.spills = pager.spills();
  }
  return row;
}

std::string RowsJson(const std::vector<SweepRow>& rows) {
  std::string out;
  char line[512];
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::snprintf(
        line, sizeof(line),
        "    {\"name\": \"%s\", \"budget_bytes\": %zu, \"threads\": %zu, "
        "\"ecut_ms\": %.3f, \"ecutplus_ms\": %.3f, "
        "\"peak_resident_bytes\": %zu, \"final_resident_bytes\": %zu, "
        "\"page_ins\": %llu, \"evictions\": %llu, \"spills\": %llu}%s\n",
        r.name.c_str(), r.budget_bytes, r.threads, r.ecut_ms, r.ecutplus_ms,
        r.peak_resident_bytes, r.final_resident_bytes,
        static_cast<unsigned long long>(r.page_ins),
        static_cast<unsigned long long>(r.evictions),
        static_cast<unsigned long long>(r.spills),
        i + 1 < rows.size() ? "," : "");
    out += line;
  }
  return out;
}

void Run(const std::string& json_out) {
  constexpr size_t kNumBlocks = 8;
  const size_t per_block = bench::Scaled(200000, 3000);
  QuestParams params = bench::PaperQuestParams(per_block, 11);
  std::vector<std::shared_ptr<const TransactionBlock>> blocks;
  for (size_t b = 0; b < kNumBlocks; ++b) {
    QuestParams p = params;
    p.seed = params.seed + b;
    QuestGenerator gen(p);
    blocks.push_back(bench::MakeSharedBlock(gen.GenerateAll()));
  }

  const double minsup = 0.008;
  const ItemsetModel model = Apriori(blocks, minsup, params.num_items);
  PairMaterializationSpec spec;
  spec.pairs = model.Frequent2ItemsetsBySupport();

  // Negative-border itemsets are what the monitors re-count every block:
  // ECUT+ covers the size >= 3 ones with materialized pair lists.
  std::vector<Itemset> sample;
  for (Itemset& itemset : model.NegativeBorder()) {
    if (itemset.size() >= 2) sample.push_back(std::move(itemset));
  }
  Rng rng(17);
  rng.Shuffle(&sample);
  if (sample.size() > 60) sample.resize(60);

  // The unbounded store fixes the footprint the budgets are quoted
  // against, and supplies the encoding census.
  TidListStore unbounded = BuildStore(0, blocks, params.num_items, spec);
  const size_t footprint = unbounded.TotalPayloadBytes();
  size_t largest = 0;
  size_t census[kNumTidEncodings] = {};
  for (const auto& block : unbounded.blocks()) {
    if (block->payload_bytes() > largest) largest = block->payload_bytes();
    for (size_t e = 0; e < kNumTidEncodings; ++e) {
      census[e] += block->EncodingCensus(static_cast<TidEncoding>(e));
    }
  }

  CountingContext sequential;
  const auto reference = sequential.PtScan(sample, blocks);
  CheckEqual(sequential.Ecut(sample, unbounded, false), reference, "ecut");
  CheckEqual(sequential.Ecut(sample, unbounded, true), reference, "ecut+");

  // Overcommit >= 4x at the smallest budget is the acceptance bar for the
  // sweep; the budget still fits the largest single block, so a lone
  // sequential shard can always get back under the target.
  const size_t smallest = footprint / 8 > largest ? footprint / 8 : largest;
  DEMON_CHECK_MSG(footprint >= 4 * smallest,
                  "footprint must overcommit the smallest budget 4x");

  bench::PrintHeader(
      "TID-list budget sweep (" + std::to_string(kNumBlocks) + " blocks x " +
      params.ToString() + ", minsup 0.008, " + std::to_string(sample.size()) +
      " border itemsets)");
  std::printf("footprint %zu bytes, largest block %zu bytes, census "
              "raw/delta/bitmap = %zu/%zu/%zu\n",
              footprint, largest, census[0], census[1], census[2]);
  std::printf("%-22s %12s %8s %10s %10s %12s %9s %9s %7s\n", "config",
              "budget", "threads", "ecut(ms)", "ecut+(ms)", "peak", "pageins",
              "evicts", "spills");

  std::vector<SweepRow> rows;
  rows.push_back(MeasureStore("unbounded", 0, &sequential, 1, sample,
                              unbounded, reference));
  for (const size_t budget : {footprint / 2, footprint / 4, smallest}) {
    const TidListStore store =
        BuildStore(budget, blocks, params.num_items, spec);
    rows.push_back(MeasureStore(
        "budget_1_" + std::to_string((footprint + budget - 1) / budget),
        budget, &sequential, 1, sample, store, reference));
    // A quiesced sequential run ends at the target and peaks at most one
    // pinned block above it.
    DEMON_CHECK(rows.back().final_resident_bytes <= budget);
    DEMON_CHECK(rows.back().peak_resident_bytes <= budget + largest);
  }
  DEMON_CHECK_MSG(rows.back().page_ins > 0 && rows.back().evictions > 0 &&
                      rows.back().spills > 0,
                  "smallest budget must exercise the paging paths");

  // Threaded rerun at the smallest budget: counts stay bit-identical while
  // up to one block per shard is pinned concurrently.
  {
    constexpr size_t kThreads = 4;
    ThreadPool pool(kThreads);
    CountingContext threaded(&pool);
    const TidListStore store =
        BuildStore(smallest, blocks, params.num_items, spec);
    rows.push_back(MeasureStore("smallest_threads4", smallest, &threaded,
                                kThreads, sample, store, reference));
    DEMON_CHECK(rows.back().peak_resident_bytes <=
                smallest + kThreads * largest);
  }

  for (const SweepRow& r : rows) {
    std::printf("%-22s %12zu %8zu %10.2f %10.2f %12zu %9llu %9llu %7llu\n",
                r.name.c_str(), r.budget_bytes, r.threads, r.ecut_ms,
                r.ecutplus_ms, r.peak_resident_bytes,
                static_cast<unsigned long long>(r.page_ins),
                static_cast<unsigned long long>(r.evictions),
                static_cast<unsigned long long>(r.spills));
  }
  std::printf("shape check: counts identical at every budget; paging cost "
              "grows as the budget shrinks\n");

  char context[512];
  std::snprintf(
      context, sizeof(context),
      "{\n  \"context\": {\"benchmark\": \"tidlist_budget\", "
      "\"num_blocks\": %zu, \"transactions_per_block\": %zu, "
      "\"num_items\": %zu, \"itemsets_counted\": %zu, "
      "\"total_payload_bytes\": %zu, \"largest_block_payload_bytes\": %zu, "
      "\"encoding_census\": {\"raw\": %zu, \"delta\": %zu, \"bitmap\": %zu}"
      "},\n  \"benchmarks\": [\n",
      kNumBlocks, per_block, params.num_items, sample.size(), footprint,
      largest, census[0], census[1], census[2]);
  const std::string json = std::string(context) + RowsJson(rows) + "  ]\n}\n";
  if (bench::WriteFileContents(json_out, json)) {
    std::printf("wrote %s\n", json_out.c_str());
  }
}

}  // namespace
}  // namespace demon

int main(int argc, char** argv) {
  demon::flags::FlagSet flags("tidlist_budget",
                              "TID-list storage-tier census benchmark.");
  flags.DefineString("json_out", "BENCH_tidlist.json",
                     "results JSON output path");
  const demon::Status parsed = flags.Parse(argc, argv);
  if (flags.help_requested()) {
    std::printf("%s", flags.HelpText().c_str());
    return 0;
  }
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 2;
  }
  demon::Run(flags.GetString("json_out"));
  return 0;
}
