// Reproduces Figure 2 of the paper: support-counting time of the update
// phase as a function of the number of itemsets counted (|S| from 5 to
// 180), for PT-Scan, ECUT and ECUT+, on the datasets
// {2M,4M}.20L.1I.4pats.4plen at minsup 0.01 (sizes scaled by DEMON_SCALE).
//
// The itemsets counted are sampled from the negative border, exactly as
// in Experiment 1. Expected shape: all algorithms scale linearly in |S|;
// ECUT beats PT-Scan for small |S| with a crossover well below |S|=180;
// ECUT+ beats PT-Scan over the entire range.
//
// --trace_out=PATH (stripped before google-benchmark sees the args) runs
// one instrumented pass of each strategy at |S|=180 on a 4-thread pool
// and writes a Chrome trace-event file showing the per-shard counting
// spans; --telemetry_out=PATH writes the kernel counters in Prometheus
// text format.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "itemsets/apriori.h"
#include "itemsets/counting_context.h"
#include "itemsets/support_counting.h"

namespace demon {
namespace {

constexpr double kMinsup = 0.01;

struct Fixture {
  std::vector<std::shared_ptr<const TransactionBlock>> blocks;
  TidListStore plain_store;
  TidListStore pair_store;
  std::vector<Itemset> border;  // sampled pool of itemsets to count
  size_t num_items = 1000;
};

const Fixture& GetFixture(size_t paper_millions) {
  static Fixture fixtures[2];
  static bool initialized[2] = {false, false};
  const size_t slot = paper_millions == 2 ? 0 : 1;
  if (!initialized[slot]) {
    Fixture& f = fixtures[slot];
    const size_t n = bench::Scaled(paper_millions * 1000000, 20000);
    QuestParams params = bench::PaperQuestParams(n, /*seed=*/7);
    QuestGenerator gen(params);
    f.blocks.push_back(bench::MakeSharedBlock(gen.GenerateAll()));
    const ItemsetModel model = Apriori(f.blocks, kMinsup, f.num_items);

    // TID-list stores: plain (ECUT) and with all frequent 2-itemsets
    // materialized (ECUT+, the configuration of Experiment 1).
    f.plain_store.Append(BlockTidLists::Build(*f.blocks[0], f.num_items));
    PairMaterializationSpec spec;
    spec.pairs = model.Frequent2ItemsetsBySupport();
    f.pair_store.Append(
        BlockTidLists::Build(*f.blocks[0], f.num_items, &spec));

    // Pool of negative-border itemsets, shuffled for sampling. Itemsets
    // of size >= 3 come first: they are the update-phase candidates whose
    // counting ECUT+ accelerates (every 2-subset of a border itemset is
    // frequent, hence materialized); infrequent 2-itemsets by definition
    // have no pair list. The paper's border at its scale is rich in
    // larger itemsets; stratifying reproduces that mix.
    std::vector<Itemset> large;
    std::vector<Itemset> pairs_only;
    for (Itemset& itemset : model.NegativeBorder()) {
      (itemset.size() >= 3 ? large : pairs_only)
          .push_back(std::move(itemset));
    }
    Rng rng(13);
    rng.Shuffle(&large);
    rng.Shuffle(&pairs_only);
    f.border = std::move(large);
    f.border.insert(f.border.end(), pairs_only.begin(), pairs_only.end());
    initialized[slot] = true;
  }
  return fixtures[slot];
}

void RunCounting(benchmark::State& state, CountingStrategy strategy,
                 size_t paper_millions) {
  const Fixture& f = GetFixture(paper_millions);
  const size_t s = static_cast<size_t>(state.range(0));
  std::vector<Itemset> sample(f.border.begin(),
                              f.border.begin() +
                                  std::min(s, f.border.size()));
  uint64_t total = 0;
  CountingStats stats;
  for (auto _ : state) {
    const TidListStore& store = strategy == CountingStrategy::kEcutPlus
                                    ? f.pair_store
                                    : f.plain_store;
    stats = CountingStats{};
    const auto counts =
        CountSupports(strategy, sample, f.blocks, store, &stats);
    total += counts.empty() ? 0 : counts[0];
    benchmark::DoNotOptimize(total);
  }
  state.counters["itemsets"] = static_cast<double>(sample.size());
  // "Data fetched" in TID slots / item occurrences — the quantity the
  // paper's analysis predicts to be 1-2 orders smaller for ECUT.
  state.counters["slots"] = static_cast<double>(stats.slots_fetched);
}

void BM_PtScan2M(benchmark::State& state) {
  RunCounting(state, CountingStrategy::kPtScan, 2);
}
void BM_Ecut2M(benchmark::State& state) {
  RunCounting(state, CountingStrategy::kEcut, 2);
}
void BM_EcutPlus2M(benchmark::State& state) {
  RunCounting(state, CountingStrategy::kEcutPlus, 2);
}
void BM_PtScan4M(benchmark::State& state) {
  RunCounting(state, CountingStrategy::kPtScan, 4);
}
void BM_Ecut4M(benchmark::State& state) {
  RunCounting(state, CountingStrategy::kEcut, 4);
}
void BM_EcutPlus4M(benchmark::State& state) {
  RunCounting(state, CountingStrategy::kEcutPlus, 4);
}

void SetSizes(benchmark::internal::Benchmark* b) {
  for (int s : {5, 10, 20, 40, 80, 120, 180}) b->Arg(s);
  b->Unit(benchmark::kMillisecond);
}

// Thread-count sweep of the parallel counting kernel at the largest |S|.
// The pool and context live outside the timing loop, so the steady state
// is allocation-free; threads=1 is the sequential (no-pool) baseline the
// parallel runs must match bit-identically.
void RunCountingThreads(benchmark::State& state, CountingStrategy strategy,
                        size_t paper_millions) {
  const Fixture& f = GetFixture(paper_millions);
  const size_t s = static_cast<size_t>(state.range(0));
  const size_t threads = static_cast<size_t>(state.range(1));
  std::vector<Itemset> sample(f.border.begin(),
                              f.border.begin() +
                                  std::min(s, f.border.size()));
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads);
  CountingContext context(pool.get());
  const TidListStore& store = strategy == CountingStrategy::kEcutPlus
                                  ? f.pair_store
                                  : f.plain_store;
  uint64_t total = 0;
  for (auto _ : state) {
    const auto counts = context.Count(strategy, sample, f.blocks, store);
    total += counts.empty() ? 0 : counts[0];
    benchmark::DoNotOptimize(total);
  }
  state.counters["itemsets"] = static_cast<double>(sample.size());
  state.counters["threads"] = static_cast<double>(threads);
}

void BM_PtScan2MThreads(benchmark::State& state) {
  RunCountingThreads(state, CountingStrategy::kPtScan, 2);
}
void BM_Ecut2MThreads(benchmark::State& state) {
  RunCountingThreads(state, CountingStrategy::kEcut, 2);
}
void BM_EcutPlus2MThreads(benchmark::State& state) {
  RunCountingThreads(state, CountingStrategy::kEcutPlus, 2);
}

void SetThreads(benchmark::internal::Benchmark* b) {
  for (int t : {1, 2, 4, 8}) b->Args({180, t});
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_PtScan2M)->Apply(SetSizes);
BENCHMARK(BM_Ecut2M)->Apply(SetSizes);
BENCHMARK(BM_EcutPlus2M)->Apply(SetSizes);
BENCHMARK(BM_PtScan4M)->Apply(SetSizes);
BENCHMARK(BM_Ecut4M)->Apply(SetSizes);
BENCHMARK(BM_EcutPlus4M)->Apply(SetSizes);
BENCHMARK(BM_PtScan2MThreads)->Apply(SetThreads);
BENCHMARK(BM_Ecut2MThreads)->Apply(SetThreads);
BENCHMARK(BM_EcutPlus2MThreads)->Apply(SetThreads);

/// One instrumented pass of each strategy at |S|=180 on a 4-thread pool;
/// the registry collects the per-shard spans and kernel counters.
void TracedCountingRun(const std::string& trace_out,
                       const std::string& telemetry_out) {
  const Fixture& f = GetFixture(2);
  const std::vector<Itemset> sample(
      f.border.begin(),
      f.border.begin() + std::min<size_t>(180, f.border.size()));
  telemetry::TelemetryRegistry registry;
  ThreadPool pool(4);
  CountingContext context(&pool);
  context.set_telemetry(&registry);
  for (CountingStrategy strategy :
       {CountingStrategy::kPtScan, CountingStrategy::kEcut,
        CountingStrategy::kEcutPlus}) {
    const TidListStore& store = strategy == CountingStrategy::kEcutPlus
                                    ? f.pair_store
                                    : f.plain_store;
    context.Count(strategy, sample, f.blocks, store);
  }
  if (!trace_out.empty() &&
      bench::WriteFileContents(trace_out, registry.ChromeTraceJson())) {
    std::printf("wrote Chrome trace to %s\n", trace_out.c_str());
  }
  if (!telemetry_out.empty() &&
      bench::WriteFileContents(telemetry_out, registry.PrometheusText())) {
    std::printf("wrote Prometheus metrics to %s\n", telemetry_out.c_str());
  }
}

}  // namespace
}  // namespace demon

int main(int argc, char** argv) {
  // Strip our flags before google-benchmark parses the command line:
  // ParseKnown consumes --trace_out=/--telemetry_out= and leaves the
  // --benchmark_* arguments in place for benchmark::Initialize.
  demon::flags::FlagSet flags("fig2_counting",
                              "Figure 2 counting-strategy benchmark.");
  flags.DefineString("trace_out", "", "Chrome-trace output path");
  flags.DefineString("telemetry_out", "", "Prometheus metrics output path");
  const demon::Status parsed = flags.ParseKnown(&argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 2;
  }
  const std::string trace_out = flags.GetString("trace_out");
  const std::string telemetry_out = flags.GetString("telemetry_out");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!trace_out.empty() || !telemetry_out.empty()) {
    demon::TracedCountingRun(trace_out, telemetry_out);
  }
  return 0;
}
