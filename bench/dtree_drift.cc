// Decision-tree model class under systematic evolution: incremental
// maintenance cost vs rebuild-from-scratch, and the GEMM most-recent-
// window option's accuracy advantage under concept drift. Extends the
// paper's framework to the third FOCUS model class (the paper defers
// decision-tree maintenance to BOAT [GGRL99b]; this is our stand-in).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/gemm.h"
#include "datagen/labeled_generator.h"
#include "dtree/dtree_maintainer.h"

namespace demon {
namespace {

using BlockPtr = std::shared_ptr<const LabeledBlock>;

void Run() {
  LabeledSchema schema;
  schema.attribute_cardinalities.assign(10, 3);
  schema.num_classes = 4;

  LabeledGenerator::Params gen_params;
  gen_params.schema = schema;
  gen_params.concept_depth = 5;
  gen_params.label_noise = 0.05;
  gen_params.seed = 7;
  LabeledGenerator old_concept(gen_params);
  gen_params.seed = 99;
  LabeledGenerator new_concept(gen_params);

  const size_t block_size = bench::Scaled(200000, 5000);
  const size_t w = 4;
  DTreeOptions options;
  options.min_split_weight = 200.0;

  DTreeMaintainer unrestricted(schema, options);
  Gemm<DTreeMaintainer, BlockPtr> windowed(
      BlockSelectionSequence::AllBlocks(), w,
      [&] { return DTreeMaintainer(schema, options); });

  bench::PrintHeader("Decision trees under drift (block size " +
                     std::to_string(block_size) + ", drift at block 7)");
  std::printf("%-6s %12s %12s %12s | %10s %10s\n", "block", "incr(s)",
              "rebuild(s)", "leaves", "UW acc", "MRW acc");

  std::vector<BlockPtr> history;
  for (int b = 1; b <= 12; ++b) {
    LabeledGenerator& source = b <= 6 ? old_concept : new_concept;
    auto block = std::make_shared<LabeledBlock>(source.NextBlock(block_size));
    history.push_back(block);

    telemetry::ScopedTimer incremental_timer;
    unrestricted.AddBlock(block);
    windowed.AddBlock(block);
    const double incremental_seconds = incremental_timer.Stop();

    // Rebuild-from-scratch baseline: re-reads the whole history.
    telemetry::ScopedTimer rebuild_timer;
    DTreeMaintainer rebuild(schema, options);
    for (const auto& old : history) rebuild.AddBlock(old);
    const double rebuild_seconds = rebuild_timer.Stop();

    const LabeledBlock test = (b <= 6 ? old_concept : new_concept)
                                  .NextBlock(block_size / 4);
    std::printf("%-6d %12.3f %12.3f %12zu | %10.3f %10.3f\n", b,
                incremental_seconds, rebuild_seconds,
                unrestricted.model().NumLeaves(),
                unrestricted.Accuracy(test),
                windowed.current().Accuracy(test));
  }
  std::printf("shape check: incremental cost flat while rebuild grows "
              "linearly; after the drift the MRW model's accuracy "
              "recovers, the UW model's stays depressed\n");
}

}  // namespace
}  // namespace demon

int main() {
  demon::Run();
  return 0;
}
