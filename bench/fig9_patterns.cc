// Reproduces Figure 9 of the paper: the compact block sequences
// discovered in the (synthetic stand-in for the) DEC web proxy traces at
// block granularities of 4, 6, 8, 12 and 24 hours, mining frequent
// itemsets of {object type, size bucket} at 1% minimum support.
//
// Expected patterns, mirroring the paper's table: working-day daytime
// blocks chain across days (excluding the anomalous Monday 9-9); Tue/Thu
// evenings form their own sequences; weekends (and the Labor Day holiday
// 9-2) separate from weekdays; and 9-9 matches nothing.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "datagen/trace_generator.h"
#include "patterns/compact_sequences.h"

namespace demon {
namespace {

std::string DescribeSequence(const CompactSequenceMiner& miner,
                             const std::vector<size_t>& sequence) {
  // Piecewise appends: chained operator+ trips GCC 12's -Wrestrict false
  // positive (PR105329) under -O2 -Werror.
  std::string out = "[";
  out += std::to_string(sequence.size());
  out += " blocks] ";
  const size_t show = sequence.size() > 6 ? 3 : sequence.size();
  for (size_t i = 0; i < show; ++i) {
    if (i > 0) out += ", ";
    out += miner.blocks()[sequence[i]]->info().label;
  }
  if (sequence.size() > 6) {
    out += ", ... , ";
    out += miner.blocks()[sequence.back()]->info().label;
  }
  return out;
}

void Run() {
  TraceGenerator::Params trace_params;
  trace_params.rate_scale = 0.05 * (bench::ScaleFactor() / 0.1);
  trace_params.seed = 7;
  TraceGenerator gen(trace_params);
  const auto trace = gen.Generate();
  std::printf("synthetic DEC-style proxy trace: %zu requests over 21 days\n",
              trace.size());

  for (int granularity : {24, 12, 8, 6, 4}) {
    const auto blocks = SegmentTrace(trace, granularity, 12);

    CompactSequenceMiner::Options options;
    options.focus.minsup = 0.01;
    options.focus.num_items =
        TraceGenerator::kNumObjectTypes + TraceGenerator::kNumSizeBuckets;
    options.alpha = 0.99;
    CompactSequenceMiner miner(options);
    for (const auto& block : blocks) {
      miner.AddBlock(std::make_shared<TransactionBlock>(block));
    }

    std::printf("\n=== Figure 9: granularity %d hr (%zu blocks) ===\n",
                granularity, blocks.size());
    const auto maximal = miner.MaximalSequences(/*min_length=*/3);
    size_t shown = 0;
    for (const auto& sequence : maximal) {
      std::printf("  %s\n", DescribeSequence(miner, sequence).c_str());
      if (++shown >= 8) {
        std::printf("  ... (%zu more)\n", maximal.size() - shown);
        break;
      }
    }

    // The anomalous Monday 9-9 must be absent from every long sequence.
    size_t anomaly_hits = 0;
    for (const auto& sequence : maximal) {
      for (size_t index : sequence) {
        if (miner.blocks()[index]->info().label.find("09-09") !=
            std::string::npos) {
          ++anomaly_hits;
        }
      }
    }
    std::printf("  blocks of anomalous Mon 09-09 inside sequences of >=3: "
                "%zu (paper: excluded from all patterns)\n",
                anomaly_hits);
  }
}

}  // namespace
}  // namespace demon

int main() {
  demon::Run();
  return 0;
}
