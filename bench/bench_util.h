#ifndef DEMON_BENCH_BENCH_UTIL_H_
#define DEMON_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/telemetry.h"
#include "data/block.h"
#include "datagen/quest_generator.h"

namespace demon::bench {

/// Global scale knob for every benchmark: dataset sizes are the paper's
/// sizes multiplied by this factor. Default 0.1 keeps the full suite in
/// the minutes range on a laptop; DEMON_SCALE=1 reproduces paper-sized
/// runs (the 200 MHz Pentium Pro of the paper is ~2 orders slower than a
/// modern core, so shapes — not absolute times — are the comparison).
inline double ScaleFactor() {
  const char* env = std::getenv("DEMON_SCALE");
  if (env == nullptr) return 0.1;
  const double v = std::atof(env);
  return v > 0.0 ? v : 0.1;
}

/// n scaled by ScaleFactor(), at least `min_n`.
inline size_t Scaled(size_t n, size_t min_n = 1000) {
  const double scaled = static_cast<double>(n) * ScaleFactor();
  const size_t result = static_cast<size_t>(scaled);
  return result < min_n ? min_n : result;
}

/// The paper's base Quest configuration `*.20L.1I.4pats.4plen`.
inline QuestParams PaperQuestParams(size_t num_transactions, uint64_t seed) {
  QuestParams params;
  params.num_transactions = num_transactions;
  params.avg_transaction_len = 20.0;
  params.num_items = 1000;
  params.num_patterns = 4000;
  params.avg_pattern_len = 4.0;
  params.seed = seed;
  return params;
}

inline std::shared_ptr<const TransactionBlock> MakeSharedBlock(
    TransactionBlock block) {
  return std::make_shared<TransactionBlock>(std::move(block));
}

/// Prints a horizontal rule + title, paper-figure style.
inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Total seconds recorded in a registry histogram — how the fig-benches
/// read phase timings (the instrumented code records them; the bench does
/// not re-time around calls). 0 when the histogram has no samples (e.g.
/// DEMON_TELEMETRY=OFF builds, where components never bind histograms).
inline double HistogramSeconds(telemetry::TelemetryRegistry* registry,
                               const char* name) {
  return registry->histogram(name)->sum();
}

/// Per-phase histogram summaries as a JSON document, for
/// scripts/bench_snapshot.sh's BENCH_telemetry.json artifact.
inline std::string HistogramSummariesJson(
    const telemetry::TelemetryRegistry& registry) {
  std::string out = "{\n  \"histograms\": [\n";
  const std::vector<telemetry::HistogramSummary> summaries =
      registry.HistogramSummaries();
  for (size_t i = 0; i < summaries.size(); ++i) {
    const telemetry::HistogramSummary& s = summaries[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"name\": \"%s\", \"count\": %llu, \"sum\": %.6g, "
                  "\"p50\": %.6g, \"p95\": %.6g, \"max\": %.6g}%s\n",
                  s.name.c_str(), static_cast<unsigned long long>(s.count),
                  s.sum, s.p50, s.p95, s.max,
                  i + 1 < summaries.size() ? "," : "");
    out += line;
  }
  out += "  ]\n}\n";
  return out;
}

/// Writes `contents` to `path` (for --trace_out= / --telemetry_out=).
inline bool WriteFileContents(const std::string& path,
                              const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fwrite(contents.data(), 1, contents.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace demon::bench

#endif  // DEMON_BENCH_BENCH_UTIL_H_
