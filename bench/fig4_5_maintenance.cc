// Reproduces Figures 4 and 5 of the paper: overall maintenance time
// (detection + update) for BORDERS with PT-Scan / ECUT / ECUT+ update
// counting when a second block with distribution *.20L.1I.8pats.4plen and
// size 10K..400K (scaled) is added to 2M.20L.1I.4pats.4plen, at minimum
// supports 0.008 (Fig 4) and 0.009 (Fig 5).

#include "bench/maintenance_common.h"

int main() {
  demon::bench::RunMaintenanceExperiment("Figure 4", 0.008, 8000, 4.0);
  demon::bench::RunMaintenanceExperiment("Figure 5", 0.009, 8000, 4.0);
  return 0;
}
