// Intersection-kernel microbenchmark (google-benchmark): every dispatched
// kernel against the scalar reference, swept over list lengths and density
// pairs (sparse×sparse, sparse×dense skew, bitmap×bitmap). Run via
// scripts/bench_snapshot.sh, which archives the JSON as
// BENCH_intersect.json; the acceptance bar for the SIMD tiers is >= 2x on
// the in-cache 64k-element raw×raw and bitmap×bitmap rows.
//
// Each benchmark is registered twice — suffix /scalar pins the reference
// tier, /active uses the runtime-dispatched one (equal to scalar under
// DEMON_FORCE_SCALAR=1 or on pre-SSE4 CPUs; the "simd_level" context key
// says which tier /active actually ran).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/random.h"
#include "tidlist/simd.h"
#include "tidlist/tidlist.h"
#include "tidlist/tidlist_codec.h"

namespace demon {
namespace {

TidList MakeList(size_t n, uint32_t universe, uint64_t seed) {
  Rng rng(seed);
  std::vector<bool> taken(universe, false);
  TidList list;
  list.reserve(n);
  while (list.size() < n) {
    const uint32_t v = static_cast<uint32_t>(rng.NextUint64(universe));
    if (!taken[v]) {
      taken[v] = true;
      list.push_back(v);
    }
  }
  std::sort(list.begin(), list.end());
  return list;
}

std::vector<uint8_t> MakeBitmap(const TidList& list, uint32_t universe) {
  return EncodeTidListAs(TidEncoding::kBitmap, list, universe).bytes;
}

const simd::KernelOps& Tier(bool active) {
  return active ? simd::ActiveOps() : simd::ScalarOps();
}

/// Balanced raw×raw merge: both lists `n` long in a 4n universe (~25%
/// density each — the block-merge path, no galloping).
void BM_RawRawMerge(benchmark::State& state, bool active) {
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t universe = static_cast<uint32_t>(n * 4);
  const TidList a = MakeList(n, universe, 1);
  const TidList b = MakeList(n, universe, 2);
  const simd::KernelOps& ops = Tier(active);
  TidList out(n + simd::kOutPad);
  for (auto _ : state) {
    const size_t k = ops.raw_raw(a.data(), a.size(), b.data(), b.size(),
                                 out.data());
    benchmark::DoNotOptimize(k);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n * 2));
}

/// Skewed raw×raw, 100:1 — the galloping path.
void BM_RawRawGallop(benchmark::State& state, bool active) {
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t universe = static_cast<uint32_t>(n * 4);
  const TidList small = MakeList(n / 100 + 1, universe, 3);
  const TidList large = MakeList(n, universe, 4);
  const simd::KernelOps& ops = Tier(active);
  TidList out(small.size() + simd::kOutPad);
  for (auto _ : state) {
    const size_t k = ops.raw_raw(small.data(), small.size(), large.data(),
                                 large.size(), out.data());
    benchmark::DoNotOptimize(k);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}

/// Sparse raw list probed against a dense bitmap (~30% density).
void BM_RawBitmapProbe(benchmark::State& state, bool active) {
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t universe = static_cast<uint32_t>(n * 8);
  const TidList raw = MakeList(n, universe, 5);
  const TidList dense = MakeList(universe * 3 / 10, universe, 6);
  const std::vector<uint8_t> bitmap = MakeBitmap(dense, universe);
  const simd::KernelOps& ops = Tier(active);
  TidList out(n + simd::kOutPad);
  for (auto _ : state) {
    const size_t k = ops.raw_bitmap(raw.data(), raw.size(), bitmap.data(),
                                    bitmap.size(), out.data());
    benchmark::DoNotOptimize(k);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}

/// bitmap×bitmap cardinality (popcount of the AND) over a universe of
/// `range(0)` bits, both sides ~40% dense. range(0) = 64k is the
/// acceptance row.
void BM_BitmapBitmapPopcount(benchmark::State& state, bool active) {
  const uint32_t universe = static_cast<uint32_t>(state.range(0));
  const TidList a = MakeList(universe * 2 / 5, universe, 7);
  const TidList b = MakeList(universe * 2 / 5, universe, 8);
  const std::vector<uint8_t> bm_a = MakeBitmap(a, universe);
  const std::vector<uint8_t> bm_b = MakeBitmap(b, universe);
  const simd::KernelOps& ops = Tier(active);
  for (auto _ : state) {
    const uint64_t k = ops.bitmap_bitmap_popcount(bm_a.data(), bm_a.size(),
                                                  bm_b.data(), bm_b.size());
    benchmark::DoNotOptimize(k);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * universe));
}

/// bitmap×bitmap with the result list materialized (offset extraction).
void BM_BitmapBitmapExtract(benchmark::State& state, bool active) {
  const uint32_t universe = static_cast<uint32_t>(state.range(0));
  const TidList a = MakeList(universe / 10, universe, 9);
  const TidList b = MakeList(universe / 10, universe, 10);
  const std::vector<uint8_t> bm_a = MakeBitmap(a, universe);
  const std::vector<uint8_t> bm_b = MakeBitmap(b, universe);
  const simd::KernelOps& ops = Tier(active);
  const size_t cap = std::min(a.size(), b.size());
  TidList out(cap + simd::kOutPad);
  for (auto _ : state) {
    const size_t k = ops.bitmap_bitmap(bm_a.data(), bm_a.size(), bm_b.data(),
                                       bm_b.size(), out.data(), cap);
    benchmark::DoNotOptimize(k);
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * universe));
}

void RegisterAll() {
  struct Entry {
    const char* name;
    void (*fn)(benchmark::State&, bool);
    int64_t lo;
    int64_t hi;
  };
  // 64k (1 << 16) appears in every range — the acceptance-criteria row.
  const Entry entries[] = {
      {"raw_raw_merge", BM_RawRawMerge, 1 << 10, 1 << 18},
      {"raw_raw_gallop", BM_RawRawGallop, 1 << 12, 1 << 18},
      {"raw_bitmap_probe", BM_RawBitmapProbe, 1 << 10, 1 << 16},
      {"bitmap_bitmap_popcount", BM_BitmapBitmapPopcount, 1 << 12, 1 << 20},
      {"bitmap_bitmap_extract", BM_BitmapBitmapExtract, 1 << 12, 1 << 20},
  };
  for (const Entry& e : entries) {
    // Multiplier 4 keeps 64k (the acceptance row) in every sweep.
    benchmark::RegisterBenchmark(
        (std::string(e.name) + "/scalar").c_str(),
        [fn = e.fn](benchmark::State& s) { fn(s, false); })
        ->RangeMultiplier(4)
        ->Range(e.lo, e.hi);
    benchmark::RegisterBenchmark(
        (std::string(e.name) + "/active").c_str(),
        [fn = e.fn](benchmark::State& s) { fn(s, true); })
        ->RangeMultiplier(4)
        ->Range(e.lo, e.hi);
  }
}

}  // namespace
}  // namespace demon

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::AddCustomContext("simd_level", demon::simd::ActiveKernelName());
  demon::RegisterAll();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
