// Ablation for the ECUT+ space/time trade-off (§3.1.1): counting time and
// extra space as the per-block materialization budget for 2-itemset
// TID-lists varies from 0% (pure ECUT) to unbounded (every frequent
// 2-itemset, the Figure 2 configuration). The paper's heuristic picks
// 2-itemsets in decreasing support order; this bench shows the diminishing
// returns that justify it.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/check.h"
#include "itemsets/apriori.h"
#include "itemsets/support_counting.h"

namespace demon {
namespace {

void Run() {
  const size_t n = bench::Scaled(2000000, 20000);
  QuestParams params = bench::PaperQuestParams(n, 7);
  QuestGenerator gen(params);
  const auto block = bench::MakeSharedBlock(gen.GenerateAll());
  const double minsup = 0.008;
  const ItemsetModel model = Apriori({block}, minsup, params.num_items);
  const auto pairs = model.Frequent2ItemsetsBySupport();

  // Sample of border itemsets of size >= 3 to count: these are the
  // candidates pair lists can help with (every 2-subset of a border
  // itemset is frequent by definition, so it may be materialized; border
  // 2-itemsets themselves are infrequent and never benefit).
  std::vector<Itemset> sample;
  for (Itemset& itemset : model.NegativeBorder()) {
    if (itemset.size() >= 3) sample.push_back(std::move(itemset));
  }
  Rng rng(13);
  rng.Shuffle(&sample);
  if (sample.size() > 40) sample.resize(40);
  std::printf("counting %zu border itemsets of size >= 3\n", sample.size());

  bench::PrintHeader("ECUT+ space budget sweep (dataset " +
                     params.ToString() + ", minsup 0.008)");
  std::printf("%-14s %12s %14s %12s\n", "budget(frac)", "pairs kept",
              "extra space %", "count(ms)");

  const auto base_slots = BlockTidLists::Build(*block, params.num_items)
                              ->item_list_slots();
  for (double fraction : {0.0, 0.01, 0.02, 0.05, 0.10, 0.25, 1.0}) {
    PairMaterializationSpec spec;
    spec.pairs = pairs;
    spec.budget_slots = static_cast<size_t>(
        fraction * static_cast<double>(base_slots));
    if (fraction >= 1.0) spec.budget_slots = SIZE_MAX;
    TidListStore store;
    store.Append(BlockTidLists::Build(*block, params.num_items, &spec));

    // Average over repetitions to smooth out one-shot noise.
    constexpr int kReps = 15;
    telemetry::ScopedTimer timer;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto counts = EcutCount(sample, store, /*use_pair_lists=*/true);
      DEMON_CHECK(!counts.empty());
    }
    const double millis = timer.Stop() * 1e3 / kReps;
    std::printf("%-14.2f %12zu %13.1f%% %12.2f\n", fraction,
                store.blocks()[0]->num_pair_lists(),
                100.0 * static_cast<double>(store.TotalPairSlots()) /
                    static_cast<double>(base_slots),
                millis);
  }
  std::printf("shape check: counting time drops steeply for the first few "
              "%% of budget, then flattens\n");
}

}  // namespace
}  // namespace demon

int main() {
  demon::Run();
  return 0;
}
