// Substrate micro-benchmarks (google-benchmark): TID-list intersection,
// prefix-tree counting, CF-tree insertion and Quest generation throughput.
// Not tied to a paper figure; used to sanity-check that the substrates
// behave as their asymptotics promise before interpreting Figures 2-10.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "clustering/cf_tree.h"
#include "common/random.h"
#include "datagen/cluster_generator.h"
#include "itemsets/hash_tree.h"
#include "itemsets/prefix_tree.h"
#include "tidlist/tidlist.h"

namespace demon {
namespace {

TidList MakeList(size_t n, uint32_t universe, uint64_t seed) {
  Rng rng(seed);
  std::vector<bool> taken(universe, false);
  TidList list;
  while (list.size() < n) {
    const uint32_t v = static_cast<uint32_t>(rng.NextUint64(universe));
    if (!taken[v]) {
      taken[v] = true;
      list.push_back(v);
    }
  }
  std::sort(list.begin(), list.end());
  return list;
}

void BM_TidListIntersectBalanced(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const TidList a = MakeList(n, static_cast<uint32_t>(n * 4), 1);
  const TidList b = MakeList(n, static_cast<uint32_t>(n * 4), 2);
  TidList out;
  for (auto _ : state) {
    IntersectInto(a, b, &out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_TidListIntersectBalanced)->Range(1 << 10, 1 << 18);

void BM_TidListIntersectSkewed(benchmark::State& state) {
  // 100:1 size ratio exercises the galloping path.
  const size_t n = static_cast<size_t>(state.range(0));
  const TidList small = MakeList(n / 100 + 1, static_cast<uint32_t>(n * 4), 3);
  const TidList large = MakeList(n, static_cast<uint32_t>(n * 4), 4);
  TidList out;
  for (auto _ : state) {
    IntersectInto(small, large, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_TidListIntersectSkewed)->Range(1 << 12, 1 << 18);

void BM_PrefixTreeCount(benchmark::State& state) {
  const size_t num_itemsets = static_cast<size_t>(state.range(0));
  QuestParams params;
  params.num_transactions = 2000;
  params.num_items = 1000;
  params.seed = 5;
  QuestGenerator gen(params);
  const TransactionBlock block = gen.GenerateAll();

  Rng rng(6);
  PrefixTree tree;
  for (size_t s = 0; s < num_itemsets; ++s) {
    Itemset itemset;
    const size_t size = 2 + rng.NextUint64(3);
    while (itemset.size() < size) {
      const Item item = static_cast<Item>(rng.NextUint64(1000));
      if (!std::binary_search(itemset.begin(), itemset.end(), item)) {
        itemset.insert(std::lower_bound(itemset.begin(), itemset.end(), item),
                       item);
      }
    }
    tree.Insert(itemset);
  }
  for (auto _ : state) {
    for (const Transaction& t : block.transactions()) {
      tree.CountTransaction(t);
    }
  }
  state.SetItemsProcessed(state.iterations() * block.size());
}
BENCHMARK(BM_PrefixTreeCount)->Range(16, 4096);

void BM_HashTreeCount(benchmark::State& state) {
  // Same workload as BM_PrefixTreeCount with the [AMS+96] hash tree
  // (paper footnote 7) for a direct structure comparison.
  const size_t num_itemsets = static_cast<size_t>(state.range(0));
  QuestParams params;
  params.num_transactions = 2000;
  params.num_items = 1000;
  params.seed = 5;
  QuestGenerator gen(params);
  const TransactionBlock block = gen.GenerateAll();

  Rng rng(6);
  HashTree tree;
  for (size_t s = 0; s < num_itemsets; ++s) {
    Itemset itemset;
    const size_t size = 2 + rng.NextUint64(3);
    while (itemset.size() < size) {
      const Item item = static_cast<Item>(rng.NextUint64(1000));
      if (!std::binary_search(itemset.begin(), itemset.end(), item)) {
        itemset.insert(std::lower_bound(itemset.begin(), itemset.end(), item),
                       item);
      }
    }
    tree.Insert(itemset);
  }
  for (auto _ : state) {
    for (const Transaction& t : block.transactions()) {
      tree.CountTransaction(t);
    }
  }
  state.SetItemsProcessed(state.iterations() * block.size());
}
BENCHMARK(BM_HashTreeCount)->Range(16, 4096);

void BM_CFTreeInsert(benchmark::State& state) {
  ClusterGenParams params;
  params.num_points = 20000;
  params.num_clusters = 50;
  params.dim = 5;
  params.seed = 7;
  ClusterGenerator gen(params);
  const PointBlock block = gen.GenerateAll();
  CFTreeOptions options;
  options.max_leaf_entries = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    CFTree tree(params.dim, options);
    tree.InsertBlock(block);
    benchmark::DoNotOptimize(tree.num_leaf_entries());
  }
  state.SetItemsProcessed(state.iterations() * block.size());
}
BENCHMARK(BM_CFTreeInsert)->Arg(512)->Arg(2048)->Unit(benchmark::kMillisecond);

void BM_QuestGenerate(benchmark::State& state) {
  QuestParams params = bench::PaperQuestParams(10000, 8);
  for (auto _ : state) {
    QuestGenerator gen(params);
    benchmark::DoNotOptimize(gen.GenerateAll().size());
  }
  state.SetItemsProcessed(state.iterations() * params.num_transactions);
}
BENCHMARK(BM_QuestGenerate)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace demon

BENCHMARK_MAIN();
