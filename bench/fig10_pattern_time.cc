// Reproduces Figure 10 of the paper: the time to incrementally update the
// set of compact sequences with each new 6-hour block of the proxy trace
// (82 blocks, numbered 0..81 from noon 9-2 to midnight 9-22).
//
// Expected shape: spikes on blocks that are significantly different from
// a large share of earlier blocks (weekends, the anomalous Monday):
// comparing dissimilar blocks forces scans of both blocks, while similar
// blocks compare from their cached models alone (paper §5.3).

#include <cstdio>

#include "bench/bench_util.h"
#include "datagen/trace_generator.h"
#include "patterns/compact_sequences.h"

namespace demon {
namespace {

void Run() {
  TraceGenerator::Params trace_params;
  trace_params.rate_scale = 0.05 * (bench::ScaleFactor() / 0.1);
  trace_params.seed = 7;
  TraceGenerator gen(trace_params);
  const auto trace = gen.Generate();
  const auto blocks = SegmentTrace(trace, 6, 12);

  CompactSequenceMiner::Options options;
  options.focus.minsup = 0.01;
  options.focus.num_items =
      TraceGenerator::kNumObjectTypes + TraceGenerator::kNumSizeBuckets;
  options.alpha = 0.99;
  CompactSequenceMiner miner(options);

  bench::PrintHeader(
      "Figure 10: per-block pattern computation time (6-hr granularity)");
  std::printf("%-6s %-24s %10s %8s %8s\n", "block", "label", "time(ms)",
              "scans", "spike");

  double total = 0.0;
  std::vector<double> times;
  std::vector<size_t> scans;
  for (const auto& block : blocks) {
    miner.AddBlock(std::make_shared<TransactionBlock>(block));
    times.push_back(miner.last_add_seconds() * 1e3);
    scans.push_back(miner.last_scan_count());
    total += miner.last_add_seconds();
  }
  // Block t compares against t earlier blocks, so the raw time grows with
  // t; spikes are blocks whose *per-comparison* cost is well above the
  // average — those are the ones scanning many dissimilar blocks.
  double per_cmp_total = 0.0;
  for (size_t i = 1; i < times.size(); ++i) {
    per_cmp_total += times[i] / static_cast<double>(i);
  }
  const double per_cmp_mean =
      per_cmp_total / static_cast<double>(times.size() - 1);
  for (size_t i = 0; i < times.size(); ++i) {
    const double per_cmp =
        i == 0 ? 0.0 : times[i] / static_cast<double>(i);
    const bool spike = per_cmp > 1.5 * per_cmp_mean;
    std::printf("%-6zu %-24s %10.2f %8zu %8s\n", i,
                blocks[i].info().label.c_str(), times[i], scans[i],
                spike ? "*" : "");
  }
  const double mean = total * 1e3 / static_cast<double>(times.size());
  std::printf("total %.2fs, mean %.2fms/block — spikes should fall on "
              "weekend/anomalous blocks (paper §5.3)\n",
              total, mean);
}

}  // namespace
}  // namespace demon

int main() {
  demon::Run();
  return 0;
}
