// Baseline comparison (paper §6): FUP [CHNW96], the first incremental
// frequent-itemset maintainer, against BORDERS with PT-Scan and with the
// paper's ECUT counting. FUP re-scans the old database once per level
// with new candidates; BORDERS scans old data only when the border
// expands — "the BORDERS algorithm improves the FUP algorithm by
// reducing the number of scans of the old database".

#include <cstdio>

#include "bench/bench_util.h"
#include "itemsets/borders.h"
#include "itemsets/fup.h"

namespace demon {
namespace {

void Run() {
  // The paper's increment regime: a large base, then small daily blocks
  // (a few % of the base). FUP's per-level old-database scans then cost
  // full base scans, while BORDERS' detection touches only the new block.
  const size_t base_size = bench::Scaled(2000000, 20000);
  const size_t block_size = bench::Scaled(50000, 1000);
  const size_t num_blocks = 6;
  const double minsup = 0.01;

  QuestParams params =
      bench::PaperQuestParams(base_size + block_size * num_blocks, 7);
  QuestGenerator gen(params);

  FupMaintainer fup(minsup, params.num_items);
  BordersOptions pt_options;
  pt_options.minsup = minsup;
  pt_options.num_items = params.num_items;
  pt_options.strategy = CountingStrategy::kPtScan;
  BordersMaintainer borders_pt(pt_options);
  BordersOptions ecut_options = pt_options;
  ecut_options.strategy = CountingStrategy::kEcut;
  BordersMaintainer borders_ecut(ecut_options);

  bench::PrintHeader("FUP vs BORDERS maintenance per block (" +
                     params.ToString() + ", minsup 0.01)");
  std::printf("%-6s %10s %12s | %14s %10s | %12s %10s\n", "block", "FUP(s)",
              "FUP:oldscans", "BORDERS+PT(s)", "cands", "BORDERS+EC(s)",
              "cands");

  Tid tid = 0;
  for (size_t b = 0; b <= num_blocks; ++b) {
    const size_t size = b == 0 ? base_size : block_size;
    auto block = bench::MakeSharedBlock(gen.NextBlock(size, tid));
    tid += block->size();
    fup.AddBlock(block);
    borders_pt.AddBlock(block);
    borders_ecut.AddBlock(block);
    std::printf("%-6zu %10.3f %12zu | %14.3f %10zu | %12.3f %10zu\n", b,
                fup.last_stats().seconds, fup.last_stats().old_db_scans,
                borders_pt.last_stats().detection_seconds +
                    borders_pt.last_stats().update_seconds,
                borders_pt.last_stats().new_candidates,
                borders_ecut.last_stats().detection_seconds +
                    borders_ecut.last_stats().update_seconds,
                borders_ecut.last_stats().new_candidates);
  }
  std::printf("models agree: FUP frequents == BORDERS frequents: %s\n",
              fup.model().entries().size() ==
                      borders_pt.model().NumFrequent()
                  ? "yes"
                  : "NO (bug!)");
  std::printf("shape check: FUP touches the old database on EVERY block "
              "(old-scans column) while BORDERS touches it only when the "
              "border expands (cands column) — with disk-resident data "
              "those per-block scans are the dominant cost the paper's "
              "BORDERS removes; in memory the times are close\n");
}

}  // namespace
}  // namespace demon

int main() {
  demon::Run();
  return 0;
}
