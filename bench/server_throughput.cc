// Throughput of the demon_serve ingestion path: an in-process DemonServer
// on an ephemeral port, driven by concurrent client connections streaming
// deterministic per-tenant batches through the real socket stack (frame
// codec, admission dedup, background flushes, WAL + checkpoints).
//
// Sweeps the connection count and reports records/sec plus request
// latency percentiles, in the same hand-rolled google-benchmark-shaped
// JSON as engine_throughput so scripts/bench_snapshot.sh can archive it
// as BENCH_server.json and scripts/bench_regress.py can diff it.
//
//   ./server_throughput                       # table
//   ./server_throughput --benchmark_format=json > BENCH_server.json

#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/random.h"
#include "common/telemetry.h"
#include "server/server.h"
#include "server/wire.h"

namespace demon::bench {
namespace {

using server::ClientConnection;
using server::MsgType;
using server::Request;
using server::Response;

constexpr uint64_t kSeed = 1234;
constexpr uint64_t kNumItems = 64;

Transaction MakeRecord(uint64_t tenant_index, uint64_t index) {
  Rng rng(kSeed ^ (tenant_index + 1) * 0x9E3779B97F4A7C15ULL ^
          (index + 1) * 0xBF58476D1CE4E5B9ULL);
  const size_t size = 2 + static_cast<size_t>(rng.NextUint64(6));
  std::vector<Item> items;
  items.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    items.push_back(static_cast<Item>(rng.NextUint64(kNumItems)));
  }
  return Transaction(std::move(items));
}

struct RunResult {
  double records_per_second = 0.0;
  double seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  uint64_t requests = 0;
};

/// One complete run: fresh server over `data_dir`, `connections` client
/// threads splitting `tenants` tenants, every record streamed, flushed
/// durably, server stopped.
RunResult RunServer(const std::string& data_dir, uint64_t tenants,
                    uint64_t records, uint64_t batch, uint64_t connections) {
  server::ServerOptions options;
  options.data_dir = data_dir;
  options.port = 0;
  options.num_threads = 4;
  options.policy.flush_records = 64;
  options.policy.checkpoint_blocks = 4;
  server::DemonServer server(options);
  if (!server.Start().ok()) return {};

  telemetry::TelemetryRegistry registry;
  const uint64_t start_ns = telemetry::NowNanos();
  std::vector<std::thread> workers;
  for (uint64_t w = 0; w < connections; ++w) {
    workers.emplace_back([&, w] {
      ClientConnection connection;
      if (!connection.Connect("127.0.0.1", server.port()).ok()) return;
      for (uint64_t t = w; t < tenants; t += connections) {
        Request create;
        create.type = MsgType::kCreateTenant;
        create.tenant = "t" + std::to_string(t);
        create.num_items = kNumItems;
        MonitorSpec spec;
        spec.kind = MonitorKind::kUnrestrictedItemsets;
        spec.name = "itemsets";
        spec.minsup = 0.3;
        create.specs.push_back(std::move(spec));
        if (!connection.Call(create).ok()) return;
        uint64_t cursor = 0;
        while (cursor < records) {
          const uint64_t n = std::min(batch, records - cursor);
          Request append;
          append.type = MsgType::kAppendBatch;
          append.tenant = "t" + std::to_string(t);
          append.first_record_index = cursor;
          append.transactions.reserve(n);
          for (uint64_t i = 0; i < n; ++i) {
            append.transactions.push_back(MakeRecord(t, cursor + i));
          }
          const uint64_t call_ns = telemetry::NowNanos();
          auto response = connection.Call(append);
          registry.histogram("client/request_seconds")
              ->Record(
                  static_cast<double>(telemetry::NowNanos() - call_ns) /
                  1e9);
          registry.counter("client/requests")->Increment();
          if (!response.ok() || !response.value().ok()) return;
          cursor = response.value().records_admitted;
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  ClientConnection connection;
  if (connection.Connect("127.0.0.1", server.port()).ok()) {
    Request flush_all;
    flush_all.type = MsgType::kFlushAll;
    (void)connection.Call(flush_all);
  }
  (void)server.Stop();

  RunResult result;
  result.seconds =
      static_cast<double>(telemetry::NowNanos() - start_ns) / 1e9;
  result.records_per_second =
      static_cast<double>(tenants * records) / result.seconds;
  result.requests = registry.counter("client/requests")->value();
  for (const auto& summary : registry.HistogramSummaries()) {
    if (summary.name == "client/request_seconds") {
      result.p50_seconds = summary.p50;
      result.p95_seconds = summary.p95;
    }
  }
  return result;
}

}  // namespace
}  // namespace demon::bench

int main(int argc, char** argv) {
  using namespace demon;
  using namespace demon::bench;

  std::signal(SIGPIPE, SIG_IGN);
  flags::FlagSet flags("server_throughput",
                       "demon_serve socket-ingestion throughput sweep.");
  flags.DefineString("benchmark_format", "",
                     "'json' emits a machine-readable report");
  flags.DefineString("data_dir", "/tmp/demon_server_bench",
                     "scratch directory for the hosted tenants");
  flags.DefineInt("tenants", 0, "tenants per run (0 = scaled default)");
  flags.DefineInt("records", 0, "records per tenant (0 = scaled default)");
  flags.DefineInt("batch", 50, "records per AppendBatch request");
  const Status parsed = flags.Parse(argc, argv);
  if (flags.help_requested()) {
    std::printf("%s", flags.HelpText().c_str());
    return 0;
  }
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 2;
  }
  const bool json = flags.GetString("benchmark_format") == "json";
  const uint64_t tenants =
      flags.GetInt("tenants") > 0
          ? static_cast<uint64_t>(flags.GetInt("tenants"))
          : Scaled(160, 16);
  const uint64_t records =
      flags.GetInt("records") > 0
          ? static_cast<uint64_t>(flags.GetInt("records"))
          : Scaled(2000, 200);
  const uint64_t batch =
      static_cast<uint64_t>(std::max(1L, flags.GetInt("batch")));

  if (!json) {
    PrintHeader("demon_serve ingest throughput (" +
                std::to_string(tenants) + " tenants x " +
                std::to_string(records) + " records, batch " +
                std::to_string(batch) + ")");
    std::printf("%12s | %12s | %10s | %10s\n", "connections", "records/s",
                "p50(ms)", "p95(ms)");
  }

  std::string rows;
  const std::vector<uint64_t> sweep = {1, 2, 4, 8};
  for (size_t i = 0; i < sweep.size(); ++i) {
    const uint64_t connections = sweep[i];
    const std::string data_dir = flags.GetString("data_dir") + "/conn" +
                                 std::to_string(connections);
    const RunResult r =
        RunServer(data_dir, tenants, records, batch, connections);
    char line[256];
    std::snprintf(
        line, sizeof(line),
        "    {\"name\": \"serve/connections:%llu\", "
        "\"records_per_second\": %.1f, \"p50\": %.9f, \"p95\": %.9f, "
        "\"requests\": %llu}%s\n",
        static_cast<unsigned long long>(connections), r.records_per_second,
        r.p50_seconds, r.p95_seconds,
        static_cast<unsigned long long>(r.requests),
        i + 1 < sweep.size() ? "," : "");
    rows += line;
    if (!json) {
      std::printf("%12llu | %12.0f | %10.3f | %10.3f\n",
                  static_cast<unsigned long long>(connections),
                  r.records_per_second, r.p50_seconds * 1e3,
                  r.p95_seconds * 1e3);
    }
  }

  if (json) {
    std::printf("{\n  \"context\": {\"benchmark\": \"server_throughput\", "
                "\"tenants\": %llu, \"records\": %llu, \"batch\": %llu},\n"
                "  \"benchmarks\": [\n%s  ]\n}\n",
                static_cast<unsigned long long>(tenants),
                static_cast<unsigned long long>(records),
                static_cast<unsigned long long>(batch), rows.c_str());
  }
  return 0;
}
