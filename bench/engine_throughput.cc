// Ingest throughput of the MaintenanceEngine as the worker count grows,
// and the effect of DeferOffline on the time-critical response path.
//
// Part 1 fixes a heterogeneous monitor fleet (the Figure 11 deployment:
// unrestricted + windowed itemset monitors and a pattern detector) and
// measures blocks/sec at 1, 2, 4 and 8 engine threads, plus the
// sequential (0-thread) baseline. Monitors are independent, so the
// engine's per-block fan-out is embarrassingly parallel up to the
// number of physical cores.
//
// Part 2 measures the response-time split of §3.2.3: with DeferOffline
// on, a block's GEMM future-window updates run off-line on the pool, so
// last_response_seconds covers only the current-window update.
//
//   DEMON_SCALE=1 ./engine_throughput
//
// Pass --benchmark_format=json to emit a google-benchmark-shaped JSON
// document (context + benchmarks array) instead of the tables, so
// scripts/bench_snapshot.sh can archive both binaries uniformly.
//
// Pass --trace_out=PATH to additionally run the fleet once more at 4
// engine threads with an injected telemetry registry and write a Chrome
// trace-event JSON file (load it at https://ui.perfetto.dev) showing the
// nested engine -> maintainer -> counting-shard spans.
// --telemetry_out=PATH writes the same run's metrics in Prometheus text
// exposition format. --timeline_out=PATH runs a TelemetryScraper over the
// instrumented run (one scrape pinned per block) and writes the JSONL
// metrics timeline; with both --trace_out and --timeline_out the trace
// additionally carries the scraper's counter tracks ("ph":"C").

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/telemetry.h"
#include "common/telemetry_timeline.h"
#include "core/demon_monitor.h"

namespace demon::bench {
namespace {

std::vector<TransactionBlock> MakeBlocks(size_t num_blocks,
                                         size_t block_size) {
  QuestGenerator gen(PaperQuestParams(num_blocks * block_size, 7));
  std::vector<TransactionBlock> blocks;
  Tid tid = 0;
  for (size_t b = 0; b < num_blocks; ++b) {
    blocks.push_back(gen.NextBlock(block_size, tid));
    tid += block_size;
  }
  return blocks;
}

struct RunResult {
  double blocks_per_sec = 0.0;
  double response_seconds = 0.0;  // summed over itemset monitors
  double offline_seconds = 0.0;
};

RunResult RunFleet(const std::vector<TransactionBlock>& blocks,
                   const EngineOptions& engine, double minsup, size_t window,
                   telemetry::TelemetryScraper* scraper = nullptr) {
  DemonMonitor demon(1000, engine);
  std::vector<DemonMonitor::MonitorId> ids;
  ids.push_back(demon
                    .AddMonitor({.kind = MonitorKind::kUnrestrictedItemsets,
                                 .name = "uw-ecut",
                                 .minsup = minsup})
                    .ValueOrDie());
  ids.push_back(demon
                    .AddMonitor({.kind = MonitorKind::kUnrestrictedItemsets,
                                 .name = "uw-borders",
                                 .minsup = minsup,
                                 .strategy = CountingStrategy::kEcutPlus})
                    .ValueOrDie());
  ids.push_back(demon
                    .AddMonitor({.kind = MonitorKind::kWindowedItemsets,
                                 .name = "mrw-itemsets",
                                 .window = window,
                                 .minsup = minsup})
                    .ValueOrDie());
  ids.push_back(demon
                    .AddMonitor({.kind = MonitorKind::kPatterns,
                                 .name = "patterns",
                                 .minsup = minsup,
                                 .alpha = 0.95})
                    .ValueOrDie());

  telemetry::ScopedTimer timer;
  for (const auto& block : blocks) {
    demon.AddBlock(block);
    if (scraper != nullptr) scraper->ScrapeNow();
  }
  demon.Quiesce();
  if (scraper != nullptr) scraper->ScrapeNow();
  const double elapsed = timer.Stop();

  RunResult result;
  result.blocks_per_sec = static_cast<double>(blocks.size()) / elapsed;
  for (const auto id : ids) {
    const MonitorStats stats = demon.StatsOf(id).value();
    result.response_seconds += stats.response_seconds;
    result.offline_seconds += stats.offline_seconds;
  }
  return result;
}

/// One measurement row, named like a google-benchmark entry.
struct JsonRow {
  std::string name;
  double blocks_per_sec = 0.0;
  double response_seconds = 0.0;
  double offline_seconds = 0.0;
};

void PrintJson(const std::vector<JsonRow>& rows) {
  std::printf("{\n  \"context\": {\"benchmark\": \"engine_throughput\"},\n");
  std::printf("  \"benchmarks\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const JsonRow& r = rows[i];
    std::printf(
        "    {\"name\": \"%s\", \"blocks_per_second\": %.4f, "
        "\"response_seconds\": %.6f, \"offline_seconds\": %.6f}%s\n",
        r.name.c_str(), r.blocks_per_sec, r.response_seconds,
        r.offline_seconds, i + 1 < rows.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace
}  // namespace demon::bench

int main(int argc, char** argv) {
  using namespace demon;
  using namespace demon::bench;

  flags::FlagSet flags("engine_throughput",
                       "Engine ingest throughput across thread counts.");
  flags.DefineString("benchmark_format", "",
                     "'json' emits a machine-readable report");
  flags.DefineString("trace_out", "", "Chrome-trace output path");
  flags.DefineString("telemetry_out", "", "Prometheus metrics output path");
  flags.DefineString("histogram_out", "", "histogram-summary JSON path");
  flags.DefineString("timeline_out", "", "telemetry timeline JSONL path");
  const Status parsed = flags.Parse(argc, argv);
  if (flags.help_requested()) {
    std::printf("%s", flags.HelpText().c_str());
    return 0;
  }
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 2;
  }
  const bool json = flags.GetString("benchmark_format") == "json";
  const std::string trace_out = flags.GetString("trace_out");
  const std::string telemetry_out = flags.GetString("telemetry_out");
  const std::string histogram_out = flags.GetString("histogram_out");
  const std::string timeline_out = flags.GetString("timeline_out");

  const size_t block_size = Scaled(10000, 500);
  const size_t num_blocks = 8;
  const double minsup = 0.005;
  const size_t window = 3;
  const auto blocks = MakeBlocks(num_blocks, block_size);
  std::vector<JsonRow> rows;

  if (!json) {
    PrintHeader("Engine ingest throughput (4 monitors, blocks/sec)");
    std::printf("%8s | %10s | %8s\n", "threads", "blocks/s", "speedup");
  }
  double baseline = 0.0;
  for (const size_t threads : {size_t{0}, size_t{1}, size_t{2}, size_t{4},
                               size_t{8}}) {
    EngineOptions engine;
    engine.num_threads = threads;
    const RunResult r = RunFleet(blocks, engine, minsup, window);
    if (threads == 0) baseline = r.blocks_per_sec;
    rows.push_back({"ingest/threads:" + std::to_string(threads),
                    r.blocks_per_sec, r.response_seconds, r.offline_seconds});
    if (!json) {
      std::printf("%8zu | %10.2f | %7.2fx\n", threads, r.blocks_per_sec,
                  r.blocks_per_sec / baseline);
    }
  }

  if (!json) {
    PrintHeader("Response vs off-line split (DeferOffline, 4 threads)");
    std::printf("%10s | %12s | %12s | %10s\n", "defer", "response(s)",
                "offline(s)", "blocks/s");
  }
  for (const bool defer : {false, true}) {
    EngineOptions engine;
    engine.num_threads = 4;
    engine.defer_offline = defer;
    const RunResult r = RunFleet(blocks, engine, minsup, window);
    rows.push_back({std::string("defer_offline:") + (defer ? "on" : "off"),
                    r.blocks_per_sec, r.response_seconds, r.offline_seconds});
    if (!json) {
      std::printf("%10s | %12.3f | %12.3f | %10.2f\n", defer ? "on" : "off",
                  r.response_seconds, r.offline_seconds, r.blocks_per_sec);
    }
  }

  // Instrumented run: same fleet at 4 threads, telemetry injected, spans
  // and metrics exported for scripts/bench_snapshot.sh to archive.
  if (!trace_out.empty() || !telemetry_out.empty() || !histogram_out.empty() ||
      !timeline_out.empty()) {
    telemetry::TelemetryRegistry registry;
    EngineOptions engine;
    engine.num_threads = 4;
    engine.telemetry = &registry;
    std::unique_ptr<telemetry::TelemetryScraper> scraper;
    if (!timeline_out.empty()) {
      telemetry::ScraperOptions scraper_options;
      scraper_options.registry = &registry;
      scraper = std::make_unique<telemetry::TelemetryScraper>(scraper_options);
      scraper->Start();
    }
    RunFleet(blocks, engine, minsup, window, scraper.get());
    if (scraper != nullptr) scraper->Stop();
    if (!timeline_out.empty() &&
        WriteFileContents(timeline_out,
                          telemetry::TimelineJsonl(scraper->Samples()))) {
      if (!json) {
        std::printf("wrote metrics timeline to %s\n", timeline_out.c_str());
      }
    }
    if (!trace_out.empty()) {
      const std::string trace =
          scraper != nullptr
              ? telemetry::ChromeTraceJson(registry.CollectSpans(),
                                           scraper->Samples())
              : registry.ChromeTraceJson();
      if (WriteFileContents(trace_out, trace) && !json) {
        std::printf("wrote Chrome trace to %s\n", trace_out.c_str());
      }
    }
    if (!telemetry_out.empty() &&
        WriteFileContents(telemetry_out, registry.PrometheusText())) {
      if (!json) {
        std::printf("wrote Prometheus metrics to %s\n", telemetry_out.c_str());
      }
    }
    if (!histogram_out.empty() &&
        WriteFileContents(histogram_out, HistogramSummariesJson(registry))) {
      if (!json) {
        std::printf("wrote histogram summaries to %s\n", histogram_out.c_str());
      }
    }
  }

  if (json) PrintJson(rows);
  return 0;
}
