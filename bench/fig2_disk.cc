// Disk-resident variant of Figure 2: the paper ran with data on disk,
// where PT-Scan reads the whole dataset per counting call while ECUT
// fetches only the TID-lists of the items involved. In memory (see
// fig2_counting) ECUT wins at every |S|; with on-disk files this bench
// reports both wall time and true bytes read, making the paper's
// crossover analysis concrete: ECUT's I/O volume grows linearly with |S|
// and meets PT-Scan's fixed scan volume right where the paper's
// wall-clock crossover sits.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "itemsets/apriori.h"
#include "itemsets/disk_counting.h"

namespace demon {
namespace {

void Run() {
  const size_t n = bench::Scaled(2000000, 20000);
  QuestParams params = bench::PaperQuestParams(n, 7);
  QuestGenerator gen(params);
  const auto block = bench::MakeSharedBlock(gen.GenerateAll());
  const ItemsetModel model = Apriori({block}, 0.01, params.num_items);

  const std::string tx_path = "/tmp/demon_fig2_txns.bin";
  const std::string tl_path = "/tmp/demon_fig2_lists.bin";
  DEMON_CHECK_OK(TransactionFile::Write(*block, tx_path));
  PairMaterializationSpec spec;
  spec.pairs = model.Frequent2ItemsetsBySupport();
  DEMON_CHECK_OK(TidListFile::Write(
      *BlockTidLists::Build(*block, params.num_items, &spec), tl_path));

  // Border sample, larger itemsets first (see fig2_counting).
  std::vector<Itemset> large;
  std::vector<Itemset> pairs_only;
  for (Itemset& itemset : model.NegativeBorder()) {
    (itemset.size() >= 3 ? large : pairs_only).push_back(std::move(itemset));
  }
  Rng rng(13);
  rng.Shuffle(&large);
  rng.Shuffle(&pairs_only);
  std::vector<Itemset> pool = std::move(large);
  pool.insert(pool.end(), pairs_only.begin(), pairs_only.end());

  bench::PrintHeader("Figure 2 (disk-resident): time and MB read vs |S| — " +
                     params.ToString() + ", minsup 0.01");
  std::printf("%-6s %12s %12s %12s %12s %12s %12s\n", "|S|", "PT(ms)",
              "PT(MB)", "ECUT(ms)", "ECUT(MB)", "ECUT+(ms)", "ECUT+(MB)");

  for (int s : {5, 10, 20, 40, 80, 120, 180}) {
    std::vector<Itemset> sample(
        pool.begin(), pool.begin() + std::min<size_t>(s, pool.size()));

    auto scanner = TransactionFileScanner::Open(tx_path).ValueOrDie();
    telemetry::ScopedTimer pt_timer;
    auto pt = PtScanCountDisk(sample, {scanner.get()});
    const double pt_ms = pt_timer.Stop() * 1e3;
    DEMON_CHECK(pt.ok());
    const double pt_mb =
        static_cast<double>(scanner->bytes_read()) / (1024.0 * 1024.0);

    auto reader = TidListFileReader::Open(tl_path).ValueOrDie();
    telemetry::ScopedTimer ecut_timer;
    auto ecut = EcutCountDisk(sample, {reader.get()}, false);
    const double ecut_ms = ecut_timer.Stop() * 1e3;
    DEMON_CHECK(ecut.ok());
    const double ecut_mb =
        static_cast<double>(reader->bytes_read()) / (1024.0 * 1024.0);

    auto reader_plus = TidListFileReader::Open(tl_path).ValueOrDie();
    telemetry::ScopedTimer plus_timer;
    auto ecut_plus = EcutCountDisk(sample, {reader_plus.get()}, true);
    const double plus_ms = plus_timer.Stop() * 1e3;
    DEMON_CHECK(ecut_plus.ok());
    const double plus_mb =
        static_cast<double>(reader_plus->bytes_read()) / (1024.0 * 1024.0);

    DEMON_CHECK(pt.value() == ecut.value());
    DEMON_CHECK(pt.value() == ecut_plus.value());
    std::printf("%-6d %12.1f %12.2f %12.1f %12.2f %12.1f %12.2f\n", s, pt_ms,
                pt_mb, ecut_ms, ecut_mb, plus_ms, plus_mb);
  }
  std::printf("shape check: PT-Scan MB constant; ECUT MB grows ~linearly "
              "with |S| toward the PT-Scan volume (the paper's crossover); "
              "ECUT+ reads the least\n");
  std::remove(tx_path.c_str());
  std::remove(tl_path.c_str());
}

}  // namespace
}  // namespace demon

int main() {
  demon::Run();
  return 0;
}
