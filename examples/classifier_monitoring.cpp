// Monitoring a classifier over evolving data — the decision-tree model
// class under DEMON's machinery. A labeled stream drifts to a new concept
// mid-way; three paper components work together:
//
//  1. an unrestricted-window incremental tree (one scan per block),
//  2. a GEMM most-recent-window tree that forgets the old concept,
//  3. FOCUS (decision-tree instantiation) comparing consecutive blocks,
//     whose deviation significance pinpoints the drift block — pattern
//     detection applied to classification data.
//
// Build & run:  ./build/examples/classifier_monitoring

#include <cstdio>

#include "core/gemm.h"
#include "datagen/labeled_generator.h"
#include "deviation/focus_dtree.h"
#include "dtree/dtree_maintainer.h"

int main() {
  using namespace demon;
  using BlockPtr = std::shared_ptr<const LabeledBlock>;

  LabeledSchema schema;
  schema.attribute_cardinalities.assign(8, 3);
  schema.num_classes = 3;

  LabeledGenerator::Params params;
  params.schema = schema;
  params.concept_depth = 4;
  params.label_noise = 0.05;
  params.seed = 21;
  LabeledGenerator before_drift(params);
  params.seed = 84;  // a different hidden concept
  LabeledGenerator after_drift(params);

  DTreeOptions tree_options;
  tree_options.min_split_weight = 150.0;
  DTreeMaintainer unrestricted(schema, tree_options);
  const size_t w = 3;
  Gemm<DTreeMaintainer, BlockPtr> windowed(
      BlockSelectionSequence::AllBlocks(), w,
      [&] { return DTreeMaintainer(schema, tree_options); });

  FocusDecisionTrees focus(FocusDecisionTrees::Options{});

  std::printf("block | UW acc | MRW acc | FOCUS dev vs prev | significance\n");
  BlockPtr previous;
  for (int b = 1; b <= 10; ++b) {
    LabeledGenerator& source = (b <= 5) ? before_drift : after_drift;
    auto block = std::make_shared<LabeledBlock>(source.NextBlock(4000));

    unrestricted.AddBlock(block);
    windowed.AddBlock(block);

    double deviation = 0.0;
    double significance = 0.0;
    if (previous != nullptr) {
      const DeviationResult result = focus.Compare(*previous, *block);
      deviation = result.deviation;
      significance = result.significance;
    }
    const LabeledBlock test = source.NextBlock(1500);
    std::printf("%5d | %6.3f | %7.3f | %17.3f | %11.3f%s\n", b,
                unrestricted.Accuracy(test),
                windowed.current().Accuracy(test), deviation, significance,
                (previous != nullptr && significance > 0.99)
                    ? "  <-- drift detected"
                    : "");
    previous = block;
  }

  std::printf("\nfinal unrestricted-window tree: %zu leaves, depth %zu\n",
              unrestricted.model().NumLeaves(),
              unrestricted.model().Depth());
  std::printf("The FOCUS deviation flags the drift block; the GEMM window "
              "recovers to the new concept\nwhile the unrestricted-window "
              "tree keeps paying for stale history (§2.2's motivation).\n");
  return 0;
}
