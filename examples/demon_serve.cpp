// demon_serve: the long-running multi-tenant DEMON daemon.
//
// Accepts transaction batches over the length-prefixed binary protocol of
// src/server/wire.h, hosts one independent DemonMonitor per tenant, and
// keeps every tenant crash-durable through a write-ahead log plus periodic
// checkpoints. Drive it with examples/demon_load.cpp; kill it with -9 and
// restart it to watch recovery replay the WAL (scripts/server_soak_test.sh
// automates exactly that and diffs the recovered checkpoints byte for
// byte).
//
//   demon_serve --port=7341 --data_dir=/tmp/demon --flush_records=50

#include <atomic>
#include <csignal>
#include <cstdio>
#include <string>

#include "common/flags.h"
#include "server/server.h"

namespace {

std::atomic<bool> g_stop{false};

void OnSignal(int /*signum*/) { g_stop.store(true, std::memory_order_release); }

bool WriteFileContents(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(contents.data(), 1, contents.size(), f) == contents.size();
  std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using demon::flags::FlagSet;
  FlagSet flags("demon_serve",
                "Multi-tenant DEMON monitoring daemon: hosts one evolving "
                "database per tenant, durable via WAL + checkpoints.");
  flags.DefineInt("port", 0, "TCP port to listen on (0 binds an ephemeral "
                             "port, printed at startup)");
  flags.DefineString("data_dir", "",
                     "root directory for tenant state (required)");
  flags.DefineInt("threads", 4, "workers in the shared flush pool");
  flags.DefineInt("flush_records", 512,
                  "records per sealed block (the deterministic block cut)");
  flags.DefineInt("checkpoint_blocks", 8,
                  "checkpoint + WAL reset after this many sealed blocks");
  flags.DefineString("telemetry_out", "",
                     "write Prometheus-format metrics here at exit");
  const demon::Status parsed = flags.Parse(argc, argv);
  if (flags.help_requested()) {
    std::printf("%s", flags.HelpText().c_str());
    return 0;
  }
  if (!parsed.ok()) {
    std::fprintf(stderr, "demon_serve: %s\n", parsed.message().c_str());
    return 2;
  }
  if (flags.GetString("data_dir").empty()) {
    std::fprintf(stderr, "demon_serve: --data_dir is required\n");
    return 2;
  }

  // A peer that vanishes mid-reply must surface as an IoError on that
  // connection, never as a process-killing SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  demon::server::ServerOptions options;
  options.data_dir = flags.GetString("data_dir");
  options.port = static_cast<uint16_t>(flags.GetInt("port"));
  options.num_threads = static_cast<size_t>(flags.GetInt("threads"));
  options.policy.flush_records =
      static_cast<uint64_t>(flags.GetInt("flush_records"));
  options.policy.checkpoint_blocks =
      static_cast<uint64_t>(flags.GetInt("checkpoint_blocks"));

  demon::server::DemonServer server(options);
  const demon::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "demon_serve: start failed: %s\n",
                 started.message().c_str());
    return 1;
  }
  std::printf("demon_serve listening on 127.0.0.1:%u (data_dir=%s, "
              "tenants recovered=%zu)\n",
              server.port(), options.data_dir.c_str(),
              server.host()->NumTenants());
  std::fflush(stdout);

  server.WaitForShutdown(&g_stop);
  const demon::Status stopped = server.Stop();
  if (!stopped.ok()) {
    std::fprintf(stderr, "demon_serve: final flush failed: %s\n",
                 stopped.message().c_str());
  }

  const demon::server::HostStats stats = server.host()->Stats();
  std::printf("demon_serve stopped: %llu tenants, %llu records durable, "
              "%llu blocks\n",
              static_cast<unsigned long long>(stats.num_tenants),
              static_cast<unsigned long long>(stats.records_durable),
              static_cast<unsigned long long>(stats.blocks));

  const std::string telemetry_out = flags.GetString("telemetry_out");
  if (!telemetry_out.empty()) {
    const std::string text = server.telemetry()->Export(
        demon::telemetry::TelemetryFormat::kPrometheus);
    if (!WriteFileContents(telemetry_out, text)) {
      std::fprintf(stderr, "demon_serve: cannot write %s\n",
                   telemetry_out.c_str());
      return 1;
    }
  }
  return stopped.ok() ? 0 : 1;
}
