// The Demons'R'Us scenario (paper §2.2/§2.3): a toy store's warehouse
// receives one block of transactions per day. The marketing analyst cares
// about *recent* trends, so the model is maintained over the most recent
// window with GEMM — here two monitors run side by side:
//
//  1. "last week":         MRW of size 7, BSS <1111111> (all days);
//  2. "same weekday":      MRW of size 7, window-relative BSS <1000000>
//                          (the paper's "data collected on the same day of
//                          the week as today within the past w days").
//
// GEMM keeps one BORDERS maintainer per overlapping future window, so the
// response time per day is a single incremental update — no deletions and
// no re-mining, regardless of the BSS.
//
// Build & run:  ./build/examples/retail_monitoring

#include <cstdio>

#include "common/telemetry.h"
#include "core/gemm.h"
#include "core/maintainers.h"
#include "datagen/quest_generator.h"

int main() {
  using namespace demon;
  using BlockPtr = std::shared_ptr<const TransactionBlock>;

  const size_t w = 7;

  BordersOptions model_options;
  model_options.minsup = 0.02;
  model_options.num_items = 500;
  model_options.strategy = CountingStrategy::kEcut;
  const auto factory = [&model_options] {
    return BordersMaintainer(model_options);
  };

  Gemm<BordersMaintainer, BlockPtr> last_week(
      BlockSelectionSequence::AllBlocks(), w, factory);
  Gemm<BordersMaintainer, BlockPtr> same_weekday(
      BlockSelectionSequence::WindowRelative(
          {true, false, false, false, false, false, false}),
      w, factory);

  // Weekday sales come from one pattern table, weekend sales from
  // another — the "latest customer trends" the analyst is after differ by
  // day of week.
  QuestParams weekday_params;
  weekday_params.num_transactions = 1;  // streamed via NextBlock
  weekday_params.num_items = 500;
  weekday_params.num_patterns = 300;
  weekday_params.avg_transaction_len = 8;
  weekday_params.seed = 11;
  QuestParams weekend_params = weekday_params;
  weekend_params.num_patterns = 150;
  weekend_params.avg_pattern_len = 5;
  weekend_params.seed = 22;
  QuestGenerator weekday_gen(weekday_params);
  QuestGenerator weekend_gen(weekend_params);

  const char* day_names[7] = {"Mon", "Tue", "Wed", "Thu",
                              "Fri", "Sat", "Sun"};
  std::printf("day | last-week model      | same-weekday model   | "
              "response (ms)\n");
  std::printf("    | txns    freq  bord   | txns    freq  bord   |\n");

  Tid next_tid = 0;
  for (int day = 0; day < 21; ++day) {
    const bool weekend = (day % 7) >= 5;
    auto block = std::make_shared<TransactionBlock>(
        (weekend ? weekend_gen : weekday_gen).NextBlock(3000, next_tid));
    next_tid += block->size();
    block->mutable_info()->id = static_cast<BlockId>(day + 1);

    // Response time = the BeginBlock half only (the future-window updates
    // are off the time-critical path); in a deployment the engine's
    // per-monitor histograms record this split.
    telemetry::ScopedTimer week_timer;
    last_week.BeginBlock(block);
    const double week_response = week_timer.Stop();
    last_week.DrainOffline();
    telemetry::ScopedTimer dow_timer;
    same_weekday.BeginBlock(block);
    const double dow_response = dow_timer.Stop();
    same_weekday.DrainOffline();

    const ItemsetModel& week_model = last_week.current().model();
    const ItemsetModel& dow_model = same_weekday.current().model();
    std::printf("%s | %6llu %6zu %5zu | %6llu %6zu %5zu | %.1f + %.1f\n",
                day_names[day % 7],
                static_cast<unsigned long long>(week_model.num_transactions()),
                week_model.NumFrequent(), week_model.NumBorder(),
                static_cast<unsigned long long>(dow_model.num_transactions()),
                dow_model.NumFrequent(), dow_model.NumBorder(),
                week_response * 1e3, dow_response * 1e3);
  }

  std::printf("\nNote how the same-weekday monitor always summarizes "
              "exactly one block\n(the most recent Monday/.../Sunday) "
              "while the last-week monitor covers the full window.\n");
  return 0;
}
