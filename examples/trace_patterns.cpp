// Pattern detection on evolving data (paper §4/§5.3): discover compact
// sequences of similar blocks in a web-proxy trace — "which time periods
// behave alike?" — without the analyst specifying any block selection
// sequence up front.
//
// The trace is the synthetic stand-in for the DEC proxy logs (see
// DESIGN.md). Each request becomes a 2-item transaction {object type,
// size bucket}; blocks are 24-hour slices; similarity is judged by the
// FOCUS deviation between the blocks' frequent-itemset models at 1%
// minimum support.
//
// Build & run:  ./build/examples/trace_patterns

#include <cstdio>

#include "datagen/trace_generator.h"
#include "patterns/compact_sequences.h"

int main() {
  using namespace demon;

  TraceGenerator::Params trace_params;
  trace_params.rate_scale = 0.05;
  trace_params.seed = 3;
  TraceGenerator generator(trace_params);
  const auto trace = generator.Generate();
  const auto blocks = SegmentTrace(trace, /*granularity_hours=*/24,
                                   /*start_hour=*/24);  // midnight-aligned
  std::printf("trace: %zu requests, %zu daily blocks\n", trace.size(),
              blocks.size());

  CompactSequenceMiner::Options options;
  options.focus.minsup = 0.01;
  options.focus.num_items =
      TraceGenerator::kNumObjectTypes + TraceGenerator::kNumSizeBuckets;
  options.alpha = 0.99;
  CompactSequenceMiner miner(options);

  for (const auto& block : blocks) {
    miner.AddBlock(std::make_shared<TransactionBlock>(block));
    std::printf("  + %-22s (%5zu reqs)  update %.1f ms, %zu block scans\n",
                block.info().label.c_str(), block.size(),
                miner.last_add_seconds() * 1e3, miner.last_scan_count());
  }

  std::printf("\ndiscovered compact sequences (maximal, >= 3 blocks):\n");
  for (const auto& sequence : miner.MaximalSequences(3)) {
    std::printf("  {");
    for (size_t i = 0; i < sequence.size(); ++i) {
      std::printf("%s%s", i > 0 ? ", " : "",
                  miner.blocks()[sequence[i]]->info().label.substr(0, 9)
                      .c_str());
    }
    std::printf("}\n");
  }

  // The anomalous Monday 9-9: which days is it similar to?
  std::printf("\nsimilarity of the anomalous Mon 09-09 to other days: ");
  size_t anomaly_index = 0;
  for (size_t i = 0; i < miner.blocks().size(); ++i) {
    if (miner.blocks()[i]->info().label.find("09-09") != std::string::npos) {
      anomaly_index = i;
    }
  }
  size_t similar_days = 0;
  for (size_t i = 0; i < miner.blocks().size(); ++i) {
    if (i != anomaly_index && miner.Similar(i, anomaly_index)) {
      ++similar_days;
    }
  }
  std::printf("%zu of %zu (paper: recognized as unusual, "
              "excluded from all patterns)\n",
              similar_days, miner.blocks().size() - 1);
  return 0;
}
