// The document-clustering scenario of paper §2.2: a corpus grows by a
// block of documents at a time, the model is a set of document clusters
// over the *entire* collection (unrestricted window), and each new block
// must update the clusters without re-reading the archive.
//
// Documents are represented as points in a low-dimensional "topic space"
// (think of coordinates as topic-model weights). BIRCH+ keeps the
// sub-cluster summary alive across blocks: adding a block scans only that
// block, and the cheap phase 2 re-derives the cluster model. A drifting
// topic (cluster 0 moves between blocks) shows the model tracking change.
//
// Build & run:  ./build/examples/document_clustering

#include <cstdio>

#include "clustering/birch.h"
#include "common/random.h"

int main() {
  using namespace demon;

  constexpr size_t kDim = 4;       // topic weights
  constexpr size_t kTopics = 6;    // true clusters
  constexpr size_t kPerBlock = 5000;

  BirchOptions options;
  options.num_clusters = kTopics;
  options.phase2 = Phase2Algorithm::kAgglomerative;
  options.tree.max_leaf_entries = 512;
  BirchPlus clusters(kDim, options);

  // Fixed topic centers, except topic 0 which drifts over time (a story
  // evolving in the news).
  Rng rng(77);
  std::vector<Point> centers;
  for (size_t k = 0; k < kTopics; ++k) {
    Point c(kDim);
    for (double& v : c) v = rng.NextDouble() * 60.0;
    centers.push_back(std::move(c));
  }

  std::printf("block | docs(total) | sub-clusters | phase1(ms) phase2(ms) | "
              "drifting-topic centroid (dim 0)\n");
  for (int b = 0; b < 8; ++b) {
    centers[0][0] += 4.0;  // the drifting topic moves along dimension 0
    std::vector<double> coords;
    coords.reserve(kPerBlock * kDim);
    for (size_t i = 0; i < kPerBlock; ++i) {
      const size_t topic = rng.NextUint64(kTopics);
      for (size_t d = 0; d < kDim; ++d) {
        coords.push_back(rng.NextGaussian(centers[topic][d], 1.5));
      }
    }
    const PointBlock block(std::move(coords), kDim);
    clusters.AddBlock(block);

    // Locate the model cluster closest to the drifting topic's center.
    const ClusterModel& model = clusters.model();
    const int drift_cluster = model.Assign(centers[0].data(), kDim);
    const Point drift_centroid =
        model.clusters()[drift_cluster].Centroid();
    std::printf("%5d | %11.0f | %12zu | %10.1f %10.1f | %.1f (true %.1f)\n",
                b + 1, clusters.tree().total_weight(),
                clusters.last_stats().num_subclusters,
                clusters.last_stats().phase1_seconds * 1e3,
                clusters.last_stats().phase2_seconds * 1e3,
                drift_centroid[0], centers[0][0]);
  }

  std::printf("\nCluster summary after the last block:\n");
  for (size_t c = 0; c < clusters.model().NumClusters(); ++c) {
    const auto& cf = clusters.model().clusters()[c];
    const Point centroid = cf.Centroid();
    std::printf("  cluster %zu: %6.0f docs, radius %5.2f, centroid (%.1f",
                c, cf.n(), cf.Radius(), centroid[0]);
    for (size_t d = 1; d < kDim; ++d) std::printf(", %.1f", centroid[d]);
    std::printf(")\n");
  }
  std::printf("\nThe drifting topic's centroid lags its true center "
              "because the unrestricted window\naverages over all history "
              "— the motivation for the most-recent-window option (§2.2).\n");
  return 0;
}
