// Quickstart: incremental frequent-itemset maintenance over a
// systematically evolving database (paper §3.1.1).
//
// A store receives a block of transactions per "day". We maintain the set
// of frequent itemsets (plus its negative border) with the BORDERS
// maintainer using ECUT counting, and after every block query the model —
// no re-mining ever happens; each day only the new block is scanned plus
// the TID-lists of whatever new candidates appear.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <algorithm>

#include "common/check.h"
#include "datagen/quest_generator.h"
#include "itemsets/borders.h"

int main() {
  using namespace demon;

  // A synthetic market-basket workload: 1000 item universe, patterns of
  // average length 4 (the paper's standard generator of [AS94]).
  QuestParams data_params;
  data_params.num_transactions = 60000;
  data_params.num_items = 1000;
  data_params.num_patterns = 2000;
  data_params.avg_transaction_len = 10;
  data_params.avg_pattern_len = 4;
  data_params.seed = 2026;
  QuestGenerator generator(data_params);

  // The maintained model: frequent itemsets at 1% minimum support, with
  // ECUT (per-block TID-list) counting in the update phase.
  BordersOptions options;
  options.minsup = 0.01;
  options.num_items = data_params.num_items;
  options.strategy = CountingStrategy::kEcut;
  BordersMaintainer maintainer(options);

  std::printf("day | txns(total) | frequent | border | new-cands | "
              "detect+update (ms)\n");
  Tid next_tid = 0;
  for (int day = 1; day <= 6; ++day) {
    // A new block of 10K transactions arrives.
    auto block = std::make_shared<TransactionBlock>(
        generator.NextBlock(10000, next_tid));
    next_tid += block->size();
    maintainer.AddBlock(std::move(block));

    const ItemsetModel& model = maintainer.model();
    const auto& stats = maintainer.last_stats();
    std::printf("%3d | %11llu | %8zu | %6zu | %9zu | %.1f\n", day,
                static_cast<unsigned long long>(model.num_transactions()),
                model.NumFrequent(), model.NumBorder(),
                stats.new_candidates,
                (stats.detection_seconds + stats.update_seconds) * 1e3);
  }

  // Query the final model: the five most frequent 2-itemsets.
  const ItemsetModel& model = maintainer.model();
  std::vector<std::pair<uint64_t, Itemset>> top;
  for (const auto& [itemset, entry] : model.entries()) {
    if (entry.frequent && itemset.size() == 2) {
      top.push_back({entry.count, itemset});
    }
  }
  std::sort(top.rbegin(), top.rend());
  std::printf("\ntop frequent 2-itemsets after day 6:\n");
  for (size_t i = 0; i < top.size() && i < 5; ++i) {
    std::printf("  %s  support %.2f%%\n", ToString(top[i].second).c_str(),
                100.0 * model.SupportOf(top[i].second));
  }
  return 0;
}
