// demon_load: load generator and soak client for demon_serve.
//
// Drives N tenants over K connections: creates each tenant with an
// itemset monitor, then streams a deterministic per-tenant transaction
// sequence in batches, carrying the cumulative record index so the
// server's exactly-once cursor can dedup resends. `--resume` re-reads
// each tenant's cursor from the CreateTenant reply (idempotent on an
// existing tenant) and regenerates the stream from there — record i of
// tenant t is a pure function of (seed, t, i) — which is how the soak
// harness re-drives a server that was SIGKILLed mid-stream.
//
//   demon_load --port=7341 --tenants=1000 --records=120 --batch=40
//              --resume --flush --shutdown

#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/random.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/telemetry.h"
#include "server/wire.h"

namespace {

using demon::Rng;
using demon::Status;
using demon::Transaction;
using demon::server::ClientConnection;
using demon::server::MsgType;
using demon::server::Request;
using demon::server::Response;

struct LoadConfig {
  std::string host;
  uint16_t port = 0;
  uint64_t tenants = 0;
  uint64_t records = 0;
  uint64_t batch = 0;
  uint64_t num_items = 0;
  double minsup = 0.3;
  uint64_t seed = 0;
  bool resume = false;
};

/// Record `index` of tenant `tenant_index`: deterministic and randomly
/// addressable, so a resumed run regenerates exactly the suffix the
/// server is missing.
Transaction MakeRecord(const LoadConfig& config, uint64_t tenant_index,
                       uint64_t index) {
  Rng rng(config.seed ^ (tenant_index + 1) * 0x9E3779B97F4A7C15ULL ^
          (index + 1) * 0xBF58476D1CE4E5B9ULL);
  const size_t size = 2 + static_cast<size_t>(rng.NextUint64(6));
  std::vector<demon::Item> items;
  items.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    items.push_back(static_cast<demon::Item>(rng.NextUint64(config.num_items)));
  }
  return Transaction(std::move(items));
}

std::string TenantName(uint64_t tenant_index) {
  return "t" + std::to_string(tenant_index);
}

/// Issues one call and records its latency.
demon::Result<Response> TimedCall(ClientConnection& connection,
                                  const Request& request,
                                  demon::telemetry::TelemetryRegistry* reg) {
  const uint64_t start_ns = demon::telemetry::NowNanos();
  auto response = connection.Call(request);
  reg->histogram("client/request_seconds")
      ->Record(static_cast<double>(demon::telemetry::NowNanos() - start_ns) /
               1e9);
  reg->counter("client/requests")->Increment();
  if (!response.ok() || !response.value().ok()) {
    reg->counter("client/errors")->Increment();
  }
  return response;
}

/// Streams every tenant with index ≡ worker (mod workers). Returns the
/// first error hit.
Status RunWorker(const LoadConfig& config, uint64_t worker, uint64_t workers,
                 demon::telemetry::TelemetryRegistry* reg) {
  ClientConnection connection;
  DEMON_RETURN_NOT_OK(connection.Connect(config.host, config.port));
  for (uint64_t t = worker; t < config.tenants; t += workers) {
    Request create;
    create.type = MsgType::kCreateTenant;
    create.tenant = TenantName(t);
    create.num_items = config.num_items;
    demon::MonitorSpec spec;
    spec.kind = demon::MonitorKind::kUnrestrictedItemsets;
    spec.name = "itemsets";
    spec.minsup = config.minsup;
    create.specs.push_back(std::move(spec));
    auto created = TimedCall(connection, create, reg);
    if (!created.ok()) return created.status();
    DEMON_RETURN_NOT_OK(created.value().ToStatus());

    uint64_t cursor =
        config.resume ? created.value().records_admitted : 0;
    while (cursor < config.records) {
      const uint64_t n = std::min(config.batch, config.records - cursor);
      Request append;
      append.type = MsgType::kAppendBatch;
      append.tenant = TenantName(t);
      append.first_record_index = cursor;
      append.transactions.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        append.transactions.push_back(MakeRecord(config, t, cursor + i));
      }
      auto appended = TimedCall(connection, append, reg);
      if (!appended.ok()) return appended.status();
      DEMON_RETURN_NOT_OK(appended.value().ToStatus());
      reg->counter("client/records_sent")->Add(n);
      cursor = appended.value().records_admitted;
    }
  }
  return Status::OK();
}

bool WriteFileContents(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok =
      std::fwrite(contents.data(), 1, contents.size(), f) == contents.size();
  std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using demon::flags::FlagSet;
  FlagSet flags("demon_load",
                "Load generator for demon_serve: deterministic per-tenant "
                "transaction streams with exactly-once resume.");
  flags.DefineString("host", "127.0.0.1", "server address");
  flags.DefineInt("port", 0, "server port (required)");
  flags.DefineInt("tenants", 8, "tenants to drive");
  flags.DefineInt("records", 200, "records per tenant");
  flags.DefineInt("batch", 50, "records per AppendBatch");
  flags.DefineInt("connections", 4, "client connections (worker threads)");
  flags.DefineInt("num_items", 64, "item-universe size per tenant");
  flags.DefineDouble("minsup", 0.3, "minimum support of each tenant's "
                                    "itemset monitor");
  flags.DefineInt("seed", 42, "stream seed (determines every record)");
  flags.DefineBool("resume", false,
                   "resume each tenant from the server's cursor instead of "
                   "resending from record 0");
  flags.DefineBool("flush", false, "FlushAll after streaming");
  flags.DefineBool("shutdown", false,
                   "request a durable server shutdown at the end");
  flags.DefineBool("ping", false, "just ping the server and exit");
  flags.DefineString("json_out", "",
                     "write a latency/throughput summary JSON here");
  const Status parsed = flags.Parse(argc, argv);
  if (flags.help_requested()) {
    std::printf("%s", flags.HelpText().c_str());
    return 0;
  }
  if (!parsed.ok()) {
    std::fprintf(stderr, "demon_load: %s\n", parsed.message().c_str());
    return 2;
  }
  if (flags.GetInt("port") <= 0) {
    std::fprintf(stderr, "demon_load: --port is required\n");
    return 2;
  }
  std::signal(SIGPIPE, SIG_IGN);

  LoadConfig config;
  config.host = flags.GetString("host");
  config.port = static_cast<uint16_t>(flags.GetInt("port"));
  config.tenants = static_cast<uint64_t>(flags.GetInt("tenants"));
  config.records = static_cast<uint64_t>(flags.GetInt("records"));
  config.batch = std::max<uint64_t>(1, flags.GetInt("batch"));
  config.num_items = std::max<uint64_t>(2, flags.GetInt("num_items"));
  config.minsup = flags.GetDouble("minsup");
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  config.resume = flags.GetBool("resume");

  if (flags.GetBool("ping")) {
    ClientConnection connection;
    Status status = connection.Connect(config.host, config.port);
    if (status.ok()) {
      Request ping;
      ping.type = MsgType::kPing;
      auto response = connection.Call(ping);
      status = response.ok() ? response.value().ToStatus()
                             : response.status();
    }
    if (!status.ok()) {
      std::fprintf(stderr, "demon_load: ping failed: %s\n",
                   status.message().c_str());
      return 1;
    }
    std::printf("pong\n");
    return 0;
  }

  demon::telemetry::TelemetryRegistry registry;
  const uint64_t workers =
      std::max<uint64_t>(1, std::min<uint64_t>(flags.GetInt("connections"),
                                               std::max<uint64_t>(
                                                   1, config.tenants)));
  const uint64_t start_ns = demon::telemetry::NowNanos();
  std::vector<std::thread> threads;
  std::vector<Status> results(workers);
  for (uint64_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      results[w] = RunWorker(config, w, workers, &registry);
    });
  }
  for (std::thread& t : threads) t.join();
  for (const Status& result : results) {
    if (!result.ok()) {
      std::fprintf(stderr, "demon_load: %s\n", result.message().c_str());
      return 1;
    }
  }

  if (flags.GetBool("flush") || flags.GetBool("shutdown")) {
    ClientConnection connection;
    Status status = connection.Connect(config.host, config.port);
    if (status.ok() && flags.GetBool("flush")) {
      Request flush_all;
      flush_all.type = MsgType::kFlushAll;
      auto response = TimedCall(connection, flush_all, &registry);
      status = response.ok() ? response.value().ToStatus()
                             : response.status();
    }
    if (status.ok() && flags.GetBool("shutdown")) {
      Request stop;
      stop.type = MsgType::kShutdown;
      auto response = TimedCall(connection, stop, &registry);
      status = response.ok() ? response.value().ToStatus()
                             : response.status();
    }
    if (!status.ok()) {
      std::fprintf(stderr, "demon_load: %s\n", status.message().c_str());
      return 1;
    }
  }

  const double seconds =
      static_cast<double>(demon::telemetry::NowNanos() - start_ns) / 1e9;
  const uint64_t sent = registry.counter("client/records_sent")->value();
  const uint64_t requests = registry.counter("client/requests")->value();
  double p50 = 0.0, p95 = 0.0, max_latency = 0.0;
  for (const auto& summary : registry.HistogramSummaries()) {
    if (summary.name == "client/request_seconds") {
      p50 = summary.p50;
      p95 = summary.p95;
      max_latency = summary.max;
    }
  }
  std::printf("demon_load: %llu tenants, %llu records in %.2fs "
              "(%.0f records/s, %llu requests, p50=%.3gs p95=%.3gs)\n",
              static_cast<unsigned long long>(config.tenants),
              static_cast<unsigned long long>(sent), seconds,
              seconds > 0 ? static_cast<double>(sent) / seconds : 0.0,
              static_cast<unsigned long long>(requests), p50, p95);

  const std::string json_out = flags.GetString("json_out");
  if (!json_out.empty()) {
    char buffer[512];
    std::snprintf(
        buffer, sizeof(buffer),
        "{\n"
        "  \"tenants\": %llu,\n"
        "  \"records_sent\": %llu,\n"
        "  \"requests\": %llu,\n"
        "  \"seconds\": %.6f,\n"
        "  \"records_per_second\": %.1f,\n"
        "  \"latency_seconds\": {\"p50\": %.9f, \"p95\": %.9f, "
        "\"max\": %.9f}\n"
        "}\n",
        static_cast<unsigned long long>(config.tenants),
        static_cast<unsigned long long>(sent),
        static_cast<unsigned long long>(requests), seconds,
        seconds > 0 ? static_cast<double>(sent) / seconds : 0.0, p50, p95,
        max_latency);
    if (!WriteFileContents(json_out, buffer)) {
      std::fprintf(stderr, "demon_load: cannot write %s\n", json_out.c_str());
      return 1;
    }
  }
  return 0;
}
