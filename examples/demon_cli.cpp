// demon_cli — command-line driver over the library, operating on blocks
// stored as TransactionFile binaries. A minimal deployment surface:
//
//   demon_cli gen --out day1.bin --transactions 20000 --seed 1
//   demon_cli mine --minsup 0.01 --data day1.bin,day2.bin
//   demon_cli maintain --minsup 0.01 --strategy ecut --bss all
//       --data day1.bin,day2.bin,day3.bin
//   demon_cli patterns --minsup 0.01 --alpha 0.99 --data day*.bin...
//   demon_cli rules --minsup 0.02 --confidence 0.6 --data day1.bin
//
// Build & run:  ./build/examples/demon_cli <command> [flags]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/telemetry_timeline.h"
#include "core/bss.h"
#include "core/demon_monitor.h"
#include "data/transaction_file.h"
#include "datagen/quest_generator.h"
#include "itemsets/apriori.h"
#include "itemsets/association_rules.h"
#include "itemsets/borders.h"
#include "patterns/compact_sequences.h"

namespace demon {
namespace {

/// Per-command fallback for a flag whose default differs by subcommand
/// (e.g. --top shows 15 itemsets under `mine` but 10 under `maintain`).
long IntOr(const flags::FlagSet& flags, const std::string& name,
           long fallback) {
  return flags.Provided(name) ? flags.GetInt(name) : fallback;
}

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> parts;
  size_t begin = 0;
  while (begin <= text.size()) {
    const size_t comma = text.find(',', begin);
    const size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > begin) parts.push_back(text.substr(begin, end - begin));
    if (comma == std::string::npos) break;
    begin = comma + 1;
  }
  return parts;
}

Result<std::vector<std::shared_ptr<const TransactionBlock>>> LoadBlocks(
    const flags::FlagSet& flags) {
  if (!flags.Provided("data")) {
    return Status::InvalidArgument("--data file1[,file2,...] is required");
  }
  std::vector<std::shared_ptr<const TransactionBlock>> blocks;
  Tid tid = 0;
  for (const std::string& path : SplitCommas(flags.GetString("data"))) {
    DEMON_ASSIGN_OR_RETURN(TransactionBlock block,
                           TransactionFile::Read(path, tid));
    tid += block.size();
    block.mutable_info()->id = static_cast<BlockId>(blocks.size() + 1);
    block.mutable_info()->label = path;
    blocks.push_back(std::make_shared<TransactionBlock>(std::move(block)));
  }
  if (blocks.empty()) return Status::InvalidArgument("no data files given");
  return blocks;
}

size_t InferNumItems(
    const std::vector<std::shared_ptr<const TransactionBlock>>& blocks) {
  Item max_item = 0;
  for (const auto& block : blocks) {
    for (const Transaction& t : block->transactions()) {
      for (Item item : t.items()) max_item = std::max(max_item, item);
    }
  }
  return static_cast<size_t>(max_item) + 1;
}

void PrintTopItemsets(const ItemsetModel& model, size_t top_k) {
  std::vector<std::pair<uint64_t, Itemset>> ranked;
  for (const auto& [itemset, entry] : model.entries()) {
    if (entry.frequent && itemset.size() >= 2) {
      ranked.push_back({entry.count, itemset});
    }
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("frequent itemsets: %zu (border: %zu) over %llu transactions\n",
              model.NumFrequent(), model.NumBorder(),
              static_cast<unsigned long long>(model.num_transactions()));
  for (size_t i = 0; i < ranked.size() && i < top_k; ++i) {
    std::printf("  %s  support %.3f%%\n", ToString(ranked[i].second).c_str(),
                100.0 * model.SupportOf(ranked[i].second));
  }
}

// --------------------------------------------------------------------------
// Subcommands.

Status RunGen(const flags::FlagSet& flags) {
  if (!flags.Provided("out")) return Status::InvalidArgument("--out is required");
  QuestParams params;
  params.num_transactions =
      static_cast<size_t>(flags.GetInt("transactions"));
  params.num_items = static_cast<size_t>(flags.GetInt("items"));
  params.num_patterns = static_cast<size_t>(flags.GetInt("patterns"));
  params.avg_transaction_len = flags.GetDouble("len");
  params.avg_pattern_len = flags.GetDouble("plen");
  params.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  QuestGenerator gen(params);
  const TransactionBlock block = gen.GenerateAll();
  DEMON_RETURN_NOT_OK(
      TransactionFile::Write(block, flags.GetString("out")));
  std::printf("wrote %zu transactions (%s) to %s\n", block.size(),
              params.ToString().c_str(), flags.GetString("out").c_str());
  return Status::OK();
}

Status RunMine(const flags::FlagSet& flags) {
  DEMON_ASSIGN_OR_RETURN(auto blocks, LoadBlocks(flags));
  const double minsup = flags.GetDouble("minsup");
  const ItemsetModel model = Apriori(blocks, minsup, InferNumItems(blocks));
  PrintTopItemsets(model, static_cast<size_t>(IntOr(flags, "top", 15)));
  return Status::OK();
}

Status RunMaintain(const flags::FlagSet& flags) {
  DEMON_ASSIGN_OR_RETURN(auto blocks, LoadBlocks(flags));
  DEMON_ASSIGN_OR_RETURN(
      BlockSelectionSequence bss,
      BlockSelectionSequence::FromString(flags.GetString("bss")));
  if (bss.is_window_relative()) {
    return Status::InvalidArgument(
        "maintain supports window-independent BSS; window-relative "
        "sequences need the most-recent-window option");
  }
  BordersOptions options;
  options.minsup = flags.GetDouble("minsup");
  options.num_items = InferNumItems(blocks);
  const std::string strategy = flags.GetString("strategy");
  if (strategy == "ptscan") {
    options.strategy = CountingStrategy::kPtScan;
  } else if (strategy == "ecut") {
    options.strategy = CountingStrategy::kEcut;
  } else if (strategy == "ecut+") {
    options.strategy = CountingStrategy::kEcutPlus;
  } else {
    return Status::InvalidArgument("unknown --strategy: " + strategy);
  }

  BordersMaintainer maintainer(options);
  std::printf("block | selected | frequent | border | new-cands | time(ms)\n");
  for (const auto& block : blocks) {
    const bool selected = bss.SelectsBlock(block->info().id);
    if (selected) maintainer.AddBlock(block);
    const auto& stats = maintainer.last_stats();
    std::printf("%5u | %8s | %8zu | %6zu | %9zu | %.1f\n", block->info().id,
                selected ? "yes" : "no", maintainer.model().NumFrequent(),
                maintainer.model().NumBorder(),
                selected ? stats.new_candidates : 0,
                selected ? (stats.detection_seconds + stats.update_seconds) *
                               1e3
                         : 0.0);
  }
  PrintTopItemsets(maintainer.model(),
                   static_cast<size_t>(IntOr(flags, "top", 10)));
  return Status::OK();
}

Status RunPatterns(const flags::FlagSet& flags) {
  DEMON_ASSIGN_OR_RETURN(auto blocks, LoadBlocks(flags));
  CompactSequenceMiner::Options options;
  options.focus.minsup = flags.GetDouble("minsup");
  options.focus.num_items = InferNumItems(blocks);
  options.alpha = flags.GetDouble("alpha");
  options.window_size = static_cast<size_t>(IntOr(flags, "window", 0));
  CompactSequenceMiner miner(options);
  for (const auto& block : blocks) miner.AddBlock(block);

  std::printf("maximal compact sequences (>= 2 blocks):\n");
  for (const auto& sequence : miner.MaximalSequences(2)) {
    std::printf("  {");
    for (size_t i = 0; i < sequence.size(); ++i) {
      std::printf("%s%s", i > 0 ? ", " : "",
                  miner.blocks()[sequence[i]]->info().label.c_str());
    }
    std::printf("}\n");
  }
  return Status::OK();
}

/// Writes `contents` to `path` (for --trace_out= / telemetry --out=).
Status WriteTextFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  std::fwrite(contents.data(), 1, contents.size(), f);
  std::fclose(f);
  return Status::OK();
}

/// The Figure 11 deployment fleet shared by `monitor`, `telemetry` and
/// `checkpoint`: unrestricted + windowed itemset monitors plus a pattern
/// detector, fed every block, then quiesced.
struct Fleet {
  std::unique_ptr<DemonMonitor> demon;
  std::vector<DemonMonitor::MonitorId> ids;
  DemonMonitor::MonitorId mrw = 0;
  DemonMonitor::MonitorId patterns = 0;
  EngineOptions engine;
  /// Periodic metrics scraper, live while the feed loop ran. Created when
  /// --stats_every / --timeline_out / --trace_out / --alert ask for time
  /// series; stopped (after a final post-quiesce scrape) before return.
  std::unique_ptr<telemetry::TelemetryScraper> scraper;
};

/// One live-stats line per monitor — the --stats_every output. Shows the
/// per-block evolution gauges next to the latency split so a shifting
/// stream is visible as it happens.
Status PrintLiveStats(DemonMonitor& demon,
                      const std::vector<DemonMonitor::MonitorId>& ids,
                      BlockId block_id) {
  for (const auto id : ids) {
    DEMON_ASSIGN_OR_RETURN(MonitorStats stats, demon.StatsOf(id));
    DEMON_ASSIGN_OR_RETURN(std::string name, demon.NameOf(id));
    const EvolutionStats& evo = stats.evolution;
    std::printf(
        "[block %u] %-14s routed=%zu resp=%.1fms cpu=%.1fms "
        "elements=%llu +%llu -%llu churn=%.3f\n",
        block_id, name.c_str(), stats.blocks_routed,
        stats.last_response_seconds * 1e3,
        stats.last_response_cpu_seconds * 1e3,
        static_cast<unsigned long long>(evo.elements),
        static_cast<unsigned long long>(evo.added),
        static_cast<unsigned long long>(evo.removed), evo.churn);
  }
  return Status::OK();
}

/// Builds the fleet — freshly registered, or restored from a checkpoint
/// when --restore is given (with --wal, the log is replayed before new
/// blocks are fed and stays attached afterwards). Blocks already covered
/// by the restored snapshot / replayed log are skipped, so re-running the
/// same command after a crash continues where the interrupted run stopped.
/// --checkpoint (+ --checkpoint_every N) writes periodic checkpoints and
/// truncates the log after each; --block_delay_ms paces the feed (the
/// crash-injection harness uses this to land its kill mid-stream).
Result<Fleet> BuildAndRunFleet(
    const flags::FlagSet& flags,
    const std::vector<std::shared_ptr<const TransactionBlock>>& blocks) {
  DEMON_ASSIGN_OR_RETURN(
      BlockSelectionSequence bss,
      BlockSelectionSequence::FromString(flags.GetString("bss")));
  const double minsup = flags.GetDouble("minsup");
  const size_t window = static_cast<size_t>(IntOr(flags, "window", 3));
  // Out-of-core TID-list controls: cap resident TID-list bytes per itemset
  // monitor and choose where cold extents spill. 0 / empty defer to the
  // DEMON_TIDLIST_BUDGET_BYTES / DEMON_TIDLIST_SPILL_DIR environment.
  const size_t tidlist_budget =
      static_cast<size_t>(flags.GetInt("tidlist_budget"));
  const std::string tidlist_spill_dir = flags.GetString("tidlist_spill_dir");

  Fleet fleet;
  fleet.engine.num_threads = static_cast<size_t>(flags.GetInt("threads"));
  fleet.engine.defer_offline = flags.GetBool("defer");

  if (flags.Provided("restore")) {
    DEMON_ASSIGN_OR_RETURN(
        fleet.demon,
        DemonMonitor::Restore(flags.GetString("restore"), fleet.engine));
    if (flags.Provided("wal")) {
      DEMON_RETURN_NOT_OK(fleet.demon->ReplayWal(flags.GetString("wal")));
      DEMON_RETURN_NOT_OK(fleet.demon->AttachWal(flags.GetString("wal")));
    }
  } else {
    fleet.demon =
        std::make_unique<DemonMonitor>(InferNumItems(blocks), fleet.engine);
    DemonMonitor& demon = *fleet.demon;
    if (!bss.is_window_relative()) {
      DEMON_ASSIGN_OR_RETURN(
          auto uw,
          demon.AddMonitor({.kind = MonitorKind::kUnrestrictedItemsets,
                            .name = "uw-itemsets",
                            .bss = bss,
                            .minsup = minsup,
                            .tidlist_budget_bytes = tidlist_budget,
                            .tidlist_spill_dir = tidlist_spill_dir}));
      (void)uw;
    }
    DEMON_ASSIGN_OR_RETURN(
        auto mrw, demon.AddMonitor({.kind = MonitorKind::kWindowedItemsets,
                                    .name = "mrw-itemsets",
                                    .bss = bss,
                                    .window = window,
                                    .minsup = minsup,
                                    .tidlist_budget_bytes = tidlist_budget,
                                    .tidlist_spill_dir = tidlist_spill_dir}));
    (void)mrw;
    DEMON_ASSIGN_OR_RETURN(
        auto patterns,
        demon.AddMonitor({.kind = MonitorKind::kPatterns,
                          .name = "patterns",
                          .minsup = minsup,
                          .alpha = flags.GetDouble("alpha")}));
    (void)patterns;
    if (flags.Provided("wal")) {
      DEMON_RETURN_NOT_OK(demon.AttachWal(flags.GetString("wal")));
    }
  }
  DemonMonitor& demon = *fleet.demon;
  // Recover the monitor ids from the registered specs — uniform across
  // the fresh and restored paths.
  for (DemonMonitor::MonitorId id = 0; id < demon.NumMonitors(); ++id) {
    fleet.ids.push_back(id);
    DEMON_ASSIGN_OR_RETURN(const MonitorSpec* spec, demon.SpecOf(id));
    if (spec->kind == MonitorKind::kWindowedItemsets) fleet.mrw = id;
    if (spec->kind == MonitorKind::kPatterns) fleet.patterns = id;
  }

  // Time-series observability: a background scraper samples every metric
  // periodically, plus one pinned scrape per block boundary; --alert
  // policies are evaluated on each sample and print as they fire.
  const long stats_every = flags.GetInt("stats_every");
  if (stats_every > 0 || flags.Provided("timeline_out") || flags.Provided("trace_out") ||
      flags.Provided("alert")) {
    telemetry::ScraperOptions scraper_options;
    scraper_options.registry = demon.telemetry();
    scraper_options.period_seconds =
        flags.GetDouble("scrape_period_ms") * 1e-3;
    fleet.scraper =
        std::make_unique<telemetry::TelemetryScraper>(scraper_options);
    for (const std::string& spec :
         SplitCommas(flags.GetString("alert"))) {
      telemetry::AlertPolicy policy;
      std::string error;
      if (!telemetry::ParseAlertPolicy(spec, &policy, &error)) {
        return Status::InvalidArgument("--alert '" + spec + "': " + error);
      }
      fleet.scraper->AddPolicy(policy, [](const telemetry::AlertEvent& event) {
        std::printf("ALERT %s: %s = %g (threshold %g) at scrape %llu\n",
                    event.policy.c_str(), event.metric.c_str(), event.value,
                    event.threshold,
                    static_cast<unsigned long long>(event.seq));
      });
    }
    fleet.scraper->Start();
  }

  const std::string checkpoint_path = flags.GetString("checkpoint");
  const long checkpoint_every = flags.GetInt("checkpoint_every");
  const long delay_ms = flags.GetInt("block_delay_ms");
  const BlockId already = demon.snapshot().latest_id();
  long fed = 0;
  for (const auto& block : blocks) {
    if (block->info().id <= already) continue;  // covered by restore/replay
    if (delay_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
    }
    demon.AddBlock(*block);
    DEMON_RETURN_NOT_OK(demon.wal_status());
    ++fed;
    // A pinned scrape per block puts every block boundary on the
    // timeline even when blocks absorb faster than the scrape period.
    if (fleet.scraper != nullptr) fleet.scraper->ScrapeNow();
    if (stats_every > 0 && fed % stats_every == 0) {
      DEMON_RETURN_NOT_OK(PrintLiveStats(demon, fleet.ids, block->info().id));
    }
    if (!checkpoint_path.empty() && checkpoint_every > 0 &&
        demon.snapshot().latest_id() % static_cast<BlockId>(checkpoint_every) ==
            0) {
      DEMON_RETURN_NOT_OK(demon.Checkpoint(checkpoint_path));
      if (flags.Provided("wal")) DEMON_RETURN_NOT_OK(demon.ResetWal());
    }
  }
  demon.Quiesce();
  if (fleet.scraper != nullptr) {
    fleet.scraper->Stop();
    // Final post-quiesce scrape: the last sample equals the registry's
    // quiesced totals (what the concurrency test asserts).
    fleet.scraper->ScrapeNow();
  }
  return fleet;
}

/// `checkpoint` subcommand: runs the monitor fleet over --data (optionally
/// continuing from --restore / --wal) and writes one atomic checkpoint of
/// the final state to --out. Checkpoint bytes are deterministic, so the
/// crash-recovery harness diffs them between an interrupted-then-restored
/// run and an uninterrupted one.
Status RunCheckpoint(const flags::FlagSet& flags) {
  if (!flags.Provided("out")) return Status::InvalidArgument("--out is required");
  DEMON_ASSIGN_OR_RETURN(auto blocks, LoadBlocks(flags));
  DEMON_ASSIGN_OR_RETURN(Fleet fleet, BuildAndRunFleet(flags, blocks));
  const std::string out = flags.GetString("out");
  DEMON_RETURN_NOT_OK(fleet.demon->Checkpoint(out));
  std::printf("checkpointed %zu monitor(s), %zu block(s) to %s\n",
              fleet.demon->NumMonitors(), fleet.demon->snapshot().NumBlocks(),
              out.c_str());
  return Status::OK();
}

Status RunMonitor(const flags::FlagSet& flags) {
  // The Figure 11 deployment loop: one evolving database, several
  // heterogeneous monitors, driven by the parallel MaintenanceEngine.
  DEMON_ASSIGN_OR_RETURN(auto blocks, LoadBlocks(flags));
  DEMON_ASSIGN_OR_RETURN(Fleet fleet, BuildAndRunFleet(flags, blocks));
  DemonMonitor& demon = *fleet.demon;
  const auto& ids = fleet.ids;
  const auto mrw = fleet.mrw;
  const auto patterns = fleet.patterns;
  const size_t window = static_cast<size_t>(IntOr(flags, "window", 3));

  std::printf("engine: %zu thread(s), defer_offline=%s, %zu blocks\n",
              fleet.engine.num_threads,
              fleet.engine.defer_offline ? "on" : "off",
              demon.snapshot().NumBlocks());
  std::printf("%-14s | %6s | %7s | %12s | %7s | %11s | %9s | %8s | %5s\n",
              "monitor", "routed", "skipped", "response(ms)", "cpu(ms)",
              "offline(ms)", "total(ms)", "elements", "churn");
  for (const auto id : ids) {
    DEMON_ASSIGN_OR_RETURN(MonitorStats stats, demon.StatsOf(id));
    DEMON_ASSIGN_OR_RETURN(std::string name, demon.NameOf(id));
    std::printf(
        "%-14s | %6zu | %7zu | %12.1f | %7.1f | %11.1f | %9.1f | %8llu "
        "| %5.3f\n",
        name.c_str(), stats.blocks_routed, stats.blocks_skipped,
        stats.response_seconds * 1e3, stats.response_cpu_seconds * 1e3,
        stats.offline_seconds * 1e3, stats.total_seconds() * 1e3,
        static_cast<unsigned long long>(stats.evolution.elements),
        stats.evolution.churn);
  }

  DEMON_ASSIGN_OR_RETURN(const ItemsetModel* model,
                         demon.ItemsetModelOf(mrw));
  std::printf("\nmost-recent-window model (last %zu blocks):\n", window);
  PrintTopItemsets(*model, static_cast<size_t>(IntOr(flags, "top", 10)));

  DEMON_ASSIGN_OR_RETURN(const CompactSequenceMiner* miner,
                         demon.PatternsOf(patterns));
  std::printf("\nmaximal compact sequences (>= 2 blocks):\n");
  for (const auto& sequence : miner->MaximalSequences(2)) {
    std::printf("  {");
    for (size_t i = 0; i < sequence.size(); ++i) {
      std::printf("%s%s", i > 0 ? ", " : "",
                  miner->blocks()[sequence[i]]->info().label.c_str());
    }
    std::printf("}\n");
  }

  if (flags.Provided("timeline_out")) {
    // Merge the scraper's periodic samples with the engine's per-block
    // records into one JSONL stream, ordered by timestamp.
    std::vector<std::pair<uint64_t, std::string>> lines;
    if (fleet.scraper != nullptr) {
      for (const telemetry::TimelineSample& sample : fleet.scraper->Samples()) {
        lines.emplace_back(sample.cumulative.t_ns,
                           telemetry::TimelineJsonl({sample}));
      }
    }
    for (const BlockTimelineRecord& record : demon.TimelineRecords()) {
      lines.emplace_back(record.t_ns, BlockTimelineJsonl({record}));
    }
    std::stable_sort(lines.begin(), lines.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    std::string jsonl;
    for (const auto& [t_ns, line] : lines) jsonl.append(line);
    const std::string path = flags.GetString("timeline_out");
    DEMON_RETURN_NOT_OK(WriteTextFile(path, jsonl));
    std::printf("\nwrote %zu timeline records to %s\n", lines.size(),
                path.c_str());
  }

  if (flags.Provided("trace_out")) {
    const std::string path = flags.GetString("trace_out");
    std::string trace;
    if (fleet.scraper != nullptr) {
      // Spans plus counter tracks ("ph":"C") on one timebase: Perfetto
      // charts resident bytes, page-ins and evolution gauges over time
      // next to the engine's block/response/offline spans.
      demon.Quiesce();
      trace = telemetry::ChromeTraceJson(demon.telemetry()->CollectSpans(),
                                         fleet.scraper->Samples());
    } else {
      trace = demon.ExportTelemetry(telemetry::TelemetryFormat::kChromeTrace);
    }
    DEMON_RETURN_NOT_OK(WriteTextFile(path, trace));
    std::printf("\nwrote Chrome trace to %s (load at ui.perfetto.dev)\n",
                path.c_str());
  }

  if (fleet.scraper != nullptr) {
    const auto alerts = fleet.scraper->Alerts();
    if (!alerts.empty()) {
      std::printf("\n%zu alert(s) fired:\n", alerts.size());
      for (const telemetry::AlertEvent& event : alerts) {
        std::printf("  %s: %s = %g (threshold %g)\n", event.policy.c_str(),
                    event.metric.c_str(), event.value, event.threshold);
      }
    }
  }
  return Status::OK();
}

/// Runs the monitor fleet and dumps the engine's telemetry registry —
/// Prometheus text by default, Chrome trace-event JSON with
/// --format chrome. --out writes to a file instead of stdout.
Status RunTelemetry(const flags::FlagSet& flags) {
  DEMON_ASSIGN_OR_RETURN(auto blocks, LoadBlocks(flags));
  DEMON_ASSIGN_OR_RETURN(Fleet fleet, BuildAndRunFleet(flags, blocks));

  const std::string format = flags.GetString("format");
  telemetry::TelemetryFormat telemetry_format;
  if (format == "prometheus") {
    telemetry_format = telemetry::TelemetryFormat::kPrometheus;
  } else if (format == "chrome" || format == "trace") {
    telemetry_format = telemetry::TelemetryFormat::kChromeTrace;
  } else {
    return Status::InvalidArgument("unknown --format: " + format +
                                   " (want prometheus|chrome)");
  }
  const std::string text = fleet.demon->ExportTelemetry(telemetry_format);
  if (flags.Provided("out")) {
    const std::string path = flags.GetString("out");
    DEMON_RETURN_NOT_OK(WriteTextFile(path, text));
    std::printf("wrote %s telemetry to %s\n", format.c_str(), path.c_str());
  } else {
    std::fwrite(text.data(), 1, text.size(), stdout);
  }
  return Status::OK();
}

Status RunRules(const flags::FlagSet& flags) {
  DEMON_ASSIGN_OR_RETURN(auto blocks, LoadBlocks(flags));
  const double minsup = flags.GetDouble("minsup");
  const double confidence = flags.GetDouble("confidence");
  const ItemsetModel model = Apriori(blocks, minsup, InferNumItems(blocks));
  const auto rules = DeriveRules(model, confidence);
  std::printf("%zu rules at minsup %.3f, confidence %.2f:\n", rules.size(),
              minsup, confidence);
  const size_t top = static_cast<size_t>(IntOr(flags, "top", 20));
  for (size_t i = 0; i < rules.size() && i < top; ++i) {
    std::printf("  %s\n", rules[i].ToString().c_str());
  }
  return Status::OK();
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: demon_cli "
      "<gen|mine|maintain|monitor|checkpoint|patterns|rules|telemetry> "
      "[--flag value]\n"
      "  gen       --out F [--transactions N --items I --patterns P "
      "--len L --plen L --seed S]\n"
      "  mine      --data F1[,F2...] [--minsup 0.01 --top 15]\n"
      "  maintain  --data F1[,F2...] [--minsup 0.01 --strategy "
      "ptscan|ecut|ecut+ --bss all|10110|periodic:7/0]\n"
      "  monitor   --data F1[,F2...] [--minsup 0.01 --window 3 --bss all "
      "--threads N --defer --alpha 0.95 --trace_out trace.json]\n"
      "            [--restore ckpt --wal log --checkpoint ckpt "
      "--checkpoint_every N --block_delay_ms M]\n"
      "            [--tidlist_budget BYTES --tidlist_spill_dir DIR]\n"
      "            [--stats_every N --timeline_out F.jsonl "
      "--scrape_period_ms 50 --alert 'metric>thr[:n][,...]']\n"
      "  checkpoint --data F1[,F2...] --out ckpt "
      "[--restore ckpt --wal log + monitor flags]\n"
      "  telemetry --data F1[,F2...] [--format prometheus|chrome "
      "--out F + monitor flags]\n"
      "  patterns  --data F1[,F2...] [--minsup 0.01 --alpha 0.95 "
      "--window W]\n"
      "  rules     --data F1[,F2...] [--minsup 0.01 --confidence 0.5]\n");
  return 2;
}

flags::FlagSet BuildFlags() {
  flags::FlagSet flags("demon_cli <command>",
                       "Command-line driver over the DEMON library, "
                       "operating on TransactionFile block binaries.");
  flags.DefineString("data", "", "comma-separated TransactionFile inputs");
  flags.DefineString("out", "", "output path (file depends on command)");
  flags.DefineInt("transactions", 10000, "gen: transactions to synthesize");
  flags.DefineInt("items", 1000, "gen: item-universe size");
  flags.DefineInt("patterns", 2000, "gen: maximal pattern count");
  flags.DefineDouble("len", 10.0, "gen: mean transaction length");
  flags.DefineDouble("plen", 4.0, "gen: mean pattern length");
  flags.DefineInt("seed", 42, "gen: generator seed");
  flags.DefineDouble("minsup", 0.01, "minimum support threshold");
  flags.DefineInt("top", 0, "itemsets to print (0 = per-command default)");
  flags.DefineString("bss", "all", "block selection sequence: all|BITS|"
                                   "periodic:P/O");
  flags.DefineString("strategy", "ecut", "maintain: ptscan|ecut|ecut+");
  flags.DefineDouble("alpha", 0.95, "deviation significance level");
  flags.DefineInt("window", 0, "sliding-window width in blocks "
                               "(0 = per-command default)");
  flags.DefineInt("tidlist_budget", 0, "TID-list memory budget in bytes");
  flags.DefineString("tidlist_spill_dir", "",
                     "spill directory for out-of-core TID lists");
  flags.DefineInt("threads", 0, "maintenance threads (0 = inline)");
  flags.DefineBool("defer", false, "defer offline maintenance");
  flags.DefineString("restore", "", "checkpoint to restore before blocks");
  flags.DefineString("wal", "", "write-ahead log path");
  flags.DefineInt("stats_every", 0, "print stats every N blocks");
  flags.DefineString("timeline_out", "", "telemetry timeline JSONL path");
  flags.DefineString("trace_out", "", "Chrome-trace output path");
  flags.DefineString("alert", "", "alert policies 'metric>thr[:n][,...]'");
  flags.DefineDouble("scrape_period_ms", 50.0, "timeline scrape period");
  flags.DefineString("checkpoint", "", "checkpoint output path");
  flags.DefineInt("checkpoint_every", 0, "checkpoint every N blocks");
  flags.DefineInt("block_delay_ms", 0, "sleep between blocks");
  flags.DefineString("format", "prometheus",
                     "telemetry: prometheus|chrome");
  flags.DefineDouble("confidence", 0.5, "rules: minimum confidence");
  return flags;
}

int Main(int argc, char** argv) {
  const std::string command = flags::Positional(argc, argv, 1);
  if (command.empty()) return Usage();
  flags::FlagSet flags = BuildFlags();
  const Status parsed = flags.Parse(argc, argv, /*first=*/2);
  if (flags.help_requested()) {
    std::printf("%s", flags.HelpText().c_str());
    return 0;
  }
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return Usage();
  }
  Status status;
  if (command == "gen") {
    status = RunGen(flags);
  } else if (command == "mine") {
    status = RunMine(flags);
  } else if (command == "maintain") {
    status = RunMaintain(flags);
  } else if (command == "monitor") {
    status = RunMonitor(flags);
  } else if (command == "checkpoint") {
    status = RunCheckpoint(flags);
  } else if (command == "patterns") {
    status = RunPatterns(flags);
  } else if (command == "telemetry") {
    status = RunTelemetry(flags);
  } else if (command == "rules") {
    status = RunRules(flags);
  } else {
    return Usage();
  }
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace demon

int main(int argc, char** argv) { return demon::Main(argc, argv); }
