# Empty dependencies file for prefix_tree_test.
# This may be replaced when dependencies are built.
