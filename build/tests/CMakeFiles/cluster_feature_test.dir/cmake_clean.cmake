file(REMOVE_RECURSE
  "CMakeFiles/cluster_feature_test.dir/cluster_feature_test.cc.o"
  "CMakeFiles/cluster_feature_test.dir/cluster_feature_test.cc.o.d"
  "cluster_feature_test"
  "cluster_feature_test.pdb"
  "cluster_feature_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_feature_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
