file(REMOVE_RECURSE
  "CMakeFiles/fuzz_borders_test.dir/fuzz_borders_test.cc.o"
  "CMakeFiles/fuzz_borders_test.dir/fuzz_borders_test.cc.o.d"
  "fuzz_borders_test"
  "fuzz_borders_test.pdb"
  "fuzz_borders_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_borders_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
