# Empty compiler generated dependencies file for fuzz_borders_test.
# This may be replaced when dependencies are built.
