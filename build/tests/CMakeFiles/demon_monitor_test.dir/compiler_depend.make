# Empty compiler generated dependencies file for demon_monitor_test.
# This may be replaced when dependencies are built.
