file(REMOVE_RECURSE
  "CMakeFiles/demon_monitor_test.dir/demon_monitor_test.cc.o"
  "CMakeFiles/demon_monitor_test.dir/demon_monitor_test.cc.o.d"
  "demon_monitor_test"
  "demon_monitor_test.pdb"
  "demon_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demon_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
