file(REMOVE_RECURSE
  "CMakeFiles/birch_test.dir/birch_test.cc.o"
  "CMakeFiles/birch_test.dir/birch_test.cc.o.d"
  "birch_test"
  "birch_test.pdb"
  "birch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/birch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
