# Empty compiler generated dependencies file for bss_test.
# This may be replaced when dependencies are built.
