file(REMOVE_RECURSE
  "CMakeFiles/bss_test.dir/bss_test.cc.o"
  "CMakeFiles/bss_test.dir/bss_test.cc.o.d"
  "bss_test"
  "bss_test.pdb"
  "bss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
