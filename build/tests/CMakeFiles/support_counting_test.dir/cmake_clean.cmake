file(REMOVE_RECURSE
  "CMakeFiles/support_counting_test.dir/support_counting_test.cc.o"
  "CMakeFiles/support_counting_test.dir/support_counting_test.cc.o.d"
  "support_counting_test"
  "support_counting_test.pdb"
  "support_counting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_counting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
