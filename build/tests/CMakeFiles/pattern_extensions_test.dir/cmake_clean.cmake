file(REMOVE_RECURSE
  "CMakeFiles/pattern_extensions_test.dir/pattern_extensions_test.cc.o"
  "CMakeFiles/pattern_extensions_test.dir/pattern_extensions_test.cc.o.d"
  "pattern_extensions_test"
  "pattern_extensions_test.pdb"
  "pattern_extensions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
