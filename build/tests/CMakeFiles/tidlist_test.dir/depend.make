# Empty dependencies file for tidlist_test.
# This may be replaced when dependencies are built.
