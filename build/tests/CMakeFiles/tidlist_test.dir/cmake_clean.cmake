file(REMOVE_RECURSE
  "CMakeFiles/tidlist_test.dir/tidlist_test.cc.o"
  "CMakeFiles/tidlist_test.dir/tidlist_test.cc.o.d"
  "tidlist_test"
  "tidlist_test.pdb"
  "tidlist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tidlist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
