file(REMOVE_RECURSE
  "CMakeFiles/cf_tree_test.dir/cf_tree_test.cc.o"
  "CMakeFiles/cf_tree_test.dir/cf_tree_test.cc.o.d"
  "cf_tree_test"
  "cf_tree_test.pdb"
  "cf_tree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
