file(REMOVE_RECURSE
  "CMakeFiles/fup_test.dir/fup_test.cc.o"
  "CMakeFiles/fup_test.dir/fup_test.cc.o.d"
  "fup_test"
  "fup_test.pdb"
  "fup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
