# Empty compiler generated dependencies file for fup_test.
# This may be replaced when dependencies are built.
