# Empty dependencies file for disk_counting_test.
# This may be replaced when dependencies are built.
