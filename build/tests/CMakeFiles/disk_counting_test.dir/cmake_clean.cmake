file(REMOVE_RECURSE
  "CMakeFiles/disk_counting_test.dir/disk_counting_test.cc.o"
  "CMakeFiles/disk_counting_test.dir/disk_counting_test.cc.o.d"
  "disk_counting_test"
  "disk_counting_test.pdb"
  "disk_counting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_counting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
