file(REMOVE_RECURSE
  "CMakeFiles/itemset_model_test.dir/itemset_model_test.cc.o"
  "CMakeFiles/itemset_model_test.dir/itemset_model_test.cc.o.d"
  "itemset_model_test"
  "itemset_model_test.pdb"
  "itemset_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itemset_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
