# Empty dependencies file for itemset_model_test.
# This may be replaced when dependencies are built.
