file(REMOVE_RECURSE
  "CMakeFiles/compact_sequences_test.dir/compact_sequences_test.cc.o"
  "CMakeFiles/compact_sequences_test.dir/compact_sequences_test.cc.o.d"
  "compact_sequences_test"
  "compact_sequences_test.pdb"
  "compact_sequences_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compact_sequences_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
