file(REMOVE_RECURSE
  "CMakeFiles/borders_test.dir/borders_test.cc.o"
  "CMakeFiles/borders_test.dir/borders_test.cc.o.d"
  "borders_test"
  "borders_test.pdb"
  "borders_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/borders_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
