# Empty compiler generated dependencies file for borders_test.
# This may be replaced when dependencies are built.
