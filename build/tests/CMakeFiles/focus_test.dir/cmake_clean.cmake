file(REMOVE_RECURSE
  "CMakeFiles/focus_test.dir/focus_test.cc.o"
  "CMakeFiles/focus_test.dir/focus_test.cc.o.d"
  "focus_test"
  "focus_test.pdb"
  "focus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/focus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
