# Empty dependencies file for focus_test.
# This may be replaced when dependencies are built.
