file(REMOVE_RECURSE
  "CMakeFiles/fig2_disk.dir/fig2_disk.cc.o"
  "CMakeFiles/fig2_disk.dir/fig2_disk.cc.o.d"
  "fig2_disk"
  "fig2_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
