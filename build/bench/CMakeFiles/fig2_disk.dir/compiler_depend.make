# Empty compiler generated dependencies file for fig2_disk.
# This may be replaced when dependencies are built.
