file(REMOVE_RECURSE
  "CMakeFiles/dtree_drift.dir/dtree_drift.cc.o"
  "CMakeFiles/dtree_drift.dir/dtree_drift.cc.o.d"
  "dtree_drift"
  "dtree_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtree_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
