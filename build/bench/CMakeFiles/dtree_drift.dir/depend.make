# Empty dependencies file for dtree_drift.
# This may be replaced when dependencies are built.
