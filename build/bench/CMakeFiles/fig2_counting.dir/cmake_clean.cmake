file(REMOVE_RECURSE
  "CMakeFiles/fig2_counting.dir/fig2_counting.cc.o"
  "CMakeFiles/fig2_counting.dir/fig2_counting.cc.o.d"
  "fig2_counting"
  "fig2_counting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
