# Empty dependencies file for fig2_counting.
# This may be replaced when dependencies are built.
