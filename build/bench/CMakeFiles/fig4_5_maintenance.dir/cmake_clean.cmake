file(REMOVE_RECURSE
  "CMakeFiles/fig4_5_maintenance.dir/fig4_5_maintenance.cc.o"
  "CMakeFiles/fig4_5_maintenance.dir/fig4_5_maintenance.cc.o.d"
  "fig4_5_maintenance"
  "fig4_5_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_5_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
