# Empty dependencies file for fig4_5_maintenance.
# This may be replaced when dependencies are built.
