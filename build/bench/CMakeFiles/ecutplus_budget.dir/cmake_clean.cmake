file(REMOVE_RECURSE
  "CMakeFiles/ecutplus_budget.dir/ecutplus_budget.cc.o"
  "CMakeFiles/ecutplus_budget.dir/ecutplus_budget.cc.o.d"
  "ecutplus_budget"
  "ecutplus_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecutplus_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
