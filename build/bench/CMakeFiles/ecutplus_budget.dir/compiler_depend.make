# Empty compiler generated dependencies file for ecutplus_budget.
# This may be replaced when dependencies are built.
