file(REMOVE_RECURSE
  "CMakeFiles/fig6_7_maintenance.dir/fig6_7_maintenance.cc.o"
  "CMakeFiles/fig6_7_maintenance.dir/fig6_7_maintenance.cc.o.d"
  "fig6_7_maintenance"
  "fig6_7_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_7_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
