# Empty compiler generated dependencies file for fig6_7_maintenance.
# This may be replaced when dependencies are built.
