# Empty compiler generated dependencies file for gemm_response.
# This may be replaced when dependencies are built.
