file(REMOVE_RECURSE
  "CMakeFiles/gemm_response.dir/gemm_response.cc.o"
  "CMakeFiles/gemm_response.dir/gemm_response.cc.o.d"
  "gemm_response"
  "gemm_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemm_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
