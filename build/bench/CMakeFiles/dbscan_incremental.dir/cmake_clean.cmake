file(REMOVE_RECURSE
  "CMakeFiles/dbscan_incremental.dir/dbscan_incremental.cc.o"
  "CMakeFiles/dbscan_incremental.dir/dbscan_incremental.cc.o.d"
  "dbscan_incremental"
  "dbscan_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbscan_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
