# Empty dependencies file for dbscan_incremental.
# This may be replaced when dependencies are built.
