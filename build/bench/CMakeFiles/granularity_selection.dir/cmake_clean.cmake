file(REMOVE_RECURSE
  "CMakeFiles/granularity_selection.dir/granularity_selection.cc.o"
  "CMakeFiles/granularity_selection.dir/granularity_selection.cc.o.d"
  "granularity_selection"
  "granularity_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/granularity_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
