# Empty compiler generated dependencies file for granularity_selection.
# This may be replaced when dependencies are built.
