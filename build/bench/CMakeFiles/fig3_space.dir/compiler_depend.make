# Empty compiler generated dependencies file for fig3_space.
# This may be replaced when dependencies are built.
