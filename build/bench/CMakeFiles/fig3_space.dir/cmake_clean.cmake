file(REMOVE_RECURSE
  "CMakeFiles/fig3_space.dir/fig3_space.cc.o"
  "CMakeFiles/fig3_space.dir/fig3_space.cc.o.d"
  "fig3_space"
  "fig3_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
