file(REMOVE_RECURSE
  "CMakeFiles/fig9_patterns.dir/fig9_patterns.cc.o"
  "CMakeFiles/fig9_patterns.dir/fig9_patterns.cc.o.d"
  "fig9_patterns"
  "fig9_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
