# Empty compiler generated dependencies file for fig9_patterns.
# This may be replaced when dependencies are built.
