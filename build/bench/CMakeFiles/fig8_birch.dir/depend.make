# Empty dependencies file for fig8_birch.
# This may be replaced when dependencies are built.
