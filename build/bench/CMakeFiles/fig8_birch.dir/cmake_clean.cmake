file(REMOVE_RECURSE
  "CMakeFiles/fig8_birch.dir/fig8_birch.cc.o"
  "CMakeFiles/fig8_birch.dir/fig8_birch.cc.o.d"
  "fig8_birch"
  "fig8_birch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_birch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
