file(REMOVE_RECURSE
  "CMakeFiles/fup_vs_borders.dir/fup_vs_borders.cc.o"
  "CMakeFiles/fup_vs_borders.dir/fup_vs_borders.cc.o.d"
  "fup_vs_borders"
  "fup_vs_borders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fup_vs_borders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
