# Empty dependencies file for fup_vs_borders.
# This may be replaced when dependencies are built.
