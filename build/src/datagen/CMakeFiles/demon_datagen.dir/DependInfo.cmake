
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/cluster_generator.cc" "src/datagen/CMakeFiles/demon_datagen.dir/cluster_generator.cc.o" "gcc" "src/datagen/CMakeFiles/demon_datagen.dir/cluster_generator.cc.o.d"
  "/root/repo/src/datagen/labeled_generator.cc" "src/datagen/CMakeFiles/demon_datagen.dir/labeled_generator.cc.o" "gcc" "src/datagen/CMakeFiles/demon_datagen.dir/labeled_generator.cc.o.d"
  "/root/repo/src/datagen/quest_generator.cc" "src/datagen/CMakeFiles/demon_datagen.dir/quest_generator.cc.o" "gcc" "src/datagen/CMakeFiles/demon_datagen.dir/quest_generator.cc.o.d"
  "/root/repo/src/datagen/trace_generator.cc" "src/datagen/CMakeFiles/demon_datagen.dir/trace_generator.cc.o" "gcc" "src/datagen/CMakeFiles/demon_datagen.dir/trace_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/demon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/demon_data.dir/DependInfo.cmake"
  "/root/repo/build/src/dtree/CMakeFiles/demon_dtree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
