file(REMOVE_RECURSE
  "CMakeFiles/demon_datagen.dir/cluster_generator.cc.o"
  "CMakeFiles/demon_datagen.dir/cluster_generator.cc.o.d"
  "CMakeFiles/demon_datagen.dir/labeled_generator.cc.o"
  "CMakeFiles/demon_datagen.dir/labeled_generator.cc.o.d"
  "CMakeFiles/demon_datagen.dir/quest_generator.cc.o"
  "CMakeFiles/demon_datagen.dir/quest_generator.cc.o.d"
  "CMakeFiles/demon_datagen.dir/trace_generator.cc.o"
  "CMakeFiles/demon_datagen.dir/trace_generator.cc.o.d"
  "libdemon_datagen.a"
  "libdemon_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demon_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
