# Empty compiler generated dependencies file for demon_datagen.
# This may be replaced when dependencies are built.
