file(REMOVE_RECURSE
  "libdemon_datagen.a"
)
