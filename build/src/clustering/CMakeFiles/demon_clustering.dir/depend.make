# Empty dependencies file for demon_clustering.
# This may be replaced when dependencies are built.
