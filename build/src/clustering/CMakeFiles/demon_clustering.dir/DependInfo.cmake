
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clustering/agglomerative.cc" "src/clustering/CMakeFiles/demon_clustering.dir/agglomerative.cc.o" "gcc" "src/clustering/CMakeFiles/demon_clustering.dir/agglomerative.cc.o.d"
  "/root/repo/src/clustering/birch.cc" "src/clustering/CMakeFiles/demon_clustering.dir/birch.cc.o" "gcc" "src/clustering/CMakeFiles/demon_clustering.dir/birch.cc.o.d"
  "/root/repo/src/clustering/cf_tree.cc" "src/clustering/CMakeFiles/demon_clustering.dir/cf_tree.cc.o" "gcc" "src/clustering/CMakeFiles/demon_clustering.dir/cf_tree.cc.o.d"
  "/root/repo/src/clustering/cluster_model.cc" "src/clustering/CMakeFiles/demon_clustering.dir/cluster_model.cc.o" "gcc" "src/clustering/CMakeFiles/demon_clustering.dir/cluster_model.cc.o.d"
  "/root/repo/src/clustering/dbscan.cc" "src/clustering/CMakeFiles/demon_clustering.dir/dbscan.cc.o" "gcc" "src/clustering/CMakeFiles/demon_clustering.dir/dbscan.cc.o.d"
  "/root/repo/src/clustering/kmeans.cc" "src/clustering/CMakeFiles/demon_clustering.dir/kmeans.cc.o" "gcc" "src/clustering/CMakeFiles/demon_clustering.dir/kmeans.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/demon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/demon_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
