file(REMOVE_RECURSE
  "libdemon_clustering.a"
)
