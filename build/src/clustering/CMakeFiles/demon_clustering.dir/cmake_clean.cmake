file(REMOVE_RECURSE
  "CMakeFiles/demon_clustering.dir/agglomerative.cc.o"
  "CMakeFiles/demon_clustering.dir/agglomerative.cc.o.d"
  "CMakeFiles/demon_clustering.dir/birch.cc.o"
  "CMakeFiles/demon_clustering.dir/birch.cc.o.d"
  "CMakeFiles/demon_clustering.dir/cf_tree.cc.o"
  "CMakeFiles/demon_clustering.dir/cf_tree.cc.o.d"
  "CMakeFiles/demon_clustering.dir/cluster_model.cc.o"
  "CMakeFiles/demon_clustering.dir/cluster_model.cc.o.d"
  "CMakeFiles/demon_clustering.dir/dbscan.cc.o"
  "CMakeFiles/demon_clustering.dir/dbscan.cc.o.d"
  "CMakeFiles/demon_clustering.dir/kmeans.cc.o"
  "CMakeFiles/demon_clustering.dir/kmeans.cc.o.d"
  "libdemon_clustering.a"
  "libdemon_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demon_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
