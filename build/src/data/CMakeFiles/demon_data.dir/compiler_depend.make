# Empty compiler generated dependencies file for demon_data.
# This may be replaced when dependencies are built.
