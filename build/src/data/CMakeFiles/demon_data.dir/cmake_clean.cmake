file(REMOVE_RECURSE
  "CMakeFiles/demon_data.dir/transaction_file.cc.o"
  "CMakeFiles/demon_data.dir/transaction_file.cc.o.d"
  "libdemon_data.a"
  "libdemon_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demon_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
