file(REMOVE_RECURSE
  "libdemon_data.a"
)
