file(REMOVE_RECURSE
  "CMakeFiles/demon_tidlist.dir/tidlist.cc.o"
  "CMakeFiles/demon_tidlist.dir/tidlist.cc.o.d"
  "CMakeFiles/demon_tidlist.dir/tidlist_file.cc.o"
  "CMakeFiles/demon_tidlist.dir/tidlist_file.cc.o.d"
  "CMakeFiles/demon_tidlist.dir/tidlist_store.cc.o"
  "CMakeFiles/demon_tidlist.dir/tidlist_store.cc.o.d"
  "libdemon_tidlist.a"
  "libdemon_tidlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demon_tidlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
