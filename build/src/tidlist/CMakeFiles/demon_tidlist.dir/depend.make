# Empty dependencies file for demon_tidlist.
# This may be replaced when dependencies are built.
