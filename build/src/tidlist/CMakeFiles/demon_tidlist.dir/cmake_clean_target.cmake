file(REMOVE_RECURSE
  "libdemon_tidlist.a"
)
