# Empty compiler generated dependencies file for demon_common.
# This may be replaced when dependencies are built.
