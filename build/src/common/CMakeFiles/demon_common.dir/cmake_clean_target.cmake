file(REMOVE_RECURSE
  "libdemon_common.a"
)
