file(REMOVE_RECURSE
  "CMakeFiles/demon_common.dir/random.cc.o"
  "CMakeFiles/demon_common.dir/random.cc.o.d"
  "CMakeFiles/demon_common.dir/stats.cc.o"
  "CMakeFiles/demon_common.dir/stats.cc.o.d"
  "CMakeFiles/demon_common.dir/status.cc.o"
  "CMakeFiles/demon_common.dir/status.cc.o.d"
  "libdemon_common.a"
  "libdemon_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demon_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
