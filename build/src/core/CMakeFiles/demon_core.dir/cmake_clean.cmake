file(REMOVE_RECURSE
  "CMakeFiles/demon_core.dir/block_ops.cc.o"
  "CMakeFiles/demon_core.dir/block_ops.cc.o.d"
  "CMakeFiles/demon_core.dir/bss.cc.o"
  "CMakeFiles/demon_core.dir/bss.cc.o.d"
  "CMakeFiles/demon_core.dir/demon_monitor.cc.o"
  "CMakeFiles/demon_core.dir/demon_monitor.cc.o.d"
  "libdemon_core.a"
  "libdemon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
