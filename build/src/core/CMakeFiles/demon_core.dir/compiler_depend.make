# Empty compiler generated dependencies file for demon_core.
# This may be replaced when dependencies are built.
