file(REMOVE_RECURSE
  "libdemon_core.a"
)
