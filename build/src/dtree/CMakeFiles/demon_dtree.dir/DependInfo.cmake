
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dtree/decision_tree.cc" "src/dtree/CMakeFiles/demon_dtree.dir/decision_tree.cc.o" "gcc" "src/dtree/CMakeFiles/demon_dtree.dir/decision_tree.cc.o.d"
  "/root/repo/src/dtree/dtree_maintainer.cc" "src/dtree/CMakeFiles/demon_dtree.dir/dtree_maintainer.cc.o" "gcc" "src/dtree/CMakeFiles/demon_dtree.dir/dtree_maintainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/demon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/demon_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
