file(REMOVE_RECURSE
  "libdemon_dtree.a"
)
