file(REMOVE_RECURSE
  "CMakeFiles/demon_dtree.dir/decision_tree.cc.o"
  "CMakeFiles/demon_dtree.dir/decision_tree.cc.o.d"
  "CMakeFiles/demon_dtree.dir/dtree_maintainer.cc.o"
  "CMakeFiles/demon_dtree.dir/dtree_maintainer.cc.o.d"
  "libdemon_dtree.a"
  "libdemon_dtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demon_dtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
