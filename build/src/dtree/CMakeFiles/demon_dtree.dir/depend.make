# Empty dependencies file for demon_dtree.
# This may be replaced when dependencies are built.
