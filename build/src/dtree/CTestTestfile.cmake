# CMake generated Testfile for 
# Source directory: /root/repo/src/dtree
# Build directory: /root/repo/build/src/dtree
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
