file(REMOVE_RECURSE
  "libdemon_deviation.a"
)
