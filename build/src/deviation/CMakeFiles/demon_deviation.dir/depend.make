# Empty dependencies file for demon_deviation.
# This may be replaced when dependencies are built.
