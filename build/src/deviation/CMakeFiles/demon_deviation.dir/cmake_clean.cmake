file(REMOVE_RECURSE
  "CMakeFiles/demon_deviation.dir/focus.cc.o"
  "CMakeFiles/demon_deviation.dir/focus.cc.o.d"
  "CMakeFiles/demon_deviation.dir/focus_dtree.cc.o"
  "CMakeFiles/demon_deviation.dir/focus_dtree.cc.o.d"
  "libdemon_deviation.a"
  "libdemon_deviation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demon_deviation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
