file(REMOVE_RECURSE
  "CMakeFiles/demon_patterns.dir/compact_sequences.cc.o"
  "CMakeFiles/demon_patterns.dir/compact_sequences.cc.o.d"
  "CMakeFiles/demon_patterns.dir/cyclic.cc.o"
  "CMakeFiles/demon_patterns.dir/cyclic.cc.o.d"
  "CMakeFiles/demon_patterns.dir/granularity.cc.o"
  "CMakeFiles/demon_patterns.dir/granularity.cc.o.d"
  "libdemon_patterns.a"
  "libdemon_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demon_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
