# Empty compiler generated dependencies file for demon_patterns.
# This may be replaced when dependencies are built.
