file(REMOVE_RECURSE
  "libdemon_patterns.a"
)
