# Empty dependencies file for demon_itemsets.
# This may be replaced when dependencies are built.
