file(REMOVE_RECURSE
  "libdemon_itemsets.a"
)
