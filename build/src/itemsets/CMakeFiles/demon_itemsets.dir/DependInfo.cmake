
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/itemsets/apriori.cc" "src/itemsets/CMakeFiles/demon_itemsets.dir/apriori.cc.o" "gcc" "src/itemsets/CMakeFiles/demon_itemsets.dir/apriori.cc.o.d"
  "/root/repo/src/itemsets/association_rules.cc" "src/itemsets/CMakeFiles/demon_itemsets.dir/association_rules.cc.o" "gcc" "src/itemsets/CMakeFiles/demon_itemsets.dir/association_rules.cc.o.d"
  "/root/repo/src/itemsets/borders.cc" "src/itemsets/CMakeFiles/demon_itemsets.dir/borders.cc.o" "gcc" "src/itemsets/CMakeFiles/demon_itemsets.dir/borders.cc.o.d"
  "/root/repo/src/itemsets/candidate_generation.cc" "src/itemsets/CMakeFiles/demon_itemsets.dir/candidate_generation.cc.o" "gcc" "src/itemsets/CMakeFiles/demon_itemsets.dir/candidate_generation.cc.o.d"
  "/root/repo/src/itemsets/disk_counting.cc" "src/itemsets/CMakeFiles/demon_itemsets.dir/disk_counting.cc.o" "gcc" "src/itemsets/CMakeFiles/demon_itemsets.dir/disk_counting.cc.o.d"
  "/root/repo/src/itemsets/fup.cc" "src/itemsets/CMakeFiles/demon_itemsets.dir/fup.cc.o" "gcc" "src/itemsets/CMakeFiles/demon_itemsets.dir/fup.cc.o.d"
  "/root/repo/src/itemsets/hash_tree.cc" "src/itemsets/CMakeFiles/demon_itemsets.dir/hash_tree.cc.o" "gcc" "src/itemsets/CMakeFiles/demon_itemsets.dir/hash_tree.cc.o.d"
  "/root/repo/src/itemsets/itemset_model.cc" "src/itemsets/CMakeFiles/demon_itemsets.dir/itemset_model.cc.o" "gcc" "src/itemsets/CMakeFiles/demon_itemsets.dir/itemset_model.cc.o.d"
  "/root/repo/src/itemsets/model_io.cc" "src/itemsets/CMakeFiles/demon_itemsets.dir/model_io.cc.o" "gcc" "src/itemsets/CMakeFiles/demon_itemsets.dir/model_io.cc.o.d"
  "/root/repo/src/itemsets/prefix_tree.cc" "src/itemsets/CMakeFiles/demon_itemsets.dir/prefix_tree.cc.o" "gcc" "src/itemsets/CMakeFiles/demon_itemsets.dir/prefix_tree.cc.o.d"
  "/root/repo/src/itemsets/support_counting.cc" "src/itemsets/CMakeFiles/demon_itemsets.dir/support_counting.cc.o" "gcc" "src/itemsets/CMakeFiles/demon_itemsets.dir/support_counting.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/demon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/demon_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tidlist/CMakeFiles/demon_tidlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
