file(REMOVE_RECURSE
  "CMakeFiles/demon_itemsets.dir/apriori.cc.o"
  "CMakeFiles/demon_itemsets.dir/apriori.cc.o.d"
  "CMakeFiles/demon_itemsets.dir/association_rules.cc.o"
  "CMakeFiles/demon_itemsets.dir/association_rules.cc.o.d"
  "CMakeFiles/demon_itemsets.dir/borders.cc.o"
  "CMakeFiles/demon_itemsets.dir/borders.cc.o.d"
  "CMakeFiles/demon_itemsets.dir/candidate_generation.cc.o"
  "CMakeFiles/demon_itemsets.dir/candidate_generation.cc.o.d"
  "CMakeFiles/demon_itemsets.dir/disk_counting.cc.o"
  "CMakeFiles/demon_itemsets.dir/disk_counting.cc.o.d"
  "CMakeFiles/demon_itemsets.dir/fup.cc.o"
  "CMakeFiles/demon_itemsets.dir/fup.cc.o.d"
  "CMakeFiles/demon_itemsets.dir/hash_tree.cc.o"
  "CMakeFiles/demon_itemsets.dir/hash_tree.cc.o.d"
  "CMakeFiles/demon_itemsets.dir/itemset_model.cc.o"
  "CMakeFiles/demon_itemsets.dir/itemset_model.cc.o.d"
  "CMakeFiles/demon_itemsets.dir/model_io.cc.o"
  "CMakeFiles/demon_itemsets.dir/model_io.cc.o.d"
  "CMakeFiles/demon_itemsets.dir/prefix_tree.cc.o"
  "CMakeFiles/demon_itemsets.dir/prefix_tree.cc.o.d"
  "CMakeFiles/demon_itemsets.dir/support_counting.cc.o"
  "CMakeFiles/demon_itemsets.dir/support_counting.cc.o.d"
  "libdemon_itemsets.a"
  "libdemon_itemsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demon_itemsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
