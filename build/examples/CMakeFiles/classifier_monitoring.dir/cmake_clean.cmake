file(REMOVE_RECURSE
  "CMakeFiles/classifier_monitoring.dir/classifier_monitoring.cpp.o"
  "CMakeFiles/classifier_monitoring.dir/classifier_monitoring.cpp.o.d"
  "classifier_monitoring"
  "classifier_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classifier_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
