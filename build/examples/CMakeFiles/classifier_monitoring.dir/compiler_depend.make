# Empty compiler generated dependencies file for classifier_monitoring.
# This may be replaced when dependencies are built.
