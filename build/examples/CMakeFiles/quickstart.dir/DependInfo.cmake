
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/demon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/patterns/CMakeFiles/demon_patterns.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/demon_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/deviation/CMakeFiles/demon_deviation.dir/DependInfo.cmake"
  "/root/repo/build/src/itemsets/CMakeFiles/demon_itemsets.dir/DependInfo.cmake"
  "/root/repo/build/src/tidlist/CMakeFiles/demon_tidlist.dir/DependInfo.cmake"
  "/root/repo/build/src/clustering/CMakeFiles/demon_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/dtree/CMakeFiles/demon_dtree.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/demon_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/demon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
