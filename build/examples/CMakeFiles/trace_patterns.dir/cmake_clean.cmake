file(REMOVE_RECURSE
  "CMakeFiles/trace_patterns.dir/trace_patterns.cpp.o"
  "CMakeFiles/trace_patterns.dir/trace_patterns.cpp.o.d"
  "trace_patterns"
  "trace_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
