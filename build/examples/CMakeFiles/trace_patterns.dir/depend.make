# Empty dependencies file for trace_patterns.
# This may be replaced when dependencies are built.
