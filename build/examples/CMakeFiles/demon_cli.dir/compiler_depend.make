# Empty compiler generated dependencies file for demon_cli.
# This may be replaced when dependencies are built.
