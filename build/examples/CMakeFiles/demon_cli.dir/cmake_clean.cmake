file(REMOVE_RECURSE
  "CMakeFiles/demon_cli.dir/demon_cli.cpp.o"
  "CMakeFiles/demon_cli.dir/demon_cli.cpp.o.d"
  "demon_cli"
  "demon_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demon_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
