# Empty compiler generated dependencies file for retail_monitoring.
# This may be replaced when dependencies are built.
