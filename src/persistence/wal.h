#ifndef DEMON_PERSISTENCE_WAL_H_
#define DEMON_PERSISTENCE_WAL_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "data/block.h"
#include "dtree/labeled_block.h"
#include "persistence/block_codec.h"

namespace demon::persistence {

/// \brief Append-only block-arrival log. Every block fed to a monitored
/// database is appended (and flushed) here *after* it is assigned its id,
/// so that after a crash the blocks that arrived since the last checkpoint
/// can be replayed in arrival order and the maintained models converge to
/// the exact state of an uninterrupted run.
///
/// Layout: a `FileHeader` (format `kWriteAheadLog`) followed by records
///   [u8 payload kind][u64 payload bytes][payload][u64 FNV-1a checksum]
/// A record is durable iff it is complete and its checksum matches. A
/// truncated record at the tail is the signature of a crash mid-append:
/// `Open` silently drops it (the arrival was never acknowledged), while a
/// complete record with a bad checksum is genuine corruption and surfaces
/// as `DataLoss`.
class WriteAheadLog {
 public:
  /// Callbacks receiving replayed blocks in arrival order. Each returns a
  /// Status so the caller can abort replay on its own errors.
  struct Replayer {
    std::function<Status(std::shared_ptr<const TransactionBlock>)>
        transactions;
    std::function<Status(std::shared_ptr<const PointBlock>)> points;
    std::function<Status(std::shared_ptr<const LabeledBlock>)> labeled;
  };

  ~WriteAheadLog();
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Opens `path` for appending, creating it (with a fresh header) when
  /// missing or empty. An existing log is scanned: durable records are
  /// counted, a torn tail record is truncated away, and corruption returns
  /// `DataLoss` / wrong-format input returns `InvalidArgument`.
  [[nodiscard]] static Result<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& path);

  /// Appends one block arrival and flushes it to the OS. The block must
  /// already carry its assigned id.
  [[nodiscard]] Status Append(const TransactionBlock& block);
  [[nodiscard]] Status Append(const PointBlock& block);
  [[nodiscard]] Status Append(const LabeledBlock& block);

  /// Replays every durable record of the log at `path` in order. A torn
  /// tail record is skipped (crash signature); corrupt durable records
  /// yield `DataLoss`.
  [[nodiscard]] static Status Replay(const std::string& path,
                                     const Replayer& replayer);

  /// Discards all records, leaving an empty log (used when rotating the
  /// log after a checkpoint).
  [[nodiscard]] Status Reset();

  /// Durable records currently in the log (scanned at Open, bumped on
  /// Append).
  size_t num_records() const { return num_records_; }

  const std::string& path() const { return path_; }

 private:
  WriteAheadLog(std::string path, std::FILE* file, size_t num_records)
      : path_(std::move(path)), file_(file), num_records_(num_records) {}

  [[nodiscard]] Status AppendRecord(uint8_t kind, const Writer& payload);

  std::string path_;
  std::FILE* file_ = nullptr;
  size_t num_records_ = 0;
};

}  // namespace demon::persistence

#endif  // DEMON_PERSISTENCE_WAL_H_
