#ifndef DEMON_PERSISTENCE_SERIALIZER_H_
#define DEMON_PERSISTENCE_SERIALIZER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace demon::persistence {

struct BlockSource;

/// \brief Append-only binary encoder backing every DEMON on-disk payload.
///
/// Writes into a growable in-memory buffer, so encoding itself cannot fail;
/// file-level concerns (headers, atomic rename, fsync) live with the caller.
/// All integers are fixed-width little-endian on every supported target;
/// doubles are serialized as their IEEE-754 bit patterns so a round trip is
/// bit-exact — the property the restore-equivalence tests depend on.
class Writer {
 public:
  void WriteU8(uint8_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteU32(uint32_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  /// IEEE-754 bit pattern; exact round trip (no decimal formatting).
  void WriteDouble(double v) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    WriteU64(bits);
  }

  /// Length-prefixed byte string.
  void WriteString(const std::string& s) {
    WriteU64(s.size());
    AppendRaw(s.data(), s.size());
  }

  /// Length-prefixed array of raw little-endian u32 values.
  void WriteU32Vector(const std::vector<uint32_t>& v) {
    WriteU64(v.size());
    AppendRaw(v.data(), v.size() * sizeof(uint32_t));
  }

  /// Length-prefixed array of IEEE-754 double bit patterns.
  void WriteDoubleVector(const std::vector<double>& v) {
    WriteU64(v.size());
    AppendRaw(v.data(), v.size() * sizeof(double));
  }

  void AppendRaw(const void* data, size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }

  const std::string& buffer() const { return buffer_; }
  size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// \brief Bounds-checked decoder over a byte span, the dual of `Writer`.
///
/// Errors latch: the first out-of-bounds or malformed read records a
/// `DataLoss` status and every subsequent read returns a zero value, so
/// decoding code reads straight through and checks `status()` once at the
/// end — corrupt input can never index out of bounds or over-allocate
/// (vector lengths are validated against the remaining byte count before
/// any resize).
class Reader {
 public:
  Reader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}

  explicit Reader(const std::string& buffer)
      : Reader(buffer.data(), buffer.size()) {}

  uint8_t ReadU8() { return ReadPod<uint8_t>(); }
  uint32_t ReadU32() { return ReadPod<uint32_t>(); }
  uint64_t ReadU64() { return ReadPod<uint64_t>(); }
  int64_t ReadI64() { return ReadPod<int64_t>(); }

  bool ReadBool() {
    const uint8_t v = ReadU8();
    if (v > 1) Fail("boolean field holds " + std::to_string(v));
    return v == 1;
  }

  double ReadDouble() {
    const uint64_t bits = ReadU64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string ReadString() {
    const size_t n = ReadLength(1);
    std::string s;
    if (!ok()) return s;
    s.assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  std::vector<uint32_t> ReadU32Vector() {
    return ReadPodVector<uint32_t>();
  }

  std::vector<double> ReadDoubleVector() {
    std::vector<double> out;
    const size_t n = ReadLength(sizeof(double));
    if (!ok()) return out;
    out.resize(n);
    std::memcpy(out.data(), data_ + pos_, n * sizeof(double));
    pos_ += n * sizeof(double);
    return out;
  }

  /// Reads a u64 element count and validates that `count * element_bytes`
  /// fits in the remaining input (the resize guard for corrupt lengths).
  size_t ReadLength(size_t element_bytes) {
    const uint64_t n = ReadU64();
    if (!ok()) return 0;
    if (element_bytes != 0 && n > remaining() / element_bytes) {
      Fail("length " + std::to_string(n) + " exceeds remaining input");
      return 0;
    }
    return static_cast<size_t>(n);
  }

  /// Splits off a child reader over the next `size` bytes and advances past
  /// them; used to frame per-monitor state so a buggy or corrupt section
  /// cannot read into its neighbor.
  Reader Sub(size_t size) {
    if (size > remaining()) {
      Fail("framed section of " + std::to_string(size) +
           " bytes exceeds remaining input");
      return Reader(data_ + pos_, 0);
    }
    Reader sub(data_ + pos_, size);
    sub.block_source_ = block_source_;
    pos_ += size;
    return sub;
  }

  /// Latches the first error as `DataLoss`; later reads return zeros.
  void Fail(const std::string& msg) {
    if (status_.ok()) status_ = Status::DataLoss(msg);
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

  /// Resolver for shared block data (set by the checkpoint loader); null
  /// when decoding formats that carry no block references.
  const BlockSource* block_source() const { return block_source_; }
  void set_block_source(const BlockSource* source) { block_source_ = source; }

 private:
  template <typename T>
  T ReadPod() {
    if (!ok()) return T{};
    if (remaining() < sizeof(T)) {
      Fail("input truncated");
      return T{};
    }
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  template <typename T>
  std::vector<T> ReadPodVector() {
    std::vector<T> out;
    const size_t n = ReadLength(sizeof(T));
    if (!ok()) return out;
    out.resize(n);
    std::memcpy(out.data(), data_ + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return out;
  }

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  size_t pos_ = 0;
  Status status_;
  const BlockSource* block_source_ = nullptr;
};

}  // namespace demon::persistence

#endif  // DEMON_PERSISTENCE_SERIALIZER_H_
