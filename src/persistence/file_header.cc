#include "persistence/file_header.h"

#include <cstdio>

namespace demon::persistence {

namespace {

std::string DescribeFormat(uint32_t id) {
  switch (static_cast<FormatId>(id)) {
    case FormatId::kTransactionFile:
    case FormatId::kTidListBlock:
    case FormatId::kTidListIndexed:
    case FormatId::kItemsetModel:
    case FormatId::kCheckpoint:
    case FormatId::kWriteAheadLog:
    case FormatId::kWireRequest:
    case FormatId::kWireResponse:
      return FormatIdToString(static_cast<FormatId>(id));
  }
  return "format#" + std::to_string(id);
}

/// Best-effort cleanup of a .tmp file on the failure paths: the write
/// already failed, so an unlink failure adds nothing actionable.
void DiscardTempFile(const std::string& path) {
  if (std::remove(path.c_str()) != 0) {
    // Nothing to do — see above.
  }
}

Status ValidateHeader(const FileHeader& header, FormatId expected,
                      uint32_t max_version, const std::string& context) {
  if (header.magic != kMagic) {
    return Status::InvalidArgument(context + ": not a DEMON file (bad magic)");
  }
  if (header.format_id != static_cast<uint32_t>(expected)) {
    return Status::InvalidArgument(
        context + ": expected a " + FormatIdToString(expected) +
        " file, found " + DescribeFormat(header.format_id));
  }
  if (header.version == 0 || header.version > max_version) {
    return Status::InvalidArgument(
        context + ": " + FormatIdToString(expected) + " version " +
        std::to_string(header.version) + " unsupported (reader handles 1.." +
        std::to_string(max_version) + ")");
  }
  return Status::OK();
}

}  // namespace

const char* FormatIdToString(FormatId id) {
  switch (id) {
    case FormatId::kTransactionFile:
      return "transaction-file";
    case FormatId::kTidListBlock:
      return "tidlist-block";
    case FormatId::kTidListIndexed:
      return "tidlist-indexed";
    case FormatId::kItemsetModel:
      return "itemset-model";
    case FormatId::kCheckpoint:
      return "checkpoint";
    case FormatId::kWriteAheadLog:
      return "write-ahead-log";
    case FormatId::kWireRequest:
      return "wire-request";
    case FormatId::kWireResponse:
      return "wire-response";
  }
  return "unknown";
}

Status FileHeader::WriteTo(std::FILE* f) const {
  Writer w;
  AppendTo(w);
  if (std::fwrite(w.buffer().data(), 1, w.size(), f) != w.size()) {
    return Status::IoError("short write of file header");
  }
  return Status::OK();
}

Result<FileHeader> FileHeader::ReadFrom(std::FILE* f, FormatId expected,
                                        uint32_t max_version,
                                        const std::string& context) {
  char bytes[kBytes];
  if (std::fread(bytes, 1, kBytes, f) != kBytes) {
    return Status::DataLoss(context + ": file too short for a DEMON header");
  }
  Reader r(bytes, kBytes);
  FileHeader header;
  header.magic = r.ReadU64();
  header.format_id = r.ReadU32();
  header.version = r.ReadU32();
  header.flags = r.ReadU64();
  DEMON_RETURN_NOT_OK(ValidateHeader(header, expected, max_version, context));
  return header;
}

void FileHeader::AppendTo(Writer& w) const {
  w.WriteU64(magic);
  w.WriteU32(format_id);
  w.WriteU32(version);
  w.WriteU64(flags);
}

Result<FileHeader> FileHeader::Consume(Reader& r, FormatId expected,
                                       uint32_t max_version,
                                       const std::string& context) {
  if (r.remaining() < kBytes) {
    return Status::DataLoss(context + ": input too short for a DEMON header");
  }
  FileHeader header;
  header.magic = r.ReadU64();
  header.format_id = r.ReadU32();
  header.version = r.ReadU32();
  header.flags = r.ReadU64();
  DEMON_RETURN_NOT_OK(ValidateHeader(header, expected, max_version, context));
  return header;
}

Status WritePayloadFile(const std::string& path, FormatId format,
                        uint32_t version, const Writer& payload) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open for write: " + tmp);
  FileHeader header;
  header.format_id = static_cast<uint32_t>(format);
  header.version = version;
  Status status = header.WriteTo(f);
  if (status.ok() && !payload.buffer().empty() &&
      std::fwrite(payload.buffer().data(), 1, payload.size(), f) !=
          payload.size()) {
    status = Status::IoError("short write: " + tmp);
  }
  if (std::fflush(f) != 0 && status.ok()) {
    status = Status::IoError("flush failed: " + tmp);
  }
  std::fclose(f);
  if (!status.ok()) {
    DiscardTempFile(tmp);
    return status;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    DiscardTempFile(tmp);
    return Status::IoError("cannot rename " + tmp + " over " + path);
  }
  return Status::OK();
}

Result<std::string> ReadPayloadFile(const std::string& path, FormatId format,
                                    uint32_t max_version,
                                    uint32_t* version_out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);
  auto header = FileHeader::ReadFrom(f, format, max_version, path);
  if (!header.ok()) {
    std::fclose(f);
    return header.status();
  }
  if (version_out != nullptr) *version_out = header.value().version;
  std::string payload;
  char chunk[1 << 16];
  size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    payload.append(chunk, got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::IoError("read failed: " + path);
  return payload;
}

}  // namespace demon::persistence
