#include "persistence/wal.h"

#include <sys/stat.h>
#include <unistd.h>

#include <utility>
#include <vector>

#include "persistence/file_header.h"

namespace demon::persistence {

namespace {

constexpr uint32_t kWalVersion = 1;

enum class RecordKind : uint8_t {
  kTransactions = 1,
  kPoints = 2,
  kLabeled = 3,
};

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

bool ReadExact(std::FILE* f, void* out, size_t size) {
  return std::fread(out, 1, size, f) == size;
}

/// Scans records from the current position (just past the header) to the
/// end of the log. Durable records are handed to `on_record` (may be null);
/// a torn tail is *not* an error — scanning stops and `end_of_valid` points
/// at the end of the last durable record.
Status ScanRecords(
    std::FILE* f, const std::string& path,
    const std::function<Status(RecordKind, const std::string&)>& on_record,
    long* end_of_valid, size_t* num_records) {
  *num_records = 0;
  *end_of_valid = std::ftell(f);
  std::fseek(f, 0, SEEK_END);
  const long file_size = std::ftell(f);
  std::fseek(f, *end_of_valid, SEEK_SET);
  for (;;) {
    uint8_t kind = 0;
    uint64_t payload_bytes = 0;
    if (!ReadExact(f, &kind, sizeof(kind)) ||
        !ReadExact(f, &payload_bytes, sizeof(payload_bytes))) {
      return Status::OK();  // clean EOF or torn length prefix
    }
    if (kind < static_cast<uint8_t>(RecordKind::kTransactions) ||
        kind > static_cast<uint8_t>(RecordKind::kLabeled)) {
      return Status::DataLoss(path + ": WAL record with unknown payload kind " +
                              std::to_string(kind));
    }
    // A length pointing past EOF is either a torn length field or garbage;
    // bounding it here also keeps corrupt input from forcing a huge
    // allocation below.
    const uint64_t bytes_left =
        static_cast<uint64_t>(file_size - std::ftell(f));
    if (payload_bytes + sizeof(uint64_t) > bytes_left) {
      return Status::OK();  // torn tail record
    }
    std::string payload(payload_bytes, '\0');
    uint64_t checksum = 0;
    if (!ReadExact(f, payload.data(), payload.size()) ||
        !ReadExact(f, &checksum, sizeof(checksum))) {
      return Status::OK();  // torn tail record: the append never completed
    }
    if (checksum != Fnv1a(payload)) {
      return Status::DataLoss(path + ": WAL record " +
                              std::to_string(*num_records) +
                              " fails its checksum");
    }
    if (on_record != nullptr) {
      DEMON_RETURN_NOT_OK(
          on_record(static_cast<RecordKind>(kind), payload));
    }
    ++*num_records;
    *end_of_valid = std::ftell(f);
  }
}

}  // namespace

WriteAheadLog::~WriteAheadLog() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) {
    // Create a fresh log with just a header.
    f = std::fopen(path.c_str(), "w+b");
    if (f == nullptr) return Status::IoError("cannot create WAL: " + path);
  }
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);

  size_t num_records = 0;
  if (size == 0) {
    FileHeader header;
    header.format_id = static_cast<uint32_t>(FormatId::kWriteAheadLog);
    header.version = kWalVersion;
    Status status = header.WriteTo(f);
    if (status.ok() && std::fflush(f) != 0) {
      status = Status::IoError("flush failed: " + path);
    }
    if (!status.ok()) {
      std::fclose(f);
      return status;
    }
  } else {
    auto header = FileHeader::ReadFrom(f, FormatId::kWriteAheadLog,
                                       kWalVersion, path);
    if (!header.ok()) {
      std::fclose(f);
      return header.status();
    }
    long end_of_valid = 0;
    Status status =
        ScanRecords(f, path, nullptr, &end_of_valid, &num_records);
    if (!status.ok()) {
      std::fclose(f);
      return status;
    }
    if (end_of_valid < size) {
      // Drop the torn tail left by a crash mid-append.
      if (ftruncate(fileno(f), end_of_valid) != 0) {
        std::fclose(f);
        return Status::IoError("cannot truncate torn WAL tail: " + path);
      }
    }
    std::fseek(f, end_of_valid, SEEK_SET);
  }
  return std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(path, f, num_records));
}

Status WriteAheadLog::AppendRecord(uint8_t kind, const Writer& payload) {
  const uint64_t payload_bytes = payload.size();
  const uint64_t checksum = Fnv1a(payload.buffer());
  bool ok = std::fwrite(&kind, sizeof(kind), 1, file_) == 1 &&
            std::fwrite(&payload_bytes, sizeof(payload_bytes), 1, file_) == 1;
  if (ok && payload_bytes > 0) {
    ok = std::fwrite(payload.buffer().data(), 1, payload.size(), file_) ==
         payload.size();
  }
  ok = ok && std::fwrite(&checksum, sizeof(checksum), 1, file_) == 1 &&
       std::fflush(file_) == 0;
  if (!ok) return Status::IoError("WAL append failed: " + path_);
  ++num_records_;
  return Status::OK();
}

Status WriteAheadLog::Append(const TransactionBlock& block) {
  Writer payload;
  WriteBlock(payload, block);
  return AppendRecord(static_cast<uint8_t>(RecordKind::kTransactions),
                      payload);
}

Status WriteAheadLog::Append(const PointBlock& block) {
  Writer payload;
  WriteBlock(payload, block);
  return AppendRecord(static_cast<uint8_t>(RecordKind::kPoints), payload);
}

Status WriteAheadLog::Append(const LabeledBlock& block) {
  Writer payload;
  WriteBlock(payload, block);
  return AppendRecord(static_cast<uint8_t>(RecordKind::kLabeled), payload);
}

Status WriteAheadLog::Replay(const std::string& path,
                             const Replayer& replayer) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open WAL: " + path);
  auto header =
      FileHeader::ReadFrom(f, FormatId::kWriteAheadLog, kWalVersion, path);
  if (!header.ok()) {
    std::fclose(f);
    return header.status();
  }
  const auto decode = [&path, &replayer](RecordKind kind,
                                         const std::string& payload) {
    Reader r(payload);
    switch (kind) {
      case RecordKind::kTransactions: {
        auto block = std::make_shared<TransactionBlock>();
        ReadBlockInto(r, block.get());
        if (!r.ok() || !r.AtEnd()) break;
        if (replayer.transactions == nullptr) {
          return Status::InvalidArgument(
              path + ": WAL holds transaction blocks but the replayer "
                     "accepts none");
        }
        return replayer.transactions(std::move(block));
      }
      case RecordKind::kPoints: {
        auto block = std::make_shared<PointBlock>();
        ReadBlockInto(r, block.get());
        if (!r.ok() || !r.AtEnd()) break;
        if (replayer.points == nullptr) {
          return Status::InvalidArgument(
              path + ": WAL holds point blocks but the replayer accepts "
                     "none");
        }
        return replayer.points(std::move(block));
      }
      case RecordKind::kLabeled: {
        auto block = std::make_shared<LabeledBlock>();
        ReadBlockInto(r, block.get());
        if (!r.ok() || !r.AtEnd()) break;
        if (replayer.labeled == nullptr) {
          return Status::InvalidArgument(
              path + ": WAL holds labeled blocks but the replayer accepts "
                     "none");
        }
        return replayer.labeled(std::move(block));
      }
    }
    if (!r.status().ok()) return r.status();
    return Status::DataLoss(path + ": WAL record payload has trailing bytes");
  };
  long end_of_valid = 0;
  size_t num_records = 0;
  const Status status =
      ScanRecords(f, path, decode, &end_of_valid, &num_records);
  std::fclose(f);
  return status;
}

Status WriteAheadLog::Reset() {
  if (ftruncate(fileno(file_), static_cast<long>(FileHeader::kBytes)) != 0) {
    return Status::IoError("cannot reset WAL: " + path_);
  }
  std::fseek(file_, static_cast<long>(FileHeader::kBytes), SEEK_SET);
  num_records_ = 0;
  return Status::OK();
}

}  // namespace demon::persistence
