#include "persistence/block_codec.h"

#include <utility>
#include <vector>

namespace demon::persistence {

void WriteBlockInfo(Writer& w, const BlockInfo& info) {
  w.WriteU32(info.id);
  w.WriteI64(info.start_time);
  w.WriteI64(info.end_time);
  w.WriteString(info.label);
}

BlockInfo ReadBlockInfo(Reader& r) {
  BlockInfo info;
  info.id = r.ReadU32();
  info.start_time = r.ReadI64();
  info.end_time = r.ReadI64();
  info.label = r.ReadString();
  return info;
}

void WriteLabeledSchema(Writer& w, const LabeledSchema& schema) {
  w.WriteU32Vector(schema.attribute_cardinalities);
  w.WriteU32(schema.num_classes);
}

LabeledSchema ReadLabeledSchema(Reader& r) {
  LabeledSchema schema;
  schema.attribute_cardinalities = r.ReadU32Vector();
  schema.num_classes = r.ReadU32();
  return schema;
}

void WriteBlock(Writer& w, const TransactionBlock& block) {
  WriteBlockInfo(w, block.info());
  w.WriteU64(block.first_tid());
  w.WriteU64(block.size());
  for (const Transaction& t : block.transactions()) {
    w.WriteU32Vector(t.items());
  }
}

void ReadBlockInto(Reader& r, TransactionBlock* block) {
  const BlockInfo info = ReadBlockInfo(r);
  const Tid first_tid = r.ReadU64();
  const size_t n = r.ReadLength(sizeof(uint64_t));
  std::vector<Transaction> transactions;
  transactions.reserve(n);
  for (size_t i = 0; r.ok() && i < n; ++i) {
    transactions.emplace_back(r.ReadU32Vector());
  }
  if (!r.ok()) return;
  *block = TransactionBlock(std::move(transactions), first_tid);
  *block->mutable_info() = info;
}

void WriteBlock(Writer& w, const PointBlock& block) {
  WriteBlockInfo(w, block.info());
  w.WriteU64(block.dim());
  w.WriteDoubleVector(block.coords());
}

void ReadBlockInto(Reader& r, PointBlock* block) {
  const BlockInfo info = ReadBlockInfo(r);
  const uint64_t dim = r.ReadU64();
  std::vector<double> coords = r.ReadDoubleVector();
  if (!r.ok()) return;
  if (dim == 0 && !coords.empty()) {
    r.Fail("point block has coordinates but dimension 0");
    return;
  }
  if (dim > 0 && coords.size() % dim != 0) {
    r.Fail("point block coordinate count is not a multiple of its dimension");
    return;
  }
  if (dim > 0) {
    *block = PointBlock(std::move(coords), static_cast<size_t>(dim));
  } else {
    *block = PointBlock();
  }
  *block->mutable_info() = info;
}

void WriteBlock(Writer& w, const LabeledBlock& block) {
  WriteBlockInfo(w, block.info());
  WriteLabeledSchema(w, block.schema());
  w.WriteU64(block.size());
  for (const LabeledRecord& record : block.records()) {
    w.WriteU32Vector(record.attributes);
    w.WriteU32(record.label);
  }
}

void ReadBlockInto(Reader& r, LabeledBlock* block) {
  const BlockInfo info = ReadBlockInfo(r);
  const LabeledSchema schema = ReadLabeledSchema(r);
  const size_t n = r.ReadLength(sizeof(uint32_t));
  std::vector<LabeledRecord> records;
  records.reserve(n);
  for (size_t i = 0; r.ok() && i < n; ++i) {
    LabeledRecord record;
    record.attributes = r.ReadU32Vector();
    record.label = r.ReadU32();
    if (!r.ok()) break;
    // Validate against the schema before the LabeledBlock constructor
    // DEMON_CHECKs the same conditions (corrupt input must not abort).
    if (record.attributes.size() != schema.num_attributes() ||
        record.label >= schema.num_classes) {
      r.Fail("labeled record " + std::to_string(i) +
             " disagrees with its schema");
      return;
    }
    for (size_t a = 0; a < record.attributes.size(); ++a) {
      if (record.attributes[a] >= schema.attribute_cardinalities[a]) {
        r.Fail("labeled record " + std::to_string(i) +
               " holds an out-of-range attribute value");
        return;
      }
    }
    records.push_back(std::move(record));
  }
  if (!r.ok()) return;
  *block = LabeledBlock(schema, std::move(records));
  *block->mutable_info() = info;
}

}  // namespace demon::persistence
