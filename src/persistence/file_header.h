#ifndef DEMON_PERSISTENCE_FILE_HEADER_H_
#define DEMON_PERSISTENCE_FILE_HEADER_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/status.h"
#include "persistence/serializer.h"

namespace demon::persistence {

/// Shared magic number opening every DEMON on-disk file ("DEMONFS1").
/// The format id distinguishes what follows; the per-format version gates
/// layout evolution. A reader that sees the wrong magic or format id is
/// looking at the wrong kind of file (`InvalidArgument`); one that sees a
/// newer version than it supports must refuse rather than misparse
/// (`InvalidArgument`); a header that cannot be read in full is truncation
/// (`DataLoss`).
inline constexpr uint64_t kMagic = 0x44454d4f4e465331ULL;  // "DEMONFS1"

/// Identifies the layout of the bytes following the header. Values are
/// stable on disk; never renumber.
enum class FormatId : uint32_t {
  kTransactionFile = 1,  ///< data/transaction_file: block stream
  kTidListBlock = 2,     ///< tidlist: BlockTidLists bulk dump
  kTidListIndexed = 3,   ///< tidlist: random-access TID-list layout
  kItemsetModel = 4,     ///< itemsets/model_io: serialized ItemsetModel
  kCheckpoint = 5,       ///< core: DemonMonitor checkpoint container
  kWriteAheadLog = 6,    ///< core: block-arrival write-ahead log
  kWireRequest = 7,      ///< server: one request frame on the wire
  kWireResponse = 8,     ///< server: one response frame on the wire
};

/// Short stable name for error messages ("transaction-file", "checkpoint"...).
const char* FormatIdToString(FormatId id);

/// \brief The fixed 24-byte preamble of every DEMON file: magic, format id,
/// version, flags. `flags` is reserved (must be zero when written today) so
/// future formats can signal optional features without a version bump.
struct FileHeader {
  static constexpr size_t kBytes = 24;

  uint64_t magic = kMagic;
  uint32_t format_id = 0;
  uint32_t version = 0;
  uint64_t flags = 0;

  /// Writes the 24 header bytes at the current file position.
  [[nodiscard]] Status WriteTo(std::FILE* f) const;

  /// Reads and validates a header: wrong magic / wrong format id / version
  /// newer than `max_version` yield `InvalidArgument`; a short read yields
  /// `DataLoss`. `context` names the file in error messages.
  [[nodiscard]] static Result<FileHeader> ReadFrom(std::FILE* f,
                                                   FormatId expected,
                                                   uint32_t max_version,
                                                   const std::string& context);

  /// In-memory variants for formats framed inside a byte buffer.
  void AppendTo(Writer& w) const;
  [[nodiscard]] static Result<FileHeader> Consume(Reader& r, FormatId expected,
                                                  uint32_t max_version,
                                                  const std::string& context);
};

/// Writes `header ++ payload` to `path` atomically: the bytes go to
/// `path + ".tmp"` first and are renamed over `path` only after a clean
/// close, so a crash mid-write can never leave a torn file under the real
/// name (the reader either sees the old file or the complete new one).
[[nodiscard]] Status WritePayloadFile(const std::string& path, FormatId format,
                                      uint32_t version, const Writer& payload);

/// Reads a file written by `WritePayloadFile`: validates the header (same
/// status contract as `FileHeader::ReadFrom`) and returns the payload bytes.
/// `version_out` (optional) receives the file's actual format version, for
/// formats whose payload layout evolved (e.g. checkpoint v1 → v2).
[[nodiscard]] Result<std::string> ReadPayloadFile(
    const std::string& path, FormatId format, uint32_t max_version,
    uint32_t* version_out = nullptr);

}  // namespace demon::persistence

#endif  // DEMON_PERSISTENCE_FILE_HEADER_H_
