#ifndef DEMON_PERSISTENCE_BLOCK_CODEC_H_
#define DEMON_PERSISTENCE_BLOCK_CODEC_H_

#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "data/block.h"
#include "data/snapshot.h"
#include "data/types.h"
#include "dtree/labeled_block.h"
#include "persistence/serializer.h"

namespace demon::persistence {

/// \brief Resolver handed to `ModelMaintainer::LoadState` (via the Reader)
/// so maintainers can re-acquire shared pointers to the immutable blocks
/// they referenced at save time instead of duplicating block data inside
/// their own state. The checkpoint loader points these at the restored
/// snapshots.
struct BlockSource {
  std::function<Result<std::shared_ptr<const TransactionBlock>>(BlockId)>
      transactions;
  std::function<Result<std::shared_ptr<const PointBlock>>(BlockId)> points;
  std::function<Result<std::shared_ptr<const LabeledBlock>>(BlockId)> labeled;
};

void WriteBlockInfo(Writer& w, const BlockInfo& info);
BlockInfo ReadBlockInfo(Reader& r);

void WriteLabeledSchema(Writer& w, const LabeledSchema& schema);
LabeledSchema ReadLabeledSchema(Reader& r);

// One overload set per payload kind so the Snapshot templates below work
// uniformly. Readers validate structure before constructing (the block
// constructors DEMON_CHECK their invariants; corrupt input must latch a
// DataLoss on the Reader instead of aborting the process).
void WriteBlock(Writer& w, const TransactionBlock& block);
void WriteBlock(Writer& w, const PointBlock& block);
void WriteBlock(Writer& w, const LabeledBlock& block);
void ReadBlockInto(Reader& r, TransactionBlock* block);
void ReadBlockInto(Reader& r, PointBlock* block);
void ReadBlockInto(Reader& r, LabeledBlock* block);

/// Serializes a snapshot: latest id, then the retained blocks in id order.
template <typename BlockT>
void WriteSnapshot(Writer& w, const Snapshot<BlockT>& snapshot) {
  w.WriteU64(snapshot.latest_id());
  w.WriteU64(snapshot.NumBlocks());
  for (const auto& block : snapshot.blocks()) WriteBlock(w, *block);
}

/// Rebuilds a snapshot in place; `snapshot` must be freshly constructed.
/// Checkpoints never contain dropped blocks (DemonMonitor retains the full
/// snapshot), so block count must equal the latest id and ids must be the
/// consecutive sequence 1..n.
template <typename BlockT>
void ReadSnapshotInto(Reader& r, Snapshot<BlockT>* snapshot) {
  const uint64_t latest = r.ReadU64();
  const uint64_t count = r.ReadU64();
  if (!r.ok()) return;
  if (count != latest) {
    r.Fail("snapshot holds " + std::to_string(count) +
           " blocks but its latest id is " + std::to_string(latest));
    return;
  }
  for (uint64_t i = 1; i <= count; ++i) {
    BlockT block;
    ReadBlockInto(r, &block);
    if (!r.ok()) return;
    if (block.info().id != static_cast<BlockId>(i)) {
      r.Fail("snapshot block at position " + std::to_string(i) +
             " carries id " + std::to_string(block.info().id));
      return;
    }
    snapshot->Append(std::make_shared<const BlockT>(std::move(block)));
  }
}

}  // namespace demon::persistence

#endif  // DEMON_PERSISTENCE_BLOCK_CODEC_H_
