#ifndef DEMON_TIDLIST_EXTENT_PAGER_H_
#define DEMON_TIDLIST_EXTENT_PAGER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/audit.h"
#include "common/sync.h"
#include "common/telemetry.h"

namespace demon {

class BlockTidLists;

/// \brief Configuration of a TidListStore's memory tier.
struct TidListStoreOptions {
  /// Upper bound on resident encoded TID-list bytes across the store's
  /// blocks; 0 means unbounded (no pager, today's all-in-RAM behavior).
  /// The bound is a target: extents pinned by in-flight counting shards
  /// are never evicted, so the peak can exceed it by the pinned working
  /// set (at most one block extent per concurrent counting shard).
  size_t memory_budget_bytes = 0;
  /// Directory receiving spilled extents. Empty picks a fresh mkdtemp
  /// directory under TMPDIR (removed with the pager).
  std::string spill_dir;

  /// Reads `DEMON_TIDLIST_BUDGET_BYTES` / `DEMON_TIDLIST_SPILL_DIR` — how
  /// CI's memory-budget soak forces the paging paths under every test
  /// without touching call sites.
  static TidListStoreOptions FromEnv();
};

/// \brief Spills cold per-block TID-list extents to FileHeader-framed
/// files and mmaps them back on demand, keeping resident bytes under the
/// budget with LRU eviction.
///
/// One pager serves one TidListStore (and its copies — GEMM's cloned
/// histories share blocks, so they must share the pager that accounts
/// them). Every payload state transition (fault-in, spill, release)
/// happens under the single pager mutex; a block whose pin count is
/// nonzero is never evicted, and `BlockTidLists::Lease` orders its pin
/// increment before the residency check, so views taken under a lease stay
/// valid without any per-view locking.
///
/// All per-block paging bookkeeping (LRU stamp, spill state) lives here,
/// in the pager's own entry table, guarded by the pager's mutex — the
/// block itself keeps only what its lock-free readers need (the payload
/// pointer and the pin count, both atomic). The block-side payload
/// transitions take the owning pager as a `DEMON_REQUIRES`-annotated
/// parameter, so clang's thread-safety analysis proves they only run
/// under this mutex.
class ExtentPager {
 public:
  static std::shared_ptr<ExtentPager> Create(
      const TidListStoreOptions& options);
  ~ExtentPager();

  ExtentPager(const ExtentPager&) = delete;
  ExtentPager& operator=(const ExtentPager&) = delete;

  /// Binds the registry receiving `tidlist/{page_ins,evictions,
  /// spilled_bytes}` counters, the `tidlist/resident_bytes` gauge and the
  /// `tidlist/page_in_seconds` histogram. Null unbinds.
  void set_telemetry(telemetry::TelemetryRegistry* registry)
      DEMON_EXCLUDES(mutex_);

  /// Registers a freshly built (resident) block with the pager; may evict
  /// other blocks to make room. Called by TidListStore::Append.
  void Adopt(const BlockTidLists* block) DEMON_EXCLUDES(mutex_);

  /// Unregisters a dying block and deletes its spill file. Called by
  /// ~BlockTidLists.
  void Forget(const BlockTidLists* block) DEMON_EXCLUDES(mutex_);

  /// Faults `block`'s payload back in if evicted and touches its LRU
  /// stamp. The caller must already hold a pin (see BlockTidLists::Lease),
  /// which is what keeps the payload resident after this returns.
  void EnsureResident(const BlockTidLists* block) DEMON_EXCLUDES(mutex_);

  /// Re-accounts a block whose payload was rebuilt in place (test hook)
  /// and invalidates its spill file.
  void OnPayloadRebuilt(const BlockTidLists* block, size_t old_bytes)
      DEMON_EXCLUDES(mutex_);

  size_t memory_budget_bytes() const { return options_.memory_budget_bytes; }
  size_t resident_bytes() const {
    return resident_bytes_.load(std::memory_order_relaxed);
  }
  size_t peak_resident_bytes() const {
    return peak_resident_bytes_.load(std::memory_order_relaxed);
  }
  uint64_t page_ins() const {
    return page_ins_.load(std::memory_order_relaxed);
  }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  uint64_t spills() const { return spills_.load(std::memory_order_relaxed); }

  /// Advisory residency probe (no lock, no pin) — drives the counting
  /// layer's resident-blocks-first visit order.
  bool IsResident(const BlockTidLists* block) const;

  /// Accounting invariants at a quiesced boundary: resident byte counter
  /// equals the sum of resident extents, every pinned block is resident,
  /// peak >= current.
  void AuditInto(audit::AuditResult* audit) const DEMON_EXCLUDES(mutex_);

 private:
  friend class BlockTidLists;  // names mutex_ in REQUIRES annotations

  /// Paging state of one adopted block. Guarded by mutex_ (the vector
  /// itself and every field).
  struct Entry {
    const BlockTidLists* block = nullptr;
    /// LRU clock stamp of the last Adopt/EnsureResident touch.
    uint64_t lru_stamp = 0;
    /// True once a valid spill file exists at `spill_path` (the payload
    /// image is immutable, so a spill file never goes stale except via
    /// OnPayloadRebuilt, which deletes it).
    bool spilled = false;
    std::string spill_path;
  };

  explicit ExtentPager(const TidListStoreOptions& options);

  /// This pager's entry for `block`, or nullptr if never adopted.
  Entry* FindEntryLocked(const BlockTidLists* block) DEMON_REQUIRES(mutex_);

  /// Evicts LRU unpinned blocks (never `keep`) until the budget holds or
  /// no victim remains.
  void EvictToBudgetLocked(const BlockTidLists* keep) DEMON_REQUIRES(mutex_);
  /// Lazily creates the spill directory; returns the path for the next
  /// spill file.
  std::string NextSpillPathLocked() DEMON_REQUIRES(mutex_);

  /// Lock order: the pager mutex is held while binding telemetry metric
  /// handles, which takes the registry's metrics-map lock — so it must
  /// always be acquired before (outside of) that lock. Declared here,
  /// checked under -Wthread-safety-beta, tabulated in DESIGN.md.
  mutable Mutex mutex_ DEMON_ACQUIRED_BEFORE(telemetry_->metrics_mutex());
  TidListStoreOptions options_;  ///< Immutable after construction.
  std::vector<Entry> entries_ DEMON_GUARDED_BY(mutex_);
  uint64_t clock_ DEMON_GUARDED_BY(mutex_) = 0;
  std::string spill_dir_ DEMON_GUARDED_BY(mutex_);
  bool owns_spill_dir_ DEMON_GUARDED_BY(mutex_) = false;
  /// Process-wide unique id, part of every spill filename — pagers sharing
  /// an explicit spill_dir must never produce colliding paths. Set once by
  /// the constructor.
  uint64_t pager_id_ = 0;
  uint64_t spill_seq_ DEMON_GUARDED_BY(mutex_) = 0;

  std::atomic<size_t> resident_bytes_{0};
  std::atomic<size_t> peak_resident_bytes_{0};
  std::atomic<uint64_t> page_ins_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> spills_{0};

  telemetry::TelemetryRegistry* telemetry_ DEMON_GUARDED_BY(mutex_) = nullptr;
  telemetry::Counter* page_ins_counter_ DEMON_GUARDED_BY(mutex_) = nullptr;
  telemetry::Counter* evictions_counter_ DEMON_GUARDED_BY(mutex_) = nullptr;
  telemetry::Counter* spilled_bytes_counter_ DEMON_GUARDED_BY(mutex_) =
      nullptr;
  telemetry::Gauge* resident_gauge_ DEMON_GUARDED_BY(mutex_) = nullptr;
  telemetry::Histogram* page_in_seconds_ DEMON_GUARDED_BY(mutex_) = nullptr;
};

}  // namespace demon

#endif  // DEMON_TIDLIST_EXTENT_PAGER_H_
