// AVX2 and SSE4 tiers of the intersection kernels (see simd.h for the
// contracts). Every function carries a per-function target attribute, so
// this translation unit builds with the project's default flags and the
// binary stays runnable on any x86-64: nothing here executes unless
// __builtin_cpu_supports said the instruction set is present.
//
// This file (plus simd.h/simd.cc) is the only place raw intrinsics are
// allowed — scripts/lint.py's raw-intrinsics check bans `_mm*` elsewhere.

#include "tidlist/simd.h"

#ifndef DEMON_SIMD_ENABLED
#define DEMON_SIMD_ENABLED 1
#endif

#if DEMON_SIMD_ENABLED && (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define DEMON_SIMD_X86 1
#else
#define DEMON_SIMD_X86 0
#endif

#if DEMON_SIMD_X86

#include <immintrin.h>

#include <cstring>

#include "tidlist/tidlist.h"

namespace demon::simd {

namespace {

// --- shared helpers ------------------------------------------------------

/// Left-pack permutation table: entry m lists the set bit positions of m,
/// in order, padded with 0 — the permutevar8x32 index vector that compacts
/// the lanes selected by movemask m to the front.
struct Perm8Table {
  alignas(32) uint32_t idx[256][8];
};

constexpr Perm8Table MakePerm8Table() {
  Perm8Table t{};
  for (int m = 0; m < 256; ++m) {
    int k = 0;
    for (int b = 0; b < 8; ++b) {
      if (m & (1 << b)) t.idx[m][k++] = static_cast<uint32_t>(b);
    }
    for (; k < 8; ++k) t.idx[m][k] = 0;
  }
  return t;
}

constexpr Perm8Table kPerm8 = MakePerm8Table();

/// 4-lane left-pack as pshufb byte masks (entry m compacts the dwords
/// selected by the 4-bit movemask m).
struct Perm4Table {
  alignas(16) uint8_t idx[16][16];
};

constexpr Perm4Table MakePerm4Table() {
  Perm4Table t{};
  for (int m = 0; m < 16; ++m) {
    int k = 0;
    for (int lane = 0; lane < 4; ++lane) {
      if (m & (1 << lane)) {
        for (int byte = 0; byte < 4; ++byte) {
          t.idx[m][k * 4 + byte] = static_cast<uint8_t>(lane * 4 + byte);
        }
        ++k;
      }
    }
    for (; k < 4; ++k) {
      for (int byte = 0; byte < 4; ++byte) {
        t.idx[m][k * 4 + byte] = 0;
      }
    }
  }
  return t;
}

constexpr Perm4Table kPerm4 = MakePerm4Table();

/// Scalar branchless merge over the tails the vector loops leave behind.
/// `emit` selects the storing flavor; with out == nullptr only counts.
inline size_t ScalarMergeTail(const uint32_t* pa, const uint32_t* ea,
                              const uint32_t* pb, const uint32_t* eb,
                              uint32_t* out, size_t n) {
  while (pa < ea && pb < eb) {
    const uint32_t x = *pa;
    const uint32_t y = *pb;
    if (out != nullptr) out[n] = x;
    n += static_cast<size_t>(x == y);
    pa += static_cast<size_t>(x <= y);
    pb += static_cast<size_t>(y <= x);
  }
  return n;
}

// --- AVX2 tier -----------------------------------------------------------

/// First position in [first, last) with *pos >= value: exponential probe,
/// scalar binary narrowing to a 32-element bracket, then a vectorized
/// count of elements below `value` (unsigned compares via sign-bias).
__attribute__((target("avx2"))) const uint32_t* Avx2LowerBound(
    const uint32_t* first, const uint32_t* last, uint32_t value) {
  size_t step = 1;
  const uint32_t* probe = first;
  while (probe < last && *probe < value) {
    first = probe + 1;
    const size_t remaining = static_cast<size_t>(last - first);
    probe = first + (step < remaining ? step : remaining);
    step *= 2;
  }
  while (probe - first > 32) {
    const uint32_t* mid = first + (probe - first) / 2;
    if (*mid < value) {
      first = mid + 1;
    } else {
      probe = mid;
    }
  }
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i vv =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(value)), bias);
  size_t below = 0;
  const uint32_t* p = first;
  for (; p + 8 <= probe; p += 8) {
    const __m256i x = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p)), bias);
    const int lt = _mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_cmpgt_epi32(vv, x)));
    below += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(lt)));
  }
  for (; p < probe; ++p) below += static_cast<size_t>(*p < value);
  return first + below;
}

/// The galloping side of raw×raw, shared by the storing and size-only
/// flavors (out == nullptr counts only).
__attribute__((target("avx2"))) size_t Avx2GallopIntersect(
    const uint32_t* small, size_t nsmall, const uint32_t* large,
    size_t nlarge, uint32_t* out) {
  const uint32_t* lo = large;
  const uint32_t* const end = large + nlarge;
  size_t n = 0;
  for (size_t i = 0; i < nsmall; ++i) {
    const uint32_t v = small[i];
    lo = Avx2LowerBound(lo, end, v);
    if (lo == end) break;
    if (out != nullptr) out[n] = v;
    n += static_cast<size_t>(*lo == v);
  }
  return n;
}

/// 8×8 block merge: compare the two current windows under all eight
/// rotations, left-pack the matches of the a-window, then advance the
/// window whose maximum is smaller (both on a tie). Each element pair is
/// compared exactly once across the run, so strictly-increasing inputs
/// produce exactly the set intersection, in order.
__attribute__((target("avx2"))) size_t Avx2RawRawImpl(
    const uint32_t* a, size_t na, const uint32_t* b, size_t nb,
    uint32_t* out) {
  const uint32_t* small = na <= nb ? a : b;
  const size_t nsmall = na <= nb ? na : nb;
  const uint32_t* large = na <= nb ? b : a;
  const size_t nlarge = na <= nb ? nb : na;
  if (nsmall == 0) return 0;
  if (nlarge / (nsmall + 1) >= kGallopRatio) {
    return Avx2GallopIntersect(small, nsmall, large, nlarge, out);
  }
  const __m256i rot1 = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0);
  size_t i = 0;
  size_t j = 0;
  size_t n = 0;
  while (i + 8 <= nsmall && j + 8 <= nlarge) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(small + i));
    __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(large + j));
    __m256i eq = _mm256_cmpeq_epi32(va, vb);
    for (int r = 1; r < 8; ++r) {
      vb = _mm256_permutevar8x32_epi32(vb, rot1);
      eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, vb));
    }
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(eq)));
    if (out != nullptr) {
      const __m256i perm = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(kPerm8.idx[mask]));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + n),
                          _mm256_permutevar8x32_epi32(va, perm));
    }
    n += static_cast<size_t>(__builtin_popcount(mask));
    const uint32_t amax = small[i + 7];
    const uint32_t bmax = large[j + 7];
    i += amax <= bmax ? 8 : 0;
    j += bmax <= amax ? 8 : 0;
  }
  return ScalarMergeTail(small + i, small + nsmall, large + j,
                         large + nlarge, out, n);
}

__attribute__((target("avx2"))) size_t Avx2RawRaw(const uint32_t* a,
                                                  size_t na,
                                                  const uint32_t* b,
                                                  size_t nb, uint32_t* out) {
  return Avx2RawRawImpl(a, na, b, nb, out);
}

__attribute__((target("avx2"))) uint64_t Avx2RawRawSize(const uint32_t* a,
                                                        size_t na,
                                                        const uint32_t* b,
                                                        size_t nb) {
  return Avx2RawRawImpl(a, na, b, nb, nullptr);
}

/// Gathers the 32-bit bitmap word of each of 8 values, tests the value's
/// bit, and left-packs the hits. Word indexes are clamped before the
/// gather so a value past the extent reads an in-bounds word and is then
/// discarded by the range mask — same answer as the scalar bounds-checked
/// probe. Requires bitmap_bytes % 4 == 0 (every real bitmap extent is a
/// multiple of 8 bytes); other lengths take the scalar path. With
/// out == nullptr only counts.
__attribute__((target("avx2"))) size_t Avx2RawBitmapImpl(
    const uint32_t* values, size_t n, const uint8_t* bitmap,
    size_t bitmap_bytes, uint32_t* out) {
  if (bitmap_bytes % 4 != 0 || bitmap_bytes == 0) {
    size_t k = 0;
    for (size_t i = 0; i < n; ++i) {
      const size_t byte = static_cast<size_t>(values[i]) / 8;
      const bool hit =
          byte < bitmap_bytes && ((bitmap[byte] >> (values[i] % 8)) & 1);
      if (out != nullptr) out[k] = values[i];
      k += static_cast<size_t>(hit);
    }
    return k;
  }
  const uint32_t num_words = static_cast<uint32_t>(bitmap_bytes / 4);
  const __m256i last_word = _mm256_set1_epi32(static_cast<int>(num_words - 1));
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000u));
  const __m256i low5 = _mm256_set1_epi32(31);
  const __m256i one = _mm256_set1_epi32(1);
  size_t i = 0;
  size_t k = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    const __m256i word_idx = _mm256_srli_epi32(v, 5);
    // in_range = word_idx <= last_word, as an unsigned compare.
    const __m256i in_range = _mm256_andnot_si256(
        _mm256_cmpgt_epi32(_mm256_xor_si256(word_idx, bias),
                           _mm256_xor_si256(last_word, bias)),
        _mm256_set1_epi32(-1));
    const __m256i safe_idx = _mm256_min_epu32(word_idx, last_word);
    const __m256i words = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(bitmap), safe_idx, 4);
    const __m256i bit = _mm256_and_si256(v, low5);
    const __m256i hit = _mm256_and_si256(
        _mm256_and_si256(_mm256_srlv_epi32(words, bit), one), in_range);
    const __m256i sel = _mm256_cmpeq_epi32(hit, one);
    const unsigned mask =
        static_cast<unsigned>(_mm256_movemask_ps(_mm256_castsi256_ps(sel)));
    if (out != nullptr) {
      const __m256i perm = _mm256_load_si256(
          reinterpret_cast<const __m256i*>(kPerm8.idx[mask]));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k),
                          _mm256_permutevar8x32_epi32(v, perm));
    }
    k += static_cast<size_t>(__builtin_popcount(mask));
  }
  for (; i < n; ++i) {
    const size_t byte = static_cast<size_t>(values[i]) / 8;
    const bool hit =
        byte < bitmap_bytes && ((bitmap[byte] >> (values[i] % 8)) & 1);
    if (out != nullptr) out[k] = values[i];
    k += static_cast<size_t>(hit);
  }
  return k;
}

__attribute__((target("avx2"))) size_t Avx2RawBitmap(const uint32_t* values,
                                                     size_t n,
                                                     const uint8_t* bitmap,
                                                     size_t bitmap_bytes,
                                                     uint32_t* out) {
  return Avx2RawBitmapImpl(values, n, bitmap, bitmap_bytes, out);
}

__attribute__((target("avx2"))) uint64_t Avx2RawBitmapSize(
    const uint32_t* values, size_t n, const uint8_t* bitmap,
    size_t bitmap_bytes) {
  return Avx2RawBitmapImpl(values, n, bitmap, bitmap_bytes, nullptr);
}

/// Positional popcount of 32 AND-ed bytes per iteration via the classic
/// nibble lookup + psadbw accumulation — ~4× the throughput of a scalar
/// popcnt loop on in-cache bitmaps, and far ahead of the table-driven
/// __builtin_popcountll fallback the scalar tier uses in -march-less
/// builds.
__attribute__((target("avx2"))) uint64_t Avx2BitmapBitmapPopcount(
    const uint8_t* a, size_t a_bytes, const uint8_t* b, size_t b_bytes) {
  const size_t common = a_bytes < b_bytes ? a_bytes : b_bytes;
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_nibble = _mm256_set1_epi8(0x0f);
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  size_t i = 0;
  for (; i + 32 <= common; i += 32) {
    const __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    const __m256i lo = _mm256_shuffle_epi8(lut,
                                           _mm256_and_si256(v, low_nibble));
    const __m256i hi = _mm256_shuffle_epi8(
        lut, _mm256_and_si256(_mm256_srli_epi32(v, 4), low_nibble));
    acc = _mm256_add_epi64(
        acc, _mm256_sad_epu8(_mm256_add_epi8(lo, hi), zero));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  uint64_t total = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < common; ++i) {
    total += static_cast<uint64_t>(
        __builtin_popcount(static_cast<unsigned>(a[i] & b[i])));
  }
  return total;
}

/// AND + extract: vector AND with an all-zero fast skip, scalar bit
/// extraction per non-zero 64-bit word (extraction is serial by nature;
/// the win is blowing through the zero stretches 32 bytes at a time).
__attribute__((target("avx2"))) size_t Avx2BitmapBitmap(
    const uint8_t* a, size_t a_bytes, const uint8_t* b, size_t b_bytes,
    uint32_t* out, size_t cap) {
  const size_t common = a_bytes < b_bytes ? a_bytes : b_bytes;
  size_t k = 0;
  size_t i = 0;
  for (; i + 32 <= common; i += 32) {
    const __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i)));
    if (_mm256_testz_si256(v, v)) continue;
    alignas(32) uint64_t words[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(words), v);
    for (int w = 0; w < 4; ++w) {
      uint64_t bits = words[w];
      const uint32_t base = static_cast<uint32_t>((i + 8 * w) * 8);
      while (bits != 0 && k < cap) {
        out[k++] = base + static_cast<uint32_t>(__builtin_ctzll(bits));
        bits &= bits - 1;
      }
    }
  }
  for (; i < common; ++i) {
    uint32_t bits = a[i] & b[i];
    const uint32_t base = static_cast<uint32_t>(i * 8);
    while (bits != 0 && k < cap) {
      out[k++] = base + static_cast<uint32_t>(__builtin_ctz(bits));
      bits &= bits - 1;
    }
  }
  return k;
}

constexpr KernelOps kAvx2Ops = {
    Avx2RawRaw,       Avx2RawRawSize,
    Avx2RawBitmap,    Avx2RawBitmapSize,
    Avx2BitmapBitmap, Avx2BitmapBitmapPopcount,
    "avx2",
};

// --- SSE4 tier -----------------------------------------------------------
//
// The 4-wide analog of the merge kernel; probe-style kernels have no SSE
// win (no gather), so this tier only replaces the merge and reuses the
// scalar bitmap kernels through the ops table.

__attribute__((target("sse4.1"))) const uint32_t* Sse4LowerBound(
    const uint32_t* first, const uint32_t* last, uint32_t value) {
  size_t step = 1;
  const uint32_t* probe = first;
  while (probe < last && *probe < value) {
    first = probe + 1;
    const size_t remaining = static_cast<size_t>(last - first);
    probe = first + (step < remaining ? step : remaining);
    step *= 2;
  }
  while (probe - first > 16) {
    const uint32_t* mid = first + (probe - first) / 2;
    if (*mid < value) {
      first = mid + 1;
    } else {
      probe = mid;
    }
  }
  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i vv =
      _mm_xor_si128(_mm_set1_epi32(static_cast<int>(value)), bias);
  size_t below = 0;
  const uint32_t* p = first;
  for (; p + 4 <= probe; p += 4) {
    const __m128i x = _mm_xor_si128(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)), bias);
    const int lt = _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpgt_epi32(vv, x)));
    below += static_cast<size_t>(__builtin_popcount(
        static_cast<unsigned>(lt)));
  }
  for (; p < probe; ++p) below += static_cast<size_t>(*p < value);
  return first + below;
}

__attribute__((target("sse4.1"))) size_t Sse4RawRawImpl(
    const uint32_t* a, size_t na, const uint32_t* b, size_t nb,
    uint32_t* out) {
  const uint32_t* small = na <= nb ? a : b;
  const size_t nsmall = na <= nb ? na : nb;
  const uint32_t* large = na <= nb ? b : a;
  const size_t nlarge = na <= nb ? nb : na;
  if (nsmall == 0) return 0;
  if (nlarge / (nsmall + 1) >= kGallopRatio) {
    const uint32_t* lo = large;
    const uint32_t* const end = large + nlarge;
    size_t n = 0;
    for (size_t i = 0; i < nsmall; ++i) {
      const uint32_t v = small[i];
      lo = Sse4LowerBound(lo, end, v);
      if (lo == end) break;
      if (out != nullptr) out[n] = v;
      n += static_cast<size_t>(*lo == v);
    }
    return n;
  }
  size_t i = 0;
  size_t j = 0;
  size_t n = 0;
  while (i + 4 <= nsmall && j + 4 <= nlarge) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(small + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(large + j));
    __m128i eq = _mm_cmpeq_epi32(va, vb);
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x39)));  // rot 1
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x4e)));  // rot 2
    eq = _mm_or_si128(
        eq, _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0x93)));  // rot 3
    const unsigned mask =
        static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(eq)));
    if (out != nullptr) {
      const __m128i perm = _mm_load_si128(
          reinterpret_cast<const __m128i*>(kPerm4.idx[mask]));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + n),
                       _mm_shuffle_epi8(va, perm));
    }
    n += static_cast<size_t>(__builtin_popcount(mask));
    const uint32_t amax = small[i + 3];
    const uint32_t bmax = large[j + 3];
    i += amax <= bmax ? 4 : 0;
    j += bmax <= amax ? 4 : 0;
  }
  return ScalarMergeTail(small + i, small + nsmall, large + j,
                         large + nlarge, out, n);
}

__attribute__((target("sse4.1"))) size_t Sse4RawRaw(const uint32_t* a,
                                                    size_t na,
                                                    const uint32_t* b,
                                                    size_t nb,
                                                    uint32_t* out) {
  return Sse4RawRawImpl(a, na, b, nb, out);
}

__attribute__((target("sse4.1"))) uint64_t Sse4RawRawSize(const uint32_t* a,
                                                          size_t na,
                                                          const uint32_t* b,
                                                          size_t nb) {
  return Sse4RawRawImpl(a, na, b, nb, nullptr);
}

KernelOps MakeSse4Ops() {
  KernelOps ops = ScalarOps();
  ops.raw_raw = Sse4RawRaw;
  ops.raw_raw_size = Sse4RawRawSize;
  ops.name = "sse4";
  return ops;
}

}  // namespace

namespace internal {

const KernelOps* Avx2OpsOrNull() {
  return __builtin_cpu_supports("avx2") ? &kAvx2Ops : nullptr;
}

const KernelOps* Sse4OpsOrNull() {
  static const KernelOps ops = MakeSse4Ops();
  return __builtin_cpu_supports("sse4.1") ? &ops : nullptr;
}

}  // namespace internal

}  // namespace demon::simd

#else  // !DEMON_SIMD_X86

namespace demon::simd::internal {

const KernelOps* Avx2OpsOrNull() { return nullptr; }
const KernelOps* Sse4OpsOrNull() { return nullptr; }

}  // namespace demon::simd::internal

#endif  // DEMON_SIMD_X86
