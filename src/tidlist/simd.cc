#include "tidlist/simd.h"

#include <cstdlib>
#include <cstring>

#include "tidlist/tidlist.h"

namespace demon::simd {

namespace {

// --- scalar tier: the semantic reference every wider tier must match ----

size_t ScalarRawRaw(const uint32_t* a, size_t na, const uint32_t* b,
                    size_t nb, uint32_t* out) {
  const uint32_t* small = na <= nb ? a : b;
  const size_t nsmall = na <= nb ? na : nb;
  const uint32_t* large = na <= nb ? b : a;
  const size_t nlarge = na <= nb ? nb : na;
  if (nsmall == 0) return 0;
  size_t n = 0;
  if (nlarge / (nsmall + 1) >= kGallopRatio) {
    // Gallop through the large list: each element of the small list only
    // advances the cursor, never rewinds it.
    const uint32_t* lo = large;
    const uint32_t* const end = large + nlarge;
    for (size_t i = 0; i < nsmall; ++i) {
      const uint32_t v = small[i];
      lo = GallopLowerBound(lo, end, v);
      if (lo == end) break;
      out[n] = v;
      n += static_cast<size_t>(*lo == v);
    }
  } else {
    // Branchless merge: the candidate is stored unconditionally and the
    // output cursor advances only on a match, so the loop body has no
    // unpredictable branches (matches are rare and random in practice).
    const uint32_t* pa = small;
    const uint32_t* const ea = pa + nsmall;
    const uint32_t* pb = large;
    const uint32_t* const eb = pb + nlarge;
    while (pa < ea && pb < eb) {
      const uint32_t x = *pa;
      const uint32_t y = *pb;
      out[n] = x;
      n += static_cast<size_t>(x == y);
      pa += static_cast<size_t>(x <= y);
      pb += static_cast<size_t>(y <= x);
    }
  }
  return n;
}

uint64_t ScalarRawRawSize(const uint32_t* a, size_t na, const uint32_t* b,
                          size_t nb) {
  const uint32_t* small = na <= nb ? a : b;
  const size_t nsmall = na <= nb ? na : nb;
  const uint32_t* large = na <= nb ? b : a;
  const size_t nlarge = na <= nb ? nb : na;
  if (nsmall == 0) return 0;
  uint64_t n = 0;
  if (nlarge / (nsmall + 1) >= kGallopRatio) {
    const uint32_t* lo = large;
    const uint32_t* const end = large + nlarge;
    for (size_t i = 0; i < nsmall; ++i) {
      const uint32_t v = small[i];
      lo = GallopLowerBound(lo, end, v);
      if (lo == end) break;
      n += static_cast<uint64_t>(*lo == v);
    }
  } else {
    const uint32_t* pa = small;
    const uint32_t* const ea = pa + nsmall;
    const uint32_t* pb = large;
    const uint32_t* const eb = pb + nlarge;
    while (pa < ea && pb < eb) {
      const uint32_t x = *pa;
      const uint32_t y = *pb;
      n += static_cast<uint64_t>(x == y);
      pa += static_cast<size_t>(x <= y);
      pb += static_cast<size_t>(y <= x);
    }
  }
  return n;
}

bool ScalarBitmapTest(const uint8_t* bitmap, size_t bytes, uint32_t value) {
  const size_t byte = static_cast<size_t>(value) / 8;
  if (byte >= bytes) return false;
  return (bitmap[byte] >> (value % 8)) & 1;
}

size_t ScalarRawBitmap(const uint32_t* values, size_t n,
                       const uint8_t* bitmap, size_t bitmap_bytes,
                       uint32_t* out) {
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    out[k] = values[i];
    k += static_cast<size_t>(ScalarBitmapTest(bitmap, bitmap_bytes,
                                              values[i]));
  }
  return k;
}

uint64_t ScalarRawBitmapSize(const uint32_t* values, size_t n,
                             const uint8_t* bitmap, size_t bitmap_bytes) {
  uint64_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    k += static_cast<uint64_t>(ScalarBitmapTest(bitmap, bitmap_bytes,
                                                values[i]));
  }
  return k;
}

/// Word `word` of a bitmap extent, tolerating a short tail (missing bytes
/// read as zero) — same defensive read as the codec's BitmapWord.
uint64_t ScalarBitmapWord(const uint8_t* bitmap, size_t bytes, size_t word) {
  uint64_t w = 0;
  const size_t offset = word * sizeof(uint64_t);
  if (offset < bytes) {
    const size_t n = bytes - offset < sizeof(uint64_t) ? bytes - offset
                                                       : sizeof(uint64_t);
    std::memcpy(&w, bitmap + offset, n);
  }
  return w;
}

size_t ScalarBitmapBitmap(const uint8_t* a, size_t a_bytes, const uint8_t* b,
                          size_t b_bytes, uint32_t* out, size_t cap) {
  const size_t common = a_bytes < b_bytes ? a_bytes : b_bytes;
  const size_t words = common / sizeof(uint64_t) +
                       ((common % sizeof(uint64_t)) != 0 ? 1 : 0);
  size_t k = 0;
  for (size_t w = 0; w < words; ++w) {
    uint64_t bits =
        ScalarBitmapWord(a, a_bytes, w) & ScalarBitmapWord(b, b_bytes, w);
    const uint32_t base = static_cast<uint32_t>(w * 64);
    while (bits != 0 && k < cap) {
      const int bit = __builtin_ctzll(bits);
      out[k++] = base + static_cast<uint32_t>(bit);
      bits &= bits - 1;
    }
  }
  return k;
}

uint64_t ScalarBitmapBitmapPopcount(const uint8_t* a, size_t a_bytes,
                                    const uint8_t* b, size_t b_bytes) {
  const size_t common = a_bytes < b_bytes ? a_bytes : b_bytes;
  const size_t words = common / sizeof(uint64_t) +
                       ((common % sizeof(uint64_t)) != 0 ? 1 : 0);
  uint64_t total = 0;
  for (size_t w = 0; w < words; ++w) {
    total += static_cast<uint64_t>(__builtin_popcountll(
        ScalarBitmapWord(a, a_bytes, w) & ScalarBitmapWord(b, b_bytes, w)));
  }
  return total;
}

constexpr KernelOps kScalarOps = {
    ScalarRawRaw,       ScalarRawRawSize,
    ScalarRawBitmap,    ScalarRawBitmapSize,
    ScalarBitmapBitmap, ScalarBitmapBitmapPopcount,
    "scalar",
};

bool ForceScalarFromEnv() {
  // Read once at dispatch-table setup; no concurrent setenv in this process.
  const char* env =
      std::getenv("DEMON_FORCE_SCALAR");  // NOLINT(concurrency-mt-unsafe)
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

const KernelOps& ResolveOps() {
  if (ForceScalarFromEnv()) return kScalarOps;
  if (const KernelOps* avx2 = internal::Avx2OpsOrNull()) return *avx2;
  if (const KernelOps* sse4 = internal::Sse4OpsOrNull()) return *sse4;
  return kScalarOps;
}

}  // namespace

const KernelOps& ScalarOps() { return kScalarOps; }

const KernelOps& ActiveOps() {
  // Resolved once: CPUID and the environment cannot change mid-process,
  // and a stable choice keeps every counting call on one tier.
  static const KernelOps& ops = ResolveOps();
  return ops;
}

const char* ActiveKernelName() { return ActiveOps().name; }

}  // namespace demon::simd
