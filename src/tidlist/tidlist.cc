#include "tidlist/tidlist.h"

#include <algorithm>

#include "common/check.h"
#include "tidlist/simd.h"

namespace demon {

// The probe step is clamped against `last` so no pointer past the
// one-past-the-end position is ever formed.
const uint32_t* GallopLowerBound(const uint32_t* first, const uint32_t* last,
                                 uint32_t value) {
  size_t step = 1;
  const uint32_t* probe = first;
  while (probe < last && *probe < value) {
    first = probe + 1;
    const size_t remaining = static_cast<size_t>(last - first);
    probe = first + (step < remaining ? step : remaining);
    step *= 2;
  }
  return std::lower_bound(first, probe, value);
}

void IntersectRawInto(const uint32_t* a, size_t na, const uint32_t* b,
                      size_t nb, TidList* out) {
  const size_t bound = na <= nb ? na : nb;
  if (bound == 0) {
    out->clear();
    return;
  }
  // Size for the worst case plus the vector-store slack the kernels are
  // allowed to use; shrinking at the end keeps the capacity for later
  // calls. The kernel (scalar / SSE4 / AVX2, resolved once per process)
  // writes through a raw pointer and returns the true count.
  out->resize(bound + simd::kOutPad);
  const size_t n = simd::ActiveOps().raw_raw(a, na, b, nb, out->data());
  out->resize(n);
}

void IntersectInto(const TidList& a, const TidList& b, TidList* out) {
  IntersectRawInto(a.data(), a.size(), b.data(), b.size(), out);
}

TidList Intersect(const TidList& a, const TidList& b) {
  TidList out;
  IntersectInto(a, b, &out);
  return out;
}

uint64_t IntersectionSize(const std::vector<const TidList*>& lists,
                          IntersectionScratch* scratch) {
  DEMON_CHECK(!lists.empty());
  if (lists.size() == 1) return lists[0]->size();

  // Intersect smallest-first so intermediate results shrink fast.
  scratch->order.assign(lists.begin(), lists.end());
  std::sort(scratch->order.begin(), scratch->order.end(),
            [](const TidList* a, const TidList* b) {
              return a->size() < b->size();
            });
  // The final fold only needs a cardinality, so it takes the store-free
  // kernel; earlier folds must materialize the running intersection.
  const size_t last = scratch->order.size() - 1;
  const simd::KernelOps& ops = simd::ActiveOps();
  if (last == 1) {
    return ops.raw_raw_size(scratch->order[0]->data(),
                            scratch->order[0]->size(),
                            scratch->order[1]->data(),
                            scratch->order[1]->size());
  }
  TidList& current = scratch->current;
  TidList& next = scratch->next;
  IntersectInto(*scratch->order[0], *scratch->order[1], &current);
  for (size_t i = 2; i < last; ++i) {
    if (current.empty()) return 0;
    IntersectInto(current, *scratch->order[i], &next);
    current.swap(next);
  }
  if (current.empty()) return 0;
  return ops.raw_raw_size(current.data(), current.size(),
                          scratch->order[last]->data(),
                          scratch->order[last]->size());
}

uint64_t IntersectionSize(const std::vector<const TidList*>& lists) {
  IntersectionScratch scratch;
  return IntersectionSize(lists, &scratch);
}

}  // namespace demon
