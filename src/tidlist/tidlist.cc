#include "tidlist/tidlist.h"

#include <algorithm>

#include "common/check.h"

namespace demon {

namespace {

// Galloping (exponential) search for the first position in [first, last)
// with *pos >= value.
const uint32_t* GallopLowerBound(const uint32_t* first, const uint32_t* last,
                                 uint32_t value) {
  size_t step = 1;
  const uint32_t* probe = first;
  while (probe < last && *probe < value) {
    first = probe + 1;
    probe = first + step;
    step *= 2;
  }
  if (probe > last) probe = last;
  return std::lower_bound(first, probe, value);
}

}  // namespace

void IntersectInto(const TidList& a, const TidList& b, TidList* out) {
  out->clear();
  const TidList& small = a.size() <= b.size() ? a : b;
  const TidList& large = a.size() <= b.size() ? b : a;
  if (small.empty()) return;
  out->reserve(small.size());

  // When the size ratio is large, gallop through the large list.
  if (large.size() / (small.size() + 1) >= 8) {
    const uint32_t* lo = large.data();
    const uint32_t* const end = large.data() + large.size();
    for (uint32_t v : small) {
      lo = GallopLowerBound(lo, end, v);
      if (lo == end) break;
      if (*lo == v) out->push_back(v);
    }
    return;
  }

  // Linear merge.
  size_t i = 0;
  size_t j = 0;
  while (i < small.size() && j < large.size()) {
    const uint32_t x = small[i];
    const uint32_t y = large[j];
    if (x < y) {
      ++i;
    } else if (y < x) {
      ++j;
    } else {
      out->push_back(x);
      ++i;
      ++j;
    }
  }
}

TidList Intersect(const TidList& a, const TidList& b) {
  TidList out;
  IntersectInto(a, b, &out);
  return out;
}

uint64_t IntersectionSize(const std::vector<const TidList*>& lists) {
  DEMON_CHECK(!lists.empty());
  if (lists.size() == 1) return lists[0]->size();

  // Intersect smallest-first so intermediate results shrink fast.
  std::vector<const TidList*> order = lists;
  std::sort(order.begin(), order.end(),
            [](const TidList* a, const TidList* b) {
              return a->size() < b->size();
            });
  TidList current;
  TidList next;
  IntersectInto(*order[0], *order[1], &current);
  for (size_t i = 2; i < order.size() && !current.empty(); ++i) {
    IntersectInto(current, *order[i], &next);
    current.swap(next);
  }
  return current.size();
}

}  // namespace demon
