#include "tidlist/tidlist.h"

#include <algorithm>

#include "common/check.h"

namespace demon {

// The probe step is clamped against `last` so no pointer past the
// one-past-the-end position is ever formed.
const uint32_t* GallopLowerBound(const uint32_t* first, const uint32_t* last,
                                 uint32_t value) {
  size_t step = 1;
  const uint32_t* probe = first;
  while (probe < last && *probe < value) {
    first = probe + 1;
    const size_t remaining = static_cast<size_t>(last - first);
    probe = first + (step < remaining ? step : remaining);
    step *= 2;
  }
  return std::lower_bound(first, probe, value);
}

void IntersectRawInto(const uint32_t* a, size_t na, const uint32_t* b,
                      size_t nb, TidList* out) {
  const uint32_t* small = na <= nb ? a : b;
  const size_t nsmall = na <= nb ? na : nb;
  const uint32_t* large = na <= nb ? b : a;
  const size_t nlarge = na <= nb ? nb : na;
  if (nsmall == 0) {
    out->clear();
    return;
  }
  // Size for the worst case up front so the loops can store through a raw
  // pointer; shrinking at the end keeps the capacity for the next call.
  out->resize(nsmall);
  uint32_t* const out_data = out->data();
  size_t n = 0;

  if (nlarge / (nsmall + 1) >= kGallopRatio) {
    // Gallop through the large list: each element of the small list only
    // advances the cursor, never rewinds it.
    const uint32_t* lo = large;
    const uint32_t* const end = large + nlarge;
    for (size_t i = 0; i < nsmall; ++i) {
      const uint32_t v = small[i];
      lo = GallopLowerBound(lo, end, v);
      if (lo == end) break;
      out_data[n] = v;
      n += static_cast<size_t>(*lo == v);
    }
  } else {
    // Branchless merge: the candidate is stored unconditionally and the
    // output cursor advances only on a match, so the loop body has no
    // unpredictable branches (matches are rare and random in practice).
    const uint32_t* pa = small;
    const uint32_t* const ea = pa + nsmall;
    const uint32_t* pb = large;
    const uint32_t* const eb = pb + nlarge;
    while (pa < ea && pb < eb) {
      const uint32_t x = *pa;
      const uint32_t y = *pb;
      out_data[n] = x;
      n += static_cast<size_t>(x == y);
      pa += static_cast<size_t>(x <= y);
      pb += static_cast<size_t>(y <= x);
    }
  }
  out->resize(n);
}

void IntersectInto(const TidList& a, const TidList& b, TidList* out) {
  IntersectRawInto(a.data(), a.size(), b.data(), b.size(), out);
}

TidList Intersect(const TidList& a, const TidList& b) {
  TidList out;
  IntersectInto(a, b, &out);
  return out;
}

uint64_t IntersectionSize(const std::vector<const TidList*>& lists,
                          IntersectionScratch* scratch) {
  DEMON_CHECK(!lists.empty());
  if (lists.size() == 1) return lists[0]->size();

  // Intersect smallest-first so intermediate results shrink fast.
  scratch->order.assign(lists.begin(), lists.end());
  std::sort(scratch->order.begin(), scratch->order.end(),
            [](const TidList* a, const TidList* b) {
              return a->size() < b->size();
            });
  TidList& current = scratch->current;
  TidList& next = scratch->next;
  IntersectInto(*scratch->order[0], *scratch->order[1], &current);
  for (size_t i = 2; i < scratch->order.size() && !current.empty(); ++i) {
    IntersectInto(current, *scratch->order[i], &next);
    current.swap(next);
  }
  return current.size();
}

uint64_t IntersectionSize(const std::vector<const TidList*>& lists) {
  IntersectionScratch scratch;
  return IntersectionSize(lists, &scratch);
}

}  // namespace demon
