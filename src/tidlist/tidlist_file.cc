#include "tidlist/tidlist_file.h"

#include <algorithm>

#include "common/check.h"
#include "persistence/file_header.h"

namespace demon {

namespace {

constexpr uint32_t kTidListIndexedVersion = 1;

bool WriteU64(std::FILE* f, uint64_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool ReadU64(std::FILE* f, uint64_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}

}  // namespace

Status TidListFile::Write(const BlockTidLists& lists,
                          const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);

  const size_t num_items = lists.num_items();
  auto pairs = lists.MaterializedPairs();
  // MaterializedPairs comes back in hash order; sort for a deterministic
  // file image.
  std::sort(pairs.begin(), pairs.end());

  persistence::FileHeader file_header;
  file_header.format_id =
      static_cast<uint32_t>(persistence::FormatId::kTidListIndexed);
  file_header.version = kTidListIndexedVersion;
  Status header_status = file_header.WriteTo(f);

  // Fixed-size counts: num_transactions, num_items, num_pairs. List
  // lengths come from the always-resident directory; the payload pass
  // below decodes under one lease.
  bool ok = header_status.ok() && WriteU64(f, lists.num_transactions()) &&
            WriteU64(f, num_items) && WriteU64(f, pairs.size());

  // Offset tables are written after we know the data layout; compute it.
  const uint64_t header_bytes =
      persistence::FileHeader::kBytes + 3 * sizeof(uint64_t);
  const uint64_t item_table_bytes = num_items * 2 * sizeof(uint64_t);
  const uint64_t pair_table_bytes = pairs.size() * 3 * sizeof(uint64_t);
  uint64_t data_offset = header_bytes + item_table_bytes + pair_table_bytes;

  for (Item item = 0; ok && item < num_items; ++item) {
    const uint64_t length = lists.ItemListSize(item);
    ok = WriteU64(f, data_offset) && WriteU64(f, length);
    data_offset += length * sizeof(uint32_t);
  }
  for (size_t p = 0; ok && p < pairs.size(); ++p) {
    const uint64_t length = lists.PairListSize(pairs[p].first, pairs[p].second);
    const uint64_t key = (static_cast<uint64_t>(pairs[p].first) << 32) |
                         pairs[p].second;
    ok = WriteU64(f, key) && WriteU64(f, data_offset) && WriteU64(f, length);
    data_offset += length * sizeof(uint32_t);
  }

  // Payload: item lists then pair lists, in table order, decoded to the
  // raw uint32 layout this format stores.
  const TidListLease lease = lists.Lease();
  TidList decoded;
  for (Item item = 0; ok && item < num_items; ++item) {
    MaterializeInto(lists.ItemView(item), &decoded);
    if (!decoded.empty()) {
      ok = std::fwrite(decoded.data(), sizeof(uint32_t), decoded.size(), f) ==
           decoded.size();
    }
  }
  for (size_t p = 0; ok && p < pairs.size(); ++p) {
    MaterializeInto(lists.PairView(pairs[p].first, pairs[p].second), &decoded);
    if (!decoded.empty()) {
      ok = std::fwrite(decoded.data(), sizeof(uint32_t), decoded.size(), f) ==
           decoded.size();
    }
  }
  std::fclose(f);
  if (!header_status.ok()) return header_status;
  if (!ok) return Status::IoError("short write: " + path);
  return Status::OK();
}

TidListFileReader::~TidListFileReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<TidListFileReader>> TidListFileReader::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);
  auto reader = std::unique_ptr<TidListFileReader>(new TidListFileReader());
  reader->file_ = f;

  auto header = persistence::FileHeader::ReadFrom(
      f, persistence::FormatId::kTidListIndexed, kTidListIndexedVersion, path);
  if (!header.ok()) return header.status();
  std::fseek(f, 0, SEEK_END);
  reader->file_bytes_ = static_cast<uint64_t>(std::ftell(f));
  const uint64_t max_lists = reader->file_bytes_ / (2 * sizeof(uint64_t));
  std::fseek(f, static_cast<long>(persistence::FileHeader::kBytes), SEEK_SET);
  uint64_t num_transactions = 0;
  uint64_t num_items = 0;
  uint64_t num_pairs = 0;
  bool ok = ReadU64(f, &num_transactions) && ReadU64(f, &num_items) &&
            ReadU64(f, &num_pairs) && num_items <= max_lists &&
            num_pairs <= max_lists;
  if (ok) {
    reader->num_transactions_ = num_transactions;
    reader->index_.resize(num_items);
    for (size_t i = 0; ok && i < num_items; ++i) {
      ok = ReadU64(f, &reader->index_[i].offset) &&
           ReadU64(f, &reader->index_[i].length);
    }
    for (size_t p = 0; ok && p < num_pairs; ++p) {
      uint64_t key = 0;
      Extent extent;
      ok = ReadU64(f, &key) && ReadU64(f, &extent.offset) &&
           ReadU64(f, &extent.length);
      if (ok) reader->pair_index_.emplace(key, extent);
    }
  }
  if (!ok) return Status::DataLoss("corrupt TID-list file: " + path);
  return reader;
}

Status TidListFileReader::ReadExtent(const Extent& extent, TidList* out) {
  // A corrupt offset table must not force an over-allocation or a read
  // outside the file.
  if (extent.offset > file_bytes_ ||
      extent.length > (file_bytes_ - extent.offset) / sizeof(uint32_t)) {
    return Status::DataLoss("TID-list extent outside the file");
  }
  out->resize(extent.length);
  if (extent.length == 0) return Status::OK();
  if (std::fseek(file_, static_cast<long>(extent.offset), SEEK_SET) != 0) {
    return Status::IoError("seek failed");
  }
  if (std::fread(out->data(), sizeof(uint32_t), extent.length, file_) !=
      extent.length) {
    return Status::IoError("short read");
  }
  bytes_read_ += extent.length * sizeof(uint32_t);
  return Status::OK();
}

Status TidListFileReader::ReadItemList(Item item, TidList* out) {
  if (item >= index_.size()) {
    return Status::InvalidArgument("item outside universe");
  }
  return ReadExtent(index_[item], out);
}

Status TidListFileReader::ReadPairList(Item a, Item b, TidList* out) {
  const auto it = pair_index_.find(PairKey(a, b));
  if (it == pair_index_.end()) {
    return Status::NotFound("pair not materialized");
  }
  return ReadExtent(it->second, out);
}

bool TidListFileReader::HasPairList(Item a, Item b) const {
  return pair_index_.count(PairKey(a, b)) > 0;
}

size_t TidListFileReader::ItemListLength(Item item) const {
  DEMON_CHECK(item < index_.size());
  return index_[item].length;
}

size_t TidListFileReader::PairListLength(Item a, Item b) const {
  const auto it = pair_index_.find(PairKey(a, b));
  return it == pair_index_.end() ? 0 : it->second.length;
}

}  // namespace demon
