#ifndef DEMON_TIDLIST_TIDLIST_FILE_H_
#define DEMON_TIDLIST_TIDLIST_FILE_H_

#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "data/types.h"
#include "tidlist/tidlist_store.h"

namespace demon {

/// \brief Random-access on-disk layout for a block's TID-lists: a header
/// with per-item (and per-pair) offset/length tables followed by the raw
/// sorted uint32 lists. Unlike BlockTidLists::WriteToFile (a bulk dump),
/// this format supports reading *one* list without touching the rest —
/// the access pattern ECUT's analysis assumes (§3.1.1: "retrieves only
/// the relevant portion of the dataset").
class TidListFile {
 public:
  /// Writes `lists` (item lists and any materialized pair lists) to
  /// `path` in indexed format.
  [[nodiscard]] static Status Write(const BlockTidLists& lists, const std::string& path);
};

/// \brief Reader over a TidListFile: opens the file, loads the offset
/// tables (small), and serves individual lists with one seek + read each.
/// Tracks bytes read so benchmarks can report true I/O volume.
class TidListFileReader {
 public:
  ~TidListFileReader();

  TidListFileReader(const TidListFileReader&) = delete;
  TidListFileReader& operator=(const TidListFileReader&) = delete;

  [[nodiscard]] static Result<std::unique_ptr<TidListFileReader>> Open(
      const std::string& path);

  size_t num_transactions() const { return num_transactions_; }
  size_t num_items() const { return index_.size(); }

  /// Reads the TID-list of `item` into `out`.
  [[nodiscard]] Status ReadItemList(Item item, TidList* out);

  /// Reads the materialized list of pair {a, b}; returns NotFound when
  /// the pair was not materialized in this block.
  [[nodiscard]] Status ReadPairList(Item a, Item b, TidList* out);

  /// True if the pair {a, b} is materialized (index-only check, no I/O).
  bool HasPairList(Item a, Item b) const;

  /// Length (in TIDs) of an item list, from the index (no I/O).
  size_t ItemListLength(Item item) const;
  /// Length of a pair list, or 0 if absent (no I/O).
  size_t PairListLength(Item a, Item b) const;

  /// Cumulative payload bytes read through this reader.
  uint64_t bytes_read() const { return bytes_read_; }

 private:
  struct Extent {
    uint64_t offset = 0;
    uint64_t length = 0;  // number of TIDs
  };

  TidListFileReader() = default;

  static uint64_t PairKey(Item a, Item b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  [[nodiscard]] Status ReadExtent(const Extent& extent, TidList* out);

  std::FILE* file_ = nullptr;
  uint64_t file_bytes_ = 0;
  size_t num_transactions_ = 0;
  std::vector<Extent> index_;
  std::unordered_map<uint64_t, Extent> pair_index_;
  uint64_t bytes_read_ = 0;
};

}  // namespace demon

#endif  // DEMON_TIDLIST_TIDLIST_FILE_H_
