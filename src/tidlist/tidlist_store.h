#ifndef DEMON_TIDLIST_TIDLIST_STORE_H_
#define DEMON_TIDLIST_TIDLIST_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/audit.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/telemetry.h"
#include "data/block.h"
#include "data/types.h"
#include "tidlist/extent_pager.h"
#include "tidlist/tidlist.h"
#include "tidlist/tidlist_codec.h"

namespace demon {

class BlockTidLists;

/// \brief Priority-ordered request to materialize 2-itemset TID-lists in a
/// block, with an upper bound on the extra space (ECUT+, paper §3.1.1).
///
/// The paper's heuristic: materialize the TID-lists of all frequent
/// 2-itemsets of the current model; if they exceed the space budget
/// M_{t+1}, take itemsets in decreasing order of overall support. Callers
/// build `pairs` already sorted by that priority.
struct PairMaterializationSpec {
  /// Item pairs (a < b) in decreasing priority order.
  std::vector<std::pair<Item, Item>> pairs;
  /// Maximum number of TID slots (uint32 entries) the pair lists may
  /// occupy in this block. SIZE_MAX means unbounded.
  size_t budget_slots = SIZE_MAX;
};

/// \brief RAII pin on one block's payload: while any lease is live the
/// block's extents stay resident, so every TidListView taken from the
/// block remains valid. Cheap (two relaxed atomic ops) when the block is
/// unmanaged — the unbounded default.
class TidListLease {
 public:
  TidListLease() = default;
  TidListLease(TidListLease&& other) noexcept : block_(other.block_) {
    other.block_ = nullptr;
  }
  TidListLease& operator=(TidListLease&& other) noexcept {
    if (this != &other) {
      Release();
      block_ = other.block_;
      other.block_ = nullptr;
    }
    return *this;
  }
  TidListLease(const TidListLease&) = delete;
  TidListLease& operator=(const TidListLease&) = delete;
  ~TidListLease() { Release(); }

  void Release();

 private:
  friend class BlockTidLists;
  explicit TidListLease(const BlockTidLists* block) : block_(block) {}
  const BlockTidLists* block_ = nullptr;
};

/// \brief Immutable TID-list representation of one block: one encoded list
/// per item, plus optionally materialized 2-itemset lists (paper §3.1.1).
///
/// Lists hold block-local offsets; by the additivity and 0/1 properties,
/// per-block lists are built once when the block arrives and never change.
/// The item lists occupy exactly as many slots as the transactional
/// representation of the block, so they *replace* it rather than duplicate
/// it; pair lists are the "additional disk space" of ECUT+.
///
/// Storage tiers: each list is encoded (raw / delta+varint / bitmap, by
/// density — see tidlist_codec.h) into one contiguous per-block payload
/// extent. The directory (per-list encoding, cardinality, offset) is
/// always resident and answers every metadata query — sizes, pair
/// presence, slot accounting — without touching the payload, which is what
/// lets cover plans be built for evicted blocks without I/O. The payload
/// itself may be spilled to disk and mmapped back by an ExtentPager;
/// callers hold a `Lease()` across any use of views.
class BlockTidLists {
 public:
  /// Builds the per-item lists (and requested pair lists) for `block`.
  /// `num_items` fixes the item-universe size; items outside [0, num_items)
  /// are invalid.
  static std::shared_ptr<const BlockTidLists> Build(
      const TransactionBlock& block, size_t num_items,
      const PairMaterializationSpec* pairs = nullptr);

  ~BlockTidLists();

  BlockTidLists(const BlockTidLists&) = delete;
  BlockTidLists& operator=(const BlockTidLists&) = delete;

  size_t num_transactions() const { return num_transactions_; }
  size_t num_items() const { return items_.size(); }

  // --- directory queries: always resident, never touch the payload ------

  /// Cardinality of item's TID-list.
  size_t ItemListSize(Item item) const;
  /// Encoding chosen for item's list by the density heuristic.
  TidEncoding ItemListEncoding(Item item) const;
  /// True when the pair {a, b} (any order) was materialized in this block.
  bool HasPairList(Item a, Item b) const;
  /// Cardinality of the materialized pair list; 0 when not materialized.
  size_t PairListSize(Item a, Item b) const;
  /// Number of materialized pairs.
  size_t num_pair_lists() const { return pair_extents_.size(); }
  /// All materialized pairs (a < b), in unspecified order.
  std::vector<std::pair<Item, Item>> MaterializedPairs() const;
  /// Slots (uint32 entries) occupied by the item lists == total item
  /// occurrences of the block.
  size_t item_list_slots() const { return item_list_slots_; }
  /// Extra slots occupied by materialized pair lists.
  size_t pair_list_slots() const { return pair_list_slots_; }
  /// Encoded payload size in bytes — the unit of the pager's byte budget.
  size_t payload_bytes() const { return payload_bytes_; }
  /// Number of lists stored under `encoding` (diagnostics / benches).
  size_t EncodingCensus(TidEncoding encoding) const;

  // --- payload access: hold a Lease across any use of views -------------

  /// Pins the payload resident (faulting it in if evicted) until the lease
  /// is released. No-op for unmanaged blocks.
  TidListLease Lease() const { return TidListLease(Pin()); }

  /// Advisory: payload currently in memory? (Unmanaged blocks: always.)
  bool resident() const {
    return payload_.load(std::memory_order_relaxed) != nullptr;
  }

  /// View of item's encoded list. Valid only while a lease is held.
  TidListView ItemView(Item item) const;
  /// View of the materialized pair {a, b}; HasPairList must be true.
  TidListView PairView(Item a, Item b) const;

  /// Decoded copy of item's list (takes a lease internally).
  TidList MaterializeItemList(Item item) const;
  /// Decoded copy of the pair list; HasPairList must be true.
  TidList MaterializePairList(Item a, Item b) const;

  /// Serializes to a binary file (models the paper's on-disk TID-list
  /// organization): directory plus encoded extents, byte-deterministic for
  /// a given block. The same format backs the pager's spill files.
  [[nodiscard]] Status WriteToFile(const std::string& path) const;

  /// Reads a file written by WriteToFile. Every extent is decode-validated;
  /// corruption or truncation yields DataLoss.
  [[nodiscard]] static Result<std::shared_ptr<const BlockTidLists>>
  ReadFromFile(const std::string& path);

  /// Deep structural audit (paper §3.1.1's representation invariants):
  /// every decoded list sorted strictly increasing with offsets in range,
  /// directory cardinalities exact, slot accounting exact, every
  /// materialized pair list equal to the intersection of its item lists,
  /// and sampled cross-encoding kernel agreement. Appends violations to
  /// `audit`.
  void AuditInto(audit::AuditResult* audit) const;

  /// Test-only: replaces item's list (re-encoded raw so arbitrary corrupt
  /// contents survive verbatim) and rebuilds the payload, so
  /// corruption-injection tests can break an invariant and assert the
  /// auditor reports it. Slot accounting is intentionally left stale.
  /// Analysis is off: the payload members are nominally pager-guarded, but
  /// this hook runs single-threaded from tests with no concurrent pager
  /// activity (it still notifies the pager afterwards so accounting holds).
  void SetItemListForTest(Item item, const TidList& list)
      DEMON_NO_THREAD_SAFETY_ANALYSIS;

 private:
  friend class ExtentPager;
  friend class TidListLease;
  friend class TidListStore;

  /// Directory entry of one encoded list inside the payload extent.
  struct Extent {
    uint64_t offset = 0;
    uint64_t bytes = 0;
    uint32_t count = 0;
    TidEncoding encoding = TidEncoding::kRaw;
  };

  BlockTidLists() = default;

  static uint64_t PairKey(Item a, Item b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  uint32_t universe() const { return static_cast<uint32_t>(num_transactions_); }
  TidListView ViewOf(const Extent& extent) const;

  /// Encodes `item_lists` and `pair_lists` (sorted by key) into the
  /// directory + contiguous payload. `force_raw_item` (when < num items)
  /// pins that item's encoding to raw — the corruption-injection hook.
  /// Analysis is off: it writes the nominally pager-guarded payload
  /// members, but only runs before the block is published (Build) or from
  /// the single-threaded test hook above — never on a managed block with a
  /// live pager racing it.
  void EncodePayload(
      const std::vector<TidList>& item_lists,
      const std::vector<std::pair<uint64_t, TidList>>& pair_lists,
      size_t force_raw_item = SIZE_MAX) DEMON_NO_THREAD_SAFETY_ANALYSIS;

  /// Installs an already-encoded payload image (ReadFromFile's v2 path).
  /// Analysis is off for the same reason as EncodePayload: the block is
  /// not yet published, so no lock exists to hold.
  void AdoptPayload(std::vector<uint8_t> payload)
      DEMON_NO_THREAD_SAFETY_ANALYSIS;

  /// Byte offset of the payload extent inside a WriteToFile image.
  uint64_t PayloadFileOffset() const;
  /// Writes the v2 directory + payload to `f`; payload must be resident.
  [[nodiscard]] Status WriteContents(std::FILE* f,
                                     const std::string& path) const;

  // Pager plumbing. Pin/Unpin are cheap no-ops when pager_ is null.
  const BlockTidLists* Pin() const;
  void Unpin() const;
  void AttachPager(std::shared_ptr<ExtentPager> pager) const;

  // Payload state transitions, called only by the owning pager with its
  // mutex held. The pager passes itself so the analysis can check the
  // capability at the call site (`block->FaultIn(*this, ...)` inside the
  // pager resolves the requirement to the mutex it actually holds); each
  // body re-asserts that `pager` is `*pager_` at runtime, which is the
  // aliasing fact the static analysis cannot prove.

  /// Mmaps (or reads) the spill file back in.
  void FaultIn(const ExtentPager& pager, const std::string& spill_path) const
      DEMON_REQUIRES(pager.mutex_);
  /// Writes the spill file image (idempotent content: the payload is
  /// immutable).
  void Spill(const ExtentPager& pager, const std::string& path) const
      DEMON_REQUIRES(pager.mutex_);
  /// Frees the resident payload (munmap or free).
  void ReleasePayload(const ExtentPager& pager) const
      DEMON_REQUIRES(pager.mutex_);

  size_t num_transactions_ = 0;
  std::vector<Extent> items_;
  std::unordered_map<uint64_t, Extent> pair_extents_;
  size_t item_list_slots_ = 0;
  size_t pair_list_slots_ = 0;
  size_t payload_bytes_ = 0;

  /// Attached (once) by TidListStore::Append when the store has a pager;
  /// never detached. Mutable: paging is caching state on a logically
  /// immutable block.
  mutable std::shared_ptr<ExtentPager> pager_;
  /// Payload backing storage: exactly one of `owned_` / the mapping at
  /// `map_base_` is live while resident. Written only by the pager-mutex
  /// transitions above — the annotation names the mutex through `pager_`,
  /// which is set before the block is ever managed and never changes.
  mutable std::vector<uint8_t> owned_ DEMON_GUARDED_BY(pager_->mutex_);
  mutable void* map_base_ DEMON_GUARDED_BY(pager_->mutex_) = nullptr;
  mutable size_t map_bytes_ DEMON_GUARDED_BY(pager_->mutex_) = 0;
  /// Lock-free reader side: views and residency probes only need these.
  mutable std::atomic<const uint8_t*> payload_{nullptr};
  mutable std::atomic<uint32_t> pins_{0};
};

/// \brief The TID-list store of an evolving database: one BlockTidLists per
/// selected block, appended as blocks arrive. Copies are cheap (blocks are
/// shared immutable state, and copies share the pager that accounts them),
/// which is what lets GEMM keep w models whose histories overlap without
/// duplicating lists.
class TidListStore {
 public:
  /// Options from the environment (the CI soak hook); unbounded when the
  /// DEMON_TIDLIST_BUDGET_BYTES variable is absent.
  TidListStore() : TidListStore(TidListStoreOptions::FromEnv()) {}

  /// A store with an explicit memory budget; 0 = unbounded (no pager).
  explicit TidListStore(const TidListStoreOptions& options);

  /// Appends a block, attaching it to this store's pager (if any and the
  /// block is not yet managed — blocks shared across GEMM store copies
  /// keep their first pager).
  void Append(std::shared_ptr<const BlockTidLists> block);

  /// Drops the `count` oldest blocks (AuM-style deletion support).
  void DropOldest(size_t count);

  /// Drops the block at position `index`.
  void DropAt(size_t index);

  size_t NumBlocks() const { return blocks_.size(); }
  const BlockTidLists& block(size_t index) const { return *blocks_[index]; }
  const std::vector<std::shared_ptr<const BlockTidLists>>& blocks() const {
    return blocks_;
  }

  /// Total transactions across blocks.
  size_t TotalTransactions() const;
  /// Total slots in item lists across blocks.
  size_t TotalItemSlots() const;
  /// Total extra slots in pair lists across blocks.
  size_t TotalPairSlots() const;
  /// Total encoded payload bytes across blocks (the TID-list footprint the
  /// memory budget is measured against).
  size_t TotalPayloadBytes() const;

  /// The pager enforcing this store's budget; null when unbounded.
  const std::shared_ptr<ExtentPager>& pager() const { return pager_; }

  /// Fills `order` with block indices, resident blocks first (stable
  /// within each class) — the counting layer's residency-aware visit
  /// order. Identity when unbounded. Advisory: residency may change
  /// concurrently; any order yields identical counts.
  void ResidencyOrder(std::vector<uint32_t>* order) const;

  /// Routes pager metrics into `registry` (see ExtentPager::set_telemetry).
  void set_telemetry(telemetry::TelemetryRegistry* registry);

  /// Audits every block's TID-lists (see BlockTidLists::AuditInto) and the
  /// pager's accounting.
  void AuditInto(audit::AuditResult* audit) const;

 private:
  std::shared_ptr<ExtentPager> pager_;
  std::vector<std::shared_ptr<const BlockTidLists>> blocks_;
};

}  // namespace demon

#endif  // DEMON_TIDLIST_TIDLIST_STORE_H_
