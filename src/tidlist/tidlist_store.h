#ifndef DEMON_TIDLIST_TIDLIST_STORE_H_
#define DEMON_TIDLIST_TIDLIST_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/audit.h"
#include "common/status.h"
#include "data/block.h"
#include "data/types.h"
#include "tidlist/tidlist.h"

namespace demon {

/// \brief Priority-ordered request to materialize 2-itemset TID-lists in a
/// block, with an upper bound on the extra space (ECUT+, paper §3.1.1).
///
/// The paper's heuristic: materialize the TID-lists of all frequent
/// 2-itemsets of the current model; if they exceed the space budget
/// M_{t+1}, take itemsets in decreasing order of overall support. Callers
/// build `pairs` already sorted by that priority.
struct PairMaterializationSpec {
  /// Item pairs (a < b) in decreasing priority order.
  std::vector<std::pair<Item, Item>> pairs;
  /// Maximum number of TID slots (uint32 entries) the pair lists may
  /// occupy in this block. SIZE_MAX means unbounded.
  size_t budget_slots = SIZE_MAX;
};

/// \brief Immutable TID-list representation of one block: one list per
/// item, plus optionally materialized 2-itemset lists (paper §3.1.1).
///
/// Lists hold block-local offsets; by the additivity and 0/1 properties,
/// per-block lists are built once when the block arrives and never change.
/// The item lists occupy exactly as many slots as the transactional
/// representation of the block, so they *replace* it rather than duplicate
/// it; pair lists are the "additional disk space" of ECUT+.
class BlockTidLists {
 public:
  /// Builds the per-item lists (and requested pair lists) for `block`.
  /// `num_items` fixes the item-universe size; items outside [0, num_items)
  /// are invalid.
  static std::shared_ptr<const BlockTidLists> Build(
      const TransactionBlock& block, size_t num_items,
      const PairMaterializationSpec* pairs = nullptr);

  size_t num_transactions() const { return num_transactions_; }
  size_t num_items() const { return item_lists_.size(); }

  /// TID-list of a single item.
  const TidList& ItemList(Item item) const;

  /// Materialized list of the pair {a, b} (any order), or nullptr if this
  /// pair was not materialized in this block.
  const TidList* PairList(Item a, Item b) const;

  /// Number of materialized pairs.
  size_t num_pair_lists() const { return pair_lists_.size(); }

  /// All materialized pairs (a < b), in unspecified order.
  std::vector<std::pair<Item, Item>> MaterializedPairs() const;

  /// Slots (uint32 entries) occupied by the item lists == total item
  /// occurrences of the block.
  size_t item_list_slots() const { return item_list_slots_; }

  /// Extra slots occupied by materialized pair lists.
  size_t pair_list_slots() const { return pair_list_slots_; }

  /// Serializes to a simple binary file (models the paper's on-disk
  /// TID-list organization).
  [[nodiscard]] Status WriteToFile(const std::string& path) const;

  /// Reads a file written by WriteToFile.
  [[nodiscard]] static Result<std::shared_ptr<const BlockTidLists>> ReadFromFile(
      const std::string& path);

  /// Deep structural audit (paper §3.1.1's representation invariants):
  /// every list sorted strictly increasing with offsets in range, slot
  /// accounting exact, every materialized pair list equal to the
  /// intersection of its item lists. Appends violations to `audit`.
  void AuditInto(audit::AuditResult* audit) const;

  /// Test-only mutable access, so corruption-injection tests can break an
  /// invariant and assert the auditor reports it.
  TidList* mutable_item_list_for_test(Item item) {
    return &item_lists_[item];
  }

 private:
  BlockTidLists() = default;

  static uint64_t PairKey(Item a, Item b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  size_t num_transactions_ = 0;
  std::vector<TidList> item_lists_;
  std::unordered_map<uint64_t, TidList> pair_lists_;
  size_t item_list_slots_ = 0;
  size_t pair_list_slots_ = 0;
};

/// \brief The TID-list store of an evolving database: one BlockTidLists per
/// selected block, appended as blocks arrive. Copies are cheap (blocks are
/// shared immutable state), which is what lets GEMM keep w models whose
/// histories overlap without duplicating lists.
class TidListStore {
 public:
  TidListStore() = default;

  void Append(std::shared_ptr<const BlockTidLists> block) {
    blocks_.push_back(std::move(block));
  }

  /// Drops the `count` oldest blocks (AuM-style deletion support).
  void DropOldest(size_t count);

  /// Drops the block at position `index`.
  void DropAt(size_t index);

  size_t NumBlocks() const { return blocks_.size(); }
  const BlockTidLists& block(size_t index) const { return *blocks_[index]; }
  const std::vector<std::shared_ptr<const BlockTidLists>>& blocks() const {
    return blocks_;
  }

  /// Total transactions across blocks.
  size_t TotalTransactions() const;
  /// Total slots in item lists across blocks.
  size_t TotalItemSlots() const;
  /// Total extra slots in pair lists across blocks.
  size_t TotalPairSlots() const;

  /// Audits every block's TID-lists (see BlockTidLists::AuditInto).
  void AuditInto(audit::AuditResult* audit) const;

 private:
  std::vector<std::shared_ptr<const BlockTidLists>> blocks_;
};

}  // namespace demon

#endif  // DEMON_TIDLIST_TIDLIST_STORE_H_
