#include "tidlist/extent_pager.h"

#include <stdlib.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "common/check.h"
#include "tidlist/tidlist_store.h"

namespace demon {

TidListStoreOptions TidListStoreOptions::FromEnv() {
  TidListStoreOptions options;
  if (const char* env = std::getenv("DEMON_TIDLIST_BUDGET_BYTES")) {
    options.memory_budget_bytes =
        static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }
  if (const char* env = std::getenv("DEMON_TIDLIST_SPILL_DIR")) {
    options.spill_dir = env;
  }
  return options;
}

std::shared_ptr<ExtentPager> ExtentPager::Create(
    const TidListStoreOptions& options) {
  return std::shared_ptr<ExtentPager>(new ExtentPager(options));
}

ExtentPager::ExtentPager(const TidListStoreOptions& options)
    : options_(options) {
  // Distinct pagers may share one explicit spill directory (several
  // monitors configured with the same spill_dir), so spill names carry a
  // process-wide pager id: per-pager sequence numbers alone would collide
  // and one pager's cleanup would delete another's spill file.
  static std::atomic<uint64_t> next_pager_id{1};
  pager_id_ = next_pager_id.fetch_add(1, std::memory_order_relaxed);
}

ExtentPager::~ExtentPager() {
  // Blocks hold a shared_ptr to their pager, so every block has been
  // Forgotten (and its spill file removed) by the time we run; only the
  // directory itself can remain.
  if (owns_spill_dir_) ::rmdir(spill_dir_.c_str());
}

void ExtentPager::set_telemetry(telemetry::TelemetryRegistry* registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  telemetry_ = registry;
  if (registry == nullptr) {
    page_ins_counter_ = nullptr;
    evictions_counter_ = nullptr;
    spilled_bytes_counter_ = nullptr;
    resident_gauge_ = nullptr;
    page_in_seconds_ = nullptr;
    return;
  }
  page_ins_counter_ = registry->counter("tidlist/page_ins");
  evictions_counter_ = registry->counter("tidlist/evictions");
  spilled_bytes_counter_ = registry->counter("tidlist/spilled_bytes");
  resident_gauge_ = registry->gauge("tidlist/resident_bytes");
  page_in_seconds_ = registry->histogram("tidlist/page_in_seconds");
}

void ExtentPager::Adopt(const BlockTidLists* block) {
  std::lock_guard<std::mutex> lock(mutex_);
  blocks_.push_back(block);
  block->lru_stamp_ = ++clock_;
  if (block->payload_.load(std::memory_order_relaxed) != nullptr) {
    const size_t now =
        resident_bytes_.fetch_add(block->payload_bytes_,
                                  std::memory_order_relaxed) +
        block->payload_bytes_;
    if (now > peak_resident_bytes_.load(std::memory_order_relaxed)) {
      peak_resident_bytes_.store(now, std::memory_order_relaxed);
    }
    if (resident_gauge_ != nullptr) {
      resident_gauge_->Set(static_cast<double>(now));
    }
  }
  EvictToBudgetLocked(block);
}

void ExtentPager::Forget(const BlockTidLists* block) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = std::find(blocks_.begin(), blocks_.end(), block);
  if (it == blocks_.end()) return;
  blocks_.erase(it);
  if (block->payload_.load(std::memory_order_relaxed) != nullptr) {
    const size_t now = resident_bytes_.fetch_sub(
                           block->payload_bytes_, std::memory_order_relaxed) -
                       block->payload_bytes_;
    if (resident_gauge_ != nullptr) {
      resident_gauge_->Set(static_cast<double>(now));
    }
  }
  if (!block->spill_path_.empty()) std::remove(block->spill_path_.c_str());
}

void ExtentPager::EnsureResident(const BlockTidLists* block) {
  std::lock_guard<std::mutex> lock(mutex_);
  block->lru_stamp_ = ++clock_;
  if (block->payload_.load(std::memory_order_relaxed) != nullptr) return;
  {
    telemetry::ScopedTimer timer(page_in_seconds_);
    block->FaultInLocked();
  }
  page_ins_.fetch_add(1, std::memory_order_relaxed);
  DEMON_COUNTER_ADD(page_ins_counter_, 1);
  const size_t now = resident_bytes_.fetch_add(block->payload_bytes_,
                                               std::memory_order_relaxed) +
                     block->payload_bytes_;
  if (now > peak_resident_bytes_.load(std::memory_order_relaxed)) {
    peak_resident_bytes_.store(now, std::memory_order_relaxed);
  }
  if (resident_gauge_ != nullptr) {
    resident_gauge_->Set(static_cast<double>(now));
  }
  EvictToBudgetLocked(block);
}

void ExtentPager::OnPayloadRebuilt(const BlockTidLists* block,
                                   size_t old_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  // The caller holds a lease, so the block is resident throughout.
  resident_bytes_.fetch_sub(old_bytes, std::memory_order_relaxed);
  resident_bytes_.fetch_add(block->payload_bytes_,
                            std::memory_order_relaxed);
  if (!block->spill_path_.empty()) {
    std::remove(block->spill_path_.c_str());
    block->spill_path_.clear();
  }
  block->spilled_ = false;
}

void ExtentPager::EvictToBudgetLocked(const BlockTidLists* keep) {
  const size_t budget = options_.memory_budget_bytes;
  while (resident_bytes_.load(std::memory_order_relaxed) > budget) {
    const BlockTidLists* victim = nullptr;
    for (const BlockTidLists* b : blocks_) {
      if (b == keep) continue;
      if (b->payload_.load(std::memory_order_relaxed) == nullptr) continue;
      if (b->pins_.load(std::memory_order_acquire) != 0) continue;
      if (victim == nullptr || b->lru_stamp_ < victim->lru_stamp_) victim = b;
    }
    // No unpinned victim: the budget is a target, not a hard cap — the
    // pinned working set stays resident and the peak metric records it.
    if (victim == nullptr) return;
    if (!victim->spilled_) {
      victim->SpillLocked(NextSpillPathLocked());
      spills_.fetch_add(1, std::memory_order_relaxed);
      DEMON_COUNTER_ADD(spilled_bytes_counter_, victim->payload_bytes_);
    }
    victim->ReleasePayloadLocked();
    const size_t now = resident_bytes_.fetch_sub(
                           victim->payload_bytes_, std::memory_order_relaxed) -
                       victim->payload_bytes_;
    evictions_.fetch_add(1, std::memory_order_relaxed);
    DEMON_COUNTER_ADD(evictions_counter_, 1);
    if (resident_gauge_ != nullptr) {
      resident_gauge_->Set(static_cast<double>(now));
    }
  }
}

std::string ExtentPager::NextSpillPathLocked() {
  if (spill_dir_.empty()) {
    if (!options_.spill_dir.empty()) {
      ::mkdir(options_.spill_dir.c_str(), 0755);  // may already exist
      spill_dir_ = options_.spill_dir;
    } else {
      const char* tmp = std::getenv("TMPDIR");
      std::string templ = std::string(tmp != nullptr ? tmp : "/tmp") +
                          "/demon-tidlists-XXXXXX";
      DEMON_CHECK_MSG(::mkdtemp(templ.data()) != nullptr,
                      "cannot create a TID-list spill directory");
      spill_dir_ = templ;
      owns_spill_dir_ = true;
    }
  }
  char name[96];
  std::snprintf(name, sizeof(name), "/extent-%d-%llu-%llu.tid",
                static_cast<int>(::getpid()),
                static_cast<unsigned long long>(pager_id_),
                static_cast<unsigned long long>(++spill_seq_));
  return spill_dir_ + name;
}

bool ExtentPager::IsResident(const BlockTidLists* block) const {
  return block->payload_.load(std::memory_order_relaxed) != nullptr;
}

void ExtentPager::AuditInto(audit::AuditResult* audit) const {
  std::lock_guard<std::mutex> lock(mutex_);
  constexpr char kModule[] = "tidlist";
  size_t sum = 0;
  for (const BlockTidLists* b : blocks_) {
    const bool resident =
        b->payload_.load(std::memory_order_relaxed) != nullptr;
    if (resident) sum += b->payload_bytes_;
    AUDIT_CHECK(audit, kModule, "tidlist/pager-pinned-resident",
                b->pins_.load(std::memory_order_acquire) == 0 || resident,
                audit::Msg() << "pinned block " << static_cast<const void*>(b)
                             << " is not resident",
                "");
  }
  const size_t accounted = resident_bytes_.load(std::memory_order_relaxed);
  AUDIT_CHECK(audit, kModule, "tidlist/pager-resident-bytes",
              sum == accounted,
              audit::Msg() << "resident byte counter (" << accounted
                           << ") != sum of resident extents (" << sum << ")",
              "");
  AUDIT_CHECK(audit, kModule, "tidlist/pager-peak",
              peak_resident_bytes_.load(std::memory_order_relaxed) >=
                  accounted,
              audit::Msg() << "peak resident bytes below current", "");
}

}  // namespace demon
