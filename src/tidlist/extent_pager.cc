#include "tidlist/extent_pager.h"

#include <stdlib.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "common/check.h"
#include "tidlist/tidlist_store.h"

namespace demon {

namespace {

/// Best-effort unlink: the spill file may legitimately not exist (never
/// spilled, or already invalidated), so a failure is not an error.
void RemoveFileIfPresent(const std::string& path) {
  if (std::remove(path.c_str()) != 0) {
    // Nothing to do — see above.
  }
}

}  // namespace

TidListStoreOptions TidListStoreOptions::FromEnv() {
  TidListStoreOptions options;
  // Startup-time configuration reads; no concurrent setenv in this process.
  const char* budget =
      std::getenv("DEMON_TIDLIST_BUDGET_BYTES");  // NOLINT(concurrency-mt-unsafe)
  if (budget != nullptr) {
    options.memory_budget_bytes =
        static_cast<size_t>(std::strtoull(budget, nullptr, 10));
  }
  const char* dir =
      std::getenv("DEMON_TIDLIST_SPILL_DIR");  // NOLINT(concurrency-mt-unsafe)
  if (dir != nullptr) options.spill_dir = dir;
  return options;
}

std::shared_ptr<ExtentPager> ExtentPager::Create(
    const TidListStoreOptions& options) {
  return std::shared_ptr<ExtentPager>(new ExtentPager(options));
}

ExtentPager::ExtentPager(const TidListStoreOptions& options)
    : options_(options) {
  // Distinct pagers may share one explicit spill directory (several
  // monitors configured with the same spill_dir), so spill names carry a
  // process-wide pager id: per-pager sequence numbers alone would collide
  // and one pager's cleanup would delete another's spill file.
  static std::atomic<uint64_t> next_pager_id{1};
  pager_id_ = next_pager_id.fetch_add(1, std::memory_order_relaxed);
}

ExtentPager::~ExtentPager() {
  // Blocks hold a shared_ptr to their pager, so every block has been
  // Forgotten (and its spill file removed) by the time we run; only the
  // directory itself can remain.
  if (owns_spill_dir_) ::rmdir(spill_dir_.c_str());
}

void ExtentPager::set_telemetry(telemetry::TelemetryRegistry* registry) {
  MutexLock lock(mutex_);
  telemetry_ = registry;
  if (registry == nullptr) {
    page_ins_counter_ = nullptr;
    evictions_counter_ = nullptr;
    spilled_bytes_counter_ = nullptr;
    resident_gauge_ = nullptr;
    page_in_seconds_ = nullptr;
    return;
  }
  // Takes the registry's metrics-map lock under mutex_ — the lock-order
  // edge declared on mutex_ (DEMON_ACQUIRED_BEFORE).
  page_ins_counter_ = registry->counter("tidlist/page_ins");
  evictions_counter_ = registry->counter("tidlist/evictions");
  spilled_bytes_counter_ = registry->counter("tidlist/spilled_bytes");
  resident_gauge_ = registry->gauge("tidlist/resident_bytes");
  page_in_seconds_ = registry->histogram("tidlist/page_in_seconds");
}

ExtentPager::Entry* ExtentPager::FindEntryLocked(const BlockTidLists* block) {
  for (Entry& entry : entries_) {
    if (entry.block == block) return &entry;
  }
  return nullptr;
}

void ExtentPager::Adopt(const BlockTidLists* block) {
  MutexLock lock(mutex_);
  Entry entry;
  entry.block = block;
  entry.lru_stamp = ++clock_;
  entries_.push_back(std::move(entry));
  if (block->payload_.load(std::memory_order_relaxed) != nullptr) {
    const size_t now =
        resident_bytes_.fetch_add(block->payload_bytes_,
                                  std::memory_order_relaxed) +
        block->payload_bytes_;
    if (now > peak_resident_bytes_.load(std::memory_order_relaxed)) {
      peak_resident_bytes_.store(now, std::memory_order_relaxed);
    }
    if (resident_gauge_ != nullptr) {
      resident_gauge_->Set(static_cast<double>(now));
    }
  }
  EvictToBudgetLocked(block);
}

void ExtentPager::Forget(const BlockTidLists* block) {
  MutexLock lock(mutex_);
  const auto it =
      std::find_if(entries_.begin(), entries_.end(),
                   [block](const Entry& e) { return e.block == block; });
  if (it == entries_.end()) return;
  if (block->payload_.load(std::memory_order_relaxed) != nullptr) {
    const size_t now = resident_bytes_.fetch_sub(
                           block->payload_bytes_, std::memory_order_relaxed) -
                       block->payload_bytes_;
    if (resident_gauge_ != nullptr) {
      resident_gauge_->Set(static_cast<double>(now));
    }
  }
  if (!it->spill_path.empty()) RemoveFileIfPresent(it->spill_path);
  entries_.erase(it);
}

void ExtentPager::EnsureResident(const BlockTidLists* block) {
  MutexLock lock(mutex_);
  Entry* entry = FindEntryLocked(block);
  DEMON_CHECK_MSG(entry != nullptr, "EnsureResident on an unadopted block");
  entry->lru_stamp = ++clock_;
  if (block->payload_.load(std::memory_order_relaxed) != nullptr) return;
  DEMON_CHECK_MSG(entry->spilled && !entry->spill_path.empty(),
                  "TID-list fault-in without a spill file");
  {
    telemetry::ScopedTimer timer(page_in_seconds_);
    block->FaultIn(*this, entry->spill_path);
  }
  page_ins_.fetch_add(1, std::memory_order_relaxed);
  DEMON_COUNTER_ADD(page_ins_counter_, 1);
  const size_t now = resident_bytes_.fetch_add(block->payload_bytes_,
                                               std::memory_order_relaxed) +
                     block->payload_bytes_;
  if (now > peak_resident_bytes_.load(std::memory_order_relaxed)) {
    peak_resident_bytes_.store(now, std::memory_order_relaxed);
  }
  if (resident_gauge_ != nullptr) {
    resident_gauge_->Set(static_cast<double>(now));
  }
  EvictToBudgetLocked(block);
}

void ExtentPager::OnPayloadRebuilt(const BlockTidLists* block,
                                   size_t old_bytes) {
  MutexLock lock(mutex_);
  // The caller holds a lease, so the block is resident throughout.
  resident_bytes_.fetch_sub(old_bytes, std::memory_order_relaxed);
  resident_bytes_.fetch_add(block->payload_bytes_,
                            std::memory_order_relaxed);
  Entry* entry = FindEntryLocked(block);
  DEMON_CHECK_MSG(entry != nullptr, "payload rebuild on an unadopted block");
  if (!entry->spill_path.empty()) {
    RemoveFileIfPresent(entry->spill_path);
    entry->spill_path.clear();
  }
  entry->spilled = false;
}

void ExtentPager::EvictToBudgetLocked(const BlockTidLists* keep) {
  const size_t budget = options_.memory_budget_bytes;
  while (resident_bytes_.load(std::memory_order_relaxed) > budget) {
    Entry* victim = nullptr;
    for (Entry& entry : entries_) {
      const BlockTidLists* b = entry.block;
      if (b == keep) continue;
      if (b->payload_.load(std::memory_order_relaxed) == nullptr) continue;
      if (b->pins_.load(std::memory_order_acquire) != 0) continue;
      if (victim == nullptr || entry.lru_stamp < victim->lru_stamp) {
        victim = &entry;
      }
    }
    // No unpinned victim: the budget is a target, not a hard cap — the
    // pinned working set stays resident and the peak metric records it.
    if (victim == nullptr) return;
    if (!victim->spilled) {
      victim->spill_path = NextSpillPathLocked();
      victim->block->Spill(*this, victim->spill_path);
      victim->spilled = true;
      spills_.fetch_add(1, std::memory_order_relaxed);
      DEMON_COUNTER_ADD(spilled_bytes_counter_, victim->block->payload_bytes_);
    }
    victim->block->ReleasePayload(*this);
    const size_t now =
        resident_bytes_.fetch_sub(victim->block->payload_bytes_,
                                  std::memory_order_relaxed) -
        victim->block->payload_bytes_;
    evictions_.fetch_add(1, std::memory_order_relaxed);
    DEMON_COUNTER_ADD(evictions_counter_, 1);
    if (resident_gauge_ != nullptr) {
      resident_gauge_->Set(static_cast<double>(now));
    }
  }
}

std::string ExtentPager::NextSpillPathLocked() {
  if (spill_dir_.empty()) {
    if (!options_.spill_dir.empty()) {
      ::mkdir(options_.spill_dir.c_str(), 0755);  // may already exist
      spill_dir_ = options_.spill_dir;
    } else {
      // TMPDIR is read once, at first spill; no concurrent setenv here.
      const char* tmp = std::getenv("TMPDIR");  // NOLINT(concurrency-mt-unsafe)
      std::string templ = std::string(tmp != nullptr ? tmp : "/tmp") +
                          "/demon-tidlists-XXXXXX";
      DEMON_CHECK_MSG(::mkdtemp(templ.data()) != nullptr,
                      "cannot create a TID-list spill directory");
      spill_dir_ = templ;
      owns_spill_dir_ = true;
    }
  }
  char name[96];
  std::snprintf(name, sizeof(name), "/extent-%d-%llu-%llu.tid",
                static_cast<int>(::getpid()),
                static_cast<unsigned long long>(pager_id_),
                static_cast<unsigned long long>(++spill_seq_));
  return spill_dir_ + name;
}

bool ExtentPager::IsResident(const BlockTidLists* block) const {
  return block->payload_.load(std::memory_order_relaxed) != nullptr;
}

void ExtentPager::AuditInto(audit::AuditResult* audit) const {
  MutexLock lock(mutex_);
  constexpr char kModule[] = "tidlist";
  size_t sum = 0;
  for (const Entry& entry : entries_) {
    const BlockTidLists* b = entry.block;
    const bool resident =
        b->payload_.load(std::memory_order_relaxed) != nullptr;
    if (resident) sum += b->payload_bytes_;
    AUDIT_CHECK(audit, kModule, "tidlist/pager-pinned-resident",
                b->pins_.load(std::memory_order_acquire) == 0 || resident,
                audit::Msg() << "pinned block " << static_cast<const void*>(b)
                             << " is not resident",
                "");
    AUDIT_CHECK(audit, kModule, "tidlist/pager-spill-state",
                entry.spilled == !entry.spill_path.empty(),
                audit::Msg() << "spill flag and spill path disagree for "
                             << static_cast<const void*>(b),
                "");
  }
  const size_t accounted = resident_bytes_.load(std::memory_order_relaxed);
  AUDIT_CHECK(audit, kModule, "tidlist/pager-resident-bytes",
              sum == accounted,
              audit::Msg() << "resident byte counter (" << accounted
                           << ") != sum of resident extents (" << sum << ")",
              "");
  AUDIT_CHECK(audit, kModule, "tidlist/pager-peak",
              peak_resident_bytes_.load(std::memory_order_relaxed) >=
                  accounted,
              audit::Msg() << "peak resident bytes below current", "");
}

}  // namespace demon
