#include "tidlist/tidlist_store.h"

#include <cstdio>

#include "common/check.h"
#include "common/telemetry.h"
#include "persistence/file_header.h"

namespace demon {

std::shared_ptr<const BlockTidLists> BlockTidLists::Build(
    const TransactionBlock& block, size_t num_items,
    const PairMaterializationSpec* pairs) {
  auto lists = std::shared_ptr<BlockTidLists>(new BlockTidLists());
  lists->num_transactions_ = block.size();
  lists->item_lists_.resize(num_items);

  // One scan of the block appends each transaction offset to the list of
  // every item it contains (paper §3.1.1 "materialization of TID-lists").
  const auto& transactions = block.transactions();
  for (size_t offset = 0; offset < transactions.size(); ++offset) {
    for (Item item : transactions[offset].items()) {
      DEMON_CHECK_MSG(item < num_items, "item outside the declared universe");
      lists->item_lists_[item].push_back(static_cast<uint32_t>(offset));
    }
  }
  for (const TidList& list : lists->item_lists_) {
    lists->item_list_slots_ += list.size();
  }

  if (pairs != nullptr) {
    size_t used = 0;
    for (const auto& [a, b] : pairs->pairs) {
      DEMON_CHECK(a != b);
      TidList joint =
          Intersect(lists->item_lists_[a], lists->item_lists_[b]);
      if (used + joint.size() > pairs->budget_slots) {
        // Paper heuristic: take as many highest-priority 2-itemsets as fit.
        continue;
      }
      used += joint.size();
      lists->pair_lists_.emplace(PairKey(a, b), std::move(joint));
    }
    lists->pair_list_slots_ = used;
  }
  return lists;
}

const TidList& BlockTidLists::ItemList(Item item) const {
  DEMON_CHECK(item < item_lists_.size());
  return item_lists_[item];
}

std::vector<std::pair<Item, Item>> BlockTidLists::MaterializedPairs() const {
  std::vector<std::pair<Item, Item>> pairs;
  pairs.reserve(pair_lists_.size());
  for (const auto& [key, list] : pair_lists_) {
    pairs.push_back({static_cast<Item>(key >> 32),
                     static_cast<Item>(key & 0xFFFFFFFFu)});
  }
  return pairs;
}

const TidList* BlockTidLists::PairList(Item a, Item b) const {
  const auto it = pair_lists_.find(PairKey(a, b));
  return it == pair_lists_.end() ? nullptr : &it->second;
}

namespace {

constexpr uint32_t kTidListBlockVersion = 1;

bool WriteU64(std::FILE* f, uint64_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool ReadU64(std::FILE* f, uint64_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}

bool WriteList(std::FILE* f, const TidList& list) {
  if (!WriteU64(f, list.size())) return false;
  if (list.empty()) return true;
  return std::fwrite(list.data(), sizeof(uint32_t), list.size(), f) ==
         list.size();
}

/// `max_slots` bounds the announced length against the file size so a
/// corrupt prefix cannot force a huge allocation.
bool ReadList(std::FILE* f, TidList* list, uint64_t max_slots) {
  uint64_t n = 0;
  if (!ReadU64(f, &n) || n > max_slots) return false;
  list->resize(n);
  if (n == 0) return true;
  return std::fread(list->data(), sizeof(uint32_t), n, f) == n;
}

}  // namespace

Status BlockTidLists::WriteToFile(const std::string& path) const {
  // Member of a storage value type, so no registry to inject — the
  // process-global registry records store I/O instead. Null when the
  // telemetry gate is off, so every instrumentation line below folds away.
  telemetry::TelemetryRegistry* telemetry =
      telemetry::kEnabled ? &telemetry::TelemetryRegistry::Global() : nullptr;
  DEMON_TRACE_SPAN(span, telemetry, "tidlist-write", "io");
  telemetry::ScopedTimer timer(
      telemetry == nullptr ? nullptr
                           : telemetry->histogram("tidlist/write_seconds"));
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  persistence::FileHeader header;
  header.format_id =
      static_cast<uint32_t>(persistence::FormatId::kTidListBlock);
  header.version = kTidListBlockVersion;
  Status header_status = header.WriteTo(f);
  bool ok = header_status.ok() && WriteU64(f, num_transactions_) &&
            WriteU64(f, item_lists_.size()) &&
            WriteU64(f, pair_lists_.size());
  uint64_t slots = 0;
  for (size_t i = 0; ok && i < item_lists_.size(); ++i) {
    ok = WriteList(f, item_lists_[i]);
    slots += item_lists_[i].size();
  }
  for (auto it = pair_lists_.begin(); ok && it != pair_lists_.end(); ++it) {
    ok = WriteU64(f, it->first) && WriteList(f, it->second);
    slots += it->second.size();
  }
  std::fclose(f);
  if (!header_status.ok()) return header_status;
  if (!ok) return Status::IoError("short write: " + path);
  DEMON_COUNTER_ADD(telemetry->counter("tidlist/files_written"), 1);
  DEMON_COUNTER_ADD(telemetry->counter("tidlist/slots_written"), slots);
  return Status::OK();
}

Result<std::shared_ptr<const BlockTidLists>> BlockTidLists::ReadFromFile(
    const std::string& path) {
  telemetry::TelemetryRegistry* telemetry =
      telemetry::kEnabled ? &telemetry::TelemetryRegistry::Global() : nullptr;
  DEMON_TRACE_SPAN(span, telemetry, "tidlist-read", "io");
  telemetry::ScopedTimer timer(
      telemetry == nullptr ? nullptr
                           : telemetry->histogram("tidlist/read_seconds"));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);
  auto header = persistence::FileHeader::ReadFrom(
      f, persistence::FormatId::kTidListBlock, kTidListBlockVersion, path);
  if (!header.ok()) {
    std::fclose(f);
    return header.status();
  }
  std::fseek(f, 0, SEEK_END);
  const uint64_t file_bytes = static_cast<uint64_t>(std::ftell(f));
  const uint64_t max_slots = file_bytes / sizeof(uint32_t);
  // Every list costs at least its 8-byte length prefix, so list counts
  // beyond file_bytes/8 are corrupt; checking before the resizes keeps bad
  // input from forcing huge allocations.
  const uint64_t max_lists = file_bytes / sizeof(uint64_t);
  std::fseek(f, static_cast<long>(persistence::FileHeader::kBytes), SEEK_SET);
  auto lists = std::shared_ptr<BlockTidLists>(new BlockTidLists());
  uint64_t num_transactions = 0;
  uint64_t num_items = 0;
  uint64_t num_pairs = 0;
  bool ok = ReadU64(f, &num_transactions) && ReadU64(f, &num_items) &&
            ReadU64(f, &num_pairs) && num_items <= max_lists &&
            num_pairs <= max_lists;
  if (ok) {
    lists->num_transactions_ = num_transactions;
    lists->item_lists_.resize(num_items);
    for (size_t i = 0; ok && i < num_items; ++i) {
      ok = ReadList(f, &lists->item_lists_[i], max_slots);
      if (ok) lists->item_list_slots_ += lists->item_lists_[i].size();
    }
    for (size_t p = 0; ok && p < num_pairs; ++p) {
      uint64_t key = 0;
      TidList list;
      ok = ReadU64(f, &key) && ReadList(f, &list, max_slots);
      if (ok) {
        lists->pair_list_slots_ += list.size();
        lists->pair_lists_.emplace(key, std::move(list));
      }
    }
  }
  std::fclose(f);
  if (!ok) return Status::DataLoss("corrupt TID-list file: " + path);
  DEMON_COUNTER_ADD(telemetry->counter("tidlist/files_read"), 1);
  DEMON_COUNTER_ADD(
      telemetry->counter("tidlist/slots_read"),
      lists->item_list_slots_ + lists->pair_list_slots_);
  return std::shared_ptr<const BlockTidLists>(std::move(lists));
}

namespace {

constexpr char kModule[] = "tidlist";

/// Renders the first entries of a list for a violation's state dump.
std::string DumpList(const TidList& list) {
  audit::Msg msg;
  msg << "size=" << list.size() << " [";
  const size_t shown = list.size() < 16 ? list.size() : 16;
  for (size_t i = 0; i < shown; ++i) {
    if (i > 0) msg << ", ";
    msg << list[i];
  }
  if (shown < list.size()) msg << ", ...";
  msg << "]";
  return msg;
}

/// Checks one list for strict ascent and offset range.
void AuditOneList(const std::string& label, const TidList& list,
                  size_t num_transactions, audit::AuditResult* audit) {
  for (size_t i = 1; i < list.size(); ++i) {
    if (list[i - 1] >= list[i]) {
      AUDIT_FAIL(audit, kModule, "tidlist/sorted-unique",
                 audit::Msg() << label << " not strictly increasing at index "
                              << i << " (" << list[i - 1] << " then "
                              << list[i] << ")",
                 DumpList(list));
      break;
    }
  }
  if (!list.empty() && list.back() >= num_transactions) {
    AUDIT_FAIL(audit, kModule, "tidlist/offset-range",
               audit::Msg() << label << " holds offset " << list.back()
                            << " >= block size " << num_transactions,
               DumpList(list));
  }
}

}  // namespace

void BlockTidLists::AuditInto(audit::AuditResult* audit) const {
  size_t item_slots = 0;
  for (size_t item = 0; item < item_lists_.size(); ++item) {
    const TidList& list = item_lists_[item];
    item_slots += list.size();
    AuditOneList(audit::Msg() << "item " << item << " list", list,
                 num_transactions_, audit);
  }
  AUDIT_CHECK(audit, kModule, "tidlist/item-slots",
              item_slots == item_list_slots_,
              audit::Msg() << "item_list_slots accounting (" << item_list_slots_
                           << ") != sum of list sizes (" << item_slots << ")",
              "");

  size_t pair_slots = 0;
  for (const auto& [key, list] : pair_lists_) {
    const Item a = static_cast<Item>(key >> 32);
    const Item b = static_cast<Item>(key & 0xFFFFFFFFu);
    pair_slots += list.size();
    const std::string label = audit::Msg() << "pair {" << a << "," << b
                                           << "} list";
    AUDIT_CHECK(audit, kModule, "tidlist/pair-key",
                a < b && b < item_lists_.size(),
                audit::Msg() << label << " has a malformed key", "");
    if (a >= b || b >= item_lists_.size()) continue;
    AuditOneList(label, list, num_transactions_, audit);
    // Store/index consistency: a materialized pair list must equal the
    // intersection of its item lists — ECUT+ serves either interchangeably.
    if (list != Intersect(item_lists_[a], item_lists_[b])) {
      AUDIT_FAIL(audit, kModule, "tidlist/pair-is-intersection",
                 audit::Msg() << label
                              << " differs from the item-list intersection",
                 DumpList(list));
    }
  }
  AUDIT_CHECK(audit, kModule, "tidlist/pair-slots",
              pair_slots == pair_list_slots_,
              audit::Msg() << "pair_list_slots accounting (" << pair_list_slots_
                           << ") != sum of pair list sizes (" << pair_slots
                           << ")",
              "");
}

void TidListStore::AuditInto(audit::AuditResult* audit) const {
  for (size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i] == nullptr) {
      AUDIT_FAIL(audit, "tidlist", "tidlist/store-null-block",
                 audit::Msg() << "store holds a null block at position " << i,
                 "");
      continue;
    }
    blocks_[i]->AuditInto(audit);
  }
}

void TidListStore::DropOldest(size_t count) {
  DEMON_CHECK(count <= blocks_.size());
  blocks_.erase(blocks_.begin(), blocks_.begin() + count);
}

void TidListStore::DropAt(size_t index) {
  DEMON_CHECK(index < blocks_.size());
  blocks_.erase(blocks_.begin() + index);
}

size_t TidListStore::TotalTransactions() const {
  size_t total = 0;
  for (const auto& b : blocks_) total += b->num_transactions();
  return total;
}

size_t TidListStore::TotalItemSlots() const {
  size_t total = 0;
  for (const auto& b : blocks_) total += b->item_list_slots();
  return total;
}

size_t TidListStore::TotalPairSlots() const {
  size_t total = 0;
  for (const auto& b : blocks_) total += b->pair_list_slots();
  return total;
}

}  // namespace demon
