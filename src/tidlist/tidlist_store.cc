#include "tidlist/tidlist_store.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <unordered_set>

#include "common/check.h"
#include "persistence/file_header.h"

namespace demon {

namespace {

/// Version 2 stores encoded extents (raw / delta / bitmap) behind an
/// always-resident directory; version 1 (length-prefixed uint32 dumps) is
/// still read and re-encoded on load.
constexpr uint32_t kTidListBlockVersion = 2;

constexpr size_t kItemEntryBytes = 24;  // offset, bytes, count, encoding
constexpr size_t kPairEntryBytes = 32;  // key + the same
constexpr size_t kCountsBytes = 4 * sizeof(uint64_t);

bool WriteU64(std::FILE* f, uint64_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool WriteU32(std::FILE* f, uint32_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool ReadU64(std::FILE* f, uint64_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}

bool ReadU32(std::FILE* f, uint32_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}

/// `max_slots` bounds the announced length against the file size so a
/// corrupt prefix cannot force a huge allocation (v1 reader).
bool ReadList(std::FILE* f, TidList* list, uint64_t max_slots) {
  uint64_t n = 0;
  if (!ReadU64(f, &n) || n > max_slots) return false;
  list->resize(n);
  if (n == 0) return true;
  return std::fread(list->data(), sizeof(uint32_t), n, f) == n;
}

}  // namespace

// ---------------------------------------------------------------------------
// TidListLease

void TidListLease::Release() {
  if (block_ != nullptr) {
    block_->Unpin();
    block_ = nullptr;
  }
}

// ---------------------------------------------------------------------------
// BlockTidLists: build + directory

std::shared_ptr<const BlockTidLists> BlockTidLists::Build(
    const TransactionBlock& block, size_t num_items,
    const PairMaterializationSpec* pairs) {
  auto lists = std::shared_ptr<BlockTidLists>(new BlockTidLists());
  lists->num_transactions_ = block.size();
  DEMON_CHECK_MSG(block.size() < UINT32_MAX,
                  "block too large for 32-bit offsets");

  // One scan of the block appends each transaction offset to the list of
  // every item it contains (paper §3.1.1 "materialization of TID-lists").
  std::vector<TidList> item_lists(num_items);
  const auto& transactions = block.transactions();
  for (size_t offset = 0; offset < transactions.size(); ++offset) {
    for (Item item : transactions[offset].items()) {
      DEMON_CHECK_MSG(item < num_items, "item outside the declared universe");
      item_lists[item].push_back(static_cast<uint32_t>(offset));
    }
  }
  for (const TidList& list : item_lists) {
    lists->item_list_slots_ += list.size();
  }

  std::vector<std::pair<uint64_t, TidList>> pair_lists;
  if (pairs != nullptr) {
    std::unordered_set<uint64_t> seen;
    size_t used = 0;
    for (const auto& [a, b] : pairs->pairs) {
      DEMON_CHECK(a != b);
      const uint64_t key = PairKey(a, b);
      if (!seen.insert(key).second) continue;
      TidList joint = Intersect(item_lists[a], item_lists[b]);
      if (used + joint.size() > pairs->budget_slots) {
        // Paper heuristic: take as many highest-priority 2-itemsets as fit.
        continue;
      }
      used += joint.size();
      pair_lists.emplace_back(key, std::move(joint));
    }
    lists->pair_list_slots_ = used;
  }
  std::sort(pair_lists.begin(), pair_lists.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  lists->EncodePayload(item_lists, pair_lists);
  return lists;
}

void BlockTidLists::EncodePayload(
    const std::vector<TidList>& item_lists,
    const std::vector<std::pair<uint64_t, TidList>>& pair_lists,
    size_t force_raw_item) {
  const uint32_t u = universe();
  items_.assign(item_lists.size(), Extent{});
  pair_extents_.clear();
  std::vector<uint8_t> payload;
  const auto append = [&payload](const EncodedTidList& enc) {
    // 8-byte alignment lets the raw kernels load uint32s and the bitmap
    // helpers read words straight out of the (possibly mmapped) extent.
    while (payload.size() % 8 != 0) payload.push_back(0);
    Extent ex;
    ex.offset = payload.size();
    ex.bytes = enc.bytes.size();
    ex.count = enc.num_tids;
    ex.encoding = enc.encoding;
    payload.insert(payload.end(), enc.bytes.begin(), enc.bytes.end());
    return ex;
  };
  for (size_t i = 0; i < item_lists.size(); ++i) {
    items_[i] = append(i == force_raw_item
                           ? EncodeTidListAs(TidEncoding::kRaw, item_lists[i],
                                             u)
                           : EncodeTidList(item_lists[i], u));
  }
  for (const auto& [key, list] : pair_lists) {
    pair_extents_.emplace(key, append(EncodeTidList(list, u)));
  }
  AdoptPayload(std::move(payload));
}

void BlockTidLists::AdoptPayload(std::vector<uint8_t> payload) {
  // A non-empty payload keeps `resident payload <=> payload_ != nullptr`
  // unconditional (empty vectors may hand out null data()).
  if (payload.empty()) payload.push_back(0);
  payload_bytes_ = payload.size();
  owned_ = std::move(payload);
  payload_.store(owned_.data(), std::memory_order_release);
}

BlockTidLists::~BlockTidLists() {
  if (pager_ != nullptr) pager_->Forget(this);
  if (map_base_ != nullptr) ::munmap(map_base_, map_bytes_);
}

size_t BlockTidLists::ItemListSize(Item item) const {
  DEMON_CHECK(item < items_.size());
  return items_[item].count;
}

TidEncoding BlockTidLists::ItemListEncoding(Item item) const {
  DEMON_CHECK(item < items_.size());
  return items_[item].encoding;
}

bool BlockTidLists::HasPairList(Item a, Item b) const {
  return pair_extents_.count(PairKey(a, b)) > 0;
}

size_t BlockTidLists::PairListSize(Item a, Item b) const {
  const auto it = pair_extents_.find(PairKey(a, b));
  return it == pair_extents_.end() ? 0 : it->second.count;
}

std::vector<std::pair<Item, Item>> BlockTidLists::MaterializedPairs() const {
  std::vector<std::pair<Item, Item>> pairs;
  pairs.reserve(pair_extents_.size());
  for (const auto& [key, extent] : pair_extents_) {
    pairs.push_back({static_cast<Item>(key >> 32),
                     static_cast<Item>(key & 0xFFFFFFFFu)});
  }
  return pairs;
}

size_t BlockTidLists::EncodingCensus(TidEncoding encoding) const {
  size_t n = 0;
  for (const Extent& ex : items_) n += ex.encoding == encoding ? 1 : 0;
  for (const auto& [key, ex] : pair_extents_) {
    n += ex.encoding == encoding ? 1 : 0;
  }
  return n;
}

// ---------------------------------------------------------------------------
// BlockTidLists: payload access

TidListView BlockTidLists::ViewOf(const Extent& extent) const {
  if (extent.bytes == 0) {
    return TidListView{extent.encoding, extent.count, universe(), nullptr, 0};
  }
  const uint8_t* base = payload_.load(std::memory_order_acquire);
  DEMON_CHECK_MSG(base != nullptr,
                  "TID-list payload accessed without a lease");
  return TidListView{extent.encoding, extent.count, universe(),
                     base + extent.offset, static_cast<size_t>(extent.bytes)};
}

TidListView BlockTidLists::ItemView(Item item) const {
  DEMON_CHECK(item < items_.size());
  return ViewOf(items_[item]);
}

TidListView BlockTidLists::PairView(Item a, Item b) const {
  const auto it = pair_extents_.find(PairKey(a, b));
  DEMON_CHECK_MSG(it != pair_extents_.end(), "pair not materialized");
  return ViewOf(it->second);
}

TidList BlockTidLists::MaterializeItemList(Item item) const {
  TidListLease lease = Lease();
  TidList out;
  MaterializeInto(ItemView(item), &out);
  return out;
}

TidList BlockTidLists::MaterializePairList(Item a, Item b) const {
  TidListLease lease = Lease();
  TidList out;
  MaterializeInto(PairView(a, b), &out);
  return out;
}

const BlockTidLists* BlockTidLists::Pin() const {
  if (pager_ == nullptr) return nullptr;  // unmanaged: always resident
  // The increment is ordered before EnsureResident's residency check under
  // the pager mutex, so an evictor that misses this pin is followed by a
  // fault-in before any view is taken.
  pins_.fetch_add(1, std::memory_order_acq_rel);
  pager_->EnsureResident(this);
  return this;
}

void BlockTidLists::Unpin() const {
  pins_.fetch_sub(1, std::memory_order_release);
}

void BlockTidLists::AttachPager(std::shared_ptr<ExtentPager> pager) const {
  if (pager_ != nullptr || pager == nullptr) return;
  pager_ = std::move(pager);
  pager_->Adopt(this);
}

void BlockTidLists::FaultIn(const ExtentPager& pager,
                            const std::string& spill_path) const {
  // The REQUIRES annotation proved the caller holds pager.mutex_; the
  // runtime check plus assertion bridge that to pager_->mutex_, which the
  // analysis cannot know is the same lock.
  DEMON_CHECK_MSG(&pager == pager_.get(),
                  "fault-in driven by a foreign pager");
  pager_->mutex_.AssertHeld();
  const uint64_t payload_off = PayloadFileOffset();
  const size_t total = static_cast<size_t>(payload_off) + payload_bytes_;
  const int fd = ::open(spill_path.c_str(), O_RDONLY);
  DEMON_CHECK_MSG(fd >= 0, "cannot open a TID-list spill file");
  void* base = ::mmap(nullptr, total, PROT_READ, MAP_PRIVATE, fd, 0);
  if (base != MAP_FAILED) {
    ::close(fd);
    map_base_ = base;
    map_bytes_ = total;
    payload_.store(static_cast<const uint8_t*>(base) + payload_off,
                   std::memory_order_release);
    return;
  }
  // mmap unavailable (exotic filesystems): plain read fallback.
  owned_.resize(payload_bytes_);
  size_t done = 0;
  while (done < payload_bytes_) {
    const ssize_t n = ::pread(fd, owned_.data() + done, payload_bytes_ - done,
                              static_cast<off_t>(payload_off + done));
    DEMON_CHECK_MSG(n > 0, "short read from a TID-list spill file");
    done += static_cast<size_t>(n);
  }
  ::close(fd);
  payload_.store(owned_.data(), std::memory_order_release);
}

void BlockTidLists::Spill(const ExtentPager& pager,
                          const std::string& path) const {
  DEMON_CHECK_MSG(&pager == pager_.get(), "spill driven by a foreign pager");
  pager_->mutex_.AssertHeld();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  DEMON_CHECK_MSG(f != nullptr, "cannot open a TID-list spill file for write");
  const Status status = WriteContents(f, path);
  const bool closed = std::fclose(f) == 0;
  DEMON_CHECK_MSG(status.ok() && closed, "TID-list spill write failed");
}

void BlockTidLists::ReleasePayload(const ExtentPager& pager) const {
  DEMON_CHECK_MSG(&pager == pager_.get(),
                  "eviction driven by a foreign pager");
  pager_->mutex_.AssertHeld();
  payload_.store(nullptr, std::memory_order_release);
  if (map_base_ != nullptr) {
    ::munmap(map_base_, map_bytes_);
    map_base_ = nullptr;
    map_bytes_ = 0;
  }
  std::vector<uint8_t>().swap(owned_);
}

void BlockTidLists::SetItemListForTest(Item item, const TidList& list) {
  DEMON_CHECK(item < items_.size());
  TidListLease lease = Lease();
  const size_t old_bytes = payload_bytes_;
  std::vector<TidList> item_lists(items_.size());
  for (size_t i = 0; i < items_.size(); ++i) {
    if (i == item) {
      item_lists[i] = list;
    } else {
      MaterializeInto(ViewOf(items_[i]), &item_lists[i]);
    }
  }
  std::vector<uint64_t> keys;
  keys.reserve(pair_extents_.size());
  for (const auto& [key, extent] : pair_extents_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  std::vector<std::pair<uint64_t, TidList>> pair_lists;
  pair_lists.reserve(keys.size());
  for (uint64_t key : keys) {
    TidList decoded;
    MaterializeInto(ViewOf(pair_extents_.find(key)->second), &decoded);
    pair_lists.emplace_back(key, std::move(decoded));
  }
  if (map_base_ != nullptr) {
    ::munmap(map_base_, map_bytes_);
    map_base_ = nullptr;
    map_bytes_ = 0;
  }
  EncodePayload(item_lists, pair_lists, item);
  if (pager_ != nullptr) pager_->OnPayloadRebuilt(this, old_bytes);
}

// ---------------------------------------------------------------------------
// BlockTidLists: persistence

uint64_t BlockTidLists::PayloadFileOffset() const {
  return persistence::FileHeader::kBytes + kCountsBytes +
         items_.size() * kItemEntryBytes +
         pair_extents_.size() * kPairEntryBytes;
}

Status BlockTidLists::WriteContents(std::FILE* f,
                                    const std::string& path) const {
  persistence::FileHeader header;
  header.format_id =
      static_cast<uint32_t>(persistence::FormatId::kTidListBlock);
  header.version = kTidListBlockVersion;
  DEMON_RETURN_NOT_OK(header.WriteTo(f));
  bool ok = WriteU64(f, num_transactions_) && WriteU64(f, items_.size()) &&
            WriteU64(f, pair_extents_.size()) &&
            WriteU64(f, payload_bytes_);
  const auto write_extent = [f](const Extent& ex) {
    return WriteU64(f, ex.offset) && WriteU64(f, ex.bytes) &&
           WriteU32(f, ex.count) &&
           WriteU32(f, static_cast<uint32_t>(ex.encoding));
  };
  for (size_t i = 0; ok && i < items_.size(); ++i) {
    ok = write_extent(items_[i]);
  }
  std::vector<uint64_t> keys;
  keys.reserve(pair_extents_.size());
  for (const auto& [key, extent] : pair_extents_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (size_t p = 0; ok && p < keys.size(); ++p) {
    ok = WriteU64(f, keys[p]) &&
         write_extent(pair_extents_.find(keys[p])->second);
  }
  if (ok && payload_bytes_ > 0) {
    const uint8_t* base = payload_.load(std::memory_order_acquire);
    DEMON_CHECK_MSG(base != nullptr, "serializing an evicted payload");
    ok = std::fwrite(base, 1, payload_bytes_, f) == payload_bytes_;
  }
  if (!ok) return Status::IoError("short write: " + path);
  return Status::OK();
}

Status BlockTidLists::WriteToFile(const std::string& path) const {
  // Member of a storage value type, so no registry to inject — the
  // process-global registry records store I/O instead. Null when the
  // telemetry gate is off, so every instrumentation line below folds away.
  telemetry::TelemetryRegistry* telemetry =
      telemetry::kEnabled ? &telemetry::TelemetryRegistry::Global() : nullptr;
  DEMON_TRACE_SPAN(span, telemetry, "tidlist-write", "io");
  telemetry::ScopedTimer timer(
      telemetry == nullptr ? nullptr
                           : telemetry->histogram("tidlist/write_seconds"));
  TidListLease lease = Lease();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open for write: " + path);
  Status status = WriteContents(f, path);
  if (std::fclose(f) != 0 && status.ok()) {
    status = Status::IoError("close failed: " + path);
  }
  DEMON_RETURN_NOT_OK(status);
  DEMON_COUNTER_ADD(telemetry->counter("tidlist/files_written"), 1);
  DEMON_COUNTER_ADD(telemetry->counter("tidlist/slots_written"),
                    item_list_slots_ + pair_list_slots_);
  return Status::OK();
}

Result<std::shared_ptr<const BlockTidLists>> BlockTidLists::ReadFromFile(
    const std::string& path) {
  telemetry::TelemetryRegistry* telemetry =
      telemetry::kEnabled ? &telemetry::TelemetryRegistry::Global() : nullptr;
  DEMON_TRACE_SPAN(span, telemetry, "tidlist-read", "io");
  telemetry::ScopedTimer timer(
      telemetry == nullptr ? nullptr
                           : telemetry->histogram("tidlist/read_seconds"));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open for read: " + path);
  auto header = persistence::FileHeader::ReadFrom(
      f, persistence::FormatId::kTidListBlock, kTidListBlockVersion, path);
  if (!header.ok()) {
    std::fclose(f);
    return header.status();
  }
  std::fseek(f, 0, SEEK_END);
  const uint64_t file_bytes = static_cast<uint64_t>(std::ftell(f));
  std::fseek(f, static_cast<long>(persistence::FileHeader::kBytes), SEEK_SET);
  auto lists = std::shared_ptr<BlockTidLists>(new BlockTidLists());
  const Status corrupt = Status::DataLoss("corrupt TID-list file: " + path);

  if (header.value().version == 1) {
    // Legacy bulk uint32 dump: parse, then re-encode in memory.
    const uint64_t max_slots = file_bytes / sizeof(uint32_t);
    const uint64_t max_lists = file_bytes / sizeof(uint64_t);
    uint64_t num_transactions = 0;
    uint64_t num_items = 0;
    uint64_t num_pairs = 0;
    bool ok = ReadU64(f, &num_transactions) && ReadU64(f, &num_items) &&
              ReadU64(f, &num_pairs) && num_items <= max_lists &&
              num_pairs <= max_lists && num_transactions < UINT32_MAX;
    std::vector<TidList> item_lists;
    std::vector<std::pair<uint64_t, TidList>> pair_lists;
    if (ok) {
      lists->num_transactions_ = num_transactions;
      item_lists.resize(num_items);
      for (size_t i = 0; ok && i < num_items; ++i) {
        ok = ReadList(f, &item_lists[i], max_slots);
        if (ok) lists->item_list_slots_ += item_lists[i].size();
      }
      for (size_t p = 0; ok && p < num_pairs; ++p) {
        uint64_t key = 0;
        TidList list;
        ok = ReadU64(f, &key) && ReadList(f, &list, max_slots);
        if (ok) {
          lists->pair_list_slots_ += list.size();
          pair_lists.emplace_back(key, std::move(list));
        }
      }
    }
    std::fclose(f);
    if (!ok) return corrupt;
    // Re-encoding asserts offsets < universe; validate first to keep
    // corrupt files on the DataLoss path instead of aborting.
    for (const TidList& list : item_lists) {
      for (size_t i = 0; i < list.size(); ++i) {
        if ((i > 0 && list[i - 1] >= list[i]) ||
            list[i] >= lists->num_transactions_) {
          return corrupt;
        }
      }
    }
    for (const auto& [key, list] : pair_lists) {
      for (size_t i = 0; i < list.size(); ++i) {
        if ((i > 0 && list[i - 1] >= list[i]) ||
            list[i] >= lists->num_transactions_) {
          return corrupt;
        }
      }
    }
    std::sort(pair_lists.begin(), pair_lists.end(),
              [](const auto& x, const auto& y) { return x.first < y.first; });
    lists->EncodePayload(item_lists, pair_lists);
  } else {
    uint64_t num_transactions = 0;
    uint64_t num_items = 0;
    uint64_t num_pairs = 0;
    uint64_t payload_bytes = 0;
    bool ok = ReadU64(f, &num_transactions) && ReadU64(f, &num_items) &&
              ReadU64(f, &num_pairs) && ReadU64(f, &payload_bytes) &&
              num_items <= file_bytes / kItemEntryBytes &&
              num_pairs <= file_bytes / kPairEntryBytes &&
              payload_bytes <= file_bytes &&
              num_transactions < UINT32_MAX;
    if (ok) {
      lists->num_transactions_ = num_transactions;
      lists->items_.resize(num_items);
      const auto read_extent = [&](Extent* ex) {
        uint64_t offset = 0;
        uint64_t bytes = 0;
        uint32_t count = 0;
        uint32_t encoding = 0;
        if (!ReadU64(f, &offset) || !ReadU64(f, &bytes) ||
            !ReadU32(f, &count) || !ReadU32(f, &encoding)) {
          return false;
        }
        if (encoding >= kNumTidEncodings || offset > payload_bytes ||
            bytes > payload_bytes - offset) {
          return false;
        }
        ex->offset = offset;
        ex->bytes = bytes;
        ex->count = count;
        ex->encoding = static_cast<TidEncoding>(encoding);
        return true;
      };
      for (size_t i = 0; ok && i < num_items; ++i) {
        ok = read_extent(&lists->items_[i]);
        if (ok) lists->item_list_slots_ += lists->items_[i].count;
      }
      for (size_t p = 0; ok && p < num_pairs; ++p) {
        uint64_t key = 0;
        Extent ex;
        ok = ReadU64(f, &key) && read_extent(&ex);
        if (ok) {
          const Item a = static_cast<Item>(key >> 32);
          const Item b = static_cast<Item>(key & 0xFFFFFFFFu);
          ok = a < b && b < num_items;
        }
        if (ok) {
          lists->pair_list_slots_ += ex.count;
          lists->pair_extents_.emplace(key, ex);
        }
      }
    }
    std::vector<uint8_t> payload_image;
    if (ok) {
      payload_image.resize(payload_bytes);
      ok = payload_bytes == 0 ||
           std::fread(payload_image.data(), 1, payload_bytes, f) ==
               payload_bytes;
    }
    std::fclose(f);
    if (!ok) return corrupt;
    lists->AdoptPayload(std::move(payload_image));
    // Decode-validate every extent: damaged payloads surface DataLoss here
    // instead of garbage counts later.
    TidList decoded;
    for (size_t i = 0; i < lists->items_.size(); ++i) {
      const Status status =
          DecodeTidList(lists->ViewOf(lists->items_[i]), &decoded);
      if (!status.ok()) return corrupt;
    }
    for (const auto& [key, ex] : lists->pair_extents_) {
      const Status status = DecodeTidList(lists->ViewOf(ex), &decoded);
      if (!status.ok()) return corrupt;
    }
  }
  DEMON_COUNTER_ADD(telemetry->counter("tidlist/files_read"), 1);
  DEMON_COUNTER_ADD(telemetry->counter("tidlist/slots_read"),
                    lists->item_list_slots_ + lists->pair_list_slots_);
  return std::shared_ptr<const BlockTidLists>(std::move(lists));
}

// ---------------------------------------------------------------------------
// Audits

namespace {

constexpr char kModule[] = "tidlist";

/// Renders the first entries of a list for a violation's state dump.
std::string DumpList(const TidList& list) {
  audit::Msg msg;
  msg << "size=" << list.size() << " [";
  const size_t shown = list.size() < 16 ? list.size() : 16;
  for (size_t i = 0; i < shown; ++i) {
    if (i > 0) msg << ", ";
    msg << list[i];
  }
  if (shown < list.size()) msg << ", ...";
  msg << "]";
  return msg;
}

/// True when `list` is sorted strictly increasing with offsets in range —
/// the gate for re-encode checks, which assert on malformed input.
bool ListStructureOk(const TidList& list, size_t num_transactions) {
  for (size_t i = 0; i < list.size(); ++i) {
    if (i > 0 && list[i - 1] >= list[i]) return false;
    if (list[i] >= num_transactions) return false;
  }
  return true;
}

/// Checks one list for strict ascent and offset range.
void AuditOneList(const std::string& label, const TidList& list,
                  size_t num_transactions, audit::AuditResult* audit) {
  for (size_t i = 1; i < list.size(); ++i) {
    if (list[i - 1] >= list[i]) {
      AUDIT_FAIL(audit, kModule, "tidlist/sorted-unique",
                 audit::Msg() << label << " not strictly increasing at index "
                              << i << " (" << list[i - 1] << " then "
                              << list[i] << ")",
                 DumpList(list));
      break;
    }
  }
  if (!list.empty() && list.back() >= num_transactions) {
    AUDIT_FAIL(audit, kModule, "tidlist/offset-range",
               audit::Msg() << label << " holds offset " << list.back()
                            << " >= block size " << num_transactions,
               DumpList(list));
  }
}

}  // namespace

void BlockTidLists::AuditInto(audit::AuditResult* audit) const {
  TidListLease lease = Lease();
  size_t item_slots = 0;
  TidList decoded;
  // A few structurally valid item lists feed the cross-encoding kernel
  // agreement check below.
  std::vector<TidList> kernel_sample;
  for (size_t item = 0; item < items_.size(); ++item) {
    const Extent& ex = items_[item];
    MaterializeInto(ViewOf(ex), &decoded);
    item_slots += decoded.size();
    const std::string label = audit::Msg() << "item " << item << " list";
    AuditOneList(label, decoded, num_transactions_, audit);
    AUDIT_CHECK(audit, kModule, "tidlist/directory-count",
                decoded.size() == ex.count,
                audit::Msg() << label << " decodes to " << decoded.size()
                             << " tids but the directory says " << ex.count,
                DumpList(decoded));
    if (ListStructureOk(decoded, num_transactions_)) {
      // Encoding is deterministic, so a stored extent must equal the
      // re-encoding of its own decode.
      const EncodedTidList enc =
          EncodeTidListAs(ex.encoding, decoded, universe());
      const TidListView view = ViewOf(ex);
      const bool same =
          enc.bytes.size() == view.bytes &&
          (view.bytes == 0 ||
           std::memcmp(enc.bytes.data(), view.data, view.bytes) == 0);
      AUDIT_CHECK(audit, kModule, "tidlist/encode-roundtrip", same,
                  audit::Msg() << label << " extent differs from the "
                               << TidEncodingName(ex.encoding)
                               << " re-encoding of its decode",
                  DumpList(decoded));
      if (!decoded.empty() && kernel_sample.size() < 4) {
        kernel_sample.push_back(decoded);
      }
    }
  }
  AUDIT_CHECK(audit, kModule, "tidlist/item-slots",
              item_slots == item_list_slots_,
              audit::Msg() << "item_list_slots accounting (" << item_list_slots_
                           << ") != sum of list sizes (" << item_slots << ")",
              "");

  size_t pair_slots = 0;
  TidList item_a;
  TidList item_b;
  for (const auto& [key, ex] : pair_extents_) {
    const Item a = static_cast<Item>(key >> 32);
    const Item b = static_cast<Item>(key & 0xFFFFFFFFu);
    MaterializeInto(ViewOf(ex), &decoded);
    pair_slots += decoded.size();
    const std::string label = audit::Msg() << "pair {" << a << "," << b
                                           << "} list";
    AUDIT_CHECK(audit, kModule, "tidlist/pair-key",
                a < b && b < items_.size(),
                audit::Msg() << label << " has a malformed key", "");
    if (a >= b || b >= items_.size()) continue;
    AuditOneList(label, decoded, num_transactions_, audit);
    AUDIT_CHECK(audit, kModule, "tidlist/directory-count",
                decoded.size() == ex.count,
                audit::Msg() << label << " decodes to " << decoded.size()
                             << " tids but the directory says " << ex.count,
                DumpList(decoded));
    // Store/index consistency: a materialized pair list must equal the
    // intersection of its item lists — ECUT+ serves either interchangeably.
    MaterializeInto(ViewOf(items_[a]), &item_a);
    MaterializeInto(ViewOf(items_[b]), &item_b);
    if (decoded != Intersect(item_a, item_b)) {
      AUDIT_FAIL(audit, kModule, "tidlist/pair-is-intersection",
                 audit::Msg() << label
                              << " differs from the item-list intersection",
                 DumpList(decoded));
    }
  }
  AUDIT_CHECK(audit, kModule, "tidlist/pair-slots",
              pair_slots == pair_list_slots_,
              audit::Msg() << "pair_list_slots accounting (" << pair_list_slots_
                           << ") != sum of pair list sizes (" << pair_slots
                           << ")",
              "");

  // Cross-encoding agreement: every kernel pair must produce the raw-merge
  // intersection on sampled lists.
  TidList kernel_out;
  for (size_t s = 0; s + 1 < kernel_sample.size(); ++s) {
    const TidList& la = kernel_sample[s];
    const TidList& lb = kernel_sample[s + 1];
    const TidList expected = Intersect(la, lb);
    for (uint8_t ea = 0; ea < kNumTidEncodings; ++ea) {
      const EncodedTidList enc_a =
          EncodeTidListAs(static_cast<TidEncoding>(ea), la, universe());
      for (uint8_t eb = 0; eb < kNumTidEncodings; ++eb) {
        const EncodedTidList enc_b =
            EncodeTidListAs(static_cast<TidEncoding>(eb), lb, universe());
        IntersectInto(enc_a.View(universe()), enc_b.View(universe()),
                      &kernel_out);
        AUDIT_CHECK(audit, kModule, "tidlist/kernel-agreement",
                    kernel_out == expected,
                    audit::Msg()
                        << TidEncodingName(static_cast<TidEncoding>(ea))
                        << "x"
                        << TidEncodingName(static_cast<TidEncoding>(eb))
                        << " kernel disagrees with the raw merge",
                    DumpList(kernel_out));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// TidListStore

TidListStore::TidListStore(const TidListStoreOptions& options) {
  if (options.memory_budget_bytes != 0) {
    pager_ = ExtentPager::Create(options);
  }
}

void TidListStore::Append(std::shared_ptr<const BlockTidLists> block) {
  if (pager_ != nullptr) block->AttachPager(pager_);
  blocks_.push_back(std::move(block));
}

void TidListStore::AuditInto(audit::AuditResult* audit) const {
  for (size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i] == nullptr) {
      AUDIT_FAIL(audit, "tidlist", "tidlist/store-null-block",
                 audit::Msg() << "store holds a null block at position " << i,
                 "");
      continue;
    }
    blocks_[i]->AuditInto(audit);
  }
  if (pager_ != nullptr) pager_->AuditInto(audit);
}

void TidListStore::DropOldest(size_t count) {
  DEMON_CHECK(count <= blocks_.size());
  blocks_.erase(blocks_.begin(), blocks_.begin() + count);
}

void TidListStore::DropAt(size_t index) {
  DEMON_CHECK(index < blocks_.size());
  blocks_.erase(blocks_.begin() + index);
}

size_t TidListStore::TotalTransactions() const {
  size_t total = 0;
  for (const auto& b : blocks_) total += b->num_transactions();
  return total;
}

size_t TidListStore::TotalItemSlots() const {
  size_t total = 0;
  for (const auto& b : blocks_) total += b->item_list_slots();
  return total;
}

size_t TidListStore::TotalPairSlots() const {
  size_t total = 0;
  for (const auto& b : blocks_) total += b->pair_list_slots();
  return total;
}

size_t TidListStore::TotalPayloadBytes() const {
  size_t total = 0;
  for (const auto& b : blocks_) total += b->payload_bytes();
  return total;
}

void TidListStore::ResidencyOrder(std::vector<uint32_t>* order) const {
  const size_t n = blocks_.size();
  order->resize(n);
  for (size_t i = 0; i < n; ++i) (*order)[i] = static_cast<uint32_t>(i);
  if (pager_ == nullptr) return;
  // Snapshot residency once so each index lands in exactly one class even
  // while the pager moves blocks concurrently.
  std::vector<unsigned char> resident(n, 0);
  for (size_t i = 0; i < n; ++i) {
    resident[i] = blocks_[i]->resident() ? 1 : 0;
  }
  std::stable_partition(order->begin(), order->end(),
                        [&resident](uint32_t i) { return resident[i] != 0; });
}

void TidListStore::set_telemetry(telemetry::TelemetryRegistry* registry) {
  if (pager_ != nullptr) pager_->set_telemetry(registry);
}

}  // namespace demon
