#ifndef DEMON_TIDLIST_TIDLIST_CODEC_H_
#define DEMON_TIDLIST_TIDLIST_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "tidlist/tidlist.h"

namespace demon {

/// \brief On-disk / in-extent encoding of one TID-list. Values are stable
/// (serialized in tidlist extents); never renumber.
enum class TidEncoding : uint8_t {
  /// Little-endian uint32 array — today's representation. 4 bytes/tid.
  kRaw = 0,
  /// First value then successive gaps, each LEB128-varint encoded. Wins on
  /// sparse lists (small gaps fit one byte).
  kDelta = 1,
  /// Dense bitset over the block universe, 64-bit little-endian words. Wins
  /// once more than ~1/32 of the block contains the item.
  kBitmap = 2,
};

inline constexpr uint8_t kNumTidEncodings = 3;

/// Short lowercase name ("raw", "delta", "bitmap") for telemetry/logging.
const char* TidEncodingName(TidEncoding encoding);

/// \brief A non-owning view of one encoded TID-list. Valid only while the
/// backing extent stays resident — hold the owning block's lease (see
/// BlockTidLists::Lease) across any use.
struct TidListView {
  TidEncoding encoding = TidEncoding::kRaw;
  /// List cardinality (known without decoding; drives smallest-first
  /// intersection order and support-of-singleton fast paths).
  uint32_t num_tids = 0;
  /// Block size; bitmap width and upper bound for every offset.
  uint32_t universe = 0;
  const uint8_t* data = nullptr;
  size_t bytes = 0;

  bool empty() const { return num_tids == 0; }
  size_t size() const { return num_tids; }
};

/// \brief An owning encoded list, produced at block-build time.
struct EncodedTidList {
  TidEncoding encoding = TidEncoding::kRaw;
  uint32_t num_tids = 0;
  std::vector<uint8_t> bytes;

  TidListView View(uint32_t universe) const {
    return TidListView{encoding, num_tids, universe, bytes.data(),
                       bytes.size()};
  }
};

/// Encoded size in bytes of `list` under `encoding` without encoding it
/// (delta does one measuring pass). Used by the density heuristic.
size_t EncodedTidListBytes(TidEncoding encoding, const TidList& list,
                           uint32_t universe);

/// Encodes `list` (sorted strictly increasing, every offset < universe)
/// under the stated encoding.
EncodedTidList EncodeTidListAs(TidEncoding encoding, const TidList& list,
                               uint32_t universe);

/// Encodes `list` under the smallest of the three encodings (the per
/// (item, block) density heuristic). Ties prefer raw, then bitmap — the
/// cheaper intersection kernels.
EncodedTidList EncodeTidList(const TidList& list, uint32_t universe);

/// Decodes `view` into `out` (cleared first). Trusts the input: meant for
/// extents this process built or that a validated read produced. Corrupt
/// bytes here are UB-free but may produce garbage offsets (the auditors
/// catch them); use DecodeTidList for bytes fresh off a file.
void MaterializeInto(const TidListView& view, TidList* out);

/// Validating decode for untrusted bytes (file reads): checks framing
/// lengths, cardinality, strict ascent, and the universe bound. Any
/// mismatch returns DataLoss and leaves `out` unspecified.
[[nodiscard]] Status DecodeTidList(const TidListView& view, TidList* out);

/// \brief Intersects two encoded lists into a raw (decoded) output without
/// materializing both sides: each of the nine encoding pairs has a kernel
/// that streams the compressed form directly (word-AND for bitmap×bitmap,
/// bitmap probes for bitmap×sparse, cursor merges for delta).
void IntersectInto(const TidListView& a, const TidListView& b, TidList* out);

/// Raw decoded left side against an encoded right side — the fold step of
/// the k-way intersection (the running intersection is always raw).
void IntersectInto(const TidList& a, const TidListView& b, TidList* out);

/// \brief Cardinality of a ∩ b without materializing the result — the
/// store-free twin of the pairwise IntersectInto, covering all nine
/// encoding pairs (popcount for bitmap×bitmap, probe counts for
/// bitmap×sparse, cursor merges for delta). This is the kernel the final
/// fold of a k-way intersection uses.
uint64_t IntersectSize(const TidListView& a, const TidListView& b);

/// \brief Cardinality of the intersection of encoded `views` — the
/// view-level twin of IntersectionSize over raw lists. Intersects
/// smallest-first with early exit on empty; only the running intersection
/// is ever materialized, never the inputs. Empty `views` is invalid; a
/// single view returns its cardinality without touching its bytes.
uint64_t IntersectionSize(const std::vector<TidListView>& views,
                          IntersectionScratch* scratch);

}  // namespace demon

#endif  // DEMON_TIDLIST_TIDLIST_CODEC_H_
