#include "tidlist/tidlist_codec.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "tidlist/simd.h"

namespace demon {

namespace {

constexpr size_t kBitmapWordBytes = sizeof(uint64_t);

size_t BitmapWords(uint32_t universe) {
  return (static_cast<size_t>(universe) + 63) / 64;
}

size_t VarintBytes(uint32_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

void AppendVarint(uint32_t v, std::vector<uint8_t>* out) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

/// Bounds-checked LEB128 read. Returns false (without advancing past `end`)
/// on truncation or a varint wider than 32 bits.
bool ReadVarint(const uint8_t** p, const uint8_t* end, uint32_t* out) {
  uint32_t value = 0;
  uint32_t shift = 0;
  const uint8_t* q = *p;
  while (q < end) {
    const uint8_t byte = *q++;
    if (shift == 28 && (byte & 0xF0) != 0) return false;
    value |= static_cast<uint32_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *p = q;
      *out = value;
      return true;
    }
    shift += 7;
    if (shift > 28) return false;
  }
  return false;
}

/// Streams the values of a delta-encoded view in order. Reads are bounds
/// checked, so garbage bytes end the stream early instead of overrunning.
struct DeltaCursor {
  const uint8_t* p;
  const uint8_t* end;
  uint32_t remaining;
  uint32_t value = 0;
  bool valid = false;

  explicit DeltaCursor(const TidListView& view)
      : p(view.data), end(view.data + view.bytes), remaining(view.num_tids) {
    Advance(/*first=*/true);
  }

  void Advance(bool first = false) {
    if (remaining == 0) {
      valid = false;
      return;
    }
    uint32_t delta = 0;
    if (!ReadVarint(&p, end, &delta)) {
      remaining = 0;
      valid = false;
      return;
    }
    value = first ? delta : value + delta;
    --remaining;
    valid = true;
  }
};

uint64_t BitmapWord(const TidListView& view, size_t word) {
  uint64_t w = 0;
  const size_t offset = word * kBitmapWordBytes;
  if (offset < view.bytes) {
    const size_t n = std::min(kBitmapWordBytes, view.bytes - offset);
    std::memcpy(&w, view.data + offset, n);
  }
  return w;
}

bool BitmapTest(const TidListView& view, uint32_t value) {
  const size_t byte = static_cast<size_t>(value) / 8;
  if (byte >= view.bytes) return false;
  return (view.data[byte] >> (value % 8)) & 1;
}

const uint32_t* RawBegin(const TidListView& view) {
  return reinterpret_cast<const uint32_t*>(view.data);
}

size_t RawCount(const TidListView& view) {
  // Trust the smaller of the announced cardinality and the extent size, so
  // a short extent can never be read past its end.
  return std::min(static_cast<size_t>(view.num_tids),
                  view.bytes / sizeof(uint32_t));
}

// --- pairwise kernels; each emits a raw sorted list into *out ------------

void IntersectRawBitmap(const TidListView& raw, const TidListView& bitmap,
                        TidList* out) {
  const uint32_t* p = RawBegin(raw);
  const size_t n = RawCount(raw);
  out->resize(n + simd::kOutPad);
  const size_t k = simd::ActiveOps().raw_bitmap(p, n, bitmap.data,
                                                bitmap.bytes, out->data());
  out->resize(k);
}

void IntersectRawDelta(const TidListView& raw, const TidListView& delta,
                       TidList* out) {
  const uint32_t* lo = RawBegin(raw);
  const uint32_t* const end = lo + RawCount(raw);
  out->resize(std::min(static_cast<size_t>(end - lo),
                       static_cast<size_t>(delta.num_tids)));
  uint32_t* const out_data = out->data();
  size_t k = 0;
  // The delta side has no random access, so it is always streamed; the raw
  // cursor gallops forward to each streamed value.
  for (DeltaCursor cur(delta); cur.valid && lo != end; cur.Advance()) {
    lo = GallopLowerBound(lo, end, cur.value);
    if (lo == end) break;
    out_data[k] = cur.value;
    k += static_cast<size_t>(*lo == cur.value);
  }
  out->resize(k);
}

void IntersectDeltaDelta(const TidListView& a, const TidListView& b,
                         TidList* out) {
  out->resize(std::min(a.num_tids, b.num_tids));
  uint32_t* const out_data = out->data();
  size_t k = 0;
  DeltaCursor ca(a);
  DeltaCursor cb(b);
  while (ca.valid && cb.valid) {
    if (ca.value < cb.value) {
      ca.Advance();
    } else if (cb.value < ca.value) {
      cb.Advance();
    } else {
      out_data[k++] = ca.value;
      ca.Advance();
      cb.Advance();
    }
  }
  out->resize(k);
}

void IntersectDeltaBitmap(const TidListView& delta, const TidListView& bitmap,
                          TidList* out) {
  out->resize(delta.num_tids);
  uint32_t* const out_data = out->data();
  size_t k = 0;
  for (DeltaCursor cur(delta); cur.valid; cur.Advance()) {
    out_data[k] = cur.value;
    k += static_cast<size_t>(BitmapTest(bitmap, cur.value));
  }
  out->resize(k);
}

void IntersectBitmapBitmap(const TidListView& a, const TidListView& b,
                           TidList* out) {
  const size_t cap = std::min(a.num_tids, b.num_tids);
  out->resize(cap + simd::kOutPad);
  const size_t k = simd::ActiveOps().bitmap_bitmap(a.data, a.bytes, b.data,
                                                   b.bytes, out->data(), cap);
  out->resize(k);
}

// --- size-only pairwise kernels (no output list) -------------------------
//
// The delta-involving pairs stream the compressed side like the storing
// kernels above but skip the stores; the raw/bitmap pairs go through the
// dispatched store-free kernels.

uint64_t SizeRawDelta(const TidListView& raw, const TidListView& delta) {
  const uint32_t* lo = RawBegin(raw);
  const uint32_t* const end = lo + RawCount(raw);
  uint64_t k = 0;
  for (DeltaCursor cur(delta); cur.valid && lo != end; cur.Advance()) {
    lo = GallopLowerBound(lo, end, cur.value);
    if (lo == end) break;
    k += static_cast<uint64_t>(*lo == cur.value);
  }
  return k;
}

uint64_t SizeDeltaDelta(const TidListView& a, const TidListView& b) {
  uint64_t k = 0;
  DeltaCursor ca(a);
  DeltaCursor cb(b);
  while (ca.valid && cb.valid) {
    if (ca.value < cb.value) {
      ca.Advance();
    } else if (cb.value < ca.value) {
      cb.Advance();
    } else {
      ++k;
      ca.Advance();
      cb.Advance();
    }
  }
  return k;
}

uint64_t SizeDeltaBitmap(const TidListView& delta, const TidListView& bitmap) {
  uint64_t k = 0;
  for (DeltaCursor cur(delta); cur.valid; cur.Advance()) {
    k += static_cast<uint64_t>(BitmapTest(bitmap, cur.value));
  }
  return k;
}

}  // namespace

const char* TidEncodingName(TidEncoding encoding) {
  switch (encoding) {
    case TidEncoding::kRaw:
      return "raw";
    case TidEncoding::kDelta:
      return "delta";
    case TidEncoding::kBitmap:
      return "bitmap";
  }
  return "unknown";
}

size_t EncodedTidListBytes(TidEncoding encoding, const TidList& list,
                           uint32_t universe) {
  switch (encoding) {
    case TidEncoding::kRaw:
      return list.size() * sizeof(uint32_t);
    case TidEncoding::kBitmap:
      return BitmapWords(universe) * kBitmapWordBytes;
    case TidEncoding::kDelta: {
      size_t bytes = 0;
      uint32_t prev = 0;
      for (size_t i = 0; i < list.size(); ++i) {
        bytes += VarintBytes(i == 0 ? list[i] : list[i] - prev);
        prev = list[i];
      }
      return bytes;
    }
  }
  return 0;
}

EncodedTidList EncodeTidListAs(TidEncoding encoding, const TidList& list,
                               uint32_t universe) {
  EncodedTidList out;
  out.encoding = encoding;
  out.num_tids = static_cast<uint32_t>(list.size());
  switch (encoding) {
    case TidEncoding::kRaw:
      out.bytes.resize(list.size() * sizeof(uint32_t));
      if (!list.empty()) {
        std::memcpy(out.bytes.data(), list.data(), out.bytes.size());
      }
      break;
    case TidEncoding::kDelta: {
      out.bytes.reserve(EncodedTidListBytes(encoding, list, universe));
      uint32_t prev = 0;
      for (size_t i = 0; i < list.size(); ++i) {
        AppendVarint(i == 0 ? list[i] : list[i] - prev, &out.bytes);
        prev = list[i];
      }
      break;
    }
    case TidEncoding::kBitmap: {
      std::vector<uint64_t> words(BitmapWords(universe), 0);
      for (uint32_t v : list) {
        DEMON_CHECK_MSG(v < universe, "tid outside the block universe");
        words[v / 64] |= uint64_t{1} << (v % 64);
      }
      out.bytes.resize(words.size() * kBitmapWordBytes);
      if (!words.empty()) {
        std::memcpy(out.bytes.data(), words.data(), out.bytes.size());
      }
      break;
    }
  }
  return out;
}

EncodedTidList EncodeTidList(const TidList& list, uint32_t universe) {
  // Density heuristic: pick the smallest encoding; ties prefer raw, then
  // bitmap, whose intersection kernels are cheaper than delta streaming.
  TidEncoding best = TidEncoding::kRaw;
  size_t best_bytes = EncodedTidListBytes(TidEncoding::kRaw, list, universe);
  const size_t bitmap_bytes =
      EncodedTidListBytes(TidEncoding::kBitmap, list, universe);
  if (bitmap_bytes < best_bytes) {
    best = TidEncoding::kBitmap;
    best_bytes = bitmap_bytes;
  }
  if (EncodedTidListBytes(TidEncoding::kDelta, list, universe) < best_bytes) {
    best = TidEncoding::kDelta;
  }
  return EncodeTidListAs(best, list, universe);
}

void MaterializeInto(const TidListView& view, TidList* out) {
  out->clear();
  switch (view.encoding) {
    case TidEncoding::kRaw: {
      const size_t n = RawCount(view);
      out->resize(n);
      if (n > 0) std::memcpy(out->data(), view.data, n * sizeof(uint32_t));
      break;
    }
    case TidEncoding::kDelta:
      out->reserve(view.num_tids);
      for (DeltaCursor cur(view); cur.valid; cur.Advance()) {
        out->push_back(cur.value);
      }
      break;
    case TidEncoding::kBitmap: {
      out->reserve(view.num_tids);
      const size_t words = (view.bytes + kBitmapWordBytes - 1) /
                           kBitmapWordBytes;
      for (size_t w = 0; w < words; ++w) {
        uint64_t bits = BitmapWord(view, w);
        const uint32_t base = static_cast<uint32_t>(w * 64);
        while (bits != 0) {
          out->push_back(base +
                         static_cast<uint32_t>(__builtin_ctzll(bits)));
          bits &= bits - 1;
        }
      }
      break;
    }
  }
}

Status DecodeTidList(const TidListView& view, TidList* out) {
  out->clear();
  if (view.num_tids > view.universe) {
    return Status::DataLoss("TID-list cardinality exceeds the universe");
  }
  switch (view.encoding) {
    case TidEncoding::kRaw: {
      if (view.bytes != static_cast<size_t>(view.num_tids) *
                            sizeof(uint32_t)) {
        return Status::DataLoss("raw TID-list extent length mismatch");
      }
      out->resize(view.num_tids);
      if (view.num_tids > 0) {
        std::memcpy(out->data(), view.data, view.bytes);
      }
      for (size_t i = 0; i < out->size(); ++i) {
        if (i > 0 && (*out)[i - 1] >= (*out)[i]) {
          return Status::DataLoss("raw TID-list not strictly increasing");
        }
        if ((*out)[i] >= view.universe) {
          return Status::DataLoss("raw TID-list offset outside the universe");
        }
      }
      return Status::OK();
    }
    case TidEncoding::kDelta: {
      out->reserve(view.num_tids);
      const uint8_t* p = view.data;
      const uint8_t* const end = view.data + view.bytes;
      uint64_t value = 0;
      for (uint32_t i = 0; i < view.num_tids; ++i) {
        uint32_t delta = 0;
        if (!ReadVarint(&p, end, &delta)) {
          return Status::DataLoss("truncated delta TID-list extent");
        }
        if (i > 0 && delta == 0) {
          return Status::DataLoss("delta TID-list gap of zero (duplicate)");
        }
        value = i == 0 ? delta : value + delta;
        if (value >= view.universe) {
          return Status::DataLoss(
              "delta TID-list offset outside the universe");
        }
        out->push_back(static_cast<uint32_t>(value));
      }
      if (p != end) {
        return Status::DataLoss("trailing bytes after delta TID-list");
      }
      return Status::OK();
    }
    case TidEncoding::kBitmap: {
      if (view.bytes != BitmapWords(view.universe) * kBitmapWordBytes) {
        return Status::DataLoss("bitmap TID-list extent length mismatch");
      }
      MaterializeInto(view, out);
      if (out->size() != view.num_tids) {
        return Status::DataLoss("bitmap TID-list cardinality mismatch");
      }
      if (!out->empty() && out->back() >= view.universe) {
        return Status::DataLoss("bitmap TID-list bit outside the universe");
      }
      return Status::OK();
    }
  }
  return Status::DataLoss("unknown TID-list encoding");
}

void IntersectInto(const TidListView& a, const TidListView& b, TidList* out) {
  if (a.num_tids == 0 || b.num_tids == 0) {
    out->clear();
    return;
  }
  switch (a.encoding) {
    case TidEncoding::kRaw:
      switch (b.encoding) {
        case TidEncoding::kRaw:
          IntersectRawInto(RawBegin(a), RawCount(a), RawBegin(b), RawCount(b),
                           out);
          return;
        case TidEncoding::kDelta:
          IntersectRawDelta(a, b, out);
          return;
        case TidEncoding::kBitmap:
          IntersectRawBitmap(a, b, out);
          return;
      }
      break;
    case TidEncoding::kDelta:
      switch (b.encoding) {
        case TidEncoding::kRaw:
          IntersectRawDelta(b, a, out);
          return;
        case TidEncoding::kDelta:
          IntersectDeltaDelta(a, b, out);
          return;
        case TidEncoding::kBitmap:
          IntersectDeltaBitmap(a, b, out);
          return;
      }
      break;
    case TidEncoding::kBitmap:
      switch (b.encoding) {
        case TidEncoding::kRaw:
          IntersectRawBitmap(b, a, out);
          return;
        case TidEncoding::kDelta:
          IntersectDeltaBitmap(b, a, out);
          return;
        case TidEncoding::kBitmap:
          IntersectBitmapBitmap(a, b, out);
          return;
      }
      break;
  }
  DEMON_CHECK_MSG(false, "unknown TID-list encoding pair");
}

void IntersectInto(const TidList& a, const TidListView& b, TidList* out) {
  const TidListView raw{TidEncoding::kRaw, static_cast<uint32_t>(a.size()),
                        b.universe,
                        reinterpret_cast<const uint8_t*>(a.data()),
                        a.size() * sizeof(uint32_t)};
  IntersectInto(raw, b, out);
}

uint64_t IntersectSize(const TidListView& a, const TidListView& b) {
  if (a.num_tids == 0 || b.num_tids == 0) return 0;
  const simd::KernelOps& ops = simd::ActiveOps();
  switch (a.encoding) {
    case TidEncoding::kRaw:
      switch (b.encoding) {
        case TidEncoding::kRaw:
          return ops.raw_raw_size(RawBegin(a), RawCount(a), RawBegin(b),
                                  RawCount(b));
        case TidEncoding::kDelta:
          return SizeRawDelta(a, b);
        case TidEncoding::kBitmap:
          return ops.raw_bitmap_size(RawBegin(a), RawCount(a), b.data,
                                     b.bytes);
      }
      break;
    case TidEncoding::kDelta:
      switch (b.encoding) {
        case TidEncoding::kRaw:
          return SizeRawDelta(b, a);
        case TidEncoding::kDelta:
          return SizeDeltaDelta(a, b);
        case TidEncoding::kBitmap:
          return SizeDeltaBitmap(a, b);
      }
      break;
    case TidEncoding::kBitmap:
      switch (b.encoding) {
        case TidEncoding::kRaw:
          return ops.raw_bitmap_size(RawBegin(b), RawCount(b), a.data,
                                     a.bytes);
        case TidEncoding::kDelta:
          return SizeDeltaBitmap(b, a);
        case TidEncoding::kBitmap:
          return ops.bitmap_bitmap_popcount(a.data, a.bytes, b.data, b.bytes);
      }
      break;
  }
  DEMON_CHECK_MSG(false, "unknown TID-list encoding pair");
  return 0;
}

uint64_t IntersectionSize(const std::vector<TidListView>& views,
                          IntersectionScratch* scratch) {
  DEMON_CHECK(!views.empty());
  if (views.size() == 1) return views[0].num_tids;

  // Intersect smallest-first so intermediate results shrink fast; only the
  // running intersection is materialized (raw), inputs stay encoded.
  scratch->view_order.resize(views.size());
  for (uint32_t i = 0; i < views.size(); ++i) scratch->view_order[i] = i;
  std::sort(scratch->view_order.begin(), scratch->view_order.end(),
            [&views](uint32_t a, uint32_t b) {
              return views[a].num_tids < views[b].num_tids;
            });
  // As in the raw-list IntersectionSize, the final fold never needs the
  // result materialized — it goes through the size-only pairwise kernels
  // (popcount for bitmap×bitmap, store-free merges otherwise).
  const size_t last = scratch->view_order.size() - 1;
  if (last == 1) {
    return IntersectSize(views[scratch->view_order[0]],
                         views[scratch->view_order[1]]);
  }
  TidList& current = scratch->current;
  TidList& next = scratch->next;
  IntersectInto(views[scratch->view_order[0]], views[scratch->view_order[1]],
                &current);
  for (size_t i = 2; i < last; ++i) {
    if (current.empty()) return 0;
    IntersectInto(current, views[scratch->view_order[i]], &next);
    current.swap(next);
  }
  if (current.empty()) return 0;
  const TidListView& final_view = views[scratch->view_order[last]];
  const TidListView running{
      TidEncoding::kRaw, static_cast<uint32_t>(current.size()),
      final_view.universe, reinterpret_cast<const uint8_t*>(current.data()),
      current.size() * sizeof(uint32_t)};
  return IntersectSize(running, final_view);
}

}  // namespace demon
