#ifndef DEMON_TIDLIST_SIMD_H_
#define DEMON_TIDLIST_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace demon::simd {

/// \brief Runtime-dispatched intersection kernels for the counting hot
/// path.
///
/// Every kernel here exists in (up to) three implementations — scalar,
/// SSE4 and AVX2 — compiled with per-function target attributes so the
/// library itself needs no `-march` flags. `ActiveOps()` picks the widest
/// tier the running CPU supports, once, at first use; the scalar tier is
/// always available and is the semantic reference: every other tier must
/// produce bit-identical output (pinned by tests/simd_kernels_test.cc).
///
/// Intrinsics are confined to src/tidlist/simd*.{h,cc} — scripts/lint.py
/// bans `_mm*` elsewhere — so callers only ever see this table.
///
/// Input contracts (shared by all tiers):
///  - raw lists are sorted strictly increasing uint32 arrays;
///  - bitmap extents are little-endian bit arrays (bit i of byte b is
///    offset b*8+i); lengths in bytes, not necessarily equal;
///  - `out` buffers must have room for kOutPad extra elements beyond the
///    true result bound (min(na, nb) for list kernels) — wide stores write
///    a full vector and only the counted prefix is meaningful.

/// Slack callers must reserve past the worst-case output count.
inline constexpr size_t kOutPad = 8;

struct KernelOps {
  /// Intersection of two sorted raw lists into `out` (capacity
  /// min(na, nb) + kOutPad); returns the result count. Chooses between a
  /// block merge and a galloping walk by the kGallopRatio skew test, like
  /// the scalar reference.
  size_t (*raw_raw)(const uint32_t* a, size_t na, const uint32_t* b,
                    size_t nb, uint32_t* out);
  /// Cardinality-only twin of raw_raw (no stores) — the final fold of a
  /// k-way intersection needs only the size.
  uint64_t (*raw_raw_size)(const uint32_t* a, size_t na, const uint32_t* b,
                           size_t nb);
  /// Values of `values` (sorted raw list) whose bit is set in the bitmap,
  /// into `out` (capacity n + kOutPad); returns the count. A value whose
  /// byte lies past `bitmap_bytes` tests as absent, matching the scalar
  /// bounds-checked probe.
  size_t (*raw_bitmap)(const uint32_t* values, size_t n,
                       const uint8_t* bitmap, size_t bitmap_bytes,
                       uint32_t* out);
  /// Cardinality-only twin of raw_bitmap.
  uint64_t (*raw_bitmap_size)(const uint32_t* values, size_t n,
                              const uint8_t* bitmap, size_t bitmap_bytes);
  /// Set offsets of a AND b into `out`, at most `cap` of them (cap is the
  /// min cardinality bound; capacity cap + kOutPad); returns the count.
  size_t (*bitmap_bitmap)(const uint8_t* a, size_t a_bytes, const uint8_t* b,
                          size_t b_bytes, uint32_t* out, size_t cap);
  /// popcount(a AND b) — the bitmap×bitmap kernel when only the
  /// cardinality is needed.
  uint64_t (*bitmap_bitmap_popcount)(const uint8_t* a, size_t a_bytes,
                                     const uint8_t* b, size_t b_bytes);
  /// Tier name for telemetry / bench context: "scalar", "sse4", "avx2".
  const char* name;
};

/// The always-available scalar reference tier.
const KernelOps& ScalarOps();

/// The widest tier the running CPU supports, resolved once at first call.
/// `DEMON_FORCE_SCALAR=1` in the environment (or a -DDEMON_SIMD=OFF
/// build) pins this to ScalarOps().
const KernelOps& ActiveOps();

/// Name of the active tier (== ActiveOps().name).
const char* ActiveKernelName();

namespace internal {

/// Wider tiers, defined in simd_kernels.cc. Null when the build has SIMD
/// compiled out (-DDEMON_SIMD=OFF), the target is not x86, or the running
/// CPU lacks the instruction set. Only ActiveOps() should consult these.
const KernelOps* Avx2OpsOrNull();
const KernelOps* Sse4OpsOrNull();

}  // namespace internal

}  // namespace demon::simd

#endif  // DEMON_TIDLIST_SIMD_H_
