#ifndef DEMON_TIDLIST_TIDLIST_H_
#define DEMON_TIDLIST_TIDLIST_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace demon {

/// \brief A TID-list: block-local transaction offsets, sorted increasing
/// (paper §3.1.1). Offsets are 32-bit because lists are per block and
/// blocks are far smaller than 2^32 transactions; the block's first TID
/// turns an offset into a global TID.
using TidList = std::vector<uint32_t>;

/// When the longer input is at least this many times the size of the
/// shorter one (measured as `large / (small + 1)`), IntersectInto switches
/// from the linear merge to galloping search.
inline constexpr size_t kGallopRatio = 8;

/// \brief Galloping (exponential) search for the first position in
/// [first, last) with *pos >= value. Shared by the raw merge kernel and the
/// codec-level kernels that probe a raw side with values streamed from a
/// compressed one.
const uint32_t* GallopLowerBound(const uint32_t* first, const uint32_t* last,
                                 uint32_t value);

/// \brief Intersects two sorted TID-lists into `out` (cleared first; `out`
/// must not alias an input). Uses a branchless linear merge, switching to
/// galloping search when one input is at least kGallopRatio times longer
/// than the other — the common case when intersecting a rare 2-itemset
/// list against a frequent item list. `out`'s capacity is reused across
/// calls, so steady-state intersection allocates nothing.
void IntersectInto(const TidList& a, const TidList& b, TidList* out);

/// Span flavor of IntersectInto, for inputs that live in an encoded extent
/// rather than a vector (the codec's raw×raw kernel).
void IntersectRawInto(const uint32_t* a, size_t na, const uint32_t* b,
                      size_t nb, TidList* out);

/// \brief Returns the intersection of two sorted TID-lists.
TidList Intersect(const TidList& a, const TidList& b);

/// \brief Reusable buffers for IntersectionSize. Holding one per worker
/// keeps the k-way intersection of the counting hot path allocation-free
/// after warm-up (buffers grow to the longest list seen and stay).
struct IntersectionScratch {
  TidList current;
  TidList next;
  std::vector<const TidList*> order;
  /// Index permutation used by the view-level IntersectionSize (views are
  /// value types, so ordering goes through indices, not pointers).
  std::vector<uint32_t> view_order;
};

/// \brief Cardinality of the intersection of `lists` (the support of the
/// itemset whose per-item lists these are; paper §3.1.1's merge-join).
/// Intersects smallest-first with early exit on empty. An empty `lists`
/// input is invalid; a single list returns its own size. Temporaries are
/// taken from `scratch`.
uint64_t IntersectionSize(const std::vector<const TidList*>& lists,
                          IntersectionScratch* scratch);

/// Convenience overload with one-shot internal scratch.
uint64_t IntersectionSize(const std::vector<const TidList*>& lists);

}  // namespace demon

#endif  // DEMON_TIDLIST_TIDLIST_H_
