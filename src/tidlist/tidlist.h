#ifndef DEMON_TIDLIST_TIDLIST_H_
#define DEMON_TIDLIST_TIDLIST_H_

#include <cstdint>
#include <vector>

namespace demon {

/// \brief A TID-list: block-local transaction offsets, sorted increasing
/// (paper §3.1.1). Offsets are 32-bit because lists are per block and
/// blocks are far smaller than 2^32 transactions; the block's first TID
/// turns an offset into a global TID.
using TidList = std::vector<uint32_t>;

/// \brief Intersects two sorted TID-lists into `out` (cleared first).
/// Uses a linear merge, switching to galloping search when one input is
/// much longer than the other — the common case when intersecting a rare
/// 2-itemset list against a frequent item list.
void IntersectInto(const TidList& a, const TidList& b, TidList* out);

/// \brief Returns the intersection of two sorted TID-lists.
TidList Intersect(const TidList& a, const TidList& b);

/// \brief Cardinality of the intersection of `lists` (the support of the
/// itemset whose per-item lists these are; paper §3.1.1's merge-join).
/// Intersects smallest-first with early exit on empty. An empty `lists`
/// input is invalid; a single list returns its own size.
uint64_t IntersectionSize(const std::vector<const TidList*>& lists);

}  // namespace demon

#endif  // DEMON_TIDLIST_TIDLIST_H_
