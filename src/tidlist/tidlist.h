#ifndef DEMON_TIDLIST_TIDLIST_H_
#define DEMON_TIDLIST_TIDLIST_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace demon {

/// \brief A TID-list: block-local transaction offsets, sorted increasing
/// (paper §3.1.1). Offsets are 32-bit because lists are per block and
/// blocks are far smaller than 2^32 transactions; the block's first TID
/// turns an offset into a global TID.
using TidList = std::vector<uint32_t>;

/// When the longer input is at least this many times the size of the
/// shorter one (measured as `large / (small + 1)`), IntersectInto switches
/// from the linear merge to galloping search.
inline constexpr size_t kGallopRatio = 8;

/// \brief Intersects two sorted TID-lists into `out` (cleared first; `out`
/// must not alias an input). Uses a branchless linear merge, switching to
/// galloping search when one input is at least kGallopRatio times longer
/// than the other — the common case when intersecting a rare 2-itemset
/// list against a frequent item list. `out`'s capacity is reused across
/// calls, so steady-state intersection allocates nothing.
void IntersectInto(const TidList& a, const TidList& b, TidList* out);

/// \brief Returns the intersection of two sorted TID-lists.
TidList Intersect(const TidList& a, const TidList& b);

/// \brief Reusable buffers for IntersectionSize. Holding one per worker
/// keeps the k-way intersection of the counting hot path allocation-free
/// after warm-up (buffers grow to the longest list seen and stay).
struct IntersectionScratch {
  TidList current;
  TidList next;
  std::vector<const TidList*> order;
};

/// \brief Cardinality of the intersection of `lists` (the support of the
/// itemset whose per-item lists these are; paper §3.1.1's merge-join).
/// Intersects smallest-first with early exit on empty. An empty `lists`
/// input is invalid; a single list returns its own size. Temporaries are
/// taken from `scratch`.
uint64_t IntersectionSize(const std::vector<const TidList*>& lists,
                          IntersectionScratch* scratch);

/// Convenience overload with one-shot internal scratch.
uint64_t IntersectionSize(const std::vector<const TidList*>& lists);

}  // namespace demon

#endif  // DEMON_TIDLIST_TIDLIST_H_
