#ifndef DEMON_SERVER_TENANT_H_
#define DEMON_SERVER_TENANT_H_

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "core/demon_monitor.h"
#include "core/monitor_spec.h"
#include "data/transaction.h"

namespace demon::server {

/// When staged records are sealed into blocks and when a checkpoint is
/// cut. `flush_records` is *policy-as-determinism*: blocks are always cut
/// at exact multiples of it (the one exception is an explicit flush,
/// which seals the current remainder), so the block sequence — and with
/// it the checkpoint bytes — is a pure function of the record stream and
/// the flush points, never of timing. That is what lets the soak harness
/// demand byte-identical checkpoints across a SIGKILL.
struct TenantPolicy {
  /// Records per sealed block.
  uint64_t flush_records = 512;
  /// Checkpoint (and WAL reset) after this many newly sealed blocks.
  uint64_t checkpoint_blocks = 8;
};

/// Point-in-time counters for one tenant.
struct TenantStats {
  /// Records admitted into the stream: durable + staged. The client's
  /// resume cursor.
  uint64_t records_admitted = 0;
  /// Records sealed into blocks; covered by the WAL, so crash-durable.
  uint64_t records_durable = 0;
  uint64_t blocks = 0;
};

/// Outcome of one admission call.
struct AppendOutcome {
  /// Records actually staged (the batch minus the already-admitted
  /// overlap a resend carries).
  uint64_t accepted = 0;
  /// Overlap records skipped by the exactly-once cursor.
  uint64_t deduplicated = 0;
  TenantStats stats;
};

/// \brief One tenant: an independent DemonMonitor plus the admission
/// staging, flush scheduling and durability machinery around it.
///
/// Threading model — two capabilities:
///  * `mutex_` guards the cheap shared state: the staging buffer, the
///    cursors, and the flush token flag. Admission only ever touches
///    this, so appends stay fast while maintenance runs.
///  * the *flush token* (`flush_inflight_` + `flush_done_`) serializes
///    every touch of the monitor itself — background flush tasks,
///    explicit flushes, checkpoints, recovery replay. The token holder
///    works outside `mutex_`, so a slow model update never blocks
///    admission.
///
/// Background flushes are scheduled onto the host's shared ThreadPool and
/// borrow one parallelism token while they run, so a thousand tenants
/// flushing never put more work in flight than the pool has workers.
///
/// Durability: the monitor has a WAL attached from birth; `AddBlock`
/// appends each sealed block before any model sees it. Every
/// `checkpoint_blocks` sealed blocks (and on every explicit `Flush`) the
/// tenant checkpoints atomically and resets the WAL. After a crash,
/// `Recover` = restore checkpoint + replay WAL + resume the cursor at
/// the durable record count; staged-but-unsealed records are gone by
/// design (they were never acknowledged as durable) and the client
/// resends them from the cursor.
class Tenant {
 public:
  /// Creates a fresh tenant under `dir` (created if missing): registers
  /// `specs` on a new monitor, writes the initial checkpoint, attaches
  /// the WAL. Fails if any spec is invalid.
  [[nodiscard]] static Result<std::unique_ptr<Tenant>> Create(
      std::string name, std::string dir, uint64_t num_items,
      std::vector<MonitorSpec> specs, const TenantPolicy& policy);

  /// Rebuilds a tenant from `dir`: restore the checkpoint, replay the
  /// WAL, re-attach it, and resume the admission cursor at the durable
  /// record count.
  [[nodiscard]] static Result<std::unique_ptr<Tenant>> Recover(
      std::string name, std::string dir, const TenantPolicy& policy);

  /// Admits a batch whose first record has cumulative index
  /// `first_record_index`. Overlap with already-admitted records is
  /// skipped (resend after a crash or a lost ack); a batch starting
  /// beyond the cursor is a gap and rejected with InvalidArgument.
  /// Schedules a background flush on `pool` once a full block is staged.
  [[nodiscard]] Result<AppendOutcome> Append(
      uint64_t first_record_index, std::vector<Transaction> records,
      ThreadPool* pool) DEMON_EXCLUDES(mutex_);

  /// Waits for any in-flight background flush, seals everything staged
  /// (including a final partial block), checkpoints, and resets the WAL.
  /// After an OK return every admitted record is crash-durable.
  [[nodiscard]] Status Flush() DEMON_EXCLUDES(mutex_);

  TenantStats Stats() DEMON_EXCLUDES(mutex_);

  const std::string& name() const { return name_; }
  std::string CheckpointPath() const;
  std::string WalPath() const;

  /// First durability failure (WAL append, checkpoint write), if any.
  /// Once latched the tenant rejects further appends: acknowledging
  /// records that cannot be made durable would betray the recovery
  /// contract.
  [[nodiscard]] Status durable_status() DEMON_EXCLUDES(mutex_);

 private:
  Tenant(std::string name, std::string dir, const TenantPolicy& policy,
         std::unique_ptr<DemonMonitor> monitor);

  /// Blocks until no flush owns the token, then takes it.
  void AcquireFlushToken() DEMON_EXCLUDES(mutex_);
  void ReleaseFlushToken() DEMON_EXCLUDES(mutex_);

  /// Body of a scheduled background flush: seals full blocks while any
  /// are staged, then releases the token. Runs on a pool worker holding
  /// a parallelism token lease.
  void BackgroundFlush(ThreadPool* pool) DEMON_EXCLUDES(mutex_);

  /// Seals `records` into the next block and feeds the monitor. Caller
  /// holds the flush token (never `mutex_`).
  [[nodiscard]] Status SealBlock(std::vector<Transaction> records)
      DEMON_EXCLUDES(mutex_);

  /// Checkpoints and resets the WAL. Caller holds the flush token.
  [[nodiscard]] Status WriteCheckpoint() DEMON_EXCLUDES(mutex_);

  const std::string name_;
  const std::string dir_;
  const TenantPolicy policy_;

  Mutex mutex_;
  CondVar flush_done_;
  /// Admitted-but-unsealed records, in stream order.
  std::deque<Transaction> staging_ DEMON_GUARDED_BY(mutex_);
  /// Total records admitted (durable + staged).
  uint64_t records_admitted_ DEMON_GUARDED_BY(mutex_) = 0;
  /// Total records sealed into blocks.
  uint64_t records_durable_ DEMON_GUARDED_BY(mutex_) = 0;
  uint64_t blocks_ DEMON_GUARDED_BY(mutex_) = 0;
  uint64_t blocks_since_checkpoint_ DEMON_GUARDED_BY(mutex_) = 0;
  /// The flush token: true while a background task or an explicit flush
  /// owns the monitor.
  bool flush_inflight_ DEMON_GUARDED_BY(mutex_) = false;
  Status durable_status_ DEMON_GUARDED_BY(mutex_);

  /// Touched only by the flush-token holder (and the constructor, before
  /// the tenant is shared).
  std::unique_ptr<DemonMonitor> monitor_;
};

}  // namespace demon::server

#endif  // DEMON_SERVER_TENANT_H_
