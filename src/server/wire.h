#ifndef DEMON_SERVER_WIRE_H_
#define DEMON_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/monitor_spec.h"
#include "data/transaction.h"
#include "persistence/file_header.h"

namespace demon::server {

/// \file
/// The demon_serve wire protocol: length-prefixed binary frames reusing
/// the persistence layer's codec and header discipline.
///
/// One frame on the wire is
///
///   [u32 payload bytes (LE)] [payload]
///
/// and a payload is
///
///   [FileHeader: magic "DEMONFS1", format kWireRequest|kWireResponse,
///    version kWireVersion, flags 0]
///   [u8 message type]
///   [message body, Writer/Reader-encoded]
///
/// The same error taxonomy as the on-disk formats applies: a payload whose
/// header has the wrong magic, the wrong format id, or a version newer
/// than the peer supports decodes to `InvalidArgument` (the server replies
/// cleanly and keeps the connection); a payload that ends mid-field, or
/// carries a length its bytes cannot back, decodes to `DataLoss` (an
/// intact frame with a corrupt body earns a DataLoss reply; a frame the
/// socket itself truncates, or whose length prefix exceeds
/// `kMaxFramePayloadBytes`, drops the connection and is accounted under
/// `server/frames_dropped`).
inline constexpr uint32_t kWireVersion = 1;

/// Upper bound on one frame's payload. Large enough for any sane batch,
/// small enough that a corrupt or hostile length prefix cannot make the
/// receiver allocate unbounded memory.
inline constexpr uint32_t kMaxFramePayloadBytes = 64u << 20;

/// Request message types. Values are wire-stable; never renumber.
enum class MsgType : uint8_t {
  kPing = 1,          ///< liveness probe; empty body
  kCreateTenant = 2,  ///< tenant, num_items, specs (idempotent)
  kAppendBatch = 3,   ///< tenant, first_record_index, transactions
  kFlushTenant = 4,   ///< tenant: cut staged records into blocks + checkpoint
  kFlushAll = 5,      ///< every tenant, as kFlushTenant
  kStats = 6,         ///< tenant ("" = host-wide)
  kShutdown = 7,      ///< flush everything durably, then stop the server
};

/// Short stable name for telemetry and error messages.
const char* MsgTypeToString(MsgType type);

/// \brief One decoded request. Which fields are meaningful depends on
/// `type` (see MsgType); unused fields stay at their defaults and are
/// encoded only for the types that carry them.
struct Request {
  MsgType type = MsgType::kPing;
  std::string tenant;
  /// kCreateTenant: item-universe size and the monitors to register.
  uint64_t num_items = 0;
  std::vector<MonitorSpec> specs;
  /// kAppendBatch: cumulative index (0-based) of the first record in
  /// `transactions` within the tenant's stream — the exactly-once cursor.
  /// A resent batch overlaps the server's cursor and the overlap is
  /// silently skipped; a batch starting beyond the cursor is a gap and
  /// rejected, so a lost batch can never be papered over.
  uint64_t first_record_index = 0;
  std::vector<Transaction> transactions;
};

/// \brief One decoded response: a status (code + message) plus the
/// tenant/host counters the request type reports.
struct Response {
  StatusCode code = StatusCode::kOk;
  std::string message;
  /// Records admitted into the tenant's stream (durable + staged) — the
  /// cursor a client resumes from after reconnecting.
  uint64_t records_admitted = 0;
  /// Records sealed into blocks (WAL-covered, hence crash-durable).
  uint64_t records_durable = 0;
  /// Blocks in the tenant's evolving database.
  uint64_t blocks = 0;
  /// Tenants hosted (kStats with empty tenant, kFlushAll, kShutdown).
  uint64_t num_tenants = 0;

  bool ok() const { return code == StatusCode::kOk; }
  /// The response's status, for propagating a remote error locally.
  [[nodiscard]] Status ToStatus() const;
  /// An error response carrying `status` (OK allowed).
  static Response FromStatus(const Status& status);
};

/// \name Frame codec (in-memory; sockets below)
/// Encode builds the complete frame — length prefix included — ready to
/// write to a socket. Decode takes the payload only (the receiver strips
/// the length prefix) and validates it exhaustively: header, message
/// type, every field bound, and that no trailing bytes follow.
/// @{
std::string EncodeRequestFrame(const Request& request);
std::string EncodeResponseFrame(const Response& response);
[[nodiscard]] Result<Request> DecodeRequestPayload(const std::string& payload);
[[nodiscard]] Result<Response> DecodeResponsePayload(
    const std::string& payload);
/// @}

/// \name Socket framing
/// @{

/// Writes all of `frame` (as produced by an Encode*Frame call) to `fd`.
/// Short writes are retried; a peer reset is IoError (SIGPIPE suppressed).
[[nodiscard]] Status SendFrame(int fd, const std::string& frame);

/// Reads one length prefix plus payload from `fd` and returns the payload.
/// A clean close at a frame boundary is `NotFound` ("connection closed") —
/// the normal end of a conversation; a close mid-frame or a length prefix
/// above `kMaxFramePayloadBytes` is `DataLoss`.
[[nodiscard]] Result<std::string> ReceiveFramePayload(int fd);
/// @}

/// \brief A blocking request/response client connection — what demon_load,
/// the soak driver and the tests speak through.
class ClientConnection {
 public:
  ClientConnection() = default;
  ~ClientConnection() { Close(); }

  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;

  /// Connects over TCP (`host` is a dotted-quad, e.g. "127.0.0.1").
  [[nodiscard]] Status Connect(const std::string& host, uint16_t port);

  /// Sends `request` and waits for the matching response. Transport
  /// failures (send/receive) surface here; an application-level error is
  /// returned as an OK Result whose Response carries the error code.
  [[nodiscard]] Result<Response> Call(const Request& request);

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

}  // namespace demon::server

#endif  // DEMON_SERVER_WIRE_H_
