#include "server/wire.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "persistence/serializer.h"

namespace demon::server {

namespace {

using persistence::FileHeader;
using persistence::FormatId;
using persistence::Reader;
using persistence::Writer;

/// Ceiling on monitors per CreateTenant — far above any real deployment,
/// low enough that a corrupt count cannot drive a long decode loop.
constexpr uint64_t kMaxSpecsPerTenant = 64;

/// The checkpoint payload layout version SaveMonitorSpec currently writes;
/// LoadMonitorSpec takes it to know which optional fields are present.
constexpr uint32_t kSpecLayoutVersion = 2;

bool KnownMsgType(uint8_t v) {
  return v >= static_cast<uint8_t>(MsgType::kPing) &&
         v <= static_cast<uint8_t>(MsgType::kShutdown);
}

bool KnownStatusCode(uint8_t v) {
  return v <= static_cast<uint8_t>(StatusCode::kDataLoss);
}

std::string FinishFrame(const Writer& payload) {
  const uint32_t bytes = static_cast<uint32_t>(payload.size());
  std::string frame;
  frame.reserve(sizeof(bytes) + payload.size());
  frame.append(reinterpret_cast<const char*>(&bytes), sizeof(bytes));
  frame.append(payload.buffer());
  return frame;
}

void AppendWireHeader(Writer& w, FormatId format) {
  FileHeader header;
  header.format_id = static_cast<uint32_t>(format);
  header.version = kWireVersion;
  header.AppendTo(w);
}

/// Reads `n` bytes from `fd` into `out`. `eof_at_start_ok` distinguishes
/// the clean end of a conversation (peer closed between frames) from a
/// frame the connection truncated.
Status ReadExact(int fd, void* out, size_t n, bool eof_at_start_ok) {
  char* cursor = static_cast<char*>(out);
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, cursor + got, n - got, 0);
    if (r == 0) {
      if (got == 0 && eof_at_start_ok) {
        return Status::NotFound("connection closed");
      }
      return Status::DataLoss("connection closed mid-frame (" +
                              std::to_string(got) + " of " +
                              std::to_string(n) + " bytes)");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv failed: ") +
                             std::strerror(errno));
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

const char* MsgTypeToString(MsgType type) {
  switch (type) {
    case MsgType::kPing:
      return "ping";
    case MsgType::kCreateTenant:
      return "create-tenant";
    case MsgType::kAppendBatch:
      return "append-batch";
    case MsgType::kFlushTenant:
      return "flush-tenant";
    case MsgType::kFlushAll:
      return "flush-all";
    case MsgType::kStats:
      return "stats";
    case MsgType::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

Status Response::ToStatus() const {
  if (code == StatusCode::kOk) return Status::OK();
  return Status(code, message);
}

Response Response::FromStatus(const Status& status) {
  Response response;
  response.code = status.code();
  response.message = status.message();
  return response;
}

std::string EncodeRequestFrame(const Request& request) {
  Writer w;
  AppendWireHeader(w, FormatId::kWireRequest);
  w.WriteU8(static_cast<uint8_t>(request.type));
  switch (request.type) {
    case MsgType::kPing:
    case MsgType::kFlushAll:
    case MsgType::kShutdown:
      break;
    case MsgType::kCreateTenant:
      w.WriteString(request.tenant);
      w.WriteU64(request.num_items);
      w.WriteU64(request.specs.size());
      for (const MonitorSpec& spec : request.specs) SaveMonitorSpec(w, spec);
      break;
    case MsgType::kAppendBatch:
      w.WriteString(request.tenant);
      w.WriteU64(request.first_record_index);
      w.WriteU64(request.transactions.size());
      for (const Transaction& t : request.transactions) {
        w.WriteU32Vector(t.items());
      }
      break;
    case MsgType::kFlushTenant:
    case MsgType::kStats:
      w.WriteString(request.tenant);
      break;
  }
  return FinishFrame(w);
}

std::string EncodeResponseFrame(const Response& response) {
  Writer w;
  AppendWireHeader(w, FormatId::kWireResponse);
  w.WriteU8(static_cast<uint8_t>(response.code));
  w.WriteString(response.message);
  w.WriteU64(response.records_admitted);
  w.WriteU64(response.records_durable);
  w.WriteU64(response.blocks);
  w.WriteU64(response.num_tenants);
  return FinishFrame(w);
}

Result<Request> DecodeRequestPayload(const std::string& payload) {
  Reader r(payload);
  DEMON_RETURN_NOT_OK(FileHeader::Consume(r, FormatId::kWireRequest,
                                          kWireVersion, "wire request")
                          .status());
  const uint8_t type_byte = r.ReadU8();
  if (r.ok() && !KnownMsgType(type_byte)) {
    return Status::InvalidArgument("unknown request message type " +
                                   std::to_string(type_byte));
  }
  Request request;
  request.type = static_cast<MsgType>(type_byte);
  switch (request.type) {
    case MsgType::kPing:
    case MsgType::kFlushAll:
    case MsgType::kShutdown:
      break;
    case MsgType::kCreateTenant: {
      request.tenant = r.ReadString();
      request.num_items = r.ReadU64();
      const uint64_t num_specs = r.ReadU64();
      if (r.ok() && num_specs > kMaxSpecsPerTenant) {
        return Status::DataLoss("create-tenant carries " +
                                std::to_string(num_specs) +
                                " specs (limit " +
                                std::to_string(kMaxSpecsPerTenant) + ")");
      }
      for (uint64_t i = 0; r.ok() && i < num_specs; ++i) {
        auto spec = LoadMonitorSpec(r, kSpecLayoutVersion);
        if (!spec.ok()) return spec.status();
        request.specs.push_back(std::move(spec).value());
      }
      break;
    }
    case MsgType::kAppendBatch: {
      request.tenant = r.ReadString();
      request.first_record_index = r.ReadU64();
      // Each transaction occupies at least its own length prefix, so the
      // remaining byte count bounds a sane record count.
      const uint64_t num_records = r.ReadLength(sizeof(uint64_t));
      request.transactions.reserve(num_records);
      for (uint64_t i = 0; r.ok() && i < num_records; ++i) {
        request.transactions.emplace_back(r.ReadU32Vector());
      }
      break;
    }
    case MsgType::kFlushTenant:
    case MsgType::kStats:
      request.tenant = r.ReadString();
      break;
  }
  DEMON_RETURN_NOT_OK(r.status());
  if (!r.AtEnd()) {
    return Status::DataLoss("wire request: " + std::to_string(r.remaining()) +
                            " trailing bytes after the message body");
  }
  return request;
}

Result<Response> DecodeResponsePayload(const std::string& payload) {
  Reader r(payload);
  DEMON_RETURN_NOT_OK(FileHeader::Consume(r, FormatId::kWireResponse,
                                          kWireVersion, "wire response")
                          .status());
  const uint8_t code_byte = r.ReadU8();
  if (r.ok() && !KnownStatusCode(code_byte)) {
    return Status::DataLoss("wire response carries unknown status code " +
                            std::to_string(code_byte));
  }
  Response response;
  response.code = static_cast<StatusCode>(code_byte);
  response.message = r.ReadString();
  response.records_admitted = r.ReadU64();
  response.records_durable = r.ReadU64();
  response.blocks = r.ReadU64();
  response.num_tenants = r.ReadU64();
  DEMON_RETURN_NOT_OK(r.status());
  if (!r.AtEnd()) {
    return Status::DataLoss("wire response: " + std::to_string(r.remaining()) +
                            " trailing bytes after the message body");
  }
  return response;
}

Status SendFrame(int fd, const std::string& frame) {
  size_t sent = 0;
  while (sent < frame.size()) {
    // MSG_NOSIGNAL: a peer that died mid-conversation must surface as an
    // IoError on this call, not as a process-killing SIGPIPE.
    const ssize_t w =
        ::send(fd, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send failed: ") +
                             std::strerror(errno));
    }
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

Result<std::string> ReceiveFramePayload(int fd) {
  uint32_t bytes = 0;
  DEMON_RETURN_NOT_OK(
      ReadExact(fd, &bytes, sizeof(bytes), /*eof_at_start_ok=*/true));
  if (bytes > kMaxFramePayloadBytes) {
    return Status::DataLoss("frame length " + std::to_string(bytes) +
                            " exceeds the " +
                            std::to_string(kMaxFramePayloadBytes) +
                            "-byte payload limit");
  }
  std::string payload(bytes, '\0');
  DEMON_RETURN_NOT_OK(
      ReadExact(fd, payload.data(), bytes, /*eof_at_start_ok=*/false));
  return payload;
}

Status ClientConnection::Connect(const std::string& host, uint16_t port) {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("connect to " + host + ":" + std::to_string(port) +
                           " failed: " + std::strerror(err));
  }
  const int one = 1;
  // Request/response round trips; Nagle would serialize them at 40ms each.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::OK();
}

Result<Response> ClientConnection::Call(const Request& request) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  DEMON_RETURN_NOT_OK(SendFrame(fd_, EncodeRequestFrame(request)));
  auto payload = ReceiveFramePayload(fd_);
  if (!payload.ok()) return payload.status();
  return DecodeResponsePayload(payload.value());
}

void ClientConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace demon::server
