#include "server/tenant.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

namespace demon::server {

namespace {

/// `mkdir -p`: creates every missing component of `path`.
Status MakeDirs(const std::string& path) {
  for (size_t i = 1; i <= path.size(); ++i) {
    if (i != path.size() && path[i] != '/') continue;
    const std::string prefix = path.substr(0, i);
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::IoError("mkdir " + prefix + " failed: " +
                             std::strerror(errno));
    }
  }
  return Status::OK();
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

Tenant::Tenant(std::string name, std::string dir, const TenantPolicy& policy,
               std::unique_ptr<DemonMonitor> monitor)
    : name_(std::move(name)),
      dir_(std::move(dir)),
      policy_(policy),
      monitor_(std::move(monitor)) {}

std::string Tenant::CheckpointPath() const { return dir_ + "/checkpoint.demon"; }

std::string Tenant::WalPath() const { return dir_ + "/wal.demon"; }

Result<std::unique_ptr<Tenant>> Tenant::Create(std::string name,
                                               std::string dir,
                                               uint64_t num_items,
                                               std::vector<MonitorSpec> specs,
                                               const TenantPolicy& policy) {
  if (policy.flush_records == 0 || policy.checkpoint_blocks == 0) {
    return Status::InvalidArgument(
        "tenant policy needs flush_records >= 1 and checkpoint_blocks >= 1");
  }
  DEMON_RETURN_NOT_OK(MakeDirs(dir));
  auto monitor = std::make_unique<DemonMonitor>(num_items);
  for (MonitorSpec& spec : specs) {
    DEMON_RETURN_NOT_OK(monitor->AddMonitor(std::move(spec)).status());
  }
  auto tenant = std::unique_ptr<Tenant>(
      new Tenant(std::move(name), std::move(dir), policy, std::move(monitor)));
  // A WAL left behind by an incarnation that never reached its initial
  // checkpoint would replay records the fresh checkpoint knows nothing
  // about; discard it before attaching.
  if (FileExists(tenant->WalPath())) {
    if (std::remove(tenant->WalPath().c_str()) != 0) {
      return Status::IoError("cannot remove stale WAL " + tenant->WalPath());
    }
  }
  DEMON_RETURN_NOT_OK(tenant->monitor_->Checkpoint(tenant->CheckpointPath()));
  DEMON_RETURN_NOT_OK(tenant->monitor_->AttachWal(tenant->WalPath()));
  return tenant;
}

Result<std::unique_ptr<Tenant>> Tenant::Recover(std::string name,
                                                std::string dir,
                                                const TenantPolicy& policy) {
  if (policy.flush_records == 0 || policy.checkpoint_blocks == 0) {
    return Status::InvalidArgument(
        "tenant policy needs flush_records >= 1 and checkpoint_blocks >= 1");
  }
  auto tenant = std::unique_ptr<Tenant>(
      new Tenant(std::move(name), std::move(dir), policy, nullptr));
  auto monitor = DemonMonitor::Restore(tenant->CheckpointPath());
  if (!monitor.ok()) return monitor.status();
  tenant->monitor_ = std::move(monitor).value();
  // A missing WAL is a tenant that crashed right after Create's initial
  // checkpoint; everything durable is in the checkpoint already.
  if (FileExists(tenant->WalPath())) {
    DEMON_RETURN_NOT_OK(tenant->monitor_->ReplayWal(tenant->WalPath()));
  }
  DEMON_RETURN_NOT_OK(tenant->monitor_->AttachWal(tenant->WalPath()));
  {
    MutexLock lock(tenant->mutex_);
    tenant->records_durable_ = tenant->monitor_->snapshot().TotalRecords();
    tenant->records_admitted_ = tenant->records_durable_;
    tenant->blocks_ = tenant->monitor_->snapshot().latest_id();
  }
  return tenant;
}

Result<AppendOutcome> Tenant::Append(uint64_t first_record_index,
                                     std::vector<Transaction> records,
                                     ThreadPool* pool) {
  bool schedule = false;
  AppendOutcome outcome;
  {
    MutexLock lock(mutex_);
    DEMON_RETURN_NOT_OK(durable_status_);
    if (first_record_index > records_admitted_) {
      return Status::InvalidArgument(
          "append gap for tenant " + name_ + ": batch starts at record " +
          std::to_string(first_record_index) + " but only " +
          std::to_string(records_admitted_) + " records are admitted");
    }
    const uint64_t skip = records_admitted_ - first_record_index;
    if (skip >= records.size()) {
      outcome.deduplicated = records.size();
    } else {
      outcome.deduplicated = skip;
      outcome.accepted = records.size() - skip;
      for (size_t i = skip; i < records.size(); ++i) {
        staging_.push_back(std::move(records[i]));
      }
      records_admitted_ += outcome.accepted;
    }
    if (staging_.size() >= policy_.flush_records && !flush_inflight_) {
      flush_inflight_ = true;
      schedule = true;
    }
    outcome.stats.records_admitted = records_admitted_;
    outcome.stats.records_durable = records_durable_;
    outcome.stats.blocks = blocks_;
  }
  if (schedule) {
    if (pool != nullptr) {
      pool->Submit([this, pool] { BackgroundFlush(pool); });
    } else {
      BackgroundFlush(nullptr);
    }
  }
  return outcome;
}

void Tenant::BackgroundFlush(ThreadPool* pool) {
  // Borrow one parallelism token so nested layers (and sibling tenants'
  // flushes sizing their own work) see a smaller budget while this runs.
  ThreadPool::TokenLease lease(pool, 1);
  for (;;) {
    std::vector<Transaction> records;
    {
      MutexLock lock(mutex_);
      if (!durable_status_.ok() ||
          staging_.size() < policy_.flush_records) {
        flush_inflight_ = false;
        flush_done_.NotifyAll();
        return;
      }
      records.reserve(policy_.flush_records);
      for (uint64_t i = 0; i < policy_.flush_records; ++i) {
        records.push_back(std::move(staging_.front()));
        staging_.pop_front();
      }
    }
    const Status sealed = SealBlock(std::move(records));
    if (!sealed.ok()) {
      MutexLock lock(mutex_);
      if (durable_status_.ok()) durable_status_ = sealed;
      flush_inflight_ = false;
      flush_done_.NotifyAll();
      return;
    }
  }
}

Status Tenant::SealBlock(std::vector<Transaction> records) {
  const uint64_t count = records.size();
  uint64_t first_tid = 0;
  {
    MutexLock lock(mutex_);
    first_tid = records_durable_;
  }
  // Block metadata stays at its defaults (zero times, empty label): the
  // checkpoint must be a pure function of the record stream, and wall
  // clocks are exactly what byte-identical crash recovery cannot afford.
  monitor_->AddBlock(TransactionBlock(std::move(records), first_tid));
  DEMON_RETURN_NOT_OK(monitor_->wal_status());
  bool checkpoint_due = false;
  {
    MutexLock lock(mutex_);
    records_durable_ += count;
    ++blocks_;
    ++blocks_since_checkpoint_;
    checkpoint_due = blocks_since_checkpoint_ >= policy_.checkpoint_blocks;
  }
  if (checkpoint_due) return WriteCheckpoint();
  return Status::OK();
}

Status Tenant::WriteCheckpoint() {
  DEMON_RETURN_NOT_OK(monitor_->Checkpoint(CheckpointPath()));
  // Only after the checkpoint is durably renamed may the WAL forget the
  // arrivals it covers.
  DEMON_RETURN_NOT_OK(monitor_->ResetWal());
  MutexLock lock(mutex_);
  blocks_since_checkpoint_ = 0;
  return Status::OK();
}

Status Tenant::Flush() {
  AcquireFlushToken();
  Status status = Status::OK();
  for (;;) {
    std::vector<Transaction> records;
    bool checkpoint_due = false;
    {
      MutexLock lock(mutex_);
      if (!durable_status_.ok()) {
        status = durable_status_;
        break;
      }
      if (staging_.empty()) {
        checkpoint_due = blocks_since_checkpoint_ > 0;
      } else {
        const uint64_t take =
            std::min<uint64_t>(policy_.flush_records, staging_.size());
        records.reserve(take);
        for (uint64_t i = 0; i < take; ++i) {
          records.push_back(std::move(staging_.front()));
          staging_.pop_front();
        }
      }
    }
    if (records.empty()) {
      if (checkpoint_due) status = WriteCheckpoint();
      break;
    }
    status = SealBlock(std::move(records));
    if (!status.ok()) break;
  }
  if (!status.ok()) {
    MutexLock lock(mutex_);
    if (durable_status_.ok()) durable_status_ = status;
  }
  ReleaseFlushToken();
  return status;
}

TenantStats Tenant::Stats() {
  MutexLock lock(mutex_);
  TenantStats stats;
  stats.records_admitted = records_admitted_;
  stats.records_durable = records_durable_;
  stats.blocks = blocks_;
  return stats;
}

Status Tenant::durable_status() {
  MutexLock lock(mutex_);
  return durable_status_;
}

void Tenant::AcquireFlushToken() {
  MutexLock lock(mutex_);
  while (flush_inflight_) flush_done_.Wait(mutex_);
  flush_inflight_ = true;
}

void Tenant::ReleaseFlushToken() {
  MutexLock lock(mutex_);
  flush_inflight_ = false;
  flush_done_.NotifyAll();
}

}  // namespace demon::server
