#ifndef DEMON_SERVER_SERVER_H_
#define DEMON_SERVER_SERVER_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/telemetry.h"
#include "server/tenant_host.h"
#include "server/wire.h"

namespace demon::server {

struct ServerOptions {
  /// Root of the hosted state; tenants live under `<data_dir>/tenants/`.
  std::string data_dir;
  /// TCP port to listen on; 0 binds an ephemeral port (see `port()`).
  uint16_t port = 0;
  /// Workers in the shared flush pool.
  size_t num_threads = 4;
  TenantPolicy policy;
};

/// \brief The demon_serve daemon core: a TCP listener speaking the wire
/// protocol of `server/wire.h`, one handler thread per connection, all
/// tenants hosted by one TenantHost.
///
/// Error handling per connection follows the wire contract: a payload
/// with a bad header or version gets a clean InvalidArgument reply and
/// the connection lives on; a frame the socket truncates (or whose
/// length prefix is oversized) drops the connection and is accounted
/// under `server/frames_dropped`. A kShutdown request flushes every
/// tenant durably, replies, and resolves `WaitForShutdown`.
class DemonServer {
 public:
  explicit DemonServer(ServerOptions options);
  ~DemonServer();

  DemonServer(const DemonServer&) = delete;
  DemonServer& operator=(const DemonServer&) = delete;

  /// Recovers every tenant from `data_dir`, binds the listener and
  /// starts accepting. Returns once the server is reachable.
  [[nodiscard]] Status Start();

  /// The bound port (resolves option `port == 0` to the actual port).
  uint16_t port() const { return port_; }

  /// Blocks until a kShutdown request arrives or `Stop` is called from
  /// another thread. `external_stop`, when set, is polled so a signal
  /// handler flag (SIGINT/SIGTERM in demon_serve) can end the wait.
  void WaitForShutdown(const std::atomic<bool>* external_stop = nullptr)
      DEMON_EXCLUDES(mutex_);

  /// Stops accepting, unblocks and joins every connection thread, and
  /// flushes all tenants durably (the returned status is that final
  /// flush). Idempotent.
  [[nodiscard]] Status Stop();

  telemetry::TelemetryRegistry* telemetry() { return &telemetry_; }
  TenantHost* host() { return host_.get(); }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Dispatches one decoded request. `*shutdown_after_reply` is set for
  /// kShutdown so the caller sends the reply *before* the server begins
  /// tearing connections down.
  Response Handle(const Request& request, bool* shutdown_after_reply);

  const ServerOptions options_;
  telemetry::TelemetryRegistry telemetry_;
  std::unique_ptr<TenantHost> host_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  Mutex mutex_;
  CondVar shutdown_cv_;
  bool shutdown_requested_ DEMON_GUARDED_BY(mutex_) = false;
  std::vector<std::thread> connections_ DEMON_GUARDED_BY(mutex_);
  /// Open connection fds, so Stop can shut them down to unblock reads.
  std::vector<int> connection_fds_ DEMON_GUARDED_BY(mutex_);
};

}  // namespace demon::server

#endif  // DEMON_SERVER_SERVER_H_
