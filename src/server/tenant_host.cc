#include "server/tenant_host.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <utility>

namespace demon::server {

namespace {

bool ValidNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-';
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

TenantHost::TenantHost(std::string data_dir, size_t num_threads,
                       TenantPolicy policy,
                       telemetry::TelemetryRegistry* telemetry)
    : data_dir_(std::move(data_dir)),
      policy_(policy),
      pool_(std::max<size_t>(1, num_threads)),
      telemetry_(telemetry) {}

Status TenantHost::ValidateTenantName(const std::string& name) {
  if (name.empty() || name.size() > 100) {
    return Status::InvalidArgument(
        "tenant name must be 1..100 characters, got " +
        std::to_string(name.size()));
  }
  for (char c : name) {
    if (!ValidNameChar(c)) {
      return Status::InvalidArgument(
          "tenant name may only contain [A-Za-z0-9_-]: \"" + name + "\"");
    }
  }
  return Status::OK();
}

std::string TenantHost::TenantDir(const std::string& name) const {
  return data_dir_ + "/tenants/" + name;
}

Status TenantHost::RecoverAll() {
  const std::string root = data_dir_ + "/tenants";
  DIR* dir = ::opendir(root.c_str());
  if (dir == nullptr) return Status::OK();  // fresh data dir: nothing hosted
  std::vector<std::string> names;
  for (const dirent* entry = ::readdir(dir); entry != nullptr;
       entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (!ValidateTenantName(name).ok()) continue;  // ".", "..", strays
    names.push_back(name);
  }
  ::closedir(dir);
  // Deterministic recovery order (readdir order is filesystem-dependent).
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    const std::string tenant_dir = TenantDir(name);
    if (!FileExists(tenant_dir + "/checkpoint.demon")) continue;
    auto tenant = Tenant::Recover(name, tenant_dir, policy_);
    if (!tenant.ok()) {
      return Status(tenant.status().code(),
                    "recovering tenant " + name + ": " +
                        tenant.status().message());
    }
    MutexLock lock(mutex_);
    tenants_.emplace(name, std::move(tenant).value());
  }
  if (telemetry_ != nullptr) {
    telemetry_->gauge("server/tenants")->Set(static_cast<double>(NumTenants()));
  }
  return Status::OK();
}

Result<TenantStats> TenantHost::CreateTenant(const std::string& name,
                                             uint64_t num_items,
                                             std::vector<MonitorSpec> specs) {
  DEMON_RETURN_NOT_OK(ValidateTenantName(name));
  if (Tenant* existing = FindTenant(name)) {
    return existing->Stats();  // idempotent: the retry after a lost ack
  }
  auto created =
      Tenant::Create(name, TenantDir(name), num_items, std::move(specs),
                     policy_);
  if (!created.ok()) return created.status();
  Tenant* tenant = nullptr;
  {
    MutexLock lock(mutex_);
    // A racing create of the same name may have won; first in wins and
    // the loser's (identical, empty) tenant is discarded.
    auto [it, inserted] =
        tenants_.emplace(name, std::move(created).value());
    tenant = it->second.get();
    if (telemetry_ != nullptr) {
      telemetry_->gauge("server/tenants")
          ->Set(static_cast<double>(tenants_.size()));
    }
  }
  return tenant->Stats();
}

Tenant* TenantHost::FindTenant(const std::string& name) {
  MutexLock lock(mutex_);
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

Result<AppendOutcome> TenantHost::Append(const std::string& name,
                                         uint64_t first_record_index,
                                         std::vector<Transaction> records) {
  Tenant* tenant = FindTenant(name);
  if (tenant == nullptr) {
    return Status::NotFound("no tenant named \"" + name + "\"");
  }
  return tenant->Append(first_record_index, std::move(records), &pool_);
}

Result<TenantStats> TenantHost::FlushTenant(const std::string& name) {
  Tenant* tenant = FindTenant(name);
  if (tenant == nullptr) {
    return Status::NotFound("no tenant named \"" + name + "\"");
  }
  DEMON_RETURN_NOT_OK(tenant->Flush());
  return tenant->Stats();
}

Status TenantHost::FlushAll() {
  // Collect stable pointers under the lock, flush outside it: Flush
  // waits on per-tenant background tasks that run on pool workers, and
  // those must never contend on the host lock to finish.
  std::vector<Tenant*> tenants;
  {
    MutexLock lock(mutex_);
    tenants.reserve(tenants_.size());
    for (const auto& [name, tenant] : tenants_) {
      tenants.push_back(tenant.get());
    }
  }
  Status first_error = Status::OK();
  for (Tenant* tenant : tenants) {
    const Status status = tenant->Flush();
    if (!status.ok() && first_error.ok()) {
      first_error = Status(status.code(), "flushing tenant " +
                                              tenant->name() + ": " +
                                              status.message());
    }
  }
  return first_error;
}

Result<TenantStats> TenantHost::TenantStatsOf(const std::string& name) {
  Tenant* tenant = FindTenant(name);
  if (tenant == nullptr) {
    return Status::NotFound("no tenant named \"" + name + "\"");
  }
  return tenant->Stats();
}

HostStats TenantHost::Stats() {
  std::vector<Tenant*> tenants;
  {
    MutexLock lock(mutex_);
    tenants.reserve(tenants_.size());
    for (const auto& [name, tenant] : tenants_) {
      tenants.push_back(tenant.get());
    }
  }
  HostStats stats;
  stats.num_tenants = tenants.size();
  for (Tenant* tenant : tenants) {
    const TenantStats t = tenant->Stats();
    stats.records_admitted += t.records_admitted;
    stats.records_durable += t.records_durable;
    stats.blocks += t.blocks;
  }
  return stats;
}

size_t TenantHost::NumTenants() {
  MutexLock lock(mutex_);
  return tenants_.size();
}

}  // namespace demon::server
