#include "server/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

namespace demon::server {

namespace {

/// How often WaitForShutdown re-checks its external stop flag.
constexpr uint64_t kShutdownPollNanos = 200ull * 1000 * 1000;

}  // namespace

DemonServer::DemonServer(ServerOptions options)
    : options_(std::move(options)) {}

DemonServer::~DemonServer() { (void)Stop(); }

Status DemonServer::Start() {
  if (options_.data_dir.empty()) {
    return Status::InvalidArgument("ServerOptions.data_dir must be set");
  }
  host_ = std::make_unique<TenantHost>(options_.data_dir,
                                       options_.num_threads, options_.policy,
                                       &telemetry_);
  DEMON_RETURN_NOT_OK(host_->RecoverAll());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket failed: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  // The soak harness restarts the server on the same port within
  // milliseconds of a SIGKILL; without address reuse the bind would fail
  // on the predecessor's TIME_WAIT state.
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(options_.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError("bind to port " + std::to_string(options_.port) +
                           " failed: " + std::strerror(err));
  }
  if (::listen(fd, 128) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError(std::string("listen failed: ") +
                           std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError(std::string("getsockname failed: ") +
                           std::strerror(err));
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void DemonServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by Stop (or a fatal accept error)
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    telemetry_.counter("server/connections")->Increment();
    MutexLock lock(mutex_);
    connection_fds_.push_back(fd);
    connections_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void DemonServer::ServeConnection(int fd) {
  for (;;) {
    auto payload = ReceiveFramePayload(fd);
    if (!payload.ok()) {
      if (payload.status().code() != StatusCode::kNotFound) {
        // Truncated mid-frame or oversized length prefix: the stream is
        // unframed from here on, so the connection cannot be salvaged.
        telemetry_.counter("server/frames_dropped")->Increment();
      }
      break;
    }
    const uint64_t start_ns = telemetry::NowNanos();
    telemetry_.counter("server/requests")->Increment();
    auto request = DecodeRequestPayload(payload.value());
    Response response;
    bool shutdown_after_reply = false;
    if (!request.ok()) {
      // The frame arrived whole, so the peer keeps its connection: a bad
      // header or version skew earns InvalidArgument, a corrupt body
      // DataLoss — exactly the persistence-layer contract.
      telemetry_.counter("server/requests_rejected")->Increment();
      response = Response::FromStatus(request.status());
    } else {
      response = Handle(request.value(), &shutdown_after_reply);
    }
    const Status sent = SendFrame(fd, EncodeResponseFrame(response));
    telemetry_.histogram("server/request_seconds")
        ->Record(static_cast<double>(telemetry::NowNanos() - start_ns) /
                 1e9);
    if (!sent.ok()) break;
    if (shutdown_after_reply) {
      MutexLock lock(mutex_);
      shutdown_requested_ = true;
      shutdown_cv_.NotifyAll();
      break;
    }
  }
  ::close(fd);
  MutexLock lock(mutex_);
  for (size_t i = 0; i < connection_fds_.size(); ++i) {
    if (connection_fds_[i] == fd) {
      connection_fds_.erase(connection_fds_.begin() + i);
      break;
    }
  }
}

Response DemonServer::Handle(const Request& request,
                             bool* shutdown_after_reply) {
  Response response;
  switch (request.type) {
    case MsgType::kPing:
      response.num_tenants = host_->NumTenants();
      break;
    case MsgType::kCreateTenant: {
      auto stats = host_->CreateTenant(request.tenant, request.num_items,
                                       request.specs);
      if (!stats.ok()) return Response::FromStatus(stats.status());
      response.records_admitted = stats.value().records_admitted;
      response.records_durable = stats.value().records_durable;
      response.blocks = stats.value().blocks;
      break;
    }
    case MsgType::kAppendBatch: {
      auto outcome = host_->Append(request.tenant,
                                   request.first_record_index,
                                   request.transactions);
      if (!outcome.ok()) return Response::FromStatus(outcome.status());
      telemetry_.counter("server/records_admitted")
          ->Add(outcome.value().accepted);
      telemetry_.counter("server/records_deduplicated")
          ->Add(outcome.value().deduplicated);
      response.records_admitted = outcome.value().stats.records_admitted;
      response.records_durable = outcome.value().stats.records_durable;
      response.blocks = outcome.value().stats.blocks;
      break;
    }
    case MsgType::kFlushTenant: {
      auto stats = host_->FlushTenant(request.tenant);
      if (!stats.ok()) return Response::FromStatus(stats.status());
      response.records_admitted = stats.value().records_admitted;
      response.records_durable = stats.value().records_durable;
      response.blocks = stats.value().blocks;
      break;
    }
    case MsgType::kFlushAll: {
      const Status status = host_->FlushAll();
      if (!status.ok()) return Response::FromStatus(status);
      const HostStats stats = host_->Stats();
      response.num_tenants = stats.num_tenants;
      response.records_admitted = stats.records_admitted;
      response.records_durable = stats.records_durable;
      response.blocks = stats.blocks;
      break;
    }
    case MsgType::kStats: {
      if (request.tenant.empty()) {
        const HostStats stats = host_->Stats();
        response.num_tenants = stats.num_tenants;
        response.records_admitted = stats.records_admitted;
        response.records_durable = stats.records_durable;
        response.blocks = stats.blocks;
      } else {
        auto stats = host_->TenantStatsOf(request.tenant);
        if (!stats.ok()) return Response::FromStatus(stats.status());
        response.records_admitted = stats.value().records_admitted;
        response.records_durable = stats.value().records_durable;
        response.blocks = stats.value().blocks;
      }
      break;
    }
    case MsgType::kShutdown: {
      // Everything admitted becomes durable before the reply goes out:
      // an acknowledged shutdown promises nothing is left to lose.
      const Status status = host_->FlushAll();
      if (!status.ok()) return Response::FromStatus(status);
      response.num_tenants = host_->NumTenants();
      *shutdown_after_reply = true;
      break;
    }
  }
  return response;
}

void DemonServer::WaitForShutdown(const std::atomic<bool>* external_stop) {
  MutexLock lock(mutex_);
  while (!shutdown_requested_) {
    if (external_stop != nullptr &&
        external_stop->load(std::memory_order_acquire)) {
      return;
    }
    (void)shutdown_cv_.WaitFor(mutex_, kShutdownPollNanos);
  }
}

Status DemonServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    return Status::OK();  // already stopped
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> connections;
  {
    MutexLock lock(mutex_);
    // Unblock every in-flight read; the owning threads observe EOF, close
    // their fds and remove themselves from connection_fds_.
    for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    connections.swap(connections_);
  }
  for (std::thread& t : connections) {
    if (t.joinable()) t.join();
  }
  if (host_ != nullptr) return host_->FlushAll();
  return Status::OK();
}

}  // namespace demon::server
