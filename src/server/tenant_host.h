#ifndef DEMON_SERVER_TENANT_HOST_H_
#define DEMON_SERVER_TENANT_HOST_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "server/tenant.h"

namespace demon::server {

/// Host-wide counters, as reported by `Stats("")`.
struct HostStats {
  uint64_t num_tenants = 0;
  uint64_t records_admitted = 0;
  uint64_t records_durable = 0;
  uint64_t blocks = 0;
};

/// \brief The multi-tenant layer: a directory of independent Tenants
/// sharing one ThreadPool (and its parallelism-token budget) for their
/// background flushes.
///
/// Tenants live under `<data_dir>/tenants/<name>/` and are never removed
/// once created, so the pointers handed out under `mutex_` stay valid for
/// the host's lifetime and per-tenant work proceeds without the host
/// lock. `RecoverAll` (called by the server at startup) re-opens every
/// tenant directory holding a checkpoint, which is the entire crash
/// recovery story: checkpoint + WAL replay per tenant.
class TenantHost {
 public:
  TenantHost(std::string data_dir, size_t num_threads, TenantPolicy policy,
             telemetry::TelemetryRegistry* telemetry);

  /// Scans the tenants directory and recovers every tenant with a
  /// checkpoint. Directories without one (a crash before the initial
  /// checkpoint completed) are skipped; the tenant was never
  /// acknowledged as created.
  [[nodiscard]] Status RecoverAll() DEMON_EXCLUDES(mutex_);

  /// Creates a tenant, or — when it already exists (a client retrying
  /// after a crash or a lost ack) — succeeds idempotently, returning the
  /// existing tenant's stats so the client can resume its cursor.
  /// `num_items` and `specs` are only consulted on first creation.
  [[nodiscard]] Result<TenantStats> CreateTenant(
      const std::string& name, uint64_t num_items,
      std::vector<MonitorSpec> specs) DEMON_EXCLUDES(mutex_);

  [[nodiscard]] Result<AppendOutcome> Append(
      const std::string& name, uint64_t first_record_index,
      std::vector<Transaction> records) DEMON_EXCLUDES(mutex_);

  /// Seals everything the tenant has staged and checkpoints it.
  [[nodiscard]] Result<TenantStats> FlushTenant(const std::string& name)
      DEMON_EXCLUDES(mutex_);

  /// FlushTenant over every tenant; the first error wins but every
  /// tenant is still attempted (a wedged tenant must not leave its
  /// siblings unflushed on shutdown).
  [[nodiscard]] Status FlushAll() DEMON_EXCLUDES(mutex_);

  [[nodiscard]] Result<TenantStats> TenantStatsOf(const std::string& name)
      DEMON_EXCLUDES(mutex_);
  HostStats Stats() DEMON_EXCLUDES(mutex_);

  size_t NumTenants() DEMON_EXCLUDES(mutex_);

  /// Valid tenant names: 1..100 chars of [A-Za-z0-9_-]. Tenant names
  /// become directory names, so this is the path-traversal guard.
  [[nodiscard]] static Status ValidateTenantName(const std::string& name);

  const std::string& data_dir() const { return data_dir_; }
  ThreadPool* pool() { return &pool_; }

 private:
  Tenant* FindTenant(const std::string& name) DEMON_EXCLUDES(mutex_);
  std::string TenantDir(const std::string& name) const;

  const std::string data_dir_;
  const TenantPolicy policy_;
  ThreadPool pool_;
  telemetry::TelemetryRegistry* const telemetry_;

  Mutex mutex_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_
      DEMON_GUARDED_BY(mutex_);
};

}  // namespace demon::server

#endif  // DEMON_SERVER_TENANT_HOST_H_
