#include "dtree/dtree_maintainer.h"

#include "common/check.h"

namespace demon {

DTreeMaintainer::DTreeMaintainer(const LabeledSchema& schema,
                                 const DTreeOptions& options)
    : schema_(schema), options_(options), tree_(schema) {
  DEMON_CHECK(schema_.num_attributes() > 0);
  DEMON_CHECK(schema_.num_classes >= 2);
  DEMON_CHECK(options_.max_depth >= 1);
}

void DTreeMaintainer::EnsureLeafStats(DecisionTree::Node* leaf) {
  if (!leaf->avc.empty()) return;
  leaf->avc.resize(schema_.num_attributes());
  for (size_t a = 0; a < schema_.num_attributes(); ++a) {
    leaf->avc[a].assign(schema_.attribute_cardinalities[a],
                        std::vector<double>(schema_.num_classes, 0.0));
  }
  if (leaf->class_counts.empty()) {
    leaf->class_counts.assign(schema_.num_classes, 0.0);
  }
  if (leaf->used_attributes.empty()) {
    leaf->used_attributes.assign(schema_.num_attributes(), false);
  }
}

DecisionTree::Node* DTreeMaintainer::RouteTracked(
    const LabeledRecord& record, size_t* depth) {
  DecisionTree::Node* node = tree_.mutable_root();
  *depth = 1;
  while (node->split_attribute >= 0) {
    node = node->children[record.attributes[node->split_attribute]].get();
    ++*depth;
  }
  return node;
}

void DTreeMaintainer::MaybeSplit(DecisionTree::Node* leaf, size_t depth) {
  if (depth >= options_.max_depth) return;
  double weight = 0.0;
  for (double c : leaf->class_counts) weight += c;
  if (weight < options_.min_split_weight) return;

  const SplitChoice choice =
      BestSplit(leaf->avc, leaf->used_attributes, options_.min_gain);
  if (choice.attribute < 0) return;

  // Split: children take the per-value class counts recorded in this
  // leaf's AVC statistics; their own AVC starts empty and fills from
  // future records. Counts the leaf itself inherited from an earlier
  // split (whose attribute breakdown is unknown) stay behind as the
  // node's residual, so total weight is conserved across splits.
  const size_t attribute = static_cast<size_t>(choice.attribute);
  leaf->split_attribute = choice.attribute;
  leaf->children.resize(schema_.attribute_cardinalities[attribute]);
  for (size_t v = 0; v < leaf->children.size(); ++v) {
    auto child = std::make_unique<DecisionTree::Node>();
    child->class_counts = leaf->avc[attribute][v];
    child->used_attributes = leaf->used_attributes;
    child->used_attributes[attribute] = true;
    for (size_t c = 0; c < child->class_counts.size(); ++c) {
      leaf->class_counts[c] -= child->class_counts[c];
      if (leaf->class_counts[c] < 0.0) leaf->class_counts[c] = 0.0;
    }
    leaf->children[v] = std::move(child);
  }
  leaf->avc.clear();
}

void DTreeMaintainer::AddBlock(const BlockPtr& block) {
  DEMON_CHECK(block != nullptr);
  DEMON_CHECK(block->schema().num_attributes() == schema_.num_attributes());
  ++blocks_seen_;
  for (const LabeledRecord& record : block->records()) {
    size_t depth = 0;
    DecisionTree::Node* leaf = RouteTracked(record, &depth);
    EnsureLeafStats(leaf);
    leaf->class_counts[record.label] += 1.0;
    for (size_t a = 0; a < schema_.num_attributes(); ++a) {
      leaf->avc[a][record.attributes[a]][record.label] += 1.0;
    }
    MaybeSplit(leaf, depth);
  }
  tree_.AssignLeafIds();
}

double DTreeMaintainer::Accuracy(const LabeledBlock& block) const {
  if (block.empty()) return 0.0;
  size_t correct = 0;
  for (const LabeledRecord& record : block.records()) {
    correct += (tree_.Classify(record) == record.label) ? 1 : 0;
  }
  return static_cast<double>(correct) / static_cast<double>(block.size());
}

}  // namespace demon
