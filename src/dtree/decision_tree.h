#ifndef DEMON_DTREE_DECISION_TREE_H_
#define DEMON_DTREE_DECISION_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dtree/labeled_block.h"
#include "persistence/serializer.h"

namespace demon {

/// \brief A multiway decision tree over categorical attributes: internal
/// nodes split on one attribute (one child per value), leaves carry class
/// counts. This is the model class FOCUS's decision-tree instantiation
/// compares (structural component = the leaf partition of attribute
/// space; measure = the class distribution per leaf).
class DecisionTree {
 public:
  struct Node {
    /// -1 for leaves; otherwise the attribute split on.
    int split_attribute = -1;
    /// Children, one per attribute value (empty for leaves).
    std::vector<std::unique_ptr<Node>> children;
    /// Class counts of the training records that reached this node
    /// (maintained for leaves; internal nodes keep the counts they had
    /// when they split).
    std::vector<double> class_counts;
    /// Stable id assigned to each leaf in depth-first order by
    /// AssignLeafIds (used by the FOCUS overlay).
    int leaf_id = -1;
    /// Leaves only: attribute-value-class counts of the records seen here
    /// (avc[a][v][c]) — the sufficient statistics the incremental
    /// maintainer grows the tree from. Cleared when the leaf splits.
    std::vector<std::vector<std::vector<double>>> avc;
    /// Leaves only: attributes already split on along the path.
    std::vector<bool> used_attributes;
  };

  DecisionTree() = default;
  explicit DecisionTree(LabeledSchema schema);

  DecisionTree(DecisionTree&&) = default;
  DecisionTree& operator=(DecisionTree&&) = default;

  /// Deep copy (the tree owns its nodes, so copying is explicit).
  DecisionTree Clone() const;

  const LabeledSchema& schema() const { return schema_; }
  const Node* root() const { return root_.get(); }
  Node* mutable_root() { return root_.get(); }

  /// The leaf a record is routed to (never null once a root exists).
  const Node* Route(const LabeledRecord& record) const;
  Node* MutableRoute(const LabeledRecord& record);

  /// Majority-class prediction for a record.
  uint32_t Classify(const LabeledRecord& record) const;

  /// Number of leaves; also (re)assigns dense leaf ids in DFS order.
  size_t AssignLeafIds();

  size_t NumLeaves() const;
  size_t Depth() const;

  /// Total weight of training records seen at the root.
  double TotalWeight() const;

  /// Multi-line dump for debugging and example output.
  std::string ToString() const;

  /// Serializes the node structure, including the leaves' AVC statistics
  /// (the sufficient statistics incremental maintenance resumes from).
  /// The schema is configuration and comes from the constructor on restore.
  void SaveState(persistence::Writer& w) const;

  /// Restores state saved by SaveState into a tree constructed with the
  /// same schema. Corruption latches a DataLoss on `r`.
  void LoadState(persistence::Reader& r);

 private:
  void SaveNode(persistence::Writer& w, const Node& node) const;
  std::unique_ptr<Node> LoadNode(persistence::Reader& r, size_t depth);

  LabeledSchema schema_;
  std::unique_ptr<Node> root_;
};

/// \brief Shannon entropy of a count vector (0 for empty/degenerate).
double Entropy(const std::vector<double>& counts);

/// \brief Result of evaluating the best split at a node.
struct SplitChoice {
  int attribute = -1;   // -1: no admissible split
  double gain = 0.0;    // information gain of the best attribute
};

/// \brief Picks the attribute with the highest information gain from
/// per-(attribute, value, class) counts. `avc[a][v][c]` are counts;
/// attributes in `used` are skipped. Gains below `min_gain` yield -1.
SplitChoice BestSplit(
    const std::vector<std::vector<std::vector<double>>>& avc,
    const std::vector<bool>& used, double min_gain);

}  // namespace demon

#endif  // DEMON_DTREE_DECISION_TREE_H_
