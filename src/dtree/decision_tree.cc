#include "dtree/decision_tree.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace demon {

DecisionTree::DecisionTree(LabeledSchema schema)
    : schema_(std::move(schema)), root_(std::make_unique<Node>()) {
  root_->class_counts.assign(schema_.num_classes, 0.0);
  root_->used_attributes.assign(schema_.num_attributes(), false);
}

namespace {

std::unique_ptr<DecisionTree::Node> CloneNode(const DecisionTree::Node* node) {
  auto copy = std::make_unique<DecisionTree::Node>();
  copy->split_attribute = node->split_attribute;
  copy->class_counts = node->class_counts;
  copy->leaf_id = node->leaf_id;
  copy->avc = node->avc;
  copy->used_attributes = node->used_attributes;
  copy->children.reserve(node->children.size());
  for (const auto& child : node->children) {
    copy->children.push_back(CloneNode(child.get()));
  }
  return copy;
}

}  // namespace

DecisionTree DecisionTree::Clone() const {
  DecisionTree copy;
  copy.schema_ = schema_;
  if (root_ != nullptr) {
    // Clone preserves node ids, statistics and structure exactly.
    copy.root_ = CloneNode(root_.get());
  }
  return copy;
}

const DecisionTree::Node* DecisionTree::Route(
    const LabeledRecord& record) const {
  DEMON_CHECK(root_ != nullptr);
  const Node* node = root_.get();
  while (node->split_attribute >= 0) {
    node = node->children[record.attributes[node->split_attribute]].get();
  }
  return node;
}

DecisionTree::Node* DecisionTree::MutableRoute(const LabeledRecord& record) {
  return const_cast<Node*>(Route(record));
}

uint32_t DecisionTree::Classify(const LabeledRecord& record) const {
  const Node* leaf = Route(record);
  uint32_t best = 0;
  double best_count = -1.0;
  for (uint32_t c = 0; c < leaf->class_counts.size(); ++c) {
    if (leaf->class_counts[c] > best_count) {
      best_count = leaf->class_counts[c];
      best = c;
    }
  }
  return best;
}

namespace {

void AssignIds(DecisionTree::Node* node, int* next) {
  if (node->split_attribute < 0) {
    node->leaf_id = (*next)++;
    return;
  }
  node->leaf_id = -1;
  for (auto& child : node->children) AssignIds(child.get(), next);
}

size_t CountLeaves(const DecisionTree::Node* node) {
  if (node->split_attribute < 0) return 1;
  size_t total = 0;
  for (const auto& child : node->children) total += CountLeaves(child.get());
  return total;
}

size_t NodeDepth(const DecisionTree::Node* node) {
  if (node->split_attribute < 0) return 1;
  size_t deepest = 0;
  for (const auto& child : node->children) {
    deepest = std::max(deepest, NodeDepth(child.get()));
  }
  return deepest + 1;
}

void Dump(const DecisionTree::Node* node, int indent, std::string* out) {
  out->append(indent * 2, ' ');
  if (node->split_attribute < 0) {
    out->append("leaf#" + std::to_string(node->leaf_id) + " [");
    for (size_t c = 0; c < node->class_counts.size(); ++c) {
      if (c > 0) out->append(", ");
      out->append(std::to_string(static_cast<long long>(
          node->class_counts[c])));
    }
    out->append("]\n");
    return;
  }
  out->append("split a" + std::to_string(node->split_attribute) + "\n");
  for (size_t v = 0; v < node->children.size(); ++v) {
    out->append(indent * 2 + 1, ' ');
    out->append("= " + std::to_string(v) + ":\n");
    Dump(node->children[v].get(), indent + 1, out);
  }
}

}  // namespace

size_t DecisionTree::AssignLeafIds() {
  DEMON_CHECK(root_ != nullptr);
  int next = 0;
  AssignIds(root_.get(), &next);
  return static_cast<size_t>(next);
}

size_t DecisionTree::NumLeaves() const {
  return root_ == nullptr ? 0 : CountLeaves(root_.get());
}

size_t DecisionTree::Depth() const {
  return root_ == nullptr ? 0 : NodeDepth(root_.get());
}

namespace {

double NodeWeight(const DecisionTree::Node* node) {
  // A node's class_counts hold the records recorded there that were not
  // pushed into children (for leaves: everything seen; for internal
  // nodes: the residual inherited from splits whose attribute breakdown
  // is unknown). Summing over all nodes conserves the insert count.
  double total = 0.0;
  for (double c : node->class_counts) total += c;
  for (const auto& child : node->children) total += NodeWeight(child.get());
  return total;
}

}  // namespace

double DecisionTree::TotalWeight() const {
  return root_ == nullptr ? 0.0 : NodeWeight(root_.get());
}

std::string DecisionTree::ToString() const {
  if (root_ == nullptr) return "(empty tree)\n";
  std::string out;
  Dump(root_.get(), 0, &out);
  return out;
}

double Entropy(const std::vector<double>& counts) {
  double total = 0.0;
  for (double c : counts) total += c;
  if (total <= 0.0) return 0.0;
  double entropy = 0.0;
  for (double c : counts) {
    if (c <= 0.0) continue;
    const double p = c / total;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

SplitChoice BestSplit(
    const std::vector<std::vector<std::vector<double>>>& avc,
    const std::vector<bool>& used, double min_gain) {
  SplitChoice choice;
  if (avc.empty()) return choice;

  // Node class distribution from attribute 0's counts (same totals for
  // every attribute).
  std::vector<double> node_counts;
  for (const auto& value_counts : avc[0]) {
    if (node_counts.size() < value_counts.size()) {
      node_counts.resize(value_counts.size(), 0.0);
    }
    for (size_t c = 0; c < value_counts.size(); ++c) {
      node_counts[c] += value_counts[c];
    }
  }
  double total = 0.0;
  for (double c : node_counts) total += c;
  if (total <= 0.0) return choice;
  const double node_entropy = Entropy(node_counts);

  for (size_t a = 0; a < avc.size(); ++a) {
    if (used[a]) continue;
    double weighted = 0.0;
    for (const auto& value_counts : avc[a]) {
      double value_total = 0.0;
      for (double c : value_counts) value_total += c;
      if (value_total <= 0.0) continue;
      weighted += value_total / total * Entropy(value_counts);
    }
    const double gain = node_entropy - weighted;
    if (gain > choice.gain) {
      choice.gain = gain;
      choice.attribute = static_cast<int>(a);
    }
  }
  if (choice.gain < min_gain) {
    choice.attribute = -1;
    choice.gain = 0.0;
  }
  return choice;
}

void DecisionTree::SaveNode(persistence::Writer& w, const Node& node) const {
  w.WriteI64(node.split_attribute);
  w.WriteDoubleVector(node.class_counts);
  w.WriteI64(node.leaf_id);
  w.WriteU64(node.used_attributes.size());
  for (const bool used : node.used_attributes) w.WriteBool(used);
  w.WriteU64(node.avc.size());
  for (const auto& values : node.avc) {
    w.WriteU64(values.size());
    for (const auto& class_counts : values) w.WriteDoubleVector(class_counts);
  }
  w.WriteU64(node.children.size());
  for (const auto& child : node.children) SaveNode(w, *child);
}

std::unique_ptr<DecisionTree::Node> DecisionTree::LoadNode(
    persistence::Reader& r, size_t depth) {
  // Trees are capped by DTreeOptions::max_depth; a corrupt stream must not
  // recurse the stack dry.
  if (depth > 128) {
    r.Fail("decision tree deeper than the decode height cap");
    return nullptr;
  }
  auto node = std::make_unique<Node>();
  const int64_t split = r.ReadI64();
  node->class_counts = r.ReadDoubleVector();
  const int64_t leaf_id = r.ReadI64();
  if (!r.ok()) return nullptr;
  if (split < -1 || split > static_cast<int64_t>(schema_.num_attributes()) ||
      leaf_id < -1) {
    r.Fail("decision-tree node fields out of range");
    return nullptr;
  }
  node->split_attribute = static_cast<int>(split);
  node->leaf_id = static_cast<int>(leaf_id);
  const size_t num_used = r.ReadLength(1);
  node->used_attributes.reserve(num_used);
  for (size_t i = 0; i < num_used; ++i) {
    node->used_attributes.push_back(r.ReadBool());
  }
  const size_t num_attributes = r.ReadLength(sizeof(uint64_t));
  if (!r.ok()) return nullptr;
  node->avc.resize(num_attributes);
  for (size_t a = 0; a < num_attributes; ++a) {
    const size_t num_values = r.ReadLength(sizeof(uint64_t));
    if (!r.ok()) return nullptr;
    node->avc[a].resize(num_values);
    for (size_t v = 0; v < num_values; ++v) {
      node->avc[a][v] = r.ReadDoubleVector();
    }
  }
  // Each serialized child occupies at least its two i64 fields.
  const size_t num_children = r.ReadLength(2 * sizeof(int64_t));
  if (!r.ok()) return nullptr;
  if (node->split_attribute >= 0 && num_children == 0) {
    r.Fail("internal decision-tree node without children");
    return nullptr;
  }
  node->children.reserve(num_children);
  for (size_t i = 0; i < num_children; ++i) {
    auto child = LoadNode(r, depth + 1);
    if (!r.ok()) return nullptr;
    node->children.push_back(std::move(child));
  }
  return node;
}

void DecisionTree::SaveState(persistence::Writer& w) const {
  w.WriteBool(root_ != nullptr);
  if (root_ != nullptr) SaveNode(w, *root_);
}

void DecisionTree::LoadState(persistence::Reader& r) {
  const bool has_root = r.ReadBool();
  if (!r.ok()) return;
  if (!has_root) {
    root_.reset();
    return;
  }
  auto root = LoadNode(r, 1);
  if (!r.ok()) return;
  root_ = std::move(root);
}

}  // namespace demon
