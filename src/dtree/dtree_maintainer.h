#ifndef DEMON_DTREE_DTREE_MAINTAINER_H_
#define DEMON_DTREE_DTREE_MAINTAINER_H_

#include <memory>

#include "dtree/decision_tree.h"

namespace demon {

/// Configuration of the incremental decision-tree maintainer.
struct DTreeOptions {
  /// A leaf splits only once it has accumulated this many records ...
  double min_split_weight = 200.0;
  /// ... and some attribute's information gain reaches this threshold.
  double min_gain = 0.01;
  /// Hard depth cap (root = depth 1).
  size_t max_depth = 12;
};

/// \brief Incremental decision-tree maintainer for the unrestricted-window
/// option: each arriving block is scanned once; records are routed to
/// their leaves, whose attribute-value-class statistics accumulate across
/// blocks; a leaf splits when it has seen enough weight and a split
/// clears the gain threshold (the leaf-statistics scheme of incremental
/// classifiers in the VFDT family, standing in for BOAT [GGRL99b], which
/// the paper cites instead of re-describing).
///
/// Satisfies the GEMM maintainer concept (`AddBlock(BlockPtr)`), so the
/// most-recent-window option with arbitrary BSS comes for free — the
/// exact genericity claim of §3.2, exercised with a third model class.
class DTreeMaintainer {
 public:
  using BlockPtr = std::shared_ptr<const LabeledBlock>;

  DTreeMaintainer(const LabeledSchema& schema, const DTreeOptions& options);

  /// Scans the block once: routes records, updates leaf statistics, and
  /// performs any splits that became admissible.
  void AddBlock(const BlockPtr& block);

  const DecisionTree& model() const { return tree_; }

  /// Moves the model out (the maintainer must not be used afterwards);
  /// for one-shot mining like FocusDecisionTrees::MineModel.
  DecisionTree TakeModel() && { return std::move(tree_); }

  /// Fraction of `block` classified correctly by the current model.
  double Accuracy(const LabeledBlock& block) const;

  size_t blocks_seen() const { return blocks_seen_; }

  /// Serializes the tree (with leaf AVC statistics) and the block count.
  void SaveState(persistence::Writer& w) const {
    tree_.SaveState(w);
    w.WriteU64(blocks_seen_);
  }

  /// Restores state saved by SaveState into a freshly constructed
  /// maintainer with the same schema/options.
  [[nodiscard]] Status LoadState(persistence::Reader& r) {
    if (blocks_seen_ != 0) {
      return Status::FailedPrecondition(
          "decision-tree state can only be restored into a fresh maintainer");
    }
    tree_.LoadState(r);
    blocks_seen_ = r.ReadU64();
    return r.status();
  }

 private:
  void EnsureLeafStats(DecisionTree::Node* leaf);
  void MaybeSplit(DecisionTree::Node* leaf, size_t depth);
  /// Routes a record while tracking depth; returns the leaf and depth.
  DecisionTree::Node* RouteTracked(const LabeledRecord& record,
                                   size_t* depth);

  LabeledSchema schema_;
  DTreeOptions options_;
  DecisionTree tree_;
  size_t blocks_seen_ = 0;
};

}  // namespace demon

#endif  // DEMON_DTREE_DTREE_MAINTAINER_H_
