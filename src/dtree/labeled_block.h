#ifndef DEMON_DTREE_LABELED_BLOCK_H_
#define DEMON_DTREE_LABELED_BLOCK_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "data/block.h"

namespace demon {

/// \brief Schema of a labeled dataset: all attributes are categorical with
/// a fixed number of values, plus a class label. (The decision-tree model
/// class of FOCUS/DEMON; categorical-only keeps the overlay of tree
/// partitions exact.)
struct LabeledSchema {
  /// attribute_cardinalities[a] = number of distinct values of attribute a.
  std::vector<uint32_t> attribute_cardinalities;
  uint32_t num_classes = 2;

  size_t num_attributes() const { return attribute_cardinalities.size(); }
};

/// \brief One labeled record: attribute values (parallel to the schema)
/// and a class label.
struct LabeledRecord {
  std::vector<uint32_t> attributes;
  uint32_t label = 0;
};

/// \brief A block of labeled records — the unit of systematic evolution
/// for the classification model class. Immutable once constructed.
class LabeledBlock {
 public:
  LabeledBlock() = default;

  LabeledBlock(LabeledSchema schema, std::vector<LabeledRecord> records)
      : schema_(std::move(schema)), records_(std::move(records)) {
    for (const LabeledRecord& record : records_) {
      DEMON_CHECK(record.attributes.size() == schema_.num_attributes());
      DEMON_CHECK(record.label < schema_.num_classes);
      for (size_t a = 0; a < record.attributes.size(); ++a) {
        DEMON_CHECK(record.attributes[a] <
                    schema_.attribute_cardinalities[a]);
      }
    }
  }

  const LabeledSchema& schema() const { return schema_; }
  const std::vector<LabeledRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  const BlockInfo& info() const { return info_; }
  BlockInfo* mutable_info() { return &info_; }

 private:
  LabeledSchema schema_;
  std::vector<LabeledRecord> records_;
  BlockInfo info_;
};

}  // namespace demon

#endif  // DEMON_DTREE_LABELED_BLOCK_H_
