#ifndef DEMON_CORE_ENGINE_H_
#define DEMON_CORE_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/audit.h"
#include "common/status.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "core/bss.h"
#include "core/model_maintainer.h"

namespace demon {

/// Configuration of a MaintenanceEngine.
struct EngineOptions {
  /// Number of worker threads updating monitors concurrently. 0 runs
  /// every update inline on the dispatching thread (sequential mode);
  /// parallel maintenance is bit-identical to sequential because monitors
  /// are independent and the engine barriers between blocks.
  size_t num_threads = 0;

  /// When true (and num_threads > 0), GEMM's future-window updates are
  /// queued to the pool after the time-critical response completes, and
  /// drained before the next block is dispatched (or on Quiesce). Response
  /// latency then reflects only the time-critical path (§3.2.3's "can be
  /// brought up to date off-line").
  bool defer_offline = false;

  /// Registry receiving the engine's spans, per-monitor latency
  /// histograms and kernel counters. Null (the default) makes the engine
  /// own a private registry, so concurrent engines never mix telemetry;
  /// inject one to aggregate across engines or to read it from outside.
  /// Must outlive the engine when set.
  telemetry::TelemetryRegistry* telemetry = nullptr;

  /// How many per-block timeline records the engine retains (a bounded
  /// ring; the oldest record is evicted when full). 0 disables block
  /// timeline recording entirely.
  size_t block_timeline_capacity = 4096;
};

/// \brief Per-monitor instrumentation, as returned by `StatsOf`.
///
/// This is a compatibility *view* over the engine's telemetry: the
/// latency fields are derived from the per-monitor response/offline
/// histograms (`monitor/<name>/response_seconds` and `.../offline_seconds`
/// in the engine's registry) at the moment of the call. Those histograms
/// are recorded in every build — the DEMON_TELEMETRY gate only controls
/// span tracing and kernel-level macros — so MonitorStats behaves
/// identically under -DDEMON_TELEMETRY=OFF.
struct MonitorStats {
  /// Blocks whose payload matched and whose BSS gate selected them.
  size_t blocks_routed = 0;
  /// Matching-payload blocks the BSS gate filtered out (§3.1: the model
  /// simply carries over).
  size_t blocks_skipped = 0;
  /// Cumulative wall time on the time-critical response path.
  double response_seconds = 0.0;
  /// Cumulative wall time on deferrable offline updates.
  double offline_seconds = 0.0;
  double last_response_seconds = 0.0;
  double last_offline_seconds = 0.0;

  /// CPU time (per-thread clock) next to the wall times above. Under
  /// time-slicing on few cores the wall times of concurrent monitors
  /// overlap and their sum inflates past real compute; the CPU times
  /// still add up to the cores' capacity, so use these to compare
  /// monitor cost on loaded machines.
  double response_cpu_seconds = 0.0;
  double offline_cpu_seconds = 0.0;
  double last_response_cpu_seconds = 0.0;
  double last_offline_cpu_seconds = 0.0;

  /// How the maintained model changed over the last routed block
  /// (DescribeEvolution, captured at the response barrier). All zeros
  /// until the first block routes.
  EvolutionStats evolution;

  /// Latency distribution over all routed blocks, from the histograms
  /// (quantiles interpolated within buckets; max is exact).
  double response_p50 = 0.0;
  double response_p95 = 0.0;
  double response_max = 0.0;
  double offline_p50 = 0.0;
  double offline_p95 = 0.0;
  double offline_max = 0.0;

  double total_seconds() const { return response_seconds + offline_seconds; }
  double last_block_seconds() const {
    return last_response_seconds + last_offline_seconds;
  }
};

/// \brief One structured timeline record per quiesced block: what the
/// engine knows once every response (and, eventually, offline) update for
/// that block has landed. demon_cli merges these with the scraper's
/// periodic samples into the --timeline_out JSONL.
///
/// Records for blocks whose offline work was deferred stay pending inside
/// the engine until the next quiesced boundary (the next Dispatch, a
/// TimelineRecords() call, or destruction) and only then carry final
/// offline times.
struct BlockTimelineRecord {
  BlockId block_id = 0;
  uint64_t t_ns = 0;   ///< NowNanos() when the dispatch began.
  size_t records = 0;  ///< Records in the block.

  struct MonitorRow {
    std::string name;
    double response_seconds = 0.0;
    double response_cpu_seconds = 0.0;
    double offline_seconds = 0.0;
    double offline_cpu_seconds = 0.0;
    EvolutionStats evolution;
  };
  /// One row per *routed* monitor (skipped monitors carry over unchanged).
  std::vector<MonitorRow> monitors;

  /// `tidlist/resident_bytes` gauge at the quiesced boundary.
  double tidlist_resident_bytes = 0.0;
  /// Pool parallelism tokens held mid-response (num_threads − available,
  /// sampled once after the fan-out; 0 in sequential mode).
  double tokens_in_flight = 0.0;
};

/// JSONL rendering of block records — one `{"type":"block",...}` object
/// per line, mergeable with telemetry::TimelineJsonl scrape lines.
std::string BlockTimelineJsonl(const std::vector<BlockTimelineRecord>& records);

/// \brief Drives every registered model maintainer from one stream of
/// arriving blocks — the paper's Figure 11 loop as an engine.
///
/// `Dispatch` routes a block to each monitor whose payload matches and
/// whose BSS gate (if any) selects the block, updating all of them
/// concurrently on a fixed-size thread pool (or inline when
/// `num_threads == 0`). Monitors never share state, each monitor sees its
/// blocks in arrival order, and the engine waits for all response updates
/// before returning — so parallel execution produces models bit-identical
/// to sequential execution.
///
/// In `defer_offline` mode the deferrable half of each update (GEMM's
/// future-window maintenance) is queued to the pool after the response
/// path completes and drained before the next block or on `Quiesce()`.
class MaintenanceEngine {
 public:
  using MonitorId = size_t;

  explicit MaintenanceEngine(const EngineOptions& options = {});

  /// Drains any deferred offline work before shutting down the pool.
  ~MaintenanceEngine();

  MaintenanceEngine(const MaintenanceEngine&) = delete;
  MaintenanceEngine& operator=(const MaintenanceEngine&) = delete;

  /// Registers a maintainer under `name`. `gate` is a window-independent
  /// BSS filtering which matching-payload blocks reach the maintainer
  /// (unset = all; GEMM-backed maintainers apply their BSS internally).
  MonitorId Register(std::string name,
                     std::unique_ptr<ModelMaintainer> maintainer,
                     std::optional<BlockSelectionSequence> gate = std::nullopt);

  /// Routes `block` to every eligible monitor and waits for all response
  /// updates; offline updates are deferred or run inline per the options.
  void Dispatch(const AnyBlock& block);

  /// Blocks until all deferred offline updates have landed. Logically
  /// const: it only waits for in-flight work, mutating no engine state.
  void Quiesce() const;

  size_t NumMonitors() const { return monitors_.size(); }

  /// The accessors below Quiesce() first, so reading a maintainer's model
  /// or stats never races with a deferred offline update. `StatsOf` is
  /// therefore quiesce-consistent: the returned snapshot reflects every
  /// block previously dispatched, including deferred offline work.
  [[nodiscard]] Result<const ModelMaintainer*> MaintainerOf(MonitorId id) const;
  /// Mutable access for checkpoint restore (LoadState); quiesces first.
  [[nodiscard]] Result<ModelMaintainer*> MutableMaintainerOf(MonitorId id);
  [[nodiscard]] Result<MonitorStats> StatsOf(MonitorId id) const;
  [[nodiscard]] Result<std::string> NameOf(MonitorId id) const;

  const EngineOptions& options() const { return options_; }
  bool parallel() const { return pool_ != nullptr; }

  /// The registry every monitor reports into (engine-owned unless
  /// EngineOptions::telemetry injected one).
  telemetry::TelemetryRegistry* telemetry() const { return telemetry_; }

  /// Quiesces, then renders the registry: the Chrome trace_event span
  /// timeline (load the string written to a .json file in Perfetto) or
  /// the Prometheus text exposition of all counters and histograms.
  std::string ExportTelemetry(telemetry::TelemetryFormat format) const;

  /// Quiesces, finalizes any pending block record (deferred offline work
  /// has now landed), and returns the retained per-block timeline,
  /// oldest first. Empty when block_timeline_capacity is 0.
  std::vector<BlockTimelineRecord> TimelineRecords();

  /// Block records evicted from the ring so far.
  uint64_t timeline_dropped() const { return timeline_dropped_; }

  /// Runs every monitor's deep invariant audit now and escalates any
  /// violation through the audit failure handler (default: report and
  /// abort), with the monitor's name prefixed to each report. In
  /// DEMON_AUDIT builds the engine calls this itself at every block
  /// boundary — once all response and offline work for a block has landed
  /// — so each Dispatch-driven test doubles as a structural fuzz pass.
  /// Callers must have quiesced first (the engine's own call sites have).
  void AuditMonitors() const;

 private:
  struct Entry {
    std::string name;
    std::unique_ptr<ModelMaintainer> maintainer;
    std::optional<BlockSelectionSequence> gate;
    /// Counts and last-block latencies; the cumulative and quantile
    /// fields of the StatsOf view come from the histograms below.
    MonitorStats stats;
    /// Registered as "monitor/<name>/{response,offline}_seconds"; live in
    /// every build (ScopedTimer bypasses the DEMON_TELEMETRY gate).
    telemetry::Histogram* response_hist = nullptr;
    telemetry::Histogram* offline_hist = nullptr;
    /// CPU-time (thread clock) siblings of the wall histograms above —
    /// "monitor/<name>/{response,offline}_cpu_seconds".
    telemetry::Histogram* response_cpu_hist = nullptr;
    telemetry::Histogram* offline_cpu_hist = nullptr;
    /// "evolution/<name>/..." gauges, published at each response barrier
    /// (registered eagerly; the aux pair lazily, once its name is known).
    telemetry::Gauge* evo_elements = nullptr;
    telemetry::Gauge* evo_added = nullptr;
    telemetry::Gauge* evo_removed = nullptr;
    telemetry::Gauge* evo_churn = nullptr;
    telemetry::Gauge* evo_aux = nullptr;
    telemetry::Gauge* evo_aux2 = nullptr;
  };

  [[nodiscard]] Status CheckId(MonitorId id) const;
  void RunResponse(Entry* entry, const AnyBlock& block, uint64_t parent_span);
  void RunOffline(Entry* entry, uint64_t parent_span);

  /// Captures DescribeEvolution for every routed monitor and publishes
  /// the evolution gauges. Called at the response barrier of Dispatch —
  /// after WaitIdle, before offline work is queued (deferred offline
  /// mutates GEMM future windows concurrently).
  void CaptureEvolution(const std::vector<Entry*>& routed);

  /// Fills the offline fields of the pending block record and moves it
  /// into the ring. Caller must be at a quiesced boundary.
  void FinalizePendingTimeline();

  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  /// Backing storage for telemetry_ when no registry was injected.
  std::unique_ptr<telemetry::TelemetryRegistry> owned_telemetry_;
  telemetry::TelemetryRegistry* telemetry_ = nullptr;
  /// True when a block's offline work was deferred to the pool, so its
  /// boundary audit must wait for the next Quiesce-then-Dispatch (or the
  /// destructor). Only meaningful in DEMON_AUDIT builds.
  bool audit_pending_ = false;
  /// unique_ptr entries keep addresses stable across registration, so
  /// in-flight tasks can hold raw Entry pointers.
  std::vector<std::unique_ptr<Entry>> monitors_;

  /// Bounded ring of finalized block records (see BlockTimelineRecord).
  /// Only the dispatching thread touches these, so no lock is needed.
  std::vector<BlockTimelineRecord> timeline_;
  size_t timeline_head_ = 0;
  size_t timeline_size_ = 0;
  uint64_t timeline_dropped_ = 0;
  /// Record for the last dispatched block while its offline work is still
  /// deferred; finalized at the next quiesced boundary.
  std::optional<BlockTimelineRecord> pending_record_;
  /// Routed entries of the pending record, to read their offline times.
  std::vector<Entry*> pending_routed_;
};

}  // namespace demon

#endif  // DEMON_CORE_ENGINE_H_
