#ifndef DEMON_CORE_ENGINE_H_
#define DEMON_CORE_ENGINE_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/audit.h"
#include "common/status.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "core/bss.h"
#include "core/model_maintainer.h"

namespace demon {

/// Configuration of a MaintenanceEngine.
struct EngineOptions {
  /// Number of worker threads updating monitors concurrently. 0 runs
  /// every update inline on the dispatching thread (sequential mode);
  /// parallel maintenance is bit-identical to sequential because monitors
  /// are independent and the engine barriers between blocks.
  size_t num_threads = 0;

  /// When true (and num_threads > 0), GEMM's future-window updates are
  /// queued to the pool after the time-critical response completes, and
  /// drained before the next block is dispatched (or on Quiesce). Response
  /// latency then reflects only the time-critical path (§3.2.3's "can be
  /// brought up to date off-line").
  bool defer_offline = false;

  /// Registry receiving the engine's spans, per-monitor latency
  /// histograms and kernel counters. Null (the default) makes the engine
  /// own a private registry, so concurrent engines never mix telemetry;
  /// inject one to aggregate across engines or to read it from outside.
  /// Must outlive the engine when set.
  telemetry::TelemetryRegistry* telemetry = nullptr;
};

/// \brief Per-monitor instrumentation, as returned by `StatsOf`.
///
/// This is a compatibility *view* over the engine's telemetry: the
/// latency fields are derived from the per-monitor response/offline
/// histograms (`monitor/<name>/response_seconds` and `.../offline_seconds`
/// in the engine's registry) at the moment of the call. Those histograms
/// are recorded in every build — the DEMON_TELEMETRY gate only controls
/// span tracing and kernel-level macros — so MonitorStats behaves
/// identically under -DDEMON_TELEMETRY=OFF.
struct MonitorStats {
  /// Blocks whose payload matched and whose BSS gate selected them.
  size_t blocks_routed = 0;
  /// Matching-payload blocks the BSS gate filtered out (§3.1: the model
  /// simply carries over).
  size_t blocks_skipped = 0;
  /// Cumulative wall time on the time-critical response path.
  double response_seconds = 0.0;
  /// Cumulative wall time on deferrable offline updates.
  double offline_seconds = 0.0;
  double last_response_seconds = 0.0;
  double last_offline_seconds = 0.0;

  /// Latency distribution over all routed blocks, from the histograms
  /// (quantiles interpolated within buckets; max is exact).
  double response_p50 = 0.0;
  double response_p95 = 0.0;
  double response_max = 0.0;
  double offline_p50 = 0.0;
  double offline_p95 = 0.0;
  double offline_max = 0.0;

  double total_seconds() const { return response_seconds + offline_seconds; }
  double last_block_seconds() const {
    return last_response_seconds + last_offline_seconds;
  }
};

/// \brief Drives every registered model maintainer from one stream of
/// arriving blocks — the paper's Figure 11 loop as an engine.
///
/// `Dispatch` routes a block to each monitor whose payload matches and
/// whose BSS gate (if any) selects the block, updating all of them
/// concurrently on a fixed-size thread pool (or inline when
/// `num_threads == 0`). Monitors never share state, each monitor sees its
/// blocks in arrival order, and the engine waits for all response updates
/// before returning — so parallel execution produces models bit-identical
/// to sequential execution.
///
/// In `defer_offline` mode the deferrable half of each update (GEMM's
/// future-window maintenance) is queued to the pool after the response
/// path completes and drained before the next block or on `Quiesce()`.
class MaintenanceEngine {
 public:
  using MonitorId = size_t;

  explicit MaintenanceEngine(const EngineOptions& options = {});

  /// Drains any deferred offline work before shutting down the pool.
  ~MaintenanceEngine();

  MaintenanceEngine(const MaintenanceEngine&) = delete;
  MaintenanceEngine& operator=(const MaintenanceEngine&) = delete;

  /// Registers a maintainer under `name`. `gate` is a window-independent
  /// BSS filtering which matching-payload blocks reach the maintainer
  /// (unset = all; GEMM-backed maintainers apply their BSS internally).
  MonitorId Register(std::string name,
                     std::unique_ptr<ModelMaintainer> maintainer,
                     std::optional<BlockSelectionSequence> gate = std::nullopt);

  /// Routes `block` to every eligible monitor and waits for all response
  /// updates; offline updates are deferred or run inline per the options.
  void Dispatch(const AnyBlock& block);

  /// Blocks until all deferred offline updates have landed. Logically
  /// const: it only waits for in-flight work, mutating no engine state.
  void Quiesce() const;

  size_t NumMonitors() const { return monitors_.size(); }

  /// The accessors below Quiesce() first, so reading a maintainer's model
  /// or stats never races with a deferred offline update. `StatsOf` is
  /// therefore quiesce-consistent: the returned snapshot reflects every
  /// block previously dispatched, including deferred offline work.
  [[nodiscard]] Result<const ModelMaintainer*> MaintainerOf(MonitorId id) const;
  /// Mutable access for checkpoint restore (LoadState); quiesces first.
  [[nodiscard]] Result<ModelMaintainer*> MutableMaintainerOf(MonitorId id);
  [[nodiscard]] Result<MonitorStats> StatsOf(MonitorId id) const;
  [[nodiscard]] Result<std::string> NameOf(MonitorId id) const;

  const EngineOptions& options() const { return options_; }
  bool parallel() const { return pool_ != nullptr; }

  /// The registry every monitor reports into (engine-owned unless
  /// EngineOptions::telemetry injected one).
  telemetry::TelemetryRegistry* telemetry() const { return telemetry_; }

  /// Quiesces, then renders the registry: the Chrome trace_event span
  /// timeline (load the string written to a .json file in Perfetto) or
  /// the Prometheus text exposition of all counters and histograms.
  std::string ExportTelemetry(telemetry::TelemetryFormat format) const;

  /// Runs every monitor's deep invariant audit now and escalates any
  /// violation through the audit failure handler (default: report and
  /// abort), with the monitor's name prefixed to each report. In
  /// DEMON_AUDIT builds the engine calls this itself at every block
  /// boundary — once all response and offline work for a block has landed
  /// — so each Dispatch-driven test doubles as a structural fuzz pass.
  /// Callers must have quiesced first (the engine's own call sites have).
  void AuditMonitors() const;

 private:
  struct Entry {
    std::string name;
    std::unique_ptr<ModelMaintainer> maintainer;
    std::optional<BlockSelectionSequence> gate;
    /// Counts and last-block latencies; the cumulative and quantile
    /// fields of the StatsOf view come from the histograms below.
    MonitorStats stats;
    /// Registered as "monitor/<name>/{response,offline}_seconds"; live in
    /// every build (ScopedTimer bypasses the DEMON_TELEMETRY gate).
    telemetry::Histogram* response_hist = nullptr;
    telemetry::Histogram* offline_hist = nullptr;
  };

  [[nodiscard]] Status CheckId(MonitorId id) const;
  void RunResponse(Entry* entry, const AnyBlock& block, uint64_t parent_span);
  void RunOffline(Entry* entry, uint64_t parent_span);

  EngineOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  /// Backing storage for telemetry_ when no registry was injected.
  std::unique_ptr<telemetry::TelemetryRegistry> owned_telemetry_;
  telemetry::TelemetryRegistry* telemetry_ = nullptr;
  /// True when a block's offline work was deferred to the pool, so its
  /// boundary audit must wait for the next Quiesce-then-Dispatch (or the
  /// destructor). Only meaningful in DEMON_AUDIT builds.
  bool audit_pending_ = false;
  /// unique_ptr entries keep addresses stable across registration, so
  /// in-flight tasks can hold raw Entry pointers.
  std::vector<std::unique_ptr<Entry>> monitors_;
};

}  // namespace demon

#endif  // DEMON_CORE_ENGINE_H_
