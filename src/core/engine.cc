#include "core/engine.h"

#include "common/timer.h"

namespace demon {

const char* ToString(AnyBlock::Payload payload) {
  switch (payload) {
    case AnyBlock::Payload::kTransactions:
      return "transactions";
    case AnyBlock::Payload::kPoints:
      return "points";
    case AnyBlock::Payload::kLabeled:
      return "labeled";
  }
  return "unknown";
}

MaintenanceEngine::MaintenanceEngine(const EngineOptions& options)
    : options_(options) {
  if (options_.num_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
}

MaintenanceEngine::~MaintenanceEngine() {
  Quiesce();
  if (audit::kEnabled && audit_pending_) {
    audit_pending_ = false;
    AuditMonitors();
  }
}

MaintenanceEngine::MonitorId MaintenanceEngine::Register(
    std::string name, std::unique_ptr<ModelMaintainer> maintainer,
    std::optional<BlockSelectionSequence> gate) {
  DEMON_CHECK(maintainer != nullptr);
  DEMON_CHECK_MSG(!gate || !gate->is_window_relative(),
                  "engine gates are window-independent; window-relative "
                  "BSSs belong inside a GEMM maintainer");
  auto entry = std::make_unique<Entry>();
  entry->name = std::move(name);
  entry->maintainer = std::move(maintainer);
  entry->gate = std::move(gate);
  // One pool serves both levels: monitor fan-out here, counting-level
  // sharding inside the maintainer (via ParallelFor, so nesting is safe).
  entry->maintainer->BindThreadPool(pool_.get());
  monitors_.push_back(std::move(entry));
  return monitors_.size() - 1;
}

void MaintenanceEngine::RunResponse(Entry* entry, const AnyBlock& block) {
  WallTimer timer;
  entry->maintainer->AddResponse(block);
  const double seconds = timer.ElapsedSeconds();
  ++entry->stats.blocks_routed;
  entry->stats.last_response_seconds = seconds;
  entry->stats.response_seconds += seconds;
  entry->stats.last_offline_seconds = 0.0;
}

void MaintenanceEngine::RunOffline(Entry* entry) {
  WallTimer timer;
  entry->maintainer->RunOffline();
  const double seconds = timer.ElapsedSeconds();
  entry->stats.last_offline_seconds = seconds;
  entry->stats.offline_seconds += seconds;
}

void MaintenanceEngine::Dispatch(const AnyBlock& block) {
  // Deferred future-window updates from the previous block must land
  // before this block reaches any maintainer.
  Quiesce();
  if (audit::kEnabled && audit_pending_) {
    // The previous block's offline work has now landed: audit its
    // boundary before any maintainer absorbs the next block.
    audit_pending_ = false;
    AuditMonitors();
  }

  std::vector<Entry*> routed;
  routed.reserve(monitors_.size());
  for (const auto& entry : monitors_) {
    if (entry->maintainer->payload() != block.payload()) continue;
    if (entry->gate && !entry->gate->SelectsBlock(block.id())) {
      ++entry->stats.blocks_skipped;
      continue;
    }
    routed.push_back(entry.get());
  }

  // Time-critical path: every routed monitor absorbs the block; the
  // barrier below is what the caller's response time measures.
  if (pool_ != nullptr) {
    for (Entry* entry : routed) {
      pool_->Submit([entry, &block] { RunResponse(entry, block); });
    }
    pool_->WaitIdle();
  } else {
    for (Entry* entry : routed) RunResponse(entry, block);
  }

  // Offline path: deferred to the pool (drained on the next Dispatch or
  // Quiesce) or run inline.
  bool deferred = false;
  for (Entry* entry : routed) {
    if (!entry->maintainer->has_offline_work()) continue;
    if (pool_ != nullptr && options_.defer_offline) {
      pool_->Submit([entry] { RunOffline(entry); });
      deferred = true;
    } else {
      RunOffline(entry);
    }
  }

  if (audit::kEnabled) {
    // Block boundary: every monitor's structures must satisfy their deep
    // invariants. With work in flight the audit waits for the quiesce at
    // the top of the next Dispatch (or the destructor).
    if (deferred) {
      audit_pending_ = true;
    } else {
      AuditMonitors();
    }
  }
}

void MaintenanceEngine::AuditMonitors() const {
  audit::AuditResult all;
  for (const auto& entry : monitors_) {
    audit::AuditResult one;
    entry->maintainer->AuditInvariants(&one);
    for (const audit::Violation& violation : one.violations()) {
      all.Fail("monitor " + entry->name + ": " + violation.module,
               violation.invariant, violation.message, violation.state);
    }
  }
  all.CheckOrDie();
}

void MaintenanceEngine::Quiesce() const {
  if (pool_ != nullptr) pool_->WaitIdle();
}

Status MaintenanceEngine::CheckId(MonitorId id) const {
  if (id >= monitors_.size()) {
    return Status::NotFound("no monitor with id " + std::to_string(id));
  }
  return Status::OK();
}

Result<const ModelMaintainer*> MaintenanceEngine::MaintainerOf(
    MonitorId id) const {
  DEMON_RETURN_NOT_OK(CheckId(id));
  Quiesce();
  return monitors_[id]->maintainer.get();
}

Result<MonitorStats> MaintenanceEngine::StatsOf(MonitorId id) const {
  DEMON_RETURN_NOT_OK(CheckId(id));
  Quiesce();
  return monitors_[id]->stats;
}

Result<std::string> MaintenanceEngine::NameOf(MonitorId id) const {
  DEMON_RETURN_NOT_OK(CheckId(id));
  return monitors_[id]->name;
}

}  // namespace demon
