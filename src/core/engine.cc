#include "core/engine.h"

namespace demon {

const char* ToString(AnyBlock::Payload payload) {
  switch (payload) {
    case AnyBlock::Payload::kTransactions:
      return "transactions";
    case AnyBlock::Payload::kPoints:
      return "points";
    case AnyBlock::Payload::kLabeled:
      return "labeled";
  }
  return "unknown";
}

MaintenanceEngine::MaintenanceEngine(const EngineOptions& options)
    : options_(options) {
  if (options_.num_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  if (options_.telemetry != nullptr) {
    telemetry_ = options_.telemetry;
  } else {
    owned_telemetry_ = std::make_unique<telemetry::TelemetryRegistry>();
    telemetry_ = owned_telemetry_.get();
  }
}

MaintenanceEngine::~MaintenanceEngine() {
  Quiesce();
  if (audit::kEnabled && audit_pending_) {
    audit_pending_ = false;
    AuditMonitors();
  }
}

MaintenanceEngine::MonitorId MaintenanceEngine::Register(
    std::string name, std::unique_ptr<ModelMaintainer> maintainer,
    std::optional<BlockSelectionSequence> gate) {
  DEMON_CHECK(maintainer != nullptr);
  DEMON_CHECK_MSG(!gate || !gate->is_window_relative(),
                  "engine gates are window-independent; window-relative "
                  "BSSs belong inside a GEMM maintainer");
  auto entry = std::make_unique<Entry>();
  entry->name = std::move(name);
  entry->maintainer = std::move(maintainer);
  entry->gate = std::move(gate);
  // One pool serves both levels: monitor fan-out here, counting-level
  // sharding inside the maintainer (via ParallelFor, so nesting is safe).
  entry->maintainer->BindThreadPool(pool_.get());
  entry->maintainer->BindTelemetry(telemetry_);
  // The histograms behind the MonitorStats view exist in every build;
  // only span tracing and kernel macros sit behind the telemetry gate.
  entry->response_hist =
      telemetry_->histogram("monitor/" + entry->name + "/response_seconds");
  entry->offline_hist =
      telemetry_->histogram("monitor/" + entry->name + "/offline_seconds");
  monitors_.push_back(std::move(entry));
  return monitors_.size() - 1;
}

void MaintenanceEngine::RunResponse(Entry* entry, const AnyBlock& block,
                                    [[maybe_unused]] uint64_t parent_span) {
  DEMON_TRACE_SPAN_UNDER(span, telemetry_, entry->name, "response",
                         parent_span);
  telemetry::ScopedTimer timer(entry->response_hist);
  entry->maintainer->AddResponse(block);
  const double seconds = timer.Stop();
  ++entry->stats.blocks_routed;
  entry->stats.last_response_seconds = seconds;
  entry->stats.last_offline_seconds = 0.0;
}

void MaintenanceEngine::RunOffline(Entry* entry,
                                   [[maybe_unused]] uint64_t parent_span) {
  DEMON_TRACE_SPAN_UNDER(span, telemetry_, entry->name, "offline",
                         parent_span);
  telemetry::ScopedTimer timer(entry->offline_hist);
  entry->maintainer->RunOffline();
  entry->stats.last_offline_seconds = timer.Stop();
}

void MaintenanceEngine::Dispatch(const AnyBlock& block) {
  // Deferred future-window updates from the previous block must land
  // before this block reaches any maintainer.
  Quiesce();
  if (audit::kEnabled && audit_pending_) {
    // The previous block's offline work has now landed: audit its
    // boundary before any maintainer absorbs the next block.
    audit_pending_ = false;
    AuditMonitors();
  }

  std::vector<Entry*> routed;
  routed.reserve(monitors_.size());
  for (const auto& entry : monitors_) {
    if (entry->maintainer->payload() != block.payload()) continue;
    if (entry->gate && !entry->gate->SelectsBlock(block.id())) {
      ++entry->stats.blocks_skipped;
      continue;
    }
    routed.push_back(entry.get());
  }

  // The block span covers the whole dispatch; per-monitor response and
  // offline spans hang off it, even from pool workers (the closures carry
  // the parent id — the thread-local nesting stack cannot cross threads).
  DEMON_TRACE_SPAN(block_span, telemetry_,
                   "block " + std::to_string(block.id()), "engine");
  const uint64_t block_span_id = DEMON_SPAN_ID(block_span);

  // Time-critical path: every routed monitor absorbs the block; the
  // barrier below is what the caller's response time measures.
  if (pool_ != nullptr) {
    for (Entry* entry : routed) {
      pool_->Submit([this, entry, &block, block_span_id] {
        // Each in-flight monitor borrows one parallelism token for its
        // duration, so the counting layer underneath sizes its own
        // fan-out to the workers that monitor-level parallelism has not
        // already claimed.
        ThreadPool::TokenLease lease(pool_.get(), 1);
        RunResponse(entry, block, block_span_id);
      });
    }
    pool_->WaitIdle();
  } else {
    for (Entry* entry : routed) RunResponse(entry, block, block_span_id);
  }

  // Offline path: deferred to the pool (drained on the next Dispatch or
  // Quiesce) or run inline.
  bool deferred = false;
  for (Entry* entry : routed) {
    if (!entry->maintainer->has_offline_work()) continue;
    if (pool_ != nullptr && options_.defer_offline) {
      pool_->Submit([this, entry, block_span_id] {
        ThreadPool::TokenLease lease(pool_.get(), 1);
        RunOffline(entry, block_span_id);
      });
      deferred = true;
    } else {
      RunOffline(entry, block_span_id);
    }
  }

  if (audit::kEnabled) {
    // Block boundary: every monitor's structures must satisfy their deep
    // invariants. With work in flight the audit waits for the quiesce at
    // the top of the next Dispatch (or the destructor).
    if (deferred) {
      audit_pending_ = true;
    } else {
      AuditMonitors();
    }
  }
}

void MaintenanceEngine::AuditMonitors() const {
  audit::AuditResult all;
  for (const auto& entry : monitors_) {
    audit::AuditResult one;
    entry->maintainer->AuditInvariants(&one);
    for (const audit::Violation& violation : one.violations()) {
      all.Fail("monitor " + entry->name + ": " + violation.module,
               violation.invariant, violation.message, violation.state);
    }
  }
  all.CheckOrDie();
}

void MaintenanceEngine::Quiesce() const {
  if (pool_ != nullptr) pool_->WaitIdle();
}

Status MaintenanceEngine::CheckId(MonitorId id) const {
  if (id >= monitors_.size()) {
    return Status::NotFound("no monitor with id " + std::to_string(id));
  }
  return Status::OK();
}

Result<const ModelMaintainer*> MaintenanceEngine::MaintainerOf(
    MonitorId id) const {
  DEMON_RETURN_NOT_OK(CheckId(id));
  Quiesce();
  return monitors_[id]->maintainer.get();
}

Result<ModelMaintainer*> MaintenanceEngine::MutableMaintainerOf(MonitorId id) {
  DEMON_RETURN_NOT_OK(CheckId(id));
  Quiesce();
  return monitors_[id]->maintainer.get();
}

Result<MonitorStats> MaintenanceEngine::StatsOf(MonitorId id) const {
  DEMON_RETURN_NOT_OK(CheckId(id));
  Quiesce();
  const Entry& entry = *monitors_[id];
  // Quiesce-consistent view: counts and last-block latencies live in the
  // entry; cumulative and quantile fields come from the histograms.
  MonitorStats stats = entry.stats;
  stats.response_seconds = entry.response_hist->sum();
  stats.response_p50 = entry.response_hist->ApproxQuantile(0.5);
  stats.response_p95 = entry.response_hist->ApproxQuantile(0.95);
  stats.response_max = entry.response_hist->max();
  stats.offline_seconds = entry.offline_hist->sum();
  stats.offline_p50 = entry.offline_hist->ApproxQuantile(0.5);
  stats.offline_p95 = entry.offline_hist->ApproxQuantile(0.95);
  stats.offline_max = entry.offline_hist->max();
  return stats;
}

Result<std::string> MaintenanceEngine::NameOf(MonitorId id) const {
  DEMON_RETURN_NOT_OK(CheckId(id));
  return monitors_[id]->name;
}

std::string MaintenanceEngine::ExportTelemetry(
    telemetry::TelemetryFormat format) const {
  Quiesce();
  return telemetry_->Export(format);
}

}  // namespace demon
