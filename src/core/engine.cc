#include "core/engine.h"

#include <algorithm>
#include <cstdio>

namespace demon {

const char* ToString(AnyBlock::Payload payload) {
  switch (payload) {
    case AnyBlock::Payload::kTransactions:
      return "transactions";
    case AnyBlock::Payload::kPoints:
      return "points";
    case AnyBlock::Payload::kLabeled:
      return "labeled";
  }
  return "unknown";
}

MaintenanceEngine::MaintenanceEngine(const EngineOptions& options)
    : options_(options) {
  if (options_.num_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  if (options_.telemetry != nullptr) {
    telemetry_ = options_.telemetry;
  } else {
    owned_telemetry_ = std::make_unique<telemetry::TelemetryRegistry>();
    telemetry_ = owned_telemetry_.get();
  }
}

MaintenanceEngine::~MaintenanceEngine() {
  Quiesce();
  if (audit::kEnabled && audit_pending_) {
    audit_pending_ = false;
    AuditMonitors();
  }
}

MaintenanceEngine::MonitorId MaintenanceEngine::Register(
    std::string name, std::unique_ptr<ModelMaintainer> maintainer,
    std::optional<BlockSelectionSequence> gate) {
  DEMON_CHECK(maintainer != nullptr);
  DEMON_CHECK_MSG(!gate || !gate->is_window_relative(),
                  "engine gates are window-independent; window-relative "
                  "BSSs belong inside a GEMM maintainer");
  auto entry = std::make_unique<Entry>();
  entry->name = std::move(name);
  entry->maintainer = std::move(maintainer);
  entry->gate = std::move(gate);
  // One pool serves both levels: monitor fan-out here, counting-level
  // sharding inside the maintainer (via ParallelFor, so nesting is safe).
  entry->maintainer->BindThreadPool(pool_.get());
  entry->maintainer->BindTelemetry(telemetry_);
  // The histograms behind the MonitorStats view exist in every build;
  // only span tracing and kernel macros sit behind the telemetry gate.
  entry->response_hist =
      telemetry_->histogram("monitor/" + entry->name + "/response_seconds");
  entry->offline_hist =
      telemetry_->histogram("monitor/" + entry->name + "/offline_seconds");
  entry->response_cpu_hist = telemetry_->histogram(
      "monitor/" + entry->name + "/response_cpu_seconds");
  entry->offline_cpu_hist =
      telemetry_->histogram("monitor/" + entry->name + "/offline_cpu_seconds");
  const std::string evo_prefix = "evolution/" + entry->name + "/";
  entry->evo_elements = telemetry_->gauge(evo_prefix + "elements");
  entry->evo_added = telemetry_->gauge(evo_prefix + "added");
  entry->evo_removed = telemetry_->gauge(evo_prefix + "removed");
  entry->evo_churn = telemetry_->gauge(evo_prefix + "churn");
  monitors_.push_back(std::move(entry));
  return monitors_.size() - 1;
}

void MaintenanceEngine::RunResponse(Entry* entry, const AnyBlock& block,
                                    [[maybe_unused]] uint64_t parent_span) {
  DEMON_TRACE_SPAN_UNDER(span, telemetry_, entry->name, "response",
                         parent_span);
  // Wall and thread-CPU time side by side: on a time-sliced core the
  // wall times of concurrent monitors overlap (their sum inflates past
  // real compute), while the CPU times still add up to core capacity.
  const uint64_t cpu_start = telemetry::ThreadCpuNanos();
  telemetry::ScopedTimer timer(entry->response_hist);
  entry->maintainer->AddResponse(block);
  const double seconds = timer.Stop();
  const double cpu_seconds =
      static_cast<double>(telemetry::ThreadCpuNanos() - cpu_start) * 1e-9;
  entry->response_cpu_hist->Record(cpu_seconds);
  ++entry->stats.blocks_routed;
  entry->stats.last_response_seconds = seconds;
  entry->stats.last_response_cpu_seconds = cpu_seconds;
  entry->stats.last_offline_seconds = 0.0;
  entry->stats.last_offline_cpu_seconds = 0.0;
}

void MaintenanceEngine::RunOffline(Entry* entry,
                                   [[maybe_unused]] uint64_t parent_span) {
  DEMON_TRACE_SPAN_UNDER(span, telemetry_, entry->name, "offline",
                         parent_span);
  const uint64_t cpu_start = telemetry::ThreadCpuNanos();
  telemetry::ScopedTimer timer(entry->offline_hist);
  entry->maintainer->RunOffline();
  entry->stats.last_offline_seconds = timer.Stop();
  const double cpu_seconds =
      static_cast<double>(telemetry::ThreadCpuNanos() - cpu_start) * 1e-9;
  entry->offline_cpu_hist->Record(cpu_seconds);
  entry->stats.last_offline_cpu_seconds = cpu_seconds;
}

void MaintenanceEngine::Dispatch(const AnyBlock& block) {
  // Deferred future-window updates from the previous block must land
  // before this block reaches any maintainer.
  Quiesce();
  if (audit::kEnabled && audit_pending_) {
    // The previous block's offline work has now landed: audit its
    // boundary before any maintainer absorbs the next block.
    audit_pending_ = false;
    AuditMonitors();
  }
  // The previous block's record can now carry final offline times. This
  // must happen before RunResponse resets any last_offline_seconds.
  FinalizePendingTimeline();

  std::vector<Entry*> routed;
  routed.reserve(monitors_.size());
  for (const auto& entry : monitors_) {
    if (entry->maintainer->payload() != block.payload()) continue;
    if (entry->gate && !entry->gate->SelectsBlock(block.id())) {
      ++entry->stats.blocks_skipped;
      continue;
    }
    routed.push_back(entry.get());
  }

  // The block span covers the whole dispatch; per-monitor response and
  // offline spans hang off it, even from pool workers (the closures carry
  // the parent id — the thread-local nesting stack cannot cross threads).
  DEMON_TRACE_SPAN(block_span, telemetry_,
                   "block " + std::to_string(block.id()), "engine");
  const uint64_t block_span_id = DEMON_SPAN_ID(block_span);

  const bool record_timeline = options_.block_timeline_capacity > 0;
  BlockTimelineRecord record;
  if (record_timeline) {
    record.block_id = block.id();
    record.t_ns = telemetry::NowNanos();
    record.records = block.size();
  }

  // Time-critical path: every routed monitor absorbs the block; the
  // barrier below is what the caller's response time measures.
  if (pool_ != nullptr) {
    for (Entry* entry : routed) {
      pool_->Submit([this, entry, &block, block_span_id] {
        // Each in-flight monitor borrows one parallelism token for its
        // duration, so the counting layer underneath sizes its own
        // fan-out to the workers that monitor-level parallelism has not
        // already claimed.
        ThreadPool::TokenLease lease(pool_.get(), 1);
        RunResponse(entry, block, block_span_id);
      });
    }
    if (record_timeline) {
      // Token occupancy sampled mid-response — at the quiesced boundary
      // every token is back, so this is the only point worth reading.
      const size_t total = pool_->num_threads();
      const size_t available = std::min(pool_->ApproxAvailableTokens(), total);
      record.tokens_in_flight = static_cast<double>(total - available);
    }
    pool_->WaitIdle();
  } else {
    for (Entry* entry : routed) RunResponse(entry, block, block_span_id);
  }

  // Response barrier: every routed model is final for this block and
  // offline work has not yet started mutating GEMM future windows, so
  // this is the one race-free point to read DescribeEvolution.
  CaptureEvolution(routed);
  if (record_timeline) {
    record.monitors.reserve(routed.size());
    for (Entry* entry : routed) {
      BlockTimelineRecord::MonitorRow row;
      row.name = entry->name;
      row.response_seconds = entry->stats.last_response_seconds;
      row.response_cpu_seconds = entry->stats.last_response_cpu_seconds;
      row.evolution = entry->stats.evolution;
      record.monitors.push_back(std::move(row));
    }
  }

  // Offline path: deferred to the pool (drained on the next Dispatch or
  // Quiesce) or run inline.
  bool deferred = false;
  for (Entry* entry : routed) {
    if (!entry->maintainer->has_offline_work()) continue;
    if (pool_ != nullptr && options_.defer_offline) {
      pool_->Submit([this, entry, block_span_id] {
        ThreadPool::TokenLease lease(pool_.get(), 1);
        RunOffline(entry, block_span_id);
      });
      deferred = true;
    } else {
      RunOffline(entry, block_span_id);
    }
  }

  if (record_timeline) {
    // The record waits for its offline times: with nothing deferred the
    // boundary is already quiesced and it finalizes right here; deferred
    // work pushes finalization to the next quiesced boundary.
    pending_record_ = std::move(record);
    pending_routed_ = routed;
    if (!deferred) FinalizePendingTimeline();
  }

  if (audit::kEnabled) {
    // Block boundary: every monitor's structures must satisfy their deep
    // invariants. With work in flight the audit waits for the quiesce at
    // the top of the next Dispatch (or the destructor).
    if (deferred) {
      audit_pending_ = true;
    } else {
      AuditMonitors();
    }
  }
}

void MaintenanceEngine::CaptureEvolution(const std::vector<Entry*>& routed) {
  for (Entry* entry : routed) {
    const EvolutionStats evo = entry->maintainer->DescribeEvolution();
    entry->stats.evolution = evo;
    entry->evo_elements->Set(static_cast<double>(evo.elements));
    entry->evo_added->Set(static_cast<double>(evo.added));
    entry->evo_removed->Set(static_cast<double>(evo.removed));
    entry->evo_churn->Set(evo.churn);
    if (evo.aux_name != nullptr) {
      if (entry->evo_aux == nullptr) {
        entry->evo_aux =
            telemetry_->gauge("evolution/" + entry->name + "/" + evo.aux_name);
      }
      entry->evo_aux->Set(evo.aux);
    }
    if (evo.aux2_name != nullptr) {
      if (entry->evo_aux2 == nullptr) {
        entry->evo_aux2 = telemetry_->gauge("evolution/" + entry->name + "/" +
                                            evo.aux2_name);
      }
      entry->evo_aux2->Set(evo.aux2);
    }
  }
}

void MaintenanceEngine::FinalizePendingTimeline() {
  if (!pending_record_.has_value()) return;
  BlockTimelineRecord record = std::move(*pending_record_);
  pending_record_.reset();
  for (size_t i = 0; i < pending_routed_.size(); ++i) {
    record.monitors[i].offline_seconds =
        pending_routed_[i]->stats.last_offline_seconds;
    record.monitors[i].offline_cpu_seconds =
        pending_routed_[i]->stats.last_offline_cpu_seconds;
  }
  pending_routed_.clear();
  record.tidlist_resident_bytes =
      telemetry_->gauge("tidlist/resident_bytes")->value();

  const size_t capacity = options_.block_timeline_capacity;
  if (timeline_.size() < capacity) {
    timeline_.push_back(std::move(record));
    ++timeline_size_;
  } else {
    timeline_[timeline_head_] = std::move(record);
    timeline_head_ = (timeline_head_ + 1) % capacity;
    ++timeline_dropped_;
  }
}

std::vector<BlockTimelineRecord> MaintenanceEngine::TimelineRecords() {
  Quiesce();
  FinalizePendingTimeline();
  std::vector<BlockTimelineRecord> out;
  if (timeline_size_ == 0) return out;
  out.reserve(timeline_size_);
  for (size_t i = 0; i < timeline_size_; ++i) {
    out.push_back(timeline_[(timeline_head_ + i) % timeline_.size()]);
  }
  return out;
}

void MaintenanceEngine::AuditMonitors() const {
  audit::AuditResult all;
  for (const auto& entry : monitors_) {
    audit::AuditResult one;
    entry->maintainer->AuditInvariants(&one);
    for (const audit::Violation& violation : one.violations()) {
      all.Fail("monitor " + entry->name + ": " + violation.module,
               violation.invariant, violation.message, violation.state);
    }
  }
  all.CheckOrDie();
}

void MaintenanceEngine::Quiesce() const {
  if (pool_ != nullptr) pool_->WaitIdle();
}

Status MaintenanceEngine::CheckId(MonitorId id) const {
  if (id >= monitors_.size()) {
    return Status::NotFound("no monitor with id " + std::to_string(id));
  }
  return Status::OK();
}

Result<const ModelMaintainer*> MaintenanceEngine::MaintainerOf(
    MonitorId id) const {
  DEMON_RETURN_NOT_OK(CheckId(id));
  Quiesce();
  return monitors_[id]->maintainer.get();
}

Result<ModelMaintainer*> MaintenanceEngine::MutableMaintainerOf(MonitorId id) {
  DEMON_RETURN_NOT_OK(CheckId(id));
  Quiesce();
  return monitors_[id]->maintainer.get();
}

Result<MonitorStats> MaintenanceEngine::StatsOf(MonitorId id) const {
  DEMON_RETURN_NOT_OK(CheckId(id));
  Quiesce();
  const Entry& entry = *monitors_[id];
  // Quiesce-consistent view: counts and last-block latencies live in the
  // entry; cumulative and quantile fields come from the histograms.
  MonitorStats stats = entry.stats;
  stats.response_seconds = entry.response_hist->sum();
  stats.response_p50 = entry.response_hist->ApproxQuantile(0.5);
  stats.response_p95 = entry.response_hist->ApproxQuantile(0.95);
  stats.response_max = entry.response_hist->max();
  stats.offline_seconds = entry.offline_hist->sum();
  stats.offline_p50 = entry.offline_hist->ApproxQuantile(0.5);
  stats.offline_p95 = entry.offline_hist->ApproxQuantile(0.95);
  stats.offline_max = entry.offline_hist->max();
  stats.response_cpu_seconds = entry.response_cpu_hist->sum();
  stats.offline_cpu_seconds = entry.offline_cpu_hist->sum();
  return stats;
}

Result<std::string> MaintenanceEngine::NameOf(MonitorId id) const {
  DEMON_RETURN_NOT_OK(CheckId(id));
  return monitors_[id]->name;
}

std::string MaintenanceEngine::ExportTelemetry(
    telemetry::TelemetryFormat format) const {
  Quiesce();
  return telemetry_->Export(format);
}

std::string BlockTimelineJsonl(
    const std::vector<BlockTimelineRecord>& records) {
  using telemetry::AppendJsonDouble;
  using telemetry::AppendJsonEscaped;
  std::string out;
  char buf[96];
  for (const BlockTimelineRecord& record : records) {
    std::snprintf(buf, sizeof(buf),
                  "{\"type\":\"block\",\"block\":%llu,\"t_ns\":%llu,"
                  "\"records\":%llu",
                  static_cast<unsigned long long>(record.block_id),
                  static_cast<unsigned long long>(record.t_ns),
                  static_cast<unsigned long long>(record.records));
    out.append(buf);
    out.append(",\"tidlist_resident_bytes\":");
    AppendJsonDouble(record.tidlist_resident_bytes, &out);
    out.append(",\"tokens_in_flight\":");
    AppendJsonDouble(record.tokens_in_flight, &out);
    out.append(",\"monitors\":{");
    bool first = true;
    for (const BlockTimelineRecord::MonitorRow& row : record.monitors) {
      if (!first) out.push_back(',');
      first = false;
      out.push_back('"');
      AppendJsonEscaped(row.name, &out);
      out.append("\":{\"response_seconds\":");
      AppendJsonDouble(row.response_seconds, &out);
      out.append(",\"response_cpu_seconds\":");
      AppendJsonDouble(row.response_cpu_seconds, &out);
      out.append(",\"offline_seconds\":");
      AppendJsonDouble(row.offline_seconds, &out);
      out.append(",\"offline_cpu_seconds\":");
      AppendJsonDouble(row.offline_cpu_seconds, &out);
      const EvolutionStats& evo = row.evolution;
      std::snprintf(buf, sizeof(buf),
                    ",\"evolution\":{\"blocks\":%llu,\"elements\":%llu,"
                    "\"added\":%llu,\"removed\":%llu,\"churn\":",
                    static_cast<unsigned long long>(evo.blocks),
                    static_cast<unsigned long long>(evo.elements),
                    static_cast<unsigned long long>(evo.added),
                    static_cast<unsigned long long>(evo.removed));
      out.append(buf);
      AppendJsonDouble(evo.churn, &out);
      if (evo.aux_name != nullptr) {
        out.append(",\"");
        AppendJsonEscaped(evo.aux_name, &out);
        out.append("\":");
        AppendJsonDouble(evo.aux, &out);
      }
      if (evo.aux2_name != nullptr) {
        out.append(",\"");
        AppendJsonEscaped(evo.aux2_name, &out);
        out.append("\":");
        AppendJsonDouble(evo.aux2, &out);
      }
      out.append("}}");
    }
    out.append("}}\n");
  }
  return out;
}

}  // namespace demon
