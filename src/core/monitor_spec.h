#ifndef DEMON_CORE_MONITOR_SPEC_H_
#define DEMON_CORE_MONITOR_SPEC_H_

#include <string>

#include "clustering/birch.h"
#include "common/status.h"
#include "core/bss.h"
#include "dtree/dtree_maintainer.h"
#include "dtree/labeled_block.h"
#include "itemsets/support_counting.h"
#include "persistence/serializer.h"

namespace demon {

/// The model class and data-span option a monitor maintains. Values are
/// stable on disk (checkpoints embed them); never renumber.
enum class MonitorKind : uint8_t {
  /// Unrestricted-window frequent itemsets (BORDERS, §3.1).
  kUnrestrictedItemsets = 1,
  /// Most-recent-window frequent itemsets (GEMM over BORDERS, §3.2).
  kWindowedItemsets = 2,
  /// Unrestricted-window clusters (BIRCH+, §3.1.2).
  kUnrestrictedClusters = 3,
  /// Most-recent-window clusters (GEMM over BIRCH+, §3.2.4).
  kWindowedClusters = 4,
  /// Incremental decision-tree classifier (the BOAT stand-in).
  kClassifier = 5,
  /// Compact-sequence pattern detection (§4), optionally windowed.
  kPatterns = 6,
};

/// Short stable name for error messages ("itemsets", "windowed-clusters"...).
const char* MonitorKindToString(MonitorKind kind);

/// \brief Everything needed to register one monitor with a DemonMonitor —
/// the single registration currency of `AddMonitor` and the unit a
/// checkpoint stores so `Restore` can re-create its monitors.
///
/// Designed for designated initializers; only the fields a kind consumes
/// are read (e.g. `window` only for the windowed kinds, `schema`/`dtree`
/// only for classifiers), and `AddMonitor` validates the relevant ones.
struct MonitorSpec {
  MonitorKind kind = MonitorKind::kUnrestrictedItemsets;
  /// Monitor name, as surfaced by NameOf and the stats output.
  std::string name;

  /// Which blocks participate (Definition 2.1). Window-relative sequences
  /// are only valid for the windowed kinds; pattern detectors consume
  /// every block (the miner's similarity matrix needs the full stream).
  BlockSelectionSequence bss = BlockSelectionSequence::AllBlocks();
  /// Window size w for the windowed kinds; for kPatterns, 0 means
  /// unrestricted (footnote 9's variant otherwise). Ignored elsewhere.
  size_t window = 0;

  /// Itemset kinds and kPatterns: minimum support κ ∈ (0, 1).
  double minsup = 0.01;
  /// Itemset kinds: how the update phase counts new candidates.
  CountingStrategy strategy = CountingStrategy::kEcut;
  /// Itemset kinds: memory budget for resident TID-list bytes (0 defers to
  /// DEMON_TIDLIST_BUDGET_BYTES, unbounded when that is also unset) and
  /// spill directory for evicted extents (empty = env, then a temp dir).
  /// The budget shapes paging only, never counts, so checkpoints taken
  /// under different budgets are byte-identical.
  size_t tidlist_budget_bytes = 0;
  std::string tidlist_spill_dir;

  /// Cluster kinds: point dimensionality (>= 1) and BIRCH configuration.
  size_t dim = 0;
  BirchOptions birch;

  /// kClassifier: record schema and split thresholds.
  LabeledSchema schema;
  DTreeOptions dtree;

  /// kPatterns: similarity level alpha of Definition 4.1.
  double alpha = 0.95;
};

/// Serializes a spec into a checkpoint payload (current layout).
void SaveMonitorSpec(persistence::Writer& w, const MonitorSpec& spec);

/// Restores a spec saved by SaveMonitorSpec; corruption yields DataLoss.
/// `checkpoint_version` is the containing checkpoint's format version:
/// version 1 predates the TID-list budget fields, which then keep their
/// defaults.
[[nodiscard]] Result<MonitorSpec> LoadMonitorSpec(persistence::Reader& r,
                                                  uint32_t checkpoint_version);

}  // namespace demon

#endif  // DEMON_CORE_MONITOR_SPEC_H_
