#ifndef DEMON_CORE_GEMM_H_
#define DEMON_CORE_GEMM_H_

#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "common/audit.h"
#include "common/check.h"
#include "common/status.h"
#include "common/telemetry.h"
#include "core/bss.h"
#include "data/types.h"
#include "persistence/serializer.h"

namespace demon {

/// \brief GEMM, the GEneric Model Maintainer (paper §3.2): lifts any
/// incremental model maintenance algorithm A_M for the unrestricted-window
/// option to the most-recent-window option of size w, under both
/// window-independent and window-relative block selection sequences.
///
/// `Maintainer` is any type with `void AddBlock(BlockPtr)` that evolves a
/// model by absorbing blocks (e.g. BordersMaintainer, ClusterMaintainer).
/// GEMM never deletes from a model: it keeps one maintainer per future
/// window overlapping the current one (w models in total), each fed only
/// the blocks its projected/right-shifted BSS selects. When a block
/// arrives, the model whose window just became current needs exactly one
/// A_M invocation — so the response time equals A_M's (§3.2.3) — and the
/// remaining models can be brought up to date off-line.
///
/// The current model is `current().model()`. The time split between the
/// time-critical update and the off-line ones is recorded by the caller
/// (the MaintenanceEngine's per-monitor histograms, surfaced through
/// `MonitorStats`) — GEMM itself only emits trace spans, one per window
/// model it touches, when a telemetry registry is bound.
template <typename Maintainer, typename BlockPtr>
class Gemm {
 public:
  using Factory = std::function<Maintainer()>;

  /// `bss` may be window-independent or window-relative; a window-relative
  /// BSS must have exactly `window_size` bits.
  Gemm(BlockSelectionSequence bss, size_t window_size, Factory factory)
      : bss_(std::move(bss)),
        window_size_(window_size),
        factory_(std::move(factory)) {
    DEMON_CHECK(window_size_ >= 1);
    if (bss_.is_window_relative()) {
      DEMON_CHECK_MSG(bss_.window_bits().size() == window_size_,
                      "window-relative BSS must have w bits");
    }
  }

  /// Feeds the next block (ids are implicit: 1, 2, ... in call order):
  /// the time-critical current-model update followed inline by the
  /// future-window updates.
  void AddBlock(BlockPtr block) {
    BeginBlock(std::move(block));
    DrainOffline();
  }

  /// The time-critical half of AddBlock (§3.2.3's response path): spawns
  /// and retires window models, then updates only the model whose window
  /// just became current — exactly one A_M invocation. The future-window
  /// updates are left pending until DrainOffline(); they must be drained
  /// before the next BeginBlock (calling BeginBlock with work still
  /// pending drains it inline first).
  void BeginBlock(BlockPtr block) {
    DrainOffline();
    ++t_;
    // Spawn the model for the future window starting at this block.
    models_.push_back({static_cast<BlockId>(t_), factory_()});
    // Retire the model whose window no longer overlaps the current one.
    const BlockId current_start =
        t_ >= window_size_ ? static_cast<BlockId>(t_ - window_size_ + 1) : 1;
    while (!models_.empty() && models_.front().start < current_start) {
      models_.pop_front();
    }
    DEMON_CHECK(!models_.empty());

    if (ShouldInclude(models_.front().start)) {
      DEMON_TRACE_SPAN(span, telemetry_,
                       "window@" + std::to_string(models_.front().start),
                       "gemm");
      models_.front().maintainer.AddBlock(block);
    }
    pending_ = std::move(block);
    has_pending_ = true;
  }

  /// The deferrable half: brings every future-window model up to date with
  /// the block last passed to BeginBlock. No-op when nothing is pending.
  void DrainOffline() {
    if (!has_pending_) return;
    DEMON_TRACE_SPAN(drain_span, telemetry_, "gemm-offline", "gemm");
    for (size_t i = 1; i < models_.size(); ++i) {
      if (ShouldInclude(models_[i].start)) {
        DEMON_TRACE_SPAN(span, telemetry_,
                         "window@" + std::to_string(models_[i].start),
                         "gemm");
        models_[i].maintainer.AddBlock(pending_);
      }
    }
    pending_ = BlockPtr();
    has_pending_ = false;
  }

  /// Whether future-window updates from the last BeginBlock are pending.
  bool has_offline_work() const { return has_pending_; }

  /// The maintainer of the current window's model.
  const Maintainer& current() const {
    DEMON_CHECK(!models_.empty());
    return models_.front().maintainer;
  }

  /// Number of models currently maintained (w once t >= w; paper §3.2).
  size_t NumModels() const { return models_.size(); }

  /// Latest block id fed in (t).
  BlockId latest_block() const { return static_cast<BlockId>(t_); }

  /// Registry receiving GEMM's per-window-model spans (nullable; null
  /// disables tracing). No-op in DEMON_TELEMETRY=OFF builds. Response and
  /// offline *timings* are the caller's job — the engine's per-monitor
  /// histograms replaced GEMM's former duplicate last_*_seconds fields.
  void set_telemetry(
      [[maybe_unused]] telemetry::TelemetryRegistry* registry) {
    if constexpr (telemetry::kEnabled) telemetry_ = registry;
  }

  /// Whether the BSS selects `block` for the window starting at `start` —
  /// the projected/right-shifted selection rule of §3.2.2, exposed so
  /// auditors can recompute which blocks each window model must cover.
  bool WouldSelect(BlockId start, BlockId block) const {
    if (block < start || block >= start + window_size_) return false;
    if (!bss_.is_window_relative()) return bss_.SelectsBlock(block);
    return bss_.window_bits()[block - start];
  }

  /// The block ids the model starting at `start` must have absorbed by
  /// now: every arrived block its (shifted) BSS selects.
  std::vector<BlockId> ExpectedSelection(BlockId start) const {
    std::vector<BlockId> ids;
    for (BlockId block = start; block <= static_cast<BlockId>(t_); ++block) {
      if (WouldSelect(start, block)) ids.push_back(block);
    }
    return ids;
  }

  /// Per-model audit callback: (window start, the blocks the BSS says the
  /// model must cover, the maintainer, the result to append to).
  using PerModelAuditor = std::function<void(
      BlockId, const std::vector<BlockId>&, const Maintainer&,
      audit::AuditResult*)>;

  /// Deep audit of the window bookkeeping (§3.2.2–3.2.3): no pending
  /// offline work at a block boundary, exactly min(t, w) materialized
  /// models, with consecutive window starts ending at the newest block.
  /// When `per_model` is provided it is invoked for every model with the
  /// block ids its shifted BSS selects, so typed adapters can verify the
  /// model covers *exactly* those blocks.
  void AuditInto(audit::AuditResult* audit,
                 const PerModelAuditor& per_model = nullptr) const {
    constexpr char kModule[] = "gemm";
    AUDIT_CHECK(audit, kModule, "gemm/no-pending-at-boundary", !has_pending_,
                "future-window updates still pending at a block boundary",
                "");
    if (t_ == 0) {
      AUDIT_CHECK(audit, kModule, "gemm/model-count", models_.empty(),
                  "models materialized before any block arrived", "");
      return;
    }
    const size_t expected_models = t_ < window_size_ ? t_ : window_size_;
    AUDIT_CHECK(audit, kModule, "gemm/model-count",
                models_.size() == expected_models,
                audit::Msg() << models_.size() << " models materialized at t="
                             << t_ << " with window size " << window_size_
                             << " (want " << expected_models << ")",
                "");
    for (size_t i = 0; i < models_.size(); ++i) {
      const BlockId want =
          static_cast<BlockId>(t_ - models_.size() + 1 + i);
      AUDIT_CHECK(audit, kModule, "gemm/window-starts",
                  models_[i].start == want,
                  audit::Msg() << "model " << i << " covers the window "
                               << "starting at " << models_[i].start
                               << " (want " << want
                               << ": one model per future window, "
                                  "consecutive, newest last)",
                  "");
      if (per_model) {
        per_model(models_[i].start, ExpectedSelection(models_[i].start),
                  models_[i].maintainer, audit);
      }
    }
  }

  /// Serializes the full window bookkeeping: t, each window model's start
  /// and (framed) maintainer state, and — when BeginBlock ran without
  /// DrainOffline — the id of the block whose future-window updates are
  /// still pending. `Maintainer` must provide
  /// `void SaveState(persistence::Writer&) const`.
  void SaveState(persistence::Writer& w) const {
    w.WriteU64(t_);
    w.WriteBool(has_pending_);
    if (has_pending_) w.WriteU32(pending_->info().id);
    w.WriteU64(models_.size());
    for (const Entry& entry : models_) {
      w.WriteU32(entry.start);
      persistence::Writer state;
      entry.maintainer.SaveState(state);
      w.WriteString(state.buffer());
    }
  }

  /// Restores state saved by SaveState into a freshly constructed Gemm
  /// with the same BSS/window/factory configuration. Window models are
  /// spawned through the factory and fed their framed state; a pending
  /// block is re-acquired through `resolve` (the checkpoint loader's
  /// snapshot-backed resolver). `Maintainer` must provide
  /// `Status LoadState(persistence::Reader&)`.
  [[nodiscard]] Status LoadState(
      persistence::Reader& r,
      const std::function<Result<BlockPtr>(BlockId)>& resolve) {
    if (t_ != 0 || !models_.empty()) {
      return Status::FailedPrecondition(
          "GEMM state can only be restored into a fresh maintainer");
    }
    t_ = r.ReadU64();
    const bool saved_pending = r.ReadBool();
    BlockId pending_id = 0;
    if (saved_pending) pending_id = r.ReadU32();
    const uint64_t num_models = r.ReadU64();
    if (!r.ok()) return r.status();
    const uint64_t expected_models =
        t_ < window_size_ ? t_ : static_cast<uint64_t>(window_size_);
    if (num_models != expected_models) {
      return Status::DataLoss("checkpoint holds " +
                              std::to_string(num_models) +
                              " GEMM window models at t=" +
                              std::to_string(t_) + " (want " +
                              std::to_string(expected_models) + ")");
    }
    for (uint64_t i = 0; i < num_models; ++i) {
      const BlockId start = r.ReadU32();
      const size_t state_bytes = r.ReadLength(1);
      persistence::Reader state = r.Sub(state_bytes);
      if (!r.ok()) return r.status();
      const BlockId want =
          static_cast<BlockId>(t_ - num_models + 1 + i);
      if (start != want) {
        return Status::DataLoss("GEMM window model " + std::to_string(i) +
                                " starts at block " + std::to_string(start) +
                                " (want " + std::to_string(want) + ")");
      }
      models_.push_back({start, factory_()});
      DEMON_RETURN_NOT_OK(models_.back().maintainer.LoadState(state));
      if (!state.AtEnd()) {
        return Status::DataLoss("trailing bytes after GEMM window model " +
                                std::to_string(i));
      }
    }
    if (saved_pending) {
      if (pending_id != static_cast<BlockId>(t_)) {
        return Status::DataLoss("GEMM pending block id " +
                                std::to_string(pending_id) +
                                " does not match t=" + std::to_string(t_));
      }
      DEMON_ASSIGN_OR_RETURN(BlockPtr block, resolve(pending_id));
      pending_ = std::move(block);
      has_pending_ = true;
    }
    return r.status();
  }

  /// The start block id of every maintained model, oldest first (exposed
  /// for tests).
  std::vector<BlockId> ModelStarts() const {
    std::vector<BlockId> starts;
    starts.reserve(models_.size());
    for (const auto& m : models_) starts.push_back(m.start);
    return starts;
  }

 private:
  struct Entry {
    BlockId start;  // first block of the (future) window this model covers
    Maintainer maintainer;
  };

  /// Whether the just-arrived block t_ belongs to the model whose window
  /// starts at `start`, according to the BSS.
  bool ShouldInclude(BlockId start) const {
    if (!bss_.is_window_relative()) {
      // Window-independent: the bit of the absolute block id decides for
      // every model alike (Algorithm 3.1's b_{w+1} test).
      return bss_.SelectsBlock(static_cast<BlockId>(t_));
    }
    // Window-relative: the block's position within this model's window
    // decides (the right-shift rule of §3.2.2).
    const size_t position = t_ - start + 1;  // 1-based
    DEMON_CHECK(position >= 1 && position <= window_size_);
    return bss_.window_bits()[position - 1];
  }

  BlockSelectionSequence bss_;
  size_t window_size_;
  Factory factory_;
  std::deque<Entry> models_;
  size_t t_ = 0;
  /// Block awaiting future-window updates (set between BeginBlock and
  /// DrainOffline).
  BlockPtr pending_{};
  bool has_pending_ = false;
  /// Stays null in DEMON_TELEMETRY=OFF builds (see set_telemetry).
  telemetry::TelemetryRegistry* telemetry_ = nullptr;
};

}  // namespace demon

#endif  // DEMON_CORE_GEMM_H_
