#include "core/bss.h"

#include <cstdlib>

#include "common/check.h"

namespace demon {

BlockSelectionSequence BlockSelectionSequence::WindowIndependent(
    std::vector<bool> bits, bool tail_bit) {
  return BlockSelectionSequence(Kind::kWindowIndependent, std::move(bits),
                                tail_bit, 0, 0);
}

BlockSelectionSequence BlockSelectionSequence::AllBlocks() {
  return WindowIndependent({}, /*tail_bit=*/true);
}

BlockSelectionSequence BlockSelectionSequence::Periodic(size_t period,
                                                        size_t phase) {
  DEMON_CHECK(period > 0);
  DEMON_CHECK(phase < period);
  return BlockSelectionSequence(Kind::kWindowIndependent, {}, false, period,
                                phase);
}

BlockSelectionSequence BlockSelectionSequence::WindowRelative(
    std::vector<bool> bits) {
  DEMON_CHECK(!bits.empty());
  return BlockSelectionSequence(Kind::kWindowRelative, std::move(bits), false,
                                0, 0);
}

bool BlockSelectionSequence::SelectsBlock(BlockId id) const {
  DEMON_CHECK(kind_ == Kind::kWindowIndependent);
  DEMON_CHECK(id >= 1);
  if (period_ > 0) return (id - 1) % period_ == phase_;
  if (id <= bits_.size()) return bits_[id - 1];
  return tail_bit_;
}

const std::vector<bool>& BlockSelectionSequence::window_bits() const {
  DEMON_CHECK(kind_ == Kind::kWindowRelative);
  return bits_;
}

std::vector<bool> BlockSelectionSequence::Project(BlockId t, size_t w,
                                                  size_t k) const {
  DEMON_CHECK(kind_ == Kind::kWindowIndependent);
  DEMON_CHECK(k < w);
  DEMON_CHECK(t >= w);
  std::vector<bool> out(w, false);
  for (size_t i = k; i < w; ++i) {
    // Position i+1 of the window [t-w+1, t] is block t-w+1+i.
    out[i] = SelectsBlock(static_cast<BlockId>(t - w + 1 + i));
  }
  return out;
}

std::vector<bool> BlockSelectionSequence::RightShift(
    const std::vector<bool>& bits, size_t k) {
  const size_t w = bits.size();
  std::vector<bool> out(w, false);
  for (size_t i = k; i < w; ++i) out[i] = bits[i - k];
  return out;
}

Result<BlockSelectionSequence> BlockSelectionSequence::FromString(
    const std::string& text) {
  if (text.empty()) {
    return Status::InvalidArgument("empty BSS specification");
  }
  if (text == "all") return AllBlocks();

  const auto parse_bits = [](const std::string& s) -> Result<std::vector<bool>> {
    std::vector<bool> bits;
    for (char c : s) {
      if (c == '0') {
        bits.push_back(false);
      } else if (c == '1') {
        bits.push_back(true);
      } else {
        return Status::InvalidArgument("BSS bits must be 0/1, got: " + s);
      }
    }
    if (bits.empty()) return Status::InvalidArgument("empty BSS bits");
    return bits;
  };

  if (text.rfind("periodic:", 0) == 0) {
    const size_t slash = text.find('/', 9);
    if (slash == std::string::npos) {
      return Status::InvalidArgument("expected periodic:<period>/<phase>");
    }
    const int period = std::atoi(text.substr(9, slash - 9).c_str());
    const int phase = std::atoi(text.substr(slash + 1).c_str());
    if (period <= 0 || phase < 0 || phase >= period) {
      return Status::InvalidArgument("invalid period/phase in: " + text);
    }
    return Periodic(static_cast<size_t>(period), static_cast<size_t>(phase));
  }
  if (text.rfind("relative:", 0) == 0) {
    DEMON_ASSIGN_OR_RETURN(std::vector<bool> bits,
                           parse_bits(text.substr(9)));
    return WindowRelative(std::move(bits));
  }
  if (text.size() > 3 && text.substr(text.size() - 3) == "...") {
    DEMON_ASSIGN_OR_RETURN(std::vector<bool> bits,
                           parse_bits(text.substr(0, text.size() - 3)));
    const bool tail = bits.back();
    return WindowIndependent(std::move(bits), tail);
  }
  DEMON_ASSIGN_OR_RETURN(std::vector<bool> bits, parse_bits(text));
  return WindowIndependent(std::move(bits), false);
}

std::string BlockSelectionSequence::ToString() const {
  std::string out = "<";
  if (period_ > 0) {
    out += "periodic:" + std::to_string(period_) + "/" +
           std::to_string(phase_);
  } else {
    for (bool b : bits_) out += b ? '1' : '0';
    if (kind_ == Kind::kWindowIndependent) out += tail_bit_ ? "1..." : "0...";
  }
  out += ">";
  return out;
}

void BlockSelectionSequence::SaveTo(persistence::Writer& w) const {
  w.WriteU8(static_cast<uint8_t>(kind_));
  w.WriteU64(bits_.size());
  for (const bool bit : bits_) w.WriteBool(bit);
  w.WriteBool(tail_bit_);
  w.WriteU64(period_);
  w.WriteU64(phase_);
}

Result<BlockSelectionSequence> BlockSelectionSequence::LoadFrom(
    persistence::Reader& r) {
  const uint8_t kind = r.ReadU8();
  const size_t num_bits = r.ReadLength(1);
  std::vector<bool> bits;
  bits.reserve(num_bits);
  for (size_t i = 0; i < num_bits; ++i) bits.push_back(r.ReadBool());
  const bool tail_bit = r.ReadBool();
  const uint64_t period = r.ReadU64();
  const uint64_t phase = r.ReadU64();
  if (!r.ok()) return r.status();
  if (kind > static_cast<uint8_t>(Kind::kWindowRelative)) {
    return Status::DataLoss("unknown BSS kind " + std::to_string(kind));
  }
  if (period > 0 && phase >= period) {
    return Status::DataLoss("BSS phase outside its period");
  }
  return BlockSelectionSequence(static_cast<Kind>(kind), std::move(bits),
                                tail_bit, period, phase);
}

}  // namespace demon
